#!/usr/bin/env bash
# Regenerate every paper figure/table and every ablation with the paper's
# default configuration (V ~ 2000, 5 seeds, CCR {0.2, 5}, P {2..32}),
# saving outputs under results/. Usage:
#
#   scripts/reproduce_all.sh [build-dir] [results-dir]
#
# Takes a few minutes on a laptop; pass --seeds/--tasks overrides to the
# individual binaries for quicker spot checks.

set -euo pipefail

build="${1:-build}"
out="${2:-results}"
mkdir -p "$out"

if [[ ! -d "$build/bench" ]]; then
  echo "build directory '$build' not found — run:" >&2
  echo "  cmake -B $build -G Ninja && cmake --build $build" >&2
  exit 1
fi

benches=(
  bench_fig2_cost
  bench_fig3_speedup
  bench_fig4_nsl
  bench_complexity_scaling
  bench_ablation_tiebreak
  bench_ablation_ccr
  bench_width
  bench_ablation_duplication
  bench_sim_contention
  bench_extended_compare
  bench_multistep
  bench_hetero
  bench_improvement
  bench_topology
  bench_robustness
  bench_ablation_lookahead
)

for b in "${benches[@]}"; do
  echo "== $b"
  "$build/bench/$b" | tee "$out/$b.txt"
  echo
done

# The fault-tolerance sweep gets its own invocation: --online appends the
# oracle-vs-online recovery comparison (the event-driven controller of
# flb::runtime re-repairing per observation), whose per-episode digests
# make the saved output diffable against a re-run.
echo "== bench_fault_tolerance"
"$build/bench/bench_fault_tolerance" --online --detector \
  | tee "$out/bench_fault_tolerance.txt"
echo

echo "== table 1 trace"
"$build/examples/trace_paper_example" | tee "$out/table1_trace.txt"

# Semantic lint gate: the schedules behind the tables above must satisfy
# the paper's selection invariants, not just feasibility. FLB runs the
# full theorem tier (ETF conformance, EP classification, PRT monotone,
# trace/schedule consistency); the baselines run the feasibility tier.
# Any error-severity diagnostic aborts the reproduction (exit 2).
echo "== semantic lint (flb_lint)"
{
  "$build/examples/flb_lint" --paper-example --procs 2
  for algo in FLB ETF MCP FCP DSC-LLB; do
    for procs in 2 8 32; do
      echo "-- $algo on LU V~2000 P=$procs"
      "$build/examples/flb_lint" --workload LU --tasks 2000 \
        --procs "$procs" --algo "$algo"
    done
  done
} | tee "$out/lint_report.txt"

# Scheduling-as-a-service throughput: DAGs/sec and latency percentiles of
# the arena-backed batch driver vs worker threads, with the chained digest
# column asserting (in-process) that every thread count is byte-identical
# to sequential FLB. Speedup depends on available cores — see
# docs/serving.md for the honest single-core caveat.
echo "== bench_throughput (scheduling-as-a-service batch driver)"
"$build/bench/bench_throughput" | tee "$out/bench_throughput.txt"
echo

# bench_micro is a google-benchmark binary, not a table printer; the
# persisted slice is the platform cost-model pricing hot path (ns/query of
# clique vs routed vs link-busy), which guards the constant in front of
# FLB's complexity bound.
echo "== bench_micro (platform pricing hot path)"
{
  echo "Platform cost-model pricing hot path (bench_micro --benchmark_filter=BM_Comm)"
  echo "P = 32; routed/link-busy over a 4x8 mesh; 4096 pre-generated remote queries per iteration."
  echo "Per-query cost = Time / 4096 (items_per_second counts individual queries)."
  echo
  "$build/bench/bench_micro" --benchmark_filter='BM_Comm' \
    --benchmark_min_time=0.5 2>/dev/null | sed -n '/^---/,$p'
} | tee "$out/bench_micro_platform.txt"

echo
echo "All outputs saved under $out/. Compare against EXPERIMENTS.md."
