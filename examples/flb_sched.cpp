// flb_sched — command-line scheduler front end, the library's "driver"
// example. Reads a task graph (generated workload, flb text file, or an
// STG benchmark file), schedules it with one or all algorithms, and
// reports schedule quality, optionally cross-checked on the discrete-event
// machine simulator under different contention models.
//
// Usage examples:
//   flb_sched --workload LU --tasks 2000 --procs 8
//   flb_sched --input graph.flb --algo FLB --procs 4 --gantt
//   flb_sched --input bench.stg --format stg --ccr 1.0 --algo all
//   flb_sched --workload Stencil --algo FLB --sim single-port
//   flb_sched --workload FFT --algo FLB --dot out.dot

#include <fstream>
#include <iostream>

#include "flb/graph/dot.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/graph/stg.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/schedule_analysis.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

using namespace flb;

TaskGraph load_graph(const CliArgs& args) {
  WorkloadParams params;
  params.ccr = args.get_double("ccr", 1.0);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  if (args.has("input")) {
    std::string path = args.get("input", "");
    std::ifstream in(path);
    FLB_REQUIRE(in.good(), "cannot open input file '" + path + "'");
    std::string format = args.get("format", "");
    if (format.empty()) {
      // Infer from extension.
      format = path.size() > 4 && path.substr(path.size() - 4) == ".stg"
                   ? "stg"
                   : "flb";
    }
    if (format == "stg") return read_stg(in, params);
    FLB_REQUIRE(format == "flb", "unknown --format '" + format + "'");
    return read_text(in);
  }

  std::string workload = args.get("workload", "LU");
  auto tasks = static_cast<std::size_t>(args.get_int("tasks", 2000));
  return make_workload(workload, tasks, params);
}

SimNetwork parse_network(const std::string& name) {
  if (name == "free") return SimNetwork::kContentionFree;
  if (name == "single-port") return SimNetwork::kSinglePortSend;
  if (name == "single-port-recv") return SimNetwork::kSinglePortSendRecv;
  FLB_REQUIRE(false, "unknown --sim model '" + name +
                         "' (free | single-port | single-port-recv)");
}

int run(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "flb_sched: schedule a task graph on P processors\n\n"
           "graph source:   --workload LU|Laplace|Stencil|FFT|Gauss|Random\n"
           "                --tasks N  --ccr X  --seed S\n"
           "            or  --input FILE [--format flb|stg]\n"
           "scheduling:     --algo NAME|all (default all)  --procs P\n"
           "output:         --gantt  --listing  --dot FILE  --save FILE\n"
           "                --json FILE  --trace FILE (chrome://tracing)\n"
           "                --sched-out FILE (text, for flb_verify)\n"
           "diagnostics:    --analyze (bindings, chain, utilization)\n"
           "simulation:     --sim free|single-port|single-port-recv\n";
    return 0;
  }

  TaskGraph g = load_graph(args);
  const auto procs = static_cast<ProcId>(args.get_int("procs", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "graph: " << g.name() << "  V=" << g.num_tasks()
            << " E=" << g.num_edges() << " CCR=" << format_fixed(g.ccr(), 2)
            << "  CP=" << format_fixed(critical_path(g), 1)
            << "  P=" << procs << "\n\n";

  if (args.has("save")) {
    std::ofstream out(args.get("save", ""));
    FLB_REQUIRE(out.good(), "cannot open --save file");
    write_text(out, g);
    std::cout << "graph written to " << args.get("save", "") << "\n";
  }

  std::vector<std::string> algos;
  std::string algo = args.get("algo", "all");
  if (algo == "all") {
    algos = extended_scheduler_names();
  } else {
    algos.push_back(algo);
  }

  Table table({"algorithm", "makespan", "speedup", "efficiency",
               "imbalance", "time [ms]", "feasible"});
  for (const std::string& name : algos) {
    auto sched = make_scheduler(name, seed);
    Stopwatch sw;
    Schedule s = sched->run(g, procs);
    double ms = sw.millis();
    table.add_row({name, format_fixed(s.makespan(), 2),
                   format_fixed(speedup(g, s), 2),
                   format_fixed(efficiency(g, s), 3),
                   format_fixed(load_imbalance(g, s), 3),
                   format_fixed(ms, 2),
                   is_valid_schedule(g, s) ? "yes" : "NO"});

    bool last = name == algos.back();
    if (last && args.has("gantt")) {
      std::cout << "Gantt (" << name << "):\n";
      write_gantt(std::cout, g, s, 90);
      std::cout << "\n";
    }
    if (last && args.has("listing")) write_schedule_listing(std::cout, s);
    if (last && args.has("dot")) {
      std::ofstream out(args.get("dot", ""));
      FLB_REQUIRE(out.good(), "cannot open --dot file");
      write_dot(out, g, s);
      std::cout << "annotated DOT written to " << args.get("dot", "")
                << "\n\n";
    }
    if (last && args.has("json")) {
      std::ofstream out(args.get("json", ""));
      FLB_REQUIRE(out.good(), "cannot open --json file");
      write_schedule_json(out, g, s);
      std::cout << "schedule JSON written to " << args.get("json", "")
                << "\n";
    }
    if (last && args.has("sched-out")) {
      std::ofstream out(args.get("sched-out", ""));
      FLB_REQUIRE(out.good(), "cannot open --sched-out file");
      write_schedule_text(out, s);
      std::cout << "schedule text written to " << args.get("sched-out", "")
                << " (check with flb_verify)\n";
    }
    if (last && args.has("trace")) {
      std::ofstream out(args.get("trace", ""));
      FLB_REQUIRE(out.good(), "cannot open --trace file");
      write_chrome_trace(out, g, s);
      std::cout << "chrome://tracing timeline written to "
                << args.get("trace", "") << "\n";
    }
    if (last && args.has("analyze")) {
      UtilizationReport rep = analyze_utilization(g, s);
      std::cout << name << " diagnostics:\n";
      std::cout << "  mean utilization: "
                << format_fixed(rep.mean_utilization * 100.0, 1) << "%\n";
      std::cout << "  binding mix: processor "
                << format_fixed(rep.processor_bound * 100.0, 1)
                << "%, local-data "
                << format_fixed(rep.local_data_bound * 100.0, 1)
                << "%, remote-data "
                << format_fixed(rep.remote_data_bound * 100.0, 1)
                << "%, slack " << format_fixed(rep.slack_bound * 100.0, 1)
                << "%\n";
      auto chain = critical_chain(g, s);
      std::cout << "  makespan chain (" << chain.size() << " tasks):";
      std::size_t shown = 0;
      for (TaskId t : chain) {
        if (shown++ == 12) {
          std::cout << " ...";
          break;
        }
        std::cout << " t" << t;
      }
      std::cout << "\n\n";
    }
    if (args.has("sim")) {
      SimOptions options;
      options.network = parse_network(args.get("sim", "free"));
      SimResult r = simulate(g, s, options);
      std::cout << name << " simulated on '" << args.get("sim", "free")
                << "' network: makespan " << format_fixed(r.makespan, 2)
                << " (analytic " << format_fixed(s.makespan(), 2) << ", x"
                << format_fixed(r.makespan / s.makespan(), 3) << "), "
                << r.messages << " messages\n";
    }
  }
  std::cout << "\n";
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const flb::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
