// Quickstart: build a task graph, schedule it with FLB, inspect the result.
//
// This is the smallest end-to-end use of the library's public API:
//   TaskGraphBuilder -> FlbScheduler::run -> Schedule + metrics + Gantt.

#include <iostream>

#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/validator.hpp"

int main() {
  using namespace flb;

  // A small pipeline with a parallel middle section:
  //
  //          prepare
  //         /   |    .
  //     workA workB workC
  //         .   |   /
  //         combine
  TaskGraphBuilder builder;
  builder.set_name("quickstart");
  TaskId prepare = builder.add_task(2.0);
  TaskId work_a = builder.add_task(4.0);
  TaskId work_b = builder.add_task(3.0);
  TaskId work_c = builder.add_task(5.0);
  TaskId combine = builder.add_task(1.0);
  for (TaskId w : {work_a, work_b, work_c}) {
    builder.add_edge(prepare, w, 1.0);   // distribute inputs
    builder.add_edge(w, combine, 2.0);   // collect results
  }
  TaskGraph graph = std::move(builder).build();

  std::cout << "Graph: " << graph.name() << " with " << graph.num_tasks()
            << " tasks, " << graph.num_edges() << " edges, CCR "
            << graph.ccr() << "\n";
  std::cout << "Critical path (with communication): " << critical_path(graph)
            << "\n\n";

  // Schedule on two processors with FLB.
  FlbScheduler scheduler;
  Schedule schedule = scheduler.run(graph, /*num_procs=*/2);

  std::cout << "FLB schedule on 2 processors:\n";
  write_schedule_listing(std::cout, schedule);
  std::cout << "\n";
  write_gantt(std::cout, graph, schedule, 72);

  std::cout << "\nmakespan:  " << schedule.makespan() << "\n";
  std::cout << "speedup:   " << speedup(graph, schedule) << "\n";
  std::cout << "efficiency: " << efficiency(graph, schedule) << "\n";
  std::cout << "feasible:  "
            << (is_valid_schedule(graph, schedule) ? "yes" : "NO") << "\n";
  return 0;
}
