// Reproduces Section 5 of the paper: the FLB execution trace (Table 1) of
// the Fig. 1 example graph scheduled on two processors, followed by the
// resulting Gantt chart.

#include <iostream>

#include "flb/core/trace.hpp"
#include "flb/graph/dot.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/util/cli.hpp"
#include "flb/workloads/paper_example.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  CliArgs args(argc, argv);

  TaskGraph g = paper_example_graph();

  std::cout << "Fig. 1 example graph (" << g.num_tasks() << " tasks, "
            << g.num_edges() << " edges)\n";
  if (args.has("dot")) {
    std::cout << "\nGraphviz DOT:\n";
    write_dot(std::cout, g);
  }

  std::cout << "\nFLB execution trace on 2 processors (paper Table 1):\n"
            << "cells: EP tasks as t[EMT; BL/LMT], non-EP tasks as t[LMT]\n\n";
  std::vector<FlbTraceRow> rows = trace_flb(g, 2);
  write_trace(std::cout, rows, 2);

  std::cout << "\nResulting schedule:\n";
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  write_gantt(std::cout, g, s, 70);
  std::cout << "\nmakespan: " << s.makespan() << " (paper: t7 finishes at 14)\n";
  return 0;
}
