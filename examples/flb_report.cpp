// flb_report — generate a self-contained HTML report comparing every
// algorithm on one workload: metrics table, SVG Gantt chart per algorithm,
// and the binding/utilization diagnostics. Open the output in any browser.
//
// Usage:
//   flb_report [--workload LU] [--tasks 300] [--procs 8] [--ccr 1.0]
//              [--seed 1] [--out report.html]

#include <fstream>
#include <iostream>

#include "flb/graph/properties.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/schedule_analysis.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  try {
    CliArgs args(argc, argv);
    const std::string workload = args.get("workload", "LU");
    const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 300));
    const auto procs = static_cast<ProcId>(args.get_int("procs", 8));
    const std::string out_path = args.get("out", "report.html");
    WorkloadParams params;
    params.ccr = args.get_double("ccr", 1.0);
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    TaskGraph g = make_workload(workload, tasks, params);

    std::ofstream out(out_path);
    FLB_REQUIRE(out.good(), "cannot open --out file '" + out_path + "'");

    out << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
        << "<title>flb report — " << g.name() << "</title>\n"
        << "<style>body{font-family:sans-serif;max-width:1100px;margin:24px "
           "auto;padding:0 12px}table{border-collapse:collapse}td,th{border:"
           "1px solid #ccc;padding:4px 10px;text-align:right}th{background:"
           "#f5f5f5}td:first-child,th:first-child{text-align:left}h2{margin-"
           "top:32px}</style></head><body>\n";
    out << "<h1>flb scheduling report</h1>\n";
    out << "<p><b>" << g.name() << "</b> — " << g.num_tasks() << " tasks, "
        << g.num_edges() << " edges, CCR " << format_fixed(g.ccr(), 2)
        << ", P = " << procs << ", critical path "
        << format_fixed(critical_path(g), 1)
        << ", lower bound "
        << format_fixed(makespan_lower_bound(g, procs), 1) << "</p>\n";

    out << "<h2>Summary</h2>\n<table><tr><th>algorithm</th><th>makespan"
           "</th><th>speedup</th><th>utilization</th><th>remote-data "
           "bound</th><th>time [ms]</th></tr>\n";

    struct Row {
      std::string name;
      Schedule schedule;
    };
    std::vector<Row> rows;
    for (const std::string& name : extended_scheduler_names()) {
      auto sched = make_scheduler(name, params.seed);
      Stopwatch sw;
      Schedule s = sched->run(g, procs);
      double ms = sw.millis();
      FLB_REQUIRE(is_valid_schedule(g, s), name + " produced an infeasible schedule");
      UtilizationReport rep = analyze_utilization(g, s);
      out << "<tr><td>" << name << "</td><td>"
          << format_fixed(s.makespan(), 2) << "</td><td>"
          << format_fixed(speedup(g, s), 2) << "</td><td>"
          << format_fixed(rep.mean_utilization * 100.0, 1) << "%</td><td>"
          << format_fixed(rep.remote_data_bound * 100.0, 1) << "%</td><td>"
          << format_fixed(ms, 2) << "</td></tr>\n";
      rows.push_back({name, std::move(s)});
    }
    out << "</table>\n";

    for (const Row& row : rows) {
      out << "<h2>" << row.name << " — makespan "
          << format_fixed(row.schedule.makespan(), 2) << "</h2>\n";
      write_svg_gantt(out, g, row.schedule, 1000);
    }
    out << "</body></html>\n";

    std::cout << "report for " << g.name() << " (" << rows.size()
              << " algorithms) written to " << out_path << "\n";
    return 0;
  } catch (const flb::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
