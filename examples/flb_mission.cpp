// One mission of the online recovery runtime, narrated event by event.
//
// A schedule is dispatched onto a machine that fails while it runs: a
// processor dies mid-flight, a survivor throttles to half speed for a
// while, and the dead processor eventually reboots and rejoins with cold
// caches. Nobody tells the controller any of this in advance — it watches
// the simulator's event stream (the same SimEvent log a real runtime's
// heartbeats would produce) and re-repairs the schedule after each
// observation, validating every continuation before installing it.
//
// The episode prints as a timeline: each observed event, then the repair
// it triggered — strategy, survivors, migrated work, the planned makespan
// of the freshly installed continuation. At the end the executed outcome
// is compared against the oracle: a single repair computed with the full
// fault plan. The gap is the price of not knowing the future.
//
// With --detector the mission is flown on an *unreliable failure
// detector* instead of the perfect event stream: liveness is inferred from
// seeded heartbeats that can be lost or delayed, so the controller
// suspects, sometimes wrongly (the narrated episode includes a false
// alarm), launches speculative re-execution at suspicion, promotes it on
// confirmation, cancels and reconciles on exoneration, and re-derives the
// checkpoint interval from the observed failure rate.
//
// Usage: flb_mission [tasks] [procs] [seed] [--detector] [--plan FILE]
//   tasks  graph size       (default 40)
//   procs  processor count  (default 4)
//   seed   workload + fault seed (default 7)
//   --plan FILE  fly the mission against a fault plan read from FILE
//                (sim/faults.hpp text format) instead of the built-in
//                episode; with --detector the plan must declare a
//                `heartbeat` directive — its absence is a CLI error up
//                front, not a throw deep inside the run.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/runtime/failure_detector.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;

  bool detector = false;
  std::string plan_path;
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--detector") {
      detector = true;
    } else if (arg == "--plan") {
      if (i + 1 >= argc) {
        std::cerr << "flb_mission: --plan needs a file path\n";
        return 1;
      }
      plan_path = argv[++i];
    } else {
      pos.push_back(argv[i]);
    }
  }
  const std::size_t tasks =
      pos.size() > 0 ? std::strtoul(pos[0], nullptr, 10) : 40;
  const ProcId procs =
      pos.size() > 1 ? static_cast<ProcId>(std::strtoul(pos[1], nullptr, 10))
                     : 4;
  const std::size_t seed =
      pos.size() > 2 ? std::strtoul(pos[2], nullptr, 10) : 7;
  if (procs < 3) {
    std::cerr << "flb_mission needs at least 3 processors\n";
    return 1;
  }

  WorkloadParams params;
  params.seed = seed;
  params.ccr = 1.0;
  TaskGraph g = make_workload("LU", tasks, params);

  FlbScheduler flb;
  Schedule nominal = flb.run(g, procs);
  const Cost span = nominal.makespan();
  std::cout << "Mission: " << g.name() << " on " << procs
            << " processors, nominal makespan " << span << ".\n\n";
  write_gantt(std::cout, g, nominal, 72);

  // The world the controller does NOT get to read. Either loaded from
  // --plan, or the built-in episode: processor 1 dies a quarter of the way
  // in and reboots at 60%; processor 2 runs at half speed for a stretch;
  // every task with enough downstream cost checkpoints a quarter of the
  // mean task work apart.
  FaultPlan world;
  if (!plan_path.empty()) {
    std::ifstream in(plan_path);
    if (!in.good()) {
      std::cerr << "flb_mission: cannot open --plan file '" << plan_path
                << "'\n";
      return 1;
    }
    world = read_fault_plan(in);
    world.validate(procs);
  } else {
    const Cost mean_comp = g.total_comp() / static_cast<Cost>(g.num_tasks());
    world.seed = seed;
    world.failures.push_back({1, 0.25 * span});
    world.rejoins.push_back({1, 0.60 * span});
    world.slowdowns.push_back({2, 0.10 * span, 0.5, 0.40 * span});
    world.checkpoint = {0.25 * mean_comp, 0.01 * mean_comp,
                        0.5 * mean_comp};
    if (detector) {
      // Noisy sensing: heartbeats every 3% of the nominal span, one in
      // ten lost — enough, at the default seed, for a false alarm on a
      // perfectly healthy processor without drowning the timeline.
      world.heartbeat.period = 0.03 * span;
      world.heartbeat.loss_probability = 0.1;
    }
  }

  runtime::RuntimeOptions options;
  options.validate = true;
  if (detector) {
    // The detector runs on the plan's heartbeat directive; surface its
    // absence here instead of letting the runtime throw mid-mission.
    if (!world.heartbeat.enabled()) {
      std::cerr << "flb_mission: --detector needs heartbeat sensing, but "
                   "the fault plan '"
                << plan_path
                << "' declares no `heartbeat` directive (a period of 0 "
                   "disables it); add a line like\n"
                   "  heartbeat <period> <loss> <delay_prob> "
                   "<delay_factor> 2 4\n";
      return 1;
    }
    options.use_detector = true;
    options.speculate = true;
    options.adapt_checkpoint = true;
    std::cout << "\nThe fault plan stays sealed; liveness is *inferred* "
                 "from lossy heartbeats\n(period "
              << world.heartbeat.period << ", loss probability "
              << world.heartbeat.loss_probability
              << ") -- suspicions can be wrong.\n";
  } else {
    std::cout << "\nThe fault plan stays sealed; the controller sees only "
                 "the event stream.\n";
  }
  runtime::RuntimeResult mission =
      runtime::run_online_recovery(g, nominal, world, options);

  // Timeline: each event in observation order, then the repair whose
  // horizon it fell under. Events past the last horizon never triggered a
  // reaction (the execution was already complete).
  std::cout << "\n-- Timeline --\n";
  std::size_t next_event = 0;
  std::size_t next_belief = 0;
  for (std::size_t r = 0; r < mission.repairs.size(); ++r) {
    const runtime::RepairInvocation& inv = mission.repairs[r];
    while (next_event < mission.events.size() &&
           mission.events[next_event].time <= inv.horizon) {
      std::cout << "  observed  " << to_string(mission.events[next_event])
                << "\n";
      ++next_event;
    }
    while (next_belief < mission.beliefs.size() &&
           mission.beliefs[next_belief].time <= inv.horizon) {
      std::cout << "  believed  " << to_string(mission.beliefs[next_belief])
                << "\n";
      ++next_belief;
    }
    std::cout << "  repair #" << r + 1 << "  at t=" << inv.observed_at
              << " horizon=" << inv.horizon << " events=" << inv.events
              << " survivors=" << inv.survivors;
    if (inv.unreachable > 0)
      std::cout << " unreachable=" << inv.unreachable;
    if (inv.deferred) {
      std::cout << "  -> deferred (no survivor to repair onto)\n";
      continue;
    }
    std::cout << "\n            "
              << (inv.used == RepairStrategy::kFlbResume ? "FLB resume"
                                                         : "greedy fallback")
              << ", " << inv.migrated << " tasks migrated, "
              << inv.reexecuted << " re-executed, planned makespan "
              << inv.makespan;
    if (inv.retry_attempt > 0)
      std::cout << " (retry attempt " << inv.retry_attempt
                << ", backed off)";
    if (inv.speculative) std::cout << " [speculation launched]";
    if (inv.promoted) std::cout << " [speculation promoted]";
    if (inv.cancelled) std::cout << " [speculation cancelled]";
    if (inv.failure_rate > 0.0)
      std::cout << " [checkpoint interval re-derived: "
                << inv.checkpoint_interval << "]";
    std::cout << "\n";
  }
  for (; next_event < mission.events.size(); ++next_event)
    std::cout << "  observed  " << to_string(mission.events[next_event])
              << "  (after completion; no reaction)\n";
  for (; next_belief < mission.beliefs.size(); ++next_belief)
    std::cout << "  believed  " << to_string(mission.beliefs[next_belief])
              << "  (after completion; no reaction)\n";

  std::cout << "\nFinal installed schedule:\n\n";
  write_gantt(std::cout, g, mission.schedule, 72);

  // The oracle: one repair computed with the sealed plan in hand.
  SimOptions opts;
  opts.faults = &world;
  SimResult partial = simulate(g, nominal, opts);
  RepairResult oracle = repair_schedule(g, nominal, partial, world);

  std::cout << "\n-- Outcome --\n";
  std::cout << "executed makespan:  " << mission.makespan << " ("
            << mission.makespan / span << "x nominal)\n";
  std::cout << "oracle planned:     " << oracle.schedule.makespan() << " ("
            << oracle.schedule.makespan() / span << "x nominal)\n";
  std::cout << "repairs invoked:    " << mission.repairs.size() << "\n";
  std::cout << "events observed:    " << mission.events_observed << "\n";
  std::cout << "complete:           " << (mission.complete ? "yes" : "NO")
            << "\n";
  std::cout << "degraded to greedy: " << (mission.degraded ? "yes" : "no")
            << "\n";
  if (detector) {
    std::cout << "false alarms:       " << mission.false_alarms << "\n";
    std::cout << "confirmations:      " << mission.confirmations << "\n";
    std::cout << "detection latency:  " << mission.mean_detection_latency
              << " (mean, death to confirmation)\n";
    std::cout << "speculative waste:  " << mission.speculative_waste << " ("
              << mission.speculative_tasks << " cancelled placements)\n";
    if (mission.suppressed_alarms > 0)
      std::cout << "suppressed alarms:  " << mission.suppressed_alarms
                << " (absorbed by the self-tuned threshold)\n";
    if (!mission.suspect_trace.empty()) {
      std::cout << "suspect threshold:  ";
      for (std::size_t i = 0; i < mission.suspect_trace.size(); ++i)
        std::cout << (i > 0 ? " > " : "")
                  << mission.suspect_trace[i].second;
      std::cout << " (periods, after each raise/decay)\n";
    }
  }
  std::cout << "event-log digest:   " << std::hex << mission.event_digest;
  if (detector)
    std::cout << "\nbelief digest:      " << mission.belief_digest;
  std::cout << "\nschedule digest:    " << mission.schedule_digest
            << std::dec << "\n";
  return mission.complete ? 0 : 1;
}
