// flb_serve: scheduling as a service — stream a mixed workload-generator
// request mix through the concurrent batch driver (flb::serve) and report
// throughput, per-request latency and the determinism fingerprint.
//
// Two modes are demonstrated:
//  1. schedule_batch(): the whole request set is known up front; workers
//     claim requests via an atomic index (results in input order).
//  2. ScheduleService: requests arrive one at a time against a bounded
//     queue; submit() blocks when the queue is full (backpressure), and
//     each request's latency includes its queueing delay.
//
// Usage: flb_serve [--dags N] [--tasks V] [--procs P] [--threads T]
//                  [--queue Q]

#include <algorithm>
#include <iostream>
#include <vector>

#include "flb/serve/serve.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  CliArgs args(argc, argv);
  const std::size_t dags =
      static_cast<std::size_t>(args.get_int("dags", 24));
  const std::size_t tasks =
      static_cast<std::size_t>(args.get_int("tasks", 150));
  const ProcId procs = static_cast<ProcId>(args.get_int("procs", 8));
  const std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 4));
  const std::size_t queue =
      static_cast<std::size_t>(args.get_int("queue", 8));

  // The request mix: every workload family, alternating the paper's two
  // CCR regimes, a fresh seed per request.
  const std::vector<std::string> families = workload_names();
  std::vector<TaskGraph> graphs;
  graphs.reserve(dags);
  for (std::size_t i = 0; i < dags; ++i) {
    WorkloadParams params;
    params.seed = i + 1;
    params.ccr = (i % 2 == 0) ? 0.2 : 5.0;
    graphs.push_back(
        make_workload(families[i % families.size()], tasks, params));
  }

  std::cout << "Serving " << dags << " mixed DAGs (V~" << tasks << ", P="
            << procs << ") on " << threads << " workers\n\n";

  // --- Mode 1: one-shot batch -------------------------------------------
  std::vector<serve::ScheduleRequest> requests;
  requests.reserve(dags);
  for (const TaskGraph& g : graphs) requests.push_back({&g, procs});
  serve::BatchOptions bopts;
  bopts.num_threads = threads;
  Stopwatch sw;
  std::vector<serve::ScheduleResult> batch =
      serve::schedule_batch(requests, bopts);
  const double batch_ms = sw.millis();

  std::cout << "batch:   " << batch_ms << " ms total, "
            << static_cast<double>(dags) * 1000.0 / batch_ms << " DAGs/s\n";

  // --- Mode 2: streaming service with backpressure ----------------------
  serve::ScheduleService::Options sopts;
  sopts.num_threads = threads;
  sopts.queue_capacity = queue;
  serve::ScheduleService service(sopts);
  sw.restart();
  for (const TaskGraph& g : graphs) (void)service.submit(g, procs);
  service.drain();
  const double stream_ms = sw.millis();
  serve::ServiceStats st = service.stats();

  std::vector<double> latency;
  latency.reserve(dags);
  bool identical = true;
  for (std::size_t id = 0; id < dags; ++id) {
    const serve::ScheduleResult& r = service.result(id);
    latency.push_back(r.latency_ms);
    if (r.digest != batch[id].digest) identical = false;
  }
  std::sort(latency.begin(), latency.end());
  const double p50 = latency[latency.size() / 2];
  const double p99 =
      latency[std::min(latency.size() - 1, (latency.size() * 99) / 100)];

  std::cout << "stream:  " << stream_ms << " ms total, "
            << static_cast<double>(dags) * 1000.0 / stream_ms
            << " DAGs/s, p50 " << p50 << " ms, p99 " << p99 << " ms, "
            << st.backpressure_waits << " backpressure waits\n";
  std::cout << "digests: "
            << (identical ? "stream == batch (deterministic)"
                          : "MISMATCH — nondeterminism detected!")
            << "\n";
  service.close();
  FLB_REQUIRE(identical,
              "flb_serve: stream and batch digests must be identical");
  return 0;
}
