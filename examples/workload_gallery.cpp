// Gallery of the library's workload generators: structural statistics for
// each family and, on request, DOT or flb-text export of a chosen instance.
//
// Usage:
//   workload_gallery                      # table of all families
//   workload_gallery --tasks 500 --ccr 5  # resized / re-weighted
//   workload_gallery --export LU --format dot   # print one graph

#include <iostream>

#include "flb/graph/dot.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/graph/width.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  CliArgs args(argc, argv);
  const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 300));
  WorkloadParams params;
  params.ccr = args.get_double("ccr", 1.0);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  if (args.has("export")) {
    TaskGraph g = make_workload(args.get("export", "LU"), tasks, params);
    if (args.get("format", "text") == "dot") {
      write_dot(std::cout, g);
    } else {
      write_text(std::cout, g);
    }
    return 0;
  }

  Table table({"workload", "V", "E", "CCR", "depth", "max level width",
               "width W", "CP (comm)", "CP (comp)"});
  for (const std::string& name : workload_names()) {
    TaskGraph g = make_workload(name, tasks, params);
    table.add_row({g.name(), std::to_string(g.num_tasks()),
                   std::to_string(g.num_edges()), format_fixed(g.ccr(), 2),
                   std::to_string(level_decomposition(g).size()),
                   std::to_string(max_level_width(g)),
                   std::to_string(exact_width(g)),
                   format_fixed(critical_path(g), 1),
                   format_fixed(computation_critical_path(g), 1)});
  }
  table.print(std::cout);
  std::cout << "\nwidth W is the maximum antichain (Dilworth / "
               "Hopcroft-Karp on the transitive closure)\n";
  return 0;
}
