// flb_verify — independent schedule checker. Reads a task graph and a
// schedule (both in the library's text formats) and reports every
// constraint violation, plus quality metrics when the schedule is
// feasible. Lets external tools (or hand-written schedules) be checked
// against this library's validator and lower bounds.
//
// Usage:
//   flb_verify --graph g.flb --schedule s.flbsched
//   flb_sched --workload LU --algo FLB --save g.flb ... | (write schedule)
//
// Exit code: 0 feasible, 1 infeasible, 2 usage/parse error.

#include <fstream>
#include <iostream>

#include "flb/graph/serialize.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/table.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  try {
    CliArgs args(argc, argv);
    if (!args.has("graph") || !args.has("schedule")) {
      std::cerr << "usage: flb_verify --graph FILE --schedule FILE\n"
                   "graph: flb-taskgraph text (see graph/serialize.hpp)\n"
                   "schedule: flb-schedule text (see sched/export.hpp)\n";
      return 2;
    }
    std::ifstream gin(args.get("graph", ""));
    FLB_REQUIRE(gin.good(), "cannot open --graph file");
    TaskGraph g = read_text(gin);
    std::ifstream sin(args.get("schedule", ""));
    FLB_REQUIRE(sin.good(), "cannot open --schedule file");
    Schedule s = read_schedule_text(sin);

    FLB_REQUIRE(s.num_tasks() == g.num_tasks(),
                "schedule and graph disagree on the task count");

    auto violations = validate_schedule(g, s);
    if (!violations.empty()) {
      std::cout << "INFEASIBLE: " << violations.size() << " violation(s)\n";
      for (const Violation& v : violations)
        std::cout << "  " << to_string(v) << "\n";
      return 1;
    }

    std::cout << "feasible\n";
    std::cout << "  makespan:    " << format_compact(s.makespan()) << "\n";
    std::cout << "  lower bound: "
              << format_compact(makespan_lower_bound(g, s.num_procs()))
              << "\n";
    std::cout << "  speedup:     " << format_fixed(speedup(g, s), 3) << "\n";
    std::cout << "  efficiency:  " << format_fixed(efficiency(g, s), 3)
              << "\n";
    std::cout << "  imbalance:   " << format_fixed(load_imbalance(g, s), 3)
              << "\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
