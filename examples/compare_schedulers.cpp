// Compare every algorithm in the library (MCP, ETF, DSC-LLB, FCP, FLB) on
// a chosen workload: schedule length, NSL vs MCP, speedup and running time.
//
// Usage:
//   compare_schedulers [--workload LU|Laplace|Stencil|FFT|Gauss|Random]
//                      [--tasks 2000] [--procs 8] [--ccr 1.0] [--seed 1]

#include <iostream>

#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  CliArgs args(argc, argv);
  const std::string workload = args.get("workload", "LU");
  const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 2000));
  const auto procs = static_cast<ProcId>(args.get_int("procs", 8));
  WorkloadParams params;
  params.ccr = args.get_double("ccr", 1.0);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  TaskGraph g = make_workload(workload, tasks, params);
  std::cout << "Workload " << g.name() << ": " << g.num_tasks() << " tasks, "
            << g.num_edges() << " edges, CCR " << format_fixed(g.ccr(), 2)
            << ", P = " << procs << "\n\n";

  // MCP is the NSL reference, exactly as in the paper's Fig. 4.
  Cost mcp_makespan = 0.0;
  Table table({"algorithm", "makespan", "NSL (vs MCP)", "speedup",
               "time [ms]", "feasible"});
  for (const std::string& name : scheduler_names()) {
    auto sched = make_scheduler(name, params.seed);
    Stopwatch sw;
    Schedule s = sched->run(g, procs);
    double ms = sw.millis();
    if (name == "MCP") mcp_makespan = s.makespan();
    table.add_row({name, format_fixed(s.makespan(), 2),
                   format_fixed(s.makespan() / mcp_makespan, 3),
                   format_fixed(speedup(g, s), 2), format_fixed(ms, 2),
                   is_valid_schedule(g, s) ? "yes" : "NO"});
  }
  table.print(std::cout);
  return 0;
}
