// flb_sweep — full-factorial experiment runner producing tidy CSV for
// external analysis (R / pandas / gnuplot): one row per (workload, CCR,
// P, seed, algorithm) cell with makespan, NSL vs MCP, speedup, scheduling
// time and schedule diagnostics.
//
// Usage:
//   flb_sweep > sweep.csv
//   flb_sweep --tasks 2000 --seeds 5 --procs 2,4,8,16,32
//             --ccr 0.2,5 --workloads LU,Laplace,Stencil
//             --algos MCP,ETF,FLB > sweep.csv     (one line)

#include <iostream>
#include <sstream>

#include "flb/sched/metrics.hpp"
#include "flb/sched/schedule_analysis.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb;
  try {
    CliArgs args(argc, argv);
    const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 1000));
    const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 3));
    std::vector<std::int64_t> procs =
        args.get_int_list("procs", {2, 4, 8, 16, 32});
    std::vector<double> ccrs = args.get_double_list("ccr", {0.2, 5.0});
    std::vector<std::string> workloads =
        split_list(args.get("workloads", "LU,Laplace,Stencil"));
    std::vector<std::string> algos;
    if (args.has("algos")) {
      algos = split_list(args.get("algos", ""));
    } else {
      algos = extended_scheduler_names();
    }

    std::cout << "workload,ccr,procs,seed,algorithm,tasks,edges,makespan,"
                 "nsl_vs_mcp,speedup,efficiency,imbalance,utilization,"
                 "remote_bound,sched_ms\n";

    for (const std::string& workload : workloads) {
      for (double ccr : ccrs) {
        for (std::size_t seed = 1; seed <= seeds; ++seed) {
          WorkloadParams params;
          params.ccr = ccr;
          params.seed = seed;
          TaskGraph g = make_workload(workload, tasks, params);
          for (std::int64_t p64 : procs) {
            auto procs_now = static_cast<ProcId>(p64);
            Cost mcp_len = 0.0;
            {
              auto mcp = make_scheduler("MCP", seed);
              mcp_len = mcp->run(g, procs_now).makespan();
            }
            for (const std::string& algo : algos) {
              auto sched = make_scheduler(algo, seed);
              Stopwatch sw;
              Schedule s = sched->run(g, procs_now);
              double ms = sw.millis();
              FLB_REQUIRE(is_valid_schedule(g, s),
                          algo + " infeasible on " + g.name());
              UtilizationReport rep = analyze_utilization(g, s);
              std::cout << workload << ',' << format_compact(ccr) << ','
                        << procs_now << ',' << seed << ',' << algo << ','
                        << g.num_tasks() << ',' << g.num_edges() << ','
                        << format_fixed(s.makespan(), 4) << ','
                        << format_fixed(s.makespan() / mcp_len, 4) << ','
                        << format_fixed(speedup(g, s), 4) << ','
                        << format_fixed(efficiency(g, s), 4) << ','
                        << format_fixed(load_imbalance(g, s), 4) << ','
                        << format_fixed(rep.mean_utilization, 4) << ','
                        << format_fixed(rep.remote_data_bound, 4) << ','
                        << format_fixed(ms, 3) << '\n';
            }
          }
        }
      }
    }
    return 0;
  } catch (const flb::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
