// flb_lint — semantic schedule linter CLI over flb::analysis.
//
// Feeds a (graph, schedule[, trace]) triple through the rule engine and
// prints structured diagnostics: rule id, severity, offending task /
// processor / trace step, expected vs actual value and a fix hint. Unlike
// flb_verify (feasibility only), flb_lint also checks the paper's
// *selection invariants* — ETF conformance, EP-type classification, PRT
// monotonicity, trace/schedule consistency — when the schedule comes from
// FLB and an execution trace is available (--algo FLB, the default).
//
// Graph sources (pick one):
//   --paper-example          the Fig. 1 graph (default)
//   --graph FILE             flb-taskgraph text (graph/serialize.hpp)
//   --dot FILE               Graphviz DOT subset (graph/dot.hpp)
//   --stg FILE               Standard Task Graph format (graph/stg.hpp)
//   --workload NAME          generated workload (--tasks V, --seed S)
//
// Schedule sources (pick one):
//   --algo NAME              run a registry scheduler (default FLB; FLB
//                            additionally captures the trace and runs the
//                            theorem tier)
//   --schedule FILE          flb-schedule text of an external schedule
//                            (feasibility + quality tiers only)
//
// Output and policy:
//   --procs P                processor count (default 2)
//   --faults FILE            lint against a fault plan (sim/faults.hpp
//                            text format): when the plan declares partial
//                            partitions, the feasibility tier additionally
//                            runs rule `partitioned-link` — no message may
//                            be scheduled across a link the plan
//                            partitions at its send instant
//   --json                   machine-readable report
//   --no-quality             disable the warn/info tier
//   --fail-on warn|error     exit-code threshold (default error)
//   --list-rules             print the rule catalogue and exit
//
// Online-repair mode:
//   --repair-at F            kill --victim (default 1) at fraction F of the
//                            nominal makespan, repair the partial execution
//                            (sched/repair.hpp) and lint the *continuation*
//                            against its duration vector — the feasibility
//                            tier the online recovery controller re-checks
//                            on every installed schedule. The quality and
//                            theorem tiers are off here: a continuation's
//                            durations are stretched by the degraded
//                            machine, so nominal-cost heuristics do not
//                            apply. A repair regression exits 2.
//
// Runtime-audit mode:
//   --audit                  fly one online-recovery episode (requires
//                            --faults) and run the runtime auditor
//                            (analysis/audit.hpp) over its RuntimeResult:
//                            event-log canonical order, kill/rejoin and
//                            cut/heal pairing against the resolved plan,
//                            partition-drop provenance, belief causality,
//                            gossip quorum soundness, checkpoint and
//                            repair provenance, digest consistency.
//     --mode M               online | detector | gossip (default online;
//                            detector/gossip need a heartbeat directive in
//                            the plan)
//     --debounce D           controller coalescing window (default 0)
//     --quorum Q             gossip concurring-observer threshold (def. 2)
//   With --audit, --list-rules prints the audit catalogue instead.
//
// Exit code: 0 = no diagnostic at/above --fail-on; otherwise the max
// severity seen (1 = warn, 2 = error); 3 = usage or parse error.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "flb/analysis/audit.hpp"
#include "flb/analysis/lint.hpp"
#include "flb/core/trace.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/graph/dot.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/graph/stg.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

void print_usage() {
  std::cerr
      << "usage: flb_lint [graph source] [schedule source] [options]\n"
         "graph:    --paper-example | --graph FILE | --dot FILE |\n"
         "          --stg FILE | --workload NAME [--tasks V] [--seed S]\n"
         "schedule: --algo NAME (default FLB) | --schedule FILE\n"
         "options:  --procs P (default 2), --faults FILE (fault plan;\n"
         "          enables the partitioned-link rule), --json,\n"
         "          --no-quality,\n"
         "          --fail-on warn|error (default error), --list-rules,\n"
         "          --repair-at F [--victim p] (lint the repaired\n"
         "          continuation after a fail-stop at F * makespan)\n"
         "audit:    --audit (fly one online-recovery episode under the\n"
         "          --faults plan and audit its RuntimeResult)\n"
         "          [--mode online|detector|gossip] [--debounce D]\n"
         "          [--quorum Q]\n";
}

flb::TaskGraph load_graph(const flb::CliArgs& args) {
  const int sources = int(args.has("graph")) + int(args.has("dot")) +
                      int(args.has("stg")) + int(args.has("workload")) +
                      int(args.has("paper-example"));
  FLB_REQUIRE(sources <= 1, "flb_lint: pick at most one graph source");
  if (args.has("graph")) {
    std::ifstream in(args.get("graph", ""));
    FLB_REQUIRE(in.good(), "cannot open --graph file");
    return flb::read_text(in);
  }
  if (args.has("dot")) {
    std::ifstream in(args.get("dot", ""));
    FLB_REQUIRE(in.good(), "cannot open --dot file");
    return flb::read_dot(in);
  }
  if (args.has("stg")) {
    std::ifstream in(args.get("stg", ""));
    FLB_REQUIRE(in.good(), "cannot open --stg file");
    return flb::read_stg(in);
  }
  if (args.has("workload")) {
    flb::WorkloadParams params;
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const auto tasks =
        static_cast<std::size_t>(args.get_int("tasks", 100));
    return flb::make_workload(args.get("workload", "LU"), tasks, params);
  }
  return flb::paper_example_graph();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::analysis;
  try {
    CliArgs args(argc, argv);

    if (args.has("help")) {
      print_usage();
      return 0;
    }
    if (args.has("list-rules")) {
      const auto& rules =
          args.has("audit") ? audit_rule_catalogue() : rule_catalogue();
      for (const RuleInfo& r : rules)
        std::cout << r.id << " [" << to_string(r.severity) << "] "
                  << r.summary << "\n";
      return 0;
    }

    const std::string fail_on = args.get("fail-on", "error");
    FLB_REQUIRE(fail_on == "warn" || fail_on == "error",
                "flb_lint: --fail-on must be 'warn' or 'error'");
    const Severity threshold =
        fail_on == "warn" ? Severity::kWarn : Severity::kError;

    const TaskGraph g = load_graph(args);
    const auto procs = static_cast<ProcId>(args.get_int("procs", 2));
    FLB_REQUIRE(procs >= 1, "flb_lint: --procs must be >= 1");

    LintOptions options;
    options.quality = !args.has("no-quality");

    // An optional fault plan arms the partitioned-link rule; the plan must
    // outlive every lint call below, so it lives here.
    FaultPlan lint_faults;
    if (args.has("faults")) {
      std::ifstream in(args.get("faults", ""));
      FLB_REQUIRE(in.good(), "cannot open --faults file");
      lint_faults = read_fault_plan(in);
      lint_faults.validate(procs);
      options.faults = &lint_faults;
    }

    const platform::CostModel model = platform::CostModel::clique(procs);
    LintReport report;
    if (args.has("audit")) {
      FLB_REQUIRE(args.has("faults"),
                  "flb_lint: --audit needs a --faults plan to fly the "
                  "episode under");
      FLB_REQUIRE(!args.has("schedule") && !args.has("repair-at"),
                  "flb_lint: --audit flies a registry schedule; it cannot "
                  "be combined with --schedule or --repair-at");
      const std::string mode = args.get("mode", "online");
      FLB_REQUIRE(mode == "online" || mode == "detector" || mode == "gossip",
                  "flb_lint: --mode must be online, detector or gossip");
      const double debounce = args.get_double("debounce", 0.0);
      FLB_REQUIRE(debounce >= 0.0, "flb_lint: --debounce must be >= 0");
      const std::int64_t raw_quorum = args.get_int("quorum", 2);
      FLB_REQUIRE(raw_quorum >= 1, "flb_lint: --quorum must be >= 1");

      const std::string algo = args.get("algo", "FLB");
      const Schedule nominal = make_scheduler(algo)->run(g, procs);

      runtime::RuntimeOptions run_options;
      run_options.debounce = debounce;
      run_options.use_detector = mode != "online";
      run_options.use_gossip = mode == "gossip";
      run_options.quorum = static_cast<ProcId>(raw_quorum);
      FLB_REQUIRE(!run_options.use_detector || lint_faults.heartbeat.enabled(),
                  "flb_lint: --mode " + mode +
                      " needs a heartbeat directive in the fault plan");
      const runtime::RuntimeResult episode =
          runtime::run_online_recovery(g, nominal, lint_faults, run_options);

      if (!args.has("json"))
        std::cout << "Auditing one " << mode << "-mode recovery episode ("
                  << algo << ", " << episode.events.size() << " events, "
                  << episode.repairs.size() << " repairs)\n";
      AuditOptions audit_options;
      audit_options.debounce = debounce;
      audit_options.use_detector = run_options.use_detector;
      audit_options.use_gossip = run_options.use_gossip;
      audit_options.quorum = run_options.quorum;
      report = audit_runtime(g, lint_faults, episode, audit_options);
    } else if (args.has("repair-at")) {
      const double fraction = args.get_double("repair-at", 0.4);
      FLB_REQUIRE(fraction >= 0.0 && fraction <= 1.0,
                  "flb_lint: --repair-at must be a fraction in [0, 1]");
      const std::int64_t raw_victim = args.get_int("victim", 1);
      FLB_REQUIRE(raw_victim >= 0 && raw_victim < static_cast<std::int64_t>(procs),
                  "flb_lint: --victim " + std::to_string(raw_victim) +
                      " is not a valid processor id; with --procs " +
                      std::to_string(procs) +
                      " the valid range is 0.." + std::to_string(procs - 1));
      const auto victim = static_cast<ProcId>(raw_victim);
      FLB_REQUIRE(procs >= 2,
                  "flb_lint: --repair-at needs at least 2 processors");
      FLB_REQUIRE(!args.has("schedule"),
                  "flb_lint: --repair-at repairs a registry schedule; it "
                  "cannot be combined with --schedule");
      const std::string algo = args.get("algo", "FLB");
      const Schedule nominal = make_scheduler(algo)->run(g, procs);

      FaultPlan plan = FaultPlan::single_failure(
          victim, fraction * nominal.makespan());
      SimOptions sim_options;
      sim_options.faults = &plan;
      const SimResult partial = simulate(g, nominal, sim_options);
      const RepairResult repair = repair_schedule(g, nominal, partial, plan);

      if (!args.has("json"))
        std::cout << "Linting the " << algo
                  << " continuation repaired after processor " << victim
                  << " failed at t = " << fraction * nominal.makespan()
                  << " (" << repair.migrated_tasks << " tasks migrated onto "
                  << repair.survivors << " survivors)\n";
      LintOptions repair_options = options;
      repair_options.theorems = false;
      repair_options.quality = false;
      report = lint_schedule(g, repair.schedule, repair.durations, model,
                             repair_options);
    } else if (args.has("schedule")) {
      FLB_REQUIRE(!args.has("algo"),
                  "flb_lint: --schedule and --algo are mutually exclusive");
      std::ifstream in(args.get("schedule", ""));
      FLB_REQUIRE(in.good(), "cannot open --schedule file");
      const Schedule s = read_schedule_text(in);
      FLB_REQUIRE(s.num_tasks() == g.num_tasks(),
                  "schedule and graph disagree on the task count");
      FLB_REQUIRE(s.num_procs() == procs,
                  "schedule disagrees with --procs (use --procs " +
                      std::to_string(s.num_procs()) + ")");
      report = lint_schedule(g, s, model, options);
    } else {
      const std::string algo = args.get("algo", "FLB");
      if (algo == "FLB") {
        // Trace capture gives the theorem tier its evidence; the traced
        // run and FlbScheduler::run produce identical schedules.
        const std::vector<FlbTraceRow> rows = trace_flb(g, procs);
        Schedule s(procs, static_cast<TaskId>(g.num_tasks()));
        for (const FlbTraceRow& row : rows)
          s.assign(row.task, row.proc, row.start, row.finish);
        report = lint_flb(g, s, rows, model, options);
      } else {
        const Schedule s = make_scheduler(algo)->run(g, procs);
        report = lint_schedule(g, s, model, options);
      }
    }

    if (args.has("json"))
      write_report_json(std::cout, report);
    else
      write_report(std::cout, report);

    const Severity worst = report.max_severity();
    if (report.diagnostics.empty() || worst < threshold) return 0;
    return worst == Severity::kError ? 2 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
}
