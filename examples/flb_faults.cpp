// Fault-tolerance demo in two acts.
//
// Act 1: schedule a workload with FLB, kill a processor mid-execution in
// the machine simulator, repair the schedule online, and show the
// before/after Gantt charts plus the robustness metrics.
//
// Act 2 (degraded mode): a correlated burst kills a whole failure domain,
// a survivor throttles to half speed, and periodic checkpointing limits
// the work lost; the repair re-balances the remainder onto the degraded
// machine using speed-scaled durations.
//
// The full round trip is:
//   FlbScheduler::run -> simulate(faults) -> repair_schedule -> metrics
//
// Usage: flb_faults [tasks] [procs] [victim] [fraction]
//   tasks     graph size              (default 40)
//   procs     processor count         (default 4)
//   victim    processor that fails    (default 1)
//   fraction  failure time as a fraction of the nominal makespan (default 0.4)

#include <cstdlib>
#include <iostream>

#include "flb/core/flb.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;

  const std::size_t tasks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  const ProcId procs =
      argc > 2 ? static_cast<ProcId>(std::strtoul(argv[2], nullptr, 10)) : 4;
  const ProcId victim =
      argc > 3 ? static_cast<ProcId>(std::strtoul(argv[3], nullptr, 10)) : 1;
  const double fraction = argc > 4 ? std::strtod(argv[4], nullptr) : 0.4;

  WorkloadParams params;
  params.seed = 7;
  params.ccr = 1.0;
  TaskGraph g = make_workload("LU", tasks, params);

  FlbScheduler flb;
  Schedule nominal = flb.run(g, procs);
  std::cout << "Nominal FLB schedule of " << g.name() << " on " << procs
            << " processors (makespan " << nominal.makespan() << "):\n\n";
  write_gantt(std::cout, g, nominal, 72);

  // Fail-stop: the victim dies at the given fraction of the makespan.
  // Tasks it already finished survive (their messages are in flight);
  // anything in progress is lost and must be re-executed elsewhere.
  const Cost when = fraction * nominal.makespan();
  FaultPlan plan = FaultPlan::single_failure(victim, when);
  SimOptions opts;
  opts.faults = &plan;
  SimResult partial = simulate(g, nominal, opts);

  std::cout << "\nProcessor " << victim << " fails at t = " << when << ": "
            << partial.unfinished.size() << " of " << g.num_tasks()
            << " tasks unfinished, " << partial.work_lost
            << " units of computation lost mid-flight\n";

  RepairResult repair = repair_schedule(g, nominal, partial, plan);
  std::cout << "\nRepaired schedule ("
            << (repair.used == RepairStrategy::kFlbResume ? "FLB resume"
                                                          : "greedy fallback")
            << ", " << repair.migrated_tasks << " tasks migrated onto "
            << repair.survivors << " survivors):\n\n";
  write_gantt(std::cout, g, repair.schedule, 72);

  RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
  std::cout << "\nnominal makespan:   " << m.nominal_makespan << "\n";
  std::cout << "repaired makespan:  " << m.repaired_makespan << "\n";
  std::cout << "degradation ratio:  " << m.degradation_ratio << "\n";
  std::cout << "work lost:          " << m.work_lost << "\n";
  std::cout << "dead-processor idle: " << m.dead_proc_idle << "\n";
  std::cout << "repair latency:     " << m.repair_millis << " ms\n";
  std::cout << "feasible:           "
            << (is_valid_schedule(g, repair.schedule) ? "yes" : "NO") << "\n";

  // ---- Act 2: degraded mode -------------------------------------------
  // rack0 = the first half of the machine; a correlated burst takes it
  // down at 30% of the nominal makespan while the first survivor drops to
  // half speed. Checkpoints every quarter of the mean task work bound how
  // much in-flight computation each kill destroys.
  if (procs >= 3) {
    FaultPlan episode;
    episode.seed = 7;
    FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
    for (ProcId p = 0; p < procs; ++p)
      (p < procs / 2 ? rack0 : rack1).members.push_back(p);
    episode.domains = {rack0, rack1};
    episode.bursts.push_back(
        {"rack0", 0.3 * nominal.makespan(), 0.05 * nominal.makespan()});
    episode.slowdowns.push_back(
        {static_cast<ProcId>(procs / 2), 0.25 * nominal.makespan(), 0.5});
    const Cost mean_comp = g.total_comp() / static_cast<Cost>(g.num_tasks());
    episode.checkpoint = {0.25 * mean_comp, 0.0};

    SimOptions ep_opts;
    ep_opts.faults = &episode;
    SimResult ep_partial = simulate(g, nominal, ep_opts);
    RepairResult ep_repair = repair_schedule(g, nominal, ep_partial, episode);
    RobustnessMetrics em =
        robustness_metrics(nominal, ep_partial, ep_repair, episode);

    std::cout << "\n-- Degraded-mode episode: rack0 burst + slowdown + "
                 "checkpointing --\n";
    for (const DomainImpact& d : em.domains)
      std::cout << "domain " << d.name << ": " << d.killed << "/" << d.members
                << " killed, " << d.throttled << " throttled, work lost "
                << d.work_lost << "\n";
    std::cout << "work lost:          " << em.work_lost << "\n";
    std::cout << "work saved (ckpt):  " << em.work_saved << "\n";
    std::cout << "migrated tasks:     " << em.migrated_tasks << " onto "
              << ep_repair.survivors << " survivors ("
              << em.degraded_procs << " throttled)\n";
    std::cout << "degradation ratio:  " << em.degradation_ratio << "\n";
    std::cout << "feasible:           "
              << (is_valid_schedule(g, ep_repair.schedule, ep_repair.durations)
                      ? "yes"
                      : "NO")
              << "\n";
  }
  return 0;
}
