// Fault-tolerance demo: schedule a workload with FLB, kill a processor
// mid-execution in the machine simulator, repair the schedule online, and
// show the before/after Gantt charts plus the robustness metrics.
//
// The full round trip is:
//   FlbScheduler::run -> simulate(faults) -> repair_schedule -> metrics
//
// Usage: flb_faults [tasks] [procs] [victim] [fraction]
//   tasks     graph size              (default 40)
//   procs     processor count         (default 4)
//   victim    processor that fails    (default 1)
//   fraction  failure time as a fraction of the nominal makespan (default 0.4)

#include <cstdlib>
#include <iostream>

#include "flb/core/flb.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace flb;

  const std::size_t tasks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  const ProcId procs =
      argc > 2 ? static_cast<ProcId>(std::strtoul(argv[2], nullptr, 10)) : 4;
  const ProcId victim =
      argc > 3 ? static_cast<ProcId>(std::strtoul(argv[3], nullptr, 10)) : 1;
  const double fraction = argc > 4 ? std::strtod(argv[4], nullptr) : 0.4;

  WorkloadParams params;
  params.seed = 7;
  params.ccr = 1.0;
  TaskGraph g = make_workload("LU", tasks, params);

  FlbScheduler flb;
  Schedule nominal = flb.run(g, procs);
  std::cout << "Nominal FLB schedule of " << g.name() << " on " << procs
            << " processors (makespan " << nominal.makespan() << "):\n\n";
  write_gantt(std::cout, g, nominal, 72);

  // Fail-stop: the victim dies at the given fraction of the makespan.
  // Tasks it already finished survive (their messages are in flight);
  // anything in progress is lost and must be re-executed elsewhere.
  const Cost when = fraction * nominal.makespan();
  FaultPlan plan = FaultPlan::single_failure(victim, when);
  SimOptions opts;
  opts.faults = &plan;
  SimResult partial = simulate(g, nominal, opts);

  std::cout << "\nProcessor " << victim << " fails at t = " << when << ": "
            << partial.unfinished.size() << " of " << g.num_tasks()
            << " tasks unfinished, " << partial.work_lost
            << " units of computation lost mid-flight\n";

  RepairResult repair = repair_schedule(g, nominal, partial, plan);
  std::cout << "\nRepaired schedule ("
            << (repair.used == RepairStrategy::kFlbResume ? "FLB resume"
                                                          : "greedy fallback")
            << ", " << repair.migrated_tasks << " tasks migrated onto "
            << repair.survivors << " survivors):\n\n";
  write_gantt(std::cout, g, repair.schedule, 72);

  RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
  std::cout << "\nnominal makespan:   " << m.nominal_makespan << "\n";
  std::cout << "repaired makespan:  " << m.repaired_makespan << "\n";
  std::cout << "degradation ratio:  " << m.degradation_ratio << "\n";
  std::cout << "work lost:          " << m.work_lost << "\n";
  std::cout << "dead-processor idle: " << m.dead_proc_idle << "\n";
  std::cout << "repair latency:     " << m.repair_millis << " ms\n";
  std::cout << "feasible:           "
            << (is_valid_schedule(g, repair.schedule) ? "yes" : "NO") << "\n";
  return 0;
}
