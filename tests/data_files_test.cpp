// Loads the sample graph files shipped under data/ — exercising the file
// readers end to end with on-disk content rather than in-memory strings.
// The data directory is located relative to the FLB_SOURCE_DIR definition
// provided by the test build.

#include <fstream>

#include <gtest/gtest.h>

#include "flb/graph/serialize.hpp"
#include "flb/graph/stg.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"

#ifndef FLB_SOURCE_DIR
#error "FLB_SOURCE_DIR must be defined by the build"
#endif

namespace flb {
namespace {

std::string data_path(const std::string& file) {
  return std::string(FLB_SOURCE_DIR) + "/data/" + file;
}

TEST(DataFiles, LuSampleLoadsAndSchedules) {
  std::ifstream in(data_path("lu_60.flb"));
  ASSERT_TRUE(in.good()) << "missing data/lu_60.flb";
  TaskGraph g = read_text(in);
  EXPECT_EQ(g.num_tasks(), 65u);
  EXPECT_EQ(g.num_edges(), 109u);
  EXPECT_EQ(g.name(), "LU(n=11)");
  for (const std::string& name : scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 4);
    EXPECT_TRUE(is_valid_schedule(g, s)) << name;
  }
}

TEST(DataFiles, StencilSampleLoads) {
  std::ifstream in(data_path("stencil_50.flb"));
  ASSERT_TRUE(in.good()) << "missing data/stencil_50.flb";
  TaskGraph g = read_text(in);
  EXPECT_GT(g.num_tasks(), 40u);
  EXPECT_NEAR(g.ccr(), 5.0, 1.5);
}

TEST(DataFiles, StgSampleLoadsAndSchedules) {
  std::ifstream in(data_path("sample_rand_10.stg"));
  ASSERT_TRUE(in.good()) << "missing data/sample_rand_10.stg";
  WorkloadParams params;
  params.seed = 1;
  TaskGraph g = read_stg(in, params);
  EXPECT_EQ(g.num_tasks(), 12u);
  EXPECT_EQ(g.num_edges(), 18u);
  EXPECT_TRUE(g.is_entry(0));
  EXPECT_TRUE(g.is_exit(11));
  Schedule s = make_scheduler("FLB", 1)->run(g, 3);
  EXPECT_TRUE(is_valid_schedule(g, s));
}

TEST(DataFiles, SamplesRoundTripThroughSerializer) {
  std::ifstream in(data_path("lu_60.flb"));
  ASSERT_TRUE(in.good());
  TaskGraph g = read_text(in);
  TaskGraph h = from_text(to_text(g));
  EXPECT_EQ(h.num_tasks(), g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(h.comp(t), g.comp(t));
}

}  // namespace
}  // namespace flb
