// Tests for the local-search schedule improver and the SVG Gantt export.

#include <gtest/gtest.h>

#include "flb/algos/mapping.hpp"
#include "flb/core/flb.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/improve.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(Improve, NeverWorsensAndStaysFeasible) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : {"FLB", "MCP", "DSC-LLB"}) {
      Schedule s = make_scheduler(name, 1)->run(g, 3);
      ImproveResult r = improve_schedule(g, s);
      ASSERT_TRUE(is_valid_schedule(g, r.schedule))
          << name << " on " << g.name() << "\n"
          << test::violations_to_string(g, r.schedule);
      EXPECT_LE(r.final_makespan, r.initial_makespan + 1e-9);
      EXPECT_DOUBLE_EQ(r.schedule.makespan(), r.final_makespan);
      EXPECT_GE(r.final_makespan, makespan_lower_bound(g, 3) - 1e-9);
    }
  }
}

TEST(Improve, FixesAnObviouslyBadAssignment) {
  // All tasks crammed onto one processor of two: the improver must move
  // work across.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 0.1;
  TaskGraph g = fork_join_graph(2, 8, p);
  std::vector<ProcId> all_zero(g.num_tasks(), 0);
  Schedule bad = schedule_with_fixed_assignment(g, all_zero, 2);
  ImproveResult r = improve_schedule(g, bad);
  EXPECT_GT(r.moves, 0u);
  EXPECT_LT(r.final_makespan, r.initial_makespan - 1e-9);
  EXPECT_TRUE(is_valid_schedule(g, r.schedule));
}

TEST(Improve, SingleProcessorIsANoop) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule s = flb.run(g, 1);
  ImproveResult r = improve_schedule(g, s);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_NEAR(r.final_makespan, g.total_comp(), 1e-9);
}

TEST(Improve, RespectsEvaluationBudget) {
  TaskGraph g = make_workload("LU", 300, {});
  Schedule s = make_scheduler("FLB", 1)->run(g, 4);
  ImproveOptions options;
  options.max_evaluations = 10;
  ImproveResult r = improve_schedule(g, s, options);
  EXPECT_LE(r.evaluations, 10u + 1u);  // +1 for the initial re-derivation
  EXPECT_TRUE(is_valid_schedule(g, r.schedule));
}

TEST(Improve, ConvergesToLocalOptimum) {
  // Running the improver on its own output must find nothing further
  // (with the same sweep budget).
  TaskGraph g = test::fuzz_graph(6);
  Schedule s = make_scheduler("MCP", 2)->run(g, 3);
  ImproveResult first = improve_schedule(g, s);
  ImproveResult second = improve_schedule(g, first.schedule);
  EXPECT_NEAR(second.final_makespan, first.final_makespan, 1e-9);
  EXPECT_EQ(second.moves, 0u);
}

TEST(Improve, RejectsIncompleteSchedule) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  EXPECT_THROW((void)improve_schedule(g, s), Error);
}

// --- Simulated annealing -----------------------------------------------------------

TEST(Anneal, NeverWorseThanInputAndFeasible) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Schedule s = make_scheduler("FLB", 1)->run(g, 3);
    AnnealOptions options;
    options.iterations = 400;
    options.seed = i + 1;
    ImproveResult r = anneal_schedule(g, s, options);
    ASSERT_TRUE(is_valid_schedule(g, r.schedule)) << g.name();
    EXPECT_LE(r.final_makespan, r.initial_makespan + 1e-9);
    EXPECT_DOUBLE_EQ(r.schedule.makespan(), r.final_makespan);
  }
}

TEST(Anneal, DeterministicPerSeed) {
  TaskGraph g = test::fuzz_graph(5);
  Schedule s = make_scheduler("MCP", 1)->run(g, 3);
  AnnealOptions options;
  options.iterations = 300;
  options.seed = 9;
  ImproveResult a = anneal_schedule(g, s, options);
  ImproveResult b = anneal_schedule(g, s, options);
  EXPECT_DOUBLE_EQ(a.final_makespan, b.final_makespan);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(Anneal, CanEscapeHillClimbingOptimum) {
  // On aggregate over several instances, annealing with a decent budget
  // should match or beat pure hill climbing (it explores more).
  double hc_sum = 0.0, sa_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ccr = 5.0;
    TaskGraph g = fork_join_graph(3, 10, params);
    Schedule s = make_scheduler("DSC-LLB", seed)->run(g, 4);
    hc_sum += improve_schedule(g, s).final_makespan;
    AnnealOptions options;
    options.iterations = 3000;
    options.seed = seed;
    sa_sum += anneal_schedule(g, s, options).final_makespan;
  }
  EXPECT_LE(sa_sum, hc_sum * 1.05);
}

TEST(Anneal, ZeroIterationsIsIdentity) {
  TaskGraph g = test::fuzz_graph(1);
  Schedule s = make_scheduler("FLB", 1)->run(g, 3);
  AnnealOptions options;
  options.iterations = 0;
  ImproveResult r = anneal_schedule(g, s, options);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_DOUBLE_EQ(r.final_makespan, r.initial_makespan);
}

// --- SVG Gantt -------------------------------------------------------------------

TEST(SvgGantt, WellFormedWithAllTasks) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  std::string svg = to_svg_gantt(g, s);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // One rect per task plus one lane background per processor.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    pos += 1;
  }
  EXPECT_EQ(rects, g.num_tasks() + 3u);
  // Tooltips carry exact times.
  EXPECT_NE(svg.find("<title>t0 ["), std::string::npos);
}

TEST(SvgGantt, LanesPerProcessor) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  std::string svg = to_svg_gantt(g, s, 400);
  EXPECT_NE(svg.find(">P0</text>"), std::string::npos);
  EXPECT_NE(svg.find(">P1</text>"), std::string::npos);
}

}  // namespace
}  // namespace flb
