#include "flb/util/heap_forest.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "flb/util/rng.hpp"

namespace flb {
namespace {

using Forest = IndexedHeapForest<std::pair<int, std::size_t>>;

std::pair<int, std::size_t> key(int k, std::size_t id) { return {k, id}; }

TEST(HeapForest, StartsEmpty) {
  Forest f(10, 3);
  EXPECT_EQ(f.num_items(), 10u);
  EXPECT_EQ(f.num_heaps(), 3u);
  for (std::size_t h = 0; h < 3; ++h) {
    EXPECT_TRUE(f.empty(h));
    EXPECT_EQ(f.size(h), 0u);
  }
  EXPECT_FALSE(f.contains(0));
  EXPECT_EQ(f.heap_of(5), Forest::npos);
}

TEST(HeapForest, PushTracksHeapMembership) {
  Forest f(10, 3);
  f.push(1, 4, key(7, 4));
  EXPECT_TRUE(f.contains(4));
  EXPECT_EQ(f.heap_of(4), 1u);
  EXPECT_EQ(f.top(1), 4u);
  EXPECT_EQ(f.key_of(4).first, 7);
  EXPECT_TRUE(f.empty(0));
  EXPECT_TRUE(f.empty(2));
}

TEST(HeapForest, IndependentHeapOrdering) {
  Forest f(12, 2);
  f.push(0, 0, key(5, 0));
  f.push(0, 1, key(2, 1));
  f.push(1, 2, key(9, 2));
  f.push(1, 3, key(1, 3));
  EXPECT_EQ(f.top(0), 1u);
  EXPECT_EQ(f.top(1), 3u);
  EXPECT_EQ(f.pop(0), 1u);
  EXPECT_EQ(f.top(0), 0u);
  EXPECT_EQ(f.top(1), 3u);  // heap 1 untouched
}

TEST(HeapForest, EraseFromMiddle) {
  Forest f(10, 1);
  for (std::size_t i = 0; i < 8; ++i)
    f.push(0, i, key(static_cast<int>((i * 5) % 8), i));
  f.erase(3);
  f.erase(6);
  EXPECT_FALSE(f.contains(3));
  EXPECT_EQ(f.size(0), 6u);
  EXPECT_TRUE(f.validate());
  std::vector<int> drained;
  while (!f.empty(0)) {
    drained.push_back(f.top_key(0).first);
    f.pop(0);
  }
  EXPECT_TRUE(std::is_sorted(drained.begin(), drained.end()));
}

TEST(HeapForest, UpdateRekeysWithinHeap) {
  Forest f(5, 2);
  f.push(0, 0, key(10, 0));
  f.push(0, 1, key(20, 1));
  f.update(1, key(1, 1));
  EXPECT_EQ(f.top(0), 1u);
  EXPECT_EQ(f.heap_of(1), 0u);
  f.update(1, key(99, 1));
  EXPECT_EQ(f.top(0), 0u);
}

TEST(HeapForest, MoveBetweenHeaps) {
  Forest f(5, 3);
  f.push(0, 2, key(4, 2));
  f.move(2, 2, key(8, 2));
  EXPECT_TRUE(f.empty(0));
  EXPECT_EQ(f.heap_of(2), 2u);
  EXPECT_EQ(f.key_of(2).first, 8);
}

TEST(HeapForest, ItemsExposesHeapContents) {
  Forest f(6, 2);
  f.push(1, 0, key(3, 0));
  f.push(1, 5, key(1, 5));
  auto items = f.items(1);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE((items[0] == 0 && items[1] == 5) ||
              (items[0] == 5 && items[1] == 0));
}

TEST(HeapForest, ResetRedimensions) {
  Forest f(4, 1);
  f.push(0, 1, key(1, 1));
  f.reset(100, 7);
  EXPECT_EQ(f.num_items(), 100u);
  EXPECT_EQ(f.num_heaps(), 7u);
  EXPECT_FALSE(f.contains(1));
  f.push(6, 99, key(5, 99));
  EXPECT_EQ(f.top(6), 99u);
}

// Differential stress test against P independent reference maps.
TEST(HeapForest, StressAgainstReference) {
  constexpr std::size_t kIds = 48, kHeaps = 5;
  Forest f(kIds, kHeaps);
  std::map<std::size_t, std::pair<std::size_t, int>> ref;  // id->(heap,key)
  Rng rng(21);

  for (int step = 0; step < 20000; ++step) {
    std::size_t id = rng.next_below(kIds);
    std::size_t h = rng.next_below(kHeaps);
    double action = rng.next_double();
    if (action < 0.35) {
      int k = static_cast<int>(rng.next_below(1000));
      if (!ref.count(id)) {
        f.push(h, id, key(k, id));
        ref[id] = {h, k};
      } else {
        f.move(id, h, key(k, id));
        ref[id] = {h, k};
      }
    } else if (action < 0.5) {
      if (ref.count(id)) {
        int k = static_cast<int>(rng.next_below(1000));
        f.update(id, key(k, id));
        ref[id].second = k;
      }
    } else if (action < 0.65) {
      if (ref.count(id)) {
        f.erase(id);
        ref.erase(id);
      }
    } else if (action < 0.85) {
      // Verify the top of heap h against the reference minimum.
      std::size_t best_id = Forest::npos;
      for (const auto& [rid, hk] : ref) {
        if (hk.first != h) continue;
        if (best_id == Forest::npos ||
            std::pair(hk.second, rid) <
                std::pair(ref[best_id].second, best_id))
          best_id = rid;
      }
      if (best_id == Forest::npos) {
        ASSERT_TRUE(f.empty(h));
      } else {
        ASSERT_EQ(f.top(h), best_id);
      }
    } else {
      ASSERT_EQ(f.contains(id), ref.count(id) > 0);
      if (ref.count(id)) {
        ASSERT_EQ(f.heap_of(id), ref[id].first);
        ASSERT_EQ(f.key_of(id).first, ref[id].second);
      }
    }
    if (step % 2000 == 0) ASSERT_TRUE(f.validate());
  }
  EXPECT_TRUE(f.validate());
}

}  // namespace
}  // namespace flb
