#include "flb/util/indexed_heap.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "flb/util/rng.hpp"

namespace flb {
namespace {

TEST(IndexedHeap, StartsEmpty) {
  IndexedMinHeap<int> h(8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_EQ(h.capacity(), 8u);
  EXPECT_FALSE(h.contains(0));
}

TEST(IndexedHeap, PushPopSingle) {
  IndexedMinHeap<int> h(4);
  h.push(2, 10);
  EXPECT_FALSE(h.empty());
  EXPECT_TRUE(h.contains(2));
  EXPECT_EQ(h.top(), 2u);
  EXPECT_EQ(h.top_key(), 10);
  EXPECT_EQ(h.pop(), 2u);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
}

TEST(IndexedHeap, PopsInKeyOrder) {
  IndexedMinHeap<int> h(10);
  h.push(0, 5);
  h.push(1, 3);
  h.push(2, 8);
  h.push(3, 1);
  h.push(4, 4);
  std::vector<std::size_t> order;
  while (!h.empty()) order.push_back(h.pop());
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 4, 0, 2}));
}

TEST(IndexedHeap, KeyOfReturnsStoredKey) {
  IndexedMinHeap<int> h(4);
  h.push(1, 42);
  h.push(3, 7);
  EXPECT_EQ(h.key_of(1), 42);
  EXPECT_EQ(h.key_of(3), 7);
}

TEST(IndexedHeap, EraseMiddleKeepsOrder) {
  IndexedMinHeap<int> h(10);
  for (std::size_t i = 0; i < 10; ++i)
    h.push(i, static_cast<int>((i * 7) % 10));
  h.erase(5);  // key 5
  h.erase(0);  // key 0
  EXPECT_EQ(h.size(), 8u);
  std::vector<int> keys;
  while (!h.empty()) keys.push_back(h.key_of(h.top())), h.pop();
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys.size(), 8u);
}

TEST(IndexedHeap, UpdateDecreaseKeyMovesToFront) {
  IndexedMinHeap<int> h(5);
  h.push(0, 10);
  h.push(1, 20);
  h.push(2, 30);
  h.update(2, 1);
  EXPECT_EQ(h.top(), 2u);
  EXPECT_EQ(h.key_of(2), 1);
}

TEST(IndexedHeap, UpdateIncreaseKeyMovesBack) {
  IndexedMinHeap<int> h(5);
  h.push(0, 10);
  h.push(1, 20);
  h.update(0, 100);
  EXPECT_EQ(h.top(), 1u);
}

TEST(IndexedHeap, PushOrUpdateInsertsThenRekeys) {
  IndexedMinHeap<int> h(5);
  h.push_or_update(3, 9);
  EXPECT_TRUE(h.contains(3));
  EXPECT_EQ(h.key_of(3), 9);
  h.push_or_update(3, 2);
  EXPECT_EQ(h.key_of(3), 2);
  EXPECT_EQ(h.size(), 1u);
}

TEST(IndexedHeap, ClearRemovesEverything) {
  IndexedMinHeap<int> h(6);
  for (std::size_t i = 0; i < 6; ++i) h.push(i, static_cast<int>(i));
  h.clear();
  EXPECT_TRUE(h.empty());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_FALSE(h.contains(i));
  h.push(2, 1);  // reusable after clear
  EXPECT_EQ(h.top(), 2u);
}

TEST(IndexedHeap, ResetRedimensions) {
  IndexedMinHeap<int> h(2);
  h.push(0, 1);
  h.reset(100);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.capacity(), 100u);
  h.push(99, 5);
  EXPECT_EQ(h.top(), 99u);
}

TEST(IndexedHeap, TupleKeysOrderLexicographically) {
  using Key = std::tuple<double, double, unsigned>;
  IndexedMinHeap<Key> h(4);
  h.push(0, {1.0, -5.0, 0});
  h.push(1, {1.0, -9.0, 1});  // same primary, larger tie priority (more negative)
  h.push(2, {0.5, 0.0, 2});
  EXPECT_EQ(h.pop(), 2u);  // smallest primary
  EXPECT_EQ(h.pop(), 1u);  // tie broken by second component
  EXPECT_EQ(h.pop(), 0u);
}

TEST(IndexedHeap, ValidateDetectsHealthyHeap) {
  IndexedMinHeap<int> h(32);
  for (std::size_t i = 0; i < 32; ++i)
    h.push(i, static_cast<int>((i * 13) % 32));
  EXPECT_TRUE(h.validate());
}

// Randomized differential test against a std::multimap reference.
TEST(IndexedHeap, StressAgainstReference) {
  constexpr std::size_t kIds = 64;
  IndexedMinHeap<std::pair<int, std::size_t>> h(kIds);
  std::map<std::size_t, int> ref;  // id -> key
  Rng rng(7);

  for (int step = 0; step < 20000; ++step) {
    std::size_t id = rng.next_below(kIds);
    double action = rng.next_double();
    if (action < 0.4) {
      int key = static_cast<int>(rng.next_below(1000));
      if (!ref.count(id)) {
        h.push(id, {key, id});
        ref[id] = key;
      } else {
        h.update(id, {key, id});
        ref[id] = key;
      }
    } else if (action < 0.6) {
      if (ref.count(id)) {
        h.erase(id);
        ref.erase(id);
      }
    } else if (action < 0.8) {
      if (!ref.empty()) {
        std::size_t top = h.top();
        // Reference minimum by (key, id).
        auto best = ref.begin();
        for (auto it = ref.begin(); it != ref.end(); ++it) {
          if (std::pair(it->second, it->first) <
              std::pair(best->second, best->first))
            best = it;
        }
        ASSERT_EQ(top, best->first);
        h.pop();
        ref.erase(best);
      }
    } else {
      ASSERT_EQ(h.size(), ref.size());
      ASSERT_EQ(h.contains(id), ref.count(id) > 0);
      if (ref.count(id)) ASSERT_EQ(h.key_of(id).first, ref[id]);
    }
    if (step % 1000 == 0) ASSERT_TRUE(h.validate());
  }
  EXPECT_TRUE(h.validate());
}

// Sorted drain equals std::sort of the same keys (duplicates included).
TEST(IndexedHeap, HeapSortMatchesStdSort) {
  constexpr std::size_t kN = 500;
  IndexedMinHeap<std::pair<int, std::size_t>> h(kN);
  Rng rng(11);
  std::vector<int> keys(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    keys[i] = static_cast<int>(rng.next_below(50));  // many duplicates
    h.push(i, {keys[i], i});
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(h.key_of(h.top()).first, keys[i]);
    h.pop();
  }
}

}  // namespace
}  // namespace flb
