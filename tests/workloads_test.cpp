#include "flb/workloads/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/util/error.hpp"

namespace flb {
namespace {

// --- LU ----------------------------------------------------------------------

TEST(LuGraph, TaskCountFormula) {
  for (std::size_t n : {2, 3, 5, 10, 62}) {
    TaskGraph g = lu_graph(n);
    EXPECT_EQ(g.num_tasks(), n * (n + 1) / 2 - 1) << "n=" << n;
  }
}

TEST(LuGraph, SmallestInstanceShape) {
  // n=2: pivot + one update, one edge.
  TaskGraph g = lu_graph(2);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.is_entry(0));
  EXPECT_TRUE(g.is_exit(1));
}

TEST(LuGraph, SingleEntrySingleExit) {
  TaskGraph g = lu_graph(8);
  EXPECT_EQ(g.entry_tasks().size(), 1u);   // first pivot
  EXPECT_EQ(g.exit_tasks().size(), 1u);    // last update
}

TEST(LuGraph, DepthGrowsLinearly) {
  // Each elimination step adds pivot + update to the longest chain.
  TaskGraph g = lu_graph(6);
  auto levels = level_decomposition(g);
  EXPECT_EQ(levels.size(), 2u * (6 - 1));  // alternating pivot/update waves
}

TEST(LuGraph, RejectsTooSmall) {
  EXPECT_THROW(lu_graph(1), Error);
}

// --- Laplace -------------------------------------------------------------------

TEST(LaplaceGraph, TaskCountFormula) {
  EXPECT_EQ(laplace_graph(4, 3).num_tasks(), 51u);    // 3 * (16 + 1)
  EXPECT_EQ(laplace_graph(14, 10).num_tasks(), 1970u);
}

TEST(LaplaceGraph, InteriorPointHasFourNeighboursPlusCheck) {
  TaskGraph g = laplace_graph(5, 2);
  // Point (it=1, i=2, j=2) is interior: 4 neighbours + previous check.
  TaskId t = 1 * 26 + 2 * 5 + 2;
  EXPECT_EQ(g.in_degree(t), 5u);
}

TEST(LaplaceGraph, CornerPointHasTwoNeighboursPlusCheck) {
  TaskGraph g = laplace_graph(5, 2);
  TaskId corner = 1 * 26 + 0;
  EXPECT_EQ(g.in_degree(corner), 3u);
}

TEST(LaplaceGraph, CheckJoinsWholeSweep) {
  TaskGraph g = laplace_graph(4, 3);
  // Sweep 1's check is task 1*17 + 16; it joins all 16 points of sweep 1.
  TaskId check = 1 * 17 + 16;
  EXPECT_EQ(g.in_degree(check), 16u);
  // It fans out to all 16 points of sweep 2.
  EXPECT_EQ(g.out_degree(check), 16u);
}

TEST(LaplaceGraph, FirstSweepPointsAreEntriesFinalCheckIsOnlyExit) {
  TaskGraph g = laplace_graph(4, 3);
  for (TaskId t = 0; t < 16; ++t) EXPECT_TRUE(g.is_entry(t));
  EXPECT_EQ(g.entry_tasks().size(), 16u);
  EXPECT_EQ(g.exit_tasks(), (std::vector<TaskId>{3 * 17 - 1}));
}

TEST(LaplaceGraph, DepthIsTwoPerIteration) {
  TaskGraph g = laplace_graph(4, 7);
  // points, check, points, check, ... -> 2 * iters levels.
  EXPECT_EQ(level_decomposition(g).size(), 14u);
}

TEST(LaplaceGraph, RejectsDegenerate) {
  EXPECT_THROW(laplace_graph(1, 3), Error);
  EXPECT_THROW(laplace_graph(4, 0), Error);
}

// --- Stencil --------------------------------------------------------------------

TEST(StencilGraph, TaskCountAndEdges) {
  TaskGraph g = stencil_graph(5, 4);
  EXPECT_EQ(g.num_tasks(), 20u);
  // Per later step: 3 edges per interior cell, 2 per border cell.
  // width=5: 3*3 + 2*2 = 13 per step, 3 steps with parents.
  EXPECT_EQ(g.num_edges(), 39u);
}

TEST(StencilGraph, MiddleCellDependsOnThreeNeighbours) {
  TaskGraph g = stencil_graph(5, 3);
  TaskId t = 1 * 5 + 2;
  auto preds = g.predecessors(t);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0].node, 1u);
  EXPECT_EQ(preds[1].node, 2u);
  EXPECT_EQ(preds[2].node, 3u);
}

TEST(StencilGraph, WidthOneDegeneratesToChain) {
  TaskGraph g = stencil_graph(1, 6);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(level_decomposition(g).size(), 6u);
}

// --- FFT -----------------------------------------------------------------------

TEST(FftGraph, TaskCountFormula) {
  EXPECT_EQ(fft_graph(2).num_tasks(), 4u);    // 2 * (1+1)
  EXPECT_EQ(fft_graph(8).num_tasks(), 32u);   // 8 * (3+1)
  EXPECT_EQ(fft_graph(256).num_tasks(), 2304u);
}

TEST(FftGraph, EveryNonInputHasTwoParents) {
  TaskGraph g = fft_graph(8);
  for (TaskId t = 8; t < g.num_tasks(); ++t)
    EXPECT_EQ(g.in_degree(t), 2u) << "task " << t;
}

TEST(FftGraph, ButterflyPartners) {
  TaskGraph g = fft_graph(4);
  // Stage 1, index 0 depends on stage-0 indices 0 and 1.
  auto preds = g.predecessors(4);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].node, 0u);
  EXPECT_EQ(preds[1].node, 1u);
  // Stage 2, index 0 depends on stage-1 indices 0 and 2.
  auto preds2 = g.predecessors(8);
  ASSERT_EQ(preds2.size(), 2u);
  EXPECT_EQ(preds2[0].node, 4u);
  EXPECT_EQ(preds2[1].node, 6u);
}

TEST(FftGraph, RejectsNonPowerOfTwo) {
  EXPECT_THROW(fft_graph(6), Error);
  EXPECT_THROW(fft_graph(1), Error);
  EXPECT_THROW(fft_graph(0), Error);
}

// --- Gauss ----------------------------------------------------------------------

TEST(GaussGraph, SameCountAsLuButJoinHeavier) {
  TaskGraph lu = lu_graph(10);
  TaskGraph gauss = gauss_graph(10);
  EXPECT_EQ(gauss.num_tasks(), lu.num_tasks());
  // Gauss pivots join on all previous updates: max in-degree larger.
  std::size_t max_in_lu = 0, max_in_gauss = 0;
  for (TaskId t = 0; t < lu.num_tasks(); ++t)
    max_in_lu = std::max(max_in_lu, lu.in_degree(t));
  for (TaskId t = 0; t < gauss.num_tasks(); ++t)
    max_in_gauss = std::max(max_in_gauss, gauss.in_degree(t));
  EXPECT_GT(max_in_gauss, max_in_lu);
}

TEST(GaussGraph, SecondPivotJoinsOnAllFirstUpdates) {
  TaskGraph g = gauss_graph(5);
  // Step 0: pivot id 0, updates ids 1..4; step-1 pivot id 5.
  EXPECT_EQ(g.in_degree(5), 4u);
}

// --- Cholesky --------------------------------------------------------------------

TEST(CholeskyGraph, TaskCountFormula) {
  // V(T) = T (POTRF) + T(T-1) (TRSM+SYRK) + C(T,3) (GEMM).
  EXPECT_EQ(cholesky_graph(1).num_tasks(), 1u);
  EXPECT_EQ(cholesky_graph(2).num_tasks(), 4u);
  EXPECT_EQ(cholesky_graph(3).num_tasks(), 10u);
  EXPECT_EQ(cholesky_graph(5).num_tasks(), 35u);  // 5 + 20 + 10
}

TEST(CholeskyGraph, SingleEntryAndExit) {
  TaskGraph g = cholesky_graph(5);
  EXPECT_EQ(g.entry_tasks().size(), 1u);  // POTRF(0)
  EXPECT_EQ(g.exit_tasks().size(), 1u);   // POTRF(T-1)
}

TEST(CholeskyGraph, TwoTileStructure) {
  // T=2: POTRF(0) -> TRSM(1,0) -> SYRK(1,0) -> POTRF(1).
  TaskGraph g = cholesky_graph(2);
  ASSERT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(level_decomposition(g).size(), 4u);
}

TEST(CholeskyGraph, PotrfJoinsAllDiagonalUpdates) {
  // POTRF(k) has exactly k SYRK predecessors.
  TaskGraph g = cholesky_graph(6);
  // POTRF ids: allocated first per step; step k offset needs care, so use
  // a structural property instead: max in-degree among all tasks equals
  // T-1 (the last POTRF joins T-1 SYRKs... GEMM-rich TRSMs can exceed it;
  // check the last exit task directly).
  TaskId last = g.exit_tasks().front();
  EXPECT_EQ(g.in_degree(last), 5u);
}

TEST(CholeskyGraph, DepthGrowsLinearlyInTiles) {
  // Critical chain: POTRF -> TRSM -> SYRK -> POTRF -> ... = 3 per step.
  TaskGraph g = cholesky_graph(4);
  EXPECT_EQ(level_decomposition(g).size(), 3u * 3u + 1u);
}

TEST(CholeskyGraph, SchedulableAndIrregular) {
  WorkloadParams p;
  p.seed = 6;
  p.ccr = 1.0;
  TaskGraph g = make_workload("Cholesky", 2000, p);
  EXPECT_NEAR(static_cast<double>(g.num_tasks()), 2000.0, 300.0);
  // Width shrinks toward the end of the factorization: max level width is
  // far below V/depth-average-free parallelism of regular graphs.
  EXPECT_GT(max_level_width(g), 10u);
}

// --- Synthetic families -----------------------------------------------------------

TEST(RandomLayered, EveryLaterTaskHasAParent) {
  TaskGraph g = random_layered_graph(6, 8, 0.1);
  for (TaskId t = 8; t < g.num_tasks(); ++t)
    EXPECT_GE(g.in_degree(t), 1u);
  EXPECT_EQ(level_decomposition(g).size(), 6u);
}

TEST(RandomLayered, ZeroProbStillConnected) {
  TaskGraph g = random_layered_graph(4, 5, 0.0);
  for (TaskId t = 5; t < g.num_tasks(); ++t)
    EXPECT_EQ(g.in_degree(t), 1u);
}

TEST(RandomLayered, FullProbIsCompleteBipartite) {
  TaskGraph g = random_layered_graph(3, 4, 1.0);
  EXPECT_EQ(g.num_edges(), 2u * 16u);
}

TEST(RandomDag, EdgeCountScalesWithProbability) {
  WorkloadParams p;
  p.seed = 5;
  TaskGraph sparse = random_dag(60, 0.05, p);
  TaskGraph dense = random_dag(60, 0.5, p);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
  // Dense: expect near 0.5 * C(60,2) = 885.
  EXPECT_NEAR(static_cast<double>(dense.num_edges()), 885.0, 150.0);
}

TEST(Trees, NodeCounts) {
  EXPECT_EQ(out_tree_graph(3, 2).num_tasks(), 7u);
  EXPECT_EQ(in_tree_graph(3, 2).num_tasks(), 7u);
  EXPECT_EQ(out_tree_graph(1, 5).num_tasks(), 1u);
}

TEST(Trees, OutTreeDegrees) {
  TaskGraph g = out_tree_graph(3, 2);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(0), 0u);
  for (TaskId t = 1; t < g.num_tasks(); ++t) EXPECT_EQ(g.in_degree(t), 1u);
}

TEST(Trees, InTreeMirrorsOutTree) {
  TaskGraph g = in_tree_graph(3, 2);
  // Root is the last task.
  TaskId root = g.num_tasks() - 1;
  EXPECT_EQ(g.in_degree(root), 2u);
  EXPECT_EQ(g.out_degree(root), 0u);
  for (TaskId t = 0; t < 4; ++t) EXPECT_TRUE(g.is_entry(t));
}

TEST(ForkJoin, StructureAndCounts) {
  TaskGraph g = fork_join_graph(2, 3);
  // 1 + 2 * (3 + 1) = 9 tasks.
  EXPECT_EQ(g.num_tasks(), 9u);
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.in_degree(4), 3u);  // first join
  EXPECT_EQ(g.entry_tasks().size(), 1u);
  EXPECT_EQ(g.exit_tasks().size(), 1u);
}

TEST(Diamond, WavefrontDegrees) {
  TaskGraph g = diamond_graph(3);
  EXPECT_EQ(g.num_tasks(), 9u);
  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.in_degree(4), 2u);  // interior (1,1)
  EXPECT_EQ(g.in_degree(8), 2u);  // sink corner
}

TEST(ChainAndIndependent, Shapes) {
  TaskGraph chain = chain_graph(4);
  EXPECT_EQ(chain.num_edges(), 3u);
  TaskGraph ind = independent_graph(4);
  EXPECT_EQ(ind.num_edges(), 0u);
  for (TaskId t = 0; t < 4; ++t) {
    EXPECT_TRUE(ind.is_entry(t));
    EXPECT_TRUE(ind.is_exit(t));
  }
}

// --- Weight model -----------------------------------------------------------------

TEST(Weights, DeterministicModeIsExact) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 3.0;
  TaskGraph g = stencil_graph(4, 4, p);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_DOUBLE_EQ(g.comp(t), 1.0);
  for (const Edge& e : g.edges()) EXPECT_DOUBLE_EQ(e.comm, 3.0);
  EXPECT_DOUBLE_EQ(g.ccr(), 3.0);
}

TEST(Weights, SameSeedSameGraph) {
  WorkloadParams p;
  p.seed = 123;
  p.ccr = 2.0;
  EXPECT_EQ(to_text(lu_graph(10, p)), to_text(lu_graph(10, p)));
}

TEST(Weights, DifferentSeedsDifferentWeights) {
  WorkloadParams a, b;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(to_text(lu_graph(10, a)), to_text(lu_graph(10, b)));
}

TEST(Weights, AchievedCcrNearTarget) {
  for (double target : {0.2, 1.0, 5.0}) {
    WorkloadParams p;
    p.ccr = target;
    p.seed = 7;
    TaskGraph g = laplace_graph(14, 10, p);
    EXPECT_NEAR(g.ccr(), target, 0.15 * target + 0.01) << "ccr " << target;
  }
}

TEST(Weights, CompMeanNearOne) {
  WorkloadParams p;
  p.seed = 8;
  TaskGraph g = stencil_graph(45, 44, p);
  double mean = g.total_comp() / g.num_tasks();
  EXPECT_NEAR(mean, 1.0, 0.05);
}

// --- Factory ----------------------------------------------------------------------

class FactoryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FactoryTest, HitsTargetSizeWithinTolerance) {
  for (std::size_t target : {500u, 2000u}) {
    TaskGraph g = make_workload(GetParam(), target);
    double rel = std::abs(static_cast<double>(g.num_tasks()) -
                          static_cast<double>(target)) /
                 static_cast<double>(target);
    EXPECT_LT(rel, 0.35) << GetParam() << " target " << target << " got "
                         << g.num_tasks();
    EXPECT_FALSE(g.name().empty());
  }
}

TEST_P(FactoryTest, RespectsCcrParameter) {
  WorkloadParams p;
  p.ccr = 5.0;
  p.seed = 3;
  TaskGraph g = make_workload(GetParam(), 2000, p);
  EXPECT_NEAR(g.ccr(), 5.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, FactoryTest,
                         ::testing::ValuesIn(workload_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           return n;
                         });

TEST(Factory, RejectsUnknownName) {
  EXPECT_THROW(make_workload("NotAWorkload", 2000), Error);
}

TEST(Factory, RejectsTinyTarget) {
  EXPECT_THROW(make_workload("LU", 2), Error);
}

TEST(Factory, PaperScaleSizes) {
  // The paper's V ~ 2000 configurations.
  EXPECT_NEAR(static_cast<double>(make_workload("LU", 2000).num_tasks()),
              2000.0, 120.0);
  EXPECT_EQ(make_workload("Laplace", 2000).num_tasks(), 1970u);
  EXPECT_EQ(make_workload("FFT", 2000).num_tasks(), 2304u);
}

}  // namespace
}  // namespace flb
