#include "flb/graph/width.hpp"

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(Reachability, DirectAndTransitiveEdges) {
  TaskGraph g = test::small_diamond();
  Reachability r(g);
  EXPECT_TRUE(r.reaches(0, 1));
  EXPECT_TRUE(r.reaches(0, 3));  // transitive a -> d
  EXPECT_TRUE(r.reaches(1, 3));
  EXPECT_FALSE(r.reaches(3, 0));
  EXPECT_FALSE(r.reaches(1, 2));
  EXPECT_FALSE(r.reaches(0, 0));  // non-empty paths only
  EXPECT_TRUE(r.comparable(0, 3));
  EXPECT_FALSE(r.comparable(1, 2));
}

TEST(ExactWidth, DegenerateShapes) {
  EXPECT_EQ(exact_width(chain_graph(10)), 1u);
  EXPECT_EQ(exact_width(independent_graph(17)), 17u);
  TaskGraphBuilder b;
  TaskGraph empty = std::move(b).build();
  EXPECT_EQ(exact_width(empty), 0u);
}

TEST(ExactWidth, DiamondIsTwo) {
  EXPECT_EQ(exact_width(test::small_diamond()), 2u);
}

TEST(ExactWidth, PaperExampleIsThree) {
  EXPECT_EQ(exact_width(paper_example_graph()), 3u);
}

TEST(ExactWidth, ForkJoinWidthIsParallelSection) {
  WorkloadParams p;
  p.random_weights = false;
  EXPECT_EQ(exact_width(fork_join_graph(3, 6, p)), 6u);
}

TEST(ExactWidth, OutTreeWidthIsLeafCount) {
  WorkloadParams p;
  p.random_weights = false;
  EXPECT_EQ(exact_width(out_tree_graph(3, 3, p)), 9u);  // 3^2 leaves
  EXPECT_EQ(exact_width(in_tree_graph(3, 3, p)), 9u);
}

TEST(ExactWidth, StencilWidthIsSpatialExtent) {
  WorkloadParams p;
  p.random_weights = false;
  // Every pair of cells in one time step is incomparable; cells of
  // different steps are connected through the middle dependence.
  EXPECT_EQ(exact_width(stencil_graph(9, 6, p)), 9u);
}

TEST(ExactWidth, DiamondLatticeWidthIsAntiDiagonal) {
  WorkloadParams p;
  p.random_weights = false;
  EXPECT_EQ(exact_width(diamond_graph(5, p)), 5u);
}

TEST(ExactWidth, AtLeastMaxLevelWidth) {
  for (std::size_t i = 0; i < 20; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    EXPECT_GE(exact_width(g), max_level_width(g)) << g.name();
  }
}

TEST(ExactWidth, MatchesBruteForceOnFuzzCorpus) {
  for (std::size_t i = 0; i < 40; ++i) {
    WorkloadParams params;
    params.seed = 500 + i;
    TaskGraph g = random_dag(6 + i % 11, 0.25, params);
    EXPECT_EQ(exact_width(g), brute_force_width(g)) << "seed " << params.seed;
  }
}

TEST(ExactWidth, MatchesBruteForceOnSparseAndDense) {
  for (std::size_t i = 0; i < 12; ++i) {
    WorkloadParams params;
    params.seed = 900 + i;
    double prob = (i % 2 == 0) ? 0.05 : 0.6;
    TaskGraph g = random_dag(12, prob, params);
    EXPECT_EQ(exact_width(g), brute_force_width(g));
  }
}

TEST(BruteForceWidth, RejectsLargeGraphs) {
  EXPECT_THROW(brute_force_width(independent_graph(21)), Error);
}

TEST(ExactWidth, BoundsReadySetIntuition) {
  // The width of LU is the size of the first update wave: n-1.
  WorkloadParams p;
  p.random_weights = false;
  TaskGraph g = lu_graph(8, p);
  EXPECT_EQ(exact_width(g), 7u);
}

}  // namespace
}  // namespace flb
