// Replays the checked-in fuzz seed corpus (tests/corpus/*) through the
// four text ingestion paths that fuzz/ hammers with libFuzzer. This runs
// in the plain GCC ctest sweep, so the corpus is a cross-compiler
// regression suite even where libFuzzer is unavailable: every seed whose
// name starts with "bad_" must be rejected with flb::Error, every other
// seed must parse, and no input may crash. New fuzzer-found inputs get
// minimized, named for what they exercise, and dropped into the corpus
// directory — this test then pins the fix forever.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "flb/analysis/lint.hpp"
#include "flb/core/flb.hpp"
#include "flb/graph/dot.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/graph/stg.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/util/error.hpp"

namespace {

namespace fs = std::filesystem;

fs::path corpus_dir(const std::string& family) {
  return fs::path(FLB_SOURCE_DIR) / "tests" / "corpus" / family;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open corpus seed " << p;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Feed every seed of `family` to `parse`. Seeds named bad_* must throw
/// flb::Error; the rest must parse cleanly. Returns the number of seeds
/// so callers can assert the corpus was actually found.
std::size_t replay(const std::string& family,
                   const std::function<void(const std::string&)>& parse) {
  std::vector<fs::path> seeds;
  for (const auto& entry : fs::directory_iterator(corpus_dir(family)))
    if (entry.is_regular_file()) seeds.push_back(entry.path());
  std::sort(seeds.begin(), seeds.end());

  for (const fs::path& seed : seeds) {
    const std::string text = slurp(seed);
    const bool expect_reject =
        seed.filename().string().rfind("bad_", 0) == 0;
    if (expect_reject) {
      EXPECT_THROW(parse(text), flb::Error)
          << family << " seed " << seed.filename()
          << " should have been rejected";
    } else {
      EXPECT_NO_THROW(parse(text))
          << family << " seed " << seed.filename()
          << " should have parsed";
    }
  }
  return seeds.size();
}

// Any graph a reader accepts must be schedulable: FLB's output passes the
// validator and the linter's feasibility tier. This is the end-to-end leg
// of the fuzz contract — "parses" must imply "usable".
void expect_schedulable(const flb::TaskGraph& g) {
  const flb::Schedule s = flb::FlbScheduler().run(g, 2);
  EXPECT_TRUE(flb::validate_schedule(g, s).empty());
  const flb::analysis::LintReport report = flb::analysis::lint_schedule(
      g, s, flb::platform::CostModel::clique(2));
  EXPECT_TRUE(report.clean());
}

TEST(CorpusReplay, Dot) {
  const std::size_t n = replay("dot", [](const std::string& text) {
    const flb::TaskGraph g = flb::dot_from_text(text);
    (void)flb::to_dot(g);  // writer must accept whatever the reader built
    expect_schedulable(g);
  });
  EXPECT_GE(n, 8u) << "dot corpus went missing";
}

TEST(CorpusReplay, Stg) {
  const std::size_t n = replay("stg", [](const std::string& text) {
    flb::WorkloadParams params;
    params.random_weights = false;
    expect_schedulable(flb::stg_from_text(text, params));
  });
  EXPECT_GE(n, 5u) << "stg corpus went missing";
}

TEST(CorpusReplay, GraphText) {
  const std::size_t n = replay("graph_text", [](const std::string& text) {
    const flb::TaskGraph g = flb::from_text(text);
    // The text format round-trips: write(read(x)) must re-parse to the
    // same graph.
    const flb::TaskGraph again = flb::from_text(flb::to_text(g));
    ASSERT_EQ(again.num_tasks(), g.num_tasks());
    ASSERT_EQ(again.num_edges(), g.num_edges());
    expect_schedulable(g);
  });
  EXPECT_GE(n, 5u) << "graph_text corpus went missing";
}

TEST(CorpusReplay, FaultPlan) {
  const std::size_t n = replay("faultplan", [](const std::string& text) {
    const flb::FaultPlan plan = flb::fault_plan_from_text(text);
    // Round-trip: the writer's output must parse back to a plan the
    // writer renders identically (text-level fixed point).
    const std::string once = flb::to_fault_plan_text(plan);
    const std::string twice =
        flb::to_fault_plan_text(flb::fault_plan_from_text(once));
    ASSERT_EQ(once, twice);
  });
  EXPECT_GE(n, 9u) << "faultplan corpus went missing";
}

// The DOT reader accepts exactly what write_dot emits, including the
// schedule-annotated variant with proc/fillcolor attributes — the two
// generated seeds in the corpus pin that contract. Guard the semantic
// half here: the parsed graph matches the flb-taskgraph twin saved from
// the same generator run.
TEST(CorpusReplay, DotMatchesGraphTextTwin) {
  const flb::TaskGraph from_dot = flb::dot_from_text(
      slurp(corpus_dir("dot") / "random_12_sched.dot"));
  const flb::TaskGraph from_text = flb::from_text(
      slurp(corpus_dir("graph_text") / "random_12.flb"));
  ASSERT_EQ(from_dot.num_tasks(), from_text.num_tasks());
  ASSERT_EQ(from_dot.num_edges(), from_text.num_edges());
  for (flb::TaskId t = 0; t < from_dot.num_tasks(); ++t) {
    // DOT labels carry 4 decimal places; the text format is exact.
    EXPECT_NEAR(from_dot.comp(t), from_text.comp(t), 1e-4);
    ASSERT_EQ(from_dot.successors(t).size(), from_text.successors(t).size());
  }
}

}  // namespace
