#include "flb/sched/tentative.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// Partial schedule of small_diamond: a on p0 [0,1), c on p1 [2,4).
// Ready task d?? No — d needs b. Ready task: b.
struct Fixture {
  TaskGraph g = test::small_diamond();
  Schedule s{2, 4};
  Fixture() {
    s.assign(0, 0, 0.0, 1.0);  // a
  }
};

TEST(Tentative, EntryTaskHasZeroLmtAndNoEp) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  EXPECT_DOUBLE_EQ(last_message_time(g, s, 0), 0.0);
  EXPECT_EQ(enabling_proc(g, s, 0), kInvalidProc);
  EXPECT_DOUBLE_EQ(effective_message_time(g, s, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(est_start(g, s, 0, 1), 0.0);
}

TEST(Tentative, SinglePredecessorQuantities) {
  Fixture f;
  // b's only pred a finished at 1 on p0, comm 2.
  EXPECT_DOUBLE_EQ(last_message_time(f.g, f.s, 1), 3.0);
  EXPECT_EQ(enabling_proc(f.g, f.s, 1), 0u);
  // On p0 the message is free -> EMT excludes it entirely.
  EXPECT_DOUBLE_EQ(effective_message_time(f.g, f.s, 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(effective_message_time(f.g, f.s, 1, 1), 3.0);
  // EST on p0: max(0, PRT=1) = 1; on p1: max(3, 0) = 3.
  EXPECT_DOUBLE_EQ(est_start(f.g, f.s, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(est_start(f.g, f.s, 1, 1), 3.0);
}

TEST(Tentative, MultiPredecessorQuantities) {
  Fixture f;
  f.s.assign(1, 0, 1.0, 4.0);  // b on p0
  f.s.assign(2, 1, 2.0, 4.0);  // c on p1
  // d: preds b (p0, FT 4, comm 1 -> 5) and c (p1, FT 4, comm 3 -> 7).
  EXPECT_DOUBLE_EQ(last_message_time(f.g, f.s, 3), 7.0);
  EXPECT_EQ(enabling_proc(f.g, f.s, 3), 1u);
  // EMT on p1 excludes c's message: only b's 5 remains.
  EXPECT_DOUBLE_EQ(effective_message_time(f.g, f.s, 3, 1), 5.0);
  // EMT on p0 excludes b's message: only c's 7 remains.
  EXPECT_DOUBLE_EQ(effective_message_time(f.g, f.s, 3, 0), 7.0);
  // EST: p0 -> max(7, PRT=4) = 7; p1 -> max(5, 4) = 5.
  EXPECT_DOUBLE_EQ(est_start(f.g, f.s, 3, 0), 7.0);
  EXPECT_DOUBLE_EQ(est_start(f.g, f.s, 3, 1), 5.0);
  auto [p, est] = best_proc_exhaustive(f.g, f.s, 3);
  EXPECT_EQ(p, 1u);
  EXPECT_DOUBLE_EQ(est, 5.0);
}

TEST(Tentative, IsReadyTracksPredecessors) {
  Fixture f;
  EXPECT_FALSE(is_ready(f.g, f.s, 0));  // already scheduled
  EXPECT_TRUE(is_ready(f.g, f.s, 1));
  EXPECT_TRUE(is_ready(f.g, f.s, 2));
  EXPECT_FALSE(is_ready(f.g, f.s, 3));  // b, c unscheduled
}

TEST(Tentative, BestProcPrefersLowerIdOnTies) {
  TaskGraph g = independent_graph(2);
  Schedule s(3, 2);
  auto [p, est] = best_proc_exhaustive(g, s, 0);
  EXPECT_EQ(p, 0u);
  EXPECT_DOUBLE_EQ(est, 0.0);
}

// --- Paper appendix properties, fuzz-checked at every FLB iteration ----------

// Lemma 1: a non-EP-type ready task cannot start before its LMT on any
// processor. Corollary 2: its EST on every processor is exactly
// max(LMT, PRT).
TEST(PaperLemmas, Lemma1AndCorollary2OnFuzzCorpus) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {2u, 4u}) {
      FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
        for (TaskId t : step.ready_tasks) {
          ProcId ep = enabling_proc(g, s, t);
          Cost lmt = last_message_time(g, s, t);
          bool non_ep_type =
              ep == kInvalidProc || lmt < s.proc_ready_time(ep);
          if (!non_ep_type) continue;
          for (ProcId p = 0; p < procs; ++p) {
            Cost est = est_start(g, s, t, p);
            ASSERT_LE(lmt, est + 1e-9);  // Lemma 1
            ASSERT_NEAR(est, std::max(lmt, s.proc_ready_time(p)), 1e-9)
                << "Corollary 2 violated for task " << t;  // Corollary 2
          }
        }
      };
      FlbScheduler flb;
      (void)flb.run_instrumented(g, procs, &obs, nullptr);
    }
  }
}

// EP-type tasks start earliest on their enabling processor (Section 4.1's
// informal claim, the other half of Theorem 3's case analysis).
TEST(PaperLemmas, EpTypeTasksStartEarliestOnEnablingProc) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
      for (TaskId t : step.ready_tasks) {
        ProcId ep = enabling_proc(g, s, t);
        if (ep == kInvalidProc) continue;
        Cost lmt = last_message_time(g, s, t);
        if (lmt < s.proc_ready_time(ep)) continue;  // non-EP type
        Cost est_ep = est_start(g, s, t, ep);
        auto [best_p, best] = best_proc_exhaustive(g, s, t);
        (void)best_p;
        ASSERT_NEAR(est_ep, best, 1e-9)
            << "EP task " << t << " should start earliest on its EP";
      }
    };
    FlbScheduler flb;
    (void)flb.run_instrumented(g, 3, &obs, nullptr);
  }
}

// The FCP/FLB two-processor rule (proved in the ICS'99 companion paper and
// restated in Section 4.1): for ANY ready task, the minimum EST over all
// processors is attained on the enabling processor or on the processor
// becoming idle the earliest.
TEST(PaperLemmas, TwoProcessorRuleOnFuzzCorpus) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {2u, 5u}) {
      FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
        ProcId idle = 0;
        for (ProcId p = 1; p < procs; ++p)
          if (s.proc_ready_time(p) < s.proc_ready_time(idle)) idle = p;
        for (TaskId t : step.ready_tasks) {
          auto [best_p, best] = best_proc_exhaustive(g, s, t);
          (void)best_p;
          Cost candidate = est_start(g, s, t, idle);
          ProcId ep = enabling_proc(g, s, t);
          if (ep != kInvalidProc)
            candidate = std::min(candidate, est_start(g, s, t, ep));
          ASSERT_NEAR(candidate, best, 1e-9)
              << "two-processor rule violated for task " << t;
        }
      };
      FlbScheduler flb;
      (void)flb.run_instrumented(g, procs, &obs, nullptr);
    }
  }
}

}  // namespace
}  // namespace flb
