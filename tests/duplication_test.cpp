#include "flb/algos/duplication.hpp"

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

std::string dup_violations(const TaskGraph& g, const DupSchedule& s) {
  std::string out;
  for (const Violation& v : validate_dup_schedule(g, s)) {
    out += to_string(v);
    out += '\n';
  }
  return out.empty() ? "(none)" : out;
}

// --- DupSchedule container -----------------------------------------------------

TEST(DupSchedule, PlaceAndQueryInstances) {
  DupSchedule s(2, 3);
  s.place(0, 0, 0.0, 1.0);
  s.place(0, 1, 2.0, 3.0);  // duplicate on the other processor
  EXPECT_TRUE(s.has_instance(0));
  EXPECT_EQ(s.instances(0).size(), 2u);
  EXPECT_EQ(s.num_instances(), 2u);
  EXPECT_DOUBLE_EQ(s.earliest_finish(0), 1.0);
  ASSERT_NE(s.instance_on(0, 1), nullptr);
  EXPECT_DOUBLE_EQ(s.instance_on(0, 1)->start, 2.0);
  EXPECT_EQ(s.instance_on(0, 0)->proc, 0u);
  EXPECT_EQ(s.instance_on(1, 0), nullptr);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(DupSchedule, RejectsSecondInstanceOnSameProc) {
  DupSchedule s(2, 2);
  s.place(0, 0, 0.0, 1.0);
  EXPECT_THROW(s.place(0, 0, 5.0, 6.0), Error);
}

TEST(DupSchedule, RejectsOverlap) {
  DupSchedule s(1, 3);
  s.place(0, 0, 0.0, 2.0);
  EXPECT_THROW(s.place(1, 0, 1.0, 3.0), Error);
  s.place(1, 0, 2.0, 3.0);  // touching is fine
}

TEST(DupSchedule, EarliestGapFindsHoles) {
  DupSchedule s(1, 4);
  s.place(0, 0, 0.0, 2.0);
  s.place(1, 0, 5.0, 7.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 0.0, 3.0), 2.0);   // hole [2, 5)
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 0.0, 4.0), 7.0);   // too big -> tail
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 3.0, 1.0), 3.0);   // inside the hole
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 6.0, 1.0), 7.0);
}

TEST(DupSchedule, DataReadyUsesBestInstance) {
  TaskGraph g = test::small_diamond();
  DupSchedule s(2, 4);
  s.place(0, 0, 0.0, 1.0);   // a on p0
  s.place(0, 1, 0.0, 1.0);   // a duplicated on p1
  // b's data (edge comm 2) is free on both processors now.
  EXPECT_DOUBLE_EQ(s.data_ready(g, 1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s.data_ready(g, 1, 1), 1.0);
}

// --- Duplication validator ----------------------------------------------------

TEST(DupValidator, AcceptsLegalDuplication) {
  TaskGraph g = test::small_diamond();
  DupSchedule s(2, 4);
  s.place(0, 0, 0.0, 1.0);
  s.place(0, 1, 0.0, 1.0);  // duplicate of a feeds c locally
  s.place(1, 0, 1.0, 4.0);  // b on p0, local a
  s.place(2, 1, 1.0, 3.0);  // c on p1, local duplicate of a
  s.place(3, 0, 6.0, 7.0);  // d on p0: b local (4), c remote 3+3=6
  EXPECT_TRUE(is_valid_dup_schedule(g, s)) << dup_violations(g, s);
}

TEST(DupValidator, CatchesMissingInstance) {
  TaskGraph g = test::small_diamond();
  DupSchedule s(2, 4);
  s.place(0, 0, 0.0, 1.0);
  auto v = validate_dup_schedule(g, s);
  EXPECT_GE(v.size(), 3u);
}

TEST(DupValidator, CatchesPrematureStart) {
  TaskGraph g = test::small_diamond();
  DupSchedule s(2, 4);
  s.place(0, 0, 0.0, 1.0);
  s.place(1, 1, 1.0, 4.0);  // b on p1 needs a's data at 1+2=3: too early
  s.place(2, 0, 1.0, 3.0);
  s.place(3, 0, 7.0, 8.0);
  bool found = false;
  for (const auto& violation : validate_dup_schedule(g, s))
    if (violation.kind == Violation::Kind::kPrecedence && violation.task == 1)
      found = true;
  EXPECT_TRUE(found);
}

TEST(DupValidator, DuplicationRelaxesPrecedence) {
  // The same premature b becomes legal once a is duplicated onto p1.
  TaskGraph g = test::small_diamond();
  DupSchedule s(2, 4);
  s.place(0, 0, 0.0, 1.0);
  s.place(0, 1, 0.0, 1.0);
  s.place(1, 1, 1.0, 4.0);  // now fed by the local duplicate
  s.place(2, 0, 1.0, 3.0);
  s.place(3, 1, 6.0, 7.0);  // b local (4), c remote 3+3=6
  EXPECT_TRUE(is_valid_dup_schedule(g, s)) << dup_violations(g, s);
}

// --- DupScheduler ----------------------------------------------------------------

TEST(DupScheduler, ValidOnFuzzCorpus) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {2u, 4u}) {
      DupScheduler dup;
      DupSchedule s = dup.run(g, procs);
      ASSERT_TRUE(is_valid_dup_schedule(g, s))
          << g.name() << " P=" << procs << "\n" << dup_violations(g, s);
      EXPECT_GE(s.makespan(), computation_critical_path(g) - 1e-9);
    }
  }
}

TEST(DupScheduler, ValidOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 11;
    params.ccr = 5.0;
    TaskGraph g = make_workload(name, 250, params);
    DupScheduler dup;
    DupSchedule s = dup.run(g, 4);
    ASSERT_TRUE(is_valid_dup_schedule(g, s))
        << name << "\n" << dup_violations(g, s);
  }
}

TEST(DupScheduler, DuplicatesEntryOfExpensiveFork) {
  // One entry task fans out to 4 children over expensive edges: without
  // duplication only one child gets the data for free; with duplication
  // every processor re-executes the cheap entry task.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 10.0;
  TaskGraph g = out_tree_graph(2, 4, p);  // root + 4 leaves, comm 10
  DupScheduler dup;
  DupSchedule s = dup.run(g, 4);
  ASSERT_TRUE(is_valid_dup_schedule(g, s)) << dup_violations(g, s);
  EXPECT_GT(s.num_instances(), g.num_tasks());  // real duplication happened
  // Everything local: root(1) + leaf(1) per processor.
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
  // The no-duplication alternative is far worse: serialize (5 units) or
  // pay a 10-unit message (12 units end to end).
  FlbScheduler flb;
  EXPECT_GE(flb.run(g, 4).makespan(), 4.9);
}

TEST(DupScheduler, BeatsOrMatchesFlbOnCommunicationHeavyTrees) {
  for (std::size_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ccr = 8.0;
    TaskGraph g = out_tree_graph(4, 3, params);
    DupScheduler dup;
    FlbScheduler flb;
    Cost dup_len = dup.run(g, 4).makespan();
    Cost flb_len = flb.run(g, 4).makespan();
    EXPECT_LE(dup_len, flb_len + 1e-9) << "seed " << seed;
  }
}

TEST(DupScheduler, NoDuplicationWhenCommunicationIsFree) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 0.0;  // zero-cost messages: duplication can never help
  TaskGraph g = fork_join_graph(3, 4, p);
  DupScheduler dup;
  DupSchedule s = dup.run(g, 4);
  ASSERT_TRUE(is_valid_dup_schedule(g, s));
  EXPECT_EQ(s.num_instances(), static_cast<std::size_t>(g.num_tasks()));
}

TEST(DupScheduler, SingleProcNeverDuplicates) {
  TaskGraph g = test::fuzz_graph(4);
  DupScheduler dup;
  DupSchedule s = dup.run(g, 1);
  ASSERT_TRUE(is_valid_dup_schedule(g, s));
  EXPECT_EQ(s.num_instances(), static_cast<std::size_t>(g.num_tasks()));
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

}  // namespace
}  // namespace flb
