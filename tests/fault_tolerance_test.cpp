// Fault-tolerant execution: fault injection in the machine simulator,
// online schedule repair, and the robustness metrics tying them together.
//
// The headline property (exercised across every registered scheduler): kill
// one processor mid-run, execute the schedule to the resulting partial
// state, repair, and the continuation is feasible, complete, survives
// re-execution under the same fault plan, and degrades by a provable bound
// — deterministically for a fixed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "flb/core/flb.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

SimOptions with_faults(const FaultPlan& plan) {
  SimOptions options;
  options.faults = &plan;
  return options;
}

// An inductive bound on any continuation built by resume/greedy: each
// migrated task starts no later than the horizon so far (every message has
// arrived by then, full communication included), so the makespan grows by
// at most comp + max inbound comm per migrated task.
Cost degradation_bound(const TaskGraph& g, const SimResult& partial,
                       const RepairResult& repair) {
  Cost horizon = std::max(partial.makespan, repair.release_time);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (partial.finish[t] != kUndefinedTime) continue;
    Cost max_comm = 0.0;
    for (const Adj& in : g.predecessors(t))
      max_comm = std::max(max_comm, in.comm);
    horizon += g.comp(t) + max_comm;
  }
  return horizon;
}

// --- Fault plan basics -------------------------------------------------------

TEST(FaultPlan, TrivialAndValidation) {
  FaultPlan plan;
  EXPECT_TRUE(plan.trivial());
  plan.runtime_spread = 0.2;
  EXPECT_FALSE(plan.trivial());

  FaultPlan bad = FaultPlan::single_failure(9, 1.0);
  EXPECT_THROW(bad.validate(4), Error);
  EXPECT_NO_THROW(bad.validate(10));
  bad.message.loss_probability = 1.5;
  EXPECT_THROW(bad.validate(10), Error);
  bad.message.loss_probability = 0.5;
  bad.runtime_spread = 1.0;
  EXPECT_THROW(bad.validate(10), Error);

  EXPECT_DOUBLE_EQ(FaultPlan::single_failure(2, 7.0).death_time(2), 7.0);
  EXPECT_EQ(FaultPlan::single_failure(2, 7.0).death_time(0), kInfiniteTime);
}

TEST(FaultPlan, MessageOutcomesAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.message.loss_probability = 0.5;
  plan.message.delay_probability = 0.3;
  for (std::size_t slot = 0; slot < 50; ++slot) {
    MessageOutcome a = resolve_message(plan, slot);
    MessageOutcome b = resolve_message(plan, slot);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.delayed, b.delayed);
    EXPECT_DOUBLE_EQ(a.retry_delay, b.retry_delay);
  }
  // A different seed changes at least one outcome over 50 edges.
  FaultPlan other = plan;
  other.seed = 43;
  bool differs = false;
  for (std::size_t slot = 0; slot < 50 && !differs; ++slot)
    differs = resolve_message(plan, slot).retries !=
                  resolve_message(other, slot).retries ||
              resolve_message(plan, slot).dropped !=
                  resolve_message(other, slot).dropped;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RetryDelayFollowsExponentialBackoff) {
  FaultPlan plan;
  plan.message.loss_probability = 1.0;  // every attempt lost
  plan.message.max_retries = 4;
  plan.message.retry_timeout = 2.0;
  plan.message.backoff = 3.0;
  // All attempts lost -> dropped after exhausting the budget.
  MessageOutcome out = resolve_message(plan, 0);
  EXPECT_TRUE(out.dropped);
  // retries counted up to the budget: 4 retransmissions were scheduled
  // (timeouts 2, 6, 18, 54) before the final attempt was also lost.
  EXPECT_EQ(out.retries, 4u);
  EXPECT_DOUBLE_EQ(out.retry_delay, 2.0 + 6.0 + 18.0 + 54.0);
}

// --- Simulator under faults --------------------------------------------------

TEST(FaultSim, TrivialPlanMatchesFaultFreeRun) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  FaultPlan plan;  // injects nothing
  SimResult a = simulate(g, s);
  SimResult b = simulate(g, s, with_faults(plan));
  EXPECT_TRUE(b.complete());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(b.retries, 0u);
  EXPECT_EQ(b.dropped_messages, 0u);
  EXPECT_DOUBLE_EQ(b.work_lost, 0.0);
}

TEST(FaultSim, FailStopKillsRunningAndFutureTasks) {
  // A chain on one processor: kill it mid-second-task. Exactly the first
  // task survives; the in-flight work is lost.
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(2.0);
  for (int i = 0; i < 3; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 4);
  for (TaskId t = 0; t < 4; ++t)
    s.assign(t, 0, 2.0 * t, 2.0 * t + 2.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan = FaultPlan::single_failure(0, 3.0);
  SimResult r = simulate(g, s, with_faults(plan));
  EXPECT_FALSE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[0], 2.0);
  EXPECT_EQ(r.start[1], kUndefinedTime);  // killed at t=3, one unit in
  EXPECT_DOUBLE_EQ(r.work_lost, 1.0);
  ASSERT_EQ(r.unfinished.size(), 3u);
  EXPECT_EQ(r.unfinished[0], 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_GT(r.dead_proc_idle, -1.0);  // defined (clamped at 0)
}

TEST(FaultSim, CompletionAtExactlyFailureTimeSurvives) {
  TaskGraphBuilder b;
  b.add_task(3.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 0.5);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 3.0);
  s.assign(1, 1, 3.5, 4.5);
  FaultPlan plan = FaultPlan::single_failure(0, 3.0);
  SimResult r = simulate(g, s, with_faults(plan));
  // Task 0 finishes exactly when its processor dies: it survives, its
  // message is in flight, and the remote consumer still runs.
  EXPECT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[1], 4.5);
}

TEST(FaultSim, RuntimePerturbationIsDeterministicAndBounded) {
  TaskGraph g = test::fuzz_graph(5);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  FaultPlan plan;
  plan.seed = 7;
  plan.runtime_spread = 0.4;
  SimResult a = simulate(g, s, with_faults(plan));
  SimResult b = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(a.complete());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(a.finish[t], b.finish[t]);
    Cost dur = a.finish[t] - a.start[t];
    EXPECT_GE(dur, g.comp(t) * 0.6 - 1e-12);
    EXPECT_LE(dur, g.comp(t) * 1.4 + 1e-12);
  }
}

TEST(FaultSim, MessageLossAddsRetryLatency) {
  // One remote edge, loss forced on the first attempts via probability 1
  // would drop; use a plan where loss happens but the retry budget is
  // large enough that delivery eventually succeeds for some seed. Instead,
  // deterministically: probability 0 loss vs a delayed message.
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);

  FaultPlan delayed;
  delayed.message.delay_probability = 1.0;
  delayed.message.delay_factor = 2.0;
  SimResult r = simulate(g, s, with_faults(delayed));
  ASSERT_TRUE(r.complete());
  // Transfer takes 8 instead of 4: consumer starts at 9.
  EXPECT_DOUBLE_EQ(r.start[1], 9.0);
  EXPECT_DOUBLE_EQ(r.network_busy, 8.0);
}

TEST(FaultSim, DroppedMessageStarvesConsumer) {
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);

  FaultPlan lossy;
  lossy.message.loss_probability = 1.0;  // every attempt lost -> dropped
  lossy.message.max_retries = 2;
  SimResult r = simulate(g, s, with_faults(lossy));
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.dropped_messages, 1u);
  EXPECT_EQ(r.retries, 2u);
  ASSERT_EQ(r.unfinished.size(), 1u);
  EXPECT_EQ(r.unfinished[0], 1u);
}

// --- Online repair -----------------------------------------------------------

// The acceptance-criterion property test: for every registered scheduler,
// kill a processor mid-run; the repaired continuation validates, completes
// every task off the dead processor, re-executes to completion under the
// same plan, stays within the provable degradation bound, and is
// bit-identical across repeated repairs.
TEST(Repair, KillOneProcessorEveryScheduler) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : extended_scheduler_names()) {
      Schedule nominal = make_scheduler(name, 1)->run(g, 4);
      const Cost when = 0.4 * nominal.makespan();
      FaultPlan plan = FaultPlan::single_failure(1, when);
      SimResult partial = simulate(g, nominal, with_faults(plan));

      RepairResult repair = repair_schedule(g, nominal, partial, plan);
      ASSERT_TRUE(repair.schedule.complete()) << name;
      ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
          << name << " on " << g.name() << "\n"
          << test::violations_to_string(g, repair.schedule);
      EXPECT_EQ(repair.survivors, 3u);

      // Migrated work lands on survivors only, never before the failure.
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (partial.finish[t] != kUndefinedTime) continue;
        EXPECT_NE(repair.schedule.proc(t), 1u) << name;
        EXPECT_GE(repair.schedule.start(t), when - 1e-9) << name;
      }

      // The continuation re-executes to completion under the same plan:
      // everything on the dead processor finished before the failure. The
      // replay may beat the analytic plan (migrated tasks are clamped to
      // start no earlier than the failure time, but a from-scratch replay
      // is free to start them as soon as their inputs arrive), never lag it.
      SimResult replay = simulate(g, repair.schedule, with_faults(plan));
      EXPECT_TRUE(replay.complete()) << name;
      EXPECT_LE(replay.makespan, repair.schedule.makespan() + 1e-9) << name;

      // Bounded degradation.
      EXPECT_LE(repair.schedule.makespan(),
                degradation_bound(g, partial, repair) + 1e-9)
          << name;

      // Deterministic: repairing again yields the identical schedule.
      RepairResult again = repair_schedule(g, nominal, partial, plan);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_EQ(repair.schedule.proc(t), again.schedule.proc(t)) << name;
        ASSERT_DOUBLE_EQ(repair.schedule.start(t), again.schedule.start(t))
            << name;
      }
    }
  }
}

TEST(Repair, GreedyFallbackWithSingleSurvivor) {
  TaskGraph g = test::fuzz_graph(4);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 3);
  FaultPlan plan;
  plan.failures.push_back({0, 0.25 * nominal.makespan()});
  plan.failures.push_back({2, 0.25 * nominal.makespan()});
  SimResult partial = simulate(g, nominal, with_faults(plan));

  RepairResult repair = repair_schedule(g, nominal, partial, plan);
  EXPECT_EQ(repair.used, RepairStrategy::kGreedy);
  EXPECT_EQ(repair.survivors, 1u);
  ASSERT_TRUE(repair.schedule.complete());
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
      << test::violations_to_string(g, repair.schedule);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (partial.finish[t] == kUndefinedTime)
      EXPECT_EQ(repair.schedule.proc(t), 1u);
  SimResult replay = simulate(g, repair.schedule, with_faults(plan));
  EXPECT_TRUE(replay.complete());
}

TEST(Repair, ExplicitStrategiesAgreeOnFeasibility) {
  TaskGraph g = test::fuzz_graph(6);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  FaultPlan plan = FaultPlan::single_failure(3, 0.5 * nominal.makespan());
  SimResult partial = simulate(g, nominal, with_faults(plan));

  for (RepairStrategy strategy :
       {RepairStrategy::kFlbResume, RepairStrategy::kGreedy}) {
    RepairOptions options;
    options.strategy = strategy;
    RepairResult repair = repair_schedule(g, nominal, partial, plan, options);
    EXPECT_EQ(repair.used, strategy);
    ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
        << test::violations_to_string(g, repair.schedule);
  }
}

TEST(Repair, RejectsTotalFailureAndDroppedData) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);

  FaultPlan all_dead;
  all_dead.failures.push_back({0, 1.0});
  all_dead.failures.push_back({1, 1.0});
  SimResult partial = simulate(g, nominal, with_faults(all_dead));
  EXPECT_THROW((void)repair_schedule(g, nominal, partial, all_dead), Error);

  FaultPlan lossy;
  lossy.message.loss_probability = 1.0;
  SimResult starved = simulate(g, nominal, with_faults(lossy));
  if (starved.dropped_messages > 0)
    EXPECT_THROW((void)repair_schedule(g, nominal, starved, lossy), Error);
}

// --- Partition-aware repair: RepairOptions::unreachable ---------------------

// An unreachable-but-alive processor is masked out of new placements — the
// controller cannot install work behind the partition — but the queue it
// already holds keeps executing in place: the whole not-yet-started tail
// pins, placements and starts preserved, until the first task that would
// need a re-planned producer.
TEST(Repair, UnreachableProcessorKeepsItsQueueButTakesNoNewWork) {
  bool any_pinned = false;
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule nominal = flb.run(g, 4);
    FaultPlan plan;  // nothing actually fails: the cut is belief, not death
    plan.runtime_spread = 0.0;
    SimResult partial = simulate(g, nominal, with_faults(plan));

    RepairOptions options;
    options.horizon = 0.4 * nominal.makespan();
    options.unreachable = {2, 2};  // duplicates collapse
    RepairResult repair =
        repair_schedule(g, nominal, partial, plan, options);
    EXPECT_EQ(repair.unreachable_procs, 1u);
    ASSERT_TRUE(repair.schedule.complete()) << g.name();
    ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
        << g.name() << "\n"
        << test::violations_to_string(g, repair.schedule);

    // Nothing new lands on the unreachable processor: any re-planned task
    // the continuation leaves on p2 already lived there in the nominal
    // schedule, at its nominal start or later (a pin, not a placement).
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (partial.start[t] < options.horizon) continue;  // fixed past
      if (repair.schedule.proc(t) != 2u) continue;
      EXPECT_EQ(nominal.proc(t), 2u) << g.name() << " task " << t;
      EXPECT_GE(repair.schedule.start(t), nominal.start(t) - 1e-9);
    }
    for (TaskId t : repair.pinned_tasks) {
      any_pinned = true;
      EXPECT_EQ(nominal.proc(t), 2u);
      EXPECT_EQ(repair.schedule.proc(t), 2u);
    }
  }
  // The property sweep must have exercised a real pin somewhere, or the
  // placement assertions above are vacuous.
  EXPECT_TRUE(any_pinned);
}

// A processor listed in both `suspects` and `unreachable` follows the
// suspect semantics: one in-flight hedge at most, never the whole queue.
// With a fault-free partial run nothing is in flight at the horizon, so
// the overlap pins nothing while unreachable-only pins the tail.
TEST(Repair, SuspectSemanticsWinOnOverlapWithUnreachable) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  FaultPlan plan;
  plan.runtime_spread = 0.0;
  SimResult partial = simulate(g, nominal, with_faults(plan));

  RepairOptions cut_only;
  cut_only.horizon = 0.4 * nominal.makespan();
  cut_only.unreachable = {2};
  const RepairResult whole =
      repair_schedule(g, nominal, partial, plan, cut_only);

  RepairOptions overlap = cut_only;
  overlap.suspects = {2};
  const RepairResult hedge =
      repair_schedule(g, nominal, partial, plan, overlap);
  EXPECT_LE(hedge.pinned_tasks.size(), 1u);
  EXPECT_GE(whole.pinned_tasks.size(), hedge.pinned_tasks.size());
}

TEST(Repair, RejectsUnreachableEverythingAndBadIds) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan plan;
  SimResult partial = simulate(g, nominal, with_faults(plan));

  RepairOptions options;
  options.horizon = 0.5 * nominal.makespan();
  options.unreachable = {0, 1};  // nobody left to install work on
  EXPECT_THROW(
      (void)repair_schedule(g, nominal, partial, plan, options), Error);
  options.unreachable = {5};  // not a processor of this machine
  EXPECT_THROW(
      (void)repair_schedule(g, nominal, partial, plan, options), Error);

  // Dead and unreachable compose: killing p0 while p1 sits behind a cut
  // leaves no reachable survivor either.
  FaultPlan kill = FaultPlan::single_failure(0, 0.3 * nominal.makespan());
  SimResult partial_kill = simulate(g, nominal, with_faults(kill));
  RepairOptions one_cut;
  one_cut.unreachable = {1};
  EXPECT_THROW(
      (void)repair_schedule(g, nominal, partial_kill, kill, one_cut), Error);
}

TEST(Repair, NoFailuresIsIdentityContinuation) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan plan;
  plan.runtime_spread = 0.0;
  SimResult full = simulate(g, nominal, with_faults(plan));
  RepairResult repair = repair_schedule(g, nominal, full, plan);
  EXPECT_EQ(repair.migrated_tasks, 0u);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(repair.schedule.proc(t), nominal.proc(t));
    EXPECT_DOUBLE_EQ(repair.schedule.start(t), nominal.start(t));
  }
}

// FLB resume with an all-alive mask and empty prefix is exactly run().
TEST(Repair, ResumeFromEmptyPrefixMatchesRun) {
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule fresh = flb.run(g, 3);
    Schedule resumed =
        flb.resume(g, Schedule(3, g.num_tasks()), {true, true, true});
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      ASSERT_EQ(fresh.proc(t), resumed.proc(t)) << g.name();
      ASSERT_DOUBLE_EQ(fresh.start(t), resumed.start(t)) << g.name();
    }
  }
}

// --- Fault-plan validation names the offending entry -------------------------

std::string validation_error(const FaultPlan& plan, ProcId procs) {
  try {
    plan.validate(procs);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(FaultPlan, ValidationNamesOffendingEntry) {
  FaultPlan dup;
  dup.failures.push_back({0, 1.0});
  dup.failures.push_back({0, 2.0});
  EXPECT_NE(validation_error(dup, 4).find("failures[1]"), std::string::npos);
  EXPECT_NE(validation_error(dup, 4).find("duplicates"), std::string::npos);

  FaultPlan negative;
  negative.failures.push_back({1, -3.0});
  EXPECT_NE(validation_error(negative, 4).find("failures[0]"),
            std::string::npos);

  FaultPlan bad_slow;
  bad_slow.slowdowns.push_back({0, 1.0, 0.5});
  bad_slow.slowdowns.push_back({1, 1.0, 1.5});
  EXPECT_NE(validation_error(bad_slow, 4).find("slowdowns[1]"),
            std::string::npos);

  FaultPlan unknown_domain;
  unknown_domain.domains.push_back({"rack0", {0, 1}});
  unknown_domain.bursts.push_back({"rack9", 1.0});
  EXPECT_NE(validation_error(unknown_domain, 4).find("bursts[0]"),
            std::string::npos);
  EXPECT_NE(validation_error(unknown_domain, 4).find("rack9"),
            std::string::npos);

  FaultPlan dup_domain;
  dup_domain.domains.push_back({"rack0", {0}});
  dup_domain.domains.push_back({"rack0", {1}});
  EXPECT_NE(validation_error(dup_domain, 4).find("domains[1]"),
            std::string::npos);

  FaultPlan out_of_range_member;
  out_of_range_member.domains.push_back({"rack0", {0, 7}});
  EXPECT_NE(validation_error(out_of_range_member, 4).find("domains[0]"),
            std::string::npos);

  FaultPlan bad_ckpt;
  bad_ckpt.checkpoint.interval = -1.0;
  EXPECT_NE(validation_error(bad_ckpt, 4).find("checkpoint interval"),
            std::string::npos);

  // The simulator and the repair path both validate at the point of use.
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  FaultPlan bad = FaultPlan::single_failure(0, -1.0);
  EXPECT_THROW((void)simulate(g, s, with_faults(bad)), Error);
}

// --- Failure domains and correlated bursts -----------------------------------

TEST(FaultPlan, BurstsResolveDeterministicallyWithinTheWindow) {
  FaultPlan plan;
  plan.seed = 11;
  plan.domains.push_back({"rack0", {0, 1, 2}});
  plan.domains.push_back({"rack1", {3, 4}});
  plan.bursts.push_back({"rack0", 10.0, 2.0});
  plan.validate(5);

  ResolvedFaults a = resolve_faults(plan);
  ResolvedFaults b = resolve_faults(plan);
  ASSERT_EQ(a.failures.size(), 3u);  // probability defaults to 1
  EXPECT_TRUE(a.slowdowns.empty());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].proc, b.failures[i].proc);
    EXPECT_DOUBLE_EQ(a.failures[i].time, b.failures[i].time);
    EXPECT_GE(a.failures[i].time, 10.0);
    EXPECT_LE(a.failures[i].time, 12.0);
  }
  // rack1 was not hit.
  for (const ProcFailure& f : a.failures) EXPECT_LT(f.proc, 3u);

  // A different seed moves at least one strike instant.
  FaultPlan other = plan;
  other.seed = 12;
  ResolvedFaults c = resolve_faults(other);
  ASSERT_EQ(c.failures.size(), 3u);
  bool differs = false;
  for (std::size_t i = 0; i < 3; ++i)
    differs = differs || a.failures[i].time != c.failures[i].time;
  EXPECT_TRUE(differs);

  // Zero window: the whole domain dies at exactly the trigger instant.
  FaultPlan sharp = plan;
  sharp.bursts[0].window = 0.0;
  for (const ProcFailure& f : resolve_faults(sharp).failures)
    EXPECT_DOUBLE_EQ(f.time, 10.0);
}

TEST(FaultPlan, SlowdownBurstsThrottleInsteadOfKilling) {
  FaultPlan plan;
  plan.domains.push_back({"rack0", {0, 1}});
  plan.bursts.push_back({"rack0", 5.0, 0.0, 1.0, 0.25});
  plan.validate(4);
  ResolvedFaults r = resolve_faults(plan);
  EXPECT_TRUE(r.failures.empty());
  ASSERT_EQ(r.slowdowns.size(), 2u);
  for (const SlowdownFault& s : r.slowdowns) {
    EXPECT_DOUBLE_EQ(s.time, 5.0);
    EXPECT_DOUBLE_EQ(s.factor, 0.25);
  }
  std::vector<double> speeds = final_speeds(r, 4);
  EXPECT_DOUBLE_EQ(speeds[0], 0.25);
  EXPECT_DOUBLE_EQ(speeds[2], 1.0);
}

TEST(FaultPlan, CascadesSpreadToOtherDomainsAfterTheWindow) {
  FaultPlan plan;
  plan.seed = 3;
  plan.domains.push_back({"rack0", {0, 1}});
  plan.domains.push_back({"rack1", {2, 3}});
  plan.bursts.push_back({"rack0", 10.0, 2.0, 1.0, 0.0, 1.0, 3.0});
  plan.validate(4);
  ResolvedFaults r = resolve_faults(plan);
  ASSERT_EQ(r.failures.size(), 4u);  // both domains fully dead
  for (const ProcFailure& f : r.failures) {
    if (f.proc <= 1) {
      EXPECT_GE(f.time, 10.0);
      EXPECT_LE(f.time, 12.0);
    } else {
      // Secondary burst triggers at time + window + cascade_delay = 15.
      EXPECT_GE(f.time, 15.0);
      EXPECT_LE(f.time, 17.0);
    }
  }
  // Cascading is one level deep: resolving twice is identical (no runaway).
  ResolvedFaults again = resolve_faults(plan);
  ASSERT_EQ(again.failures.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(r.failures[i].time, again.failures[i].time);
}

TEST(FaultPlan, CheckpointCountHelper) {
  CheckpointPolicy off;
  EXPECT_EQ(checkpoint_count(off, 100.0), 0u);
  CheckpointPolicy ckpt{0.5, 0.0};
  EXPECT_EQ(checkpoint_count(ckpt, 2.0), 3u);   // marks at 0.5, 1.0, 1.5
  EXPECT_EQ(checkpoint_count(ckpt, 0.5), 0u);   // no mark strictly below work
  EXPECT_EQ(checkpoint_count(ckpt, 0.75), 1u);  // mark at 0.5
}

// --- Slowdown faults in the simulator ----------------------------------------

TEST(FaultSim, SlowdownsStretchRemainingWorkMultiplicatively) {
  TaskGraphBuilder b;
  b.add_task(4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 4.0);

  // Speed halves at t=2 and halves again at t=4: 2 units at speed 1, then
  // 1 unit over [2,4) at speed 0.5, then the last unit at 0.25 -> t=8.
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0, 0.5});
  plan.slowdowns.push_back({0, 4.0, 0.5});
  SimResult r = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[0], 8.0);
  EXPECT_DOUBLE_EQ(r.work_lost, 0.0);  // nothing died
}

TEST(FaultSim, SlowdownOutcomeIsIdenticalAcrossNetworkModels) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  FaultPlan plan;
  plan.seed = 21;
  plan.domains.push_back({"left", {0, 1}});
  plan.bursts.push_back({"left", 0.2 * s.makespan(), 0.1 * s.makespan(), 1.0,
                         0.5});
  // The resolved fault set is a pure function of the plan — identical under
  // every network model; only message timing differs between models.
  SimOptions clique = with_faults(plan);
  SimOptions port = with_faults(plan);
  port.network = SimNetwork::kSinglePortSendRecv;
  SimResult a = simulate(g, s, clique);
  SimResult a2 = simulate(g, s, clique);
  SimResult p = simulate(g, s, port);
  ASSERT_TRUE(a.complete());  // slowdowns never kill
  ASSERT_TRUE(p.complete());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(a.finish[t], a2.finish[t]);  // bit-identical re-run
    // Contention can only delay, and the speed profile is the same.
    EXPECT_GE(p.finish[t], a.finish[t] - 1e-9);
  }
}

// --- Checkpointing -----------------------------------------------------------

TEST(FaultSim, CheckpointWritesPauseExecution) {
  TaskGraphBuilder b;
  b.add_task(2.0);
  TaskGraph g = std::move(b).build();
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 2.0);
  FaultPlan plan;
  plan.checkpoint = {0.5, 0.1};  // marks at 0.5, 1.0, 1.5 -> 3 writes
  SimResult r = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[0], 2.3);
  EXPECT_EQ(r.checkpoints_taken, 3u);
  EXPECT_DOUBLE_EQ(r.checkpoint_overhead, 0.3);
}

TEST(FaultSim, CheckpointLimitsWorkLostOnKill) {
  // The FailStopKillsRunningAndFutureTasks chain, now checkpointed: the
  // kill at t=3.4 catches task 1 at 1.4 units of work, of which the mark
  // at 1.0 is durable.
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(2.0);
  for (int i = 0; i < 3; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 4);
  for (TaskId t = 0; t < 4; ++t)
    s.assign(t, 0, 2.0 * t, 2.0 * t + 2.0);

  FaultPlan plain = FaultPlan::single_failure(0, 3.4);
  FaultPlan ckpt = plain;
  ckpt.checkpoint = {0.5, 0.0};

  SimResult lossy = simulate(g, s, with_faults(plain));
  SimResult saved = simulate(g, s, with_faults(ckpt));
  EXPECT_DOUBLE_EQ(lossy.work_lost, 1.4);
  EXPECT_DOUBLE_EQ(saved.work_lost, 0.4);
  EXPECT_DOUBLE_EQ(saved.work_saved, 1.0);
  ASSERT_EQ(saved.checkpointed.size(), 4u);
  EXPECT_DOUBLE_EQ(saved.checkpointed[1], 1.0);
  ASSERT_EQ(saved.proc_work_lost.size(), 2u);
  EXPECT_DOUBLE_EQ(saved.proc_work_lost[0], 0.4);
  EXPECT_DOUBLE_EQ(saved.proc_work_lost[1], 0.0);
}

TEST(FaultSim, InterruptedCheckpointWriteIsNotDurable) {
  TaskGraphBuilder b;
  b.add_task(2.0);
  TaskGraph g = std::move(b).build();
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 2.0);
  // The write at the 1.0 mark spans [1.0, 1.5); the kill at 1.2 interrupts
  // it, so only the 0.5 mark (written over [0.5, 1.0), done by 1.0) holds.
  FaultPlan plan = FaultPlan::single_failure(0, 1.2);
  plan.checkpoint = {0.5, 0.5};
  SimResult r = simulate(g, s, with_faults(plan));
  EXPECT_FALSE(r.complete());
  EXPECT_DOUBLE_EQ(r.work_saved, 0.5);
}

// Criticality-aware placement: min_downstream gates which tasks checkpoint
// by their bottom level. On the 4-task chain (comp 2, comm 1) the bottom
// levels are 11, 8, 5, 2, and the kill at t=3.4 catches task 1 at 1.4
// units of work.
TEST(FaultSim, CriticalityThresholdGatesWhichTasksCheckpoint) {
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(2.0);
  for (int i = 0; i < 3; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 4);
  for (TaskId t = 0; t < 4; ++t)
    s.assign(t, 0, 2.0 * t, 2.0 * t + 2.0);

  CheckpointPolicy policy{0.5, 0.0, 6.0};
  EXPECT_TRUE(policy.covers(8.0));
  EXPECT_FALSE(policy.covers(5.0));

  auto run_with_threshold = [&](Cost min_downstream) {
    FaultPlan plan = FaultPlan::single_failure(0, 3.4);
    plan.checkpoint = {0.5, 0.0, min_downstream};
    return simulate(g, s, with_faults(plan));
  };

  // Uniform (threshold 0): tasks 0 and 1 write 3 + 2 marks before the
  // kill; the mark at 1.0 into task 1 is durable.
  SimResult uniform = run_with_threshold(0.0);
  EXPECT_EQ(uniform.checkpoints_taken, 5u);
  EXPECT_DOUBLE_EQ(uniform.work_saved, 1.0);
  EXPECT_DOUBLE_EQ(uniform.work_lost, 0.4);

  // Threshold 6 covers tasks 0 (BL 11) and 1 (BL 8) — the same protection
  // at the same write count, since tasks 2 and 3 never ran.
  SimResult selective = run_with_threshold(6.0);
  EXPECT_EQ(selective.checkpoints_taken, 5u);
  EXPECT_DOUBLE_EQ(selective.work_saved, 1.0);
  EXPECT_DOUBLE_EQ(selective.work_lost, 0.4);

  // Threshold 9 covers only task 0, which finishes — its writes protect
  // nothing, and the killed task 1 restarts from zero.
  SimResult head_only = run_with_threshold(9.0);
  EXPECT_EQ(head_only.checkpoints_taken, 3u);
  EXPECT_DOUBLE_EQ(head_only.work_saved, 0.0);
  EXPECT_DOUBLE_EQ(head_only.work_lost, 1.4);

  // An unreachable threshold disables checkpointing outright.
  SimResult none = run_with_threshold(100.0);
  EXPECT_EQ(none.checkpoints_taken, 0u);
  EXPECT_DOUBLE_EQ(none.work_lost, 1.4);
}

// Repair honors the same gate: a covered kill victim resumes from its
// durable mark, an uncovered one re-executes in full — and both
// continuations stay feasible against their duration vectors.
TEST(Repair, CriticalityCheckpointResumesOnlyCoveredTasks) {
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(2.0);
  for (int i = 0; i < 3; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);

  for (Cost threshold : {6.0, 9.0}) {
    FaultPlan plan = FaultPlan::single_failure(0, 3.4);
    plan.checkpoint = {0.5, 0.0, threshold};
    SimResult partial = simulate(g, nominal, with_faults(plan));
    RepairResult repair = repair_schedule(g, nominal, partial, plan);
    EXPECT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations))
        << "threshold " << threshold;
    if (threshold <= 8.0)
      EXPECT_GT(repair.checkpoint_work_saved, 0.0);
    else
      EXPECT_DOUBLE_EQ(repair.checkpoint_work_saved, 0.0);
  }
}

// With zero write overhead the execution timeline is identical across
// checkpoint intervals, and halving the interval can only move each task's
// last durable mark closer to its kill point: work lost is non-increasing
// along the dyadic interval sequence, and any checkpointing beats none.
// (Neither claim holds for arbitrary interval pairs or positive overhead —
// see docs/fault_model.md.)
TEST(FaultSim, WorkLostIsMonotoneAlongDyadicIntervals) {
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 4);
    FaultPlan base = FaultPlan::single_failure(1, 0.35 * s.makespan());
    Cost previous = simulate(g, s, with_faults(base)).work_lost;
    const Cost no_ckpt = previous;
    for (Cost interval : {8.0, 4.0, 2.0, 1.0, 0.5}) {
      FaultPlan plan = base;
      plan.checkpoint = {interval, 0.0};
      Cost lost = simulate(g, s, with_faults(plan)).work_lost;
      EXPECT_LE(lost, previous + 1e-9) << g.name() << " @" << interval;
      EXPECT_LE(lost, no_ckpt + 1e-9) << g.name() << " @" << interval;
      previous = lost;
    }
  }
}

// --- Repair on a degraded machine --------------------------------------------

TEST(Repair, SlowdownOnlyEpisodeMovesQueuedWorkOffThrottledProc) {
  // Six unit tasks on two processors; FLB splits them 3/3 with starts
  // 0, 1, 2. Processor 0 is throttled to a tenth of its speed at t=0.5.
  TaskGraphBuilder b;
  for (int i = 0; i < 6; ++i) b.add_task(1.0);
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);

  FaultPlan plan;
  plan.slowdowns.push_back({0, 0.5, 0.1});
  SimResult partial = simulate(g, nominal, with_faults(plan));
  ASSERT_TRUE(partial.complete());  // nothing dies, the run just limps
  EXPECT_GT(partial.makespan, nominal.makespan());

  // Repair at the slowdown onset: tasks not yet started by then are fair
  // game; with proc 0 ten times slower, the resumed FLB drains all of them
  // to proc 1.
  RepairOptions options;
  options.horizon = 0.5;
  RepairResult repair = repair_schedule(g, nominal, partial, plan, options);
  EXPECT_EQ(repair.degraded_procs, 1u);
  EXPECT_EQ(repair.survivors, 2u);
  EXPECT_GT(repair.migrated_tasks, 0u);
  ASSERT_TRUE(repair.schedule.complete());
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations));
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (partial.start[t] == kUndefinedTime || partial.start[t] >= 0.5)
      EXPECT_EQ(repair.schedule.proc(t), 1u) << t;
  // Re-balancing beats riding out the slowdown.
  EXPECT_LT(repair.schedule.makespan(), partial.makespan);

  // The continuation replays to completion with its expected durations.
  SimOptions replay_opts;
  replay_opts.work_override = &repair.durations;
  SimResult replay = simulate(g, repair.schedule, replay_opts);
  EXPECT_TRUE(replay.complete());
}

TEST(Repair, ReexecutesProducersOfDroppedMessages) {
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);

  FaultPlan lossy;
  lossy.message.loss_probability = 1.0;
  lossy.message.max_retries = 1;
  SimResult partial = simulate(g, s, with_faults(lossy));
  ASSERT_EQ(partial.dropped_messages, 1u);
  ASSERT_EQ(partial.dropped_edges.size(), 1u);
  EXPECT_EQ(partial.dropped_edges[0].first, 0u);
  EXPECT_EQ(partial.dropped_edges[0].second, 1u);

  // Default policy still refuses (PR 1 behavior)...
  EXPECT_THROW((void)repair_schedule(g, s, partial, lossy), Error);

  // ...but re-execution rolls back the producer and its successors.
  RepairOptions options;
  options.dropped_data = DroppedDataPolicy::kReexecuteProducers;
  RepairResult repair = repair_schedule(g, s, partial, lossy, options);
  EXPECT_EQ(repair.reexecuted_tasks, 1u);  // task 0 had finished
  EXPECT_EQ(repair.migrated_tasks, 2u);    // both re-planned
  EXPECT_GE(repair.release_time, 1.0);     // not before the loss was seen
  ASSERT_TRUE(repair.schedule.complete());
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations));
  EXPECT_GE(repair.schedule.start(0), 1.0 - 1e-9);

  // Replaying the continuation with losses disabled runs to completion.
  SimOptions replay_opts;
  replay_opts.work_override = &repair.durations;
  SimResult replay = simulate(g, repair.schedule, replay_opts);
  EXPECT_TRUE(replay.complete());
}

TEST(Repair, MidRunKillRepairsUnderSinglePortContention) {
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule nominal = flb.run(g, 4);
    FaultPlan plan = FaultPlan::single_failure(1, 0.4 * nominal.makespan());
    for (SimNetwork net :
         {SimNetwork::kSinglePortSend, SimNetwork::kSinglePortSendRecv}) {
      SimOptions opts = with_faults(plan);
      opts.network = net;
      SimResult partial = simulate(g, nominal, opts);
      RepairResult repair = repair_schedule(g, nominal, partial, plan);
      ASSERT_TRUE(repair.schedule.complete()) << g.name();
      ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations))
          << g.name() << "\n"
          << test::violations_to_string(g, repair.schedule);

      // The continuation replays to completion under the same contention
      // model, carrying the observed/expected wall durations.
      SimOptions replay_opts;
      replay_opts.network = net;
      replay_opts.work_override = &repair.durations;
      SimResult replay = simulate(g, repair.schedule, replay_opts);
      EXPECT_TRUE(replay.complete()) << g.name();

      // The contended partial run itself is deterministic.
      SimResult partial2 = simulate(g, nominal, opts);
      for (TaskId t = 0; t < g.num_tasks(); ++t)
        ASSERT_DOUBLE_EQ(partial.finish[t], partial2.finish[t]) << g.name();
    }
  }
}

// The ISSUE's acceptance episode: a correlated burst kills one rack, a
// survivor is throttled, checkpointing is on. For every registered
// scheduler the repaired schedule validates (duration-aware), replays to
// completion under both the clique and the single-port model, is
// bit-identical across re-runs, and loses strictly less work than the same
// episode without checkpoints.
TEST(Repair, AcceptanceBurstSlowdownCheckpointEverySchedulerEpisode) {
  for (std::size_t i = 0; i < 4; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : extended_scheduler_names()) {
      Schedule nominal = make_scheduler(name, 1)->run(g, 4);
      const Cost span = nominal.makespan();

      FaultPlan plan;
      plan.seed = 17;
      plan.domains.push_back({"rack0", {0, 1}});
      plan.domains.push_back({"rack1", {2, 3}});
      plan.bursts.push_back({"rack0", 0.3 * span, 0.1 * span});
      plan.slowdowns.push_back({2, 0.2 * span, 0.5});
      plan.checkpoint = {0.25 * span, 0.0};

      SimResult partial = simulate(g, nominal, with_faults(plan));
      RepairResult repair = repair_schedule(g, nominal, partial, plan);
      ASSERT_TRUE(repair.schedule.complete()) << name;
      ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations))
          << name << " on " << g.name() << "\n"
          << test::violations_to_string(g, repair.schedule);
      EXPECT_EQ(repair.survivors, 2u) << name;
      EXPECT_EQ(repair.degraded_procs, 1u) << name;

      // Migrated work lands on the surviving rack only.
      for (TaskId t = 0; t < g.num_tasks(); ++t)
        if (partial.finish[t] == kUndefinedTime)
          EXPECT_GE(repair.schedule.proc(t), 2u) << name;

      // Replays to completion under both network models.
      for (SimNetwork net :
           {SimNetwork::kContentionFree, SimNetwork::kSinglePortSendRecv}) {
        SimOptions replay_opts;
        replay_opts.network = net;
        replay_opts.work_override = &repair.durations;
        SimResult replay = simulate(g, repair.schedule, replay_opts);
        EXPECT_TRUE(replay.complete()) << name;
      }

      // Bit-identical across re-runs of the whole episode.
      SimResult partial2 = simulate(g, nominal, with_faults(plan));
      RepairResult repair2 = repair_schedule(g, nominal, partial2, plan);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_EQ(repair.schedule.proc(t), repair2.schedule.proc(t)) << name;
        ASSERT_DOUBLE_EQ(repair.schedule.start(t), repair2.schedule.start(t))
            << name;
      }

      // Checkpoints can only reduce the work the burst destroys.
      FaultPlan no_ckpt = plan;
      no_ckpt.checkpoint = {};
      SimResult baseline = simulate(g, nominal, with_faults(no_ckpt));
      EXPECT_LE(partial.work_lost, baseline.work_lost + 1e-9) << name;
      if (partial.work_saved > 0.0)
        EXPECT_LT(partial.work_lost, baseline.work_lost) << name;
    }
  }
}

// --- Robustness metrics ------------------------------------------------------

TEST(Metrics, RobustnessSummary) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  FaultPlan plan = FaultPlan::single_failure(0, 0.3 * nominal.makespan());
  SimResult partial = simulate(g, nominal, with_faults(plan));
  RepairResult repair = repair_schedule(g, nominal, partial, plan);

  RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
  EXPECT_DOUBLE_EQ(m.nominal_makespan, nominal.makespan());
  EXPECT_DOUBLE_EQ(m.repaired_makespan, repair.schedule.makespan());
  EXPECT_NEAR(m.degradation_ratio,
              m.repaired_makespan / m.nominal_makespan, 1e-12);
  EXPECT_GE(m.degradation_ratio, 0.0);
  EXPECT_EQ(m.migrated_tasks, repair.migrated_tasks);
  EXPECT_GE(m.repair_millis, 0.0);
}

TEST(Metrics, PerDomainImpactAndCheckpointAccounting) {
  TaskGraph g = test::fuzz_graph(5);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  const Cost span = nominal.makespan();

  FaultPlan plan;
  plan.seed = 9;
  plan.domains.push_back({"rack0", {0, 1}});
  plan.domains.push_back({"rack1", {2, 3}});
  plan.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
  plan.slowdowns.push_back({3, 0.1 * span, 0.5});
  plan.checkpoint = {0.2 * span, 0.0};

  SimResult partial = simulate(g, nominal, with_faults(plan));
  RepairResult repair = repair_schedule(g, nominal, partial, plan);
  RobustnessMetrics m = robustness_metrics(nominal, partial, repair, plan);

  EXPECT_DOUBLE_EQ(m.work_saved, partial.work_saved);
  EXPECT_DOUBLE_EQ(m.checkpoint_overhead, partial.checkpoint_overhead);
  EXPECT_EQ(m.degraded_procs, 1u);
  ASSERT_EQ(m.domains.size(), 2u);
  EXPECT_EQ(m.domains[0].name, "rack0");
  EXPECT_EQ(m.domains[0].members, 2u);
  EXPECT_EQ(m.domains[0].killed, 2u);
  EXPECT_EQ(m.domains[0].throttled, 0u);
  EXPECT_EQ(m.domains[1].killed, 0u);
  EXPECT_EQ(m.domains[1].throttled, 1u);
  EXPECT_DOUBLE_EQ(m.domains[1].work_lost, 0.0);
  EXPECT_DOUBLE_EQ(m.domains[0].work_lost, partial.work_lost);
}

}  // namespace
}  // namespace flb
