// Fault-tolerant execution: fault injection in the machine simulator,
// online schedule repair, and the robustness metrics tying them together.
//
// The headline property (exercised across every registered scheduler): kill
// one processor mid-run, execute the schedule to the resulting partial
// state, repair, and the continuation is feasible, complete, survives
// re-execution under the same fault plan, and degrades by a provable bound
// — deterministically for a fixed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "flb/core/flb.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

SimOptions with_faults(const FaultPlan& plan) {
  SimOptions options;
  options.faults = &plan;
  return options;
}

// An inductive bound on any continuation built by resume/greedy: each
// migrated task starts no later than the horizon so far (every message has
// arrived by then, full communication included), so the makespan grows by
// at most comp + max inbound comm per migrated task.
Cost degradation_bound(const TaskGraph& g, const SimResult& partial,
                       const RepairResult& repair) {
  Cost horizon = std::max(partial.makespan, repair.release_time);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (partial.finish[t] != kUndefinedTime) continue;
    Cost max_comm = 0.0;
    for (const Adj& in : g.predecessors(t))
      max_comm = std::max(max_comm, in.comm);
    horizon += g.comp(t) + max_comm;
  }
  return horizon;
}

// --- Fault plan basics -------------------------------------------------------

TEST(FaultPlan, TrivialAndValidation) {
  FaultPlan plan;
  EXPECT_TRUE(plan.trivial());
  plan.runtime_spread = 0.2;
  EXPECT_FALSE(plan.trivial());

  FaultPlan bad = FaultPlan::single_failure(9, 1.0);
  EXPECT_THROW(bad.validate(4), Error);
  EXPECT_NO_THROW(bad.validate(10));
  bad.message.loss_probability = 1.5;
  EXPECT_THROW(bad.validate(10), Error);
  bad.message.loss_probability = 0.5;
  bad.runtime_spread = 1.0;
  EXPECT_THROW(bad.validate(10), Error);

  EXPECT_DOUBLE_EQ(FaultPlan::single_failure(2, 7.0).death_time(2), 7.0);
  EXPECT_EQ(FaultPlan::single_failure(2, 7.0).death_time(0), kInfiniteTime);
}

TEST(FaultPlan, MessageOutcomesAreDeterministicPerSeed) {
  FaultPlan plan;
  plan.seed = 42;
  plan.message.loss_probability = 0.5;
  plan.message.delay_probability = 0.3;
  for (std::size_t slot = 0; slot < 50; ++slot) {
    MessageOutcome a = resolve_message(plan, slot);
    MessageOutcome b = resolve_message(plan, slot);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.delayed, b.delayed);
    EXPECT_DOUBLE_EQ(a.retry_delay, b.retry_delay);
  }
  // A different seed changes at least one outcome over 50 edges.
  FaultPlan other = plan;
  other.seed = 43;
  bool differs = false;
  for (std::size_t slot = 0; slot < 50 && !differs; ++slot)
    differs = resolve_message(plan, slot).retries !=
                  resolve_message(other, slot).retries ||
              resolve_message(plan, slot).dropped !=
                  resolve_message(other, slot).dropped;
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RetryDelayFollowsExponentialBackoff) {
  FaultPlan plan;
  plan.message.loss_probability = 1.0;  // every attempt lost
  plan.message.max_retries = 4;
  plan.message.retry_timeout = 2.0;
  plan.message.backoff = 3.0;
  // All attempts lost -> dropped after exhausting the budget.
  MessageOutcome out = resolve_message(plan, 0);
  EXPECT_TRUE(out.dropped);
  // retries counted up to the budget: 4 retransmissions were scheduled
  // (timeouts 2, 6, 18, 54) before the final attempt was also lost.
  EXPECT_EQ(out.retries, 4u);
  EXPECT_DOUBLE_EQ(out.retry_delay, 2.0 + 6.0 + 18.0 + 54.0);
}

// --- Simulator under faults --------------------------------------------------

TEST(FaultSim, TrivialPlanMatchesFaultFreeRun) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  FaultPlan plan;  // injects nothing
  SimResult a = simulate(g, s);
  SimResult b = simulate(g, s, with_faults(plan));
  EXPECT_TRUE(b.complete());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(b.retries, 0u);
  EXPECT_EQ(b.dropped_messages, 0u);
  EXPECT_DOUBLE_EQ(b.work_lost, 0.0);
}

TEST(FaultSim, FailStopKillsRunningAndFutureTasks) {
  // A chain on one processor: kill it mid-second-task. Exactly the first
  // task survives; the in-flight work is lost.
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(2.0);
  for (int i = 0; i < 3; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 4);
  for (TaskId t = 0; t < 4; ++t)
    s.assign(t, 0, 2.0 * t, 2.0 * t + 2.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan = FaultPlan::single_failure(0, 3.0);
  SimResult r = simulate(g, s, with_faults(plan));
  EXPECT_FALSE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[0], 2.0);
  EXPECT_EQ(r.start[1], kUndefinedTime);  // killed at t=3, one unit in
  EXPECT_DOUBLE_EQ(r.work_lost, 1.0);
  ASSERT_EQ(r.unfinished.size(), 3u);
  EXPECT_EQ(r.unfinished[0], 1u);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_GT(r.dead_proc_idle, -1.0);  // defined (clamped at 0)
}

TEST(FaultSim, CompletionAtExactlyFailureTimeSurvives) {
  TaskGraphBuilder b;
  b.add_task(3.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 0.5);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 3.0);
  s.assign(1, 1, 3.5, 4.5);
  FaultPlan plan = FaultPlan::single_failure(0, 3.0);
  SimResult r = simulate(g, s, with_faults(plan));
  // Task 0 finishes exactly when its processor dies: it survives, its
  // message is in flight, and the remote consumer still runs.
  EXPECT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[1], 4.5);
}

TEST(FaultSim, RuntimePerturbationIsDeterministicAndBounded) {
  TaskGraph g = test::fuzz_graph(5);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  FaultPlan plan;
  plan.seed = 7;
  plan.runtime_spread = 0.4;
  SimResult a = simulate(g, s, with_faults(plan));
  SimResult b = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(a.complete());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(a.finish[t], b.finish[t]);
    Cost dur = a.finish[t] - a.start[t];
    EXPECT_GE(dur, g.comp(t) * 0.6 - 1e-12);
    EXPECT_LE(dur, g.comp(t) * 1.4 + 1e-12);
  }
}

TEST(FaultSim, MessageLossAddsRetryLatency) {
  // One remote edge, loss forced on the first attempts via probability 1
  // would drop; use a plan where loss happens but the retry budget is
  // large enough that delivery eventually succeeds for some seed. Instead,
  // deterministically: probability 0 loss vs a delayed message.
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);

  FaultPlan delayed;
  delayed.message.delay_probability = 1.0;
  delayed.message.delay_factor = 2.0;
  SimResult r = simulate(g, s, with_faults(delayed));
  ASSERT_TRUE(r.complete());
  // Transfer takes 8 instead of 4: consumer starts at 9.
  EXPECT_DOUBLE_EQ(r.start[1], 9.0);
  EXPECT_DOUBLE_EQ(r.network_busy, 8.0);
}

TEST(FaultSim, DroppedMessageStarvesConsumer) {
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  b.add_edge(0, 1, 4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);

  FaultPlan lossy;
  lossy.message.loss_probability = 1.0;  // every attempt lost -> dropped
  lossy.message.max_retries = 2;
  SimResult r = simulate(g, s, with_faults(lossy));
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.dropped_messages, 1u);
  EXPECT_EQ(r.retries, 2u);
  ASSERT_EQ(r.unfinished.size(), 1u);
  EXPECT_EQ(r.unfinished[0], 1u);
}

// --- Online repair -----------------------------------------------------------

// The acceptance-criterion property test: for every registered scheduler,
// kill a processor mid-run; the repaired continuation validates, completes
// every task off the dead processor, re-executes to completion under the
// same plan, stays within the provable degradation bound, and is
// bit-identical across repeated repairs.
TEST(Repair, KillOneProcessorEveryScheduler) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : extended_scheduler_names()) {
      Schedule nominal = make_scheduler(name, 1)->run(g, 4);
      const Cost when = 0.4 * nominal.makespan();
      FaultPlan plan = FaultPlan::single_failure(1, when);
      SimResult partial = simulate(g, nominal, with_faults(plan));

      RepairResult repair = repair_schedule(g, nominal, partial, plan);
      ASSERT_TRUE(repair.schedule.complete()) << name;
      ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
          << name << " on " << g.name() << "\n"
          << test::violations_to_string(g, repair.schedule);
      EXPECT_EQ(repair.survivors, 3u);

      // Migrated work lands on survivors only, never before the failure.
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (partial.finish[t] != kUndefinedTime) continue;
        EXPECT_NE(repair.schedule.proc(t), 1u) << name;
        EXPECT_GE(repair.schedule.start(t), when - 1e-9) << name;
      }

      // The continuation re-executes to completion under the same plan:
      // everything on the dead processor finished before the failure. The
      // replay may beat the analytic plan (migrated tasks are clamped to
      // start no earlier than the failure time, but a from-scratch replay
      // is free to start them as soon as their inputs arrive), never lag it.
      SimResult replay = simulate(g, repair.schedule, with_faults(plan));
      EXPECT_TRUE(replay.complete()) << name;
      EXPECT_LE(replay.makespan, repair.schedule.makespan() + 1e-9) << name;

      // Bounded degradation.
      EXPECT_LE(repair.schedule.makespan(),
                degradation_bound(g, partial, repair) + 1e-9)
          << name;

      // Deterministic: repairing again yields the identical schedule.
      RepairResult again = repair_schedule(g, nominal, partial, plan);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_EQ(repair.schedule.proc(t), again.schedule.proc(t)) << name;
        ASSERT_DOUBLE_EQ(repair.schedule.start(t), again.schedule.start(t))
            << name;
      }
    }
  }
}

TEST(Repair, GreedyFallbackWithSingleSurvivor) {
  TaskGraph g = test::fuzz_graph(4);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 3);
  FaultPlan plan;
  plan.failures.push_back({0, 0.25 * nominal.makespan()});
  plan.failures.push_back({2, 0.25 * nominal.makespan()});
  SimResult partial = simulate(g, nominal, with_faults(plan));

  RepairResult repair = repair_schedule(g, nominal, partial, plan);
  EXPECT_EQ(repair.used, RepairStrategy::kGreedy);
  EXPECT_EQ(repair.survivors, 1u);
  ASSERT_TRUE(repair.schedule.complete());
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
      << test::violations_to_string(g, repair.schedule);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (partial.finish[t] == kUndefinedTime)
      EXPECT_EQ(repair.schedule.proc(t), 1u);
  SimResult replay = simulate(g, repair.schedule, with_faults(plan));
  EXPECT_TRUE(replay.complete());
}

TEST(Repair, ExplicitStrategiesAgreeOnFeasibility) {
  TaskGraph g = test::fuzz_graph(6);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  FaultPlan plan = FaultPlan::single_failure(3, 0.5 * nominal.makespan());
  SimResult partial = simulate(g, nominal, with_faults(plan));

  for (RepairStrategy strategy :
       {RepairStrategy::kFlbResume, RepairStrategy::kGreedy}) {
    RepairOptions options;
    options.strategy = strategy;
    RepairResult repair = repair_schedule(g, nominal, partial, plan, options);
    EXPECT_EQ(repair.used, strategy);
    ASSERT_TRUE(is_valid_schedule(g, repair.schedule))
        << test::violations_to_string(g, repair.schedule);
  }
}

TEST(Repair, RejectsTotalFailureAndDroppedData) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);

  FaultPlan all_dead;
  all_dead.failures.push_back({0, 1.0});
  all_dead.failures.push_back({1, 1.0});
  SimResult partial = simulate(g, nominal, with_faults(all_dead));
  EXPECT_THROW((void)repair_schedule(g, nominal, partial, all_dead), Error);

  FaultPlan lossy;
  lossy.message.loss_probability = 1.0;
  SimResult starved = simulate(g, nominal, with_faults(lossy));
  if (starved.dropped_messages > 0)
    EXPECT_THROW((void)repair_schedule(g, nominal, starved, lossy), Error);
}

TEST(Repair, NoFailuresIsIdentityContinuation) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan plan;
  plan.runtime_spread = 0.0;
  SimResult full = simulate(g, nominal, with_faults(plan));
  RepairResult repair = repair_schedule(g, nominal, full, plan);
  EXPECT_EQ(repair.migrated_tasks, 0u);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(repair.schedule.proc(t), nominal.proc(t));
    EXPECT_DOUBLE_EQ(repair.schedule.start(t), nominal.start(t));
  }
}

// FLB resume with an all-alive mask and empty prefix is exactly run().
TEST(Repair, ResumeFromEmptyPrefixMatchesRun) {
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule fresh = flb.run(g, 3);
    Schedule resumed =
        flb.resume(g, Schedule(3, g.num_tasks()), {true, true, true});
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      ASSERT_EQ(fresh.proc(t), resumed.proc(t)) << g.name();
      ASSERT_DOUBLE_EQ(fresh.start(t), resumed.start(t)) << g.name();
    }
  }
}

// --- Robustness metrics ------------------------------------------------------

TEST(Metrics, RobustnessSummary) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  FaultPlan plan = FaultPlan::single_failure(0, 0.3 * nominal.makespan());
  SimResult partial = simulate(g, nominal, with_faults(plan));
  RepairResult repair = repair_schedule(g, nominal, partial, plan);

  RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
  EXPECT_DOUBLE_EQ(m.nominal_makespan, nominal.makespan());
  EXPECT_DOUBLE_EQ(m.repaired_makespan, repair.schedule.makespan());
  EXPECT_NEAR(m.degradation_ratio,
              m.repaired_makespan / m.nominal_makespan, 1e-12);
  EXPECT_GE(m.degradation_ratio, 0.0);
  EXPECT_EQ(m.migrated_tasks, repair.migrated_tasks);
  EXPECT_GE(m.repair_millis, 0.0);
}

}  // namespace
}  // namespace flb
