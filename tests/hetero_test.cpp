// Tests for the heterogeneous machine model, HEFT and CPOP, plus the
// hetero validator.

#include <gtest/gtest.h>

#include "flb/algos/heft.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/hetero.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

std::string hetero_violations(const TaskGraph& g, const HeteroMachine& m,
                              const Schedule& s) {
  std::string out;
  for (const Violation& v : validate_hetero_schedule(g, m, s)) {
    out += to_string(v);
    out += '\n';
  }
  return out.empty() ? "(none)" : out;
}

// --- Machine model ------------------------------------------------------------

TEST(HeteroMachine, ExecTimeScalesWithSpeed) {
  HeteroMachine m({1.0, 2.0, 0.5});
  EXPECT_EQ(m.num_procs(), 3u);
  EXPECT_DOUBLE_EQ(m.exec_time(4.0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.exec_time(4.0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.exec_time(4.0, 2), 8.0);
  EXPECT_FALSE(m.is_uniform());
  // mean inverse speed = (1 + 0.5 + 2) / 3.
  EXPECT_NEAR(m.mean_exec_time(3.0), 3.0 * 3.5 / 3.0, 1e-12);
}

TEST(HeteroMachine, UniformFactory) {
  HeteroMachine m = HeteroMachine::uniform(4);
  EXPECT_TRUE(m.is_uniform());
  EXPECT_DOUBLE_EQ(m.exec_time(2.5, 3), 2.5);
  EXPECT_DOUBLE_EQ(m.mean_exec_time(2.5), 2.5);
}

TEST(HeteroMachine, RejectsBadSpeeds) {
  EXPECT_THROW(HeteroMachine({}), Error);
  EXPECT_THROW(HeteroMachine({1.0, 0.0}), Error);
  EXPECT_THROW(HeteroMachine({-1.0}), Error);
}

// --- Hetero validator -----------------------------------------------------------

TEST(HeteroValidator, ChecksSpeedScaledDurations) {
  TaskGraph g = test::small_diamond();
  HeteroMachine m({1.0, 2.0});
  Schedule s(2, 4);
  s.assign(0, 1, 0.0, 0.5);  // comp 1 on speed 2 -> duration 0.5
  s.assign(1, 1, 2.5, 4.0);  // comp 3 -> 1.5 (data from a local at 0.5 +
                             // message... a on p1, so b local: 0.5; but
                             // 2.5 is safely late)
  s.assign(2, 0, 1.5, 3.5);  // comp 2 on speed 1, a remote: 0.5 + 1 = 1.5
  s.assign(3, 0, 7.0, 8.0);  // comp 1; b remote 4+1=5, c local 3.5
  EXPECT_TRUE(is_valid_hetero_schedule(g, m, s))
      << hetero_violations(g, m, s);

  // The same placements are NOT valid on a uniform machine (durations).
  EXPECT_FALSE(is_valid_schedule(g, s));
}

TEST(HeteroValidator, CatchesWrongDuration) {
  TaskGraph g = test::small_diamond();
  HeteroMachine m({2.0});
  Schedule s(1, 4);
  s.assign(0, 0, 0.0, 1.0);  // should be 0.5 on speed 2
  auto v = validate_hetero_schedule(g, m, s);
  bool found = false;
  for (const auto& violation : v)
    if (violation.kind == Violation::Kind::kWrongDuration &&
        violation.task == 0)
      found = true;
  EXPECT_TRUE(found);
}

TEST(HeteroValidator, UniformMachineAgreesWithHomogeneousValidator) {
  TaskGraph g = test::fuzz_graph(1);
  HeteroMachine m = HeteroMachine::uniform(3);
  Schedule s = heft(g, m);
  EXPECT_EQ(is_valid_schedule(g, s), is_valid_hetero_schedule(g, m, s));
}

// --- Ranks ----------------------------------------------------------------------

TEST(UpwardRanks, UniformMachineEqualsBottomLevels) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    HeteroMachine m = HeteroMachine::uniform(4);
    auto rank = upward_ranks(g, m);
    auto bl = bottom_levels(g);
    for (TaskId t = 0; t < g.num_tasks(); ++t)
      ASSERT_NEAR(rank[t], bl[t], 1e-9) << g.name() << " t" << t;
  }
}

TEST(DownwardRanks, UniformMachineEqualsTopLevels) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    HeteroMachine m = HeteroMachine::uniform(4);
    auto rank = downward_ranks(g, m);
    auto tl = top_levels(g);
    for (TaskId t = 0; t < g.num_tasks(); ++t)
      ASSERT_NEAR(rank[t], tl[t], 1e-9);
  }
}

TEST(UpwardRanks, ScaleWithMachineSpeed) {
  TaskGraph g = test::small_diamond();
  // All processors twice as fast: computation halves, communication stays.
  auto slow = upward_ranks(g, HeteroMachine({1.0, 1.0}));
  auto fast = upward_ranks(g, HeteroMachine({2.0, 2.0}));
  // rank(d) = comp(d)/speed: exactly halves.
  EXPECT_DOUBLE_EQ(fast[3], slow[3] / 2.0);
  EXPECT_LT(fast[0], slow[0]);
}

// --- HEFT -----------------------------------------------------------------------

TEST(Heft, ValidOnFuzzCorpusAcrossMachines) {
  const std::vector<std::vector<double>> machines = {
      {1.0, 1.0, 1.0},
      {2.0, 1.0, 0.5},
      {4.0, 0.25},
  };
  for (std::size_t i = 0; i < 14; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const auto& speeds : machines) {
      HeteroMachine m(speeds);
      Schedule s = heft(g, m);
      ASSERT_TRUE(is_valid_hetero_schedule(g, m, s))
          << g.name() << "\n" << hetero_violations(g, m, s);
    }
  }
}

TEST(Heft, PrefersFastProcessorWhenFree) {
  // A single task must land on the fastest processor.
  TaskGraphBuilder b;
  b.add_task(6.0);
  TaskGraph g = std::move(b).build();
  HeteroMachine m({1.0, 3.0, 2.0});
  Schedule s = heft(g, m);
  EXPECT_EQ(s.proc(0), 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(Heft, FasterMachineNeverHurtsMuch) {
  // Speeding every processor up by 2x should roughly halve the makespan.
  WorkloadParams params;
  params.seed = 3;
  TaskGraph g = make_workload("LU", 300, params);
  Schedule base = heft(g, HeteroMachine({1, 1, 1, 1}));
  Schedule fast = heft(g, HeteroMachine({2, 2, 2, 2}));
  EXPECT_LT(fast.makespan(), base.makespan());
}

TEST(Heft, UniformMachineCompetitiveWithLibraryAlgorithms) {
  WorkloadParams params;
  params.seed = 7;
  params.ccr = 1.0;
  TaskGraph g = make_workload("Stencil", 300, params);
  HeteroMachine m = HeteroMachine::uniform(8);
  Cost heft_len = heft(g, m).makespan();
  Cost mcp_len = make_scheduler("MCP", 1)->run(g, 8).makespan();
  EXPECT_LT(heft_len, 1.3 * mcp_len);
  EXPECT_GT(heft_len, 0.5 * mcp_len);
}

// --- CPOP -----------------------------------------------------------------------

TEST(Cpop, ValidOnFuzzCorpusAcrossMachines) {
  const std::vector<std::vector<double>> machines = {
      {1.0, 1.0, 1.0},
      {2.0, 1.0, 0.5},
  };
  for (std::size_t i = 0; i < 14; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const auto& speeds : machines) {
      HeteroMachine m(speeds);
      Schedule s = cpop(g, m);
      ASSERT_TRUE(is_valid_hetero_schedule(g, m, s))
          << g.name() << "\n" << hetero_violations(g, m, s);
    }
  }
}

TEST(Cpop, CriticalPathSharesOneProcessor) {
  // On a pure chain every task is on the critical path: CPOP must place
  // the whole chain on the single fastest processor.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 1.0;
  TaskGraph g = chain_graph(12, p);
  HeteroMachine m({1.0, 5.0, 2.0});
  Schedule s = cpop(g, m);
  ASSERT_TRUE(is_valid_hetero_schedule(g, m, s));
  for (TaskId t = 0; t < g.num_tasks(); ++t) EXPECT_EQ(s.proc(t), 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 12.0 / 5.0);
}

TEST(Cpop, HandlesSingleProcessor) {
  TaskGraph g = test::fuzz_graph(4);
  HeteroMachine m({2.0});
  Schedule s = cpop(g, m);
  ASSERT_TRUE(is_valid_hetero_schedule(g, m, s));
  EXPECT_NEAR(s.makespan(), g.total_comp() / 2.0, 1e-9);
}

}  // namespace
}  // namespace flb
