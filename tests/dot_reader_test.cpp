// Unit tests for the DOT reader (graph/dot.cpp): round-trips against the
// library's own writer, the documented hand-written subset, and the
// structured rejections the fuzzer (fuzz/fuzz_dot.cpp) relies on.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "flb/core/flb.hpp"
#include "flb/graph/dot.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

using namespace flb;

void expect_same_graph(const TaskGraph& a, const TaskGraph& b,
                       double tol = 0.0) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (TaskId t = 0; t < a.num_tasks(); ++t) {
    EXPECT_NEAR(a.comp(t), b.comp(t), tol) << "comp of t" << t;
    const auto succ_a = a.successors(t);
    const auto succ_b = b.successors(t);
    ASSERT_EQ(succ_a.size(), succ_b.size()) << "out-degree of t" << t;
    for (std::size_t i = 0; i < succ_a.size(); ++i) {
      EXPECT_EQ(succ_a[i].node, succ_b[i].node) << "successor of t" << t;
      EXPECT_NEAR(succ_a[i].comm, succ_b[i].comm, tol)
          << "comm t" << t << "->t" << succ_a[i].node;
    }
  }
}

TEST(DotReader, RoundTripsPaperExample) {
  const TaskGraph g = paper_example_graph();
  expect_same_graph(g, dot_from_text(to_dot(g)));
}

TEST(DotReader, RoundTripsScheduleAnnotatedExport) {
  const TaskGraph g = paper_example_graph();
  const Schedule s = FlbScheduler().run(g, 2);
  std::ostringstream os;
  write_dot(os, g, s);  // adds proc=, style=, fillcolor= attributes
  expect_same_graph(g, dot_from_text(os.str()));
}

TEST(DotReader, RoundTripsGeneratedWorkloads) {
  WorkloadParams params;
  params.seed = 3;
  for (const std::string& name : workload_names()) {
    const TaskGraph g = make_workload(name, 80, params);
    // The writer prints costs with 4 decimal places (display format).
    expect_same_graph(g, dot_from_text(to_dot(g)), 1e-4);
  }
}

TEST(DotReader, ParsesDocumentedHandWrittenSubset) {
  const TaskGraph g = dot_from_text(R"(
    // line comment
    strict digraph "my graph" {
      rankdir=TB;            # graph attribute: ignored
      node [shape=circle];   /* default statement: ignored */
      t0 [comp=2];
      t1 [label="t1\n3.5", shape=box]
      t2 [comp=1.25];
      t0 -> t1 [label="4"];
      t0 -> t2;              // no label: zero communication
      t1 -> t2 [comm=0.5];
    })");
  ASSERT_EQ(g.num_tasks(), 3u);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.name(), "my graph");
  EXPECT_DOUBLE_EQ(g.comp(0), 2.0);
  EXPECT_DOUBLE_EQ(g.comp(1), 3.5);  // from the label's second line
  EXPECT_DOUBLE_EQ(g.comp(2), 1.25);
  EXPECT_DOUBLE_EQ(g.successors(0)[0].comm, 4.0);
  EXPECT_DOUBLE_EQ(g.successors(0)[1].comm, 0.0);
  EXPECT_DOUBLE_EQ(g.successors(1)[0].comm, 0.5);
}

TEST(DotReader, AcceptsNodesInAnyOrder) {
  const TaskGraph g = dot_from_text(
      "digraph { t2 [comp=3]; t0 [comp=1]; t1 [comp=2];"
      " t0 -> t2 [label=\"1\"]; }");
  ASSERT_EQ(g.num_tasks(), 3u);
  EXPECT_DOUBLE_EQ(g.comp(0), 1.0);
  EXPECT_DOUBLE_EQ(g.comp(2), 3.0);
}

TEST(DotReader, RejectsMalformedInput) {
  // One representative per rejection class; the full set lives in
  // tests/corpus/dot and is swept by corpus_replay_test.
  EXPECT_THROW(dot_from_text(""), Error);
  EXPECT_THROW(dot_from_text("graph { t0 [comp=1]; }"), Error);  // undirected
  EXPECT_THROW(dot_from_text("digraph { t0 [comp=1]"), Error);   // truncated
  EXPECT_THROW(dot_from_text("digraph { x0 [comp=1]; }"), Error);  // bad id
  EXPECT_THROW(dot_from_text("digraph { t0 [shape=box]; }"),
               Error);  // no cost
  EXPECT_THROW(dot_from_text("digraph { t0 [comp=nope]; }"), Error);
  EXPECT_THROW(dot_from_text("digraph { t0 [comp=inf]; }"), Error);
  EXPECT_THROW(dot_from_text("digraph { t0 [comp=-1]; }"), Error);
  EXPECT_THROW(dot_from_text("digraph { t0 [comp=1]; t5 [comp=1]; }"),
               Error);  // sparse ids
  EXPECT_THROW(
      dot_from_text("digraph { t0 [comp=1]; t0 -> t9 [label=\"1\"]; }"),
      Error);  // unknown node
  EXPECT_THROW(
      dot_from_text("digraph { t0 [comp=1]; t1 [comp=1];"
                    " t0 -> t1 [label=\"1\"]; t0 -> t1 [label=\"2\"]; }"),
      Error);  // duplicate edge
  EXPECT_THROW(
      dot_from_text("digraph { t0 [comp=1]; t1 [comp=1];"
                    " t0 -> t1 [label=\"1\"]; t1 -> t0 [label=\"1\"]; }"),
      Error);  // cycle
}

TEST(DotReader, AgreesWithTextFormatOnSameGraph) {
  const TaskGraph g = make_workload("LU", 60, {});
  expect_same_graph(from_text(to_text(g)), dot_from_text(to_dot(g)), 1e-4);
}

}  // namespace
