#include "flb/core/trace.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"

namespace flb {
namespace {

// The execution trace of the paper's Table 1, reproduced cell by cell.
TEST(FlbTrace, Table1Reproduction) {
  TaskGraph g = paper_example_graph();
  std::vector<FlbTraceRow> rows = trace_flb(g, 2);
  ASSERT_EQ(rows.size(), 8u);

  using Cells = std::vector<std::string>;

  // Iteration 1: only t0 is ready (non-EP), scheduled on p0 at [0, 2).
  EXPECT_EQ(rows[0].ep_cells[0], Cells{});
  EXPECT_EQ(rows[0].ep_cells[1], Cells{});
  EXPECT_EQ(rows[0].non_ep_cells, Cells{"t0[0]"});
  EXPECT_EQ(rows[0].decision, "t0 -> p0, [0 - 2]");

  // Iteration 2: t3, t1, t2 EP on p0 in bottom-level order.
  EXPECT_EQ(rows[1].ep_cells[0],
            (Cells{"t3[2; 12/3]", "t1[2; 11/3]", "t2[2; 9/6]"}));
  EXPECT_EQ(rows[1].ep_cells[1], Cells{});
  EXPECT_EQ(rows[1].non_ep_cells, Cells{});
  EXPECT_EQ(rows[1].decision, "t3 -> p0, [2 - 5]");

  // Iteration 3: t1 demoted to non-EP; t2 still EP on p0.
  EXPECT_EQ(rows[2].ep_cells[0], Cells{"t2[2; 9/6]"});
  EXPECT_EQ(rows[2].non_ep_cells, Cells{"t1[3]"});
  EXPECT_EQ(rows[2].decision, "t1 -> p1, [3 - 5]");

  // Iteration 4: t5 joins p0's EP list, t4 enables p1.
  EXPECT_EQ(rows[3].ep_cells[0], (Cells{"t2[2; 9/6]", "t5[6; 8/6]"}));
  EXPECT_EQ(rows[3].ep_cells[1], Cells{"t4[5; 6/7]"});
  EXPECT_EQ(rows[3].non_ep_cells, Cells{});
  EXPECT_EQ(rows[3].decision, "t2 -> p0, [5 - 7]");

  // Iteration 5: t5 demoted, t6 becomes EP on p0; t4 scheduled on p1.
  EXPECT_EQ(rows[4].ep_cells[0], Cells{"t6[7; 6/8]"});
  EXPECT_EQ(rows[4].ep_cells[1], Cells{"t4[5; 6/7]"});
  EXPECT_EQ(rows[4].non_ep_cells, Cells{"t5[6]"});
  EXPECT_EQ(rows[4].decision, "t4 -> p1, [5 - 8]");

  // Iteration 6: EST tie (7) between EP t6 and non-EP t5: non-EP preferred.
  EXPECT_EQ(rows[5].ep_cells[0], Cells{"t6[7; 6/8]"});
  EXPECT_EQ(rows[5].ep_cells[1], Cells{});
  EXPECT_EQ(rows[5].non_ep_cells, Cells{"t5[6]"});
  EXPECT_EQ(rows[5].decision, "t5 -> p0, [7 - 10]");

  // Iteration 7: t6 demoted (PRT(p0) = 10 > LMT = 8), goes to p1.
  EXPECT_EQ(rows[6].ep_cells[0], Cells{});
  EXPECT_EQ(rows[6].ep_cells[1], Cells{});
  EXPECT_EQ(rows[6].non_ep_cells, Cells{"t6[8]"});
  EXPECT_EQ(rows[6].decision, "t6 -> p1, [8 - 10]");

  // Iteration 8: t7 EP on p0, starts at 12.
  EXPECT_EQ(rows[7].ep_cells[0], Cells{"t7[12; 2/13]"});
  EXPECT_EQ(rows[7].ep_cells[1], Cells{});
  EXPECT_EQ(rows[7].non_ep_cells, Cells{});
  EXPECT_EQ(rows[7].decision, "t7 -> p0, [12 - 14]");
}

TEST(FlbTrace, RawDecisionFieldsMatchStrings) {
  TaskGraph g = paper_example_graph();
  std::vector<FlbTraceRow> rows = trace_flb(g, 2);
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].task, 0u);
  EXPECT_EQ(rows[0].proc, 0u);
  EXPECT_FALSE(rows[0].ep_type);
  EXPECT_EQ(rows[1].task, 3u);
  EXPECT_TRUE(rows[1].ep_type);
  EXPECT_DOUBLE_EQ(rows[7].start, 12.0);
  EXPECT_DOUBLE_EQ(rows[7].finish, 14.0);
}

TEST(FlbTrace, WriteTraceRendersAllRows) {
  TaskGraph g = paper_example_graph();
  std::vector<FlbTraceRow> rows = trace_flb(g, 2);
  std::ostringstream os;
  write_trace(os, rows, 2);
  std::string out = os.str();
  EXPECT_NE(out.find("EP tasks on p0"), std::string::npos);
  EXPECT_NE(out.find("non-EP tasks"), std::string::npos);
  EXPECT_NE(out.find("t3[2; 12/3]"), std::string::npos);
  EXPECT_NE(out.find("t7 -> p0, [12 - 14]"), std::string::npos);
}

TEST(FlbTrace, TraceMatchesUninstrumentedRun) {
  WorkloadParams params;
  params.seed = 5;
  TaskGraph g = make_workload("Stencil", 200, params);
  std::vector<FlbTraceRow> rows = trace_flb(g, 4);
  FlbScheduler flb;
  Schedule s = flb.run(g, 4);
  ASSERT_EQ(rows.size(), g.num_tasks());
  for (const FlbTraceRow& row : rows) {
    EXPECT_EQ(s.proc(row.task), row.proc);
    EXPECT_DOUBLE_EQ(s.start(row.task), row.start);
    EXPECT_DOUBLE_EQ(s.finish(row.task), row.finish);
  }
}

}  // namespace
}  // namespace flb
