// Tests for the additional baselines: HLFET, DLS and insertion-based MCP.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "flb/algos/dls.hpp"
#include "flb/algos/hlfet.hpp"
#include "flb/algos/ish.hpp"
#include "flb/algos/mcp.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- HLFET -----------------------------------------------------------------

TEST(Hlfet, ValidOnWorkloadsAndFuzz) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 3;
    TaskGraph g = make_workload(name, 250, params);
    HlfetScheduler hlfet;
    Schedule s = hlfet.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    HlfetScheduler hlfet;
    ASSERT_TRUE(is_valid_schedule(g, hlfet.run(g, 3))) << g.name();
  }
}

TEST(Hlfet, ConsumesTasksInStaticLevelOrder) {
  TaskGraph g = test::fuzz_graph(3);
  HlfetScheduler hlfet;
  Schedule s = hlfet.run(g, 3);
  // Replay: at every step the next task (in global start order, restricted
  // to ready ones) must have the maximum static level among ready tasks.
  auto sl = computation_bottom_levels(g);
  Schedule replay(3, g.num_tasks());
  std::vector<bool> done(g.num_tasks(), false);
  for (TaskId step = 0; step < g.num_tasks(); ++step) {
    TaskId pick = kInvalidTask;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (done[t] || !is_ready(g, replay, t)) continue;
      if (pick == kInvalidTask || sl[t] > sl[pick] ||
          (sl[t] == sl[pick] && t < pick))
        pick = t;
    }
    ASSERT_NE(pick, kInvalidTask);
    // HLFET places the picked task at its exhaustive-minimum EST.
    Cost best = best_proc_exhaustive(g, replay, pick).second;
    ASSERT_NEAR(s.start(pick), best, 1e-9);
    replay.assign(pick, s.proc(pick), s.start(pick), s.finish(pick));
    done[pick] = true;
  }
}

TEST(Hlfet, SingleProcPacksSequentially) {
  TaskGraph g = test::fuzz_graph(9);
  HlfetScheduler hlfet;
  EXPECT_NEAR(hlfet.run(g, 1).makespan(), g.total_comp(), 1e-9);
}

// --- DLS -------------------------------------------------------------------

TEST(Dls, ValidOnWorkloadsAndFuzz) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 5;
    TaskGraph g = make_workload(name, 250, params);
    DlsScheduler dls;
    Schedule s = dls.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    DlsScheduler dls;
    ASSERT_TRUE(is_valid_schedule(g, dls.run(g, 3))) << g.name();
  }
}

// Reference DLS recomputing everything with the shared tentative helpers;
// the production scheduler must match it decision for decision.
Schedule reference_dls(const TaskGraph& g, ProcId procs) {
  Schedule s(procs, g.num_tasks());
  auto sl = computation_bottom_levels(g);
  while (!s.complete()) {
    TaskId best_t = kInvalidTask;
    ProcId best_p = 0;
    Cost best_dl = -kInfiniteTime, best_est = 0.0;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (!is_ready(g, s, t)) continue;
      for (ProcId p = 0; p < procs; ++p) {
        Cost est = est_start(g, s, t, p);
        Cost dl = sl[t] - est;
        bool better = dl > best_dl;
        if (!better && dl == best_dl && best_t != kInvalidTask)
          better = t < best_t || (t == best_t && p < best_p);
        if (better) {
          best_dl = dl;
          best_est = est;
          best_t = t;
          best_p = p;
        }
      }
    }
    s.assign(best_t, best_p, best_est, best_est + g.comp(best_t));
  }
  return s;
}

TEST(Dls, MatchesNaiveReference) {
  for (std::size_t i = 0; i < 14; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    DlsScheduler dls;
    Schedule fast = dls.run(g, 3);
    Schedule ref = reference_dls(g, 3);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      ASSERT_EQ(fast.proc(t), ref.proc(t)) << g.name() << " task " << t;
      ASSERT_DOUBLE_EQ(fast.start(t), ref.start(t))
          << g.name() << " task " << t;
    }
  }
}

TEST(Dls, PrefersCriticalTaskOverEarliestStart) {
  // Two ready tasks: a trivial one that could start now and a critical one
  // whose message arrives slightly later. ETF takes the trivial one; DLS
  // weighs levels and takes the critical one.
  TaskGraphBuilder b;
  TaskId src = b.add_task(1.0);
  TaskId critical = b.add_task(10.0);  // huge static level
  TaskId trivial = b.add_task(0.1);
  TaskId tail = b.add_task(10.0);
  b.add_edge(src, critical, 2.0);
  b.add_edge(src, trivial, 0.5);
  b.add_edge(critical, tail, 1.0);
  TaskGraph g = std::move(b).build();

  DlsScheduler dls;
  Schedule s = dls.run(g, 2);
  EXPECT_TRUE(is_valid_schedule(g, s));
  // DLS schedules `critical` before `trivial` (in decision order both end
  // up placed; check that critical did not wait for trivial on its proc).
  EXPECT_LE(s.start(critical), s.start(trivial) + 2.0 + 1e-9);
}

// --- MCP-I (insertion) -------------------------------------------------------

TEST(McpInsertion, ValidOnWorkloadsAndFuzz) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 7;
    params.ccr = 5.0;  // high CCR creates gaps worth inserting into
    TaskGraph g = make_workload(name, 250, params);
    McpScheduler mcp(1, /*insertion=*/true);
    Schedule s = mcp.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    McpScheduler mcp(i + 1, true);
    ASSERT_TRUE(is_valid_schedule(g, mcp.run(g, 3))) << g.name();
  }
}

TEST(McpInsertion, NameDistinguishesVariants) {
  EXPECT_EQ(McpScheduler(1, false).name(), "MCP");
  EXPECT_EQ(McpScheduler(1, true).name(), "MCP-I");
}

TEST(McpInsertion, NeverWorseOnAverageThanEndPlacement) {
  // Insertion dominates end-of-list placement per decision, and usually
  // (not provably always — list scheduling is not matroidal) produces a
  // shorter final schedule. Check the aggregate over several instances.
  double sum_plain = 0.0, sum_insert = 0.0;
  for (std::size_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ccr = 5.0;
    TaskGraph g = make_workload("LU", 300, params);
    sum_plain += McpScheduler(seed, false).run(g, 8).makespan();
    sum_insert += McpScheduler(seed, true).run(g, 8).makespan();
  }
  EXPECT_LE(sum_insert, sum_plain * 1.001);
}

TEST(McpInsertion, ActuallyUsesGaps) {
  // A join-heavy graph with expensive messages produces idle gaps; verify
  // at least one task starts before an earlier-assigned task on the same
  // processor finishes... i.e. timelines are interleaved relative to
  // assignment order. Detect via a task whose start precedes the start of
  // a task assigned before it on the same processor.
  WorkloadParams params;
  params.seed = 2;
  params.ccr = 8.0;
  TaskGraph g = make_workload("Gauss", 300, params);
  McpScheduler mcp(1, true);
  Schedule s = mcp.run(g, 6);
  ASSERT_TRUE(is_valid_schedule(g, s));
  // Reconstruct assignment order via ALAP (the priority MCP consumed);
  // enough to find one processor whose timeline is not in ALAP order.
  auto alap = alap_times(g);
  bool interleaved = false;
  for (ProcId p = 0; p < 6 && !interleaved; ++p) {
    auto tasks = s.tasks_on(p);
    for (std::size_t i = 1; i < tasks.size(); ++i)
      if (alap[tasks[i]] < alap[tasks[i - 1]] - 1e-12) interleaved = true;
  }
  EXPECT_TRUE(interleaved)
      << "expected at least one gap insertion on this workload";
}

// --- ISH -------------------------------------------------------------------------

TEST(Ish, ValidOnWorkloadsAndFuzz) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 15;
    params.ccr = 5.0;
    TaskGraph g = make_workload(name, 250, params);
    IshScheduler ish;
    Schedule s = ish.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    IshScheduler ish;
    ASSERT_TRUE(is_valid_schedule(g, ish.run(g, 3))) << g.name();
  }
}

TEST(Ish, NeverWorseThanHlfetOnAggregate) {
  // Same priorities, strictly more placement freedom: insertion should
  // help (or tie) across a batch of instances.
  double ish_sum = 0.0, hlfet_sum = 0.0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ccr = 5.0;
    TaskGraph g = make_workload("Gauss", 300, params);
    IshScheduler ish;
    HlfetScheduler hlfet;
    ish_sum += ish.run(g, 8).makespan();
    hlfet_sum += hlfet.run(g, 8).makespan();
  }
  EXPECT_LE(ish_sum, hlfet_sum * 1.01);
}

TEST(Ish, SingleProcessorPacksSequentially) {
  TaskGraph g = test::fuzz_graph(11);
  IshScheduler ish;
  EXPECT_NEAR(ish.run(g, 1).makespan(), g.total_comp(), 1e-9);
}

// --- Registry coverage ---------------------------------------------------------

TEST(ExtendedRegistry, AllNamesConstructAndRun) {
  TaskGraph g = test::fuzz_graph(1);
  for (const std::string& name : extended_scheduler_names()) {
    auto sched = make_scheduler(name, 1);
    EXPECT_EQ(sched->name(), name);
    Schedule s = sched->run(g, 3);
    EXPECT_TRUE(is_valid_schedule(g, s)) << name;
  }
}

TEST(ExtendedRegistry, SupersetOfPaperNames) {
  auto paper = scheduler_names();
  auto all = extended_scheduler_names();
  for (const std::string& name : paper)
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  EXPECT_GT(all.size(), paper.size());
}

}  // namespace
}  // namespace flb
