// Tests for schedule diagnostics (binding classification, critical chain,
// utilization) and the series-parallel workload family.

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/schedule_analysis.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- Binding classification ------------------------------------------------------

TEST(Bindings, PaperExampleHandChecked) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  auto b = classify_bindings(g, s);

  // t0 starts at 0 with no constraints.
  EXPECT_EQ(b[0].binding, Binding::kEntry);
  // t3 on p0 right after t0 (local parent finishing at its start).
  EXPECT_EQ(b[3].binding, Binding::kLocalData);
  EXPECT_EQ(b[3].blocker, 0u);
  // t1 on p1 at 3 = arrival of t0's message (remote).
  EXPECT_EQ(b[1].binding, Binding::kRemoteData);
  EXPECT_EQ(b[1].blocker, 0u);
  // t2 on p0 at 5: message from t0 arrived at 6? No - t2's LMT is 6 but it
  // runs on t0's processor, so the message is free; it waits for t3 to
  // clear the processor (processor-bound).
  EXPECT_EQ(b[2].binding, Binding::kProcessor);
  EXPECT_EQ(b[2].blocker, 3u);
  // t7 on p0 at 12 = arrival of t5's... t5 is local (finish 10); the
  // binding message is t6's, remote, arriving at 10 + 2 = 12.
  EXPECT_EQ(b[7].binding, Binding::kRemoteData);
  EXPECT_EQ(b[7].blocker, 6u);
}

TEST(Bindings, SlackDetectedForDeliberatelyLateStart) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 5.0, 8.0);   // could start at 1 -> slack
  s.assign(2, 1, 2.0, 4.0);
  s.assign(3, 0, 9.0, 10.0);  // b local(8), c remote 4+3=7 -> bound 8: slack
  ASSERT_TRUE(is_valid_schedule(g, s));
  auto b = classify_bindings(g, s);
  EXPECT_EQ(b[1].binding, Binding::kSlack);
  EXPECT_EQ(b[3].binding, Binding::kSlack);
  EXPECT_EQ(b[2].binding, Binding::kRemoteData);
}

TEST(Bindings, EveryTaskClassifiedAcrossAlgorithms) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : {"FLB", "ETF", "MCP-I"}) {
      Schedule s = make_scheduler(name, 1)->run(g, 3);
      auto b = classify_bindings(g, s);
      ASSERT_EQ(b.size(), g.num_tasks());
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (b[t].binding == Binding::kEntry ||
            b[t].binding == Binding::kSlack) {
          EXPECT_EQ(b[t].blocker, kInvalidTask);
        } else {
          ASSERT_NE(b[t].blocker, kInvalidTask) << name << " t" << t;
          // Blockers impose the start: blocker finishes (plus message) at
          // the task's start, within tolerance.
          EXPECT_LE(s.finish(b[t].blocker), s.start(t) + 1e-9);
        }
      }
    }
  }
}

TEST(Bindings, RejectsIncompleteSchedule) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  EXPECT_THROW((void)classify_bindings(g, s), Error);
}

// --- Critical chain ---------------------------------------------------------------

TEST(CriticalChain, PaperExampleChain) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  auto chain = critical_chain(g, s);
  // Makespan task is t7 (finish 14); its blocker is t6 (message arriving
  // at 12), t6's start 8 = PRT(p1) after t4 (processor)... t6 starts at 8
  // on p1 after t4 finishing 8: processor or data? t6's data: t2 remote
  // (7+1=8) vs t4 processor (8): data side preferred on ties -> t2.
  ASSERT_GE(chain.size(), 3u);
  EXPECT_EQ(chain.back(), 7u);
  EXPECT_EQ(chain[chain.size() - 2], 6u);
  // The chain starts at an entry-bound task.
  auto b = classify_bindings(g, s);
  EXPECT_EQ(b[chain.front()].binding, Binding::kEntry);
  // Chain is ordered by start time.
  for (std::size_t i = 1; i < chain.size(); ++i)
    EXPECT_LE(s.start(chain[i - 1]), s.start(chain[i]) + 1e-9);
}

TEST(CriticalChain, ChainGraphIsWholeChain) {
  WorkloadParams p;
  p.random_weights = false;
  TaskGraph g = chain_graph(8, p);
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  auto chain = critical_chain(g, s);
  EXPECT_EQ(chain.size(), 8u);
  for (TaskId t = 0; t < 8; ++t) EXPECT_EQ(chain[t], t);
}

TEST(CriticalChain, EndsAtMakespanTask) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Schedule s = make_scheduler("MCP", 1)->run(g, 3);
    auto chain = critical_chain(g, s);
    ASSERT_FALSE(chain.empty());
    EXPECT_NEAR(s.finish(chain.back()), s.makespan(), 1e-9);
  }
}

// --- Utilization -------------------------------------------------------------------

TEST(Utilization, FractionsSumToOneAndBusyMatches) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 3);
    UtilizationReport r = analyze_utilization(g, s);
    Cost busy_total = 0.0;
    for (Cost b : r.busy_per_proc) busy_total += b;
    EXPECT_NEAR(busy_total, g.total_comp(), 1e-9);
    double fractions = r.processor_bound + r.local_data_bound +
                       r.remote_data_bound + r.slack_bound;
    // All non-entry tasks fall into exactly one class.
    EXPECT_NEAR(fractions, 1.0, 1e-9);
    EXPECT_GT(r.mean_utilization, 0.0);
    EXPECT_LE(r.mean_utilization, 1.0 + 1e-9);
  }
}

TEST(Utilization, SingleProcessorIsFullyBusy) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 1);
  UtilizationReport r = analyze_utilization(g, s);
  EXPECT_NEAR(r.mean_utilization, 1.0, 1e-9);
  EXPECT_NEAR(r.remote_data_bound, 0.0, 1e-12);
}

TEST(Utilization, BindingNamesAreStable) {
  EXPECT_STREQ(to_string(Binding::kEntry), "entry");
  EXPECT_STREQ(to_string(Binding::kProcessor), "processor");
  EXPECT_STREQ(to_string(Binding::kLocalData), "local-data");
  EXPECT_STREQ(to_string(Binding::kRemoteData), "remote-data");
  EXPECT_STREQ(to_string(Binding::kSlack), "slack");
}

// --- Series-parallel generator ------------------------------------------------------

TEST(SeriesParallel, HitsTargetAndStaysSeriesParallel) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    TaskGraph g = series_parallel_graph(60, 0.5, params);
    EXPECT_EQ(g.num_tasks(), 60u);
    // Single source (0) and sink (1) by construction.
    EXPECT_TRUE(g.is_entry(0));
    EXPECT_TRUE(g.is_exit(1));
    EXPECT_EQ(g.entry_tasks().size(), 1u);
    EXPECT_EQ(g.exit_tasks().size(), 1u);
  }
}

TEST(SeriesParallel, PureSeriesIsAChain) {
  WorkloadParams params;
  params.seed = 2;
  TaskGraph g = series_parallel_graph(10, 0.0, params);
  EXPECT_EQ(g.num_tasks(), 10u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(level_decomposition(g).size(), 10u);
}

TEST(SeriesParallel, PureParallelIsWideFanOutIn) {
  WorkloadParams params;
  params.seed = 3;
  TaskGraph g = series_parallel_graph(12, 1.0, params);
  // All operations add parallel middles between 0 and 1... parallel ops
  // can also pick the newly added edges; whatever the shape, depth stays
  // small and source/sink degrees grow.
  EXPECT_EQ(g.num_tasks(), 12u);
  EXPECT_GE(g.out_degree(0), 2u);
  EXPECT_GE(g.in_degree(1), 2u);
}

TEST(SeriesParallel, SchedulableByAllAlgorithms) {
  WorkloadParams params;
  params.seed = 4;
  params.ccr = 2.0;
  TaskGraph g = series_parallel_graph(120, 0.5, params);
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 4);
    EXPECT_TRUE(is_valid_schedule(g, s)) << name;
  }
}

TEST(SeriesParallel, RejectsBadParameters) {
  EXPECT_THROW((void)series_parallel_graph(1), Error);
  EXPECT_THROW((void)series_parallel_graph(10, 1.5), Error);
}

}  // namespace
}  // namespace flb
