// Capstone shape tests: the paper's central qualitative claims, locked
// into ctest at a small deterministic scale (V ~ 800, fixed seed). These
// complement the full-scale benchmark harness — if a refactor silently
// breaks the reproduction's *shape* (who wins where), this file fails
// before anyone reads a bench table. Bounds carry generous margins; they
// encode orderings, not exact values.

#include <map>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"

namespace flb {
namespace {

Cost makespan_of(const std::string& algo, const TaskGraph& g, ProcId procs) {
  Schedule s = make_scheduler(algo, 1)->run(g, procs);
  EXPECT_TRUE(is_valid_schedule(g, s)) << algo;
  return s.makespan();
}

TaskGraph instance(const std::string& workload, double ccr) {
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = 1;
  return make_workload(workload, 800, params);
}

// Section 6.2 / Fig. 4: "FLB performs better than MCP for communication-
// intensive problems that have a regular structure (e.g., Stencil)".
TEST(PaperClaims, FlbBeatsMcpOnCommunicationHeavyStencil) {
  TaskGraph g = instance("Stencil", 5.0);
  EXPECT_LT(makespan_of("FLB", g, 8), makespan_of("MCP", g, 8));
}

// Section 6.2 / Fig. 4: "For LU ... the relative performance of FLB
// compared to MCP is lower" — the earliest-start family's join weakness.
TEST(PaperClaims, FlbTrailsMcpOnJoinHeavyLu) {
  TaskGraph g = instance("LU", 5.0);
  EXPECT_GT(makespan_of("FLB", g, 16), makespan_of("MCP", g, 16));
}

// Section 3.3: DSC-LLB's schedules are "within 40% of the MCP output
// performance" — allow a small extra margin for instance noise.
TEST(PaperClaims, DscLlbStaysWithinBandOfMcp) {
  for (const char* workload : {"LU", "Laplace", "Stencil"}) {
    for (double ccr : {0.2, 5.0}) {
      TaskGraph g = instance(workload, ccr);
      for (ProcId p : {4u, 16u}) {
        Cost mcp = makespan_of("MCP", g, p);
        Cost dsc = makespan_of("DSC-LLB", g, p);
        EXPECT_LT(dsc, 1.55 * mcp) << workload << " ccr " << ccr << " P " << p;
      }
    }
  }
}

// Fig. 3's two speedup classes at low CCR: regular FFT scales near-
// linearly, join-heavy LU flattens well below it.
TEST(PaperClaims, SpeedupClassesAtLowCcr) {
  TaskGraph fft = instance("FFT", 0.2);
  TaskGraph lu = instance("LU", 0.2);
  FlbScheduler flb;
  Cost fft_speedup = speedup(fft, flb.run(fft, 32));
  Cost lu_speedup = speedup(lu, flb.run(lu, 32));
  EXPECT_GT(fft_speedup, 25.0);
  EXPECT_LT(lu_speedup, 20.0);
  EXPECT_GT(fft_speedup, 1.5 * lu_speedup);
}

// Fig. 3: higher CCR lowers speedup on every workload.
TEST(PaperClaims, HigherCcrLowersSpeedup) {
  FlbScheduler flb;
  for (const char* workload : {"LU", "Laplace", "Stencil"}) {
    TaskGraph coarse = instance(workload, 0.2);
    TaskGraph fine = instance(workload, 5.0);
    EXPECT_GT(speedup(coarse, flb.run(coarse, 16)),
              speedup(fine, flb.run(fine, 16)))
        << workload;
  }
}

// Section 4 / Theorem: FLB and ETF share the earliest-start criterion, so
// their schedules stay within a moderate band of each other everywhere
// (differences are tie-break-driven, Section 6.2).
TEST(PaperClaims, FlbAndEtfStayWithinBand) {
  for (const char* workload : {"LU", "Laplace", "Stencil", "FFT"}) {
    for (double ccr : {0.2, 5.0}) {
      TaskGraph g = instance(workload, ccr);
      Cost flb = makespan_of("FLB", g, 8);
      Cost etf = makespan_of("ETF", g, 8);
      EXPECT_LT(flb, 1.5 * etf) << workload << " ccr " << ccr;
      EXPECT_LT(etf, 1.5 * flb) << workload << " ccr " << ccr;
    }
  }
}

// Section 5 / Table 1: the worked example's makespan, pinned exactly.
TEST(PaperClaims, WorkedExampleMakespanIsFourteen) {
  TaskGraph g = paper_example_graph();
  EXPECT_DOUBLE_EQ(makespan_of("FLB", g, 2), 14.0);
}

// Section 6.1 / Fig. 2, the cost claim in its machine-independent form:
// ETF performs ~W x P times more tentative-scheduling work than FLB's
// two-candidate rule. Checked structurally rather than by wall clock:
// FLB touches each ready task O(log) times, so its peak ready set (== the
// work ETF re-scans every iteration) must match the instrumented stats.
TEST(PaperClaims, EtfWorkFactorIsReal) {
  TaskGraph g = instance("Stencil", 1.0);
  FlbScheduler flb;
  FlbStats stats;
  (void)flb.run_instrumented(g, 8, nullptr, &stats);
  // A paper-scale stencil keeps dozens of tasks ready at once: the factor
  // W the ETF complexity carries is far from degenerate.
  EXPECT_GE(stats.max_ready, 20u);
  EXPECT_EQ(stats.iterations, g.num_tasks());
}

}  // namespace
}  // namespace flb
