// Tests for the multi-step building blocks beyond DSC-LLB: Sarkar's
// edge-zeroing clustering and the wrap / work-balance cluster mappings.

#include <set>

#include <gtest/gtest.h>

#include "flb/algos/llb.hpp"
#include "flb/algos/mapping.hpp"
#include "flb/algos/sarkar.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// Shared feasibility check for a clustering's own unbounded schedule
// (duplicated intentionally from dsc_llb_test to stay independent).
void expect_clustering_feasible(const TaskGraph& g, const Clustering& c) {
  ASSERT_EQ(c.cluster_of.size(), g.num_tasks());
  ASSERT_EQ(c.members.size(), c.num_clusters);
  std::set<TaskId> seen;
  for (ClusterId cl = 0; cl < c.num_clusters; ++cl)
    for (TaskId t : c.members[cl]) {
      EXPECT_EQ(c.cluster_of[t], cl);
      EXPECT_TRUE(seen.insert(t).second);
    }
  EXPECT_EQ(seen.size(), g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_NEAR(c.finish[t], c.start[t] + g.comp(t), 1e-9);
  for (ClusterId cl = 0; cl < c.num_clusters; ++cl)
    for (std::size_t i = 1; i < c.members[cl].size(); ++i)
      EXPECT_GE(c.start[c.members[cl][i]],
                c.finish[c.members[cl][i - 1]] - 1e-9);
  for (const Edge& e : g.edges()) {
    Cost comm = c.cluster_of[e.from] == c.cluster_of[e.to] ? 0.0 : e.comm;
    EXPECT_GE(c.start[e.to], c.finish[e.from] + comm - 1e-9);
  }
}

// --- Sarkar ------------------------------------------------------------------

TEST(Sarkar, FeasibleOnFuzzCorpus) {
  for (std::size_t i = 0; i < 14; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    expect_clustering_feasible(g, sarkar_cluster(g));
  }
}

TEST(Sarkar, FeasibleOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 29;
    params.ccr = 5.0;
    TaskGraph g = make_workload(name, 150, params);
    expect_clustering_feasible(g, sarkar_cluster(g));
  }
}

TEST(Sarkar, NeverWorseThanSingletonClustering) {
  // Merges are only accepted when the evaluated length does not grow, so
  // the final length cannot exceed the no-clustering list schedule.
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Clustering c = sarkar_cluster(g);
    // Singleton baseline = comm-inclusive list schedule on unbounded
    // procs; its length is bounded by the critical path... compare against
    // the critical path directly (the singleton evaluation achieves it:
    // every task starts at its arrival-bound).
    EXPECT_LE(c.schedule_length(), critical_path(g) + 1e-9) << g.name();
  }
}

TEST(Sarkar, ChainCollapsesToOneCluster) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 3.0;
  TaskGraph g = chain_graph(10, p);
  Clustering c = sarkar_cluster(g);
  EXPECT_EQ(c.num_clusters, 1u);
  EXPECT_DOUBLE_EQ(c.schedule_length(), 10.0);
}

TEST(Sarkar, IndependentTasksStaySeparate) {
  TaskGraph g = independent_graph(7);
  Clustering c = sarkar_cluster(g);
  EXPECT_EQ(c.num_clusters, 7u);
}

TEST(Sarkar, ZeroesHeaviestEdgesFirst) {
  // A fork with one very expensive edge and cheap others: the expensive
  // edge must end up intra-cluster.
  TaskGraphBuilder b;
  TaskId root = b.add_task(1.0);
  TaskId heavy = b.add_task(1.0);
  TaskId light1 = b.add_task(1.0);
  TaskId light2 = b.add_task(1.0);
  b.add_edge(root, heavy, 50.0);
  b.add_edge(root, light1, 0.1);
  b.add_edge(root, light2, 0.1);
  TaskGraph g = std::move(b).build();
  Clustering c = sarkar_cluster(g);
  EXPECT_EQ(c.cluster_of[root], c.cluster_of[heavy]);
}

TEST(Sarkar, EmptyGraph) {
  TaskGraphBuilder b;
  TaskGraph g = std::move(b).build();
  Clustering c = sarkar_cluster(g);
  EXPECT_EQ(c.num_clusters, 0u);
}

// --- Fixed-assignment list scheduling ------------------------------------------

TEST(FixedAssignment, RespectsTheAssignment) {
  TaskGraph g = test::fuzz_graph(2);
  std::vector<ProcId> proc_of(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) proc_of[t] = t % 3;
  Schedule s = schedule_with_fixed_assignment(g, proc_of, 3);
  ASSERT_TRUE(is_valid_schedule(g, s)) << test::violations_to_string(g, s);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(s.proc(t), proc_of[t]);
}

TEST(FixedAssignment, RejectsBadInput) {
  TaskGraph g = test::small_diamond();
  std::vector<ProcId> wrong_size(2, 0);
  EXPECT_THROW((void)schedule_with_fixed_assignment(g, wrong_size, 2), Error);
  std::vector<ProcId> out_of_range(4, 5);
  EXPECT_THROW((void)schedule_with_fixed_assignment(g, out_of_range, 2),
               Error);
}

TEST(FixedAssignment, AllOnOneProcIsSequential) {
  TaskGraph g = test::fuzz_graph(8);
  std::vector<ProcId> proc_of(g.num_tasks(), 0);
  Schedule s = schedule_with_fixed_assignment(g, proc_of, 2);
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

// --- Wrap and work mappings -----------------------------------------------------

TEST(Mappings, ValidAndClusterPreserving) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Clustering c = dsc_cluster(g);
    for (ProcId procs : {2u, 4u}) {
      for (auto* map_fn : {&wrap_map, &work_map}) {
        Schedule s = (*map_fn)(g, c, procs);
        ASSERT_TRUE(is_valid_schedule(g, s))
            << g.name() << " P=" << procs << "\n"
            << test::violations_to_string(g, s);
        // Co-location: a cluster never splits across processors.
        for (ClusterId cl = 0; cl < c.num_clusters; ++cl)
          for (std::size_t k = 1; k < c.members[cl].size(); ++k)
            ASSERT_EQ(s.proc(c.members[cl][k]), s.proc(c.members[cl][0]));
      }
    }
  }
}

TEST(Mappings, WrapIsRoundRobin) {
  TaskGraph g = independent_graph(6);
  Clustering c = dsc_cluster(g);  // 6 singleton clusters, ids 0..5
  Schedule s = wrap_map(g, c, 4);
  for (TaskId t = 0; t < 6; ++t)
    EXPECT_EQ(s.proc(t), c.cluster_of[t] % 4);
}

TEST(Mappings, WorkMapBalancesClusterWeights) {
  // 4 unit tasks + 1 heavy task as singleton clusters on 2 procs: LPT puts
  // the heavy one alone-ish; max load should be near optimum.
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) b.add_task(1.0);
  b.add_task(4.0);
  TaskGraph g = std::move(b).build();
  Clustering c = dsc_cluster(g);
  Schedule s = work_map(g, c, 2);
  ASSERT_TRUE(is_valid_schedule(g, s));
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);  // {heavy} vs {1,1,1,1}
}

TEST(Mappings, LlbBeatsNaiveMappingsOnAverage) {
  // The reason the authors built LLB: communication-aware mapping. Compare
  // the three mappings on DSC clusterings over the paper workloads.
  double llb_sum = 0.0, wrap_sum = 0.0, work_sum = 0.0;
  int cells = 0;
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 31;
    params.ccr = 2.0;
    TaskGraph g = make_workload(name, 250, params);
    Clustering c = dsc_cluster(g);
    llb_sum += llb_map(g, c, 8).makespan();
    wrap_sum += wrap_map(g, c, 8).makespan();
    work_sum += work_map(g, c, 8).makespan();
    ++cells;
  }
  EXPECT_LE(llb_sum, wrap_sum * 1.02);
  EXPECT_LE(llb_sum, work_sum * 1.02);
}

}  // namespace
}  // namespace flb
