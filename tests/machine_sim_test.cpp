#include "flb/sim/machine_sim.hpp"

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- Contention-free model reproduces the analytic schedule -----------------

// The headline property: every scheduler's analytic start/finish times are
// exactly what the event-driven machine produces under the paper's
// contention-free model. This cross-validates schedulers, the Schedule
// container and the simulator against each other.
TEST(MachineSim, ContentionFreeReproducesAnalyticTimes) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (const std::string& name : extended_scheduler_names()) {
      Schedule s = make_scheduler(name, 1)->run(g, 3);
      SimResult r = simulate(g, s);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_NEAR(r.start[t], s.start(t), 1e-9)
            << name << " on " << g.name() << ", task " << t;
        ASSERT_NEAR(r.finish[t], s.finish(t), 1e-9);
      }
      ASSERT_NEAR(r.makespan, s.makespan(), 1e-9);
    }
  }
}

TEST(MachineSim, PaperExampleExact) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  SimResult r = simulate(g, s);
  EXPECT_DOUBLE_EQ(r.makespan, 14.0);
  EXPECT_DOUBLE_EQ(r.start[7], 12.0);
  // Remote messages in the Table 1 schedule: t0->t1, t1->t5, t2->t6(local?)
  // count mechanically instead: every edge whose endpoints sit on
  // different processors.
  std::size_t remote = 0;
  for (const Edge& e : g.edges())
    if (s.proc(e.from) != s.proc(e.to)) ++remote;
  EXPECT_EQ(r.messages, remote);
}

// --- Contention models -------------------------------------------------------

TEST(MachineSim, SinglePortNeverFasterThanContentionFree) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 3);
    SimResult free = simulate(g, s);
    SimOptions sp;
    sp.network = SimNetwork::kSinglePortSend;
    SimResult port = simulate(g, s, sp);
    SimOptions spr;
    spr.network = SimNetwork::kSinglePortSendRecv;
    SimResult port2 = simulate(g, s, spr);
    EXPECT_GE(port.makespan, free.makespan - 1e-9) << g.name();
    EXPECT_GE(port2.makespan, port.makespan - 1e-9) << g.name();
    // Same messages delivered regardless of contention model.
    EXPECT_EQ(port.messages, free.messages);
    EXPECT_EQ(port2.messages, free.messages);
  }
}

TEST(MachineSim, SinglePortSerializesFanout) {
  // Root on p0 sends to 3 children on p1..p3 (comm 4 each). Contention-
  // free: all children start at 1 + 4 = 5. Single-port: messages leave at
  // 1, 5, 9 -> children start at 5, 9, 13.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);
  Schedule s(4, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);
  s.assign(2, 2, 5.0, 6.0);
  s.assign(3, 3, 5.0, 6.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  SimResult free = simulate(g, s);
  EXPECT_DOUBLE_EQ(free.makespan, 6.0);

  SimOptions sp;
  sp.network = SimNetwork::kSinglePortSend;
  SimResult port = simulate(g, s, sp);
  EXPECT_DOUBLE_EQ(port.makespan, 14.0);  // last child runs [13, 14)
  EXPECT_DOUBLE_EQ(port.network_busy, 12.0);
}

TEST(MachineSim, RecvPortSerializesFanin) {
  // Three producers on p1..p3 all send to a sink on p0 (comm 4). Send
  // ports are distinct so kSinglePortSend changes nothing; the receiver
  // port serializes the three transfers.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = in_tree_graph(2, 3, p);  // leaves 0,1,2 -> root 3
  Schedule s(4, 4);
  s.assign(0, 1, 0.0, 1.0);
  s.assign(1, 2, 0.0, 1.0);
  s.assign(2, 3, 0.0, 1.0);
  s.assign(3, 0, 5.0, 6.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  SimOptions sp;
  sp.network = SimNetwork::kSinglePortSend;
  EXPECT_DOUBLE_EQ(simulate(g, s, sp).makespan, 6.0);

  SimOptions spr;
  spr.network = SimNetwork::kSinglePortSendRecv;
  // Transfers occupy the receiver during [1,5), [5,9), [9,13).
  EXPECT_DOUBLE_EQ(simulate(g, s, spr).makespan, 14.0);
}

// --- Latency factor -----------------------------------------------------------

TEST(MachineSim, ZeroLatencyOnlyHelps) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 3);
    SimOptions zero;
    zero.latency_factor = 0.0;
    EXPECT_LE(simulate(g, s, zero).makespan,
              simulate(g, s).makespan + 1e-9)
        << g.name();
  }
}

TEST(MachineSim, LatencyScalesNetworkBusy) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  SimResult base = simulate(g, s);
  SimOptions twice;
  twice.latency_factor = 2.0;
  SimResult scaled = simulate(g, s, twice);
  EXPECT_NEAR(scaled.network_busy, 2.0 * base.network_busy, 1e-9);
  EXPECT_GE(scaled.makespan, base.makespan - 1e-9);
}

// --- Error handling ------------------------------------------------------------

TEST(MachineSim, RejectsIncompleteSchedule) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  EXPECT_THROW((void)simulate(g, s), Error);
}

TEST(MachineSim, RejectsNegativeLatency) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  SimOptions options;
  options.latency_factor = -1.0;
  EXPECT_THROW((void)simulate(g, s, options), Error);
}

// --- Partial network partitions ----------------------------------------------

// Root on p0 feeds children on p1 and p2 (comm 4). Cutting p0~p1 for the
// whole run forces the p1 message over the live detour p0 -> p2 -> p1:
// store-and-forward, one full transfer per hop, so the child starts at
// 1 + 2*4 = 9 instead of 5 and the detour's second hop is billed as
// reroute_extra.
TEST(MachineSim, PartitionReroutesOverLiveDetour) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);  // root 0 -> children 1, 2, 3
  Schedule s(3, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 9.0, 10.0);
  s.assign(2, 2, 5.0, 6.0);
  s.assign(3, 0, 1.0, 2.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan;
  PartitionFault cut;
  cut.proc_a = 0;
  cut.proc_b = 1;
  cut.time = 0.0;
  plan.partitions.push_back(cut);
  SimOptions options;
  options.faults = &plan;
  SimResult r = simulate(g, s, options);

  EXPECT_DOUBLE_EQ(r.start[1], 9.0);
  EXPECT_DOUBLE_EQ(r.start[2], 5.0);  // the p0~p2 link never suffered
  EXPECT_DOUBLE_EQ(r.makespan, 10.0);
  EXPECT_EQ(r.rerouted_messages, 1u);
  EXPECT_DOUBLE_EQ(r.reroute_extra, 4.0);
  EXPECT_EQ(r.partition_dropped, 0u);
  EXPECT_EQ(r.dropped_messages, 0u);
  EXPECT_TRUE(r.unfinished.empty());
}

// With only two processors there is no detour: the message is held at its
// send instant until the heal restores the direct link, and the wait is
// accounted as reroute_extra. The event log carries the canonical
// link-partitioned / link-healed pair.
TEST(MachineSim, PartitionWithNoPathWaitsForTheHeal) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 16.0, 17.0);
  s.assign(2, 0, 1.0, 2.0);
  s.assign(3, 0, 2.0, 3.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan;
  PartitionFault cut;
  cut.proc_a = 1;  // reversed on purpose: the log canonicalizes a < b
  cut.proc_b = 0;
  cut.time = 0.0;
  cut.until = 12.0;
  plan.partitions.push_back(cut);
  SimOptions options;
  options.faults = &plan;
  std::vector<SimEvent> log;
  options.event_log = &log;
  SimResult r = simulate(g, s, options);

  // Held from the send instant t=1 to the heal at t=12, then one hop of 4.
  EXPECT_DOUBLE_EQ(r.start[1], 16.0);
  EXPECT_DOUBLE_EQ(r.makespan, 17.0);
  EXPECT_EQ(r.rerouted_messages, 1u);
  EXPECT_DOUBLE_EQ(r.reroute_extra, 11.0);
  EXPECT_EQ(r.partition_dropped, 0u);

  std::size_t cuts = 0, heals = 0;
  for (const SimEvent& e : log) {
    if (e.kind == SimEventKind::kLinkPartitioned) {
      ++cuts;
      EXPECT_DOUBLE_EQ(e.time, 0.0);
      EXPECT_EQ(e.proc, 0u);
      EXPECT_EQ(e.proc2, 1u);
    }
    if (e.kind == SimEventKind::kLinkHealed) {
      ++heals;
      EXPECT_DOUBLE_EQ(e.time, 12.0);
      EXPECT_EQ(e.proc, 0u);
      EXPECT_EQ(e.proc2, 1u);
    }
  }
  EXPECT_EQ(cuts, 1u);
  EXPECT_EQ(heals, 1u);
}

// A permanent cut with no live path ever drops the message like an
// exhausted retry: the consumer starves, and the drop is accounted under
// partition_dropped as well as the generic message-loss counters.
TEST(MachineSim, PermanentTotalCutDropsAndStarvesTheConsumer) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);
  s.assign(2, 0, 1.0, 2.0);
  s.assign(3, 0, 2.0, 3.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan;
  PartitionFault cut;
  cut.proc_a = 0;
  cut.proc_b = 1;
  cut.time = 0.0;  // until stays infinite: never heals
  plan.partitions.push_back(cut);
  SimOptions options;
  options.faults = &plan;
  SimResult r = simulate(g, s, options);

  EXPECT_EQ(r.partition_dropped, 1u);
  EXPECT_EQ(r.dropped_messages, 1u);
  ASSERT_EQ(r.dropped_edges.size(), 1u);
  EXPECT_EQ(r.dropped_edges[0].first, 0u);
  EXPECT_EQ(r.dropped_edges[0].second, 1u);
  ASSERT_EQ(r.unfinished.size(), 1u);
  EXPECT_EQ(r.unfinished[0], 1u);
}

TEST(MachineSim, SingleProcessorIgnoresNetwork) {
  TaskGraph g = test::fuzz_graph(6);
  FlbScheduler flb;
  Schedule s = flb.run(g, 1);
  for (SimNetwork net : {SimNetwork::kContentionFree,
                         SimNetwork::kSinglePortSend,
                         SimNetwork::kSinglePortSendRecv}) {
    SimOptions options;
    options.network = net;
    SimResult r = simulate(g, s, options);
    EXPECT_NEAR(r.makespan, g.total_comp(), 1e-9);
    EXPECT_EQ(r.messages, 0u);
  }
}

}  // namespace
}  // namespace flb
