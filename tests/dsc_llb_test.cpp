#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "flb/algos/dsc.hpp"
#include "flb/algos/llb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// Validates DSC's own unbounded-processor schedule: cluster members run
// back-to-back without overlap, and every task starts no earlier than its
// data arrives (intra-cluster messages free).
void expect_clustering_feasible(const TaskGraph& g, const Clustering& c) {
  ASSERT_EQ(c.cluster_of.size(), g.num_tasks());
  ASSERT_EQ(c.members.size(), c.num_clusters);

  // Dense cluster ids, every task in exactly one member list.
  std::set<TaskId> seen;
  for (ClusterId cl = 0; cl < c.num_clusters; ++cl) {
    for (TaskId t : c.members[cl]) {
      EXPECT_EQ(c.cluster_of[t], cl);
      EXPECT_TRUE(seen.insert(t).second);
    }
  }
  EXPECT_EQ(seen.size(), g.num_tasks());

  // Durations and non-overlap within each cluster.
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_NEAR(c.finish[t], c.start[t] + g.comp(t), 1e-9);
  for (ClusterId cl = 0; cl < c.num_clusters; ++cl) {
    for (std::size_t i = 1; i < c.members[cl].size(); ++i) {
      TaskId prev = c.members[cl][i - 1], cur = c.members[cl][i];
      EXPECT_GE(c.start[cur], c.finish[prev] - 1e-9)
          << "cluster " << cl << " overlaps";
    }
  }

  // Dependence feasibility with cluster-zeroed communication.
  for (const Edge& e : g.edges()) {
    Cost comm = c.cluster_of[e.from] == c.cluster_of[e.to] ? 0.0 : e.comm;
    EXPECT_GE(c.start[e.to], c.finish[e.from] + comm - 1e-9)
        << "edge " << e.from << "->" << e.to;
  }
}

TEST(Dsc, FeasibleOnFuzzCorpus) {
  for (std::size_t i = 0; i < 20; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    expect_clustering_feasible(g, dsc_cluster(g));
  }
}

TEST(Dsc, FeasibleOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 17;
    params.ccr = 5.0;
    TaskGraph g = make_workload(name, 300, params);
    expect_clustering_feasible(g, dsc_cluster(g));
  }
}

TEST(Dsc, ChainCollapsesToOneCluster) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 2.0;
  TaskGraph g = chain_graph(12, p);
  Clustering c = dsc_cluster(g);
  EXPECT_EQ(c.num_clusters, 1u);
  EXPECT_DOUBLE_EQ(c.schedule_length(), 12.0);  // all comm zeroed
}

TEST(Dsc, IndependentTasksStaySeparate) {
  TaskGraph g = independent_graph(9);
  Clustering c = dsc_cluster(g);
  EXPECT_EQ(c.num_clusters, 9u);
}

TEST(Dsc, NeverWorseThanNoClustering) {
  // Scheduling each task at its unclustered earliest time yields the
  // comm-inclusive critical path; DSC must not exceed it.
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Clustering c = dsc_cluster(g);
    EXPECT_LE(c.schedule_length(), critical_path(g) + 1e-9) << g.name();
  }
}

TEST(Dsc, ReducesForkJoinLength) {
  // High communication: clustering the heavy path pays off.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = fork_join_graph(2, 4, p);
  Clustering c = dsc_cluster(g);
  EXPECT_LT(c.schedule_length(), critical_path(g) - 1e-9);
}

TEST(Dsc, EmptyGraph) {
  TaskGraphBuilder b;
  TaskGraph g = std::move(b).build();
  Clustering c = dsc_cluster(g);
  EXPECT_EQ(c.num_clusters, 0u);
  EXPECT_DOUBLE_EQ(c.schedule_length(), 0.0);
}

// --- LLB -----------------------------------------------------------------

TEST(Llb, KeepsClustersTogether) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    Clustering c = dsc_cluster(g);
    for (ProcId procs : {2u, 4u}) {
      Schedule s = llb_map(g, c, procs);
      ASSERT_TRUE(is_valid_schedule(g, s))
          << g.name() << ": " << test::violations_to_string(g, s);
      // Co-location: every cluster lives on exactly one processor.
      for (ClusterId cl = 0; cl < c.num_clusters; ++cl) {
        for (std::size_t k = 1; k < c.members[cl].size(); ++k)
          EXPECT_EQ(s.proc(c.members[cl][k]), s.proc(c.members[cl][0]))
              << g.name() << " cluster " << cl;
      }
    }
  }
}

TEST(Llb, SingleProcessorPacksSequentially) {
  TaskGraph g = test::fuzz_graph(5);
  Clustering c = dsc_cluster(g);
  Schedule s = llb_map(g, c, 1);
  EXPECT_TRUE(is_valid_schedule(g, s));
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

TEST(Llb, RejectsMismatchedClustering) {
  TaskGraph g = test::small_diamond();
  Clustering c = dsc_cluster(chain_graph(10));
  EXPECT_THROW((void)llb_map(g, c, 2), Error);
}

TEST(Llb, MoreClustersThanProcsStillValid) {
  TaskGraph g = independent_graph(40);  // 40 singleton clusters
  Clustering c = dsc_cluster(g);
  Schedule s = llb_map(g, c, 4);
  EXPECT_TRUE(is_valid_schedule(g, s));
  // Pure load balancing of independent unit-free tasks: speedup near 4.
  EXPECT_GE(speedup(g, s), 3.0);
}

// --- DSC-LLB end to end -----------------------------------------------------

TEST(DscLlb, ValidOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 19;
    TaskGraph g = make_workload(name, 300, params);
    DscLlbScheduler dsc_llb;
    for (ProcId procs : {1u, 4u, 16u}) {
      Schedule s = dsc_llb.run(g, procs);
      ASSERT_TRUE(is_valid_schedule(g, s))
          << name << " P=" << procs << ": "
          << test::violations_to_string(g, s);
      EXPECT_GE(s.makespan(), makespan_lower_bound(g, procs) - 1e-9);
    }
  }
}

TEST(DscLlb, DeterministicAcrossRuns) {
  TaskGraph g = make_workload("Stencil", 300, {});
  DscLlbScheduler d;
  Schedule a = d.run(g, 4);
  Schedule b = d.run(g, 4);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.proc(t), b.proc(t));
    EXPECT_DOUBLE_EQ(a.start(t), b.start(t));
  }
}

TEST(DscLlb, NameIsPaperName) {
  EXPECT_EQ(DscLlbScheduler().name(), "DSC-LLB");
}

}  // namespace
}  // namespace flb
