#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "flb/algos/etf.hpp"
#include "flb/core/flb.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/sched/validator.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// The paper's headline equivalence (Section 4, Theorem 3): FLB uses the
// same task-selection criterion as ETF — at every iteration it schedules a
// ready task that can start the earliest, at the earliest start achievable
// for it. The algorithms may still pick *different* equally-early pairs
// (their tie-breaking differs, Section 6.2), so schedules need not be
// identical; what must hold is that each one's per-iteration start time is
// the global minimum for its own partial schedule. FLB's side is verified
// directly in flb_test (Theorem3ChosenPairIsGlobalArgmin); here we verify
// ETF's side and the practical consequences the paper reports.

// ETF replayed step by step: every decision's start time is the global
// minimum EST of its own partial schedule.
TEST(FlbEtfEquivalence, EtfAlsoSchedulesGlobalEarliestStart) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    const ProcId procs = 3;
    EtfScheduler etf;
    Schedule s = etf.run(g, procs);

    // Replay ETF's decisions in iteration order. ETF schedules tasks in
    // non-decreasing start-time order (the global min EST never decreases:
    // PRTs only grow and ready-task arrival times are fixed once ready),
    // so sorting by (start, assignment order) reconstructs a valid
    // iteration order; for equal starts the relative order does not affect
    // the assertion because both achieve the same minimum.
    std::vector<TaskId> order(g.num_tasks());
    for (TaskId t = 0; t < g.num_tasks(); ++t) order[t] = t;
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return s.start(a) < s.start(b);
    });

    Schedule replay(procs, g.num_tasks());
    for (TaskId t : order) {
      if (!is_ready(g, replay, t)) {
        // Equal-start reordering placed a successor before its predecessor
        // in our reconstruction; skip the strict check for this step but
        // keep the replay consistent by scheduling anyway.
        replay.assign(t, s.proc(t), s.start(t), s.finish(t));
        continue;
      }
      Cost best = kInfiniteTime;
      for (TaskId r = 0; r < g.num_tasks(); ++r) {
        if (!is_ready(g, replay, r)) continue;
        best = std::min(best, best_proc_exhaustive(g, replay, r).second);
      }
      ASSERT_NEAR(s.start(t), best, 1e-9)
          << g.name() << ": ETF scheduled t" << t << " at " << s.start(t)
          << " but some ready task could start at " << best;
      replay.assign(t, s.proc(t), s.start(t), s.finish(t));
    }
  }
}

// Start times of the two algorithms' iteration sequences coincide: the
// i-th earliest start chosen by FLB equals the i-th earliest chosen by
// ETF... this is NOT implied by the criterion (different tie-breaks fork
// different futures), so the paper only claims comparable performance.
// We check the practical consequence: on the evaluation workloads the
// makespans stay within a modest band of each other.
TEST(FlbEtfEquivalence, MakespansStayClose) {
  for (const std::string& name : workload_names()) {
    for (double ccr : {0.2, 5.0}) {
      WorkloadParams params;
      params.ccr = ccr;
      params.seed = 47;
      TaskGraph g = make_workload(name, 400, params);
      Cost flb_len = FlbScheduler().run(g, 8).makespan();
      Cost etf_len = EtfScheduler().run(g, 8).makespan();
      // Paper Fig. 4: differences up to ~12% in either direction; allow a
      // generous band to keep the test robust across instances.
      EXPECT_LT(flb_len, 1.5 * etf_len) << name << " ccr " << ccr;
      EXPECT_LT(etf_len, 1.5 * flb_len) << name << " ccr " << ccr;
    }
  }
}

// On a graph with no ties at all (strictly distinct random weights rarely
// tie), FLB and ETF make literally identical decisions. Build a tiny graph
// with forced distinct ESTs and compare complete schedules.
TEST(FlbEtfEquivalence, IdenticalSchedulesWithoutTies) {
  // A chain of diamonds with distinct weights: every EST is unique.
  TaskGraphBuilder b;
  TaskId a = b.add_task(1.0);
  TaskId c1 = b.add_task(2.0);
  TaskId c2 = b.add_task(3.5);
  TaskId d = b.add_task(1.5);
  TaskId e1 = b.add_task(2.25);
  TaskId e2 = b.add_task(0.75);
  TaskId f = b.add_task(1.0);
  b.add_edge(a, c1, 1.0);
  b.add_edge(a, c2, 2.5);
  b.add_edge(c1, d, 0.5);
  b.add_edge(c2, d, 1.25);
  b.add_edge(d, e1, 3.0);
  b.add_edge(d, e2, 0.25);
  b.add_edge(e1, f, 1.0);
  b.add_edge(e2, f, 2.0);
  TaskGraph g = std::move(b).build();

  Schedule flb = FlbScheduler().run(g, 2);
  Schedule etf = EtfScheduler().run(g, 2);
  ASSERT_TRUE(is_valid_schedule(g, flb));
  ASSERT_TRUE(is_valid_schedule(g, etf));
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_DOUBLE_EQ(flb.start(t), etf.start(t)) << "task " << t;
  }
}

}  // namespace
}  // namespace flb
