#include "flb/platform/cost_model.hpp"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "flb/algos/dls.hpp"
#include "flb/algos/etf.hpp"
#include "flb/algos/heft.hpp"
#include "flb/core/flb.hpp"
#include "flb/platform/speed_profile.hpp"
#include "flb/sched/hetero.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

using platform::Availability;
using platform::CommMode;
using platform::CostModel;
using platform::LinkOccupancy;
using platform::SpeedProfile;

// ---------------------------------------------------------------------------
// Golden bit-identity regression. The refactor's central promise: pricing
// clique-mode FLB through platform::CostModel changes NOTHING — not merely
// "equal makespans" but the same placements with bit-identical start/finish
// times. The digests below were captured from the pre-refactor engine.
// A failure here means the CostModel arithmetic drifted from the former
// private copy (e.g. an added `* 1.0` reordering, a max() flipped).

std::uint64_t schedule_digest(const Schedule& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (TaskId t = 0; t < s.num_tasks(); ++t) {
    mix(s.proc(t));
    std::uint64_t bits = 0;
    const double start = s.start(t);
    const double finish = s.finish(t);
    std::memcpy(&bits, &start, sizeof bits);
    mix(bits);
    std::memcpy(&bits, &finish, sizeof bits);
    mix(bits);
  }
  return h;
}

TEST(PlatformGolden, PaperExampleBitIdentical) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  EXPECT_EQ(s.makespan(), 0x1.cp+3);
  EXPECT_EQ(schedule_digest(s), 5113259804641662334ull);
}

struct Golden {
  std::size_t fuzz_index;
  ProcId procs;
  double makespan;  // exact bits, captured pre-refactor
  std::uint64_t digest;
};

TEST(PlatformGolden, FuzzCorpusBitIdentical) {
  static const Golden kTable[] = {
      {0, 2, 0x1.5dc8027d3557fp+3, 6163402817620380191ull},
      {0, 4, 0x1.d550f6a3c200ep+2, 11984822218006859182ull},
      {0, 8, 0x1.cff4a4a4cbd88p+2, 7677375797997336011ull},
      {1, 2, 0x1.46858f397f60ep+3, 868977671700199420ull},
      {1, 4, 0x1.3670f364c0c88p+3, 8841111725626044235ull},
      {1, 8, 0x1.3670f364c0c88p+3, 14809793358818105679ull},
      {2, 2, 0x1.fa272025984d8p+4, 5508825296550152750ull},
      {2, 4, 0x1.fa272025984d8p+4, 10482687934106115347ull},
      {2, 8, 0x1.fa272025984d8p+4, 10482687934106115347ull},
      {3, 2, 0x1.02d7ad895cc41p+3, 13063748773484960717ull},
      {3, 4, 0x1.c318689a5ddc8p+2, 12371456930988836003ull},
      {3, 8, 0x1.c318689a5ddc8p+2, 4290929887168875626ull},
      {4, 2, 0x1.0e0606b5ebf5p+4, 1317999482311433074ull},
      {4, 4, 0x1.0e0606b5ebf5p+4, 16569072749546089919ull},
      {4, 8, 0x1.0e0606b5ebf5p+4, 16569072749546089919ull},
      {5, 2, 0x1.2a37db85ef14ap+4, 712509713851413856ull},
      {5, 4, 0x1.2a37db85ef14ap+4, 712509713851413856ull},
      {5, 8, 0x1.2a37db85ef14ap+4, 712509713851413856ull},
      {6, 2, 0x1.10c209b6df015p+4, 4087980554848760377ull},
      {6, 4, 0x1.c6c4f8af08d6ap+3, 5142832088180793264ull},
      {6, 8, 0x1.c6c4f8af08d6ap+3, 14266918385966217797ull},
      {7, 2, 0x1.99de8f1c62b1fp+3, 6214158040572120765ull},
      {7, 4, 0x1.312b659f0c8a2p+3, 10574706086649598071ull},
      {7, 8, 0x1.02bf97a682b29p+3, 10778113853671602819ull},
  };
  for (const Golden& row : kTable) {
    TaskGraph g = test::fuzz_graph(row.fuzz_index);
    FlbScheduler flb;
    Schedule s = flb.run(g, row.procs);
    EXPECT_EQ(s.makespan(), row.makespan)
        << "fuzz[" << row.fuzz_index << "] P=" << row.procs << " ("
        << g.name() << ")";
    EXPECT_EQ(schedule_digest(s), row.digest)
        << "fuzz[" << row.fuzz_index << "] P=" << row.procs << " ("
        << g.name() << ")";
  }
}

// ---------------------------------------------------------------------------
// SpeedProfile: the segment-based execution model promoted out of the
// machine simulator.

TEST(SpeedProfileTest, TrivialProfileRunsAtUnitSpeed) {
  SpeedProfile p;
  p.finalize();
  EXPECT_TRUE(p.trivial());
  SpeedProfile::Trace tr = p.run(1.0, 4.0, CheckpointPolicy{});
  EXPECT_TRUE(tr.finished);
  EXPECT_EQ(tr.end, 5.0);
  EXPECT_EQ(tr.done, 4.0);
  EXPECT_EQ(tr.checkpoints, 0u);
}

TEST(SpeedProfileTest, SlowdownStretchesExecution) {
  SpeedProfile p;
  p.add(0.0, 0.5, 2.0);
  p.finalize();
  EXPECT_FALSE(p.trivial());
  // [0, 2) at half speed completes 1 unit; the remaining 3 run at full
  // speed after recovery, finishing at 5.
  SpeedProfile::Trace tr = p.run(0.0, 4.0, CheckpointPolicy{});
  EXPECT_TRUE(tr.finished);
  EXPECT_EQ(tr.end, 5.0);
  EXPECT_EQ(tr.done, 4.0);
}

TEST(SpeedProfileTest, RecoveryReturnsToExactlyUnitSpeed) {
  // finalize() recomputes each segment's product from scratch, so after the
  // last fault expires the speed is exactly 1.0 — no 1/factor drift.
  SpeedProfile p;
  p.add(0.0, 0.3, 1.0);
  p.finalize();
  SpeedProfile::Trace tr = p.run(1.0, 2.0, CheckpointPolicy{});
  EXPECT_TRUE(tr.finished);
  EXPECT_EQ(tr.end, 3.0);
}

TEST(SpeedProfileTest, KillCutsExecutionShort) {
  SpeedProfile p;
  p.add(0.0, 0.5);
  p.finalize();
  SpeedProfile::Trace tr = p.run(0.0, 4.0, CheckpointPolicy{}, 2.0);
  EXPECT_FALSE(tr.finished);
  EXPECT_EQ(tr.end, 2.0);
  EXPECT_EQ(tr.done, 1.0);  // 2 wall units at half speed
}

TEST(SpeedProfileTest, CheckpointsMakeWorkDurable) {
  SpeedProfile p;
  p.finalize();
  CheckpointPolicy ckpt{1.0, 0.25};
  // Mark at 1 work unit reached at t=1, write until 1.25; killed at 2.0
  // with 0.75 further units computed but not protected.
  SpeedProfile::Trace tr = p.run(0.0, 3.0, ckpt, 2.0);
  EXPECT_FALSE(tr.finished);
  EXPECT_EQ(tr.checkpoints, 1u);
  EXPECT_EQ(tr.saved, 1.0);
  EXPECT_EQ(tr.overhead, 0.25);
  EXPECT_EQ(tr.end, 2.0);
  EXPECT_EQ(tr.done, 1.75);
}

// ---------------------------------------------------------------------------
// Availability: admission instants and cold-cache horizons.

TEST(AvailabilityTest, DefaultsAdmitEverythingWarm) {
  Availability a;
  EXPECT_TRUE(a.is_alive(3));
  EXPECT_EQ(a.admission(3), 0.0);
  EXPECT_EQ(a.cold_horizon(3), 0.0);
  EXPECT_FALSE(a.any_cold());
}

TEST(AvailabilityTest, RecoveryAdmitsRejoinedProcessorsCold) {
  const std::vector<bool> admitted{true, true, false};
  const std::vector<Cost> available_from{0.0, 7.0, kInfiniteTime};
  Availability a = Availability::recovery(5.0, admitted, available_from);
  EXPECT_EQ(a.release, 5.0);
  EXPECT_TRUE(a.is_alive(0));
  EXPECT_TRUE(a.is_alive(1));
  EXPECT_FALSE(a.is_alive(2));
  // Never-killed processor: admitted at the release instant, warm.
  EXPECT_EQ(a.admission(0), 5.0);
  EXPECT_EQ(a.cold_horizon(0), 0.0);
  // Rejoined processor: admitted from its rejoin, cold before it.
  EXPECT_EQ(a.admission(1), 7.0);
  EXPECT_EQ(a.cold_horizon(1), 7.0);
  EXPECT_TRUE(a.any_cold());
}

// ---------------------------------------------------------------------------
// CostModel: the three communication modes, execution pricing, validation.

TEST(CostModelTest, CliqueFlatPricing) {
  CostModel m = CostModel::clique(4);
  EXPECT_EQ(m.mode(), CommMode::kClique);
  EXPECT_EQ(m.num_procs(), 4u);
  EXPECT_FALSE(m.exact_pricing());
  EXPECT_EQ(m.comm(0, 1, 2.0, 3.0), 5.0);
  EXPECT_EQ(m.comm(1, 1, 2.0, 3.0), 3.0);  // same-processor: free
  m.set_latency_factor(2.0);
  EXPECT_EQ(m.comm(0, 1, 2.0, 3.0), 7.0);
}

TEST(CostModelTest, ColdCacheRefetchPricing) {
  CostModel m = CostModel::clique(2);
  Availability a;
  a.cold_before = {0.0, 2.0};
  m.set_availability(a);
  EXPECT_TRUE(m.exact_pricing());  // cold caches force exact EST pricing
  // Local data predating proc 1's reboot is re-fetched at cold + comm.
  EXPECT_EQ(m.arrival(1, 1, 3.0, 1.5), 5.0);
  // Data produced after the reboot is warm.
  EXPECT_EQ(m.arrival(1, 1, 3.0, 2.5), 2.5);
  // Proc 0 never rebooted: local data always warm.
  EXPECT_EQ(m.arrival(0, 0, 3.0, 1.5), 1.5);
  // Remote data pays the network price regardless.
  EXPECT_EQ(m.arrival(0, 1, 3.0, 1.5), 4.5);
}

TEST(CostModelTest, AvailabilityGatesAdmission) {
  CostModel m = CostModel::clique(3);
  Availability a;
  a.release = 2.0;
  a.alive = {true, false, true};
  a.proc_release = {0.0, 0.0, 6.0};
  m.set_availability(a);
  EXPECT_TRUE(m.alive(0));
  EXPECT_FALSE(m.alive(1));
  EXPECT_EQ(m.admission(0), 2.0);
  EXPECT_EQ(m.admission(2), 6.0);
}

TEST(CostModelTest, RoutedHopsPricing) {
  Topology ring = Topology::ring(4);
  CostModel m = CostModel::routed(ring);
  EXPECT_EQ(m.mode(), CommMode::kRoutedHops);
  EXPECT_TRUE(m.exact_pricing());
  EXPECT_EQ(m.comm(0, 1, 3.0, 1.0), 4.0);   // 1 hop
  EXPECT_EQ(m.comm(0, 2, 3.0, 1.0), 7.0);   // 2 hops
  EXPECT_EQ(m.comm(2, 2, 3.0, 1.0), 1.0);   // local
  // commit() degenerates to comm(): nothing to reserve, nothing logged.
  EXPECT_EQ(m.commit(0, 2, 3.0, 1.0), 7.0);
  EXPECT_TRUE(m.occupancies().empty());
}

TEST(CostModelTest, LinkBusyProbeCommitAndLog) {
  Topology line = Topology::from_links(3, {{0, 1}, {1, 2}});
  CostModel m = CostModel::link_busy(line);
  // Probing prices against the reservations without claiming anything:
  // two identical probes answer the same.
  EXPECT_EQ(m.comm(0, 2, 2.0, 1.0), 5.0);  // two store-and-forward hops
  EXPECT_EQ(m.comm(0, 2, 2.0, 1.0), 5.0);
  EXPECT_TRUE(m.occupancies().empty());
  // Committing reserves both hops and matches the probe's answer.
  EXPECT_EQ(m.commit(0, 2, 2.0, 1.0), 5.0);
  ASSERT_EQ(m.occupancies().size(), 2u);
  EXPECT_EQ(m.total_hops(), 2u);
  // A later transfer over the first link queues behind the reservation:
  // the link is busy on [1, 3), so departing at 0 still arrives at 5.
  EXPECT_EQ(m.comm(0, 1, 2.0, 0.0), 5.0);
  EXPECT_EQ(m.commit(0, 1, 2.0, 0.0), 5.0);
  EXPECT_EQ(m.max_link_busy(), 4.0);    // the 0-1 link carried 2 + 2
  EXPECT_EQ(m.total_link_busy(), 6.0);
  // The commit log honors link exclusivity by construction.
  EXPECT_TRUE(validate_link_occupancies(line, m.occupancies()).empty());
  m.reset_links();
  EXPECT_TRUE(m.occupancies().empty());
  EXPECT_EQ(m.total_hops(), 0u);
  EXPECT_EQ(m.comm(0, 1, 2.0, 0.0), 2.0);  // reservations gone
}

TEST(CostModelTest, ExecutionPricing) {
  CostModel m = CostModel::clique(2);
  TaskGraph g = test::small_diamond();  // comp: 1, 3, 2, 1
  EXPECT_EQ(m.exec(g, 1, 0, 0.0), 3.0);
  m.set_speeds({1.0, 0.5});
  EXPECT_EQ(m.speed(1), 0.5);
  EXPECT_EQ(m.exec(g, 1, 1, 0.0), 6.0);
  EXPECT_EQ(m.mean_exec_work(2.0), 3.0);  // mean inverse speed = 1.5
  // Work override (checkpoint-resumed remainder) replaces the graph cost.
  m.set_work({kUndefinedTime, 1.0, kUndefinedTime, kUndefinedTime});
  EXPECT_EQ(m.work_of(g, 1), 1.0);
  EXPECT_EQ(m.work_of(g, 2), 2.0);  // kUndefinedTime falls back to comp
  EXPECT_EQ(m.exec(g, 1, 1, 0.0), 2.0);
  // Additive extra time lands after speed scaling.
  m.set_extra_time({0.0, 0.25, 0.0, 0.0});
  EXPECT_EQ(m.exec(g, 1, 1, 0.0), 2.25);
}

TEST(CostModelTest, SpeedProfilesTakePrecedenceOverStaticSpeeds) {
  CostModel m = CostModel::clique(2);
  m.set_speeds({1.0, 1.0});
  std::vector<SpeedProfile> profiles(2);
  profiles[1].add(0.0, 0.5);
  profiles[1].finalize();
  m.set_speed_profiles(std::move(profiles));
  EXPECT_EQ(m.exec_work(2.0, 0, 0.0), 2.0);  // trivial profile: static path
  EXPECT_EQ(m.exec_work(2.0, 1, 0.0), 4.0);  // integrated at half speed
}

TEST(CostModelTest, RejectsMalformedConfiguration) {
  CostModel m = CostModel::clique(2);
  EXPECT_THROW(m.set_speeds({1.0}), Error);          // wrong size
  EXPECT_THROW(m.set_speeds({1.0, 0.0}), Error);     // non-positive speed
  EXPECT_THROW(m.set_latency_factor(-1.0), Error);
  Availability a;
  a.alive = {true};
  EXPECT_THROW(m.set_availability(std::move(a)), Error);
  EXPECT_THROW(CostModel::clique(0), Error);
}

// ---------------------------------------------------------------------------
// Resume through the platform layer.

TEST(PlatformResume, EmptyPrefixMatchesFreshRun) {
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule fresh = flb.run(g, 4);
    Schedule resumed = flb.resume(g, Schedule(4, g.num_tasks()),
                                  std::vector<bool>(4, true), 0.0);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(resumed.proc(t), fresh.proc(t)) << g.name() << " task " << t;
      EXPECT_EQ(resumed.start(t), fresh.start(t)) << g.name() << " task " << t;
      EXPECT_EQ(resumed.finish(t), fresh.finish(t))
          << g.name() << " task " << t;
    }
  }
}

TEST(PlatformResume, LinkBusyRequiresTopology) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  FlbResumeContext ctx;
  ctx.alive = {true, true};
  ctx.link_busy = true;  // but no topology
  EXPECT_THROW((void)flb.resume(g, Schedule(2, g.num_tasks()), ctx), Error);
}

// The hand example behind the resume-level link-contention claim.
//
// Topology (3 links):   1 --- 0 --- 2 --- 3
// Producer a ran on processor 0, which then died; its three consumers
// (comm 4, comp 0.5 each) must land on the survivors {1, 3}.
//
// Routed pricing is contention-free: proc 1 is one hop from the data
// (arrival 0.5 + 4 = 4.5), proc 3 is two hops (arrival 8.5), so all three
// consumers pile onto proc 1 and the makespan is 6.
//
// Link-busy pricing serializes the 0-1 transfers: the second consumer's
// message queues on [4.5, 8.5), which makes the *free* two-hop route to
// proc 3 (also arriving at 8.5) equally good and leaves the third consumer
// strictly better off at proc 3 / 8.5 than proc 1 / 12.5. The contended
// link changes the placement — one consumer migrates to the far survivor.
TaskGraph fan_out_graph() {
  TaskGraphBuilder b;
  b.set_name("contended-fan-out");
  TaskId a = b.add_task(0.5);
  TaskId c = b.add_task(0.5);
  TaskId d = b.add_task(0.5);
  TaskId e = b.add_task(0.5);
  b.add_edge(a, c, 4);
  b.add_edge(a, d, 4);
  b.add_edge(a, e, 4);
  return std::move(b).build();
}

TEST(PlatformResume, ContendedLinkSteersPlacement) {
  TaskGraph g = fan_out_graph();
  Topology topo = Topology::from_links(4, {{0, 1}, {0, 2}, {2, 3}});
  Schedule prefix(4, g.num_tasks());
  prefix.assign(0, 0, 0.0, 0.5);  // the producer's executed past

  FlbScheduler flb;
  FlbResumeContext ctx;
  ctx.alive = {false, true, false, true};
  ctx.release = 0.5;
  ctx.topology = &topo;

  Schedule routed = flb.resume(g, prefix, ctx);
  EXPECT_TRUE(is_valid_schedule(g, routed))
      << test::violations_to_string(g, routed);
  for (TaskId t = 1; t <= 3; ++t)
    EXPECT_EQ(routed.proc(t), 1u) << "routed pricing: consumer " << t;
  EXPECT_EQ(routed.makespan(), 6.0);

  std::vector<LinkOccupancy> occ;
  ctx.link_busy = true;
  ctx.occupancy_log = &occ;
  Schedule busy = flb.resume(g, prefix, ctx);
  EXPECT_TRUE(is_valid_schedule(g, busy))
      << test::violations_to_string(g, busy);
  int on_far = 0;
  for (TaskId t = 1; t <= 3; ++t) {
    if (busy.proc(t) == 3u) {
      ++on_far;
      EXPECT_EQ(busy.start(t), 8.5);
      EXPECT_EQ(busy.finish(t), 9.0);
    } else {
      EXPECT_EQ(busy.proc(t), 1u);
    }
  }
  EXPECT_EQ(on_far, 1) << "exactly one consumer migrates to processor 3";
  EXPECT_EQ(busy.makespan(), 9.0);
  EXPECT_FALSE(occ.empty());
  for (const Violation& v : validate_link_occupancies(topo, occ))
    ADD_FAILURE() << to_string(v);
}

TEST(PlatformResume, RoutedAndLinkBusySchedulesStayFeasible) {
  // Routed and link-busy prices are >= clique prices, so the resumed
  // schedules must stay clean under the clique validator, and the commit
  // log must honor link exclusivity.
  Topology topo = Topology::mesh2d(2, 2);
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    FlbResumeContext ctx;
    ctx.alive = std::vector<bool>(4, true);
    ctx.topology = &topo;
    Schedule routed = flb.resume(g, Schedule(4, g.num_tasks()), ctx);
    EXPECT_TRUE(is_valid_schedule(g, routed))
        << g.name() << "\n" << test::violations_to_string(g, routed);

    std::vector<LinkOccupancy> occ;
    ctx.link_busy = true;
    ctx.occupancy_log = &occ;
    Schedule busy = flb.resume(g, Schedule(4, g.num_tasks()), ctx);
    EXPECT_TRUE(is_valid_schedule(g, busy))
        << g.name() << "\n" << test::violations_to_string(g, busy);
    for (const Violation& v : validate_link_occupancies(topo, occ))
      ADD_FAILURE() << g.name() << ": " << to_string(v);
  }
}

// ---------------------------------------------------------------------------
// Repair through the platform layer: a contended link changes which
// survivor the repaired work lands on (closes the ROADMAP item "link
// contention during repair").

TEST(PlatformRepair, ContendedLinkChangesRepairedPlacement) {
  TaskGraph g = fan_out_graph();
  Schedule nominal(4, g.num_tasks());
  nominal.assign(0, 0, 0.0, 0.5);
  nominal.assign(1, 0, 0.5, 1.0);
  nominal.assign(2, 0, 1.0, 1.5);
  nominal.assign(3, 0, 1.5, 2.0);

  FaultPlan plan;
  plan.failures = {{0, 0.6}, {2, 0.6}};  // the producer's proc + proc 2 die
  SimOptions sopts;
  sopts.faults = &plan;
  SimResult partial = simulate(g, nominal, sopts);
  ASSERT_FALSE(partial.complete());

  Topology topo = Topology::from_links(4, {{0, 1}, {0, 2}, {2, 3}});
  RepairOptions ropts;
  ropts.strategy = RepairStrategy::kFlbResume;
  ropts.topology = &topo;

  // Routed repair: contention-free hop pricing sends every consumer to the
  // 1-hop survivor (proc 1).
  RepairResult routed = repair_schedule(g, nominal, partial, plan, ropts);
  EXPECT_EQ(routed.used, RepairStrategy::kFlbResume);
  for (TaskId t = 1; t <= 3; ++t)
    EXPECT_EQ(routed.schedule.proc(t), 1u) << "routed repair: consumer " << t;
  EXPECT_EQ(routed.schedule.makespan(), 6.0);
  EXPECT_TRUE(routed.link_occupancies.empty());

  // Link-busy repair: the serialized 0-1 transfers make the far survivor
  // (proc 3) the better home for one consumer.
  ropts.link_busy = true;
  RepairResult busy = repair_schedule(g, nominal, partial, plan, ropts);
  EXPECT_EQ(busy.used, RepairStrategy::kFlbResume);
  int on_far = 0;
  for (TaskId t = 1; t <= 3; ++t) {
    if (busy.schedule.proc(t) == 3u) {
      ++on_far;
      EXPECT_EQ(busy.schedule.start(t), 8.5);
    } else {
      EXPECT_EQ(busy.schedule.proc(t), 1u);
    }
  }
  EXPECT_EQ(on_far, 1) << "the contended link migrates exactly one consumer";
  EXPECT_EQ(busy.schedule.makespan(), 9.0);
  EXPECT_FALSE(busy.link_occupancies.empty());
  for (const Violation& v :
       validate_link_occupancies(topo, busy.link_occupancies))
    ADD_FAILURE() << to_string(v);
  // The continuation honors the durations oracle computed independently of
  // the placement engine.
  for (const Violation& v : validate_schedule(g, busy.schedule, busy.durations))
    ADD_FAILURE() << to_string(v);
}

TEST(PlatformRepair, LinkBusyRequiresTopology) {
  TaskGraph g = fan_out_graph();
  Schedule nominal(2, g.num_tasks());
  nominal.assign(0, 0, 0.0, 0.5);
  nominal.assign(1, 0, 0.5, 1.0);
  nominal.assign(2, 1, 4.5, 5.0);
  nominal.assign(3, 0, 1.0, 1.5);
  FaultPlan plan = FaultPlan::single_failure(1, 0.1);
  SimOptions sopts;
  sopts.faults = &plan;
  SimResult partial = simulate(g, nominal, sopts);
  RepairOptions ropts;
  ropts.link_busy = true;  // but no topology
  EXPECT_THROW((void)repair_schedule(g, nominal, partial, plan, ropts), Error);
}

// ---------------------------------------------------------------------------
// Comparison algorithms priced through the model.

TEST(AlgoModelOverloads, EtfCliqueSelectionIdentical) {
  for (std::size_t i = 0; i < 9; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    EtfScheduler etf;
    Schedule base = etf.run(g, 4);
    CostModel model = CostModel::clique(4);
    Schedule via = etf.run_on(g, model);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(via.proc(t), base.proc(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.start(t), base.start(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.finish(t), base.finish(t)) << g.name() << " task " << t;
    }
  }
}

TEST(AlgoModelOverloads, DlsCliqueSelectionIdentical) {
  for (std::size_t i = 0; i < 9; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    DlsScheduler dls;
    Schedule base = dls.run(g, 4);
    CostModel model = CostModel::clique(4);
    Schedule via = dls.run_on(g, model);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(via.proc(t), base.proc(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.start(t), base.start(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.finish(t), base.finish(t)) << g.name() << " task " << t;
    }
  }
}

TEST(AlgoModelOverloads, HeftModelMatchesHeteroMachine) {
  const std::vector<double> speeds{1.0, 0.5, 0.25, 2.0};
  for (std::size_t i = 0; i < 7; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    HeteroMachine machine(speeds);
    Schedule base = heft(g, machine);
    CostModel model = CostModel::clique(4);
    model.set_speeds(speeds);
    Schedule via = heft(g, model);
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      EXPECT_EQ(via.proc(t), base.proc(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.start(t), base.start(t)) << g.name() << " task " << t;
      EXPECT_EQ(via.finish(t), base.finish(t)) << g.name() << " task " << t;
    }
  }
}

TEST(AlgoModelOverloads, LinkBusySchedulesAreFeasible) {
  Topology topo = Topology::ring(4);
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    {
      CostModel m = CostModel::link_busy(topo);
      EtfScheduler etf;
      Schedule s = etf.run_on(g, m);
      EXPECT_TRUE(is_valid_schedule(g, s))
          << "ETF " << g.name() << "\n" << test::violations_to_string(g, s);
      EXPECT_TRUE(validate_link_occupancies(topo, m.occupancies()).empty())
          << "ETF " << g.name();
    }
    {
      CostModel m = CostModel::link_busy(topo);
      DlsScheduler dls;
      Schedule s = dls.run_on(g, m);
      EXPECT_TRUE(is_valid_schedule(g, s))
          << "DLS " << g.name() << "\n" << test::violations_to_string(g, s);
      EXPECT_TRUE(validate_link_occupancies(topo, m.occupancies()).empty())
          << "DLS " << g.name();
    }
    {
      CostModel m = CostModel::link_busy(topo);
      Schedule s = heft(g, m);
      EXPECT_TRUE(is_valid_schedule(g, s))
          << "HEFT " << g.name() << "\n" << test::violations_to_string(g, s);
      EXPECT_TRUE(validate_link_occupancies(topo, m.occupancies()).empty())
          << "HEFT " << g.name();
    }
  }
}

// ---------------------------------------------------------------------------
// HeteroMachine is now a thin facade over the model.

TEST(HeteroFacade, DelegatesToCostModel) {
  HeteroMachine machine({1.0, 0.5});
  EXPECT_EQ(machine.num_procs(), 2u);
  EXPECT_EQ(machine.speed(1), 0.5);
  EXPECT_EQ(machine.exec_time(3.0, 1), 6.0);
  EXPECT_EQ(machine.mean_exec_time(2.0), 3.0);
  const CostModel& m = machine.cost_model();
  EXPECT_EQ(m.mode(), CommMode::kClique);
  EXPECT_EQ(m.exec_work(3.0, 1), machine.exec_time(3.0, 1));
}

}  // namespace
}  // namespace flb
