// Tests for the semantic schedule linter (src/analysis/lint.cpp).
//
// The heart is the *mutation self-test*: take a known-good FLB run of the
// paper example, corrupt it in one targeted way, and assert the matching
// rule fires — proving each error rule has actual detection power, not
// just that good schedules pass. A registry-wide property sweep then
// checks every algorithm's output over the seeded corpus stays
// error-free.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flb/analysis/lint.hpp"
#include "flb/core/trace.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/workloads/paper_example.hpp"
#include "test_support.hpp"

namespace {

using namespace flb;
using namespace flb::analysis;

bool has_rule(const LintReport& report, const std::string& rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string rules_of(const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.rule;
    out += ' ';
  }
  return out.empty() ? "(none)" : out;
}

Schedule schedule_from_rows(const std::vector<FlbTraceRow>& rows,
                            ProcId procs, TaskId num_tasks) {
  Schedule s(procs, num_tasks);
  for (const FlbTraceRow& row : rows)
    s.assign(row.task, row.proc, row.start, row.finish);
  return s;
}

/// A known-good FLB run of the paper example on 2 processors: the graph,
/// the trace and the schedule the trace reproduces.
struct PaperRun {
  TaskGraph g = paper_example_graph();
  std::vector<FlbTraceRow> rows = trace_flb(g, 2);
  Schedule s = schedule_from_rows(rows, 2, g.num_tasks());
  platform::CostModel model = platform::CostModel::clique(2);
};

// --- Clean runs lint clean -------------------------------------------------

TEST(Lint, PaperExampleIsClean) {
  PaperRun run;
  const LintReport report = lint_flb(run.g, run.s, run.rows, run.model);
  EXPECT_EQ(report.errors(), 0u) << rules_of(report);
  EXPECT_EQ(report.warnings(), 0u) << rules_of(report);
  // The info-tier makespan summary is always present for a complete
  // schedule, so the report is clean but not empty.
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(has_rule(report, "makespan-lower-bound"));
  EXPECT_EQ(report.max_severity(), Severity::kInfo);
}

TEST(Lint, TheoremTierExercisesEpAndNonEpRows) {
  // The paper run must contain both classifications, or the clean result
  // above would be vacuous for one of the two EP branches.
  PaperRun run;
  bool any_ep = false, any_non_ep = false;
  for (const FlbTraceRow& row : run.rows)
    (row.ep_type ? any_ep : any_non_ep) = true;
  EXPECT_TRUE(any_ep);
  EXPECT_TRUE(any_non_ep);
}

// --- Mutation self-test: each error rule must fire -------------------------

TEST(LintMutation, FlippedEpFlagTripsEpClassification) {
  PaperRun run;
  // Flip the classification bit of the last row (t7, EP-type in Table 1)
  // without touching the placement: LMT >= PRT(EP) still holds, so the
  // claimed non-EP contradicts the appendix theorem.
  ASSERT_TRUE(run.rows.back().ep_type) << "Table 1: t7 is EP-type";
  run.rows.back().ep_type = false;
  const LintReport report = lint_flb(run.g, run.s, run.rows, run.model);
  EXPECT_TRUE(has_rule(report, "ep-classification")) << rules_of(report);
}

TEST(LintMutation, SwappedPlacementTripsEpClassification) {
  PaperRun run;
  // Move the final EP-type task off its enabling processor (consistently
  // in trace and schedule, into a free slot so only the *semantic* rule
  // can object).
  FlbTraceRow& last = run.rows.back();
  ASSERT_TRUE(last.ep_type);
  const Cost duration = last.finish - last.start;
  const ProcId other = last.proc == 0 ? 1 : 0;
  const Cost slot = run.s.earliest_gap(other, last.start, duration);
  last.proc = other;
  last.start = slot;
  last.finish = slot + duration;
  const Schedule mutated =
      schedule_from_rows(run.rows, 2, run.g.num_tasks());
  const LintReport report =
      lint_flb(run.g, mutated, run.rows, run.model);
  EXPECT_TRUE(has_rule(report, "ep-classification")) << rules_of(report);
  // The mutation was applied consistently, so the consistency rule must
  // NOT fire — this is a semantic violation, not a bookkeeping one.
  EXPECT_FALSE(has_rule(report, "trace-schedule-consistency"))
      << rules_of(report);
}

TEST(LintMutation, DelayedStartTripsEtfConformance) {
  PaperRun run;
  // Delay the last task (consistently in trace and schedule): at that
  // step the delayed task itself could start earlier, violating the ETF
  // criterion.
  FlbTraceRow& last = run.rows.back();
  const Cost duration = last.finish - last.start;
  last.start += 5.0;
  last.finish = last.start + duration;
  const Schedule mutated =
      schedule_from_rows(run.rows, 2, run.g.num_tasks());
  const LintReport report =
      lint_flb(run.g, mutated, run.rows, run.model);
  EXPECT_TRUE(has_rule(report, "etf-conformance")) << rules_of(report);
  EXPECT_FALSE(has_rule(report, "trace-schedule-consistency"))
      << rules_of(report);
}

TEST(LintMutation, ReorderedRowsTripPrtMonotone) {
  // Two independent tasks on one processor: swapping their trace rows
  // keeps precedence valid and leaves the schedule unchanged (same
  // placements, order-free), but the replayed second row now starts
  // before the processor is free.
  TaskGraphBuilder b;
  const TaskId a = b.add_task(2);
  const TaskId c = b.add_task(3);
  (void)a;
  (void)c;
  const TaskGraph g = std::move(b).build();
  std::vector<FlbTraceRow> rows = trace_flb(g, 1);
  ASSERT_EQ(rows.size(), 2u);
  std::swap(rows[0], rows[1]);
  const Schedule s = schedule_from_rows(rows, 1, g.num_tasks());
  const LintReport report =
      lint_flb(g, s, rows, platform::CostModel::clique(1));
  EXPECT_TRUE(has_rule(report, "prt-monotone")) << rules_of(report);
}

TEST(LintMutation, TamperedScheduleTripsConsistency) {
  PaperRun run;
  // Rebuild the schedule with the last task shifted, leaving the trace
  // untouched: the trace no longer reproduces the schedule bit-for-bit.
  std::vector<FlbTraceRow> shifted = run.rows;
  shifted.back().start += 1.0;
  shifted.back().finish += 1.0;
  const Schedule tampered =
      schedule_from_rows(shifted, 2, run.g.num_tasks());
  const LintReport report =
      lint_flb(run.g, tampered, run.rows, run.model);
  EXPECT_TRUE(has_rule(report, "trace-schedule-consistency"))
      << rules_of(report);
}

TEST(LintMutation, PrecedenceRespectingRowOrderIsEnforced) {
  PaperRun run;
  // Moving the first row (an entry task) to the end keeps the schedule
  // identical but makes successors replay before their predecessor — an
  // invalid execution order.
  std::rotate(run.rows.begin(), run.rows.begin() + 1, run.rows.end());
  const LintReport report = lint_flb(run.g, run.s, run.rows, run.model);
  EXPECT_TRUE(has_rule(report, "trace-schedule-consistency"))
      << rules_of(report);
}

// --- Feasibility tier (validator lift) -------------------------------------

TEST(LintFeasibility, UnscheduledTaskAndWrongDurationAndPrecedence) {
  const TaskGraph g = test::small_diamond();  // a->b, a->c, b->d, c->d
  const platform::CostModel model = platform::CostModel::clique(2);

  Schedule partial(2, g.num_tasks());
  partial.assign(0, 0, 0.0, 1.0);
  const LintReport r1 = lint_schedule(g, partial, model);
  EXPECT_TRUE(has_rule(r1, "unscheduled-task")) << rules_of(r1);

  Schedule padded(2, g.num_tasks());
  padded.assign(0, 0, 0.0, 2.5);  // comp(a) = 1: duration is wrong
  const LintReport r2 = lint_schedule(g, padded, model);
  EXPECT_TRUE(has_rule(r2, "wrong-duration")) << rules_of(r2);

  Schedule eager(2, g.num_tasks());
  eager.assign(0, 0, 0.0, 1.0);
  eager.assign(1, 1, 0.0, 3.0);  // b needs a's data: arrival 1 + 2 = 3
  const LintReport r3 = lint_schedule(g, eager, model);
  EXPECT_TRUE(has_rule(r3, "precedence")) << rules_of(r3);
}

// --- Quality tier ----------------------------------------------------------

// --- Partitioned-link rule (armed by LintOptions::faults) -------------------

TEST(LintPartition, FlagsSendsAcrossTheCutAndHonorsTheSendInstant) {
  // Producer on p0 finishes at 1.0 and feeds a consumer on p1: the message
  // leaves at exactly t = 1.
  TaskGraphBuilder b;
  const TaskId producer = b.add_task(1.0);
  const TaskId consumer = b.add_task(1.0);
  b.add_edge(producer, consumer, 4.0);
  const TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(producer, 0, 0.0, 1.0);
  s.assign(consumer, 1, 5.0, 6.0);
  ASSERT_TRUE(is_valid_schedule(g, s));
  const platform::CostModel model = platform::CostModel::clique(2);

  // A cut covering the send instant fires the error rule.
  FaultPlan covering;
  PartitionFault cut;
  cut.proc_a = 0;
  cut.proc_b = 1;
  cut.time = 1.0;
  cut.until = 2.0;
  covering.partitions.push_back(cut);
  LintOptions options;
  options.faults = &covering;
  const LintReport hit = lint_schedule(g, s, model, options);
  EXPECT_TRUE(has_rule(hit, "partitioned-link")) << rules_of(hit);
  EXPECT_GE(hit.errors(), 1u);

  // The outage window is half-open: a cut that heals exactly at the send
  // instant no longer owns it, so the schedule lints clean.
  FaultPlan healed;
  cut.time = 0.0;
  cut.until = 1.0;
  healed.partitions.push_back(cut);
  LintOptions ok;
  ok.faults = &healed;
  const LintReport clean = lint_schedule(g, s, model, ok);
  EXPECT_FALSE(has_rule(clean, "partitioned-link")) << rules_of(clean);
  EXPECT_EQ(clean.errors(), 0u);
}

TEST(LintPartition, PaperScheduleTripsOnATotalCutAndPassesALateOne) {
  PaperRun run;
  FaultPlan total;
  PartitionFault cut;
  cut.proc_a = 0;
  cut.proc_b = 1;
  cut.time = 0.0;  // permanent: every remote message crosses the cut
  total.partitions.push_back(cut);
  LintOptions options;
  options.faults = &total;
  const LintReport hit = lint_flb(run.g, run.s, run.rows, run.model, options);
  EXPECT_TRUE(has_rule(hit, "partitioned-link")) << rules_of(hit);

  // A cut opening only after the schedule drains (makespan 14) is inert —
  // and a plan with no partitions at all never arms the rule.
  FaultPlan late;
  cut.time = 20.0;
  cut.until = 30.0;
  late.partitions.push_back(cut);
  LintOptions ok;
  ok.faults = &late;
  const LintReport clean =
      lint_flb(run.g, run.s, run.rows, run.model, ok);
  EXPECT_FALSE(has_rule(clean, "partitioned-link")) << rules_of(clean);
  EXPECT_EQ(clean.errors(), 0u);
}

TEST(LintQuality, IdleGapWarnsAndCanBeDisabled) {
  TaskGraphBuilder b;
  (void)b.add_task(1);
  const TaskGraph g = std::move(b).build();
  Schedule s(1, 1);
  s.assign(0, 0, 5.0, 6.0);  // legal, but the processor idled 5 units
  const platform::CostModel model = platform::CostModel::clique(1);
  const LintReport report = lint_schedule(g, s, model);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(has_rule(report, "idle-gap")) << rules_of(report);
  EXPECT_EQ(report.max_severity(), Severity::kWarn);

  LintOptions quiet;
  quiet.quality = false;
  EXPECT_TRUE(lint_schedule(g, s, model, quiet).diagnostics.empty());
}

TEST(LintQuality, RemotePlacementWarnsWhenLocalSlotDominates) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  const TaskId c = b.add_task(1);
  b.add_edge(a, c, 2);
  const TaskGraph g = std::move(b).build();
  Schedule s(2, g.num_tasks());
  s.assign(a, 0, 0.0, 1.0);
  s.assign(c, 1, 3.0, 4.0);  // remote: pays comm 2; p0 was free from 1
  const LintReport report =
      lint_schedule(g, s, platform::CostModel::clique(2));
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(has_rule(report, "remote-placement")) << rules_of(report);
}

// --- Registry-wide property test -------------------------------------------

TEST(LintProperty, EveryRegistryAlgorithmLintsCleanOnSeededCorpus) {
  const std::vector<std::string> algos = extended_scheduler_names();
  for (std::size_t index = 0; index < 20; ++index) {
    const TaskGraph g = test::fuzz_graph(index);
    for (ProcId procs : {ProcId{2}, ProcId{4}, ProcId{8}}) {
      const platform::CostModel model = platform::CostModel::clique(procs);
      for (const std::string& algo : algos) {
        const Schedule s = make_scheduler(algo)->run(g, procs);
        ASSERT_TRUE(validate_schedule(g, s).empty())
            << algo << " infeasible on graph " << index << " P=" << procs
            << "\n" << test::violations_to_string(g, s);
        const LintReport report = lint_schedule(g, s, model);
        EXPECT_TRUE(report.clean())
            << algo << " on graph " << index << " P=" << procs << ": "
            << rules_of(report);
      }
      // FLB additionally passes the full theorem tier on its own trace.
      const std::vector<FlbTraceRow> rows = trace_flb(g, procs);
      const Schedule s = schedule_from_rows(rows, procs, g.num_tasks());
      const LintReport report = lint_flb(g, s, rows, model);
      EXPECT_TRUE(report.clean())
          << "FLB theorem tier on graph " << index << " P=" << procs
          << ": " << rules_of(report);
    }
  }
}

// The same registry sweep through the online-repair path: kill a processor
// mid-execution, repair the partial run, and lint the *continuation*
// against its stretched duration vector. This is the feasibility gate the
// recovery controller re-checks on every installed schedule — a repair
// regression (overlap, precedence breach, wrong remainder duration) fails
// here before it ever reaches the runtime loop.
TEST(LintProperty, EveryRepairedContinuationLintsFeasibleOnSeededCorpus) {
  const std::vector<std::string> algos = extended_scheduler_names();
  LintOptions options;
  options.quality = false;  // degraded durations invalidate nominal heuristics
  for (std::size_t index = 0; index < 12; ++index) {
    const TaskGraph g = test::fuzz_graph(index);
    for (ProcId procs : {ProcId{2}, ProcId{4}}) {
      const platform::CostModel model = platform::CostModel::clique(procs);
      for (const std::string& algo : algos) {
        const Schedule nominal = make_scheduler(algo)->run(g, procs);
        FaultPlan plan =
            FaultPlan::single_failure(1, 0.35 * nominal.makespan());
        SimOptions sim_options;
        sim_options.faults = &plan;
        const SimResult partial = simulate(g, nominal, sim_options);
        const RepairResult repair =
            repair_schedule(g, nominal, partial, plan);
        const LintReport report = lint_schedule(
            g, repair.schedule, repair.durations, model, options);
        EXPECT_TRUE(report.clean())
            << algo << " continuation on graph " << index << " P=" << procs
            << ": " << rules_of(report);
      }
    }
  }
}

// --- Reporting surfaces ----------------------------------------------------

TEST(LintReporting, CatalogueCoversEveryEmittedRule) {
  std::set<std::string> known;
  for (const RuleInfo& r : rule_catalogue()) known.insert(r.id);
  EXPECT_EQ(known.size(), rule_catalogue().size()) << "duplicate rule id";

  // Collect rule ids from a pile of reports covering all three tiers.
  PaperRun run;
  std::vector<FlbTraceRow> broken = run.rows;
  std::rotate(broken.begin(), broken.begin() + 1, broken.end());
  broken.back().ep_type = !broken.back().ep_type;
  for (const LintReport& report :
       {lint_flb(run.g, run.s, run.rows, run.model),
        lint_flb(run.g, run.s, broken, run.model)}) {
    for (const Diagnostic& d : report.diagnostics)
      EXPECT_TRUE(known.count(d.rule)) << "uncatalogued rule " << d.rule;
  }
}

TEST(LintReporting, HumanAndJsonOutputs) {
  PaperRun run;
  const LintReport report = lint_flb(run.g, run.s, run.rows, run.model);

  std::ostringstream human;
  write_report(human, report);
  EXPECT_NE(human.str().find("makespan-lower-bound"), std::string::npos);
  EXPECT_NE(human.str().find("0 error(s)"), std::string::npos);

  std::ostringstream json;
  write_report_json(json, report);
  EXPECT_NE(json.str().find("\"max_severity\":\"info\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"counts\":{\"error\":0"), std::string::npos);

  EXPECT_STREQ(to_string(Severity::kError), "error");
  EXPECT_STREQ(to_string(Severity::kWarn), "warn");
  EXPECT_STREQ(to_string(Severity::kInfo), "info");
}

}  // namespace
