#include "flb/algos/etf.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// Naive reference ETF: recomputes every quantity from scratch with the
// shared tentative helpers each iteration — O(W * P * in-degree) per step.
// The production EtfScheduler must match it placement for placement.
Schedule reference_etf(const TaskGraph& g, ProcId procs) {
  Schedule s(procs, g.num_tasks());
  std::vector<Cost> bl = bottom_levels(g);
  while (!s.complete()) {
    TaskId best_t = kInvalidTask;
    ProcId best_p = 0;
    Cost best_est = kInfiniteTime;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (!is_ready(g, s, t)) continue;
      for (ProcId p = 0; p < procs; ++p) {
        Cost est = est_start(g, s, t, p);
        bool better = est < best_est;
        if (!better && est == best_est && best_t != kInvalidTask) {
          better = bl[t] > bl[best_t] ||
                   (bl[t] == bl[best_t] &&
                    (t < best_t || (t == best_t && p < best_p)));
        }
        if (better) {
          best_est = est;
          best_t = t;
          best_p = p;
        }
      }
    }
    s.assign(best_t, best_p, best_est, best_est + g.comp(best_t));
  }
  return s;
}

TEST(Etf, MatchesNaiveReferenceOnFuzzCorpus) {
  for (std::size_t i = 0; i < 20; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {2u, 4u}) {
      EtfScheduler etf;
      Schedule fast = etf.run(g, procs);
      Schedule ref = reference_etf(g, procs);
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_EQ(fast.proc(t), ref.proc(t))
            << g.name() << " P=" << procs << " task " << t;
        ASSERT_DOUBLE_EQ(fast.start(t), ref.start(t))
            << g.name() << " P=" << procs << " task " << t;
      }
    }
  }
}

TEST(Etf, ValidOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 9;
    TaskGraph g = make_workload(name, 300, params);
    EtfScheduler etf;
    Schedule s = etf.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
    EXPECT_GE(s.makespan(), makespan_lower_bound(g, 4) - 1e-9);
  }
}

TEST(Etf, SingleProcessorPacksSequentially) {
  TaskGraph g = test::fuzz_graph(1);
  EtfScheduler etf;
  Schedule s = etf.run(g, 1);
  EXPECT_TRUE(is_valid_schedule(g, s));
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

TEST(Etf, SchedulesEarliestStartingTaskEachIteration) {
  // Re-run the selection property directly: each assignment's start equals
  // the global minimum over (ready task, processor) at that moment.
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    EtfScheduler etf;
    Schedule full = etf.run(g, 3);
    // Replay in start order, checking optimality against a growing partial
    // schedule.
    std::vector<TaskId> order(g.num_tasks());
    for (TaskId t = 0; t < g.num_tasks(); ++t) order[t] = t;
    std::stable_sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return full.start(a) < full.start(b);
    });
    // Cannot always reconstruct ETF's exact iteration sequence from start
    // times alone (equal starts), so only check the first decision plus
    // validity, and the stronger per-step check lives in Theorem 3's FLB
    // test where instrumentation exists.
    Schedule empty(3, g.num_tasks());
    Cost best = kInfiniteTime;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (!is_ready(g, empty, t)) continue;
      best = std::min(best, best_proc_exhaustive(g, empty, t).second);
    }
    EXPECT_DOUBLE_EQ(full.start(order.front()), best);
  }
}

TEST(Etf, DeterministicAcrossRuns) {
  TaskGraph g = make_workload("LU", 200, {});
  EtfScheduler etf;
  Schedule a = etf.run(g, 4);
  Schedule b = etf.run(g, 4);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(a.proc(t), b.proc(t));
}

TEST(Etf, RejectsZeroProcessors) {
  EtfScheduler etf;
  TaskGraph g = test::small_diamond();
  EXPECT_THROW((void)etf.run(g, 0), Error);
}

}  // namespace
}  // namespace flb
