// Tests for interconnect topologies and topology-aware schedule execution.

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- Topology construction and routing -----------------------------------------

TEST(Topology, CliqueShape) {
  Topology t = Topology::clique(5);
  EXPECT_EQ(t.num_nodes(), 5u);
  EXPECT_EQ(t.num_links(), 10u);
  EXPECT_EQ(t.diameter(), 1u);
  EXPECT_EQ(t.hops(0, 4), 1u);
  EXPECT_EQ(t.hops(2, 2), 0u);
  EXPECT_EQ(t.route(1, 3).size(), 1u);
  EXPECT_TRUE(t.route(2, 2).empty());
}

TEST(Topology, RingShape) {
  Topology t = Topology::ring(6);
  EXPECT_EQ(t.num_links(), 6u);
  EXPECT_EQ(t.diameter(), 3u);
  EXPECT_EQ(t.hops(0, 3), 3u);
  EXPECT_EQ(t.hops(0, 5), 1u);  // wraparound link
  EXPECT_EQ(t.route(0, 2).size(), 2u);
}

TEST(Topology, TinyRings) {
  EXPECT_EQ(Topology::ring(1).num_links(), 0u);
  EXPECT_EQ(Topology::ring(2).num_links(), 1u);
  EXPECT_EQ(Topology::ring(3).num_links(), 3u);
}

TEST(Topology, Mesh2dShape) {
  Topology t = Topology::mesh2d(3, 4);
  EXPECT_EQ(t.num_nodes(), 12u);
  // links: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(t.num_links(), 17u);
  // Manhattan distance: (0,0) -> (2,3) = 5 hops.
  EXPECT_EQ(t.hops(0, 11), 5u);
  EXPECT_EQ(t.diameter(), 5u);
}

TEST(Topology, Torus2dShape) {
  Topology t = Topology::torus2d(3, 3);
  EXPECT_EQ(t.num_nodes(), 9u);
  // Mesh links (3*2 horizontal + 2*3 vertical = 12) plus one wraparound
  // per row and per column.
  EXPECT_EQ(t.num_links(), 18u);
  EXPECT_EQ(t.hops(0, 2), 1u);  // row wraparound beats the 2-hop mesh path
  EXPECT_EQ(t.hops(0, 6), 1u);  // column wraparound
  EXPECT_EQ(t.diameter(), 2u);

  // Dimensions of size <= 2 add no duplicate wrap links: a 2x2 torus is
  // exactly the 2x2 mesh (a 4-cycle).
  EXPECT_EQ(Topology::torus2d(2, 2).num_links(),
            Topology::mesh2d(2, 2).num_links());
  // A 1xN torus degenerates to a ring.
  EXPECT_EQ(Topology::torus2d(1, 5).num_links(), Topology::ring(5).num_links());
  EXPECT_EQ(Topology::torus2d(1, 5).diameter(), Topology::ring(5).diameter());
}

TEST(Topology, StarShape) {
  Topology t = Topology::star(6);
  EXPECT_EQ(t.num_links(), 5u);
  EXPECT_EQ(t.diameter(), 2u);
  EXPECT_EQ(t.hops(1, 2), 2u);   // leaf -> hub -> leaf
  EXPECT_EQ(t.hops(0, 3), 1u);
  auto r = t.route(1, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(t.link(r[0]), (std::pair<ProcId, ProcId>(0, 1)));
  EXPECT_EQ(t.link(r[1]), (std::pair<ProcId, ProcId>(0, 2)));
}

TEST(Topology, RoutesAreConsistentWithHopCounts) {
  Topology t = Topology::mesh2d(3, 3);
  for (ProcId a = 0; a < 9; ++a)
    for (ProcId b = 0; b < 9; ++b)
      EXPECT_EQ(t.route(a, b).size(), t.hops(a, b)) << a << "->" << b;
}

TEST(Topology, FromLinksDeduplicatesAndValidates) {
  Topology t = Topology::from_links(3, {{0, 1}, {1, 0}, {1, 2}});
  EXPECT_EQ(t.num_links(), 2u);
  EXPECT_THROW(Topology::from_links(3, {{0, 5}}), Error);
  EXPECT_THROW(Topology::from_links(3, {{1, 1}}), Error);
  // Disconnected network rejected.
  EXPECT_THROW(Topology::from_links(4, {{0, 1}, {2, 3}}), Error);
}

// --- Topology-aware execution ----------------------------------------------------

TEST(TopologySim, CliqueMatchesDedicatedLinkExpectations) {
  // Root fans out to 3 children on distinct processors: on a clique every
  // pair has its own link, so all messages travel in parallel — identical
  // to the contention-free model.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);
  Schedule s(4, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 1, 5.0, 6.0);
  s.assign(2, 2, 5.0, 6.0);
  s.assign(3, 3, 5.0, 6.0);
  TopologySimResult r =
      simulate_on_topology(g, s, Topology::clique(4));
  EXPECT_DOUBLE_EQ(r.sim.makespan, 6.0);
  EXPECT_EQ(r.total_hops, 3u);
  EXPECT_DOUBLE_EQ(r.max_link_busy, 4.0);
  EXPECT_DOUBLE_EQ(r.total_link_busy, 12.0);
}

TEST(TopologySim, StarHubSerializesEverything) {
  // Same fan-out on a star rooted elsewhere: all three messages cross a
  // hub link; the three transfers into the hub share no link (0-1, 0-2,
  // 0-3 are distinct star links when the producer sits on the hub)...
  // place the producer on leaf 1 instead so every message first crosses
  // link (0,1), which then serializes them.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 4.0;
  TaskGraph g = out_tree_graph(2, 3, p);
  Schedule s(4, 4);
  s.assign(0, 1, 0.0, 1.0);   // producer on leaf 1
  s.assign(1, 0, 5.0, 6.0);   // hub: 1 hop
  s.assign(2, 2, 9.0, 10.0);  // leaf: 2 hops
  s.assign(3, 3, 9.0, 10.0);
  TopologySimResult r = simulate_on_topology(g, s, Topology::star(4));
  // Link (0,1) carries three 4-unit transfers starting at 1: busy till 13;
  // the last message then hops to its leaf.
  EXPECT_DOUBLE_EQ(r.max_link_busy, 12.0);
  EXPECT_GE(r.sim.makespan, 13.0 + 4.0);  // last arrival >= 17
  EXPECT_EQ(r.total_hops, 1u + 2u + 2u);
}

TEST(TopologySim, CliqueNeverFasterThanSparseTopologies) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    const ProcId procs = 4;
    Schedule s = flb.run(g, procs);
    Cost clique =
        simulate_on_topology(g, s, Topology::clique(procs)).sim.makespan;
    Cost ring =
        simulate_on_topology(g, s, Topology::ring(procs)).sim.makespan;
    Cost star =
        simulate_on_topology(g, s, Topology::star(procs)).sim.makespan;
    Cost mesh =
        simulate_on_topology(g, s, Topology::mesh2d(2, 2)).sim.makespan;
    EXPECT_LE(clique, ring + 1e-9) << g.name();
    EXPECT_LE(clique, star + 1e-9) << g.name();
    EXPECT_LE(clique, mesh + 1e-9) << g.name();
  }
}

TEST(TopologySim, CliqueLowerBoundedByContentionFreeModel) {
  // Clique links are dedicated per pair but still serialize repeated
  // messages between the same pair, so the clique simulation can never
  // beat the paper's contention-free model.
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 3);
    Cost free = simulate(g, s).makespan;
    Cost clique =
        simulate_on_topology(g, s, Topology::clique(3)).sim.makespan;
    EXPECT_GE(clique, free - 1e-9) << g.name();
  }
}

TEST(TopologySim, SingleNodeRunsSequentially) {
  TaskGraph g = test::fuzz_graph(4);
  FlbScheduler flb;
  Schedule s = flb.run(g, 1);
  TopologySimResult r = simulate_on_topology(g, s, Topology::clique(1));
  EXPECT_NEAR(r.sim.makespan, g.total_comp(), 1e-9);
  EXPECT_EQ(r.total_hops, 0u);
}

TEST(TopologySim, RejectsMismatchedSizes) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  EXPECT_THROW((void)simulate_on_topology(g, s, Topology::clique(3)), Error);
}

TEST(TopologySim, WorkOverrideReplacesDurations) {
  // Replaying with per-task overrides (the repair-replay recipe): each
  // task runs for exactly its override; kUndefinedTime keeps the graph's
  // weight.
  TaskGraph g = test::fuzz_graph(5);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  std::vector<Cost> override_work(g.num_tasks(), kUndefinedTime);
  override_work[0] = g.comp(0) * 0.5;
  override_work[1] = 0.0;
  TopologySimResult r = simulate_on_topology(g, s, Topology::ring(3), 1.0,
                                             &override_work);
  ASSERT_TRUE(r.sim.complete());
  EXPECT_NEAR(r.sim.finish[0] - r.sim.start[0], g.comp(0) * 0.5, 1e-9);
  EXPECT_NEAR(r.sim.finish[1] - r.sim.start[1], 0.0, 1e-9);
  for (TaskId t = 2; t < g.num_tasks(); ++t)
    EXPECT_NEAR(r.sim.finish[t] - r.sim.start[t], g.comp(t), 1e-9)
        << g.name();

  // A wrong-sized override is rejected.
  std::vector<Cost> wrong(g.num_tasks() + 1, kUndefinedTime);
  EXPECT_THROW(
      (void)simulate_on_topology(g, s, Topology::ring(3), 1.0, &wrong),
      Error);
}

// --- Weight perturbation -----------------------------------------------------------

TEST(PerturbWeights, PreservesStructure) {
  TaskGraph g = test::fuzz_graph(2);
  TaskGraph h = perturb_weights(g, 0.3, 7);
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  auto ge = g.edges(), he = h.edges();
  for (std::size_t i = 0; i < ge.size(); ++i) {
    EXPECT_EQ(he[i].from, ge[i].from);
    EXPECT_EQ(he[i].to, ge[i].to);
    EXPECT_GE(he[i].comm, ge[i].comm * 0.7 - 1e-12);
    EXPECT_LE(he[i].comm, ge[i].comm * 1.3 + 1e-12);
  }
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_GE(h.comp(t), g.comp(t) * 0.7 - 1e-12);
    EXPECT_LE(h.comp(t), g.comp(t) * 1.3 + 1e-12);
  }
}

TEST(PerturbWeights, ZeroSpreadIsIdentity) {
  TaskGraph g = test::fuzz_graph(3);
  TaskGraph h = perturb_weights(g, 0.0, 9);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_DOUBLE_EQ(h.comp(t), g.comp(t));
}

TEST(PerturbWeights, SeededAndValidated) {
  TaskGraph g = test::fuzz_graph(1);
  TaskGraph a = perturb_weights(g, 0.5, 11);
  TaskGraph b = perturb_weights(g, 0.5, 11);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_DOUBLE_EQ(a.comp(t), b.comp(t));
  EXPECT_THROW((void)perturb_weights(g, 1.0, 1), Error);
  EXPECT_THROW((void)perturb_weights(g, -0.1, 1), Error);
}

TEST(PerturbWeights, NominalScheduleReexecutesOnPerturbedGraph) {
  // The robustness-study recipe: schedule with nominal weights, execute
  // the same dispatch order on perturbed weights via the simulator.
  TaskGraph g = test::fuzz_graph(6);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  TaskGraph perturbed = perturb_weights(g, 0.2, 13);
  SimResult r = simulate(perturbed, s);
  EXPECT_GT(r.makespan, 0.0);
  // Every task ran exactly once with the perturbed duration.
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_NEAR(r.finish[t] - r.start[t], perturbed.comp(t), 1e-9);
}

}  // namespace
}  // namespace flb
