// Tests for graph analysis utilities (transitive edges, granularity,
// stats) and the machine-readable schedule exporters (JSON, Chrome trace).

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/graph/analysis.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/width.hpp"
#include "flb/sched/export.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- Transitive edges -------------------------------------------------------

TEST(TransitiveEdges, DiamondWithShortcut) {
  // a->b->d, a->c->d plus the shortcut a->d: only a->d is transitive.
  TaskGraphBuilder b;
  TaskId a = b.add_task(1), bb = b.add_task(1), c = b.add_task(1),
         d = b.add_task(1);
  b.add_edge(a, bb, 1);
  b.add_edge(a, c, 1);
  b.add_edge(bb, d, 1);
  b.add_edge(c, d, 1);
  b.add_edge(a, d, 7);
  TaskGraph g = std::move(b).build();

  auto redundant = transitive_edges(g);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant[0].from, a);
  EXPECT_EQ(redundant[0].to, d);
  EXPECT_DOUBLE_EQ(redundant[0].comm, 7.0);
}

TEST(TransitiveEdges, CleanGraphsHaveNone) {
  EXPECT_TRUE(transitive_edges(test::small_diamond()).empty());
  EXPECT_TRUE(transitive_edges(chain_graph(6)).empty());
  EXPECT_TRUE(transitive_edges(stencil_graph(5, 4)).empty());
}

TEST(TransitiveEdges, StripPreservesReachabilityAndCounts) {
  for (std::size_t i = 0; i < 10; ++i) {
    WorkloadParams params;
    params.seed = 700 + i;
    TaskGraph g = random_dag(25, 0.3, params);
    TaskGraph stripped = strip_transitive_edges(g);
    EXPECT_EQ(stripped.num_tasks(), g.num_tasks());
    EXPECT_EQ(stripped.num_edges(),
              g.num_edges() - transitive_edges(g).size());
    // Same reachability (precedence preserved) and no remaining
    // transitive edges (reduction is idempotent).
    Reachability ra(g), rb(stripped);
    for (TaskId u = 0; u < g.num_tasks(); ++u)
      for (TaskId v = 0; v < g.num_tasks(); ++v)
        ASSERT_EQ(ra.reaches(u, v), rb.reaches(u, v));
    EXPECT_TRUE(transitive_edges(stripped).empty());
  }
}

TEST(TransitiveEdges, ZeroCommStripKeepsCriticalPath) {
  // When stripped edges carry no communication the scheduling problem is
  // untouched; in particular the critical path is identical.
  TaskGraphBuilder b;
  TaskId a = b.add_task(2), bb = b.add_task(3), c = b.add_task(4);
  b.add_edge(a, bb, 1);
  b.add_edge(bb, c, 1);
  b.add_edge(a, c, 0);  // pure precedence shortcut
  TaskGraph g = std::move(b).build();
  TaskGraph stripped = strip_transitive_edges(g);
  EXPECT_EQ(stripped.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(critical_path(stripped), critical_path(g));
}

// --- Granularity & stats -----------------------------------------------------

TEST(Granularity, HandComputed) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 2.0;  // comp 1, comm 2 everywhere
  TaskGraph g = chain_graph(4, p);
  EXPECT_DOUBLE_EQ(granularity(g), 0.5);
  p.ccr = 0.25;
  EXPECT_DOUBLE_EQ(granularity(chain_graph(4, p)), 4.0);
}

TEST(Granularity, EdgelessIsInfinite) {
  EXPECT_EQ(granularity(independent_graph(3)), kInfiniteTime);
}

TEST(GraphStats, SmallDiamond) {
  GraphStats s = graph_stats(test::small_diamond());
  EXPECT_EQ(s.num_tasks, 4u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.max_in_degree, 2u);
  EXPECT_EQ(s.max_out_degree, 2u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 1.0);
  EXPECT_DOUBLE_EQ(s.min_comp, 1.0);
  EXPECT_DOUBLE_EQ(s.max_comp, 3.0);
  EXPECT_DOUBLE_EQ(s.min_comm, 1.0);
  EXPECT_DOUBLE_EQ(s.max_comm, 3.0);
  EXPECT_EQ(s.entry_tasks, 1u);
  EXPECT_EQ(s.exit_tasks, 1u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_DOUBLE_EQ(s.ccr, 1.0);
}

TEST(GraphStats, EmptyGraphIsAllZero) {
  TaskGraphBuilder b;
  GraphStats s = graph_stats(std::move(b).build());
  EXPECT_EQ(s.num_tasks, 0u);
  EXPECT_EQ(s.depth, 0u);
}

// --- Exporters ----------------------------------------------------------------

TEST(ExportJson, ContainsEveryTaskAndMetadata) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  std::string json = to_schedule_json(g, s);
  EXPECT_NE(json.find("\"graph\":\"small-diamond\""), std::string::npos);
  EXPECT_NE(json.find("\"procs\":2"), std::string::npos);
  EXPECT_NE(json.find("\"makespan\":"), std::string::npos);
  for (TaskId t = 0; t < 4; ++t)
    EXPECT_NE(json.find("{\"id\":" + std::to_string(t)), std::string::npos);
  // Crude structural sanity: balanced braces and brackets.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportChromeTrace, OneEventPerTaskWithProcessorTracks) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  std::string trace = to_chrome_trace(g, s);
  // One complete-event record per task.
  std::size_t events = 0, pos = 0;
  while ((pos = trace.find("\"ph\":\"X\"", pos)) != std::string::npos) {
    ++events;
    pos += 1;
  }
  EXPECT_EQ(events, g.num_tasks());
  EXPECT_EQ(trace.front(), '[');
  // Every used processor appears as a tid.
  for (ProcId p = 0; p < 3; ++p) {
    if (s.tasks_on(p).empty()) continue;
    EXPECT_NE(trace.find("\"tid\":" + std::to_string(p)),
              std::string::npos);
  }
}

TEST(ExportScheduleText, RoundTripPreservesPlacements) {
  TaskGraph g = test::fuzz_graph(5);
  FlbScheduler flb;
  Schedule s = flb.run(g, 3);
  Schedule back = schedule_from_text(to_schedule_text(s));
  ASSERT_EQ(back.num_tasks(), s.num_tasks());
  ASSERT_EQ(back.num_procs(), s.num_procs());
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(back.proc(t), s.proc(t));
    EXPECT_EQ(back.start(t), s.start(t));   // exact via %.17g
    EXPECT_EQ(back.finish(t), s.finish(t));
  }
  EXPECT_TRUE(is_valid_schedule(g, back));
}

TEST(ExportScheduleText, PartialSchedulesRoundTrip) {
  Schedule s(2, 5);
  s.assign(3, 1, 0.5, 2.5);
  Schedule back = schedule_from_text(to_schedule_text(s));
  EXPECT_EQ(back.num_scheduled(), 1u);
  EXPECT_TRUE(back.is_scheduled(3));
  EXPECT_FALSE(back.is_scheduled(0));
  EXPECT_DOUBLE_EQ(back.start(3), 0.5);
}

TEST(ExportScheduleText, RejectsMalformedInput) {
  EXPECT_THROW(schedule_from_text(""), Error);
  EXPECT_THROW(schedule_from_text("not-a-schedule 1\n"), Error);
  EXPECT_THROW(schedule_from_text("flb-schedule 1\nprocs 0\ntasks 1\n"),
               Error);
  // Overlapping assignments are rejected by Schedule::assign itself.
  EXPECT_THROW(schedule_from_text("flb-schedule 1\nprocs 1\ntasks 2\n"
                                  "a 0 0 0 2\na 1 0 1 3\n"),
               Error);
  // Out-of-range ids.
  EXPECT_THROW(schedule_from_text("flb-schedule 1\nprocs 1\ntasks 1\n"
                                  "a 5 0 0 1\n"),
               Error);
}

TEST(ExportChromeTrace, DurationsMatchSchedule) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  std::string trace = to_chrome_trace(g, s);
  // Spot-check task 0's timestamp: ts = start * 1e6.
  std::ostringstream expect;
  expect.precision(17);
  expect << "\"ts\":" << s.start(0) * 1e6;
  EXPECT_NE(trace.find(expect.str()), std::string::npos);
}

}  // namespace
}  // namespace flb
