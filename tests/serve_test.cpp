// flb::serve tests: the concurrent batch driver and streaming service must
// be byte-identical to sequential FLB at every thread count, and the serving
// digest must agree with the pinned pre-refactor goldens.

#include "flb/serve/serve.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/sched/validator.hpp"
#include "flb/workloads/paper_example.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// The batch corpus from the issue: the paper's Figure-1 example plus eight
// graphs from the deterministic fuzz registry, with varied processor counts.
struct Corpus {
  std::vector<TaskGraph> graphs;
  std::vector<ProcId> procs;
};

Corpus make_corpus() {
  Corpus c;
  c.graphs.push_back(paper_example_graph());
  c.procs.push_back(2);
  for (std::size_t i = 0; i < 8; ++i) {
    c.graphs.push_back(test::fuzz_graph(i));
    c.procs.push_back(static_cast<ProcId>(2 + (i % 3) * 3));  // 2, 5, 8
  }
  return c;
}

std::vector<std::uint64_t> sequential_digests(const Corpus& c) {
  std::vector<std::uint64_t> out;
  FlbScheduler flb;
  for (std::size_t i = 0; i < c.graphs.size(); ++i)
    out.push_back(serve::schedule_digest(flb.run(c.graphs[i], c.procs[i])));
  return out;
}

TEST(ServeDigestTest, PaperExampleMatchesPinnedGolden) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  // Same golden as the clique row in tests/platform_test.cpp: the serving
  // digest is the same FNV-1a arithmetic, so pre-refactor goldens carry.
  EXPECT_EQ(serve::schedule_digest(s), 5113259804641662334ull);
}

TEST(ServeDigestTest, RunIntoIsBitIdenticalToRun) {
  FlbScheduler flb;
  Schedule buffer(1, 0);
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    const ProcId p = static_cast<ProcId>(2 + i % 4);
    const std::uint64_t fresh = serve::schedule_digest(flb.run(g, p));
    flb.run_into(g, p, buffer);
    EXPECT_EQ(serve::schedule_digest(buffer), fresh) << "graph " << i;
    // A second run into the warm buffer must reproduce it exactly.
    flb.run_into(g, p, buffer);
    EXPECT_EQ(serve::schedule_digest(buffer), fresh) << "graph " << i;
  }
}

TEST(BatchDeterminismTest, BatchEqualsSequentialAtEveryThreadCount) {
  const Corpus c = make_corpus();
  const std::vector<std::uint64_t> expected = sequential_digests(c);

  std::vector<serve::ScheduleRequest> requests;
  for (std::size_t i = 0; i < c.graphs.size(); ++i)
    requests.push_back({&c.graphs[i], c.procs[i]});

  for (std::size_t threads : {1u, 2u, 8u}) {
    serve::BatchOptions opts;
    opts.num_threads = threads;
    std::vector<serve::ScheduleResult> results =
        serve::schedule_batch(requests, opts);
    ASSERT_EQ(results.size(), expected.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].digest, expected[i])
          << "request " << i << " diverged at " << threads << " threads";
      EXPECT_GT(results[i].makespan, 0.0);
      EXPECT_FALSE(results[i].schedule.has_value());
    }
  }
}

TEST(BatchDeterminismTest, KeepSchedulesReturnsValidSchedules) {
  const Corpus c = make_corpus();
  std::vector<serve::ScheduleRequest> requests;
  for (std::size_t i = 0; i < c.graphs.size(); ++i)
    requests.push_back({&c.graphs[i], c.procs[i]});

  serve::BatchOptions opts;
  opts.num_threads = 2;
  opts.keep_schedules = true;
  std::vector<serve::ScheduleResult> results =
      serve::schedule_batch(requests, opts);
  ASSERT_EQ(results.size(), requests.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].schedule.has_value());
    const Schedule& s = *results[i].schedule;
    EXPECT_EQ(serve::schedule_digest(s), results[i].digest);
    EXPECT_EQ(s.makespan(), results[i].makespan);
    EXPECT_TRUE(validate_schedule(c.graphs[i], s).empty())
        << test::violations_to_string(c.graphs[i], s);
  }
}

TEST(BatchDeterminismTest, EmptyBatchIsFine) {
  std::vector<serve::ScheduleRequest> requests;
  EXPECT_TRUE(serve::schedule_batch(requests).empty());
}

TEST(ScheduleServiceTest, DrainCompletesEverythingIdentically) {
  const Corpus c = make_corpus();
  const std::vector<std::uint64_t> expected = sequential_digests(c);

  serve::ScheduleService::Options opts;
  opts.num_threads = 4;
  serve::ScheduleService service(opts);
  for (std::size_t i = 0; i < c.graphs.size(); ++i)
    EXPECT_EQ(service.submit(c.graphs[i], c.procs[i]), i);
  service.drain();

  serve::ServiceStats st = service.stats();
  EXPECT_EQ(st.submitted, c.graphs.size());
  EXPECT_EQ(st.completed, c.graphs.size());
  ASSERT_EQ(service.size(), c.graphs.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(service.result(i).digest, expected[i]) << "request " << i;
    EXPECT_GE(service.result(i).latency_ms, service.result(i).run_ms);
  }
  service.close();
}

TEST(ScheduleServiceTest, TinyQueueEngagesBackpressure) {
  // One slow worker, capacity-1 queue, a burst of submissions: the producer
  // must block at least once (submitting is orders of magnitude faster than
  // scheduling a ~100-task graph).
  std::vector<TaskGraph> graphs;
  for (std::size_t i = 0; i < 10; ++i) {
    WorkloadParams params;
    params.seed = 42 + i;
    graphs.push_back(random_dag(120, 0.2, params));
  }
  serve::ScheduleService::Options opts;
  opts.num_threads = 1;
  opts.queue_capacity = 1;
  serve::ScheduleService service(opts);
  for (const TaskGraph& g : graphs) (void)service.submit(g, 4);
  service.drain();
  serve::ServiceStats st = service.stats();
  EXPECT_EQ(st.completed, graphs.size());
  EXPECT_GT(st.backpressure_waits, 0u);
  service.close();
}

TEST(ScheduleServiceTest, CloseIsIdempotentAndDrains) {
  TaskGraph g = test::fuzz_graph(3);
  serve::ScheduleService::Options opts;
  opts.num_threads = 2;
  serve::ScheduleService service(opts);
  (void)service.submit(g, 4);
  (void)service.submit(g, 4);
  service.close();
  service.close();  // must be a no-op
  EXPECT_EQ(service.stats().completed, 2u);
  EXPECT_EQ(service.result(0).digest, service.result(1).digest);
}

TEST(ScheduleServiceTest, KeepSchedulesOption) {
  TaskGraph g = paper_example_graph();
  serve::ScheduleService::Options opts;
  opts.num_threads = 1;
  opts.keep_schedules = true;
  serve::ScheduleService service(opts);
  (void)service.submit(g, 2);
  service.drain();
  ASSERT_TRUE(service.result(0).schedule.has_value());
  EXPECT_EQ(serve::schedule_digest(*service.result(0).schedule),
            5113259804641662334ull);
  service.close();
}

}  // namespace
}  // namespace flb
