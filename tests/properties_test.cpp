#include "flb/graph/properties.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// Checks that `order` is a valid topological order of g.
void expect_topological(const TaskGraph& g, const std::vector<TaskId>& order) {
  ASSERT_EQ(order.size(), g.num_tasks());
  std::vector<std::size_t> pos(g.num_tasks());
  std::set<TaskId> seen;
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[order[i]] = i;
    EXPECT_TRUE(seen.insert(order[i]).second) << "duplicate in order";
  }
  for (const Edge& e : g.edges())
    EXPECT_LT(pos[e.from], pos[e.to])
        << "edge " << e.from << "->" << e.to << " violated";
}

TEST(TopologicalOrder, ValidOnDiamond) {
  TaskGraph g = test::small_diamond();
  expect_topological(g, topological_order(g));
}

TEST(TopologicalOrder, ValidOnFuzzCorpus) {
  for (std::size_t i = 0; i < 20; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    expect_topological(g, topological_order(g));
  }
}

TEST(TopologicalOrder, EmptyGraph) {
  TaskGraphBuilder b;
  TaskGraph g = std::move(b).build();
  EXPECT_TRUE(topological_order(g).empty());
}

TEST(BottomLevels, HandComputedDiamond) {
  TaskGraph g = test::small_diamond();
  auto bl = bottom_levels(g);
  EXPECT_DOUBLE_EQ(bl[3], 1.0);  // d
  EXPECT_DOUBLE_EQ(bl[1], 5.0);  // b: 3 + 1 + 1
  EXPECT_DOUBLE_EQ(bl[2], 6.0);  // c: 2 + 3 + 1
  EXPECT_DOUBLE_EQ(bl[0], 8.0);  // a: 1 + max(2+5, 1+6)
}

TEST(BottomLevels, PaperExampleMatchesTable1) {
  TaskGraph g = paper_example_graph();
  auto bl = bottom_levels(g);
  EXPECT_DOUBLE_EQ(bl[0], 15.0);
  EXPECT_DOUBLE_EQ(bl[1], 11.0);
  EXPECT_DOUBLE_EQ(bl[2], 9.0);
  EXPECT_DOUBLE_EQ(bl[3], 12.0);
  EXPECT_DOUBLE_EQ(bl[4], 6.0);
  EXPECT_DOUBLE_EQ(bl[5], 8.0);
  EXPECT_DOUBLE_EQ(bl[6], 6.0);
  EXPECT_DOUBLE_EQ(bl[7], 2.0);
}

TEST(BottomLevels, ComputationOnlyVariantIgnoresComm) {
  TaskGraph g = test::small_diamond();
  auto bl = computation_bottom_levels(g);
  EXPECT_DOUBLE_EQ(bl[3], 1.0);
  EXPECT_DOUBLE_EQ(bl[1], 4.0);
  EXPECT_DOUBLE_EQ(bl[2], 3.0);
  EXPECT_DOUBLE_EQ(bl[0], 5.0);
}

TEST(BottomLevels, ExitTaskEqualsOwnComp) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto bl = bottom_levels(g);
    for (TaskId t = 0; t < g.num_tasks(); ++t)
      if (g.is_exit(t)) EXPECT_DOUBLE_EQ(bl[t], g.comp(t));
  }
}

TEST(BottomLevels, MonotoneAlongEdges) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto bl = bottom_levels(g);
    for (const Edge& e : g.edges())
      EXPECT_GE(bl[e.from], g.comp(e.from) + e.comm + bl[e.to] - 1e-12);
  }
}

TEST(TopLevels, HandComputedDiamond) {
  TaskGraph g = test::small_diamond();
  auto tl = top_levels(g);
  EXPECT_DOUBLE_EQ(tl[0], 0.0);
  EXPECT_DOUBLE_EQ(tl[1], 3.0);  // 0 + 1 + 2
  EXPECT_DOUBLE_EQ(tl[2], 2.0);  // 0 + 1 + 1
  EXPECT_DOUBLE_EQ(tl[3], 7.0);  // max(3+3+1, 2+2+3)
}

TEST(TopLevels, EntryTasksAreZero) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto tl = top_levels(g);
    for (TaskId t = 0; t < g.num_tasks(); ++t)
      if (g.is_entry(t)) EXPECT_DOUBLE_EQ(tl[t], 0.0);
  }
}

TEST(CriticalPath, DiamondAndPaperExample) {
  EXPECT_DOUBLE_EQ(critical_path(test::small_diamond()), 8.0);
  EXPECT_DOUBLE_EQ(critical_path(paper_example_graph()), 15.0);
}

TEST(CriticalPath, EqualsMaxTlPlusBl) {
  for (std::size_t i = 0; i < 15; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto tl = top_levels(g);
    auto bl = bottom_levels(g);
    Cost best = 0.0;
    for (TaskId t = 0; t < g.num_tasks(); ++t)
      best = std::max(best, tl[t] + bl[t]);
    EXPECT_NEAR(critical_path(g), best, 1e-9);
  }
}

TEST(CriticalPath, ComputationVariantIsAtMostFull) {
  for (std::size_t i = 0; i < 15; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    EXPECT_LE(computation_critical_path(g), critical_path(g) + 1e-12);
  }
}

TEST(CriticalPath, ChainIsSumOfEverything) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 2.0;
  TaskGraph g = chain_graph(5, p);
  // 5 comps of 1 plus 4 comms of 2.
  EXPECT_DOUBLE_EQ(critical_path(g), 5.0 + 8.0);
  EXPECT_DOUBLE_EQ(computation_critical_path(g), 5.0);
}

TEST(Alap, DiamondValues) {
  TaskGraph g = test::small_diamond();
  auto alap = alap_times(g);
  EXPECT_DOUBLE_EQ(alap[0], 0.0);
  EXPECT_DOUBLE_EQ(alap[1], 3.0);
  EXPECT_DOUBLE_EQ(alap[2], 2.0);
  EXPECT_DOUBLE_EQ(alap[3], 7.0);
}

TEST(Alap, NonNegativeAndMonotoneAlongEdges) {
  for (std::size_t i = 0; i < 15; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto alap = alap_times(g);
    for (TaskId t = 0; t < g.num_tasks(); ++t) EXPECT_GE(alap[t], -1e-9);
    for (const Edge& e : g.edges())
      EXPECT_LT(alap[e.from], alap[e.to] + 1e-9);
  }
}

TEST(DepthLevels, DiamondDepths) {
  TaskGraph g = test::small_diamond();
  auto depth = depth_levels(g);
  EXPECT_EQ(depth[0], 0u);
  EXPECT_EQ(depth[1], 1u);
  EXPECT_EQ(depth[2], 1u);
  EXPECT_EQ(depth[3], 2u);
}

TEST(LevelDecomposition, PartitionsAllTasks) {
  for (std::size_t i = 0; i < 10; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    auto levels = level_decomposition(g);
    std::size_t total = 0;
    for (const auto& level : levels) {
      EXPECT_FALSE(level.empty());
      total += level.size();
    }
    EXPECT_EQ(total, g.num_tasks());
  }
}

TEST(LevelDecomposition, StencilLevelsAreTimeSteps) {
  WorkloadParams p;
  p.random_weights = false;
  TaskGraph g = stencil_graph(7, 5, p);
  auto levels = level_decomposition(g);
  ASSERT_EQ(levels.size(), 5u);
  for (const auto& level : levels) EXPECT_EQ(level.size(), 7u);
  EXPECT_EQ(max_level_width(g), 7u);
}

TEST(MaxLevelWidth, IndependentTasksAreOneLevel) {
  TaskGraph g = independent_graph(12);
  EXPECT_EQ(max_level_width(g), 12u);
}

}  // namespace
}  // namespace flb
