#include "flb/sched/schedule.hpp"

#include <gtest/gtest.h>

#include "flb/sched/machine.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(MachineModel, RequiresPositiveProcs) {
  EXPECT_THROW(MachineModel(0), Error);
  EXPECT_EQ(MachineModel(4).num_procs(), 4u);
}

TEST(MachineModel, CommCostRule) {
  EXPECT_DOUBLE_EQ(MachineModel::comm_cost(0, 0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(MachineModel::comm_cost(0, 1, 5.0), 5.0);
}

TEST(Schedule, StartsEmpty) {
  Schedule s(2, 3);
  EXPECT_EQ(s.num_procs(), 2u);
  EXPECT_EQ(s.num_tasks(), 3u);
  EXPECT_EQ(s.num_scheduled(), 0u);
  EXPECT_FALSE(s.complete());
  EXPECT_FALSE(s.is_scheduled(0));
  EXPECT_DOUBLE_EQ(s.proc_ready_time(0), 0.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(Schedule, AssignRecordsPlacement) {
  Schedule s(2, 2);
  s.assign(1, 0, 1.0, 3.0);
  EXPECT_TRUE(s.is_scheduled(1));
  EXPECT_EQ(s.proc(1), 0u);
  EXPECT_DOUBLE_EQ(s.start(1), 1.0);
  EXPECT_DOUBLE_EQ(s.finish(1), 3.0);
  EXPECT_DOUBLE_EQ(s.proc_ready_time(0), 3.0);
  EXPECT_DOUBLE_EQ(s.proc_ready_time(1), 0.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
  ASSERT_EQ(s.tasks_on(0).size(), 1u);
  EXPECT_EQ(s.tasks_on(0)[0], 1u);
}

TEST(Schedule, CompleteAfterAllAssigned) {
  Schedule s(1, 2);
  s.assign(0, 0, 0.0, 1.0);
  EXPECT_FALSE(s.complete());
  s.assign(1, 0, 1.0, 2.0);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.num_scheduled(), 2u);
}

TEST(Schedule, RejectsDoubleAssignment) {
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 1.0);
  EXPECT_THROW(s.assign(0, 0, 2.0, 3.0), Error);
}

TEST(Schedule, RejectsOutOfRangeIds) {
  Schedule s(1, 1);
  EXPECT_THROW(s.assign(5, 0, 0.0, 1.0), Error);
  EXPECT_THROW(s.assign(0, 3, 0.0, 1.0), Error);
}

TEST(Schedule, RejectsOverlapOnProcessor) {
  Schedule s(1, 2);
  s.assign(0, 0, 0.0, 2.0);
  EXPECT_THROW(s.assign(1, 0, 1.0, 3.0), Error);
}

TEST(Schedule, RejectsNegativeOrInvertedTimes) {
  Schedule s(1, 2);
  EXPECT_THROW(s.assign(0, 0, -1.0, 1.0), Error);
  EXPECT_THROW(s.assign(0, 0, 2.0, 1.0), Error);
}

TEST(Schedule, GapsAreAllowed) {
  Schedule s(1, 2);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 5.0, 6.0);  // idle gap [1, 5)
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(Schedule, RequiresAtLeastOneProc) {
  EXPECT_THROW(Schedule(0, 1), Error);
}

// --- Idle-gap insertion -----------------------------------------------------

TEST(Schedule, InsertIntoGapKeepsTimelineSorted) {
  Schedule s(1, 3);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 5.0, 6.0);
  s.assign(2, 0, 2.0, 4.0);  // lands in the gap [1, 5)
  auto tasks = s.tasks_on(0);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0], 0u);
  EXPECT_EQ(tasks[1], 2u);
  EXPECT_EQ(tasks[2], 1u);
  EXPECT_DOUBLE_EQ(s.proc_ready_time(0), 6.0);
}

TEST(Schedule, InsertRejectsOverlapWithEitherNeighbour) {
  Schedule s(1, 4);
  s.assign(0, 0, 0.0, 2.0);
  s.assign(1, 0, 5.0, 7.0);
  EXPECT_THROW(s.assign(2, 0, 1.0, 3.0), Error);  // clips task 0
  EXPECT_THROW(s.assign(2, 0, 4.0, 6.0), Error);  // clips task 1
  s.assign(2, 0, 2.0, 4.0);                        // exact fit is fine
}

TEST(Schedule, EarliestGapScansHoles) {
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 2.0);
  s.assign(1, 0, 5.0, 7.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 0.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 0.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 3.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 6.5, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(1, 4.0, 10.0), 4.0);  // empty proc
  EXPECT_THROW((void)s.earliest_gap(5, 0.0, 1.0), Error);
  EXPECT_THROW((void)s.earliest_gap(0, 0.0, -1.0), Error);
}

TEST(Schedule, EarliestGapZeroDurationIsEarliestIdleInstant) {
  Schedule s(1, 2);
  s.assign(0, 0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 0.0, 0.0), 0.0);   // idle before task
  EXPECT_DOUBLE_EQ(s.earliest_gap(0, 2.0, 0.0), 3.0);   // inside -> after
}

// --- Metrics -------------------------------------------------------------------

TEST(Metrics, SpeedupAndEfficiency) {
  TaskGraph g = test::small_diamond();  // total comp 7
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 3.0, 6.0);
  s.assign(2, 1, 2.0, 4.0);
  s.assign(3, 0, 7.0, 8.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 8.0);
  EXPECT_DOUBLE_EQ(speedup(g, s), 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(efficiency(g, s), 7.0 / 16.0);
}

TEST(Metrics, NslIsRatio) {
  EXPECT_DOUBLE_EQ(normalized_schedule_length(12.0, 10.0), 1.2);
  EXPECT_DOUBLE_EQ(normalized_schedule_length(8.0, 10.0), 0.8);
  EXPECT_THROW(normalized_schedule_length(1.0, 0.0), Error);
}

TEST(Metrics, BusyTimeAndImbalance) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);   // comp 1
  s.assign(1, 0, 1.0, 4.0);   // comp 3
  s.assign(2, 1, 2.0, 4.0);   // comp 2
  s.assign(3, 0, 4.0, 5.0);   // comp 1
  EXPECT_DOUBLE_EQ(busy_time(g, s, 0), 5.0);
  EXPECT_DOUBLE_EQ(busy_time(g, s, 1), 2.0);
  // max 5 over mean 3.5.
  EXPECT_DOUBLE_EQ(load_imbalance(g, s), 5.0 / 3.5);
}

TEST(Metrics, ImbalanceOfEmptyScheduleIsZero) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  EXPECT_DOUBLE_EQ(load_imbalance(g, s), 0.0);
  EXPECT_DOUBLE_EQ(speedup(g, s), 0.0);
}

TEST(Metrics, LowerBoundCombinesCpAndWork) {
  TaskGraph g = test::small_diamond();
  // computation CP = 5, total comp = 7.
  EXPECT_DOUBLE_EQ(makespan_lower_bound(g, 1), 7.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(g, 2), 5.0);
  EXPECT_DOUBLE_EQ(makespan_lower_bound(g, 100), 5.0);
  EXPECT_THROW(makespan_lower_bound(g, 0), Error);
}

}  // namespace
}  // namespace flb
