// Allocation-count regression test for the steady-state scheduling path.
//
// The whole point of core::Scratch + Arena is that a warmed FlbScheduler
// performs ZERO heap allocations per run_into() call (clique platform, any
// graph no larger than the largest one already seen). This test pins that
// by overriding global operator new/delete with a counting shim and
// asserting a zero delta across repeated runs.
//
// Kept in its own binary: the override is process-global, and mixing it
// into a suite that also measures timing or threads would be noisy.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/serve/serve.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t alloc_count() {
  return g_news.load(std::memory_order_relaxed);
}

}  // namespace

// --- counting global allocator --------------------------------------------

void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align) < sizeof(void*)
                             ? sizeof(void*)
                             : static_cast<std::size_t>(align),
                     size ? size : 1) != 0)
    throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

// ---------------------------------------------------------------------------

namespace flb {
namespace {

TEST(AllocRegressionTest, SteadyStateRunIntoAllocatesNothing) {
  WorkloadParams params;
  params.seed = 7;
  TaskGraph g = make_workload("LU", 300, params);

  FlbScheduler flb;
  Schedule buffer(1, 0);
  // Warm-up: the first run grows the arena, the heap-forest pool and the
  // schedule buffer's timelines to this graph's high-water sizes.
  flb.run_into(g, 8, buffer);
  flb.run_into(g, 8, buffer);
  const std::uint64_t digest = serve::schedule_digest(buffer);

  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 5; ++i) flb.run_into(g, 8, buffer);
  const std::uint64_t delta = alloc_count() - before;
  EXPECT_EQ(delta, 0u)
      << "steady-state run_into performed " << delta << " heap allocations";
  EXPECT_EQ(serve::schedule_digest(buffer), digest);
}

TEST(AllocRegressionTest, SmallerGraphAfterWarmupAllocatesNothing) {
  WorkloadParams big_params;
  big_params.seed = 7;
  TaskGraph big = make_workload("LU", 300, big_params);
  WorkloadParams small_params;
  small_params.seed = 9;
  TaskGraph small = make_workload("Stencil", 100, small_params);

  FlbScheduler flb;
  Schedule buffer(1, 0);
  flb.run_into(big, 8, buffer);   // high-water warm-up
  flb.run_into(small, 4, buffer); // warm the smaller shape once too

  const std::uint64_t before = alloc_count();
  flb.run_into(small, 4, buffer);
  flb.run_into(small, 4, buffer);
  EXPECT_EQ(alloc_count() - before, 0u);
}

TEST(AllocRegressionTest, CounterActuallyCounts) {
  // Sanity-check the shim itself so a silently-unlinked override can't
  // turn the tests above into tautologies.
  const std::uint64_t before = alloc_count();
  auto* p = new std::uint64_t[32];
  EXPECT_GT(alloc_count(), before);
  delete[] p;
}

}  // namespace
}  // namespace flb
