#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"

namespace flb {
namespace {

// --- Table ------------------------------------------------------------------

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table(std::vector<std::string>{}), Error);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  t.add_row({"4", "5", "6"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "v"});
  t.add_row({"longer-cell", "1"});
  t.add_row({"s", "22"});
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("longer-cell"), std::string::npos);
  // All rendered lines have equal length (alignment).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "multi\nline"});
  std::ostringstream os;
  t.print_csv(os);
  std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
  EXPECT_NE(out.find("\"multi\nline\""), std::string::npos);
}

TEST(FormatFixed, ProducesExactDecimals) {
  EXPECT_EQ(format_fixed(1.5, 2), "1.50");
  EXPECT_EQ(format_fixed(-0.125, 3), "-0.125");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(FormatCompact, IntegersStayIntegral) {
  EXPECT_EQ(format_compact(5.0), "5");
  EXPECT_EQ(format_compact(-12.0), "-12");
  EXPECT_EQ(format_compact(0.0), "0");
}

TEST(FormatCompact, TrimsTrailingZeros) {
  EXPECT_EQ(format_compact(1.25), "1.25");
  EXPECT_EQ(format_compact(1.5), "1.5");
  EXPECT_EQ(format_compact(0.1), "0.1");
}

// --- CliArgs ----------------------------------------------------------------

CliArgs parse(std::vector<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesSpaceSeparatedOption) {
  auto args = parse({"prog", "--procs", "8"});
  EXPECT_TRUE(args.has("procs"));
  EXPECT_EQ(args.get_int("procs", 0), 8);
}

TEST(Cli, ParsesEqualsForm) {
  auto args = parse({"prog", "--ccr=5.0"});
  EXPECT_DOUBLE_EQ(args.get_double("ccr", 0.0), 5.0);
}

TEST(Cli, FallbacksWhenAbsent) {
  auto args = parse({"prog"});
  EXPECT_FALSE(args.has("x"));
  EXPECT_EQ(args.get("x", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(Cli, BooleanFlagBeforeAnotherOption) {
  auto args = parse({"prog", "--verbose", "--procs", "4"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", "missing"), "");
  EXPECT_EQ(args.get_int("procs", 0), 4);
}

TEST(Cli, CollectsPositionals) {
  auto args = parse({"prog", "one", "--k", "v", "two"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"one", "two"}));
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, IntListParsing) {
  auto args = parse({"prog", "--procs", "2,4,8,16"});
  EXPECT_EQ(args.get_int_list("procs", {}),
            (std::vector<std::int64_t>{2, 4, 8, 16}));
}

TEST(Cli, DoubleListParsing) {
  auto args = parse({"prog", "--ccr=0.2,5.0"});
  auto v = args.get_double_list("ccr", {});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.2);
  EXPECT_DOUBLE_EQ(v[1], 5.0);
}

TEST(Cli, ListFallbackWhenAbsent) {
  auto args = parse({"prog"});
  EXPECT_EQ(args.get_int_list("p", {1, 2}),
            (std::vector<std::int64_t>{1, 2}));
}

TEST(Cli, RejectsNonNumeric) {
  auto args = parse({"prog", "--n", "abc"});
  EXPECT_THROW((void)args.get_int("n", 0), Error);
  EXPECT_THROW((void)args.get_double("n", 0.0), Error);
}

TEST(Cli, RejectsMalformedList) {
  auto args = parse({"prog", "--procs", "2,x,8"});
  EXPECT_THROW((void)args.get_int_list("procs", {}), Error);
}

// --- Stopwatch ---------------------------------------------------------------

TEST(Stopwatch, ElapsedIsMonotonic) {
  Stopwatch sw;
  double a = sw.seconds();
  double b = sw.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  // millis and seconds measure the same clock (successive reads, so allow
  // the time between the two calls as slack).
  double ms = sw.millis();
  double s = sw.seconds();
  EXPECT_LE(b * 1e3, ms);
  EXPECT_LE(ms, s * 1e3);
}

TEST(Stopwatch, RestartResets) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1;
  double before = sw.seconds();
  sw.restart();
  EXPECT_LE(sw.seconds(), before + 1.0);  // restarted clock is near zero
}

// --- Error macros -------------------------------------------------------------

TEST(Error, RequireThrowsWithMessage) {
  try {
    FLB_REQUIRE(false, "custom message");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"),
              std::string::npos);
  }
}

TEST(Error, AssertThrowsLogicError) {
  EXPECT_THROW(FLB_ASSERT(1 == 2), std::logic_error);
}

TEST(Error, PassingChecksAreSilent) {
  EXPECT_NO_THROW(FLB_REQUIRE(true, "unused"));
  EXPECT_NO_THROW(FLB_ASSERT(true));
}

}  // namespace
}  // namespace flb
