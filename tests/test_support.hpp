#pragma once

#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sched/validator.hpp"
#include "flb/workloads/workloads.hpp"

/// \file test_support.hpp
/// Shared helpers for the flb test suite.

namespace flb::test {

/// Render all violations of a schedule for diagnostics in EXPECT messages.
inline std::string violations_to_string(const TaskGraph& g,
                                        const Schedule& s) {
  std::string out;
  for (const Violation& v : validate_schedule(g, s)) {
    out += to_string(v);
    out += '\n';
  }
  return out.empty() ? "(no violations)" : out;
}

/// A small fixed DAG used by several suites:
///
///        a(1)
///       /    \          edge weights:
///   (2)/      \(1)      a->b 2, a->c 1,
///     b(3)    c(2)      b->d 1, c->d 3
///       \      /
///    (1) \    / (3)
///         d(1)
inline TaskGraph small_diamond() {
  TaskGraphBuilder b;
  b.set_name("small-diamond");
  TaskId a = b.add_task(1);
  TaskId bb = b.add_task(3);
  TaskId c = b.add_task(2);
  TaskId d = b.add_task(1);
  b.add_edge(a, bb, 2);
  b.add_edge(a, c, 1);
  b.add_edge(bb, d, 1);
  b.add_edge(c, d, 3);
  return std::move(b).build();
}

/// Deterministic fuzzing corpus: a spread of random DAG shapes that the
/// property tests sweep. Index selects shape and seed.
inline TaskGraph fuzz_graph(std::size_t index) {
  WorkloadParams params;
  params.seed = 1000 + index;
  params.ccr = (index % 3 == 0) ? 0.2 : (index % 3 == 1 ? 1.0 : 5.0);
  switch (index % 7) {
    case 0:
      return random_dag(20 + index % 30, 0.15, params);
    case 1:
      return random_layered_graph(4 + index % 5, 3 + index % 6, 0.4, params);
    case 2:
      return fork_join_graph(2 + index % 4, 3 + index % 5, params);
    case 3:
      return random_dag(10 + index % 15, 0.35, params);
    case 4:
      return series_parallel_graph(15 + index % 25, 0.5, params);
    case 5:
      return cholesky_graph(3 + index % 4, params);
    default:
      return diamond_graph(3 + index % 4, params);
  }
}

}  // namespace flb::test
