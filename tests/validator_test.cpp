#include "flb/sched/validator.hpp"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "flb/core/flb.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// A hand-built feasible schedule of small_diamond on two processors:
//   p0: a[0,1)  b[3,6)  d[7,8)
//   p1: c[2,4)
// b needs a's data at 1+2=3 (remote); c at 1+1=2 (remote);
// d on p0 needs b at 6 (local) and c at 4+3=7 (remote) -> starts at 7.
Schedule feasible_diamond() {
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(2, 1, 2.0, 4.0);
  s.assign(1, 0, 3.0, 6.0);
  s.assign(3, 0, 7.0, 8.0);
  return s;
}

TEST(Validator, AcceptsFeasibleSchedule) {
  TaskGraph g = test::small_diamond();
  Schedule s = feasible_diamond();
  EXPECT_TRUE(is_valid_schedule(g, s)) << test::violations_to_string(g, s);
}

TEST(Validator, DetectsUnscheduledTask) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  auto v = validate_schedule(g, s);
  ASSERT_FALSE(v.empty());
  int unscheduled = 0;
  for (const auto& violation : v)
    if (violation.kind == Violation::Kind::kUnscheduledTask) ++unscheduled;
  EXPECT_EQ(unscheduled, 3);
}

TEST(Validator, DetectsWrongDuration) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 2.5);  // comp(a) = 1, so finish should be 1.0
  auto v = validate_schedule(g, s);
  bool found = false;
  for (const auto& violation : v)
    if (violation.kind == Violation::Kind::kWrongDuration &&
        violation.task == 0)
      found = true;
  EXPECT_TRUE(found);
}

TEST(Validator, DetectsPrecedenceViolationRemote) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  // b on p1 needs a's message at 1 + 2 = 3; starting at 2 is infeasible.
  s.assign(1, 1, 2.0, 5.0);
  s.assign(2, 0, 1.0, 3.0);
  s.assign(3, 0, 8.0, 9.0);
  auto v = validate_schedule(g, s);
  bool found = false;
  for (const auto& violation : v)
    if (violation.kind == Violation::Kind::kPrecedence && violation.task == 1)
      found = true;
  EXPECT_TRUE(found) << test::violations_to_string(g, s);
}

TEST(Validator, SameProcessorNeedsNoCommDelay) {
  TaskGraph g = test::small_diamond();
  Schedule s(1, 4);
  // Everything back-to-back on one processor: all comm free.
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.0, 4.0);
  s.assign(2, 0, 4.0, 6.0);
  s.assign(3, 0, 6.0, 7.0);
  EXPECT_TRUE(is_valid_schedule(g, s)) << test::violations_to_string(g, s);
}

// Regression: the validator used to pass schedules with infinite times
// silently, because every tolerance comparison against a non-finite value
// is false. (Schedule::assign itself rejects NaN, so +inf is the
// constructible poison value.)
TEST(Validator, DetectsNonFiniteTimes) {
  TaskGraph g = test::small_diamond();
  Schedule s = feasible_diamond();
  Schedule bad(2, 4);
  for (TaskId t = 0; t < 4; ++t) {
    if (t == 2)
      bad.assign(t, s.proc(t), kInfiniteTime, kInfiniteTime);
    else
      bad.assign(t, s.proc(t), s.start(t), s.finish(t));
  }
  auto v = validate_schedule(g, bad);
  ASSERT_FALSE(v.empty()) << "infinite times must not validate";
  bool found = false;
  for (const auto& violation : v)
    if (violation.kind == Violation::Kind::kNonFiniteTime &&
        violation.task == 2)
      found = true;
  EXPECT_TRUE(found) << test::violations_to_string(g, bad);
  EXPECT_NE(to_string(v.front()).find("non-finite-time"), std::string::npos);
  EXPECT_FALSE(is_valid_schedule(g, bad));
}

TEST(Validator, ToleranceAbsorbsRoundoff) {
  TaskGraph g = test::small_diamond();
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(2, 1, 2.0 - 1e-12, 4.0 - 1e-12);  // a hair early: within tolerance
  s.assign(1, 0, 3.0, 6.0);
  s.assign(3, 0, 7.0, 8.0);
  EXPECT_TRUE(is_valid_schedule(g, s));
  // With a zero tolerance the same schedule is rejected.
  EXPECT_FALSE(is_valid_schedule(g, s, 0.0));
}

TEST(Validator, ViolationToStringNamesKind) {
  Violation v{Violation::Kind::kPrecedence, 3, "details here"};
  std::string s = to_string(v);
  EXPECT_NE(s.find("precedence"), std::string::npos);
  EXPECT_NE(s.find("details here"), std::string::npos);
}

// Mutation-based check: take a known-good FLB schedule and pull one task
// strictly before its latest data-arrival time; the validator must object
// (with precedence, or with an overlap caught even earlier).
TEST(Validator, MutationFuzzing) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule good = flb.run(g, 3);
    ASSERT_TRUE(is_valid_schedule(g, good));

    // Pick a victim whose data cannot possibly be there before some
    // positive arrival time.
    TaskId victim = kInvalidTask;
    Cost required = 0.0;
    for (TaskId t = 0; t < g.num_tasks() && victim == kInvalidTask; ++t) {
      if (g.is_entry(t)) continue;
      Cost req = 0.0;
      for (const Adj& a : g.predecessors(t)) {
        Cost c = good.proc(a.node) == good.proc(t) ? 0.0 : a.comm;
        req = std::max(req, good.finish(a.node) + c);
      }
      if (req > 0.1) {
        victim = t;
        required = req;
      }
    }
    if (victim == kInvalidTask) continue;

    Schedule bad(3, g.num_tasks());
    // Assign in per-processor start order; shift only the victim to half
    // its required arrival time, guaranteeing a precedence violation.
    std::vector<TaskId> order(g.num_tasks());
    for (TaskId t = 0; t < g.num_tasks(); ++t) order[t] = t;
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId b) {
      return good.start(a) < good.start(b);
    });
    bool construction_failed = false;
    for (TaskId t : order) {
      Cost st = good.start(t);
      if (t == victim) st = required / 2.0;
      try {
        bad.assign(t, good.proc(t), st, st + g.comp(t));
      } catch (const Error&) {
        construction_failed = true;  // overlap caught at construction
        break;
      }
    }
    if (!construction_failed) {
      EXPECT_FALSE(is_valid_schedule(g, bad))
          << "task " << victim << " starts before its data arrives ("
          << g.name() << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Link-occupancy auditing (platform link-busy commit logs).

TEST(ValidatorLinks, AcceptsSerializedAndDisjointOccupancies) {
  Topology line = Topology::from_links(3, {{0, 1}, {1, 2}});
  std::vector<platform::LinkOccupancy> occ{
      {0, 0.0, 4.0},  // back-to-back on link 0: fine
      {0, 4.0, 8.0},
      {1, 2.0, 6.0},  // overlaps both in time, but on a different link
      {0, 8.0, 8.0},  // zero-length reservation carries no measure
  };
  auto v = validate_link_occupancies(line, occ);
  EXPECT_TRUE(v.empty()) << to_string(v.front());
}

TEST(ValidatorLinks, DetectsOverlappingTransfers) {
  Topology line = Topology::from_links(3, {{0, 1}, {1, 2}});
  std::vector<platform::LinkOccupancy> occ{
      {0, 0.0, 4.0},
      {0, 2.0, 6.0},  // shares [2, 4) with the first transfer
  };
  auto v = validate_link_occupancies(line, occ);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.front().kind, Violation::Kind::kLinkBusyViolation);
  EXPECT_EQ(v.front().task, kInvalidTask);
  EXPECT_NE(to_string(v.front()).find("link-busy"), std::string::npos);
}

TEST(ValidatorLinks, EngulfedShortTransferIsCaught) {
  // A long reservation swallowing a later short one must be caught even
  // though the short one's immediate predecessor (by begin) is itself.
  Topology line = Topology::from_links(2, {{0, 1}});
  std::vector<platform::LinkOccupancy> occ{
      {0, 0.0, 10.0},
      {0, 2.0, 3.0},
      {0, 4.0, 5.0},
  };
  auto v = validate_link_occupancies(line, occ);
  EXPECT_EQ(v.size(), 2u);
}

TEST(ValidatorLinks, DetectsMalformedOccupancies) {
  Topology line = Topology::from_links(2, {{0, 1}});
  std::vector<platform::LinkOccupancy> occ{
      {7, 0.0, 1.0},                  // link index out of range
      {0, 0.0, kInfiniteTime},        // non-finite endpoint
      {0, 5.0, 2.0},                  // ends before it begins
  };
  auto v = validate_link_occupancies(line, occ);
  ASSERT_EQ(v.size(), 3u);
  for (const Violation& violation : v) {
    EXPECT_EQ(violation.kind, Violation::Kind::kLinkBusyViolation);
    EXPECT_EQ(violation.task, kInvalidTask);
  }
  // Malformed entries are excluded from the sweep: none of them may also
  // report a phantom overlap.
}

TEST(ValidatorLinks, ToleranceAbsorbsEndpointRoundoff) {
  Topology line = Topology::from_links(2, {{0, 1}});
  std::vector<platform::LinkOccupancy> occ{
      {0, 0.0, 4.0},
      {0, 4.0 - 1e-12, 8.0},  // a hair early: within tolerance
  };
  EXPECT_TRUE(validate_link_occupancies(line, occ).empty());
  EXPECT_FALSE(validate_link_occupancies(line, occ, 0.0).empty());
}

}  // namespace
}  // namespace flb
