// Unit tests for the flb-faultplan text format (sim/fault_plan_io.cpp):
// round-trips, defaults elision, the documented directive set, and the
// structured rejections the fuzzer (fuzz/fuzz_fault_plan.cpp) relies on.

#include <gtest/gtest.h>

#include <string>

#include "flb/sim/faults.hpp"
#include "flb/util/error.hpp"

namespace {

using namespace flb;

FaultPlan full_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.runtime_spread = 0.1;
  plan.checkpoint.interval = 5.0;
  plan.checkpoint.overhead = 0.25;
  plan.checkpoint.min_downstream = 12.5;
  plan.message.loss_probability = 0.01;
  plan.message.delay_probability = 0.05;
  plan.message.delay_factor = 2.0;
  plan.message.max_retries = 3;
  plan.message.retry_timeout = 1.5;
  plan.message.backoff = 2.0;
  plan.failures.push_back({1, 3.5});
  plan.rejoins.push_back({1, 9.0});
  plan.slowdowns.push_back({0, 2.0, 0.5, 8.0});
  plan.slowdowns.push_back({2, 4.0, 0.25, kInfiniteTime});
  plan.domains.push_back({"rack0", {0, 1}});
  DomainBurst burst;
  burst.domain = "rack0";
  burst.time = 6.0;
  burst.window = 2.0;
  burst.probability = 0.9;
  burst.slowdown_factor = 0.5;
  burst.cascade_probability = 0.1;
  burst.cascade_delay = 0.5;
  burst.recovery_delay = 1.0;
  plan.bursts.push_back(burst);
  return plan;
}

TEST(FaultPlanIo, RoundTripsEveryDirective) {
  const FaultPlan plan = full_plan();
  const FaultPlan back = fault_plan_from_text(to_fault_plan_text(plan));

  EXPECT_EQ(back.seed, plan.seed);
  EXPECT_DOUBLE_EQ(back.runtime_spread, plan.runtime_spread);
  EXPECT_DOUBLE_EQ(back.checkpoint.interval, plan.checkpoint.interval);
  EXPECT_DOUBLE_EQ(back.checkpoint.overhead, plan.checkpoint.overhead);
  EXPECT_DOUBLE_EQ(back.checkpoint.min_downstream,
                   plan.checkpoint.min_downstream);
  EXPECT_DOUBLE_EQ(back.message.loss_probability,
                   plan.message.loss_probability);
  EXPECT_EQ(back.message.max_retries, plan.message.max_retries);
  ASSERT_EQ(back.failures.size(), 1u);
  EXPECT_EQ(back.failures[0].proc, 1u);
  EXPECT_DOUBLE_EQ(back.failures[0].time, 3.5);
  ASSERT_EQ(back.rejoins.size(), 1u);
  ASSERT_EQ(back.slowdowns.size(), 2u);
  EXPECT_DOUBLE_EQ(back.slowdowns[0].until, 8.0);
  EXPECT_EQ(back.slowdowns[1].until, kInfiniteTime);
  ASSERT_EQ(back.domains.size(), 1u);
  EXPECT_EQ(back.domains[0].name, "rack0");
  EXPECT_EQ(back.domains[0].members, (std::vector<ProcId>{0, 1}));
  ASSERT_EQ(back.bursts.size(), 1u);
  EXPECT_DOUBLE_EQ(back.bursts[0].cascade_probability, 0.1);

  // Text-level fixed point: writing the re-parsed plan reproduces the
  // text byte for byte (precision 17 preserves every double).
  EXPECT_EQ(to_fault_plan_text(back), to_fault_plan_text(plan));
}

TEST(FaultPlanIo, DefaultPlanWritesOnlySeed) {
  EXPECT_EQ(to_fault_plan_text(FaultPlan{}), "flb-faultplan 1\nseed 1\n");
}

TEST(FaultPlanIo, ParsesCommentsBlanksAndInf) {
  const FaultPlan plan = fault_plan_from_text(
      "# header comment\n"
      "flb-faultplan 1\n"
      "\n"
      "  seed 7\n"
      "slowdown 0 2 0.5 inf\n"
      "   # indented comment\n"
      "fail 3 1.25\n");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.slowdowns.size(), 1u);
  EXPECT_EQ(plan.slowdowns[0].until, kInfiniteTime);
  ASSERT_EQ(plan.failures.size(), 1u);
  EXPECT_EQ(plan.failures[0].proc, 3u);
}

// A plan made of kill/rejoin recovery windows — the episodes the online
// runtime replays — survives the text format, and the two-field checkpoint
// form stays parseable (min_downstream defaults to 0: the uniform policy).
TEST(FaultPlanIo, RecoveryWindowsRoundTrip) {
  FaultPlan plan;
  plan.seed = 9;
  plan.failures.push_back({2, 1.0});
  plan.rejoins.push_back({2, 3.0});
  plan.failures.push_back({2, 6.0});
  plan.rejoins.push_back({2, 8.0});
  plan.slowdowns.push_back({0, 2.0, 0.5, 4.0});

  const FaultPlan back = fault_plan_from_text(to_fault_plan_text(plan));
  ASSERT_EQ(back.failures.size(), 2u);
  ASSERT_EQ(back.rejoins.size(), 2u);
  EXPECT_NO_THROW(back.validate(4));

  // The windows resolve to the same alternating kill/rejoin availability:
  // the processor ends the episode alive from its second rejoin, having
  // been dark for the two windows [1,3) and [6,8).
  const ResolvedFaults resolved = resolve_faults(back);
  EXPECT_DOUBLE_EQ(resolved.death_time(2), 1.0);
  EXPECT_DOUBLE_EQ(resolved.available_from(2), 8.0);
  EXPECT_DOUBLE_EQ(resolved.downtime(2, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(resolved.downtime(2, 7.0), 3.0);
  EXPECT_EQ(to_fault_plan_text(back), to_fault_plan_text(plan));

  const FaultPlan two_field =
      fault_plan_from_text("flb-faultplan 1\ncheckpoint 5 0.2\n");
  EXPECT_DOUBLE_EQ(two_field.checkpoint.interval, 5.0);
  EXPECT_DOUBLE_EQ(two_field.checkpoint.min_downstream, 0.0);
}

TEST(FaultPlanIo, RejectsMalformedInput) {
  EXPECT_THROW(fault_plan_from_text(""), Error);
  EXPECT_THROW(fault_plan_from_text("flb-faultplan 2\n"), Error);
  EXPECT_THROW(fault_plan_from_text("faultplan 1\n"), Error);
  const std::string h = "flb-faultplan 1\n";
  EXPECT_THROW(fault_plan_from_text(h + "explode 1 2\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "fail 0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "fail 0 1.5 extra\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "fail -1 1.5\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "fail 0 nan\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "slowdown 0 1 inf\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "checkpoint 5 0.2 nan\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "domain rack0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "message 0.1 0.1 2 -3 1 2\n"),
               Error);
  EXPECT_THROW(fault_plan_from_text(h + "message 0.1 0.1 2 1.5 1 2\n"),
               Error);
}

// The heartbeat directive (failure-detector sensing): full round-trip,
// default elision, parse-level rejections, and semantic validation.
TEST(FaultPlanIo, HeartbeatRoundTripsAndValidates) {
  FaultPlan plan;
  plan.seed = 3;
  plan.heartbeat.period = 2.5;
  plan.heartbeat.loss_probability = 0.1;
  plan.heartbeat.delay_probability = 0.05;
  plan.heartbeat.delay_factor = 2.0;
  plan.heartbeat.suspect_after = 3.0;
  plan.heartbeat.confirm_after = 6.0;

  const FaultPlan back = fault_plan_from_text(to_fault_plan_text(plan));
  EXPECT_DOUBLE_EQ(back.heartbeat.period, 2.5);
  EXPECT_DOUBLE_EQ(back.heartbeat.loss_probability, 0.1);
  EXPECT_DOUBLE_EQ(back.heartbeat.delay_probability, 0.05);
  EXPECT_DOUBLE_EQ(back.heartbeat.delay_factor, 2.0);
  EXPECT_DOUBLE_EQ(back.heartbeat.suspect_after, 3.0);
  EXPECT_DOUBLE_EQ(back.heartbeat.confirm_after, 6.0);
  EXPECT_TRUE(back.heartbeat.enabled());
  EXPECT_NO_THROW(back.validate(4));
  EXPECT_EQ(to_fault_plan_text(back), to_fault_plan_text(plan));

  // A default (disabled) heartbeat writes no directive at all.
  EXPECT_EQ(to_fault_plan_text(FaultPlan{}).find("heartbeat"),
            std::string::npos);

  const std::string h = "flb-faultplan 1\n";
  // Parse-level rejections: missing fields, non-finite fields, trailers.
  EXPECT_THROW(fault_plan_from_text(h + "heartbeat 5 0.1\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "heartbeat 5 nan 0 1.5 2 4\n"),
               Error);
  EXPECT_THROW(fault_plan_from_text(h + "heartbeat 5 0 0 1.5 2 4 9\n"),
               Error);
  // Semantically absurd thresholds parse but fail validation.
  const FaultPlan inverted =
      fault_plan_from_text(h + "heartbeat 5 0 0 1.5 4 2\n");
  EXPECT_THROW(inverted.validate(4), Error);
  // The boundary itself is rejected too: suspicion must fire strictly
  // before confirmation, so equal thresholds are a configuration error,
  // not a degenerate-but-legal detector.
  const FaultPlan equal =
      fault_plan_from_text(h + "heartbeat 5 0 0 1.5 4 4\n");
  EXPECT_THROW(equal.validate(4), Error);
}

// The partition directive (partial network partitions): processor and
// domain endpoints, elision of the infinite heal instant, parse-level
// rejections and semantic validation.
TEST(FaultPlanIo, PartitionRoundTripsProcAndDomainEndpoints) {
  FaultPlan plan;
  plan.seed = 11;
  plan.domains.push_back({"rack0", {0, 1}});
  plan.domains.push_back({"rack1", {2, 3}});
  PartitionFault link;
  link.proc_a = 0;
  link.proc_b = 2;
  link.time = 1.5;
  link.until = 4.0;
  plan.partitions.push_back(link);
  PartitionFault racks;  // permanent inter-rack cut: until stays infinite
  racks.domain_a = "rack0";
  racks.domain_b = "rack1";
  racks.time = 6.0;
  plan.partitions.push_back(racks);

  const FaultPlan back = fault_plan_from_text(to_fault_plan_text(plan));
  ASSERT_EQ(back.partitions.size(), 2u);
  EXPECT_EQ(back.partitions[0].proc_a, 0u);
  EXPECT_EQ(back.partitions[0].proc_b, 2u);
  EXPECT_TRUE(back.partitions[0].domain_a.empty());
  EXPECT_TRUE(back.partitions[0].domain_b.empty());
  EXPECT_DOUBLE_EQ(back.partitions[0].time, 1.5);
  EXPECT_DOUBLE_EQ(back.partitions[0].until, 4.0);
  EXPECT_EQ(back.partitions[1].domain_a, "rack0");
  EXPECT_EQ(back.partitions[1].domain_b, "rack1");
  EXPECT_EQ(back.partitions[1].until, kInfiniteTime);
  EXPECT_NO_THROW(back.validate(4));
  EXPECT_EQ(to_fault_plan_text(back), to_fault_plan_text(plan));

  // The permanent cut writes no heal field at all.
  EXPECT_NE(to_fault_plan_text(plan).find("partition rack0 rack1 6\n"),
            std::string::npos);
}

TEST(FaultPlanIo, PartitionParseAndValidationRejections) {
  const std::string h = "flb-faultplan 1\n";
  // Parse-level: missing fields, identical endpoints, a heal instant at or
  // before the onset, and trailing junk.
  EXPECT_THROW(fault_plan_from_text(h + "partition 0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 0 1\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 2 2 1.0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition rack0 rack0 1.0\n"),
               Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 0 1 2.0 1.0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 0 1 2.0 2.0\n"), Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 0 1 2.0 4.0 9\n"),
               Error);
  EXPECT_THROW(fault_plan_from_text(h + "partition 0 1 nan\n"), Error);

  // Semantic: endpoints must exist on the machine and in the domain table.
  const FaultPlan wide = fault_plan_from_text(h + "partition 0 7 1.0\n");
  EXPECT_THROW(wide.validate(4), Error);
  EXPECT_NO_THROW(wide.validate(8));
  const FaultPlan ghost =
      fault_plan_from_text(h + "partition rackX 0 1.0\n");
  EXPECT_THROW(ghost.validate(4), Error);
}

TEST(FaultPlanIo, ParsedPlanPassesSemanticValidation) {
  const FaultPlan plan =
      fault_plan_from_text(to_fault_plan_text(full_plan()));
  EXPECT_NO_THROW(plan.validate(4));
}

}  // namespace
