// The runtime auditor (flb::analysis::audit_runtime): clean recovery
// episodes in all three controller modes certify with zero errors, and
// every error rule is demonstrated live by a mutation self-test — a
// tampered copy of a real episode (reordered events, orphan rejoin, forged
// quorum confirmation, overlapping reservation, inflated checkpoint claim,
// ...) must fire exactly the rule built to catch it. Mutations recompute
// the result digests after tampering, so audit-result-consistency stays
// quiet and cannot mask a weaker rule. Also pins the flb_lint --json
// report schema with a golden output.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "flb/analysis/audit.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/runtime/failure_detector.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sched/export.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"

namespace flb {
namespace {

using analysis::AuditOptions;
using analysis::Diagnostic;
using analysis::LintReport;
using analysis::Severity;
using analysis::audit_rule_catalogue;
using analysis::audit_runtime;
using runtime::BeliefEvent;
using runtime::BeliefKind;
using runtime::RuntimeOptions;
using runtime::RuntimeResult;
using runtime::belief_log_text;
using runtime::event_log_text;
using runtime::fnv1a_digest;
using runtime::run_online_recovery;

TaskGraph unit_tasks(TaskId n) {
  TaskGraphBuilder b;
  for (TaskId t = 0; t < n; ++t) b.add_task(1.0);
  return std::move(b).build();
}

Schedule strip_schedule(TaskId tasks, ProcId procs, TaskId per_proc) {
  Schedule s(procs, tasks);
  for (TaskId t = 0; t < tasks; ++t) {
    const ProcId p = static_cast<ProcId>(t / per_proc);
    const Cost start = static_cast<Cost>(t % per_proc);
    s.assign(t, p, start, start + 1.0);
  }
  return s;
}

/// Recompute the digests a mutation invalidated, so result-consistency
/// stays quiet and each tampered log fires only the rule under test.
void rehash(RuntimeResult& r, bool detector) {
  r.event_digest = fnv1a_digest(event_log_text(r.events));
  r.schedule_digest = fnv1a_digest(to_schedule_text(r.schedule));
  r.belief_digest = detector ? fnv1a_digest(belief_log_text(r.beliefs)) : 0;
}

/// The whole report rendered as text, for assertion failure messages.
std::string report_text(const LintReport& report) {
  std::ostringstream os;
  analysis::write_report(os, report);
  return os.str();
}

/// Assert the report has at least one error and every error carries the
/// expected rule id — the "fires exactly its rule" contract.
void expect_only_rule(const LintReport& report, const std::string& rule) {
  std::size_t errors = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::kError) continue;
    ++errors;
    EXPECT_EQ(d.rule, rule) << d.message;
  }
  EXPECT_GT(errors, 0u) << "mutation did not fire " << rule;
}

// --- Episode fixtures -------------------------------------------------------

/// Perfect-event episode: kill + rejoin + checkpointing on a 2-processor
/// strip of unit tasks — kFailure/kRejoin/kTaskKilled material.
RuntimeResult episode_perfect(const TaskGraph& g, const FaultPlan& world) {
  RuntimeOptions opt;
  opt.debounce = 0.25;
  return run_online_recovery(g, strip_schedule(12, 2, 6), world, opt);
}

FaultPlan world_perfect() {
  FaultPlan world;
  world.seed = 7;
  world.checkpoint.interval = 0.4;
  world.checkpoint.overhead = 0.05;
  world.failures.push_back({1, 2.5});
  world.rejoins.push_back({1, 6.0});
  return world;
}

/// Message-drop episode: a cross-processor edge whose every transmission
/// attempt is lost — a guaranteed retry-exhaustion kMessageDropped.
TaskGraph chain_pair_graph() {
  TaskGraphBuilder b;
  for (TaskId t = 0; t < 6; ++t) b.add_task(1.0);
  b.add_edge(0, 1, 0.1);
  b.add_edge(1, 2, 0.1);
  b.add_edge(3, 4, 0.1);
  b.add_edge(4, 5, 0.1);
  b.add_edge(0, 4, 0.1);  // the remote edge the message model kills
  return std::move(b).build();
}

Schedule chain_pair_schedule() {
  Schedule s(2, 6);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.2, 2.2);
  s.assign(2, 0, 2.4, 3.4);
  s.assign(3, 1, 0.0, 1.0);
  s.assign(4, 1, 2.0, 3.0);
  s.assign(5, 1, 3.2, 4.2);
  return s;
}

FaultPlan world_drop() {
  FaultPlan world;
  world.seed = 3;
  world.message.loss_probability = 1.0;
  world.message.max_retries = 1;
  world.message.retry_timeout = 0.5;
  return world;
}

/// Detector-mode episode (observer-0 stream): a real death sensed through
/// lossless heartbeats — suspect, confirm, speculative repair.
FaultPlan world_detector() {
  FaultPlan world;
  world.seed = 5;
  world.heartbeat.period = 1.0;
  world.checkpoint.interval = 0.4;
  world.checkpoint.overhead = 0.05;
  world.failures.push_back({1, 2.5});
  return world;
}

RuntimeResult episode_detector(const TaskGraph& g, const FaultPlan& world) {
  RuntimeOptions opt;
  opt.use_detector = true;
  return run_online_recovery(g, strip_schedule(12, 2, 6), world, opt);
}

/// Gossip-mode episode on 4 processors: a real death plus a healing
/// partition window — quorum beliefs, kLinkPartitioned/kLinkHealed.
FaultPlan world_gossip() {
  FaultPlan world;
  world.seed = 13;
  world.heartbeat.period = 1.0;
  world.failures.push_back({2, 2.0});
  world.partitions.push_back({0, 3, "", "", 1.0, 9.0});
  return world;
}

RuntimeResult episode_gossip(const TaskGraph& g, const FaultPlan& world) {
  RuntimeOptions opt;
  opt.use_detector = true;
  opt.use_gossip = true;
  opt.quorum = 2;
  return run_online_recovery(g, strip_schedule(16, 4, 4), world, opt);
}

// --- Clean episodes certify -------------------------------------------------

TEST(RuntimeAudit, PerfectEventEpisodeAuditsClean) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  const RuntimeResult r = episode_perfect(g, world);
  ASSERT_TRUE(r.complete);
  // The final continuation routes around the dead window, so the final
  // replay keeps the machine-level failure/rejoin pair but no kill.
  EXPECT_GT(std::count_if(r.events.begin(), r.events.end(),
                          [](const SimEvent& e) {
                            return e.kind == SimEventKind::kFailure;
                          }),
            0);
  EXPECT_GT(std::count_if(r.events.begin(), r.events.end(),
                          [](const SimEvent& e) {
                            return e.kind == SimEventKind::kRejoin;
                          }),
            0);
  ASSERT_FALSE(r.repairs.empty());

  AuditOptions opt;
  opt.debounce = 0.25;
  const LintReport report = audit_runtime(g, world, r, opt);
  EXPECT_TRUE(report.clean())
      << report_text(report);
  EXPECT_EQ(report.warnings(), 0u);
}

TEST(RuntimeAudit, MessageDropEpisodeAuditsClean) {
  const TaskGraph g = chain_pair_graph();
  const FaultPlan world = world_drop();
  const RuntimeResult r =
      run_online_recovery(g, chain_pair_schedule(), world);
  EXPECT_GT(r.execution.dropped_messages + r.repairs.size(), 0u);

  const LintReport report = audit_runtime(g, world, r);
  EXPECT_TRUE(report.clean())
      << report_text(report);
}

TEST(RuntimeAudit, DetectorEpisodeAuditsClean) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_detector();
  const RuntimeResult r = episode_detector(g, world);
  ASSERT_FALSE(r.beliefs.empty());

  AuditOptions opt;
  opt.use_detector = true;
  const LintReport report = audit_runtime(g, world, r, opt);
  EXPECT_TRUE(report.clean())
      << report_text(report);
}

TEST(RuntimeAudit, GossipPartitionEpisodeAuditsClean) {
  const TaskGraph g = unit_tasks(16);
  const FaultPlan world = world_gossip();
  const RuntimeResult r = episode_gossip(g, world);
  ASSERT_FALSE(r.beliefs.empty());

  AuditOptions opt;
  opt.use_detector = true;
  opt.use_gossip = true;
  opt.quorum = 2;
  const LintReport report = audit_runtime(g, world, r, opt);
  EXPECT_TRUE(report.clean())
      << report_text(report);
}

// --- Mutation self-tests: every error rule fires ---------------------------

TEST(RuntimeAuditMutation, ReorderedEventsFireEventOrder) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  RuntimeResult r = episode_perfect(g, world);
  ASSERT_GE(r.events.size(), 2u);
  std::swap(r.events.front(), r.events.back());
  rehash(r, false);

  AuditOptions opt;
  opt.debounce = 0.25;
  expect_only_rule(audit_runtime(g, world, r, opt), "audit-event-order");
}

TEST(RuntimeAuditMutation, OrphanRejoinFiresLivenessPairing) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  RuntimeResult r = episode_perfect(g, world);

  // Processor 0 never failed: a rejoin for it is an orphan. Insert in key
  // order so only the pairing rule can object.
  SimEvent orphan;
  orphan.time = 3.0;
  orphan.kind = SimEventKind::kRejoin;
  orphan.proc = 0;
  const auto at = std::lower_bound(
      r.events.begin(), r.events.end(), orphan,
      [](const SimEvent& a, const SimEvent& b) { return a.key() < b.key(); });
  r.events.insert(at, orphan);
  rehash(r, false);

  AuditOptions opt;
  opt.debounce = 0.25;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-liveness-pairing");
}

TEST(RuntimeAuditMutation, DroppedHealFiresPartitionPairing) {
  const TaskGraph g = unit_tasks(16);
  const FaultPlan world = world_gossip();
  RuntimeResult r = episode_gossip(g, world);
  const auto heal = std::find_if(r.events.begin(), r.events.end(),
                                 [](const SimEvent& e) {
                                   return e.kind == SimEventKind::kLinkHealed;
                                 });
  ASSERT_NE(heal, r.events.end());
  r.events.erase(heal);
  rehash(r, true);

  AuditOptions opt;
  opt.use_detector = true;
  opt.use_gossip = true;
  opt.quorum = 2;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-partition-pairing");
}

TEST(RuntimeAuditMutation, ShiftedDropInstantFiresPartitionDrop) {
  const TaskGraph g = chain_pair_graph();
  const FaultPlan world = world_drop();
  RuntimeResult r = run_online_recovery(g, chain_pair_schedule(), world);
  auto drop = std::find_if(r.events.begin(), r.events.end(),
                           [](const SimEvent& e) {
                             return e.kind == SimEventKind::kMessageDropped;
                           });
  ASSERT_NE(drop, r.events.end());
  drop->time += 0.25;
  std::sort(r.events.begin(), r.events.end(),
            [](const SimEvent& a, const SimEvent& b) {
              return a.key() < b.key();
            });
  rehash(r, false);

  expect_only_rule(audit_runtime(g, world, r), "audit-partition-drop");
}

TEST(RuntimeAuditMutation, TamperedBeliefFiresBeliefCausality) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_detector();
  RuntimeResult r = episode_detector(g, world);
  ASSERT_FALSE(r.beliefs.empty());
  r.beliefs.front().score += 1.0;
  rehash(r, true);

  AuditOptions opt;
  opt.use_detector = true;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-belief-causality");
}

TEST(RuntimeAuditMutation, ForgedQuorumConfirmationFiresQuorumSoundness) {
  const TaskGraph g = unit_tasks(16);
  const FaultPlan world = world_gossip();
  RuntimeResult r = episode_gossip(g, world);

  // Pull the real confirmation back to the suspicion instant: the state
  // machine still sees suspect -> confirm, but no second observer has
  // escalated that early, so the quorum cannot have backed it.
  auto suspected = std::find_if(r.beliefs.begin(), r.beliefs.end(),
                                [](const BeliefEvent& b) {
                                  return b.kind == BeliefKind::kSuspected;
                                });
  ASSERT_NE(suspected, r.beliefs.end());
  const ProcId subject = suspected->proc;
  const Cost at = suspected->time;
  auto confirmed = std::find_if(
      r.beliefs.begin(), r.beliefs.end(), [&](const BeliefEvent& b) {
        return b.kind == BeliefKind::kConfirmedDead && b.proc == subject;
      });
  ASSERT_NE(confirmed, r.beliefs.end());
  BeliefEvent forged = *confirmed;
  forged.time = at;
  r.beliefs.erase(confirmed);
  r.beliefs.insert(std::next(std::find_if(r.beliefs.begin(), r.beliefs.end(),
                                          [&](const BeliefEvent& b) {
                                            return b.kind ==
                                                       BeliefKind::kSuspected &&
                                                   b.proc == subject;
                                          })),
                   forged);
  rehash(r, true);

  AuditOptions opt;
  opt.use_detector = true;
  opt.use_gossip = true;
  opt.quorum = 2;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-quorum-soundness");
}

TEST(RuntimeAuditMutation, OverlappingReservationFiresReservationOverlap) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  const RuntimeResult r = episode_perfect(g, world);

  const std::vector<platform::LinkOccupancy> occupancies = {
      {0, 0.0, 2.0}, {1, 0.0, 1.0}, {0, 1.5, 3.0}};
  AuditOptions opt;
  opt.debounce = 0.25;
  opt.occupancies = &occupancies;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-reservation-overlap");
}

TEST(RuntimeAuditMutation, InflatedCheckpointClaimFiresCheckpointProvenance) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  RuntimeResult r = episode_perfect(g, world);

  // A fully repaired final log carries no kill, so forge one claiming far
  // more durable work than the unit task could ever have performed. The
  // execution record is kept consistent with the forged claim, and the
  // event sits in key order — only the work bound can object.
  SimEvent kill;
  kill.time = 2.6;
  kill.kind = SimEventKind::kTaskKilled;
  kill.proc = 1;
  kill.task = 8;
  kill.value = 1000.0;
  const auto at = std::lower_bound(
      r.events.begin(), r.events.end(), kill,
      [](const SimEvent& a, const SimEvent& b) { return a.key() < b.key(); });
  r.events.insert(at, kill);
  r.execution.checkpointed[kill.task] = 1000.0;
  rehash(r, false);

  AuditOptions opt;
  opt.debounce = 0.25;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-checkpoint-provenance");
}

TEST(RuntimeAuditMutation, EmptiedBatchFiresRepairProvenance) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  RuntimeResult r = episode_perfect(g, world);
  ASSERT_FALSE(r.repairs.empty());
  r.repairs.front().batch.clear();
  r.repairs.front().batch_beliefs.clear();

  AuditOptions opt;
  opt.debounce = 0.25;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-repair-provenance");
}

TEST(RuntimeAuditMutation, TamperedMakespanFiresResultConsistency) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_perfect();
  RuntimeResult r = episode_perfect(g, world);
  r.makespan += 1.0;

  AuditOptions opt;
  opt.debounce = 0.25;
  expect_only_rule(audit_runtime(g, world, r, opt),
                   "audit-result-consistency");
}

TEST(RuntimeAuditMutation, DetectorClaimWithoutHeartbeatFiresConfig) {
  const TaskGraph g = unit_tasks(12);
  const FaultPlan world = world_detector();
  const RuntimeResult r = episode_detector(g, world);

  FaultPlan no_heartbeat = world;
  no_heartbeat.heartbeat = HeartbeatConfig{};
  AuditOptions opt;
  opt.use_detector = true;
  expect_only_rule(audit_runtime(g, no_heartbeat, r, opt), "audit-config");
}

// --- Catalogue and report plumbing ------------------------------------------

TEST(RuntimeAudit, CatalogueIdsAreUniqueAndStable) {
  std::set<std::string> ids;
  for (const analysis::RuleInfo& rule : audit_rule_catalogue())
    EXPECT_TRUE(ids.insert(rule.id).second) << rule.id;
  EXPECT_TRUE(ids.count("audit-event-order") == 1);
  EXPECT_TRUE(ids.count("audit-quorum-soundness") == 1);
  EXPECT_TRUE(ids.count("audit-repair-provenance") == 1);
}

/// Golden output for the machine-readable report (docs/analysis.md
/// documents this schema): optional fields are omitted, numbers use
/// round-trip precision, counts and max_severity close the object. Any
/// schema change must update docs and this pin together.
TEST(RuntimeAudit, JsonReportSchemaGolden) {
  LintReport report;
  Diagnostic error;
  error.rule = "audit-event-order";
  error.severity = Severity::kError;
  error.task = 3;
  error.proc = 1;
  error.step = 7;
  error.expected = 2.5;
  error.actual = 2.25;
  error.message = "event 7 sorts before its predecessor";
  error.hint = "the log must be sorted by SimEvent::key()";
  report.diagnostics.push_back(error);
  Diagnostic info;
  info.rule = "audit-summary";
  info.severity = Severity::kInfo;
  info.message = "4 events, 0 beliefs, 2 repairs";
  info.hint = "summary only";
  report.diagnostics.push_back(info);

  std::ostringstream out;
  analysis::write_report_json(out, report);
  EXPECT_EQ(
      out.str(),
      "{\"diagnostics\":[{\"rule\":\"audit-event-order\",\"severity\":"
      "\"error\",\"step\":7,\"task\":3,\"proc\":1,\"expected\":2.5,"
      "\"actual\":2.25,\"message\":\"event 7 sorts before its "
      "predecessor\",\"hint\":\"the log must be sorted by "
      "SimEvent::key()\"},{\"rule\":\"audit-summary\",\"severity\":"
      "\"info\",\"message\":\"4 events, 0 beliefs, 2 repairs\",\"hint\":"
      "\"summary only\"}],\"counts\":{\"error\":1,\"warn\":0,\"info\":1},"
      "\"max_severity\":\"error\"}\n");
}

}  // namespace
}  // namespace flb
