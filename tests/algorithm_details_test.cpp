// Focused unit tests for subtle algorithm paths that the broader sweeps
// reach only statistically: FLB's EP demotion mechanics, DSC's
// accept/reject rule, LLB's fallback destination, and the annotated DOT
// export.

#include <sstream>

#include <gtest/gtest.h>

#include "flb/algos/dsc.hpp"
#include "flb/algos/llb.hpp"
#include "flb/core/flb.hpp"
#include "flb/graph/dot.hpp"
#include "flb/sched/validator.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- FLB demotion mechanics ----------------------------------------------------

TEST(FlbDetails, DemotionHappensExactlyWhenPrtPassesLmt) {
  // The paper-example run demotes exactly t1 (after t3 is scheduled),
  // t5 (after t2) and t6 (after t5): three demotions, visible in stats.
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  FlbStats stats;
  (void)flb.run_instrumented(g, 2, nullptr, &stats);
  EXPECT_EQ(stats.ep_demotions, 3u);
  // t0 and the three demoted tasks are scheduled from the non-EP list;
  // t3, t2, t4, t7 from the EP list.
  EXPECT_EQ(stats.non_ep_selections, 4u);
  EXPECT_EQ(stats.ep_selections, 4u);
  // Seven tasks were first classified EP-type (everything but entry t0).
  EXPECT_EQ(stats.tasks_classified_ep, 7u);
  EXPECT_EQ(stats.max_ready, 3u);
}

TEST(FlbDetails, EntryTasksAreAlwaysNonEp) {
  TaskGraph g = independent_graph(6);
  FlbScheduler flb;
  FlbStats stats;
  (void)flb.run_instrumented(g, 3, nullptr, &stats);
  EXPECT_EQ(stats.tasks_classified_ep, 0u);
  EXPECT_EQ(stats.non_ep_selections, 6u);
}

TEST(FlbDetails, PureChainIsAllEpSelections) {
  // In a chain each successor becomes ready exactly when its predecessor
  // finishes, with LMT = FT + comm >= PRT: always EP type, always kept on
  // the enabling processor.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 1.0;
  TaskGraph g = chain_graph(10, p);
  FlbScheduler flb;
  FlbStats stats;
  Schedule s = flb.run_instrumented(g, 4, nullptr, &stats);
  EXPECT_EQ(stats.ep_selections, 9u);       // all but the entry task
  EXPECT_EQ(stats.non_ep_selections, 1u);
  EXPECT_EQ(stats.ep_demotions, 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
}

// --- DSC accept/reject rule ------------------------------------------------------

TEST(DscDetails, MergesWhenZeroingHelps) {
  // Chain a -> b with expensive edge: merging lets b start at FT(a).
  TaskGraphBuilder builder;
  TaskId a = builder.add_task(1.0);
  TaskId b = builder.add_task(1.0);
  builder.add_edge(a, b, 5.0);
  TaskGraph g = std::move(builder).build();
  Clustering c = dsc_cluster(g);
  EXPECT_EQ(c.num_clusters, 1u);
  EXPECT_DOUBLE_EQ(c.start[b], 1.0);
}

TEST(DscDetails, RejectsMergeThatDelays) {
  // Fork a -> {b, c} with cheap edges: after b merges with a, c gains
  // nothing from joining the busy cluster (it would wait until 2) versus
  // a fresh processor (starts at its arrival 1 + 0.1).
  TaskGraphBuilder builder;
  TaskId a = builder.add_task(1.0);
  TaskId b = builder.add_task(1.0);
  TaskId c = builder.add_task(1.0);
  builder.add_edge(a, b, 0.1);
  builder.add_edge(a, c, 0.1);
  TaskGraph g = std::move(builder).build();
  Clustering cl = dsc_cluster(g);
  EXPECT_EQ(cl.num_clusters, 2u);
  EXPECT_NE(cl.cluster_of[b], cl.cluster_of[c]);
  // One child runs locally right after a; the other pays its message.
  Cost starts[2] = {cl.start[b], cl.start[c]};
  EXPECT_DOUBLE_EQ(std::min(starts[0], starts[1]), 1.0);
  EXPECT_DOUBLE_EQ(std::max(starts[0], starts[1]), 1.1);
}

TEST(DscDetails, PriorityOrderIsDominantSequenceFirst) {
  // Two independent chains, one heavy and one light: the heavy chain's
  // tasks carry larger tlevel+blevel and are examined first, ending up in
  // the first cluster.
  TaskGraphBuilder builder;
  TaskId h1 = builder.add_task(5.0);
  TaskId h2 = builder.add_task(5.0);
  TaskId l1 = builder.add_task(1.0);
  TaskId l2 = builder.add_task(1.0);
  builder.add_edge(h1, h2, 2.0);
  builder.add_edge(l1, l2, 2.0);
  TaskGraph g = std::move(builder).build();
  Clustering c = dsc_cluster(g);
  EXPECT_EQ(c.cluster_of[h1], 0u);
  EXPECT_EQ(c.cluster_of[h2], 0u);
}

// --- LLB fallback destination ------------------------------------------------------

TEST(LlbDetails, FallsBackWhenIdleProcessorHasNoCandidates) {
  // Clustering that maps everything into one cluster: after the first
  // task is scheduled the cluster is mapped to one processor, the other
  // processor is idle and there are no unmapped tasks — LLB must fall back
  // to the mapped processor instead of deadlocking on the idle one.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 5.0;
  TaskGraph g = chain_graph(6, p);
  Clustering c = dsc_cluster(g);
  ASSERT_EQ(c.num_clusters, 1u);
  Schedule s = llb_map(g, c, 2);
  ASSERT_TRUE(is_valid_schedule(g, s));
  for (TaskId t = 1; t < 6; ++t) EXPECT_EQ(s.proc(t), s.proc(0));
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(LlbDetails, UnmappedCandidateMapsWholeCluster) {
  // Two independent 2-task clusters on 2 processors: when the second
  // cluster's head is scheduled on the idle processor, its tail must
  // follow it there.
  TaskGraphBuilder builder;
  TaskId a1 = builder.add_task(2.0);
  TaskId a2 = builder.add_task(2.0);
  TaskId b1 = builder.add_task(2.0);
  TaskId b2 = builder.add_task(2.0);
  builder.add_edge(a1, a2, 4.0);
  builder.add_edge(b1, b2, 4.0);
  TaskGraph g = std::move(builder).build();
  Clustering c = dsc_cluster(g);
  ASSERT_EQ(c.num_clusters, 2u);
  Schedule s = llb_map(g, c, 2);
  ASSERT_TRUE(is_valid_schedule(g, s));
  EXPECT_EQ(s.proc(a1), s.proc(a2));
  EXPECT_EQ(s.proc(b1), s.proc(b2));
  EXPECT_NE(s.proc(a1), s.proc(b1));
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
}

// --- Annotated DOT export -----------------------------------------------------------

TEST(DotDetails, ScheduleAnnotationColoursByProcessor) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  std::ostringstream os;
  write_dot(os, g, s);
  std::string dot = os.str();
  EXPECT_NE(dot.find("proc=0"), std::string::npos);
  EXPECT_NE(dot.find("proc=1"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
  // All 8 tasks and 10 edges present.
  for (TaskId t = 0; t < 8; ++t)
    EXPECT_NE(dot.find("t" + std::to_string(t) + " ["), std::string::npos);
  EXPECT_NE(dot.find("t6 -> t7"), std::string::npos);
}

}  // namespace
}  // namespace flb
