// Arena + d-ary indexed heap tests: the allocation discipline under the
// scheduling-as-a-service hot path (core::Scratch).

#include "flb/util/arena.hpp"

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "flb/util/dary_heap.hpp"

namespace flb {
namespace {

TEST(ArenaTest, AllocReturnsWritableAlignedSpans) {
  Arena a;
  std::span<double> d = a.alloc<double>(100);
  std::span<std::uint32_t> u = a.alloc<std::uint32_t>(37);
  ASSERT_EQ(d.size(), 100u);
  ASSERT_EQ(u.size(), 37u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(u.data()) %
                alignof(std::uint32_t),
            0u);
  for (std::size_t i = 0; i < d.size(); ++i) d[i] = static_cast<double>(i);
  for (std::size_t i = 0; i < u.size(); ++i) u[i] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(d[99], 99.0);
  EXPECT_EQ(u[36], 36u);
}

TEST(ArenaTest, FillOverloadInitializes) {
  Arena a;
  std::span<int> s = a.alloc<int>(64, -7);
  for (int v : s) EXPECT_EQ(v, -7);
}

TEST(ArenaTest, ZeroSizeAllocIsEmpty) {
  Arena a;
  EXPECT_TRUE(a.alloc<double>(0).empty());
}

TEST(ArenaTest, GrowthDoesNotInvalidateEarlierSpans) {
  Arena a(/*initial_bytes=*/4096);
  std::span<std::uint64_t> first = a.alloc<std::uint64_t>(16);
  for (std::size_t i = 0; i < first.size(); ++i) first[i] = i * 3 + 1;
  // Force several growths.
  for (int round = 0; round < 8; ++round) (void)a.alloc<std::uint64_t>(4096);
  EXPECT_GT(a.blocks(), 1u);
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], i * 3 + 1);
}

TEST(ArenaTest, ResetMakesSameSizedSequenceAllocationStable) {
  Arena a;
  auto run = [&] {
    (void)a.alloc<double>(1000);
    (void)a.alloc<std::uint32_t>(500);
    (void)a.alloc<std::size_t>(2000);
  };
  run();
  const std::size_t blocks_after_warmup = a.blocks();
  const std::size_t reserved = a.bytes_reserved();
  for (int i = 0; i < 10; ++i) {
    a.reset();
    run();
  }
  // Steady state: no new blocks, no new bytes — the zero-allocation claim.
  EXPECT_EQ(a.blocks(), blocks_after_warmup);
  EXPECT_EQ(a.bytes_reserved(), reserved);
}

TEST(ArenaTest, SmallerRunAfterLargerRunReusesBlocks) {
  Arena a;
  (void)a.alloc<double>(10000);
  const std::size_t blocks = a.blocks();
  a.reset();
  (void)a.alloc<double>(10);
  EXPECT_EQ(a.blocks(), blocks);
}

// --- DaryIndexedHeap -------------------------------------------------------

TEST(DaryHeapTest, PopsInKeyOrder) {
  Arena a;
  DaryIndexedHeap<int> h;
  h.bind(a, 64);
  std::mt19937 rng(7);
  std::vector<int> keys(64);
  for (std::size_t i = 0; i < 64; ++i) {
    keys[i] = static_cast<int>(rng() % 1000);
    h.push(i, keys[i]);
  }
  ASSERT_TRUE(h.validate());
  std::sort(keys.begin(), keys.end());
  for (int expected : keys) {
    EXPECT_EQ(h.top_key(), expected);
    h.pop();
  }
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeapTest, EraseAndUpdateKeepHeapValid) {
  Arena a;
  DaryIndexedHeap<std::pair<double, std::size_t>> h;
  h.bind(a, 128);
  std::mt19937 rng(11);
  for (std::size_t i = 0; i < 128; ++i)
    h.push(i, {static_cast<double>(rng() % 500), i});
  for (std::size_t i = 0; i < 128; i += 3) h.erase(i);
  ASSERT_TRUE(h.validate());
  for (std::size_t i = 1; i < 128; i += 3)
    h.update(i, {static_cast<double>(rng() % 500), i});
  ASSERT_TRUE(h.validate());
  double prev = -1.0;
  while (!h.empty()) {
    EXPECT_GE(h.top_key().first, prev);
    prev = h.top_key().first;
    h.pop();
  }
}

TEST(DaryHeapTest, PushOrUpdateAndContains) {
  Arena a;
  DaryIndexedHeap<int> h;
  h.bind(a, 8);
  h.push_or_update(3, 30);
  EXPECT_TRUE(h.contains(3));
  EXPECT_EQ(h.key_of(3), 30);
  h.push_or_update(3, 5);
  EXPECT_EQ(h.key_of(3), 5);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_FALSE(h.contains(4));
}

TEST(DaryHeapTest, RebindDropsContents) {
  Arena a;
  DaryIndexedHeap<int> h;
  h.bind(a, 16);
  for (std::size_t i = 0; i < 16; ++i) h.push(i, static_cast<int>(i));
  a.reset();
  h.bind(a, 16);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(0));
  h.push(0, 42);
  EXPECT_EQ(h.top(), 0u);
}

// --- DaryHeapForest --------------------------------------------------------

TEST(DaryForestTest, ItemsLiveInAtMostOneHeap) {
  Arena a;
  DaryHeapForest<int> f;
  f.reset(a, 32, 4);
  std::mt19937 rng(3);
  for (std::size_t i = 0; i < 32; ++i)
    f.push(i % 4, i, static_cast<int>(rng() % 100));
  ASSERT_TRUE(f.validate());
  // Move a few items between heaps.
  f.move(0, 2, 1);
  f.move(5, 2, 2);
  EXPECT_EQ(f.heap_of(0), 2u);
  EXPECT_EQ(f.heap_of(5), 2u);
  ASSERT_TRUE(f.validate());
  // Per-heap pops come out in key order.
  for (std::size_t h = 0; h < 4; ++h) {
    int prev = -1;
    while (!f.empty(h)) {
      EXPECT_GE(f.top_key(h), prev);
      prev = f.top_key(h);
      f.pop(h);
    }
  }
  EXPECT_FALSE(f.contains(0));
}

TEST(DaryForestTest, ResetKeepsPerHeapPoolsAcrossRuns) {
  Arena a;
  DaryHeapForest<int> f;
  // Warm up with the largest shape.
  f.reset(a, 100, 8);
  for (std::size_t i = 0; i < 100; ++i) f.push(i % 8, i, static_cast<int>(i));
  a.reset();
  // A smaller run after reset must start empty.
  f.reset(a, 50, 4);
  EXPECT_EQ(f.num_heaps(), 4u);
  for (std::size_t h = 0; h < 4; ++h) EXPECT_TRUE(f.empty(h));
  EXPECT_FALSE(f.contains(7));
  for (std::size_t i = 0; i < 50; ++i) f.push(i % 4, i, static_cast<int>(50 - i));
  ASSERT_TRUE(f.validate());
  EXPECT_EQ(f.top_key(0), 2);  // id 48 carries key 2
}

}  // namespace
}  // namespace flb
