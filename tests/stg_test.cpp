#include "flb/graph/stg.hpp"

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"

namespace flb {
namespace {

// A small STG file: 4 real tasks plus dummy source (0) and sink (5).
//
//        0 (dummy)
//       / \
//      1   2
//      |  / |
//      3-+  4        (3 depends on 1 and 2; 4 depends on 2)
//       \   /
//        5 (dummy)
const char* kSmallStg = R"(# a comment line
4
0 0 0
1 3 1 0
2 5 1 0
3 2 2 1 2
4 4 1 2
5 0 2 3 4
)";

TEST(Stg, ParsesTasksAndEdges) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 1.0;
  TaskGraph g = stg_from_text(kSmallStg, p);
  ASSERT_EQ(g.num_tasks(), 6u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_DOUBLE_EQ(g.comp(0), 0.0);
  EXPECT_DOUBLE_EQ(g.comp(1), 3.0);
  EXPECT_DOUBLE_EQ(g.comp(2), 5.0);
  EXPECT_DOUBLE_EQ(g.comp(4), 4.0);
  EXPECT_TRUE(g.is_entry(0));
  EXPECT_TRUE(g.is_exit(5));
  // 3's predecessors are 1 and 2.
  auto preds = g.predecessors(3);
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0].node, 1u);
  EXPECT_EQ(preds[1].node, 2u);
}

TEST(Stg, DeterministicCommCostsMatchCcrTimesAvgComp) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 2.0;
  TaskGraph g = stg_from_text(kSmallStg, p);
  // avg comp = (0+3+5+2+4+0)/6 = 14/6; every edge = 2 * 14/6.
  for (const Edge& e : g.edges())
    EXPECT_NEAR(e.comm, 2.0 * 14.0 / 6.0, 1e-12);
}

TEST(Stg, RandomCommCostsAreSeeded) {
  WorkloadParams a, b, c;
  a.seed = b.seed = 5;
  c.seed = 6;
  TaskGraph ga = stg_from_text(kSmallStg, a);
  TaskGraph gb = stg_from_text(kSmallStg, b);
  TaskGraph gc = stg_from_text(kSmallStg, c);
  auto ea = ga.edges(), eb = gb.edges(), ec = gc.edges();
  bool all_equal_ab = true, all_equal_ac = true;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].comm != eb[i].comm) all_equal_ab = false;
    if (ea[i].comm != ec[i].comm) all_equal_ac = false;
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(Stg, SchedulableByEveryAlgorithm) {
  WorkloadParams p;
  p.seed = 3;
  p.ccr = 1.0;
  TaskGraph g = stg_from_text(kSmallStg, p);
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 2);
    EXPECT_TRUE(is_valid_schedule(g, s)) << name;
  }
}

TEST(Stg, RejectsMalformedInput) {
  EXPECT_THROW(stg_from_text(""), Error);
  EXPECT_THROW(stg_from_text("0\n"), Error);
  // Truncated: says 4 tasks but provides fewer lines.
  EXPECT_THROW(stg_from_text("4\n0 0 0\n1 3 1 0\n"), Error);
  // Out-of-order ids.
  EXPECT_THROW(stg_from_text("1\n0 0 0\n2 1 1 0\n1 0 1 0\n"), Error);
  // Forward predecessor reference.
  EXPECT_THROW(stg_from_text("1\n0 0 1 2\n1 1 1 0\n2 0 1 1\n"), Error);
  // Fewer predecessors than announced.
  EXPECT_THROW(stg_from_text("1\n0 0 0\n1 1 2 0\n2 0 1 1\n"), Error);
}

// Table-driven rejection: every malformed input must raise flb::Error whose
// message names the offense (so a user staring at a 5000-line STG file is
// pointed at the problem, not just told "no").
TEST(Stg, MalformedInputErrorsNameTheOffense) {
  struct Case {
    const char* label;
    const char* text;
    const char* expect_in_message;
  };
  const Case cases[] = {
      {"empty input", "", "empty input"},
      {"truncated task list", "2\n0 0 0\n1 1 1 0\n", "truncated"},
      {"out-of-order id", "1\n0 0 0\n2 1 1 0\n1 0 1 0\n", "in order"},
      {"forward predecessor", "1\n0 0 1 2\n1 1 1 0\n2 0 1 1\n",
       "predecessor id must precede"},
      {"negative cost", "1\n0 0 0\n1 -3 1 0\n2 0 1 1\n",
       "negative processing time"},
      // istream extraction rejects "inf"/"nan" tokens, so a non-finite cost
      // in a file surfaces as a malformed-line error naming the line; the
      // read_stg isfinite guard backstops stream configurations that do
      // accept them.
      {"non-finite cost", "1\n0 0 0\n1 inf 1 0\n2 0 1 1\n", "1 inf 1 0"},
      {"nan cost", "1\n0 0 0\n1 nan 1 0\n2 0 1 1\n", "1 nan 1 0"},
  };
  for (const Case& c : cases) {
    try {
      stg_from_text(c.text);
      FAIL() << c.label << ": expected flb::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.label << ": message was '" << e.what() << "'";
    }
  }
}

TEST(Stg, ZeroCostDummiesDoNotBreakLevels) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 0.5;
  TaskGraph g = stg_from_text(kSmallStg, p);
  auto bl = bottom_levels(g);
  // Sink has zero computation: bottom level 0.
  EXPECT_DOUBLE_EQ(bl[5], 0.0);
  EXPECT_GT(bl[0], 0.0);
  EXPECT_GT(critical_path(g), 0.0);
}

}  // namespace
}  // namespace flb
