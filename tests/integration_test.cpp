#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/sched/gantt.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(Registry, ListsPaperAlgorithms) {
  auto names = scheduler_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "MCP");
  EXPECT_EQ(names[1], "ETF");
  EXPECT_EQ(names[2], "DSC-LLB");
  EXPECT_EQ(names[3], "FCP");
  EXPECT_EQ(names[4], "FLB");
}

TEST(Registry, ConstructsEveryAlgorithmWithMatchingName) {
  for (const std::string& name : scheduler_names()) {
    auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr);
    EXPECT_EQ(sched->name(), name);
  }
}

TEST(Registry, RejectsUnknownName) {
  EXPECT_THROW(make_scheduler("CPOP"), Error);
  EXPECT_THROW(make_scheduler(""), Error);
}

// The big cross-product: every algorithm x every workload x several P and
// CCR values must produce a feasible schedule whose makespan is bounded
// below by the universal lower bound and above by fully-sequential
// execution plus total communication.
class EveryAlgorithmSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, int, double>> {};

TEST_P(EveryAlgorithmSweep, FeasibleAndBounded) {
  auto [algo, workload, procs, ccr] = GetParam();
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = 23;
  TaskGraph g = make_workload(workload, 250, params);
  auto sched = make_scheduler(algo, 1);
  Schedule s = sched->run(g, static_cast<ProcId>(procs));
  ASSERT_TRUE(is_valid_schedule(g, s))
      << algo << " on " << workload << " P=" << procs << "\n"
      << test::violations_to_string(g, s);
  EXPECT_GE(s.makespan(),
            makespan_lower_bound(g, static_cast<ProcId>(procs)) - 1e-9);
  EXPECT_LE(s.makespan(), g.total_comp() + g.total_comm() + 1e-9);
  EXPECT_LE(speedup(g, s), static_cast<Cost>(procs) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FullMatrix, EveryAlgorithmSweep,
    ::testing::Combine(::testing::ValuesIn(scheduler_names()),
                       ::testing::ValuesIn(workload_names()),
                       ::testing::Values(2, 8),
                       ::testing::Values(0.2, 5.0)),
    [](const auto& info) {
      std::string a = std::get<0>(info.param);
      for (char& ch : a)
        if (ch == '-') ch = '_';
      return a + "_" + std::get<1>(info.param) + "_P" +
             std::to_string(std::get<2>(info.param)) + "_CCR" +
             (std::get<3>(info.param) < 1 ? "02" : "50");
    });

// All algorithms pack a single processor without idle time.
TEST(Integration, AllAlgorithmsSequentialOnOneProc) {
  WorkloadParams params;
  params.seed = 31;
  TaskGraph g = make_workload("LU", 250, params);
  for (const std::string& name : scheduler_names()) {
    Schedule s = make_scheduler(name)->run(g, 1);
    EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-6) << name;
  }
}

// Sanity of relative quality at paper scale (small instance): the one-step
// earliest-start algorithms should not be dramatically worse than MCP.
TEST(Integration, OneStepAlgorithmsWithinFactorTwoOfMcp) {
  WorkloadParams params;
  params.seed = 37;
  params.ccr = 1.0;
  TaskGraph g = make_workload("Stencil", 400, params);
  std::map<std::string, Cost> makespans;
  for (const std::string& name : scheduler_names())
    makespans[name] = make_scheduler(name)->run(g, 8).makespan();
  for (const std::string& name : {"ETF", "FCP", "FLB"})
    EXPECT_LE(makespans[name], 2.0 * makespans["MCP"]) << name;
}

// Gantt and listing renderers accept any complete schedule.
TEST(Integration, GanttRendersEverySchedulerOutput) {
  TaskGraph g = test::fuzz_graph(6);
  for (const std::string& name : scheduler_names()) {
    Schedule s = make_scheduler(name)->run(g, 3);
    std::string gantt = to_gantt(g, s, 60);
    EXPECT_NE(gantt.find("P0 |"), std::string::npos) << name;
    EXPECT_NE(gantt.find("P2 |"), std::string::npos) << name;
    std::ostringstream listing;
    write_schedule_listing(listing, s);
    EXPECT_NE(listing.str().find("-> p"), std::string::npos) << name;
  }
}

// Increasing P may never break feasibility, and with generous P the
// makespan should approach (not beat) the computation critical path bound.
TEST(Integration, ScalingTowardsCriticalPath) {
  WorkloadParams params;
  params.seed = 41;
  params.ccr = 0.2;
  TaskGraph g = make_workload("FFT", 300, params);
  Cost cp = computation_critical_path(g);
  for (const std::string& name : scheduler_names()) {
    Schedule s = make_scheduler(name)->run(g, 64);
    EXPECT_GE(s.makespan(), cp - 1e-9) << name;
    // Low CCR and many processors: should be within a small factor.
    EXPECT_LE(s.makespan(), 5.0 * cp) << name;
  }
}

}  // namespace
}  // namespace flb
