#include "flb/core/flb.hpp"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "flb/graph/properties.hpp"
#include "flb/graph/width.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/paper_example.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(Flb, PaperExampleScheduleMatchesTable1) {
  TaskGraph g = paper_example_graph();
  FlbScheduler flb;
  Schedule s = flb.run(g, 2);
  ASSERT_TRUE(is_valid_schedule(g, s)) << test::violations_to_string(g, s);

  // The exact placements of Table 1.
  auto expect = [&](TaskId t, ProcId p, Cost st, Cost ft) {
    EXPECT_EQ(s.proc(t), p) << "t" << t;
    EXPECT_DOUBLE_EQ(s.start(t), st) << "t" << t;
    EXPECT_DOUBLE_EQ(s.finish(t), ft) << "t" << t;
  };
  expect(0, 0, 0, 2);
  expect(3, 0, 2, 5);
  expect(1, 1, 3, 5);
  expect(2, 0, 5, 7);
  expect(4, 1, 5, 8);
  expect(5, 0, 7, 10);
  expect(6, 1, 8, 10);
  expect(7, 0, 12, 14);
  EXPECT_DOUBLE_EQ(s.makespan(), 14.0);
}

TEST(Flb, SingleProcessorPacksSequentially) {
  for (std::size_t i = 0; i < 8; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule s = flb.run(g, 1);
    EXPECT_TRUE(is_valid_schedule(g, s));
    // One processor, always a ready task: no idle gaps.
    EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9) << g.name();
  }
}

TEST(Flb, EmptyGraph) {
  TaskGraphBuilder b;
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;
  Schedule s = flb.run(g, 4);
  EXPECT_TRUE(s.complete());
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST(Flb, SingleTask) {
  TaskGraphBuilder b;
  b.add_task(5.0);
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;
  Schedule s = flb.run(g, 4);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_DOUBLE_EQ(s.start(0), 0.0);
}

TEST(Flb, IndependentTasksLoadBalance) {
  WorkloadParams p;
  p.random_weights = false;
  TaskGraph g = independent_graph(8, p);
  FlbScheduler flb;
  Schedule s = flb.run(g, 4);
  EXPECT_TRUE(is_valid_schedule(g, s));
  // 8 unit tasks over 4 processors: perfect balance, makespan 2.
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
  for (ProcId q = 0; q < 4; ++q) EXPECT_EQ(s.tasks_on(q).size(), 2u);
}

TEST(Flb, ChainStaysOnOneProcessor) {
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 10.0;  // expensive communication: moving is never worth it
  TaskGraph g = chain_graph(10, p);
  FlbScheduler flb;
  Schedule s = flb.run(g, 4);
  EXPECT_TRUE(is_valid_schedule(g, s));
  EXPECT_DOUBLE_EQ(s.makespan(), 10.0);
  for (TaskId t = 1; t < 10; ++t) EXPECT_EQ(s.proc(t), s.proc(0));
}

TEST(Flb, RejectsZeroProcessors) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  EXPECT_THROW((void)flb.run(g, 0), Error);
}

TEST(Flb, DeterministicAcrossRuns) {
  TaskGraph g = test::fuzz_graph(3);
  FlbScheduler flb;
  Schedule a = flb.run(g, 4);
  Schedule b = flb.run(g, 4);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(a.proc(t), b.proc(t));
    EXPECT_DOUBLE_EQ(a.start(t), b.start(t));
  }
}

// The core claim (Theorem 3): the pair FLB schedules at every iteration
// attains the minimum EST over ALL ready tasks and ALL processors.
TEST(Flb, Theorem3ChosenPairIsGlobalArgmin) {
  for (std::size_t i = 0; i < 24; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {2u, 3u, 7u}) {
      FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
        Cost best = kInfiniteTime;
        for (TaskId t : step.ready_tasks)
          best = std::min(best, best_proc_exhaustive(g, s, t).second);
        ASSERT_NEAR(step.est, best, 1e-9)
            << g.name() << " P=" << procs << ": FLB chose t" << step.task
            << "@p" << step.proc << " starting " << step.est
            << " but the global minimum start is " << best;
      };
      FlbScheduler flb;
      Schedule s = flb.run_instrumented(g, procs, &obs, nullptr);
      ASSERT_TRUE(is_valid_schedule(g, s));
    }
  }
}

// Theorem 3 at full paper scale: the configuration where our Fig. 4
// reproduction shows FLB's largest quality deviation from ETF (LU,
// CCR = 5, P = 16) still satisfies per-iteration optimality exactly —
// pinning the deviation on tie-breaking cascades, not on a selection bug.
TEST(Flb, Theorem3HoldsAtPaperScaleOnLu) {
  WorkloadParams params;
  params.ccr = 5.0;
  params.seed = 1;
  TaskGraph g = make_workload("LU", 2000, params);
  const ProcId procs = 16;
  FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
    Cost best = kInfiniteTime;
    for (TaskId t : step.ready_tasks)
      best = std::min(best, best_proc_exhaustive(g, s, t).second);
    ASSERT_NEAR(step.est, best, 1e-9) << "task " << step.task;
  };
  FlbScheduler flb;
  Schedule s = flb.run_instrumented(g, procs, &obs, nullptr);
  ASSERT_TRUE(is_valid_schedule(g, s));
}

// On an EST tie between the EP and non-EP candidates the non-EP pair must
// win (paper Section 4.1). Verified on the paper example where iteration 7
// has exactly such a tie (t6 EP vs t5 non-EP, both start at 7).
TEST(Flb, TieBetweenPairsPrefersNonEp) {
  TaskGraph g = paper_example_graph();
  std::vector<FlbStep> steps;
  FlbObserver obs = [&](const Schedule&, const FlbStep& step) {
    steps.push_back(step);
  };
  FlbScheduler flb;
  (void)flb.run_instrumented(g, 2, &obs, nullptr);
  ASSERT_EQ(steps.size(), 8u);
  // Iteration 6 (0-based 5) schedules t5 as non-EP at time 7 although the
  // EP candidate t6 could also start at 7.
  EXPECT_EQ(steps[5].task, 5u);
  EXPECT_FALSE(steps[5].ep_type);
  EXPECT_DOUBLE_EQ(steps[5].est, 7.0);
}

TEST(Flb, StatsAreConsistent) {
  TaskGraph g = make_workload("LU", 300, {});
  FlbScheduler flb;
  FlbStats stats;
  Schedule s = flb.run_instrumented(g, 4, nullptr, &stats);
  EXPECT_TRUE(is_valid_schedule(g, s));
  EXPECT_EQ(stats.iterations, g.num_tasks());
  EXPECT_EQ(stats.ep_selections + stats.non_ep_selections, g.num_tasks());
  EXPECT_GE(stats.max_ready, 1u);
  // Every demoted task was first classified EP.
  EXPECT_LE(stats.ep_demotions, stats.tasks_classified_ep);
}

TEST(Flb, MaxReadyNeverExceedsWidth) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    FlbStats stats;
    (void)flb.run_instrumented(g, 3, nullptr, &stats);
    EXPECT_LE(stats.max_ready, exact_width(g))
        << g.name() << ": the ready set is an antichain, so its size is "
        << "bounded by the graph width (paper Section 2)";
  }
}

TEST(Flb, MakespanRespectsLowerBounds) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {1u, 2u, 4u, 16u}) {
      FlbScheduler flb;
      Schedule s = flb.run(g, procs);
      EXPECT_GE(s.makespan(), makespan_lower_bound(g, procs) - 1e-9);
      EXPECT_LE(speedup(g, s), static_cast<Cost>(procs) + 1e-9);
    }
  }
}

// Tie-break ablation options: all remain valid and deterministic; the
// bottom-level rule is the paper's default.
TEST(Flb, TieBreakVariantsAreValid) {
  TaskGraph g = make_workload("Stencil", 300, {});
  for (FlbTieBreak tb : {FlbTieBreak::kBottomLevel, FlbTieBreak::kTaskId,
                         FlbTieBreak::kRandom}) {
    FlbOptions options;
    options.tie_break = tb;
    options.seed = 7;
    FlbScheduler flb(options);
    Schedule a = flb.run(g, 4);
    EXPECT_TRUE(is_valid_schedule(g, a));
    Schedule b = FlbScheduler(options).run(g, 4);
    EXPECT_DOUBLE_EQ(a.makespan(), b.makespan());
  }
}

TEST(Flb, RandomTieBreakSeedsDiffer) {
  // A graph with massive tie potential: unit weights, many equal ESTs.
  WorkloadParams p;
  p.random_weights = false;
  TaskGraph g = fork_join_graph(3, 16, p);
  FlbOptions o1, o2;
  o1.tie_break = o2.tie_break = FlbTieBreak::kRandom;
  o1.seed = 1;
  o2.seed = 2;
  Schedule s1 = FlbScheduler(o1).run(g, 4);
  Schedule s2 = FlbScheduler(o2).run(g, 4);
  EXPECT_TRUE(is_valid_schedule(g, s1));
  EXPECT_TRUE(is_valid_schedule(g, s2));
  bool any_difference = false;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (s1.proc(t) != s2.proc(t)) any_difference = true;
  EXPECT_TRUE(any_difference);
}

// Theorem 3 across every workload family: the per-iteration exhaustive
// oracle on structured graphs (the fuzz corpus above is unstructured).
class Theorem3WorkloadSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(Theorem3WorkloadSweep, ChosenPairIsGlobalArgmin) {
  auto [name, procs] = GetParam();
  WorkloadParams params;
  params.ccr = 5.0;  // communication-heavy: richest EP/non-EP dynamics
  params.seed = 77;
  TaskGraph g = make_workload(name, 300, params);
  FlbObserver obs = [&](const Schedule& s, const FlbStep& step) {
    Cost best = kInfiniteTime;
    for (TaskId t : step.ready_tasks)
      best = std::min(best, best_proc_exhaustive(g, s, t).second);
    ASSERT_NEAR(step.est, best, 1e-9)
        << name << " P=" << procs << " task " << step.task;
  };
  FlbScheduler flb;
  Schedule s =
      flb.run_instrumented(g, static_cast<ProcId>(procs), &obs, nullptr);
  ASSERT_TRUE(is_valid_schedule(g, s));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Theorem3WorkloadSweep,
    ::testing::Combine(::testing::ValuesIn(workload_names()),
                       ::testing::Values(2, 8, 32)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_P" +
             std::to_string(std::get<1>(info.param));
    });

// Parameterized validity sweep: every workload family x P x CCR.
class FlbSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, double>> {};

TEST_P(FlbSweep, ProducesValidSchedulesWithSaneMakespan) {
  auto [name, procs, ccr] = GetParam();
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = 42;
  TaskGraph g = make_workload(name, 400, params);
  FlbScheduler flb;
  Schedule s = flb.run(g, static_cast<ProcId>(procs));
  ASSERT_TRUE(is_valid_schedule(g, s)) << test::violations_to_string(g, s);
  EXPECT_GE(s.makespan(),
            makespan_lower_bound(g, static_cast<ProcId>(procs)) - 1e-9);
  // A one-step list scheduler never idles everyone: makespan is bounded by
  // the fully sequential execution plus all communication.
  EXPECT_LE(s.makespan(), g.total_comp() + g.total_comm() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FlbSweep,
    ::testing::Combine(::testing::ValuesIn(workload_names()),
                       ::testing::Values(1, 2, 8, 32),
                       ::testing::Values(0.2, 5.0)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_P" +
             std::to_string(std::get<1>(info.param)) + "_CCR" +
             (std::get<2>(info.param) < 1 ? "02" : "50");
    });

}  // namespace
}  // namespace flb
