// Recovery faults and recovery-aware repair: transient slowdowns that
// restore speed, killed processors that rejoin with cold caches, per-
// processor admission in FlbScheduler::resume, the opportunistic give-back
// pass in repair_schedule(), and routed-topology repair determinism.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "flb/core/flb.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

SimOptions with_faults(const FaultPlan& plan) {
  SimOptions options;
  options.faults = &plan;
  return options;
}

std::string validation_error(const FaultPlan& plan, ProcId procs) {
  try {
    plan.validate(procs);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

// --- Kill/rejoin window validation -------------------------------------------

TEST(Recovery, ValidationRejectsRejoinWithoutFailure) {
  FaultPlan orphan;
  orphan.rejoins.push_back({1, 5.0});
  std::string msg = validation_error(orphan, 4);
  EXPECT_NE(msg.find("rejoins[0]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("no preceding failure"), std::string::npos) << msg;

  // A rejoin of a *different* processor than the one that failed is just as
  // orphaned.
  FaultPlan wrong_proc;
  wrong_proc.failures.push_back({0, 1.0});
  wrong_proc.rejoins.push_back({1, 2.0});
  EXPECT_NE(validation_error(wrong_proc, 4).find("rejoins[0]"),
            std::string::npos);
}

TEST(Recovery, ValidationRejectsOverlappingWindows) {
  // A second failure inside a still-open kill/rejoin window.
  FaultPlan overlap;
  overlap.failures.push_back({0, 1.0});
  overlap.failures.push_back({0, 2.0});
  overlap.rejoins.push_back({0, 3.0});
  std::string msg = validation_error(overlap, 4);
  EXPECT_NE(msg.find("failures[1]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicates"), std::string::npos) << msg;

  // A rejoin at exactly the kill instant does not close the window.
  FaultPlan instant;
  instant.failures.push_back({0, 1.0});
  instant.rejoins.push_back({0, 1.0});
  EXPECT_NE(validation_error(instant, 4).find("strictly after"),
            std::string::npos);

  // Out-of-range and non-finite rejoin entries are named per-entry.
  FaultPlan range;
  range.failures.push_back({0, 1.0});
  range.rejoins.push_back({9, 2.0});
  EXPECT_NE(validation_error(range, 4).find("rejoins[0]"), std::string::npos);

  // Alternating kill/rejoin cycles are legal.
  FaultPlan cycles;
  cycles.failures.push_back({0, 1.0});
  cycles.rejoins.push_back({0, 2.0});
  cycles.failures.push_back({0, 3.0});
  cycles.rejoins.push_back({0, 4.5});
  EXPECT_NO_THROW(cycles.validate(4));
}

TEST(Recovery, ValidationRejectsBadSlowdownUntil) {
  FaultPlan bad;
  bad.slowdowns.push_back({0, 2.0, 0.5, 1.5});  // recovers before the onset
  EXPECT_NE(validation_error(bad, 4).find("slowdowns[0]"), std::string::npos);
  FaultPlan ok;
  ok.slowdowns.push_back({0, 2.0, 0.5, 6.0});
  ok.slowdowns.push_back({1, 2.0, 0.5});  // kInfiniteTime = permanent
  EXPECT_NO_THROW(ok.validate(4));
}

// --- Resolution: canonical windows, availability, final speeds ---------------

TEST(Recovery, ResolveCanonicalizesWindowsAndAvailability) {
  FaultPlan plan;
  plan.failures.push_back({0, 1.0});
  plan.rejoins.push_back({0, 2.0});
  plan.failures.push_back({0, 3.0});
  plan.failures.push_back({1, 4.0});
  plan.validate(4);
  ResolvedFaults r = resolve_faults(plan);

  // Proc 0 ends dead (second window never closes); proc 1 never recovers;
  // procs 2..3 were never touched.
  EXPECT_EQ(r.available_from(0), kInfiniteTime);
  EXPECT_EQ(r.available_from(1), kInfiniteTime);
  EXPECT_DOUBLE_EQ(r.available_from(2), 0.0);
  EXPECT_DOUBLE_EQ(r.downtime(0, 10.0), (2.0 - 1.0) + (10.0 - 3.0));
  EXPECT_DOUBLE_EQ(r.downtime(1, 10.0), 6.0);
  EXPECT_DOUBLE_EQ(r.downtime(2, 10.0), 0.0);
  // Clamped to a horizon inside the first window.
  EXPECT_DOUBLE_EQ(r.downtime(0, 1.5), 0.5);

  FaultPlan healed;
  healed.failures.push_back({0, 1.0});
  healed.rejoins.push_back({0, 2.5});
  ResolvedFaults h = resolve_faults(healed);
  EXPECT_DOUBLE_EQ(h.available_from(0), 2.5);
  EXPECT_DOUBLE_EQ(h.downtime(0, 10.0), 1.5);
}

TEST(Recovery, BurstStrikesCollidingWithOpenWindowsAreDropped) {
  // An explicit permanent kill at t=5 lands inside the burst's [4, 6)
  // window: the resolved set keeps the alternating state-changing events
  // only, so the collision is swallowed and proc 0 ends alive.
  FaultPlan plan;
  plan.failures.push_back({0, 5.0});
  plan.domains.push_back({"rack0", {0}});
  plan.bursts.push_back({"rack0", 4.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0});
  plan.validate(2);
  ResolvedFaults r = resolve_faults(plan);
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_DOUBLE_EQ(r.failures[0].time, 4.0);
  ASSERT_EQ(r.rejoins.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rejoins[0].time, 6.0);
  EXPECT_DOUBLE_EQ(r.available_from(0), 6.0);
}

TEST(Recovery, TransientBurstsHealAndFinalSpeedsIgnoreThem) {
  FaultPlan plan;
  plan.domains.push_back({"rack0", {0, 1}});
  // Transient slowdown burst: factor 0.25 for 3 time units per member.
  plan.bursts.push_back({"rack0", 5.0, 0.0, 1.0, 0.25, 0.0, 0.0, 3.0});
  plan.slowdowns.push_back({2, 1.0, 0.5});       // permanent
  plan.slowdowns.push_back({3, 1.0, 0.5, 9.0});  // transient
  plan.validate(4);
  ResolvedFaults r = resolve_faults(plan);
  ASSERT_EQ(r.slowdowns.size(), 4u);
  for (const SlowdownFault& s : r.slowdowns)
    if (s.proc <= 1) EXPECT_DOUBLE_EQ(s.until, 8.0);

  // final_speeds models the end state: healed throttles do not count.
  std::vector<double> speeds = final_speeds(r, 4);
  EXPECT_DOUBLE_EQ(speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(speeds[1], 1.0);
  EXPECT_DOUBLE_EQ(speeds[2], 0.5);
  EXPECT_DOUBLE_EQ(speeds[3], 1.0);
}

// --- Simulator: transient slowdowns and rejoins ------------------------------

TEST(RecoverySim, SlowdownUntilRestoresSpeedExactly) {
  TaskGraphBuilder b;
  b.add_task(4.0);
  TaskGraph g = std::move(b).build();
  Schedule s(1, 1);
  s.assign(0, 0, 0.0, 4.0);

  // Half speed on [2, 4): 2 units by t=2, 1 unit over [2,4), the last unit
  // at restored full speed -> t=5.
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0, 0.5, 4.0});
  SimResult r = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.finish[0], 5.0);

  // Two overlapping transients that both end: the speed returns to exactly
  // 1.0 (segment speeds are recomputed, not multiplied back).
  FaultPlan overlap;
  overlap.slowdowns.push_back({0, 1.0, 0.3, 2.0});
  overlap.slowdowns.push_back({0, 1.5, 0.7, 2.0});
  // Work done: 1 (speed 1) + 0.5*0.3 + 0.5*0.21 = 1.255 by t=2; the
  // remaining 2.745 at speed 1 -> t=4.745.
  SimResult o = simulate(g, s, with_faults(overlap));
  ASSERT_TRUE(o.complete());
  EXPECT_DOUBLE_EQ(o.finish[0], 2.0 + (4.0 - 1.255));
}

TEST(RecoverySim, RejoinedProcessorRunsLaterWorkColdly) {
  // A (proc 1, work 5) --comm 2--> B (proc 0, work 1). Proc 0 is killed at
  // t=0.5 and rejoins at t=3: C (proc 0, work 2, independent) was already
  // dispatched and dies with the kill; B only becomes ready at t=5, after
  // the reboot, and runs on the recovered processor.
  TaskGraphBuilder b;
  TaskId a = b.add_task(5.0);
  TaskId bb = b.add_task(1.0);
  TaskId c = b.add_task(2.0);
  b.add_edge(a, bb, 2.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 3);
  s.assign(c, 0, 0.0, 2.0);
  s.assign(a, 1, 0.0, 5.0);
  s.assign(bb, 0, 7.0, 8.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan;
  plan.failures.push_back({0, 0.5});
  plan.rejoins.push_back({0, 3.0});
  SimResult r = simulate(g, s, with_faults(plan));
  EXPECT_EQ(r.rejoins, 1u);
  // C died with the kill; its half unit of work is lost.
  EXPECT_EQ(r.start[c], kUndefinedTime);
  EXPECT_DOUBLE_EQ(r.work_lost, 0.5);
  ASSERT_EQ(r.unfinished.size(), 1u);
  EXPECT_EQ(r.unfinished[0], c);
  // B's message arrives at 5 + 2 = 7, after the reboot: no re-fetch needed.
  EXPECT_DOUBLE_EQ(r.start[bb], 7.0);
  EXPECT_DOUBLE_EQ(r.finish[bb], 8.0);
  // Downtime accounting covers only the [0.5, 3) window.
  EXPECT_DOUBLE_EQ(r.dead_proc_idle, 2.5);
}

TEST(RecoverySim, DataDeliveredBeforeRebootIsRefetched) {
  // A (proc 1, work 1) --comm 2--> B (proc 0, work 1). The message lands at
  // t=3, while proc 0 is down [0.5, 10): B must re-fetch it after the
  // reboot and starts at 10 + 2 = 12.
  TaskGraphBuilder b;
  TaskId a = b.add_task(1.0);
  TaskId bb = b.add_task(1.0);
  b.add_edge(a, bb, 2.0);
  TaskGraph g = std::move(b).build();
  Schedule s(2, 2);
  s.assign(a, 1, 0.0, 1.0);
  s.assign(bb, 0, 3.0, 4.0);
  ASSERT_TRUE(is_valid_schedule(g, s));

  FaultPlan plan;
  plan.failures.push_back({0, 0.5});
  plan.rejoins.push_back({0, 10.0});
  SimResult r = simulate(g, s, with_faults(plan));
  ASSERT_TRUE(r.complete());
  EXPECT_DOUBLE_EQ(r.start[bb], 12.0);
  EXPECT_DOUBLE_EQ(r.makespan, 13.0);
}

// --- resume(): per-processor admission ---------------------------------------

TEST(RecoveryResume, ProcReleaseDelaysAdmission) {
  // Two independent unit tasks on two processors: normally both start at 0.
  // With proc 1 admitted only from t=5, both land on proc 0 instead.
  TaskGraphBuilder b;
  b.add_task(1.0);
  b.add_task(1.0);
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;

  FlbResumeContext ctx;
  ctx.alive = {true, true};
  ctx.proc_release = {0.0, 5.0};
  Schedule s = flb.resume(g, Schedule(2, 2), ctx);
  EXPECT_EQ(s.proc(0), 0u);
  EXPECT_EQ(s.proc(1), 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);

  // Shrink the admission delay below the queueing delay and the second
  // task moves over.
  ctx.proc_release = {0.0, 0.5};
  Schedule t = flb.resume(g, Schedule(2, 2), ctx);
  EXPECT_EQ(t.proc(1), 1u);
  EXPECT_DOUBLE_EQ(t.start(1), 0.5);

  // Validation: sizes and finiteness.
  FlbResumeContext bad = ctx;
  bad.proc_release = {0.0};
  EXPECT_THROW((void)flb.resume(g, Schedule(2, 2), bad), Error);
  bad.proc_release = {0.0, -1.0};
  EXPECT_THROW((void)flb.resume(g, Schedule(2, 2), bad), Error);
  FlbResumeContext bad_topo = ctx;
  Topology three = Topology::ring(3);
  bad_topo.proc_release.clear();
  bad_topo.topology = &three;
  EXPECT_THROW((void)flb.resume(g, Schedule(2, 2), bad_topo), Error);
}

// --- Repair: opportunistic give-back -----------------------------------------

TEST(RecoveryRepair, GiveBackBeatsNoGiveBackOnIndependentWork) {
  // Twelve unit tasks on two processors. Proc 1 dies at 0.5 and rejoins at
  // 1.0: the no-give-back repair crams everything onto proc 0, the
  // recovery-aware repair hands half of it back.
  TaskGraphBuilder b;
  for (int i = 0; i < 12; ++i) b.add_task(1.0);
  TaskGraph g = std::move(b).build();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);

  FaultPlan plan;
  plan.failures.push_back({1, 0.5});
  plan.rejoins.push_back({1, 1.0});
  SimResult partial = simulate(g, nominal, with_faults(plan));
  EXPECT_EQ(partial.rejoins, 1u);

  RepairOptions no_gb;
  no_gb.give_back = false;
  RepairResult baseline = repair_schedule(g, nominal, partial, plan, no_gb);
  RepairResult repair = repair_schedule(g, nominal, partial, plan);

  ASSERT_TRUE(is_valid_schedule(g, baseline.schedule, baseline.durations));
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations));
  EXPECT_EQ(baseline.given_back_tasks, 0u);
  EXPECT_EQ(repair.recovered_procs, 1u);
  EXPECT_GT(repair.given_back_tasks, 0u);
  EXPECT_GT(repair.work_given_back, 0.0);
  EXPECT_LT(repair.schedule.makespan(), baseline.schedule.makespan());
  EXPECT_EQ(repair.survivors, 2u);
  EXPECT_GT(repair.time_recovered, 0.0);
  EXPECT_GT(repair.time_degraded, 0.0);

  // Give-back placements respect the admission instant.
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (partial.finish[t] == kUndefinedTime && repair.schedule.proc(t) == 1)
      EXPECT_GE(repair.schedule.start(t), 1.0 - 1e-9);

  // Metrics carry the recovery accounting through.
  RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
  EXPECT_EQ(m.recovered_procs, 1u);
  EXPECT_EQ(m.given_back_tasks, repair.given_back_tasks);
  EXPECT_DOUBLE_EQ(m.work_given_back, repair.work_given_back);
  EXPECT_DOUBLE_EQ(m.time_recovered, repair.time_recovered);
}

// The acceptance episode across fuzzed workloads: a killed processor
// rejoins mid-schedule; the recovery-aware repair is feasible (validator-
// clean, durations-aware overload) and never worse than the no-give-back
// repair — under the clique and under a routed mesh.
TEST(RecoveryRepair, RejoinEpisodeNeverWorseThanNoGiveBack) {
  Topology mesh = Topology::mesh2d(2, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FlbScheduler flb;
    Schedule nominal = flb.run(g, 4);
    const Cost span = nominal.makespan();

    FaultPlan plan;
    plan.failures.push_back({1, 0.3 * span});
    plan.rejoins.push_back({1, 0.45 * span});
    plan.checkpoint = {0.25 * span, 0.0};
    SimResult partial = simulate(g, nominal, with_faults(plan));

    const Topology* const topologies[] = {nullptr, &mesh};
    for (const Topology* topo : topologies) {
      RepairOptions opts;
      opts.topology = topo;
      RepairOptions no_gb = opts;
      no_gb.give_back = false;

      RepairResult repair = repair_schedule(g, nominal, partial, plan, opts);
      RepairResult baseline =
          repair_schedule(g, nominal, partial, plan, no_gb);
      ASSERT_TRUE(repair.schedule.complete()) << g.name();
      ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations))
          << g.name() << "\n"
          << test::violations_to_string(g, repair.schedule);
      ASSERT_TRUE(
          is_valid_schedule(g, baseline.schedule, baseline.durations))
          << g.name();
      EXPECT_LE(repair.schedule.makespan(),
                baseline.schedule.makespan() + 1e-9)
          << g.name();

      // Migrated tasks never land on the processor during its downtime.
      for (TaskId t = 0; t < g.num_tasks(); ++t)
        if (partial.finish[t] == kUndefinedTime &&
            repair.schedule.proc(t) == 1)
          EXPECT_GE(repair.schedule.start(t), 0.45 * span - 1e-9) << g.name();

      // The continuation replays to completion carrying its durations —
      // under the clique simulator and the routed model alike.
      SimOptions replay_opts;
      replay_opts.work_override = &repair.durations;
      EXPECT_TRUE(simulate(g, repair.schedule, replay_opts).complete())
          << g.name();
      if (topo != nullptr)
        EXPECT_TRUE(simulate_on_topology(g, repair.schedule, *topo, 1.0,
                                         &repair.durations)
                        .sim.complete())
            << g.name();
    }
  }
}

TEST(RecoveryRepair, AllProcessorsKilledButOneRejoins) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan plan;
  plan.failures.push_back({0, 0.1});
  plan.failures.push_back({1, 0.1});
  plan.rejoins.push_back({0, 0.6});
  SimResult partial = simulate(g, nominal, with_faults(plan));

  // give_back=false cannot refuse the only capacity there is: the recovery
  // continuation is mandatory and lands everything on the rejoined proc.
  RepairOptions no_gb;
  no_gb.give_back = false;
  RepairResult repair = repair_schedule(g, nominal, partial, plan, no_gb);
  ASSERT_TRUE(repair.schedule.complete());
  ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations));
  EXPECT_EQ(repair.survivors, 1u);
  EXPECT_EQ(repair.recovered_procs, 1u);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (partial.finish[t] == kUndefinedTime) {
      EXPECT_EQ(repair.schedule.proc(t), 0u);
      EXPECT_GE(repair.schedule.start(t), 0.6 - 1e-9);
    }

  // A plan that kills everyone for good still throws.
  FaultPlan fatal;
  fatal.failures.push_back({0, 0.1});
  fatal.failures.push_back({1, 0.1});
  SimResult dead = simulate(g, nominal, with_faults(fatal));
  EXPECT_THROW((void)repair_schedule(g, nominal, dead, fatal), Error);
}

// --- Routed-topology repair determinism (mirrors the clique test) ------------

TEST(RecoveryRepair, RoutedRepairIsDeterministic) {
  Topology mesh = Topology::mesh2d(2, 2);
  Topology torus = Topology::torus2d(2, 3);
  struct Case {
    const Topology* topo;
    ProcId procs;
  };
  const Case cases[] = {{&mesh, 4}, {&torus, 6}};
  for (const Case& c : cases) {
    for (std::size_t i = 0; i < 4; ++i) {
      TaskGraph g = test::fuzz_graph(i);
      FlbScheduler flb;
      Schedule nominal = flb.run(g, c.procs);
      const Cost span = nominal.makespan();

      FaultPlan plan;
      plan.seed = 29;
      plan.failures.push_back({1, 0.3 * span});
      plan.rejoins.push_back({1, 0.5 * span});
      plan.slowdowns.push_back({0, 0.2 * span, 0.5, 0.8 * span});
      plan.checkpoint = {0.25 * span, 0.0};

      RepairOptions opts;
      opts.topology = c.topo;

      SimResult partial = simulate(g, nominal, with_faults(plan));
      RepairResult repair = repair_schedule(g, nominal, partial, plan, opts);
      RobustnessMetrics m = robustness_metrics(nominal, partial, repair);

      SimResult partial2 = simulate(g, nominal, with_faults(plan));
      RepairResult repair2 =
          repair_schedule(g, nominal, partial2, plan, opts);
      RobustnessMetrics m2 = robustness_metrics(nominal, partial2, repair2);

      // Bit-identical schedules...
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        ASSERT_EQ(repair.schedule.proc(t), repair2.schedule.proc(t))
            << g.name();
        ASSERT_DOUBLE_EQ(repair.schedule.start(t), repair2.schedule.start(t))
            << g.name();
        ASSERT_DOUBLE_EQ(repair.durations[t], repair2.durations[t])
            << g.name();
      }
      // ...and bit-identical metrics.
      EXPECT_DOUBLE_EQ(m.repaired_makespan, m2.repaired_makespan);
      EXPECT_DOUBLE_EQ(m.degradation_ratio, m2.degradation_ratio);
      EXPECT_DOUBLE_EQ(m.work_lost, m2.work_lost);
      EXPECT_DOUBLE_EQ(m.time_degraded, m2.time_degraded);
      EXPECT_DOUBLE_EQ(m.time_recovered, m2.time_recovered);
      EXPECT_EQ(m.given_back_tasks, m2.given_back_tasks);
      EXPECT_DOUBLE_EQ(m.work_given_back, m2.work_given_back);
      EXPECT_EQ(m.recovered_procs, m2.recovered_procs);

      ASSERT_TRUE(is_valid_schedule(g, repair.schedule, repair.durations))
          << g.name();
    }
  }
}

}  // namespace
}  // namespace flb
