#include "flb/graph/task_graph.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "flb/graph/dot.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

TEST(TaskGraphBuilder, EmptyGraphBuilds) {
  TaskGraphBuilder b;
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.num_tasks(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_DOUBLE_EQ(g.total_comp(), 0.0);
  EXPECT_DOUBLE_EQ(g.ccr(), 0.0);
}

TEST(TaskGraphBuilder, SingleTask) {
  TaskGraphBuilder b;
  TaskId t = b.add_task(3.5);
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(t, 0u);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_DOUBLE_EQ(g.comp(0), 3.5);
  EXPECT_TRUE(g.is_entry(0));
  EXPECT_TRUE(g.is_exit(0));
}

TEST(TaskGraphBuilder, AddTasksBulk) {
  TaskGraphBuilder b;
  TaskId first = b.add_tasks(5, 2.0);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(b.num_tasks(), 5u);
  TaskGraph g = std::move(b).build();
  for (TaskId t = 0; t < 5; ++t) EXPECT_DOUBLE_EQ(g.comp(t), 2.0);
}

TEST(TaskGraphBuilder, RejectsNegativeComp) {
  TaskGraphBuilder b;
  EXPECT_THROW(b.add_task(-1.0), Error);
}

TEST(TaskGraphBuilder, RejectsSelfLoop) {
  TaskGraphBuilder b;
  TaskId t = b.add_task(1);
  EXPECT_THROW(b.add_edge(t, t, 1.0), Error);
}

TEST(TaskGraphBuilder, RejectsOutOfRangeEndpoints) {
  TaskGraphBuilder b;
  b.add_task(1);
  EXPECT_THROW(b.add_edge(0, 5, 1.0), Error);
  EXPECT_THROW(b.add_edge(5, 0, 1.0), Error);
}

TEST(TaskGraphBuilder, RejectsNegativeComm) {
  TaskGraphBuilder b;
  TaskId a = b.add_task(1), c = b.add_task(1);
  EXPECT_THROW(b.add_edge(a, c, -0.5), Error);
}

TEST(TaskGraphBuilder, RejectsDuplicateEdge) {
  TaskGraphBuilder b;
  TaskId a = b.add_task(1), c = b.add_task(1);
  b.add_edge(a, c, 1.0);
  b.add_edge(a, c, 2.0);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(TaskGraphBuilder, RejectsTwoNodeCycle) {
  TaskGraphBuilder b;
  TaskId a = b.add_task(1), c = b.add_task(1);
  b.add_edge(a, c, 1.0);
  b.add_edge(c, a, 1.0);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(TaskGraphBuilder, RejectsLongerCycle) {
  TaskGraphBuilder b;
  TaskId t0 = b.add_task(1), t1 = b.add_task(1), t2 = b.add_task(1),
         t3 = b.add_task(1);
  b.add_edge(t0, t1, 1.0);
  b.add_edge(t1, t2, 1.0);
  b.add_edge(t2, t3, 1.0);
  b.add_edge(t3, t1, 1.0);
  EXPECT_THROW(std::move(b).build(), Error);
}

TEST(TaskGraph, AdjacencyIsConsistentBothWays) {
  TaskGraph g = test::small_diamond();
  ASSERT_EQ(g.num_tasks(), 4u);
  ASSERT_EQ(g.num_edges(), 4u);

  // successors(a) = {b(2), c(1)}
  auto sa = g.successors(0);
  ASSERT_EQ(sa.size(), 2u);
  EXPECT_EQ(sa[0].node, 1u);
  EXPECT_DOUBLE_EQ(sa[0].comm, 2.0);
  EXPECT_EQ(sa[1].node, 2u);
  EXPECT_DOUBLE_EQ(sa[1].comm, 1.0);

  // predecessors(d) = {b(1), c(3)}
  auto pd = g.predecessors(3);
  ASSERT_EQ(pd.size(), 2u);
  EXPECT_EQ(pd[0].node, 1u);
  EXPECT_DOUBLE_EQ(pd[0].comm, 1.0);
  EXPECT_EQ(pd[1].node, 2u);
  EXPECT_DOUBLE_EQ(pd[1].comm, 3.0);

  EXPECT_EQ(g.in_degree(0), 0u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
}

TEST(TaskGraph, EntryAndExitLists) {
  TaskGraph g = test::small_diamond();
  EXPECT_EQ(g.entry_tasks(), (std::vector<TaskId>{0}));
  EXPECT_EQ(g.exit_tasks(), (std::vector<TaskId>{3}));
}

TEST(TaskGraph, EdgesRoundTripThroughAccessor) {
  TaskGraph g = test::small_diamond();
  auto edges = g.edges();
  ASSERT_EQ(edges.size(), 4u);
  // Grouped by source ascending.
  EXPECT_EQ(edges[0].from, 0u);
  EXPECT_EQ(edges[3].from, 2u);
  EXPECT_EQ(edges[3].to, 3u);
  EXPECT_DOUBLE_EQ(edges[3].comm, 3.0);
}

TEST(TaskGraph, TotalsAndCcr) {
  TaskGraph g = test::small_diamond();
  EXPECT_DOUBLE_EQ(g.total_comp(), 7.0);   // 1+3+2+1
  EXPECT_DOUBLE_EQ(g.total_comm(), 7.0);   // 2+1+1+3
  // CCR = (7/4) / (7/4) = 1.
  EXPECT_DOUBLE_EQ(g.ccr(), 1.0);
}

TEST(TaskGraph, CcrScalesWithCommWeights) {
  TaskGraphBuilder b;
  TaskId a = b.add_task(2), c = b.add_task(2);
  b.add_edge(a, c, 10.0);
  TaskGraph g = std::move(b).build();
  // avg comm 10, avg comp 2 -> CCR 5.
  EXPECT_DOUBLE_EQ(g.ccr(), 5.0);
}

TEST(TaskGraph, NamePropagates) {
  TaskGraphBuilder b;
  b.set_name("my-graph");
  b.add_task(1);
  TaskGraph g = std::move(b).build();
  EXPECT_EQ(g.name(), "my-graph");
}

// --- DOT export ---------------------------------------------------------------

TEST(Dot, ContainsNodesAndEdges) {
  TaskGraph g = test::small_diamond();
  std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("t2 -> t3"), std::string::npos);
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);  // edge c->d
}

TEST(Dot, UsesGraphName) {
  TaskGraph g = test::small_diamond();
  EXPECT_NE(to_dot(g).find("small-diamond"), std::string::npos);
}

// --- Serialization --------------------------------------------------------------

TEST(Serialize, RoundTripPreservesEverything) {
  TaskGraph g = test::small_diamond();
  TaskGraph h = from_text(to_text(g));
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.name(), g.name());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_DOUBLE_EQ(h.comp(t), g.comp(t));
  auto ge = g.edges(), he = h.edges();
  for (std::size_t i = 0; i < ge.size(); ++i) {
    EXPECT_EQ(he[i].from, ge[i].from);
    EXPECT_EQ(he[i].to, ge[i].to);
    EXPECT_DOUBLE_EQ(he[i].comm, ge[i].comm);
  }
}

TEST(Serialize, RoundTripPreservesRandomWeightsExactly) {
  WorkloadParams params;
  params.seed = 99;
  params.ccr = 3.7;
  TaskGraph g = random_dag(40, 0.2, params);
  TaskGraph h = from_text(to_text(g));
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(h.comp(t), g.comp(t));  // bitwise equality via %.17g
  auto ge = g.edges(), he = h.edges();
  ASSERT_EQ(ge.size(), he.size());
  for (std::size_t i = 0; i < ge.size(); ++i)
    EXPECT_EQ(he[i].comm, ge[i].comm);
}

TEST(Serialize, AcceptsCommentsAndBlankLines) {
  std::string text =
      "# a comment\n"
      "flb-taskgraph 1\n"
      "\n"
      "tasks 2\n"
      "# another\n"
      "edges 1\n"
      "t 0 1.5\n"
      "t 1 2.5\n"
      "e 0 1 0.5\n";
  TaskGraph g = from_text(text);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(g.comp(1), 2.5);
}

TEST(Serialize, RejectsBadMagic) {
  EXPECT_THROW(from_text("not-a-graph 1\n"), Error);
}

TEST(Serialize, RejectsTruncatedTaskList) {
  EXPECT_THROW(from_text("flb-taskgraph 1\ntasks 2\nedges 0\nt 0 1\n"),
               Error);
}

TEST(Serialize, RejectsOutOfOrderIds) {
  EXPECT_THROW(
      from_text("flb-taskgraph 1\ntasks 2\nedges 0\nt 1 1\nt 0 1\n"),
      Error);
}

TEST(Serialize, RejectsEdgeOutOfRange) {
  EXPECT_THROW(
      from_text("flb-taskgraph 1\ntasks 1\nedges 1\nt 0 1\ne 0 7 1\n"),
      Error);
}

TEST(Serialize, NamelessGraphStaysNameless) {
  TaskGraphBuilder b;
  b.add_task(1);
  TaskGraph g = std::move(b).build();
  TaskGraph h = from_text(to_text(g));
  EXPECT_TRUE(h.name().empty());
}

}  // namespace
}  // namespace flb
