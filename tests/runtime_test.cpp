// The online recovery runtime (flb::runtime): the simulator's observable
// event stream, the horizon-sliced fault view, and the closed-loop
// controller that repairs with no knowledge of future faults — debounce
// coalescing, bounded retry with backoff, graceful degradation, give-back
// on observed rejoins, per-seed determinism, and the poisoned-future
// guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

using runtime::HorizonFaultView;
using runtime::RuntimeOptions;
using runtime::RuntimeResult;
using runtime::event_log_text;
using runtime::fnv1a_digest;
using runtime::run_online_recovery;

std::size_t count_kind(const std::vector<SimEvent>& events, SimEventKind k) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const SimEvent& e) { return e.kind == k; }));
}

/// `tasks` independent unit tasks scheduled round-robin-free: `per_proc`
/// tasks appended per processor in id order — the deterministic fixture of
/// the controller tests.
Schedule strip_schedule(TaskId tasks, ProcId procs, TaskId per_proc) {
  Schedule s(procs, tasks);
  for (TaskId t = 0; t < tasks; ++t) {
    const ProcId p = static_cast<ProcId>(t / per_proc);
    const Cost start = static_cast<Cost>(t % per_proc);
    s.assign(t, p, start, start + 1.0);
  }
  return s;
}

TaskGraph unit_tasks(TaskId n) {
  TaskGraphBuilder b;
  for (TaskId t = 0; t < n; ++t) b.add_task(1.0);
  return std::move(b).build();
}

// --- The simulator's event stream --------------------------------------------

TEST(SimEventLog, StreamsEveryObservableFaultSortedAndDeterministic) {
  TaskGraph g = unit_tasks(4);
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.0, 2.0);
  s.assign(2, 1, 0.0, 1.0);
  s.assign(3, 1, 1.0, 2.0);

  FaultPlan plan;
  plan.slowdowns.push_back({0, 0.25, 0.5, 1.5});
  plan.failures.push_back({1, 0.5});
  plan.rejoins.push_back({1, 3.0});

  std::vector<SimEvent> log;
  SimOptions options;
  options.faults = &plan;
  options.event_log = &log;
  SimResult r = simulate(g, s, options);

  EXPECT_EQ(count_kind(log, SimEventKind::kFailure), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kRejoin), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kSlowdownBegin), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kSlowdownEnd), 1u);
  // Dispatch runs ahead, so the kill at t=0.5 takes both of proc 1's tasks.
  EXPECT_EQ(count_kind(log, SimEventKind::kTaskKilled), 2u);
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
  EXPECT_EQ(r.unfinished.size(), 2u);

  // Byte-identical across runs: the log is a pure value of (plan, schedule).
  std::vector<SimEvent> log2;
  options.event_log = &log2;
  (void)simulate(g, s, options);
  EXPECT_EQ(event_log_text(log), event_log_text(log2));
  EXPECT_EQ(fnv1a_digest(event_log_text(log)),
            fnv1a_digest(event_log_text(log2)));

  // A fault-free run has nothing to observe; the log is cleared.
  options.faults = nullptr;
  (void)simulate(g, s, options);
  EXPECT_TRUE(log2.empty());
}

// --- HorizonFaultView --------------------------------------------------------

TEST(HorizonView, CopiesConfigurationButNoFutureFaults) {
  FaultPlan world;
  world.seed = 77;
  world.runtime_spread = 0.1;
  world.checkpoint = {5.0, 0.25, 2.0};
  world.message.loss_probability = 0.5;
  world.failures.push_back({1, 4.0});
  world.slowdowns.push_back({0, 1.0, 0.5});

  HorizonFaultView view(world, 4);
  EXPECT_EQ(view.plan().seed, 77u);
  EXPECT_DOUBLE_EQ(view.plan().runtime_spread, 0.1);
  EXPECT_DOUBLE_EQ(view.plan().checkpoint.min_downstream, 2.0);
  EXPECT_DOUBLE_EQ(view.plan().message.loss_probability, 0.5);
  EXPECT_TRUE(view.plan().failures.empty());
  EXPECT_TRUE(view.plan().slowdowns.empty());
  EXPECT_EQ(view.observed_alive(), 4u);
}

TEST(HorizonView, ObservationsGrowThePlanAndLivenessTracks) {
  HorizonFaultView view(FaultPlan{}, 4);
  view.advance(5.0);

  const SimEvent fail{1.0, SimEventKind::kFailure, 1};
  view.observe(fail);
  EXPECT_TRUE(view.observed(fail));
  ASSERT_EQ(view.plan().failures.size(), 1u);
  EXPECT_EQ(view.observed_alive(), 3u);
  view.observe(fail);  // re-observation is a no-op
  EXPECT_EQ(view.plan().failures.size(), 1u);

  // An open slowdown is permanent until its end is observed.
  view.observe({2.0, SimEventKind::kSlowdownBegin, 0, kInvalidTask,
                kInvalidTask, 0.5});
  ASSERT_EQ(view.plan().slowdowns.size(), 1u);
  EXPECT_EQ(view.plan().slowdowns[0].until, kInfiniteTime);
  view.observe({4.0, SimEventKind::kSlowdownEnd, 0, kInvalidTask,
                kInvalidTask, 0.5});
  EXPECT_DOUBLE_EQ(view.plan().slowdowns[0].until, 4.0);

  view.observe({4.5, SimEventKind::kRejoin, 1});
  EXPECT_EQ(view.observed_alive(), 4u);
  EXPECT_EQ(view.observed_events(), 4u);

  // Message drops are keyed by edge: a re-simulated drop of the same pair
  // at a shifted instant counts as observed.
  view.observe({3.0, SimEventKind::kMessageDropped, 2, 7, 9});
  EXPECT_TRUE(view.observed({3.25, SimEventKind::kMessageDropped, 2, 7, 9}));
  EXPECT_FALSE(view.observed({3.0, SimEventKind::kMessageDropped, 2, 7, 8}));

  // The horizon is monotone, and nothing beyond it can be observed.
  EXPECT_THROW(view.advance(4.0), Error);
  EXPECT_THROW(view.observe({6.0, SimEventKind::kFailure, 2}), Error);
  EXPECT_NO_THROW(view.plan().validate(4));
}

// --- The controller loop -----------------------------------------------------

TEST(OnlineRecovery, FaultFreeWorldInstallsTheNominalScheduleUnchanged) {
  TaskGraph g = test::fuzz_graph(0);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  RuntimeResult r = run_online_recovery(g, nominal, FaultPlan{});
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.repairs.empty());
  EXPECT_TRUE(r.events.empty());
  EXPECT_TRUE(r.durations.empty());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(r.schedule.proc(t), nominal.proc(t));
}

TEST(OnlineRecovery, KillThenRejoinRepairsTwiceAndGivesBack) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 2, 6);
  FaultPlan world;
  world.failures.push_back({1, 0.5});
  world.rejoins.push_back({1, 1.0});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(r.complete);
  // One reaction to the kill, one to the observed rejoin (give-back).
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(r.repairs[0].observed_at, 0.5);
  EXPECT_DOUBLE_EQ(r.repairs[1].observed_at, 1.0);
  EXPECT_EQ(r.repairs[0].survivors, 1u);
  EXPECT_EQ(r.repairs[1].survivors, 2u);
  EXPECT_GT(r.repairs[1].migrated, 0u);
  EXPECT_FALSE(r.repairs[0].deferred);
  ASSERT_EQ(r.durations.size(), g.num_tasks());
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
  // The give-back continuation uses the rejoined processor again.
  bool rejoined_used = false;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (r.schedule.proc(t) == 1 && r.schedule.start(t) >= 1.0 - 1e-9)
      rejoined_used = true;
  EXPECT_TRUE(rejoined_used);
  // Executed strictly worse than fault-free, strictly better than the
  // one-processor worst case.
  EXPECT_GT(r.makespan, 6.0 - 1e-9);
  EXPECT_LT(r.makespan, 12.0);
}

TEST(OnlineRecovery, DebounceCoalescesABurstIntoOneRepair) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 4, 3);
  FaultPlan world;
  world.failures.push_back({1, 1.0});
  world.failures.push_back({2, 1.4});

  RuntimeOptions one_shot;
  one_shot.debounce = 0.5;
  RuntimeResult coalesced = run_online_recovery(g, nominal, world, one_shot);
  ASSERT_EQ(coalesced.repairs.size(), 1u);
  EXPECT_DOUBLE_EQ(coalesced.repairs[0].observed_at, 1.0);
  EXPECT_DOUBLE_EQ(coalesced.repairs[0].horizon, 1.5);
  EXPECT_TRUE(coalesced.complete);

  RuntimeOptions eager;  // debounce 0: one reaction per strike instant
  RuntimeResult split = run_online_recovery(g, nominal, world, eager);
  ASSERT_EQ(split.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(split.repairs[0].observed_at, 1.0);
  EXPECT_DOUBLE_EQ(split.repairs[1].observed_at, 1.4);
  EXPECT_TRUE(split.complete);
}

TEST(OnlineRecovery, RepairTargetReStrikeBacksOffThenDegrades) {
  TaskGraph g = unit_tasks(9);
  Schedule nominal = strip_schedule(9, 3, 3);
  FaultPlan world;
  world.failures.push_back({0, 0.5});
  world.failures.push_back({1, 2.5});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_EQ(r.repairs[0].retry_attempt, 0u);
  // Proc 1 received migrated work at the first repair and then failed:
  // attempt 1, horizon pushed back by backoff_base * 2^0.
  EXPECT_EQ(r.repairs[1].retry_attempt, 1u);
  EXPECT_DOUBLE_EQ(r.repairs[1].horizon, 2.5 + 1.0);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));

  // With a zero retry budget the same re-strike exhausts it: the controller
  // stops trusting the optimizing engine and degrades to greedy.
  RuntimeOptions strict;
  strict.max_retries = 0;
  RuntimeResult d = run_online_recovery(g, nominal, world, strict);
  ASSERT_EQ(d.repairs.size(), 2u);
  EXPECT_EQ(d.repairs[1].used, RepairStrategy::kGreedy);
  EXPECT_TRUE(d.degraded);
  EXPECT_TRUE(d.complete);
}

TEST(OnlineRecovery, TotalBlackoutDefersUntilTheRejoinIsObserved) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan world;
  world.failures.push_back({0, 0.1});
  world.failures.push_back({1, 0.1});
  world.rejoins.push_back({0, 0.6});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_TRUE(r.repairs[0].deferred);
  EXPECT_EQ(r.repairs[0].survivors, 0u);
  EXPECT_EQ(r.repairs[0].schedule_digest, 0u);
  EXPECT_FALSE(r.repairs[1].deferred);
  EXPECT_TRUE(r.complete);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(r.schedule.proc(t), 0u);
}

TEST(OnlineRecovery, CheckpointedWorkResumesAcrossTheRepair) {
  // One long task killed at 3.5 with durable marks every 1.0: the online
  // continuation re-executes only the unprotected remainder. Raising
  // min_downstream beyond the task's bottom level disables its checkpoints
  // and the remainder grows back to the full computation.
  TaskGraphBuilder b;
  b.add_task(4.0);
  b.add_task(1.0);
  TaskGraph g = std::move(b).build();
  Schedule nominal(2, 2);
  nominal.assign(0, 0, 0.0, 4.0);
  nominal.assign(1, 1, 0.0, 1.0);

  FaultPlan world;
  world.failures.push_back({0, 3.5});
  world.checkpoint = {1.0, 0.0};

  RuntimeResult saved = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(saved.complete);
  // 3 units were durable: the migrated remainder runs 1 unit from t=3.5.
  EXPECT_DOUBLE_EQ(saved.makespan, 4.5);

  world.checkpoint.min_downstream = 100.0;
  RuntimeResult unsaved = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(unsaved.complete);
  EXPECT_DOUBLE_EQ(unsaved.makespan, 7.5);
}

TEST(OnlineRecovery, SameSeedIsBitIdenticalAcrossRuns) {
  TaskGraph g = test::fuzz_graph(1);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  const Cost span = nominal.makespan();

  FaultPlan world;
  world.seed = 29;
  world.runtime_spread = 0.05;
  world.checkpoint = {0.25 * span, 0.01 * span};
  world.message.loss_probability = 0.2;
  world.failures.push_back({1, 0.2 * span});
  world.rejoins.push_back({1, 0.5 * span});
  world.slowdowns.push_back({0, 0.1 * span, 0.5, 0.6 * span});

  RuntimeResult a = run_online_recovery(g, nominal, world);
  RuntimeResult b = run_online_recovery(g, nominal, world);
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(event_log_text(a.events), event_log_text(b.events));
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (std::size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].schedule_digest, b.repairs[i].schedule_digest);
    EXPECT_DOUBLE_EQ(a.repairs[i].horizon, b.repairs[i].horizon);
    EXPECT_EQ(a.repairs[i].events, b.repairs[i].events);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_observed, b.events_observed);
}

// The poisoned-future guarantee: two worlds identical up to a horizon T
// produce bit-identical controller behavior for every repair at or before
// T, no matter what happens after — the controller provably never reads
// future plan entries. (Configuration scalars must match: they are the
// machine's known setup, not future knowledge.)
TEST(OnlineRecovery, PoisonedFutureCannotChangePastRepairs) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  const Cost span = nominal.makespan();

  FaultPlan clean;
  clean.seed = 5;
  clean.failures.push_back({1, 0.3 * span});
  RuntimeResult base = run_online_recovery(g, nominal, clean);
  ASSERT_GE(base.repairs.size(), 1u);
  const Cost poison_at = base.repairs[0].horizon;

  // Poison 1: extra faults strictly after the first repair's horizon.
  FaultPlan poisoned = clean;
  poisoned.failures.push_back({2, poison_at + 0.4 * span});
  poisoned.slowdowns.push_back({0, poison_at + 0.45 * span, 0.5});
  RuntimeResult p1 = run_online_recovery(g, nominal, poisoned);

  // Poison 2: faults so late no execution ever reaches them.
  FaultPlan late = clean;
  late.failures.push_back({3, 1e6});
  late.slowdowns.push_back({2, 1e6 + 1.0, 0.25});
  RuntimeResult p2 = run_online_recovery(g, nominal, late);

  // Every invocation at or before the poison instant is bit-identical.
  for (const RuntimeResult* r : {&p1, &p2}) {
    ASSERT_GE(r->repairs.size(), 1u);
    for (std::size_t i = 0; i < r->repairs.size() &&
                            r->repairs[i].horizon <= poison_at;
         ++i) {
      EXPECT_EQ(r->repairs[i].schedule_digest,
                base.repairs[i].schedule_digest);
      EXPECT_DOUBLE_EQ(r->repairs[i].horizon, base.repairs[i].horizon);
      EXPECT_EQ(r->repairs[i].events, base.repairs[i].events);
    }
  }
  // The never-reached poison changes nothing at all about the behavior;
  // only the (world-owned) event log sees the extra machine events.
  EXPECT_EQ(p2.schedule_digest, base.schedule_digest);
  EXPECT_EQ(p2.repairs.size(), base.repairs.size());
  EXPECT_DOUBLE_EQ(p2.makespan, base.makespan);
}

// Dropped messages surface as events and the controller re-executes the
// producer without ever seeing the plan's message table.
TEST(OnlineRecovery, MessageDropIsRepairedOnline) {
  // Find a seed whose (deterministic) message fate drops the only remote
  // edge, starving the consumer.
  TaskGraphBuilder b;
  TaskId a = b.add_task(1.0);
  TaskId c = b.add_task(1.0);
  b.add_edge(a, c, 2.0);
  TaskGraph g = std::move(b).build();
  Schedule nominal(2, 2);
  nominal.assign(a, 0, 0.0, 1.0);
  nominal.assign(c, 1, 3.0, 4.0);

  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    FaultPlan world;
    world.seed = seed;
    world.message.loss_probability = 0.9;
    world.message.max_retries = 0;
    SimOptions probe;
    probe.faults = &world;
    if (simulate(g, nominal, probe).dropped_messages == 0) continue;

    RuntimeResult r = run_online_recovery(g, nominal, world);
    EXPECT_TRUE(r.complete) << "seed " << seed;
    ASSERT_GE(r.repairs.size(), 1u);
    EXPECT_GT(r.repairs[0].events, 0u);
    EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
    return;
  }
  FAIL() << "no seed dropped the message";
}

}  // namespace
}  // namespace flb
