// The online recovery runtime (flb::runtime): the simulator's observable
// event stream, the horizon-sliced fault view, and the closed-loop
// controller that repairs with no knowledge of future faults — debounce
// coalescing, bounded retry with backoff, graceful degradation, give-back
// on observed rejoins, per-seed determinism, and the poisoned-future
// guarantee.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/runtime/failure_detector.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

using runtime::BeliefEvent;
using runtime::BeliefKind;
using runtime::FailureDetector;
using runtime::HorizonFaultView;
using runtime::RuntimeOptions;
using runtime::RuntimeResult;
using runtime::belief_log_text;
using runtime::event_log_text;
using runtime::fnv1a_digest;
using runtime::run_online_recovery;

std::size_t count_kind(const std::vector<SimEvent>& events, SimEventKind k) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [&](const SimEvent& e) { return e.kind == k; }));
}

/// `tasks` independent unit tasks scheduled round-robin-free: `per_proc`
/// tasks appended per processor in id order — the deterministic fixture of
/// the controller tests.
Schedule strip_schedule(TaskId tasks, ProcId procs, TaskId per_proc) {
  Schedule s(procs, tasks);
  for (TaskId t = 0; t < tasks; ++t) {
    const ProcId p = static_cast<ProcId>(t / per_proc);
    const Cost start = static_cast<Cost>(t % per_proc);
    s.assign(t, p, start, start + 1.0);
  }
  return s;
}

TaskGraph unit_tasks(TaskId n) {
  TaskGraphBuilder b;
  for (TaskId t = 0; t < n; ++t) b.add_task(1.0);
  return std::move(b).build();
}

// --- The simulator's event stream --------------------------------------------

TEST(SimEventLog, StreamsEveryObservableFaultSortedAndDeterministic) {
  TaskGraph g = unit_tasks(4);
  Schedule s(2, 4);
  s.assign(0, 0, 0.0, 1.0);
  s.assign(1, 0, 1.0, 2.0);
  s.assign(2, 1, 0.0, 1.0);
  s.assign(3, 1, 1.0, 2.0);

  FaultPlan plan;
  plan.slowdowns.push_back({0, 0.25, 0.5, 1.5});
  plan.failures.push_back({1, 0.5});
  plan.rejoins.push_back({1, 3.0});

  std::vector<SimEvent> log;
  SimOptions options;
  options.faults = &plan;
  options.event_log = &log;
  SimResult r = simulate(g, s, options);

  EXPECT_EQ(count_kind(log, SimEventKind::kFailure), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kRejoin), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kSlowdownBegin), 1u);
  EXPECT_EQ(count_kind(log, SimEventKind::kSlowdownEnd), 1u);
  // Dispatch runs ahead, so the kill at t=0.5 takes both of proc 1's tasks.
  EXPECT_EQ(count_kind(log, SimEventKind::kTaskKilled), 2u);
  EXPECT_TRUE(std::is_sorted(log.begin(), log.end()));
  EXPECT_EQ(r.unfinished.size(), 2u);

  // Byte-identical across runs: the log is a pure value of (plan, schedule).
  std::vector<SimEvent> log2;
  options.event_log = &log2;
  (void)simulate(g, s, options);
  EXPECT_EQ(event_log_text(log), event_log_text(log2));
  EXPECT_EQ(fnv1a_digest(event_log_text(log)),
            fnv1a_digest(event_log_text(log2)));

  // A fault-free run has nothing to observe; the log is cleared.
  options.faults = nullptr;
  (void)simulate(g, s, options);
  EXPECT_TRUE(log2.empty());
}

// --- HorizonFaultView --------------------------------------------------------

TEST(HorizonView, CopiesConfigurationButNoFutureFaults) {
  FaultPlan world;
  world.seed = 77;
  world.runtime_spread = 0.1;
  world.checkpoint = {5.0, 0.25, 2.0};
  world.message.loss_probability = 0.5;
  world.failures.push_back({1, 4.0});
  world.slowdowns.push_back({0, 1.0, 0.5});

  HorizonFaultView view(world, 4);
  EXPECT_EQ(view.plan().seed, 77u);
  EXPECT_DOUBLE_EQ(view.plan().runtime_spread, 0.1);
  EXPECT_DOUBLE_EQ(view.plan().checkpoint.min_downstream, 2.0);
  EXPECT_DOUBLE_EQ(view.plan().message.loss_probability, 0.5);
  EXPECT_TRUE(view.plan().failures.empty());
  EXPECT_TRUE(view.plan().slowdowns.empty());
  EXPECT_EQ(view.observed_alive(), 4u);
}

TEST(HorizonView, ObservationsGrowThePlanAndLivenessTracks) {
  HorizonFaultView view(FaultPlan{}, 4);
  view.advance(5.0);

  const SimEvent fail{1.0, SimEventKind::kFailure, 1};
  view.observe(fail);
  EXPECT_TRUE(view.observed(fail));
  ASSERT_EQ(view.plan().failures.size(), 1u);
  EXPECT_EQ(view.observed_alive(), 3u);
  view.observe(fail);  // re-observation is a no-op
  EXPECT_EQ(view.plan().failures.size(), 1u);

  // An open slowdown is permanent until its end is observed.
  view.observe({2.0, SimEventKind::kSlowdownBegin, 0, kInvalidTask,
                kInvalidTask, 0.5});
  ASSERT_EQ(view.plan().slowdowns.size(), 1u);
  EXPECT_EQ(view.plan().slowdowns[0].until, kInfiniteTime);
  view.observe({4.0, SimEventKind::kSlowdownEnd, 0, kInvalidTask,
                kInvalidTask, 0.5});
  EXPECT_DOUBLE_EQ(view.plan().slowdowns[0].until, 4.0);

  view.observe({4.5, SimEventKind::kRejoin, 1});
  EXPECT_EQ(view.observed_alive(), 4u);
  EXPECT_EQ(view.observed_events(), 4u);

  // Message drops are keyed by edge: a re-simulated drop of the same pair
  // at a shifted instant counts as observed.
  view.observe({3.0, SimEventKind::kMessageDropped, 2, 7, 9});
  EXPECT_TRUE(view.observed({3.25, SimEventKind::kMessageDropped, 2, 7, 9}));
  EXPECT_FALSE(view.observed({3.0, SimEventKind::kMessageDropped, 2, 7, 8}));

  // The horizon is monotone, and nothing beyond it can be observed.
  EXPECT_THROW(view.advance(4.0), Error);
  EXPECT_THROW(view.observe({6.0, SimEventKind::kFailure, 2}), Error);
  EXPECT_NO_THROW(view.plan().validate(4));
}

// --- The controller loop -----------------------------------------------------

TEST(OnlineRecovery, FaultFreeWorldInstallsTheNominalScheduleUnchanged) {
  TaskGraph g = test::fuzz_graph(0);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  RuntimeResult r = run_online_recovery(g, nominal, FaultPlan{});
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(r.repairs.empty());
  EXPECT_TRUE(r.events.empty());
  EXPECT_TRUE(r.durations.empty());
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(r.schedule.proc(t), nominal.proc(t));
}

TEST(OnlineRecovery, KillThenRejoinRepairsTwiceAndGivesBack) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 2, 6);
  FaultPlan world;
  world.failures.push_back({1, 0.5});
  world.rejoins.push_back({1, 1.0});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(r.complete);
  // One reaction to the kill, one to the observed rejoin (give-back).
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(r.repairs[0].observed_at, 0.5);
  EXPECT_DOUBLE_EQ(r.repairs[1].observed_at, 1.0);
  EXPECT_EQ(r.repairs[0].survivors, 1u);
  EXPECT_EQ(r.repairs[1].survivors, 2u);
  EXPECT_GT(r.repairs[1].migrated, 0u);
  EXPECT_FALSE(r.repairs[0].deferred);
  ASSERT_EQ(r.durations.size(), g.num_tasks());
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
  // The give-back continuation uses the rejoined processor again.
  bool rejoined_used = false;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (r.schedule.proc(t) == 1 && r.schedule.start(t) >= 1.0 - 1e-9)
      rejoined_used = true;
  EXPECT_TRUE(rejoined_used);
  // Executed strictly worse than fault-free, strictly better than the
  // one-processor worst case.
  EXPECT_GT(r.makespan, 6.0 - 1e-9);
  EXPECT_LT(r.makespan, 12.0);
}

TEST(OnlineRecovery, DebounceCoalescesABurstIntoOneRepair) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 4, 3);
  FaultPlan world;
  world.failures.push_back({1, 1.0});
  world.failures.push_back({2, 1.4});

  RuntimeOptions one_shot;
  one_shot.debounce = 0.5;
  RuntimeResult coalesced = run_online_recovery(g, nominal, world, one_shot);
  ASSERT_EQ(coalesced.repairs.size(), 1u);
  EXPECT_DOUBLE_EQ(coalesced.repairs[0].observed_at, 1.0);
  EXPECT_DOUBLE_EQ(coalesced.repairs[0].horizon, 1.5);
  EXPECT_TRUE(coalesced.complete);

  RuntimeOptions eager;  // debounce 0: one reaction per strike instant
  RuntimeResult split = run_online_recovery(g, nominal, world, eager);
  ASSERT_EQ(split.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(split.repairs[0].observed_at, 1.0);
  EXPECT_DOUBLE_EQ(split.repairs[1].observed_at, 1.4);
  EXPECT_TRUE(split.complete);
}

TEST(OnlineRecovery, RepairTargetReStrikeBacksOffThenDegrades) {
  TaskGraph g = unit_tasks(9);
  Schedule nominal = strip_schedule(9, 3, 3);
  FaultPlan world;
  world.failures.push_back({0, 0.5});
  world.failures.push_back({1, 2.5});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_EQ(r.repairs[0].retry_attempt, 0u);
  // Proc 1 received migrated work at the first repair and then failed:
  // attempt 1, horizon pushed back by backoff_base * 2^0.
  EXPECT_EQ(r.repairs[1].retry_attempt, 1u);
  EXPECT_DOUBLE_EQ(r.repairs[1].horizon, 2.5 + 1.0);
  EXPECT_TRUE(r.complete);
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));

  // With a zero retry budget the same re-strike exhausts it: the controller
  // stops trusting the optimizing engine and degrades to greedy.
  RuntimeOptions strict;
  strict.max_retries = 0;
  RuntimeResult d = run_online_recovery(g, nominal, world, strict);
  ASSERT_EQ(d.repairs.size(), 2u);
  EXPECT_EQ(d.repairs[1].used, RepairStrategy::kGreedy);
  EXPECT_TRUE(d.degraded);
  EXPECT_TRUE(d.complete);
}

TEST(OnlineRecovery, TotalBlackoutDefersUntilTheRejoinIsObserved) {
  TaskGraph g = test::small_diamond();
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 2);
  FaultPlan world;
  world.failures.push_back({0, 0.1});
  world.failures.push_back({1, 0.1});
  world.rejoins.push_back({0, 0.6});

  RuntimeResult r = run_online_recovery(g, nominal, world);
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_TRUE(r.repairs[0].deferred);
  EXPECT_EQ(r.repairs[0].survivors, 0u);
  EXPECT_EQ(r.repairs[0].schedule_digest, 0u);
  EXPECT_FALSE(r.repairs[1].deferred);
  EXPECT_TRUE(r.complete);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(r.schedule.proc(t), 0u);
}

TEST(OnlineRecovery, CheckpointedWorkResumesAcrossTheRepair) {
  // One long task killed at 3.5 with durable marks every 1.0: the online
  // continuation re-executes only the unprotected remainder. Raising
  // min_downstream beyond the task's bottom level disables its checkpoints
  // and the remainder grows back to the full computation.
  TaskGraphBuilder b;
  b.add_task(4.0);
  b.add_task(1.0);
  TaskGraph g = std::move(b).build();
  Schedule nominal(2, 2);
  nominal.assign(0, 0, 0.0, 4.0);
  nominal.assign(1, 1, 0.0, 1.0);

  FaultPlan world;
  world.failures.push_back({0, 3.5});
  world.checkpoint = {1.0, 0.0};

  RuntimeResult saved = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(saved.complete);
  // 3 units were durable: the migrated remainder runs 1 unit from t=3.5.
  EXPECT_DOUBLE_EQ(saved.makespan, 4.5);

  world.checkpoint.min_downstream = 100.0;
  RuntimeResult unsaved = run_online_recovery(g, nominal, world);
  EXPECT_TRUE(unsaved.complete);
  EXPECT_DOUBLE_EQ(unsaved.makespan, 7.5);
}

TEST(OnlineRecovery, SameSeedIsBitIdenticalAcrossRuns) {
  TaskGraph g = test::fuzz_graph(1);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  const Cost span = nominal.makespan();

  FaultPlan world;
  world.seed = 29;
  world.runtime_spread = 0.05;
  world.checkpoint = {0.25 * span, 0.01 * span};
  world.message.loss_probability = 0.2;
  world.failures.push_back({1, 0.2 * span});
  world.rejoins.push_back({1, 0.5 * span});
  world.slowdowns.push_back({0, 0.1 * span, 0.5, 0.6 * span});

  RuntimeResult a = run_online_recovery(g, nominal, world);
  RuntimeResult b = run_online_recovery(g, nominal, world);
  EXPECT_EQ(a.event_digest, b.event_digest);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(event_log_text(a.events), event_log_text(b.events));
  ASSERT_EQ(a.repairs.size(), b.repairs.size());
  for (std::size_t i = 0; i < a.repairs.size(); ++i) {
    EXPECT_EQ(a.repairs[i].schedule_digest, b.repairs[i].schedule_digest);
    EXPECT_DOUBLE_EQ(a.repairs[i].horizon, b.repairs[i].horizon);
    EXPECT_EQ(a.repairs[i].events, b.repairs[i].events);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.events_observed, b.events_observed);
}

// The poisoned-future guarantee: two worlds identical up to a horizon T
// produce bit-identical controller behavior for every repair at or before
// T, no matter what happens after — the controller provably never reads
// future plan entries. (Configuration scalars must match: they are the
// machine's known setup, not future knowledge.)
TEST(OnlineRecovery, PoisonedFutureCannotChangePastRepairs) {
  TaskGraph g = test::fuzz_graph(2);
  FlbScheduler flb;
  Schedule nominal = flb.run(g, 4);
  const Cost span = nominal.makespan();

  FaultPlan clean;
  clean.seed = 5;
  clean.failures.push_back({1, 0.3 * span});
  RuntimeResult base = run_online_recovery(g, nominal, clean);
  ASSERT_GE(base.repairs.size(), 1u);
  const Cost poison_at = base.repairs[0].horizon;

  // Poison 1: extra faults strictly after the first repair's horizon.
  FaultPlan poisoned = clean;
  poisoned.failures.push_back({2, poison_at + 0.4 * span});
  poisoned.slowdowns.push_back({0, poison_at + 0.45 * span, 0.5});
  RuntimeResult p1 = run_online_recovery(g, nominal, poisoned);

  // Poison 2: faults so late no execution ever reaches them.
  FaultPlan late = clean;
  late.failures.push_back({3, 1e6});
  late.slowdowns.push_back({2, 1e6 + 1.0, 0.25});
  RuntimeResult p2 = run_online_recovery(g, nominal, late);

  // Every invocation at or before the poison instant is bit-identical.
  for (const RuntimeResult* r : {&p1, &p2}) {
    ASSERT_GE(r->repairs.size(), 1u);
    for (std::size_t i = 0; i < r->repairs.size() &&
                            r->repairs[i].horizon <= poison_at;
         ++i) {
      EXPECT_EQ(r->repairs[i].schedule_digest,
                base.repairs[i].schedule_digest);
      EXPECT_DOUBLE_EQ(r->repairs[i].horizon, base.repairs[i].horizon);
      EXPECT_EQ(r->repairs[i].events, base.repairs[i].events);
    }
  }
  // The never-reached poison changes nothing at all about the behavior;
  // only the (world-owned) event log sees the extra machine events.
  EXPECT_EQ(p2.schedule_digest, base.schedule_digest);
  EXPECT_EQ(p2.repairs.size(), base.repairs.size());
  EXPECT_DOUBLE_EQ(p2.makespan, base.makespan);
}

// Dropped messages surface as events and the controller re-executes the
// producer without ever seeing the plan's message table.
TEST(OnlineRecovery, MessageDropIsRepairedOnline) {
  // Find a seed whose (deterministic) message fate drops the only remote
  // edge, starving the consumer.
  TaskGraphBuilder b;
  TaskId a = b.add_task(1.0);
  TaskId c = b.add_task(1.0);
  b.add_edge(a, c, 2.0);
  TaskGraph g = std::move(b).build();
  Schedule nominal(2, 2);
  nominal.assign(a, 0, 0.0, 1.0);
  nominal.assign(c, 1, 3.0, 4.0);

  for (std::uint64_t seed = 1; seed < 64; ++seed) {
    FaultPlan world;
    world.seed = seed;
    world.message.loss_probability = 0.9;
    world.message.max_retries = 0;
    SimOptions probe;
    probe.faults = &world;
    if (simulate(g, nominal, probe).dropped_messages == 0) continue;

    RuntimeResult r = run_online_recovery(g, nominal, world);
    EXPECT_TRUE(r.complete) << "seed " << seed;
    ASSERT_GE(r.repairs.size(), 1u);
    EXPECT_GT(r.repairs[0].events, 0u);
    EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
    return;
  }
  FAIL() << "no seed dropped the message";
}

// --- Satellite: the fault view names the offending instants -----------------

TEST(HorizonView, ErrorsNameTheOffendingTimeAndTheCurrentHorizon) {
  HorizonFaultView view(FaultPlan{}, 2);
  view.advance(5.0);
  try {
    view.advance(4.0);
    FAIL() << "backwards advance must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("advance to 4.000000"), std::string::npos) << what;
    EXPECT_NE(what.find("horizon at 5.000000"), std::string::npos) << what;
  }
  try {
    view.observe({6.0, SimEventKind::kFailure, 1});
    FAIL() << "future observation must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("t=6.000000"), std::string::npos) << what;
    EXPECT_NE(what.find("horizon 5.000000"), std::string::npos) << what;
  }
}

// --- Satellite: debounce boundary semantics ----------------------------------

TEST(OnlineRecovery, DebounceWindowEdgeIsInclusive) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 4, 3);
  FaultPlan world;
  world.failures.push_back({1, 1.0});
  world.failures.push_back({2, 1.5});  // exactly on the window edge

  RuntimeOptions exact;
  exact.debounce = 0.5;
  RuntimeResult one = run_online_recovery(g, nominal, world, exact);
  ASSERT_EQ(one.repairs.size(), 1u);
  EXPECT_DOUBLE_EQ(one.repairs[0].observed_at, 1.0);
  EXPECT_TRUE(one.complete);

  RuntimeOptions shy;
  shy.debounce = 0.49;  // the edge event now falls outside the window
  RuntimeResult two = run_online_recovery(g, nominal, world, shy);
  ASSERT_EQ(two.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(two.repairs[1].observed_at, 1.5);
  EXPECT_TRUE(two.complete);
}

// --- The failure detector ----------------------------------------------------

TEST(FailureDetection, QuietReliableWorldEmitsNoBeliefs) {
  FaultPlan world;
  world.heartbeat.period = 1.0;
  FailureDetector det(world, 3);
  EXPECT_TRUE(det.beliefs(100.0).empty());
  // Sensing requires a heartbeat period.
  EXPECT_THROW(FailureDetector(FaultPlan{}, 3), Error);
}

TEST(FailureDetection, DeathCrossesSuspectThenConfirmThresholds) {
  FaultPlan world;
  world.heartbeat.period = 1.0;  // suspect after 2 periods, confirm after 4
  world.failures.push_back({1, 5.0});

  FailureDetector det(world, 2);
  const std::vector<BeliefEvent> beliefs = det.beliefs(20.0);
  ASSERT_EQ(beliefs.size(), 2u);
  // Last beat heard at t=4 (the t=5 emission dies with the processor):
  // suspicion accrues at 4+2, confirmation at 4+4.
  EXPECT_EQ(beliefs[0].kind, BeliefKind::kSuspected);
  EXPECT_EQ(beliefs[0].proc, 1u);
  EXPECT_DOUBLE_EQ(beliefs[0].time, 6.0);
  EXPECT_DOUBLE_EQ(beliefs[0].last_heard, 4.0);
  EXPECT_EQ(beliefs[1].kind, BeliefKind::kConfirmedDead);
  EXPECT_DOUBLE_EQ(beliefs[1].time, 8.0);

  // Prefix stability: a narrower horizon yields exactly the early prefix.
  const std::vector<BeliefEvent> early = det.beliefs(7.0);
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].key(), beliefs[0].key());
}

TEST(FailureDetection, RejoinExoneratesAConfirmedDeath) {
  FaultPlan world;
  world.heartbeat.period = 1.0;
  world.failures.push_back({1, 5.0});
  world.rejoins.push_back({1, 9.5});

  FailureDetector det(world, 2);
  const std::vector<BeliefEvent> beliefs = det.beliefs(20.0);
  ASSERT_EQ(beliefs.size(), 3u);
  EXPECT_EQ(beliefs[2].kind, BeliefKind::kExonerated);
  // First beat after the rejoin is the k=10 emission.
  EXPECT_DOUBLE_EQ(beliefs[2].time, 10.0);

  // The belief stream is a pure value of the plan.
  FailureDetector again(world, 2);
  EXPECT_EQ(belief_log_text(again.beliefs(20.0)), belief_log_text(beliefs));
}

TEST(FailureDetection, LostHeartbeatsManufactureFalseAlarms) {
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    FaultPlan world;  // everybody is alive the whole time
    world.seed = seed;
    world.heartbeat.period = 1.0;
    world.heartbeat.loss_probability = 0.35;
    FailureDetector det(world, 2);
    const std::vector<BeliefEvent> beliefs = det.beliefs(40.0);
    for (std::size_t i = 0; i + 1 < beliefs.size(); ++i)
      if (beliefs[i].kind == BeliefKind::kSuspected) {
        for (std::size_t j = i + 1; j < beliefs.size(); ++j)
          if (beliefs[j].proc == beliefs[i].proc) {
            EXPECT_NE(beliefs[j].kind, BeliefKind::kSuspected);
            if (beliefs[j].kind == BeliefKind::kExonerated) return;
            break;
          }
      }
  }
  FAIL() << "no seed produced a suspect-then-exonerate false alarm";
}

TEST(FailureDetection, ValidateRejectsBadHeartbeatConfigs) {
  FaultPlan plan;
  plan.heartbeat.period = -1.0;
  EXPECT_THROW(plan.validate(4), Error);
  plan.heartbeat.period = 1.0;
  plan.heartbeat.loss_probability = 1.5;
  EXPECT_THROW(plan.validate(4), Error);
  plan.heartbeat.loss_probability = 0.0;
  plan.heartbeat.delay_factor = 0.5;
  EXPECT_THROW(plan.validate(4), Error);
  plan.heartbeat.delay_factor = 1.5;
  plan.heartbeat.confirm_after = plan.heartbeat.suspect_after;
  EXPECT_THROW(plan.validate(4), Error);
  plan.heartbeat.confirm_after = 4.0;
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FailureDetection, AdversarialHorizonsYieldByteIdenticalPrefixes) {
  FaultPlan world;
  world.seed = 5;
  world.heartbeat.period = 1.0;
  world.heartbeat.loss_probability = 0.3;
  world.failures.push_back({1, 7.0});
  world.rejoins.push_back({1, 12.0});
  world.failures.push_back({2, 15.0});

  FailureDetector det(world, 3);
  const std::vector<BeliefEvent> full = det.beliefs(40.0);
  ASSERT_GE(full.size(), 3u);
  const std::string full_text = belief_log_text(full);

  // Interleaved, repeated and exactly-on-a-belief-boundary horizons: every
  // query returns a byte-identical prefix of the full stream. The past
  // never rewrites, shrinks or reorders, no matter how the horizons jump
  // around between queries.
  std::vector<Cost> horizons = {40.0, 3.0, 25.0, 3.0, 9.0, 9.0, 0.0, 33.0};
  for (const BeliefEvent& b : full) horizons.push_back(b.time);
  for (const Cost h : horizons) {
    const std::vector<BeliefEvent> cut = det.beliefs(h);
    const std::string cut_text = belief_log_text(cut);
    ASSERT_LE(cut_text.size(), full_text.size());
    EXPECT_EQ(cut_text, full_text.substr(0, cut_text.size()))
        << "horizon " << h;
    for (const BeliefEvent& b : cut) EXPECT_LE(b.time, h);
    // Asking the same horizon again changes nothing.
    EXPECT_EQ(belief_log_text(det.beliefs(h)), cut_text);
  }
}

TEST(FailureDetection, ObserverZeroIsTheLegacyStreamAndViewsDiverge) {
  FaultPlan world;
  world.heartbeat.period = 1.0;
  world.failures.push_back({2, 5.0});
  PartitionFault cut;  // observer 1 loses its ear on proc 2 for good
  cut.proc_a = 1;
  cut.proc_b = 2;
  cut.time = 0.0;
  world.partitions.push_back(cut);

  FailureDetector det(world, 3);
  // The per-observer view of observer 0 IS the legacy stream, byte for
  // byte, at any horizon.
  for (const Cost u : {0.0, 6.5, 11.0, 30.0})
    EXPECT_EQ(belief_log_text(det.beliefs(0, u)),
              belief_log_text(det.beliefs(u)));

  // Views genuinely diverge: observer 1 never heard proc 2 at all, so its
  // private suspicion fires at 2 periods from the start, long before
  // observer 0's (which heard beats until the real death at t=5).
  const std::vector<BeliefEvent> o0 = det.beliefs(0, 30.0);
  const std::vector<BeliefEvent> o1 = det.beliefs(1, 30.0);
  ASSERT_FALSE(o0.empty());
  ASSERT_FALSE(o1.empty());
  EXPECT_EQ(o1[0].proc, 2u);
  EXPECT_EQ(o1[0].kind, BeliefKind::kSuspected);
  EXPECT_DOUBLE_EQ(o1[0].time, 2.0);
  EXPECT_DOUBLE_EQ(o0[0].time, 6.0);
}

TEST(FailureDetection, QuorumSilencesThePartitionFalseAlarm) {
  // One lossy path to an otherwise-healthy processor: p0~p1 is cut the
  // whole run but p1 keeps beating. The single-observer stream
  // manufactures a false alarm; every quorum aggregate stays silent —
  // even quorum 1 — because a partition-severed observer is not an
  // eligible witness for that subject.
  FaultPlan world;
  world.heartbeat.period = 1.0;
  PartitionFault cut;
  cut.proc_a = 0;
  cut.proc_b = 1;
  cut.time = 0.0;
  world.partitions.push_back(cut);

  FailureDetector det(world, 3);
  const std::vector<BeliefEvent> solo = det.beliefs(30.0);
  ASSERT_FALSE(solo.empty());
  EXPECT_EQ(solo[0].proc, 1u);
  EXPECT_EQ(solo[0].kind, BeliefKind::kSuspected);
  EXPECT_TRUE(det.quorum_beliefs(1, 30.0).empty());
  EXPECT_TRUE(det.quorum_beliefs(2, 30.0).empty());
}

TEST(FailureDetection, QuorumEdgeCasesOnARealDeath) {
  // A real death on a loss-free world: all three surviving observers hear
  // the same beats at the same instants, so quorum 1 and quorum 3 agree
  // on both verdicts and their instants, and the score records the
  // concurring witness count.
  FaultPlan world;
  world.heartbeat.period = 1.0;
  world.failures.push_back({3, 5.5});
  FailureDetector det(world, 4);
  const std::vector<BeliefEvent> q1 = det.quorum_beliefs(1, 30.0);
  const std::vector<BeliefEvent> q3 = det.quorum_beliefs(3, 30.0);
  ASSERT_EQ(q1.size(), 2u);
  EXPECT_EQ(q1[0].kind, BeliefKind::kSuspected);
  EXPECT_DOUBLE_EQ(q1[0].time, 7.0);  // last beat t=5, suspect_after 2
  EXPECT_DOUBLE_EQ(q1[0].score, 3.0);
  EXPECT_EQ(q1[1].kind, BeliefKind::kConfirmedDead);
  EXPECT_DOUBLE_EQ(q1[1].time, 9.0);
  EXPECT_EQ(belief_log_text(q3), belief_log_text(q1));

  // A quorum above the eligible witness count can never be met: the
  // subject does not witness itself, so 4 procs offer at most 3 votes.
  EXPECT_TRUE(det.quorum_beliefs(4, 30.0).empty());
  EXPECT_THROW(det.quorum_beliefs(0, 30.0), Error);
}

// --- Detector-driven recovery ------------------------------------------------

TEST(DetectorRecovery, ConfirmModeRepairsAtTheConfirmationInstant) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 2, 6);
  FaultPlan world;
  world.failures.push_back({1, 0.5});
  world.heartbeat.period = 0.25;

  RuntimeOptions det;
  det.use_detector = true;
  det.speculate = false;
  RuntimeResult r = run_online_recovery(g, nominal, world, det);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.confirmations, 1u);
  EXPECT_EQ(r.false_alarms, 0u);
  // Last beat at 0.25; suspicion (passive here) at 0.75, confirmation —
  // the reaction — at 1.25, so detection lagged the death by 0.75.
  EXPECT_DOUBLE_EQ(r.mean_detection_latency, 0.75);
  ASSERT_EQ(r.repairs.size(), 2u);
  EXPECT_DOUBLE_EQ(r.repairs[0].observed_at, 0.5);   // lease-expiry kill
  EXPECT_DOUBLE_EQ(r.repairs[1].observed_at, 1.25);  // confirmation
  EXPECT_GE(r.beliefs.size(), 2u);
  EXPECT_NE(r.belief_digest, 0u);
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
  // The dead processor runs nothing after the confirmation's horizon.
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (r.schedule.proc(t) == 1)
      EXPECT_LT(r.schedule.start(t), 1.25 + 1e-9);
}

TEST(DetectorRecovery, SpeculationLaunchesAtSuspicionAndPromotes) {
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 2, 6);
  FaultPlan world;
  world.failures.push_back({1, 0.5});
  world.heartbeat.period = 0.25;

  RuntimeOptions det;
  det.use_detector = true;
  det.speculate = true;
  RuntimeResult r = run_online_recovery(g, nominal, world, det);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.confirmations, 1u);
  bool launched = false, promoted = false;
  for (const auto& inv : r.repairs) {
    launched = launched || inv.speculative;
    promoted = promoted || inv.promoted;
  }
  EXPECT_TRUE(launched);  // the suspicion itself triggered a repair
  EXPECT_TRUE(promoted);  // the confirmation adopted the speculation
  EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
}

TEST(DetectorRecovery, FalseAlarmSpeculationCancelsAndReconciles) {
  // Nothing ever dies: the only "faults" are lost heartbeats. Find a seed
  // whose detector cries wolf (suspect + exonerate, never confirm) within
  // the horizon of this three-task execution.
  TaskGraphBuilder b;
  b.add_task(20.0);
  b.add_task(10.0);
  b.add_task(10.0);
  TaskGraph g = std::move(b).build();
  Schedule nominal(2, 3);
  nominal.assign(0, 0, 0.0, 20.0);
  nominal.assign(1, 1, 0.0, 10.0);
  nominal.assign(2, 1, 10.0, 20.0);

  for (std::uint64_t seed = 1; seed < 400; ++seed) {
    FaultPlan world;
    world.seed = seed;
    world.heartbeat.period = 1.0;
    world.heartbeat.loss_probability = 0.4;
    FailureDetector probe(world, 2);
    std::size_t suspects = 0, exonerations = 0, confirms = 0;
    for (const BeliefEvent& e : probe.beliefs(18.0)) {
      suspects += e.kind == BeliefKind::kSuspected ? 1 : 0;
      exonerations += e.kind == BeliefKind::kExonerated ? 1 : 0;
      confirms += e.kind == BeliefKind::kConfirmedDead ? 1 : 0;
    }
    if (suspects == 0 || exonerations == 0 || confirms != 0) continue;

    RuntimeOptions det;
    det.use_detector = true;
    det.speculate = true;
    RuntimeResult r = run_online_recovery(g, nominal, world, det);
    EXPECT_TRUE(r.complete) << "seed " << seed;
    EXPECT_GE(r.false_alarms, 1u);
    EXPECT_EQ(r.confirmations, 0u);
    EXPECT_GE(r.repairs.size(), 1u);
    EXPECT_TRUE(is_valid_schedule(g, r.schedule, r.durations));
    EXPECT_LT(r.makespan, 60.0);  // reconciliation, not a from-scratch rerun
    return;
  }
  FAIL() << "no seed produced a pure false-alarm episode";
}

// Satellite: two suspicion flaps of an alive machine inside one debounce
// window coalesce into a single reaction.
TEST(DetectorRecovery, SuspicionFlapsInsideOneWindowReactOnce) {
  TaskGraph g;
  {
    TaskGraphBuilder b;
    for (int i = 0; i < 4; ++i) b.add_task(30.0);
    g = std::move(b).build();
  }
  Schedule nominal(4, 4);
  for (TaskId t = 0; t < 4; ++t) nominal.assign(t, t, 0.0, 30.0);

  for (std::uint64_t seed = 1; seed < 600; ++seed) {
    FaultPlan world;
    world.seed = seed;
    world.heartbeat.period = 1.0;
    world.heartbeat.loss_probability = 0.4;
    FailureDetector probe(world, 4);
    std::size_t suspects = 0, exonerations = 0, confirms = 0;
    for (const BeliefEvent& e : probe.beliefs(29.0)) {
      suspects += e.kind == BeliefKind::kSuspected ? 1 : 0;
      exonerations += e.kind == BeliefKind::kExonerated ? 1 : 0;
      confirms += e.kind == BeliefKind::kConfirmedDead ? 1 : 0;
    }
    if (suspects < 2 || exonerations < 1 || confirms != 0) continue;

    RuntimeOptions det;
    det.use_detector = true;
    det.speculate = true;
    det.debounce = 35.0;  // one window swallows the whole episode
    RuntimeResult r = run_online_recovery(g, nominal, world, det);
    EXPECT_TRUE(r.complete) << "seed " << seed;
    ASSERT_GE(r.repairs.size(), 1u);
    // Both flaps (two suspicions and at least one exoneration) landed in
    // the first window: one reaction consumed at least three beliefs.
    EXPECT_GE(r.repairs[0].events, 3u);
    EXPECT_GE(r.false_alarms, 1u);
    return;
  }
  FAIL() << "no seed produced two suspicion flaps before the makespan";
}

TEST(DetectorRecovery, AdaptiveIntervalTracksTheYoungDalyOptimum) {
  TaskGraph g;
  {
    TaskGraphBuilder b;
    for (int i = 0; i < 12; ++i) b.add_task(5.0);
    g = std::move(b).build();
  }
  Schedule nominal(3, 12);
  for (TaskId t = 0; t < 12; ++t) {
    const ProcId p = static_cast<ProcId>(t / 4);
    const Cost start = static_cast<Cost>(t % 4) * 5.0;
    nominal.assign(t, p, start, start + 5.0);
  }
  FaultPlan world;
  // Interval 2.5, not 3.0: the confirmation lands at horizon 3.0 on 3
  // processors, so the Young/Daly optimum is sqrt(2 * 0.5 * 9) = 3.0
  // exactly — the configured interval must differ for the "actually
  // adapted" assertion below to be meaningful.
  world.checkpoint = {2.5, 0.5};
  world.heartbeat.period = 0.5;
  world.failures.push_back({2, 1.2});

  RuntimeOptions det;
  det.use_detector = true;
  det.adapt_checkpoint = true;
  RuntimeResult r = run_online_recovery(g, nominal, world, det);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.confirmations, 1u);
  bool adapted = false;
  for (const auto& inv : r.repairs)
    if (inv.failure_rate > 0.0) {
      adapted = true;
      EXPECT_DOUBLE_EQ(
          inv.checkpoint_interval,
          std::sqrt(2.0 * world.checkpoint.overhead / inv.failure_rate));
      EXPECT_NE(inv.checkpoint_interval, world.checkpoint.interval);
    }
  EXPECT_TRUE(adapted);
}

TEST(DetectorRecovery, NoisyEpisodesAreDigestIdenticalAcrossRuns) {
  TaskGraph g = unit_tasks(16);
  Schedule nominal = strip_schedule(16, 4, 4);
  FaultPlan world;
  world.seed = 11;
  world.checkpoint = {1.0, 0.1};
  world.heartbeat.period = 0.25;
  world.heartbeat.loss_probability = 0.2;
  world.failures.push_back({1, 0.7});
  world.rejoins.push_back({1, 3.0});

  RuntimeOptions det;
  det.use_detector = true;
  det.speculate = true;
  det.adapt_checkpoint = true;
  RuntimeResult a = run_online_recovery(g, nominal, world, det);
  RuntimeResult b2 = run_online_recovery(g, nominal, world, det);
  EXPECT_TRUE(a.complete);
  EXPECT_EQ(a.belief_digest, b2.belief_digest);
  EXPECT_EQ(a.event_digest, b2.event_digest);
  EXPECT_EQ(a.schedule_digest, b2.schedule_digest);
  EXPECT_EQ(belief_log_text(a.beliefs), belief_log_text(b2.beliefs));
  EXPECT_EQ(a.repairs.size(), b2.repairs.size());
  EXPECT_EQ(a.false_alarms, b2.false_alarms);
  EXPECT_EQ(a.confirmations, b2.confirmations);
  EXPECT_DOUBLE_EQ(a.makespan, b2.makespan);
  EXPECT_DOUBLE_EQ(a.speculative_waste, b2.speculative_waste);
}

TEST(DetectorRecovery, PerfectEventPathIgnoresTheHeartbeatSection) {
  // The heartbeat block configures sensing only: with use_detector off the
  // controller behaves bit-identically with and without it.
  TaskGraph g = unit_tasks(12);
  Schedule nominal = strip_schedule(12, 2, 6);
  FaultPlan world;
  world.failures.push_back({1, 0.5});
  RuntimeResult bare = run_online_recovery(g, nominal, world);
  world.heartbeat.period = 0.25;
  world.heartbeat.loss_probability = 0.3;
  RuntimeResult sensed = run_online_recovery(g, nominal, world);
  EXPECT_EQ(bare.schedule_digest, sensed.schedule_digest);
  EXPECT_EQ(bare.event_digest, sensed.event_digest);
  EXPECT_EQ(bare.repairs.size(), sensed.repairs.size());
  EXPECT_TRUE(sensed.beliefs.empty());
}

}  // namespace
}  // namespace flb
