#include "flb/util/rng.hpp"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "flb/util/error.hpp"

namespace flb {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), first[i]);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform(-2.5, 7.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.uniform(3.0, 3.0), 3.0);
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, NextBelowCoversRangeWithoutEscaping) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every residue hit
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(8);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  double p = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, MeanOfUniformIsCentered) {
  Rng rng(12);
  double sum = 0;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) sum += rng.uniform(0.0, 2.0);
  EXPECT_NEAR(sum / kTrials, 1.0, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(14), b(14);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(16);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity permutation ~ 1/50!
}

TEST(DrawWeight, MeanMatchesParameter) {
  Rng rng(17);
  double sum = 0;
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) sum += draw_weight(rng, 5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.1);
}

TEST(DrawWeight, StaysNonNegativeAndBounded) {
  Rng rng(18);
  for (int i = 0; i < 10000; ++i) {
    Cost w = draw_weight(rng, 2.0);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 4.0);
  }
}

TEST(DrawWeight, ZeroMeanGivesZero) {
  Rng rng(19);
  EXPECT_DOUBLE_EQ(draw_weight(rng, 0.0), 0.0);
}

TEST(DrawWeight, RejectsNegativeMean) {
  Rng rng(20);
  EXPECT_THROW(draw_weight(rng, -1.0), Error);
}

}  // namespace
}  // namespace flb
