// Robustness and stress tests: degenerate weights (zero-cost tasks,
// zero-cost edges), extreme shapes (very wide, very deep), and all of it
// across every registered algorithm. These guard the code paths that the
// uniform-random workloads of the paper never exercise.

#include <functional>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "flb/algos/duplication.hpp"
#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/serialize.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// A DAG where a sizeable fraction of tasks cost 0 and a fraction of edges
// cost 0 — the degenerate values the continuous uniform draw almost never
// produces.
TaskGraph degenerate_graph(std::uint64_t seed) {
  Rng rng(seed);
  TaskGraphBuilder b;
  b.set_name("degenerate");
  const std::size_t n = 40;
  for (std::size_t i = 0; i < n; ++i)
    b.add_task(rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 2.0));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.15))
        b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j),
                   rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.0, 4.0));
  return std::move(b).build();
}

TEST(Robustness, ZeroCostTasksAndEdgesEverywhere) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    TaskGraph g = degenerate_graph(seed);
    for (const std::string& name : extended_scheduler_names()) {
      Schedule s = make_scheduler(name, seed)->run(g, 3);
      ASSERT_TRUE(is_valid_schedule(g, s))
          << name << " seed " << seed << "\n"
          << test::violations_to_string(g, s);
      // The event simulator agrees with the analytic times even with
      // zero-duration tasks and instantaneous messages.
      SimResult r = simulate(g, s);
      ASSERT_NEAR(r.makespan, s.makespan(), 1e-9) << name;
    }
  }
}

TEST(Robustness, DuplicationWithDegenerateWeights) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    TaskGraph g = degenerate_graph(seed + 100);
    DupScheduler dup;
    DupSchedule s = dup.run(g, 3);
    ASSERT_TRUE(is_valid_dup_schedule(g, s)) << "seed " << seed;
  }
}

TEST(Robustness, AllZeroComputation) {
  // Every task costs 0: any feasible schedule has makespan equal to the
  // communication on some path; on one processor it is 0.
  TaskGraphBuilder b;
  for (int i = 0; i < 10; ++i) b.add_task(0.0);
  for (int i = 0; i < 9; ++i)
    b.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1), 1.0);
  TaskGraph g = std::move(b).build();
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 2);
    ASSERT_TRUE(is_valid_schedule(g, s)) << name;
    EXPECT_GE(s.makespan(), 0.0);
  }
  FlbScheduler flb;
  EXPECT_DOUBLE_EQ(flb.run(g, 1).makespan(), 0.0);
}

TEST(Robustness, VeryWideGraph) {
  TaskGraph g = independent_graph(5000);
  for (const std::string& name : {"FLB", "FCP", "MCP", "DSC-LLB"}) {
    Schedule s = make_scheduler(name, 1)->run(g, 16);
    ASSERT_TRUE(is_valid_schedule(g, s)) << name;
    EXPECT_GT(speedup(g, s), 14.0) << name;  // trivial to balance
  }
}

TEST(Robustness, VeryDeepGraph) {
  WorkloadParams p;
  p.seed = 9;
  p.ccr = 1.0;
  TaskGraph g = chain_graph(5000, p);
  for (const std::string& name : {"FLB", "FCP", "MCP", "DSC-LLB"}) {
    Schedule s = make_scheduler(name, 1)->run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s)) << name;
    // A chain cannot be accelerated; every sane scheduler keeps it local.
    EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-6) << name;
  }
}

TEST(Robustness, ManyProcessorsFewTasks) {
  TaskGraph g = test::small_diamond();
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 256);
    ASSERT_TRUE(is_valid_schedule(g, s)) << name;
  }
}

TEST(Robustness, SingleTaskManyVariants) {
  TaskGraphBuilder b;
  b.add_task(3.5);
  TaskGraph g = std::move(b).build();
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 7);
    EXPECT_DOUBLE_EQ(s.makespan(), 3.5) << name;
    EXPECT_DOUBLE_EQ(s.start(0), 0.0) << name;
  }
}

TEST(Robustness, HighFanInJoin) {
  // 200 producers feed one consumer with heavy messages; the consumer's
  // processor must host at least... nothing provable, just validity plus
  // the lower bound that the join cannot start before the local producers
  // finish.
  WorkloadParams p;
  p.random_weights = false;
  p.ccr = 10.0;
  TaskGraph g = in_tree_graph(2, 200, p);
  for (const std::string& name : extended_scheduler_names()) {
    Schedule s = make_scheduler(name, 1)->run(g, 8);
    ASSERT_TRUE(is_valid_schedule(g, s)) << name;
    EXPECT_GE(s.makespan(), makespan_lower_bound(g, 8) - 1e-9) << name;
  }
}

// Builder-level ingestion hardening: non-finite and otherwise-poisoned
// costs must be rejected at the door with a message naming the offense,
// never stored to corrupt every downstream level computation.
TEST(Robustness, BuilderRejectsPoisonedCosts) {
  const Cost inf = kInfiniteTime;
  const Cost nan = std::numeric_limits<Cost>::quiet_NaN();
  struct Case {
    const char* label;
    std::function<void()> poke;
    const char* expect_in_message;
  };
  const Case cases[] = {
      {"inf task cost",
       [&] { TaskGraphBuilder b; b.add_task(inf); },
       "computation cost must be finite"},
      {"nan task cost",
       [&] { TaskGraphBuilder b; b.add_task(nan); },
       "computation cost must be finite"},
      {"inf bulk task cost",
       [&] { TaskGraphBuilder b; b.add_tasks(3, inf); },
       "computation cost must be finite"},
      {"inf edge cost",
       [&] {
         TaskGraphBuilder b;
         b.add_tasks(2, 1.0);
         b.add_edge(0, 1, inf);
       },
       "communication cost must be finite"},
      {"nan edge cost",
       [&] {
         TaskGraphBuilder b;
         b.add_tasks(2, 1.0);
         b.add_edge(0, 1, nan);
       },
       "communication cost must be finite"},
      {"out-of-range edge endpoint",
       [&] {
         TaskGraphBuilder b;
         b.add_tasks(2, 1.0);
         b.add_edge(0, 5, 1.0);
       },
       "out of range"},
      {"duplicate edge",
       [&] {
         TaskGraphBuilder b;
         b.add_tasks(2, 1.0);
         b.add_edge(0, 1, 1.0);
         b.add_edge(0, 1, 2.0);
         TaskGraph g = std::move(b).build();
         (void)g;
       },
       "duplicate edge"},
  };
  for (const Case& c : cases) {
    try {
      c.poke();
      FAIL() << c.label << ": expected flb::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.label << ": message was '" << e.what() << "'";
    }
  }
}

// The text serialization round-trip rejects the same poison, plus
// format-level damage.
TEST(Robustness, ReadTextRejectsMalformedInput) {
  struct Case {
    const char* label;
    const char* text;
    const char* expect_in_message;
  };
  const Case cases[] = {
      {"bad magic", "not-a-taskgraph 1\n", "bad magic"},
      {"truncated header", "flb-taskgraph 1\ntasks 2\n", "truncated header"},
      {"truncated task list",
       "flb-taskgraph 1\ntasks 2\nedges 0\nt 0 1.0\n", "truncated task list"},
      {"truncated edge list",
       "flb-taskgraph 1\ntasks 2\nedges 1\nt 0 1.0\nt 1 1.0\n",
       "truncated edge list"},
      {"edge endpoint out of range",
       "flb-taskgraph 1\ntasks 2\nedges 1\nt 0 1.0\nt 1 1.0\ne 0 7 1.0\n",
       "edge endpoint out of range"},
      {"duplicate edge",
       "flb-taskgraph 1\ntasks 2\nedges 2\nt 0 1.0\nt 1 1.0\n"
       "e 0 1 1.0\ne 0 1 2.0\n",
       "duplicate edge"},
      // istream extraction refuses "inf"/"nan" tokens outright, so these
      // surface as malformed-line errors quoting the line; the read_text
      // isfinite guard backstops stream configurations that accept them.
      {"non-finite task cost",
       "flb-taskgraph 1\ntasks 2\nedges 0\nt 0 inf\nt 1 1.0\n", "t 0 inf"},
      {"non-finite edge cost",
       "flb-taskgraph 1\ntasks 2\nedges 1\nt 0 1.0\nt 1 1.0\ne 0 1 nan\n",
       "e 0 1 nan"},
  };
  for (const Case& c : cases) {
    try {
      from_text(c.text);
      FAIL() << c.label << ": expected flb::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_in_message),
                std::string::npos)
          << c.label << ": message was '" << e.what() << "'";
    }
  }
}

TEST(Robustness, FlbStressLargeRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    WorkloadParams params;
    params.seed = seed;
    params.ccr = 2.0;
    TaskGraph g = random_layered_graph(60, 50, 0.15, params);  // V = 3000
    FlbScheduler flb;
    FlbStats stats;
    Schedule s = flb.run_instrumented(g, 13, nullptr, &stats);
    ASSERT_TRUE(is_valid_schedule(g, s));
    EXPECT_EQ(stats.iterations, g.num_tasks());
    EXPECT_LE(stats.max_ready, 50u);  // width of a layered graph
  }
}

}  // namespace
}  // namespace flb
