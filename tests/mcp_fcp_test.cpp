#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "flb/algos/fcp.hpp"
#include "flb/algos/mcp.hpp"
#include "flb/graph/properties.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/error.hpp"
#include "flb/workloads/workloads.hpp"
#include "test_support.hpp"

namespace flb {
namespace {

// --- MCP ------------------------------------------------------------------

TEST(Mcp, ValidOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 11;
    TaskGraph g = make_workload(name, 300, params);
    McpScheduler mcp(1);
    Schedule s = mcp.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
    EXPECT_GE(s.makespan(), makespan_lower_bound(g, 4) - 1e-9);
  }
}

TEST(Mcp, ValidOnFuzzCorpus) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {1u, 3u, 8u}) {
      McpScheduler mcp(i + 1);
      Schedule s = mcp.run(g, procs);
      ASSERT_TRUE(is_valid_schedule(g, s)) << g.name() << " P=" << procs;
    }
  }
}

TEST(Mcp, SchedulesInAlapPriorityOrderAmongReadyTasks) {
  // With strictly positive computation costs ALAP increases along every
  // edge, so MCP's consumption order must be a linear extension sorted by
  // (ALAP, tie) among simultaneously-ready tasks. Verify the weaker global
  // property: for tasks u, v with ALAP(u) < ALAP(v) and v ready no later
  // than u (v's preds all precede u's completion), u never starts after v
  // on the same processor... which reduces to: per processor, start order
  // equals assignment order (already guaranteed). Instead check the global
  // invariant that a task's start time is the exhaustive-minimum EST at
  // its assignment moment, replayed in priority order.
  TaskGraph g = test::fuzz_graph(2);
  McpScheduler mcp(3);
  Schedule s = mcp.run(g, 3);

  auto alap = alap_times(g);
  // Replay: repeatedly pick the scheduled task that (a) is ready w.r.t.
  // the replayed prefix and (b) has minimal ALAP; its recorded placement
  // must be a minimum-EST choice for the replayed partial schedule.
  Schedule replay(3, g.num_tasks());
  std::vector<bool> done(g.num_tasks(), false);
  for (TaskId step = 0; step < g.num_tasks(); ++step) {
    TaskId pick = kInvalidTask;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (done[t] || !is_ready(g, replay, t)) continue;
      if (pick == kInvalidTask || alap[t] < alap[pick]) pick = t;
    }
    ASSERT_NE(pick, kInvalidTask);
    // MCP's random tie-break may have chosen a different equal-ALAP task;
    // accept any recorded placement whose start is optimal for *some*
    // min-ALAP ready task. For simplicity require optimality for the task
    // the real scheduler actually placed at this start time; replay it.
    // Find the earliest-starting not-yet-replayed task — that is the next
    // MCP decision in time order on its processor.
    TaskId actual = kInvalidTask;
    for (TaskId t = 0; t < g.num_tasks(); ++t) {
      if (done[t]) continue;
      if (actual == kInvalidTask || s.start(t) < s.start(actual)) actual = t;
    }
    // The actually-chosen task was ready and placed at its minimum EST...
    // unless an equal-ALAP sibling was consumed first; we only assert
    // feasibility of the recorded placement against the replayed prefix.
    if (is_ready(g, replay, actual)) {
      Cost est = est_start(g, replay, actual, s.proc(actual));
      ASSERT_LE(est, s.start(actual) + 1e-9);
      replay.assign(actual, s.proc(actual), s.start(actual),
                    s.finish(actual));
      done[actual] = true;
    } else {
      // Start-time ties between independent tasks can reorder the replay;
      // fall back to the ALAP pick.
      replay.assign(pick, s.proc(pick), s.start(pick), s.finish(pick));
      done[pick] = true;
    }
  }
}

TEST(Mcp, SeedChangesTieBreaksButStaysValid) {
  WorkloadParams p;
  p.random_weights = false;  // maximal tie potential
  TaskGraph g = fork_join_graph(3, 12, p);
  McpScheduler a(1), b(2);
  Schedule sa = a.run(g, 4);
  Schedule sb = b.run(g, 4);
  EXPECT_TRUE(is_valid_schedule(g, sa));
  EXPECT_TRUE(is_valid_schedule(g, sb));
  bool differs = false;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (sa.proc(t) != sb.proc(t)) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Mcp, SameSeedIsDeterministic) {
  TaskGraph g = make_workload("Laplace", 300, {});
  McpScheduler a(5), b(5);
  Schedule sa = a.run(g, 4);
  Schedule sb = b.run(g, 4);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    EXPECT_EQ(sa.proc(t), sb.proc(t));
    EXPECT_DOUBLE_EQ(sa.start(t), sb.start(t));
  }
}

TEST(Mcp, SingleProcessorPacksSequentially) {
  TaskGraph g = test::fuzz_graph(4);
  McpScheduler mcp(1);
  Schedule s = mcp.run(g, 1);
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

// --- FCP ------------------------------------------------------------------

TEST(Fcp, ValidOnWorkloads) {
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 13;
    TaskGraph g = make_workload(name, 300, params);
    FcpScheduler fcp;
    Schedule s = fcp.run(g, 4);
    ASSERT_TRUE(is_valid_schedule(g, s))
        << name << ": " << test::violations_to_string(g, s);
  }
}

TEST(Fcp, ValidOnFuzzCorpus) {
  for (std::size_t i = 0; i < 16; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    for (ProcId procs : {1u, 2u, 6u}) {
      FcpScheduler fcp;
      Schedule s = fcp.run(g, procs);
      ASSERT_TRUE(is_valid_schedule(g, s)) << g.name() << " P=" << procs;
    }
  }
}

// FCP's placement rule: the chosen processor attains the task's minimum
// EST over ALL processors (the ICS'99 two-processor lemma). Replay FCP's
// own decisions in bottom-level order to verify each placement.
TEST(Fcp, PlacementAttainsPerTaskMinimumEst) {
  for (std::size_t i = 0; i < 12; ++i) {
    TaskGraph g = test::fuzz_graph(i);
    FcpScheduler fcp;
    const ProcId procs = 3;
    Schedule s = fcp.run(g, procs);
    ASSERT_TRUE(is_valid_schedule(g, s));

    // Reconstruct FCP's iteration order: ready tasks by (-bl, id).
    auto bl = bottom_levels(g);
    Schedule replay(procs, g.num_tasks());
    std::vector<bool> done(g.num_tasks(), false);
    for (TaskId step = 0; step < g.num_tasks(); ++step) {
      TaskId pick = kInvalidTask;
      for (TaskId t = 0; t < g.num_tasks(); ++t) {
        if (done[t] || !is_ready(g, replay, t)) continue;
        if (pick == kInvalidTask || bl[t] > bl[pick] ||
            (bl[t] == bl[pick] && t < pick))
          pick = t;
      }
      ASSERT_NE(pick, kInvalidTask);
      Cost best = best_proc_exhaustive(g, replay, pick).second;
      ASSERT_NEAR(s.start(pick), best, 1e-9)
          << g.name() << ": FCP placed t" << pick << " at " << s.start(pick)
          << " but its minimum EST was " << best;
      replay.assign(pick, s.proc(pick), s.start(pick), s.finish(pick));
      done[pick] = true;
    }
  }
}

TEST(Fcp, SingleProcessorPacksSequentially) {
  TaskGraph g = test::fuzz_graph(7);
  FcpScheduler fcp;
  Schedule s = fcp.run(g, 1);
  EXPECT_NEAR(s.makespan(), g.total_comp(), 1e-9);
}

TEST(Fcp, DeterministicAcrossRuns) {
  TaskGraph g = make_workload("FFT", 300, {});
  FcpScheduler fcp;
  Schedule a = fcp.run(g, 4);
  Schedule b = fcp.run(g, 4);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    EXPECT_EQ(a.proc(t), b.proc(t));
}

TEST(Fcp, RejectsZeroProcessors) {
  FcpScheduler fcp;
  TaskGraph g = test::small_diamond();
  EXPECT_THROW((void)fcp.run(g, 0), Error);
}

}  // namespace
}  // namespace flb
