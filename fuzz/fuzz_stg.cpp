// libFuzzer harness for the Standard Task Graph (STG) reader
// (graph/stg.cpp). Arbitrary bytes must parse or throw flb::Error —
// never crash or trip ASan/UBSan. Seed corpus: tests/corpus/stg.

#include <cstddef>
#include <cstdint>
#include <string>

#include "flb/graph/stg.hpp"
#include "flb/util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    flb::WorkloadParams params;
    params.random_weights = false;  // deterministic edge synthesis
    const flb::TaskGraph g = flb::stg_from_text(text, params);
    (void)g.num_edges();
  } catch (const flb::Error&) {
  }
  return 0;
}
