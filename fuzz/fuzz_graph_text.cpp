// libFuzzer harness for the flb-taskgraph text reader
// (graph/serialize.cpp). Arbitrary bytes must parse or throw flb::Error —
// never crash or trip ASan/UBSan. Round-trips accepted inputs through the
// writer to also exercise the serialization path. Seed corpus:
// tests/corpus/graph_text.

#include <cstddef>
#include <cstdint>
#include <string>

#include "flb/graph/serialize.hpp"
#include "flb/util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const flb::TaskGraph g = flb::from_text(text);
    (void)flb::to_text(g);
  } catch (const flb::Error&) {
  }
  return 0;
}
