// libFuzzer harness for the flb-faultplan text reader
// (sim/fault_plan_io.cpp). Arbitrary bytes must parse or throw
// flb::Error — never crash or trip ASan/UBSan. Accepted plans are
// round-tripped through the writer and put through validate() (which may
// itself throw on semantic problems the line parser cannot see). Seed
// corpus: tests/corpus/faultplan.

#include <cstddef>
#include <cstdint>
#include <string>

#include "flb/sim/faults.hpp"
#include "flb/util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const flb::FaultPlan plan = flb::fault_plan_from_text(text);
    (void)flb::to_fault_plan_text(plan);
    plan.validate(8);
  } catch (const flb::Error&) {
  }
  return 0;
}
