// libFuzzer harness for the Graphviz DOT reader (graph/dot.cpp). The
// contract under fuzzing: arbitrary bytes either parse into a valid
// TaskGraph or throw flb::Error — never crash, hang, leak or trip
// ASan/UBSan. Seed corpus: tests/corpus/dot (replayed in plain ctest by
// tests/corpus_replay_test.cpp).
//
//   clang++ ... -fsanitize=fuzzer,address,undefined  (see fuzz/CMakeLists.txt)
//   ./fuzz_dot tests/corpus/dot

#include <cstddef>
#include <cstdint>
#include <string>

#include "flb/graph/dot.hpp"
#include "flb/util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const flb::TaskGraph g = flb::dot_from_text(text);
    // Parsed graphs must satisfy the TaskGraph invariants; exercise a few
    // accessors so a malformed-but-accepted graph still trips sanitizers.
    (void)flb::to_dot(g);
  } catch (const flb::Error&) {
    // Rejecting malformed input with a structured error is the point.
  }
  return 0;
}
