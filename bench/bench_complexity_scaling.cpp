// Complexity ablation (paper Section 4.2): empirical cost growth of each
// algorithm as V scales, and as P scales, on the Stencil workload.
//
//   FLB:     O(V (log W + log P) + E)  -> near-linear in V, flat in P
//   FCP:     O(V log P + E)            -> near-linear in V, flat in P
//   MCP:     O(V log V + (E + V) P)    -> linear in P
//   ETF:     O(W (E + V) P)            -> superlinear in V (W grows too),
//                                         linear in P
//   DSC-LLB: O((E + V) log V)          -> independent of P
//
// Reported as time ratios between successive sizes; a ratio near the size
// ratio (2.0) indicates linear scaling.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  CliArgs args(argc, argv);
  const std::size_t repeats =
      static_cast<std::size_t>(args.get_int("seeds", 3));
  std::vector<std::int64_t> sizes_default{500, 1000, 2000, 4000, 8000};
  std::vector<std::int64_t> sizes = args.get_int_list("sizes", sizes_default);

  std::cout << "Complexity scaling in V (Stencil, CCR 1.0, P = 8, "
            << repeats << " repeats)\n\n";
  {
    std::vector<std::string> headers{"algorithm"};
    for (std::int64_t v : sizes) headers.push_back("V~" + std::to_string(v));
    headers.emplace_back("last ratio");
    Table table(headers);
    for (const std::string& algo : scheduler_names()) {
      std::vector<std::string> row{algo};
      double prev = 0.0, last_ratio = 0.0;
      for (std::int64_t v : sizes) {
        std::vector<double> times;
        for (std::size_t seed = 1; seed <= repeats; ++seed) {
          WorkloadParams params;
          params.seed = seed;
          TaskGraph g =
              make_workload("Stencil", static_cast<std::size_t>(v), params);
          auto sched = make_scheduler(algo, seed);
          times.push_back(run_once(*sched, g, 8).millis);
        }
        double t = mean(times);
        row.push_back(format_fixed(t, 2));
        if (prev > 0.0) last_ratio = t / prev;
        prev = t;
      }
      row.push_back(format_fixed(last_ratio, 2));
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "(ratio ~2.0 = linear in V; ETF exceeds it because the "
                 "graph width W grows with V)\n";
  }

  std::cout << "\nComplexity scaling in P (Stencil, V ~ 2000)\n\n";
  {
    std::vector<ProcId> procs{2, 8, 32, 128};
    std::vector<std::string> headers{"algorithm"};
    for (ProcId p : procs) headers.push_back("P=" + std::to_string(p));
    headers.emplace_back("P=128 / P=2");
    Table table(headers);
    for (const std::string& algo : scheduler_names()) {
      std::vector<std::string> row{algo};
      std::map<ProcId, double> t;
      for (ProcId p : procs) {
        std::vector<double> times;
        for (std::size_t seed = 1; seed <= repeats; ++seed) {
          WorkloadParams params;
          params.seed = seed;
          TaskGraph g = make_workload("Stencil", 2000, params);
          auto sched = make_scheduler(algo, seed);
          times.push_back(run_once(*sched, g, p).millis);
        }
        t[p] = mean(times);
        row.push_back(format_fixed(t[p], 2));
      }
      row.push_back(format_fixed(t[128] / t[2], 2));
      table.add_row(row);
    }
    table.print(std::cout);
    std::cout << "(FLB/FCP/DSC-LLB should stay near 1.0x; MCP and "
                 "especially ETF grow with P)\n";
  }
  return 0;
}
