// Local-search headroom ablation: run the single-task-move hill climber on
// each algorithm's schedule and report how much makespan it recovers — a
// proxy for each heuristic's distance from local optimality. Algorithms
// whose schedules improve little were already near a local optimum;
// algorithms that improve a lot left quality on the table (at whatever
// their scheduling cost was).

#include <algorithm>
#include <map>

#include "bench_common.hpp"
#include "flb/sched/improve.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  if (!args.has("tasks")) cfg.tasks = 400;  // V*P evaluations per pass
  if (!args.has("seeds")) cfg.seeds = 3;

  std::cout << "Local-search headroom at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds, averaged over workloads and CCR "
            << "{0.2, 5}; 'recovered' = 1 - improved/original)\n\n";

  Table table({"algorithm", "hill-climb recovered", "moves",
               "anneal recovered", "best of both"});
  for (const std::string& algo : scheduler_names()) {
    std::vector<double> hc_rec, moves, sa_rec, best_rec;
    for (const std::string& workload : cfg.workloads) {
      for (double ccr : cfg.ccrs) {
        for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
          WorkloadParams params;
          params.ccr = ccr;
          params.seed = seed;
          TaskGraph g = make_workload(workload, cfg.tasks, params);
          auto sched = make_scheduler(algo, seed);
          Schedule s = sched->run(g, procs);
          ImproveResult hc = improve_schedule(g, s);
          AnnealOptions ao;
          ao.iterations = 1500;
          ao.seed = seed;
          ImproveResult sa = anneal_schedule(g, s, ao);
          double base = std::max(1e-12, hc.initial_makespan);
          hc_rec.push_back(1.0 - hc.final_makespan / base);
          sa_rec.push_back(1.0 - sa.final_makespan / base);
          best_rec.push_back(
              1.0 - std::min(hc.final_makespan, sa.final_makespan) / base);
          moves.push_back(static_cast<double>(hc.moves));
        }
      }
    }
    table.add_row({algo, format_fixed(mean(hc_rec) * 100.0, 2) + "%",
                   format_fixed(mean(moves), 1),
                   format_fixed(mean(sa_rec) * 100.0, 2) + "%",
                   format_fixed(mean(best_rec) * 100.0, 2) + "%"});
  }
  emit(table, cfg);
  std::cout << "\n(small recovery = the heuristic was already near a "
               "single-move local optimum; annealing explores beyond "
               "strict descent at a fixed 1500-evaluation budget)\n";
  return 0;
}
