// Batch-serving throughput of the arena-backed FLB engine (flb::serve):
// DAGs/sec and per-request latency percentiles vs worker-thread count on a
// mixed workload-generator stream. The digest column chains every
// schedule's FNV-1a digest in request order — it must be identical on
// every row, which is the end-to-end check that the concurrent batch
// driver is byte-identical to a sequential run.
//
//   --dags N       requests in the batch (default 64; --smoke: 12)
//   --tasks V      target tasks per DAG (default 300; --smoke: 60)
//   --threads a,b  worker counts to sweep (default 1,2,4,8)
//   --procs P      processors per request (first entry; default 8)
//   --smoke        tiny sizes + an assertion sweep — the TSan CI entry
//   --csv          CSV output

#include <algorithm>
#include <cstdint>

#include "bench_common.hpp"
#include "flb/serve/serve.hpp"

namespace {

// Chain per-request digests in input order into one batch fingerprint.
std::uint64_t chain_digests(const std::vector<flb::serve::ScheduleResult>& rs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : rs) {
    for (int i = 0; i < 8; ++i) {
      h ^= (r.digest >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  return h;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  CliArgs args(argc, argv);
  const bool smoke = args.has("smoke");
  const bool csv = args.has("csv");
  const std::size_t dags = static_cast<std::size_t>(
      args.get_int("dags", smoke ? 12 : 64));
  const std::size_t tasks = static_cast<std::size_t>(
      args.get_int("tasks", smoke ? 60 : 300));
  std::vector<std::int64_t> threads_default{1, 2, 4, 8};
  std::vector<std::int64_t> threads =
      args.get_int_list("threads", threads_default);
  std::vector<std::int64_t> procs_default{8};
  const ProcId procs = static_cast<ProcId>(
      args.get_int_list("procs", procs_default).front());

  // The mixed request stream: cycle through the workload families with a
  // fresh seed per request, so no two requests are the same graph.
  const std::vector<std::string> families = workload_names();
  std::vector<TaskGraph> graphs;
  graphs.reserve(dags);
  for (std::size_t i = 0; i < dags; ++i) {
    WorkloadParams params;
    params.seed = i + 1;
    params.ccr = (i % 2 == 0) ? 0.2 : 5.0;  // the paper's two CCR regimes
    graphs.push_back(
        make_workload(families[i % families.size()], tasks, params));
  }
  std::vector<serve::ScheduleRequest> requests;
  requests.reserve(dags);
  for (const TaskGraph& g : graphs) requests.push_back({&g, procs});

  std::cout << "Batch throughput: " << dags << " mixed DAGs (V~" << tasks
            << ", P=" << procs << ") vs worker threads\n\n";

  Table table({"threads", "wall ms", "DAGs/s", "speedup", "p50 ms", "p99 ms",
               "batch digest"});
  double base_wall = 0.0;
  std::uint64_t base_digest = 0;
  bool first = true;
  for (std::int64_t tc : threads) {
    FLB_REQUIRE(tc >= 1, "--threads entries must be positive");
    serve::BatchOptions opts;
    opts.num_threads = static_cast<std::size_t>(tc);
    // One warm-up sweep so steady-state scratch reuse (not first-touch
    // arena growth) is what gets measured.
    (void)serve::schedule_batch(requests, opts);
    Stopwatch sw;
    std::vector<serve::ScheduleResult> results =
        serve::schedule_batch(requests, opts);
    const double wall = sw.millis();

    std::vector<double> lat;
    lat.reserve(results.size());
    for (const auto& r : results) lat.push_back(r.run_ms);
    const std::uint64_t digest = chain_digests(results);
    if (first) {
      base_wall = wall;
      base_digest = digest;
      first = false;
    }
    FLB_REQUIRE(digest == base_digest,
                "bench_throughput: batch digest diverged across thread "
                "counts — the concurrent driver is not deterministic");
    table.add_row({std::to_string(tc), format_fixed(wall, 1),
                   format_fixed(static_cast<double>(dags) * 1000.0 / wall, 1),
                   format_fixed(base_wall / wall, 2),
                   format_fixed(percentile(lat, 0.5), 3),
                   format_fixed(percentile(lat, 0.99), 3),
                   std::to_string(digest)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "(identical batch digests across rows = the concurrent "
               "driver is byte-identical to sequential FLB)\n";

  if (smoke) {
    // Exercise the streaming service under TSan: bounded queue, blocking
    // backpressure, drain, per-request latency accounting.
    serve::ScheduleService::Options sopts;
    sopts.num_threads = 4;
    sopts.queue_capacity = 4;  // small on purpose: force backpressure
    serve::ScheduleService service(sopts);
    for (const TaskGraph& g : graphs) (void)service.submit(g, procs);
    service.drain();
    serve::ServiceStats st = service.stats();
    FLB_REQUIRE(st.completed == dags,
                "bench_throughput: service lost requests");
    std::uint64_t chained = 1469598103934665603ull;
    for (std::size_t id = 0; id < dags; ++id) {
      const std::uint64_t d = service.result(id).digest;
      for (int i = 0; i < 8; ++i) {
        chained ^= (d >> (8 * i)) & 0xff;
        chained *= 1099511628211ull;
      }
    }
    FLB_REQUIRE(chained == base_digest,
                "bench_throughput: service digests diverged from the batch");
    service.close();
    std::cout << "smoke: service ok (" << st.completed << " completed, "
              << st.backpressure_waits << " backpressure waits)\n";
  }
  return 0;
}
