// Contention ablation on the machine simulator: the paper's model assumes
// inter-processor communication "without contention" (Section 2). This
// bench executes each algorithm's schedule on the event-driven machine
// under progressively harsher network models (contention-free, single
// send port, single send+receive port) and reports the makespan inflation
// — how much of each algorithm's advantage survives when the assumption
// is dropped, and whether the relative ranking of the algorithms holds.

#include <map>

#include "bench_common.hpp"
#include "flb/sim/machine_sim.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));

  struct Model {
    const char* label;
    SimNetwork network;
  };
  const Model models[] = {
      {"free", SimNetwork::kContentionFree},
      {"1-port send", SimNetwork::kSinglePortSend},
      {"1-port s+r", SimNetwork::kSinglePortSendRecv},
  };

  std::cout << "Network-contention ablation at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; cells are simulated makespans normalized by the "
               "analytic contention-free MCP)\n";

  for (double ccr : cfg.ccrs) {
    std::cout << "\nCCR = " << ccr
              << " (averaged over LU/Laplace/Stencil)\n";
    std::vector<std::string> headers{"algorithm"};
    for (const Model& m : models) headers.emplace_back(m.label);
    headers.emplace_back("inflation");
    Table table(headers);

    std::map<std::string, std::map<std::string, std::vector<double>>> cells;
    for (const std::string& workload : cfg.workloads) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        auto mcp_ref = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp_ref, g, procs).makespan;
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule s = sched->run(g, procs);
          for (const Model& m : models) {
            SimOptions options;
            options.network = m.network;
            SimResult r = simulate(g, s, options);
            cells[algo][m.label].push_back(r.makespan / mcp_len);
          }
        }
      }
    }

    for (const std::string& algo : scheduler_names()) {
      std::vector<std::string> row{algo};
      double free_val = mean(cells[algo]["free"]);
      double worst = free_val;
      for (const Model& m : models) {
        double v = mean(cells[algo][m.label]);
        worst = std::max(worst, v);
        row.push_back(format_fixed(v, 3));
      }
      row.push_back("x" + format_fixed(worst / free_val, 2));
      table.add_row(row);
    }
    emit(table, cfg);
  }

  std::cout << "\n(the contention-free column reproduces Fig. 4's analytic "
               "NSLs; the port-constrained columns show how far the "
               "paper's model is from a serializing NIC)\n";
  return 0;
}
