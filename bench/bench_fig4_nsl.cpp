// Paper Fig. 4: normalized schedule lengths (makespan / MCP's makespan) for
// MCP, ETF, DSC-LLB, FCP and FLB on LU, Stencil and Laplace at CCR 0.2 and
// 5.0, P = 2..32 — six panels, reproduced here as six tables.
//
// Expected shape (Section 6.2): MCP and ETF trade wins per problem and
// granularity; DSC-LLB trails the one-step algorithms (typically <= ~20%
// above, occasionally more); FCP and FLB track MCP/ETF closely; FLB
// consistently beats DSC-LLB.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);

  std::cout << "Fig. 4 — normalized schedule length vs MCP (V ~ "
            << cfg.tasks << ", " << cfg.seeds << " seeds)\n";

  // workload -> ccr -> algo -> P -> mean NSL, for the shape summary.
  std::map<std::string, double> nsl_sum_flb_vs_dscllb;

  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      std::cout << "\n" << workload << ", CCR = " << ccr << "\n";
      std::vector<std::string> headers{"algorithm"};
      for (ProcId p : cfg.procs) headers.push_back("P=" + std::to_string(p));
      Table table(headers);

      // algo -> P -> NSLs over seeds.
      std::map<std::string, std::map<ProcId, std::vector<double>>> nsl;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        for (ProcId p : cfg.procs) {
          auto mcp = make_scheduler("MCP", seed);
          Cost mcp_len = run_once(*mcp, g, p).makespan;
          nsl["MCP"][p].push_back(1.0);
          for (const std::string& algo : scheduler_names()) {
            if (algo == "MCP") continue;
            auto sched = make_scheduler(algo, seed);
            Cost len = run_once(*sched, g, p).makespan;
            nsl[algo][p].push_back(len / mcp_len);
          }
        }
      }

      for (const std::string& algo : scheduler_names()) {
        std::vector<std::string> row{algo};
        for (ProcId p : cfg.procs)
          row.push_back(format_fixed(mean(nsl[algo][p]), 3));
        table.add_row(row);
      }
      emit(table, cfg);

      for (ProcId p : cfg.procs) {
        nsl_sum_flb_vs_dscllb["FLB"] += mean(nsl["FLB"][p]);
        nsl_sum_flb_vs_dscllb["DSC-LLB"] += mean(nsl["DSC-LLB"][p]);
        nsl_sum_flb_vs_dscllb["ETF"] += mean(nsl["ETF"][p]);
        nsl_sum_flb_vs_dscllb["FCP"] += mean(nsl["FCP"][p]);
        nsl_sum_flb_vs_dscllb["count"] += 1.0;
      }
    }
  }

  double n = nsl_sum_flb_vs_dscllb["count"];
  std::cout << "\nshape checks (averaged over all panels):\n";
  std::cout << "  mean NSL: ETF "
            << format_fixed(nsl_sum_flb_vs_dscllb["ETF"] / n, 3) << ", FCP "
            << format_fixed(nsl_sum_flb_vs_dscllb["FCP"] / n, 3) << ", FLB "
            << format_fixed(nsl_sum_flb_vs_dscllb["FLB"] / n, 3)
            << ", DSC-LLB "
            << format_fixed(nsl_sum_flb_vs_dscllb["DSC-LLB"] / n, 3) << "\n";
  std::cout << "  FLB beats DSC-LLB on average: "
            << (nsl_sum_flb_vs_dscllb["FLB"] < nsl_sum_flb_vs_dscllb["DSC-LLB"]
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "  FLB within 15% of MCP on average: "
            << (nsl_sum_flb_vs_dscllb["FLB"] / n < 1.15 ? "yes" : "NO")
            << "\n";
  return 0;
}
