#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/metrics.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/cli.hpp"
#include "flb/util/error.hpp"
#include "flb/util/stopwatch.hpp"
#include "flb/util/table.hpp"
#include "flb/workloads/workloads.hpp"

/// \file bench_common.hpp
/// Shared configuration and measurement helpers for the figure-regenerating
/// benchmark binaries. Every binary accepts:
///   --tasks N        target graph size (paper: 2000)
///   --seeds K        random instances per configuration (paper: 5)
///   --procs a,b,...  processor counts
///   --ccr a,b,...    CCR values (paper: 0.2, 5.0)
///   --csv            emit CSV instead of an aligned table

namespace flb::bench {

struct Config {
  std::size_t tasks = 2000;
  std::size_t seeds = 5;
  std::vector<ProcId> procs = {2, 4, 8, 16, 32};
  std::vector<double> ccrs = {0.2, 5.0};
  std::vector<std::string> workloads = {"LU", "Laplace", "Stencil"};
  bool csv = false;
};

inline Config parse_config(int argc, char** argv) {
  CliArgs args(argc, argv);
  Config cfg;
  cfg.tasks = static_cast<std::size_t>(
      args.get_int("tasks", static_cast<std::int64_t>(cfg.tasks)));
  cfg.seeds = static_cast<std::size_t>(
      args.get_int("seeds", static_cast<std::int64_t>(cfg.seeds)));
  std::vector<std::int64_t> procs_default(cfg.procs.begin(), cfg.procs.end());
  cfg.procs.clear();
  for (std::int64_t p : args.get_int_list("procs", procs_default)) {
    FLB_REQUIRE(p >= 1, "--procs entries must be positive");
    cfg.procs.push_back(static_cast<ProcId>(p));
  }
  cfg.ccrs = args.get_double_list("ccr", cfg.ccrs);
  cfg.csv = args.has("csv");
  return cfg;
}

inline void emit(const Table& table, const Config& cfg) {
  if (cfg.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// One timed, validated scheduling run.
struct RunResult {
  Cost makespan = 0.0;
  double millis = 0.0;
};

inline RunResult run_once(Scheduler& sched, const TaskGraph& g,
                          ProcId procs) {
  Stopwatch sw;
  Schedule s = sched.run(g, procs);
  RunResult r{s.makespan(), sw.millis()};
  FLB_REQUIRE(is_valid_schedule(g, s),
              sched.name() + " produced an infeasible schedule on " +
                  g.name());
  return r;
}

/// Arithmetic mean.
inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

/// Sample standard deviation (0 for fewer than two samples).
inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double sq = 0.0;
  for (double x : v) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(v.size() - 1));
}

}  // namespace flb::bench
