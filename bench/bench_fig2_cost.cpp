// Paper Fig. 2: scheduling algorithm cost (running time) as a function of
// the number of processors, averaged over the evaluation workloads
// (LU / Laplace / Stencil, V ~ 2000, CCR in {0.2, 5}, several seeds).
//
// Expected shape (Section 6.1): ETF is by far the most expensive and grows
// steeply with P; MCP grows with P but much more slowly; DSC-LLB is flat in
// P (its dominant cost, clustering, is P-independent); FCP and FLB are the
// cheapest and near-flat in P. Absolute milliseconds differ from the
// paper's 1999 Pentium Pro, the ordering and growth must not.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);

  std::cout << "Fig. 2 — scheduling cost [ms] vs number of processors\n"
            << "(V ~ " << cfg.tasks << ", workloads LU/Laplace/Stencil, "
            << cfg.seeds << " seeds, CCR averaged over";
  for (double c : cfg.ccrs) std::cout << " " << c;
  std::cout << ")\n\n";

  // Algorithm -> P -> times.
  std::map<std::string, std::map<ProcId, std::vector<double>>> times;

  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        for (ProcId p : cfg.procs) {
          for (const std::string& algo : scheduler_names()) {
            auto sched = make_scheduler(algo, seed);
            RunResult r = run_once(*sched, g, p);
            times[algo][p].push_back(r.millis);
          }
        }
      }
    }
  }

  std::vector<std::string> headers{"algorithm"};
  for (ProcId p : cfg.procs) headers.push_back("P=" + std::to_string(p));
  Table table(headers);
  double worst_rel_sd = 0.0;
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (ProcId p : cfg.procs) {
      row.push_back(format_fixed(mean(times[algo][p]), 2));
      if (mean(times[algo][p]) > 0.0)
        worst_rel_sd = std::max(
            worst_rel_sd, stddev(times[algo][p]) / mean(times[algo][p]));
    }
    table.add_row(row);
  }
  emit(table, cfg);
  std::cout << "\ntiming noise: worst relative stddev across cells "
            << format_fixed(worst_rel_sd * 100.0, 1) << "%\n";

  // The paper's qualitative claims, checked mechanically.
  auto t = [&](const std::string& algo, ProcId p) {
    return mean(times[algo][p]);
  };
  ProcId p_lo = cfg.procs.front(), p_hi = cfg.procs.back();
  std::cout << "\nshape checks (paper Section 6.1):\n";
  std::cout << "  ETF most expensive at P=" << p_hi << ": "
            << (t("ETF", p_hi) > t("MCP", p_hi) &&
                        t("ETF", p_hi) > t("DSC-LLB", p_hi) &&
                        t("ETF", p_hi) > t("FLB", p_hi)
                    ? "yes"
                    : "NO")
            << "\n";
  std::cout << "  ETF grows with P (x"
            << format_fixed(t("ETF", p_hi) / t("ETF", p_lo), 1)
            << " from P=" << p_lo << " to P=" << p_hi << ")\n";
  std::cout << "  MCP cheaper than ETF at P=" << p_hi << ": "
            << (t("MCP", p_hi) < t("ETF", p_hi) ? "yes" : "NO") << "\n";
  std::cout << "  DSC-LLB flat in P (x"
            << format_fixed(t("DSC-LLB", p_hi) / t("DSC-LLB", p_lo), 2)
            << ")\n";
  std::cout << "  FLB near FCP cost: FLB "
            << format_fixed(t("FLB", p_hi), 2) << " ms vs FCP "
            << format_fixed(t("FCP", p_hi), 2) << " ms at P=" << p_hi
            << "\n";
  std::cout << "  FLB cheaper than MCP at P=" << p_hi << ": "
            << (t("FLB", p_hi) < t("MCP", p_hi) ? "yes" : "NO") << "\n";
  return 0;
}
