// CCR-sensitivity ablation: the paper samples only CCR = 0.2 and 5.0 (the
// tech-report version sweeps more). This bench fills the range in between,
// reporting NSL vs MCP across CCR in {0.1, 0.2, 0.5, 1, 2, 5, 10} at a
// fixed P, showing where each algorithm's relative quality crosses over as
// problems go from compute- to communication-dominated.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  std::vector<double> ccrs =
      args.get_double_list("ccr", {0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0});

  std::cout << "CCR sweep — NSL vs MCP at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds, averaged over LU/Laplace/Stencil)\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double c : ccrs) headers.push_back("CCR=" + format_compact(c));
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> nsl;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        auto mcp = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp, g, procs).makespan;
        for (const std::string& algo : scheduler_names()) {
          if (algo == "MCP") {
            nsl[algo][ccr].push_back(1.0);
            continue;
          }
          auto sched = make_scheduler(algo, seed);
          nsl[algo][ccr].push_back(run_once(*sched, g, procs).makespan /
                                   mcp_len);
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double c : ccrs) row.push_back(format_fixed(mean(nsl[algo][c]), 3));
    table.add_row(row);
  }
  emit(table, cfg);
  std::cout << "\n(earliest-start algorithms — ETF/FLB — typically gain on "
               "MCP as CCR grows on regular problems)\n";
  return 0;
}
