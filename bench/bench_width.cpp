// Width ablation: FLB's complexity bound O(V(log W + log P) + E) involves
// the task-graph width W, but the scheduler never computes W — only the
// analysis does. This bench justifies keeping the exact Dilworth /
// Hopcroft-Karp width out of the scheduling path: it reports, per
// workload, the exact width, the cheap per-level lower bound, the peak
// ready-set size FLB actually observes, and the cost of computing each.

#include "bench_common.hpp"
#include "flb/core/flb.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/width.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  CliArgs args(argc, argv);
  const auto tasks = static_cast<std::size_t>(args.get_int("tasks", 1000));

  std::cout << "Task-graph width: exact vs level bound vs FLB's observed "
               "peak ready-set (V ~ "
            << tasks << ")\n\n";

  Table table({"workload", "V", "level bound", "exact W", "FLB max ready",
               "level [ms]", "exact [ms]", "FLB run [ms]"});
  for (const std::string& name : workload_names()) {
    WorkloadParams params;
    params.seed = 1;
    TaskGraph g = make_workload(name, tasks, params);

    Stopwatch sw_level;
    std::size_t level = max_level_width(g);
    double t_level = sw_level.millis();

    Stopwatch sw_exact;
    std::size_t exact = exact_width(g);
    double t_exact = sw_exact.millis();

    FlbScheduler flb;
    FlbStats stats;
    Stopwatch sw_flb;
    (void)flb.run_instrumented(g, 8, nullptr, &stats);
    double t_flb = sw_flb.millis();

    table.add_row({g.name(), std::to_string(g.num_tasks()),
                   std::to_string(level), std::to_string(exact),
                   std::to_string(stats.max_ready), format_fixed(t_level, 2),
                   format_fixed(t_exact, 2), format_fixed(t_flb, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(exact width costs orders of magnitude more than an "
               "entire FLB run — hence it stays a diagnostics routine; the "
               "observed ready-set peak is bounded by W as Section 2 "
               "requires)\n";
  return 0;
}
