// Heterogeneity extension bench: HEFT and CPOP (the successors of this
// paper's list-scheduling line) on related machines with increasing speed
// skew, against two references — the fastest processor running everything
// sequentially, and HEFT on an equal-aggregate-speed uniform machine.
// Shows where parallelism stops paying as heterogeneity grows, and how
// HEFT's per-task placement beats CPOP's critical-path pinning on
// irregular graphs.

#include <cmath>

#include "bench_common.hpp"
#include "flb/algos/heft.hpp"
#include "flb/sched/hetero.hpp"
#include "flb/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  if (!args.has("tasks")) cfg.tasks = 1000;

  // Speed skew: speeds drawn log-uniformly from [1/skew, skew].
  std::vector<double> skews = args.get_double_list("skew", {1.0, 2.0, 4.0, 8.0});

  std::cout << "HEFT / CPOP on related machines, P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; makespans normalized by the fastest processor "
               "running everything)\n\n";

  std::vector<std::string> headers{"workload"};
  for (double skew : skews) {
    headers.push_back("HEFT s=" + format_compact(skew));
    headers.push_back("CPOP s=" + format_compact(skew));
  }
  Table table(headers);

  for (const std::string& workload : cfg.workloads) {
    std::vector<std::string> row{workload};
    for (double skew : skews) {
      std::vector<double> heft_norm, cpop_norm;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = 1.0;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);

        Rng rng(seed * 977);
        std::vector<double> speeds(procs);
        double fastest = 0.0;
        for (double& s : speeds) {
          // log-uniform in [1/skew, skew]
          double u = rng.uniform(-1.0, 1.0);
          s = std::pow(skew, u);
          fastest = std::max(fastest, s);
        }
        HeteroMachine m(speeds);
        Cost solo = g.total_comp() / fastest;  // fastest proc, no comm

        Schedule sh = heft(g, m);
        FLB_REQUIRE(is_valid_hetero_schedule(g, m, sh), "HEFT infeasible");
        Schedule sc = cpop(g, m);
        FLB_REQUIRE(is_valid_hetero_schedule(g, m, sc), "CPOP infeasible");
        heft_norm.push_back(sh.makespan() / solo);
        cpop_norm.push_back(sc.makespan() / solo);
      }
      row.push_back(format_fixed(mean(heft_norm), 3));
      row.push_back(format_fixed(mean(cpop_norm), 3));
    }
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\n(values < 1 mean the heterogeneous schedule beats the "
               "fastest single processor; rising values with skew show "
               "parallelism losing value as one processor dominates)\n";
  return 0;
}
