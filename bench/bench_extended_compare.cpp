// Extended comparison: the paper's five algorithms plus this library's
// additional baselines (HLFET, DLS, MCP-I) on the evaluation workloads —
// NSL vs MCP and scheduling time, the "related work" panorama the paper's
// Section 3 sketches in prose.

#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));

  std::cout << "Extended algorithm comparison at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; NSL vs MCP / time in ms)\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (const std::string& workload : cfg.workloads)
    for (double ccr : cfg.ccrs)
      headers.push_back(workload + " " + format_compact(ccr));
  headers.emplace_back("mean NSL");
  headers.emplace_back("time");
  Table table(headers);

  std::map<std::string, std::map<std::string, std::vector<double>>> nsl;
  std::map<std::string, std::vector<double>> times;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      std::string col = workload + " " + format_compact(ccr);
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        auto mcp = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp, g, procs).makespan;
        for (const std::string& algo : extended_scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          RunResult r = run_once(*sched, g, procs);
          nsl[algo][col].push_back(r.makespan / mcp_len);
          times[algo].push_back(r.millis);
        }
      }
    }
  }

  for (const std::string& algo : extended_scheduler_names()) {
    std::vector<std::string> row{algo};
    std::vector<double> all;
    for (const std::string& workload : cfg.workloads) {
      for (double ccr : cfg.ccrs) {
        std::string col = workload + " " + format_compact(ccr);
        double v = mean(nsl[algo][col]);
        all.push_back(v);
        row.push_back(format_fixed(v, 3));
      }
    }
    row.push_back(format_fixed(mean(all), 3));
    row.push_back(format_fixed(mean(times[algo]), 2));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\n(HLFET ignores communication in its priorities — expect "
               "it to trail on high-CCR columns; MCP-I's insertion should "
               "never lose to MCP by more than noise)\n";
  return 0;
}
