// Lookahead ablation: tests the paper's Section 6.2 explanation for the
// earliest-start family's weakness on LU — "FLB, like ETF, does not
// consider future communication and computation when taking a scheduling
// decision, which in this case yields worse schedules." ETF-LA replaces
// ETF's objective with a one-step critical-child lookahead; if the
// explanation is right, the lookahead should recover (part of) the gap to
// MCP on the join-heavy workloads while changing little on the regular
// ones.

#include <cmath>
#include <map>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 16));
  cfg.workloads = {"LU", "Gauss", "Cholesky", "Laplace", "Stencil"};

  std::cout << "Lookahead ablation at P = " << procs << " (V ~ " << cfg.tasks
            << ", " << cfg.seeds << " seeds; NSL vs MCP)\n\n";

  const std::vector<std::string> algos = {"ETF", "ETF-LA", "FLB"};
  std::vector<std::string> headers{"workload", "CCR"};
  for (const std::string& a : algos) headers.push_back(a);
  Table table(headers);

  std::map<std::string, std::vector<double>> join_heavy, regular;
  for (const std::string& workload : cfg.workloads) {
    bool is_join_heavy = workload == "LU" || workload == "Gauss" ||
                         workload == "Cholesky" || workload == "Laplace";
    for (double ccr : cfg.ccrs) {
      std::map<std::string, std::vector<double>> nsl;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        auto mcp = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp, g, procs).makespan;
        for (const std::string& a : algos) {
          auto sched = make_scheduler(a, seed);
          double v = run_once(*sched, g, procs).makespan / mcp_len;
          nsl[a].push_back(v);
          (is_join_heavy ? join_heavy : regular)[a].push_back(v);
        }
      }
      std::vector<std::string> row{workload, format_fixed(ccr, 1)};
      for (const std::string& a : algos)
        row.push_back(format_fixed(mean(nsl[a]), 3));
      table.add_row(row);
    }
  }
  emit(table, cfg);

  std::cout << "\nfindings (paper Sec. 6.2 conjecture):\n";
  std::cout << "  join-heavy mean NSL: ETF "
            << format_fixed(mean(join_heavy["ETF"]), 3) << ", ETF-LA "
            << format_fixed(mean(join_heavy["ETF-LA"]), 3) << ", FLB "
            << format_fixed(mean(join_heavy["FLB"]), 3) << "\n";
  std::cout << "  regular mean NSL:    ETF "
            << format_fixed(mean(regular["ETF"]), 3) << ", ETF-LA "
            << format_fixed(mean(regular["ETF-LA"]), 3) << ", FLB "
            << format_fixed(mean(regular["FLB"]), 3) << "\n";
  std::cout << "  ETF-LA tracks FLB rather than ETF: "
            << (std::abs(mean(join_heavy["ETF-LA"]) -
                         mean(join_heavy["FLB"])) <
                        std::abs(mean(join_heavy["ETF-LA"]) -
                                 mean(join_heavy["ETF"]))
                    ? "yes"
                    : "no")
            << "\n"
            << "  (on these instances the join-heavy gap is governed by\n"
            << "   which equally-early pair the tie-break picks, and a\n"
            << "   one-step dynamic lookahead lands on FLB's side of that\n"
            << "   choice — the static bottom-level cascade, not missing\n"
            << "   future-communication awareness, is what wins on LU)\n";
  return 0;
}
