// Multi-step method ablation (paper Sections 1 and 3.3): both stages of
// the multi-step pipeline varied independently — clustering by DSC
// (O((E+V) log V)) or Sarkar's edge-zeroing (O(E(V+E))), mapping by LLB
// (communication-aware), wrap (round-robin) or work balancing (LPT on
// cluster weights) — against FLB, normalized by MCP. Reproduces the
// context for the paper's claim that DSC-LLB is the strongest multi-step
// combination while one-step FLB still beats it at lower cost.

#include <map>

#include "bench_common.hpp"
#include "flb/algos/llb.hpp"
#include "flb/algos/mapping.hpp"
#include "flb/algos/sarkar.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  // Sarkar's clustering is O(E(V+E)); keep the default instance size
  // moderate so the bench stays interactive.
  if (!args.has("tasks")) cfg.tasks = 500;

  std::cout << "Multi-step methods at P = " << procs << " (V ~ " << cfg.tasks
            << ", " << cfg.seeds
            << " seeds; NSL vs MCP, clustering time in ms)\n\n";

  struct Method {
    const char* label;
    bool sarkar;                        // clustering choice
    Schedule (*map)(const TaskGraph&, const Clustering&, ProcId);
  };
  const Method methods[] = {
      {"DSC+LLB", false, &llb_map},
      {"DSC+wrap", false, &wrap_map},
      {"DSC+work", false, &work_map},
      {"Sarkar+LLB", true, &llb_map},
      {"Sarkar+wrap", true, &wrap_map},
      {"Sarkar+work", true, &work_map},
  };

  std::map<std::string, std::vector<double>> nsl, cluster_ms;
  std::vector<double> flb_nsl;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);

        auto mcp = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp, g, procs).makespan;
        auto flb = make_scheduler("FLB", seed);
        flb_nsl.push_back(run_once(*flb, g, procs).makespan / mcp_len);

        Stopwatch sw_dsc;
        Clustering dsc = dsc_cluster(g);
        double dsc_ms = sw_dsc.millis();
        Stopwatch sw_sarkar;
        Clustering sarkar = sarkar_cluster(g);
        double sarkar_ms = sw_sarkar.millis();

        for (const Method& m : methods) {
          const Clustering& c = m.sarkar ? sarkar : dsc;
          Schedule s = m.map(g, c, procs);
          FLB_REQUIRE(is_valid_schedule(g, s),
                      std::string(m.label) + " infeasible on " + g.name());
          nsl[m.label].push_back(s.makespan() / mcp_len);
          cluster_ms[m.label].push_back(m.sarkar ? sarkar_ms : dsc_ms);
        }
      }
    }
  }

  Table table({"method", "mean NSL", "clustering [ms]"});
  for (const Method& m : methods)
    table.add_row({m.label, format_fixed(mean(nsl[m.label]), 3),
                   format_fixed(mean(cluster_ms[m.label]), 2)});
  table.add_row({"FLB (one-step)", format_fixed(mean(flb_nsl), 3), "-"});
  emit(table, cfg);

  std::cout << "\nshape checks:\n  LLB is the best mapping for DSC: "
            << (mean(nsl["DSC+LLB"]) <= mean(nsl["DSC+wrap"]) &&
                        mean(nsl["DSC+LLB"]) <= mean(nsl["DSC+work"])
                    ? "yes"
                    : "NO")
            << "\n  Sarkar clustering costs >> DSC: x"
            << format_fixed(mean(cluster_ms["Sarkar+LLB"]) /
                                std::max(0.001, mean(cluster_ms["DSC+LLB"])),
                            0)
            << "\n";
  return 0;
}
