// Robustness ablation: compile-time schedules meet runtime variability.
// Each algorithm schedules the *nominal* graph; the schedule's dispatch
// order is then executed (event-driven) on graphs whose weights are
// perturbed by +/- spread. Reported: mean simulated makespan normalized by
// the nominal analytic makespan. An algorithm whose schedules degrade
// gracefully leaves slack in the right places; one that overfits the exact
// weights loses its paper-model advantage at runtime.

#include <map>

#include "bench_common.hpp"
#include "flb/sim/machine_sim.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  std::vector<double> spreads =
      args.get_double_list("spread", {0.0, 0.2, 0.5, 0.9});
  const std::size_t trials =
      static_cast<std::size_t>(args.get_int("trials", 5));

  std::cout << "Runtime-variability ablation at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds << " seeds, " << trials
            << " perturbation trials; simulated / nominal makespan, "
            << "averaged over LU/Laplace/Stencil and CCR {0.2, 5})\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double spread : spreads)
    headers.push_back("+-" + format_compact(spread * 100) + "%");
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> cells;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule s = sched->run(g, procs);
          Cost nominal = s.makespan();
          for (double spread : spreads) {
            for (std::size_t trial = 1; trial <= trials; ++trial) {
              TaskGraph perturbed =
                  perturb_weights(g, spread, seed * 1000 + trial);
              SimResult r = simulate(perturbed, s);
              cells[algo][spread].push_back(r.makespan / nominal);
            }
          }
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double spread : spreads)
      row.push_back(format_fixed(mean(cells[algo][spread]), 3));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\n(the +-0% column re-executes the nominal schedule and must "
               "be exactly 1.000 — an end-to-end simulator cross-check; "
               "growth with spread is the price of static scheduling)\n";
  return 0;
}
