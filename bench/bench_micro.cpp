// Google-benchmark micro benchmarks: per-algorithm scheduling throughput on
// a fixed paper-scale instance, the addressable-heap operations FLB's inner
// loop is built from, and the platform cost-model pricing hot path every
// scheduling decision now routes through.

#include <benchmark/benchmark.h>

#include "flb/core/flb.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/indexed_heap.hpp"
#include "flb/util/rng.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

using namespace flb;

const TaskGraph& shared_graph() {
  static TaskGraph g = [] {
    WorkloadParams params;
    params.ccr = 1.0;
    params.seed = 1;
    return make_workload("LU", 2000, params);
  }();
  return g;
}

void BM_Scheduler(benchmark::State& state, const std::string& name) {
  const TaskGraph& g = shared_graph();
  const auto procs = static_cast<ProcId>(state.range(0));
  auto sched = make_scheduler(name, 1);
  for (auto _ : state) {
    Schedule s = sched->run(g, procs);
    benchmark::DoNotOptimize(s.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_tasks());
}

void BM_FLB(benchmark::State& state) { BM_Scheduler(state, "FLB"); }
void BM_FCP(benchmark::State& state) { BM_Scheduler(state, "FCP"); }
void BM_MCP(benchmark::State& state) { BM_Scheduler(state, "MCP"); }
void BM_DSCLLB(benchmark::State& state) { BM_Scheduler(state, "DSC-LLB"); }
void BM_ETF(benchmark::State& state) { BM_Scheduler(state, "ETF"); }

BENCHMARK(BM_FLB)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FCP)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MCP)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DSCLLB)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ETF)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> keys(n);
  for (double& k : keys) k = rng.next_double();
  IndexedMinHeap<std::pair<double, std::size_t>> heap(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) heap.push(i, {keys[i], i});
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_HeapPushPop)->Arg(64)->Arg(2048);

void BM_HeapUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  IndexedMinHeap<std::pair<double, std::size_t>> heap(n);
  for (std::size_t i = 0; i < n; ++i) heap.push(i, {rng.next_double(), i});
  for (auto _ : state) {
    std::size_t id = rng.next_below(n);
    heap.update(id, {rng.next_double(), id});
    benchmark::DoNotOptimize(heap.top());
  }
}
BENCHMARK(BM_HeapUpdate)->Arg(64)->Arg(2048);

// ---------------------------------------------------------------------------
// Cost-model pricing hot path. Every EST probe of every scheduler goes
// through CostModel::comm / arrival, so its per-query cost is the constant
// in front of FLB's O(V (log W + log P) + E) bound. Clique must stay a
// couple of flops; routed adds a hop-table lookup; link-busy walks the
// route against the reservations (probe) or claims it (commit).

constexpr ProcId kPricingProcs = 32;
constexpr std::size_t kQueries = 4096;

struct Query {
  ProcId src;
  ProcId dst;
  Cost bytes;
  Cost depart;
};

const std::vector<Query>& pricing_queries() {
  static std::vector<Query> qs = [] {
    Rng rng(42);
    std::vector<Query> out;
    out.reserve(kQueries);
    for (std::size_t i = 0; i < kQueries; ++i) {
      ProcId src = static_cast<ProcId>(rng.next_below(kPricingProcs));
      ProcId dst = static_cast<ProcId>(rng.next_below(kPricingProcs));
      if (dst == src) dst = (dst + 1) % kPricingProcs;  // always remote
      out.push_back({src, dst, 1.0 + rng.next_double() * 9.0,
                     rng.next_double() * 100.0});
    }
    return out;
  }();
  return qs;
}

const Topology& pricing_mesh() {
  static Topology topo = Topology::mesh2d(4, 8);
  return topo;
}

void BM_CommClique(benchmark::State& state) {
  platform::CostModel model = platform::CostModel::clique(kPricingProcs);
  const auto& qs = pricing_queries();
  for (auto _ : state)
    for (const Query& q : qs)
      benchmark::DoNotOptimize(model.comm(q.src, q.dst, q.bytes, q.depart));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kQueries));
}
BENCHMARK(BM_CommClique);

void BM_CommRouted(benchmark::State& state) {
  platform::CostModel model = platform::CostModel::routed(pricing_mesh());
  const auto& qs = pricing_queries();
  for (auto _ : state)
    for (const Query& q : qs)
      benchmark::DoNotOptimize(model.comm(q.src, q.dst, q.bytes, q.depart));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kQueries));
}
BENCHMARK(BM_CommRouted);

void BM_CommLinkBusyProbe(benchmark::State& state) {
  platform::CostModel model = platform::CostModel::link_busy(pricing_mesh());
  const auto& qs = pricing_queries();
  // Probe against a realistically loaded network: commit half the queries
  // once so the probes contend with genuine reservations.
  for (std::size_t i = 0; i < kQueries; i += 2)
    model.commit(qs[i].src, qs[i].dst, qs[i].bytes, qs[i].depart);
  for (auto _ : state)
    for (const Query& q : qs)
      benchmark::DoNotOptimize(model.comm(q.src, q.dst, q.bytes, q.depart));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kQueries));
}
BENCHMARK(BM_CommLinkBusyProbe);

void BM_CommLinkBusyCommit(benchmark::State& state) {
  platform::CostModel model = platform::CostModel::link_busy(pricing_mesh());
  const auto& qs = pricing_queries();
  for (auto _ : state) {
    state.PauseTiming();
    model.reset_links();  // unbounded reservation growth is not the hot path
    state.ResumeTiming();
    for (const Query& q : qs)
      benchmark::DoNotOptimize(model.commit(q.src, q.dst, q.bytes, q.depart));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kQueries));
}
BENCHMARK(BM_CommLinkBusyCommit);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 1;
  for (auto _ : state) {
    TaskGraph g = make_workload("Laplace", 2000, params);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
