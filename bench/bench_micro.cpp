// Google-benchmark micro benchmarks: per-algorithm scheduling throughput on
// a fixed paper-scale instance, and the addressable-heap operations FLB's
// inner loop is built from.

#include <benchmark/benchmark.h>

#include "flb/core/flb.hpp"
#include "flb/sched/scheduler.hpp"
#include "flb/util/indexed_heap.hpp"
#include "flb/util/rng.hpp"
#include "flb/workloads/workloads.hpp"

namespace {

using namespace flb;

const TaskGraph& shared_graph() {
  static TaskGraph g = [] {
    WorkloadParams params;
    params.ccr = 1.0;
    params.seed = 1;
    return make_workload("LU", 2000, params);
  }();
  return g;
}

void BM_Scheduler(benchmark::State& state, const std::string& name) {
  const TaskGraph& g = shared_graph();
  const auto procs = static_cast<ProcId>(state.range(0));
  auto sched = make_scheduler(name, 1);
  for (auto _ : state) {
    Schedule s = sched->run(g, procs);
    benchmark::DoNotOptimize(s.makespan());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_tasks());
}

void BM_FLB(benchmark::State& state) { BM_Scheduler(state, "FLB"); }
void BM_FCP(benchmark::State& state) { BM_Scheduler(state, "FCP"); }
void BM_MCP(benchmark::State& state) { BM_Scheduler(state, "MCP"); }
void BM_DSCLLB(benchmark::State& state) { BM_Scheduler(state, "DSC-LLB"); }
void BM_ETF(benchmark::State& state) { BM_Scheduler(state, "ETF"); }

BENCHMARK(BM_FLB)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FCP)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MCP)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DSCLLB)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ETF)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_HeapPushPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<double> keys(n);
  for (double& k : keys) k = rng.next_double();
  IndexedMinHeap<std::pair<double, std::size_t>> heap(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) heap.push(i, {keys[i], i});
    while (!heap.empty()) benchmark::DoNotOptimize(heap.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
}
BENCHMARK(BM_HeapPushPop)->Arg(64)->Arg(2048);

void BM_HeapUpdate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  IndexedMinHeap<std::pair<double, std::size_t>> heap(n);
  for (std::size_t i = 0; i < n; ++i) heap.push(i, {rng.next_double(), i});
  for (auto _ : state) {
    std::size_t id = rng.next_below(n);
    heap.update(id, {rng.next_double(), id});
    benchmark::DoNotOptimize(heap.top());
  }
}
BENCHMARK(BM_HeapUpdate)->Arg(64)->Arg(2048);

void BM_WorkloadGeneration(benchmark::State& state) {
  WorkloadParams params;
  params.seed = 1;
  for (auto _ : state) {
    TaskGraph g = make_workload("Laplace", 2000, params);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_WorkloadGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
