// Tie-break ablation: the paper attributes FLB-vs-ETF quality differences
// (up to ~12%) entirely to tie-breaking among equally-early ready tasks
// (Sections 4 and 6.2) and argues FLB's dynamic bottom-level rule is the
// better one. This bench quantifies that claim by running FLB with its
// paper rule (bottom level), a FIFO-ish task-id rule and a random rule,
// reporting mean NSL vs the bottom-level variant.

#include <map>

#include "bench_common.hpp"
#include "flb/core/flb.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);

  struct Variant {
    const char* label;
    FlbTieBreak tb;
  };
  const Variant variants[] = {
      {"bottom-level (paper)", FlbTieBreak::kBottomLevel},
      {"task-id (FIFO)", FlbTieBreak::kTaskId},
      {"random", FlbTieBreak::kRandom},
  };

  std::cout << "FLB tie-break ablation (V ~ " << cfg.tasks << ", "
            << cfg.seeds << " seeds; NSL vs the paper's bottom-level rule, "
            << "averaged over P in";
  for (ProcId p : cfg.procs) std::cout << " " << p;
  std::cout << ")\n\n";

  std::vector<std::string> headers{"workload", "CCR"};
  for (const Variant& v : variants) headers.emplace_back(v.label);
  Table table(headers);

  std::map<std::string, std::vector<double>> overall;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      std::map<std::string, std::vector<double>> nsl;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        for (ProcId p : cfg.procs) {
          FlbOptions base;
          base.tie_break = FlbTieBreak::kBottomLevel;
          FlbScheduler ref(base);
          Cost ref_len = run_once(ref, g, p).makespan;
          for (const Variant& v : variants) {
            FlbOptions options;
            options.tie_break = v.tb;
            options.seed = seed;
            FlbScheduler sched(options);
            Cost len = run_once(sched, g, p).makespan;
            nsl[v.label].push_back(len / ref_len);
            overall[v.label].push_back(len / ref_len);
          }
        }
      }
      std::vector<std::string> row{workload, format_fixed(ccr, 1)};
      for (const Variant& v : variants)
        row.push_back(format_fixed(mean(nsl[v.label]), 3));
      table.add_row(row);
    }
  }
  emit(table, cfg);

  std::cout << "\noverall mean NSL: ";
  for (const Variant& v : variants)
    std::cout << v.label << " " << format_fixed(mean(overall[v.label]), 3)
              << "  ";
  std::cout << "\n(the paper's rule should be <= the alternatives)\n";
  return 0;
}
