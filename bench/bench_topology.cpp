// Topology ablation: the paper's clique/contention-free network vs real
// sparse interconnects. FLB's schedules (computed under the clique model)
// are executed on cliques with serializing links, 2-D meshes, rings and
// stars; cells are simulated makespans normalized by the analytic
// contention-free value. Shows how far the model is from routed networks
// and which topology hurts most as CCR grows.

#include <cmath>
#include <map>

#include "bench_common.hpp"
#include "flb/sim/topology.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 16));
  FLB_REQUIRE(procs >= 4, "--at-procs must be at least 4");

  // A near-square mesh with exactly `procs` nodes.
  ProcId rows = static_cast<ProcId>(std::sqrt(static_cast<double>(procs)));
  while (procs % rows != 0) --rows;
  ProcId cols = procs / rows;

  struct Net {
    std::string label;
    Topology topo;
  };
  std::vector<Net> nets;
  nets.push_back({"clique", Topology::clique(procs)});
  nets.push_back({"mesh " + std::to_string(rows) + "x" + std::to_string(cols),
                  Topology::mesh2d(rows, cols)});
  nets.push_back({"ring", Topology::ring(procs)});
  nets.push_back({"star", Topology::star(procs)});

  std::cout << "Topology ablation, FLB schedules at P = " << procs
            << " (V ~ " << cfg.tasks << ", " << cfg.seeds
            << " seeds; simulated makespan / analytic contention-free)\n";

  for (double ccr : cfg.ccrs) {
    std::cout << "\nCCR = " << ccr << "\n";
    std::vector<std::string> headers{"workload"};
    for (const Net& nt : nets) headers.push_back(nt.label);
    headers.emplace_back("max-link busy (ring)");
    Table table(headers);

    for (const std::string& workload : cfg.workloads) {
      std::map<std::string, std::vector<double>> cells;
      std::vector<double> ring_busy;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        auto flb = make_scheduler("FLB", seed);
        Schedule s = flb->run(g, procs);
        Cost analytic = s.makespan();
        for (const Net& nt : nets) {
          TopologySimResult r = simulate_on_topology(g, s, nt.topo);
          cells[nt.label].push_back(r.sim.makespan / analytic);
          if (nt.label == "ring")
            ring_busy.push_back(r.max_link_busy / r.sim.makespan);
        }
      }
      std::vector<std::string> row{workload};
      for (const Net& nt : nets)
        row.push_back(format_fixed(mean(cells[nt.label]), 2));
      row.push_back(format_fixed(mean(ring_busy) * 100.0, 0) + "%");
      table.add_row(row);
    }
    emit(table, cfg);
  }

  std::cout << "\n(clique = per-pair dedicated links, still >= 1.0 because "
               "repeated same-pair messages serialize; the star's hub and "
               "the ring's few links are the choke points)\n";
  return 0;
}
