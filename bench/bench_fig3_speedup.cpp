// Paper Fig. 3: FLB speedup (T_seq / T_par) for the evaluation workloads at
// CCR = 0.2 and CCR = 5.0, P = 1..32. The figure plots Stencil, Laplace and
// LU; the accompanying text also discusses FFT, so it is included here.
//
// Expected shape (Section 6.2): the regular problems (Stencil, FFT) scale
// near-linearly; LU and Laplace, with their many joins, flatten out at
// higher processor counts; CCR = 5 yields uniformly lower speedups than
// CCR = 0.2.

#include <map>

#include "bench_common.hpp"
#include "flb/core/flb.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  cfg.workloads = {"Stencil", "Laplace", "LU", "FFT"};
  // Fig. 3's x-axis starts at P = 1.
  if (cfg.procs.front() != 1)
    cfg.procs.insert(cfg.procs.begin(), 1);

  std::cout << "Fig. 3 — FLB speedup (V ~ " << cfg.tasks << ", " << cfg.seeds
            << " seeds)\n";

  for (double ccr : cfg.ccrs) {
    std::cout << "\nCCR = " << ccr << "\n";
    std::vector<std::string> headers{"workload"};
    for (ProcId p : cfg.procs) headers.push_back("P=" + std::to_string(p));
    Table table(headers);

    std::map<std::string, std::map<ProcId, double>> speedups;
    for (const std::string& workload : cfg.workloads) {
      std::map<ProcId, std::vector<double>> per_p;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        FlbScheduler flb;
        for (ProcId p : cfg.procs) {
          RunResult r = run_once(flb, g, p);
          per_p[p].push_back(g.total_comp() / r.makespan);
        }
      }
      std::vector<std::string> row{workload};
      for (ProcId p : cfg.procs) {
        double s = mean(per_p[p]);
        speedups[workload][p] = s;
        row.push_back(format_fixed(s, 2));
      }
      table.add_row(row);
    }
    emit(table, cfg);

    ProcId p_hi = cfg.procs.back();
    std::cout << "shape checks: regular problems scale best at P=" << p_hi
              << " -> Stencil " << format_fixed(speedups["Stencil"][p_hi], 1)
              << ", FFT " << format_fixed(speedups["FFT"][p_hi], 1)
              << ", Laplace " << format_fixed(speedups["Laplace"][p_hi], 1)
              << ", LU " << format_fixed(speedups["LU"][p_hi], 1) << "\n";
  }
  return 0;
}
