// Fault-tolerance sweeps.
//
// Sweep 1 (PR 1): kill one processor at increasing fractions of the nominal
// makespan and measure how gracefully each algorithm's schedule can be
// repaired online (machine_sim fault injection + repair_schedule). The
// later the failure, the more of the schedule has already executed and the
// less work must migrate — a repair-friendly schedule degrades smoothly
// toward 1.0.
//
// Sweep 2 (the ROADMAP's checkpoint-interval vs repair-cost sweep): a
// correlated burst kills the first half of the machine ("rack0") while one
// survivor is throttled to half speed, under periodic checkpointing at
// decreasing intervals. Reported per algorithm and interval: mean work lost
// to the burst and the mean repaired/nominal makespan. Tighter intervals
// save more in-flight work but re-execute with more checkpoint-write
// overhead — the trade the sweep quantifies.
//
// Sweep 3 (the ROADMAP's nonzero-overhead sweep): the same burst episode,
// but every durable checkpoint write costs real wall time. Tight intervals
// now cut both ways — less work lost, more writes paid — and per workload
// the sweep reports the break-even interval: the tightest interval whose
// mean repaired/nominal makespan is still no worse than running without
// checkpoints.
//
// Sweep 4 (recovery give-back): the victim processor is killed at 10% of
// the nominal makespan and rejoins, rebooted with cold caches, at 35%.
// Repair either refuses the recovered capacity (no-give-back baseline) or
// opportunistically migrates not-yet-started work back to it. Reported per
// algorithm, under the paper's clique and under a routed 2-D mesh:
// no-give-back ratio | give-back ratio | mean work given back.
//
// Flags beyond bench_common's: --at-procs P, --victim p, --when f1,f2,...,
// --ckpt f1,f2,... (checkpoint intervals as fractions of the nominal
// makespan), --ckpt-overhead f (sweep 3's write cost as a fraction of the
// mean task work), --stg path (schedule one STG instance instead of the
// synthetic workloads), and --validate (durations-aware validation of every
// repaired schedule, checkpoint-superiority and give-back-never-worse
// enforcement, and byte-identical output: wall-clock columns are suppressed
// so re-runs can be diffed — the CI fault-sweep smoke job).

#include <algorithm>
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "flb/graph/stg.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/topology.hpp"

namespace {

using namespace flb;

TaskGraph stg_graph(const std::string& path, double ccr, std::size_t seed) {
  std::ifstream in(path);
  FLB_REQUIRE(in.good(), "cannot open STG file: " + path);
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = seed;
  return read_stg(in, params);
}

// The most square 2-D mesh with exactly `procs` nodes (rows = the largest
// divisor not exceeding sqrt; a prime count degenerates to a 1 x P chain).
Topology mesh_for(ProcId procs) {
  ProcId rows = 1;
  for (ProcId r = 1; static_cast<std::size_t>(r) * r <= procs; ++r)
    if (procs % r == 0) rows = r;
  return Topology::mesh2d(rows, procs / rows);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  const auto victim = static_cast<ProcId>(args.get_int("victim", 1));
  std::vector<double> fractions =
      args.get_double_list("when", {0.1, 0.25, 0.5, 0.75});
  std::vector<double> ckpt_fractions =
      args.get_double_list("ckpt", {0.4, 0.2, 0.1, 0.05});
  const double ckpt_overhead = args.get_double("ckpt-overhead", 0.05);
  const std::string stg_path = args.get("stg", "");
  const bool validate = args.has("validate");
  FLB_REQUIRE(ckpt_overhead >= 0.0, "--ckpt-overhead must be non-negative");
  FLB_REQUIRE(victim < procs, "--victim must name a processor below --at-procs");
  FLB_REQUIRE(procs >= 2, "--at-procs must be at least 2");
  if (!stg_path.empty()) cfg.workloads = {"STG:" + stg_path};

  auto make_graph = [&](const std::string& workload, double ccr,
                        std::size_t seed) {
    if (!stg_path.empty()) return stg_graph(stg_path, ccr, seed);
    WorkloadParams params;
    params.ccr = ccr;
    params.seed = seed;
    return make_workload(workload, cfg.tasks, params);
  };

  std::cout << "Fault-tolerance sweep at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; processor " << victim
            << " fails at the given fraction of the nominal makespan; "
            << "repaired / nominal makespan)\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double f : fractions)
    headers.push_back("t=" + format_compact(f * 100) + "%");
  if (!validate) headers.push_back("repair ms");
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> ratio;
  std::map<std::string, std::vector<double>> latency;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          for (double f : fractions) {
            FaultPlan plan =
                FaultPlan::single_failure(victim, f * nominal.makespan());
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
            ratio[algo][f].push_back(m.degradation_ratio);
            latency[algo].push_back(m.repair_millis);
          }
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : fractions)
      row.push_back(format_fixed(mean(ratio[algo][f]), 3));
    if (!validate) row.push_back(format_fixed(mean(latency[algo]), 3));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\nCheckpoint-interval sweep: rack0 (processors 0.."
            << procs / 2 - 1 << ") dies in a correlated burst at 30% of the "
            << "nominal makespan, processor " << procs / 2
            << " throttles to half speed; checkpoint interval as a fraction "
            << "of the mean task work (off = no checkpointing). Cells: "
            << "mean work lost | mean repaired/nominal makespan.\n\n";

  std::vector<std::string> ck_headers{"algorithm", "off"};
  for (double f : ckpt_fractions)
    ck_headers.push_back("i=" + format_compact(f * 100) + "%");
  Table ck_table(ck_headers);

  // ckpt column key: 0.0 = off.
  std::vector<double> columns{0.0};
  columns.insert(columns.end(), ckpt_fractions.begin(), ckpt_fractions.end());
  std::map<std::string, std::map<double, std::vector<double>>> lost, degr;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        const Cost mean_comp =
            g.total_comp() / static_cast<Cost>(g.num_tasks());
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          FaultPlan episode;
          episode.seed = seed;
          FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
          for (ProcId p = 0; p < procs; ++p)
            (p < procs / 2 ? rack0 : rack1).members.push_back(p);
          episode.domains = {rack0, rack1};
          episode.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
          episode.slowdowns.push_back({static_cast<ProcId>(procs / 2),
                                       0.25 * span, 0.5});

          for (double f : columns) {
            FaultPlan plan = episode;
            if (f > 0.0) plan.checkpoint = {f * mean_comp, 0.0};
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m =
                robustness_metrics(nominal, partial, repair, plan);
            lost[algo][f].push_back(m.work_lost);
            degr[algo][f].push_back(m.degradation_ratio);
          }
        }
      }
    }
  }

  double total_baseline = 0.0, total_tightest = 0.0;
  const double tightest =
      *std::min_element(ckpt_fractions.begin(), ckpt_fractions.end());
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : columns)
      row.push_back(format_fixed(mean(lost[algo][f]), 1) + " | " +
                    format_fixed(mean(degr[algo][f]), 3));
    ck_table.add_row(row);
    total_baseline += mean(lost[algo][0.0]);
    total_tightest += mean(lost[algo][tightest]);
    // With zero write overhead a checkpointed run can never lose more than
    // the uncheckpointed one; enforce that invariant per cell.
    if (validate)
      for (double f : ckpt_fractions)
        FLB_REQUIRE(mean(lost[algo][f]) <= mean(lost[algo][0.0]) + 1e-9,
                    algo + ": checkpointing at interval fraction " +
                        format_compact(f) +
                        " lost more work than the no-checkpoint baseline");
  }
  emit(ck_table, cfg);
  if (validate && total_baseline > 0.0)
    FLB_REQUIRE(total_tightest < total_baseline,
                "the tightest checkpoint interval did not reduce total work "
                "lost strictly below the no-checkpoint baseline");

  std::cout << "\n(work lost shrinks as the interval tightens — each killed "
               "task resumes from its last durable checkpoint — while the "
               "degradation ratio reflects the repair re-balancing the "
               "remainder onto the surviving, partly throttled rack)\n";

  // --- Sweep 3: checkpoint write overhead and the break-even interval ----
  std::cout << "\nCheckpoint write-overhead sweep (FLB): the same rack0 "
            << "burst episode, but every durable checkpoint write costs "
            << format_compact(ckpt_overhead * 100)
            << "% of the mean task work in wall time. Cells: mean "
            << "repaired/nominal makespan per workload; break-even is the "
            << "tightest interval still no worse than running without "
            << "checkpoints.\n\n";

  std::vector<std::string> ov_headers{"workload", "off"};
  for (double f : ckpt_fractions)
    ov_headers.push_back("i=" + format_compact(f * 100) + "%");
  ov_headers.push_back("break-even");
  Table ov_table(ov_headers);

  for (const std::string& workload : cfg.workloads) {
    std::map<double, std::vector<double>> ov_degr;
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        const Cost mean_comp =
            g.total_comp() / static_cast<Cost>(g.num_tasks());
        auto sched = make_scheduler("FLB", seed);
        Schedule nominal = sched->run(g, procs);
        const Cost span = nominal.makespan();

        FaultPlan episode;
        episode.seed = seed;
        FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
        for (ProcId p = 0; p < procs; ++p)
          (p < procs / 2 ? rack0 : rack1).members.push_back(p);
        episode.domains = {rack0, rack1};
        episode.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
        episode.slowdowns.push_back({static_cast<ProcId>(procs / 2),
                                     0.25 * span, 0.5});

        for (double f : columns) {
          FaultPlan plan = episode;
          if (f > 0.0)
            plan.checkpoint = {f * mean_comp, ckpt_overhead * mean_comp};
          SimOptions opts;
          opts.faults = &plan;
          SimResult partial = simulate(g, nominal, opts);
          RepairResult repair = repair_schedule(g, nominal, partial, plan);
          if (validate)
            FLB_REQUIRE(
                is_valid_schedule(g, repair.schedule, repair.durations),
                "FLB produced an infeasible repaired schedule on " +
                    g.name());
          RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
          ov_degr[f].push_back(m.degradation_ratio);
        }
      }
    }
    // Break-even: checkpointing pays for its writes down to this interval.
    const double off_ratio = mean(ov_degr[0.0]);
    double break_even = 0.0;
    for (double f : ckpt_fractions)
      if (mean(ov_degr[f]) <= off_ratio + 1e-9)
        break_even = break_even == 0.0 ? f : std::min(break_even, f);
    std::vector<std::string> row{workload};
    for (double f : columns) row.push_back(format_fixed(mean(ov_degr[f]), 3));
    row.push_back(break_even > 0.0
                      ? "i=" + format_compact(break_even * 100) + "%"
                      : "none");
    ov_table.add_row(row);
  }
  emit(ov_table, cfg);

  std::cout << "\n(with free writes tighter is always better; with paid "
               "writes the curve turns — below the break-even interval the "
               "re-execution's checkpoint traffic outweighs the work "
               "saved)\n";

  // --- Sweep 4: recovery give-back under the clique and a routed mesh ----
  const Topology mesh = mesh_for(procs);
  std::cout << "\nRecovery give-back sweep: processor " << victim
            << " is killed at 10% of the nominal makespan and rejoins, "
            << "rebooted with cold caches, at 35%. Cells: no-give-back "
            << "ratio | give-back ratio | mean work given back, under the "
            << "clique and a routed 2-D mesh of diameter " << mesh.diameter()
            << ".\n\n";

  Table rec_table(
      {"algorithm", "clique ngb|gb|back", "mesh ngb|gb|back"});
  std::map<std::string, std::map<int, std::vector<double>>> rec_ngb, rec_gb,
      rec_back;
  bool strict_improvement[2] = {false, false};
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          FaultPlan plan;
          plan.seed = seed;
          plan.failures.push_back({victim, 0.1 * span});
          plan.rejoins.push_back({victim, 0.35 * span});
          SimOptions opts;
          opts.faults = &plan;
          SimResult partial = simulate(g, nominal, opts);

          const Topology* const topologies[] = {nullptr, &mesh};
          for (int ti = 0; ti < 2; ++ti) {
            RepairOptions gb_opts;
            gb_opts.topology = topologies[ti];
            RepairOptions ngb_opts = gb_opts;
            ngb_opts.give_back = false;
            RepairResult baseline =
                repair_schedule(g, nominal, partial, plan, ngb_opts);
            RepairResult repair =
                repair_schedule(g, nominal, partial, plan, gb_opts);
            if (validate) {
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations) &&
                      is_valid_schedule(g, baseline.schedule,
                                        baseline.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
              FLB_REQUIRE(repair.schedule.makespan() <=
                              baseline.schedule.makespan() + 1e-9,
                          algo + ": give-back repair was worse than the "
                                 "no-give-back baseline on " +
                              g.name());
            }
            if (repair.schedule.makespan() <
                baseline.schedule.makespan() - 1e-9)
              strict_improvement[ti] = true;
            rec_ngb[algo][ti].push_back(baseline.schedule.makespan() / span);
            rec_gb[algo][ti].push_back(repair.schedule.makespan() / span);
            rec_back[algo][ti].push_back(repair.work_given_back);
          }
        }
      }
    }
  }
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (int ti = 0; ti < 2; ++ti)
      row.push_back(format_fixed(mean(rec_ngb[algo][ti]), 3) + " | " +
                    format_fixed(mean(rec_gb[algo][ti]), 3) + " | " +
                    format_fixed(mean(rec_back[algo][ti]), 1));
    rec_table.add_row(row);
  }
  emit(rec_table, cfg);
  if (validate) {
    FLB_REQUIRE(strict_improvement[0],
                "give-back never strictly improved a repair under the "
                "clique");
    FLB_REQUIRE(strict_improvement[1],
                "give-back never strictly improved a repair under the "
                "routed mesh");
  }

  std::cout << "\n(the give-back ratio is never worse by construction — "
               "repair keeps the better of the two continuations — and "
               "work migrates back whenever the rejoined processor's "
               "admission instant plus cold re-fetches still beat the "
               "degraded queue)\n";
  return 0;
}
