// Fault-tolerance sweeps.
//
// Sweep 1 (PR 1): kill one processor at increasing fractions of the nominal
// makespan and measure how gracefully each algorithm's schedule can be
// repaired online (machine_sim fault injection + repair_schedule). The
// later the failure, the more of the schedule has already executed and the
// less work must migrate — a repair-friendly schedule degrades smoothly
// toward 1.0.
//
// Sweep 2 (the ROADMAP's checkpoint-interval vs repair-cost sweep): a
// correlated burst kills the first half of the machine ("rack0") while one
// survivor is throttled to half speed, under periodic checkpointing at
// decreasing intervals. Reported per algorithm and interval: mean work lost
// to the burst and the mean repaired/nominal makespan. Tighter intervals
// save more in-flight work but re-execute with more checkpoint-write
// overhead — the trade the sweep quantifies.
//
// Flags beyond bench_common's: --at-procs P, --victim p, --when f1,f2,...,
// --ckpt f1,f2,... (checkpoint intervals as fractions of the nominal
// makespan), --stg path (schedule one STG instance instead of the synthetic
// workloads), and --validate (durations-aware validation of every repaired
// schedule, checkpoint-superiority enforcement, and byte-identical output:
// wall-clock columns are suppressed so re-runs can be diffed — the CI
// fault-sweep smoke job).

#include <algorithm>
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "flb/graph/stg.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/faults.hpp"

namespace {

using namespace flb;

TaskGraph stg_graph(const std::string& path, double ccr, std::size_t seed) {
  std::ifstream in(path);
  FLB_REQUIRE(in.good(), "cannot open STG file: " + path);
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = seed;
  return read_stg(in, params);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  const auto victim = static_cast<ProcId>(args.get_int("victim", 1));
  std::vector<double> fractions =
      args.get_double_list("when", {0.1, 0.25, 0.5, 0.75});
  std::vector<double> ckpt_fractions =
      args.get_double_list("ckpt", {0.4, 0.2, 0.1, 0.05});
  const std::string stg_path = args.get("stg", "");
  const bool validate = args.has("validate");
  FLB_REQUIRE(victim < procs, "--victim must name a processor below --at-procs");
  FLB_REQUIRE(procs >= 2, "--at-procs must be at least 2");
  if (!stg_path.empty()) cfg.workloads = {"STG:" + stg_path};

  auto make_graph = [&](const std::string& workload, double ccr,
                        std::size_t seed) {
    if (!stg_path.empty()) return stg_graph(stg_path, ccr, seed);
    WorkloadParams params;
    params.ccr = ccr;
    params.seed = seed;
    return make_workload(workload, cfg.tasks, params);
  };

  std::cout << "Fault-tolerance sweep at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; processor " << victim
            << " fails at the given fraction of the nominal makespan; "
            << "repaired / nominal makespan)\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double f : fractions)
    headers.push_back("t=" + format_compact(f * 100) + "%");
  if (!validate) headers.push_back("repair ms");
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> ratio;
  std::map<std::string, std::vector<double>> latency;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          for (double f : fractions) {
            FaultPlan plan =
                FaultPlan::single_failure(victim, f * nominal.makespan());
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
            ratio[algo][f].push_back(m.degradation_ratio);
            latency[algo].push_back(m.repair_millis);
          }
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : fractions)
      row.push_back(format_fixed(mean(ratio[algo][f]), 3));
    if (!validate) row.push_back(format_fixed(mean(latency[algo]), 3));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\nCheckpoint-interval sweep: rack0 (processors 0.."
            << procs / 2 - 1 << ") dies in a correlated burst at 30% of the "
            << "nominal makespan, processor " << procs / 2
            << " throttles to half speed; checkpoint interval as a fraction "
            << "of the mean task work (off = no checkpointing). Cells: "
            << "mean work lost | mean repaired/nominal makespan.\n\n";

  std::vector<std::string> ck_headers{"algorithm", "off"};
  for (double f : ckpt_fractions)
    ck_headers.push_back("i=" + format_compact(f * 100) + "%");
  Table ck_table(ck_headers);

  // ckpt column key: 0.0 = off.
  std::vector<double> columns{0.0};
  columns.insert(columns.end(), ckpt_fractions.begin(), ckpt_fractions.end());
  std::map<std::string, std::map<double, std::vector<double>>> lost, degr;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        const Cost mean_comp =
            g.total_comp() / static_cast<Cost>(g.num_tasks());
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          FaultPlan episode;
          episode.seed = seed;
          FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
          for (ProcId p = 0; p < procs; ++p)
            (p < procs / 2 ? rack0 : rack1).members.push_back(p);
          episode.domains = {rack0, rack1};
          episode.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
          episode.slowdowns.push_back({static_cast<ProcId>(procs / 2),
                                       0.25 * span, 0.5});

          for (double f : columns) {
            FaultPlan plan = episode;
            if (f > 0.0) plan.checkpoint = {f * mean_comp, 0.0};
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m =
                robustness_metrics(nominal, partial, repair, plan);
            lost[algo][f].push_back(m.work_lost);
            degr[algo][f].push_back(m.degradation_ratio);
          }
        }
      }
    }
  }

  double total_baseline = 0.0, total_tightest = 0.0;
  const double tightest =
      *std::min_element(ckpt_fractions.begin(), ckpt_fractions.end());
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : columns)
      row.push_back(format_fixed(mean(lost[algo][f]), 1) + " | " +
                    format_fixed(mean(degr[algo][f]), 3));
    ck_table.add_row(row);
    total_baseline += mean(lost[algo][0.0]);
    total_tightest += mean(lost[algo][tightest]);
    // With zero write overhead a checkpointed run can never lose more than
    // the uncheckpointed one; enforce that invariant per cell.
    if (validate)
      for (double f : ckpt_fractions)
        FLB_REQUIRE(mean(lost[algo][f]) <= mean(lost[algo][0.0]) + 1e-9,
                    algo + ": checkpointing at interval fraction " +
                        format_compact(f) +
                        " lost more work than the no-checkpoint baseline");
  }
  emit(ck_table, cfg);
  if (validate && total_baseline > 0.0)
    FLB_REQUIRE(total_tightest < total_baseline,
                "the tightest checkpoint interval did not reduce total work "
                "lost strictly below the no-checkpoint baseline");

  std::cout << "\n(work lost shrinks as the interval tightens — each killed "
               "task resumes from its last durable checkpoint — while the "
               "degradation ratio reflects the repair re-balancing the "
               "remainder onto the surviving, partly throttled rack)\n";
  return 0;
}
