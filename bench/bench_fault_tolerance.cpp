// Fault-tolerance sweep: kill one processor at increasing fractions of the
// nominal makespan and measure how gracefully each algorithm's schedule can
// be repaired online (machine_sim fault injection + repair_schedule). The
// later the failure, the more of the schedule has already executed and the
// less work must migrate — a repair-friendly schedule degrades smoothly
// toward 1.0. Reported: mean repaired / nominal makespan per algorithm and
// failure time, plus the mean repair latency in milliseconds.

#include <map>

#include "bench_common.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/faults.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  const auto victim = static_cast<ProcId>(args.get_int("victim", 1));
  std::vector<double> fractions =
      args.get_double_list("when", {0.1, 0.25, 0.5, 0.75});
  FLB_REQUIRE(victim < procs, "--victim must name a processor below --at-procs");

  std::cout << "Fault-tolerance sweep at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; processor " << victim
            << " fails at the given fraction of the nominal makespan; "
            << "repaired / nominal makespan, averaged over "
            << "LU/Laplace/Stencil and CCR {0.2, 5})\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double f : fractions)
    headers.push_back("t=" + format_compact(f * 100) + "%");
  headers.push_back("repair ms");
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> ratio;
  std::map<std::string, std::vector<double>> latency;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          for (double f : fractions) {
            FaultPlan plan =
                FaultPlan::single_failure(victim, f * nominal.makespan());
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
            ratio[algo][f].push_back(m.degradation_ratio);
            latency[algo].push_back(m.repair_millis);
          }
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : fractions)
      row.push_back(format_fixed(mean(ratio[algo][f]), 3));
    row.push_back(format_fixed(mean(latency[algo]), 3));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\n(ratios approach (P-1)/P-ish early — the survivors absorb "
               "the dead processor's share — and 1.0 late, when almost "
               "everything already executed; repair latency is the online "
               "re-scheduling cost, FLB's O((V+E) log P) machinery on the "
               "unfinished suffix)\n";
  return 0;
}
