// Fault-tolerance sweeps.
//
// Sweep 1 (PR 1): kill one processor at increasing fractions of the nominal
// makespan and measure how gracefully each algorithm's schedule can be
// repaired online (machine_sim fault injection + repair_schedule). The
// later the failure, the more of the schedule has already executed and the
// less work must migrate — a repair-friendly schedule degrades smoothly
// toward 1.0.
//
// Sweep 2 (the ROADMAP's checkpoint-interval vs repair-cost sweep): a
// correlated burst kills the first half of the machine ("rack0") while one
// survivor is throttled to half speed, under periodic checkpointing at
// decreasing intervals. Reported per algorithm and interval: mean work lost
// to the burst and the mean repaired/nominal makespan. Tighter intervals
// save more in-flight work but re-execute with more checkpoint-write
// overhead — the trade the sweep quantifies.
//
// Sweep 3 (the ROADMAP's nonzero-overhead sweep): the same burst episode,
// but every durable checkpoint write costs real wall time. Tight intervals
// now cut both ways — less work lost, more writes paid — and per workload
// the sweep reports the break-even interval: the tightest interval whose
// mean repaired/nominal makespan is still no worse than running without
// checkpoints. A companion table compares uniform placement against the
// criticality-aware policy (CheckpointPolicy::min_downstream at the
// workload's median bottom level): protecting only the tasks whose loss
// would stall the longest chains buys most of the uniform policy's
// resilience with a fraction of the durable writes.
//
// Sweep 4 (recovery give-back): the victim processor is killed at 10% of
// the nominal makespan and rejoins, rebooted with cold caches, at 35%.
// Repair either refuses the recovered capacity (no-give-back baseline) or
// opportunistically migrates not-yet-started work back to it. Reported per
// algorithm, under the paper's clique and under a routed 2-D mesh:
// no-give-back ratio | give-back ratio | mean work given back.
//
// Sweep 5 (--online): the sweep-4 kill/rejoin episode replayed without the
// fault oracle. The one-shot repair above reads the full FaultPlan; the
// online controller (flb::runtime) only ever sees the simulator's event
// stream, re-repairing at each observation. Reported per algorithm: oracle
// planned ratio | online executed ratio | gap | mean repair invocations |
// mean events observed, plus an FNV-1a digest of every episode's event-log
// and final-schedule digests — byte-stable per seed, which is what the CI
// online-determinism job diffs across two runs.
//
// Sweep 6 (--detector): the victim is killed for good at 10% of the
// nominal span — no rejoin — and liveness itself is unobservable. The
// controller runs on seeded lossy heartbeats (failure_detector.hpp) and
// reacts to *beliefs* — suspect, confirm, exonerate — instead of
// ground-truth kill events. Per heartbeat
// (period, loss) cell, FLB-only: mean detection latency (in periods), mean
// false alarms, and four makespan ratios — oracle, perfect-event online,
// speculative detector (hedge at suspicion, promote/cancel), and
// confirm-then-repair detector (wait out the full detection latency) —
// plus the speculative waste the false alarms cost. A drift scenario then
// clusters late kills and checks the windowed Young/Daly checkpoint
// interval tightens. Under --validate: noise is never free, the lossless
// detector stays within 2x of the perfect-event controller, speculation
// strictly beats confirm-then-repair at the slowest heartbeat, the drift
// interval shrinks, and every episode is digest-identical when run twice
// (the CI detector-determinism job diffs two full runs).
//
// Sweep 7 (--partition): partial network partitions. The controller's own
// link to an otherwise-healthy processor goes dark while every other link
// stays up — the network lies to observer 0 alone. A short cut shows the
// single-observer detector manufacturing a false alarm where the gossip
// quorum aggregator (every processor forms its own belief stream; a
// suspicion needs >= 2 observers with a live path) raises none; a long cut
// compares kill-and-reexecute (confirm-then-repair on the lying link)
// against partition-aware repair (the unreachable victim is masked from
// new placements but not killed, and reconciles on heal). A self-tuning
// scenario then manufactures an exoneration burst with repeated short
// cuts: each false alarm raises the suspect threshold multiplicatively, a
// later cut is absorbed by the raised threshold, a real kill still
// confirms, and the quiet window after the burst decays the threshold
// back. Under --validate: the single-observer run raises >= 1 false
// alarms and the quorum run exactly 0, partition-heal reconciliation is
// never worse than kill-and-reexecute on the same episode, the tuned
// threshold strictly increases across the burst and decays after it, and
// every episode is digest-identical when run twice (the CI
// partition-determinism job diffs two full runs).
//
// Flags beyond bench_common's: --at-procs P, --victim p, --when f1,f2,...,
// --ckpt f1,f2,... (checkpoint intervals as fractions of the nominal
// makespan), --ckpt-overhead f (sweep 3's write cost as a fraction of the
// mean task work), --stg path (schedule one STG instance instead of the
// synthetic workloads), --online (run sweep 5), --detector (run sweep 6;
// --hb-period f1,f2,... and --hb-loss p1,p2,... override the heartbeat
// grid — every period must be positive, or the world plan would lack the
// heartbeat directive the detector needs), --partition (run sweep 7),
// and --validate
// (durations-aware validation of every repaired schedule — including, with
// --online, every per-event continuation the controller installs —
// checkpoint-superiority, give-back-never-worse and online-determinism
// enforcement, and byte-identical output: wall-clock columns are
// suppressed so re-runs can be diffed — the CI fault-sweep smoke job).

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "bench_common.hpp"
#include "flb/analysis/audit.hpp"
#include "flb/graph/properties.hpp"
#include "flb/graph/stg.hpp"
#include "flb/runtime/recovery_runtime.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sim/machine_sim.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/topology.hpp"

namespace {

using namespace flb;

TaskGraph stg_graph(const std::string& path, double ccr, std::size_t seed) {
  std::ifstream in(path);
  FLB_REQUIRE(in.good(), "cannot open STG file: " + path);
  WorkloadParams params;
  params.ccr = ccr;
  params.seed = seed;
  return read_stg(in, params);
}

// The most square 2-D mesh with exactly `procs` nodes (rows = the largest
// divisor not exceeding sqrt; a prime count degenerates to a 1 x P chain).
Topology mesh_for(ProcId procs) {
  ProcId rows = 1;
  for (ProcId r = 1; static_cast<std::size_t>(r) * r <= procs; ++r)
    if (procs % r == 0) rows = r;
  return Topology::mesh2d(rows, procs / rows);
}

std::string hex64(std::uint64_t value) {
  std::ostringstream out;
  out << "0x" << std::hex << std::setfill('0') << std::setw(16) << value;
  return out.str();
}

// Under --validate every recovery episode is additionally certified by the
// independent runtime auditor (analysis::audit_runtime): the episode's
// event log, belief stream, repair provenance and digests must replay
// clean against the fault plan, or the bench aborts with the full report.
void require_audit_clean(const TaskGraph& g, const FaultPlan& world,
                         const runtime::RuntimeResult& episode,
                         const runtime::RuntimeOptions& ropts,
                         const std::string& what) {
  analysis::AuditOptions aopt;
  aopt.debounce = ropts.debounce;
  aopt.use_detector = ropts.use_detector;
  aopt.use_gossip = ropts.use_gossip;
  aopt.quorum = ropts.quorum;
  const analysis::LintReport report =
      analysis::audit_runtime(g, world, episode, aopt);
  if (!report.clean()) {
    std::ostringstream os;
    analysis::write_report(os, report);
    FLB_REQUIRE(false, what + ": runtime audit failed on " + g.name() +
                           "\n" + os.str());
  }
}

// Median bottom level — the criticality threshold of the selective
// checkpoint policy: the half of the tasks with the longest downstream
// chains checkpoint, the rest run unprotected.
Cost median_bottom_level(const TaskGraph& g) {
  std::vector<Cost> levels = bottom_levels(g);
  const std::size_t mid = levels.size() / 2;
  std::nth_element(levels.begin(),
                   levels.begin() + static_cast<std::ptrdiff_t>(mid),
                   levels.end());
  return levels[mid];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));
  const auto victim = static_cast<ProcId>(args.get_int("victim", 1));
  std::vector<double> fractions =
      args.get_double_list("when", {0.1, 0.25, 0.5, 0.75});
  std::vector<double> ckpt_fractions =
      args.get_double_list("ckpt", {0.4, 0.2, 0.1, 0.05});
  const double ckpt_overhead = args.get_double("ckpt-overhead", 0.05);
  const std::string stg_path = args.get("stg", "");
  const bool validate = args.has("validate");
  FLB_REQUIRE(ckpt_overhead >= 0.0, "--ckpt-overhead must be non-negative");
  FLB_REQUIRE(victim < procs, "--victim must name a processor below --at-procs");
  FLB_REQUIRE(procs >= 2, "--at-procs must be at least 2");
  if (!stg_path.empty()) cfg.workloads = {"STG:" + stg_path};

  // Heartbeat grid for sweeps 6 and 7, parsed and checked *before* any
  // sweep runs: a non-positive period would leave the world plan without
  // its `heartbeat` directive, and the detector construction would only
  // throw deep inside the sweep, minutes after the earlier sweeps started.
  const std::vector<double> hb_periods =
      args.get_double_list("hb-period", {0.02, 0.06, 0.12});
  const std::vector<double> hb_losses =
      args.get_double_list("hb-loss", {0.0, 0.1, 0.25});
  if (args.has("detector") || args.has("partition")) {
    for (double pf : hb_periods)
      FLB_REQUIRE(pf > 0.0,
                  "--hb-period " + format_compact(pf) +
                      " disables heartbeat sensing: the world plan would "
                      "carry no `heartbeat` directive, which --detector and "
                      "--partition require (every period must be > 0)");
    for (double loss : hb_losses)
      FLB_REQUIRE(loss >= 0.0 && loss < 1.0,
                  "--hb-loss entries must be in [0, 1)");
  }

  auto make_graph = [&](const std::string& workload, double ccr,
                        std::size_t seed) {
    if (!stg_path.empty()) return stg_graph(stg_path, ccr, seed);
    WorkloadParams params;
    params.ccr = ccr;
    params.seed = seed;
    return make_workload(workload, cfg.tasks, params);
  };

  std::cout << "Fault-tolerance sweep at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds
            << " seeds; processor " << victim
            << " fails at the given fraction of the nominal makespan; "
            << "repaired / nominal makespan)\n\n";

  std::vector<std::string> headers{"algorithm"};
  for (double f : fractions)
    headers.push_back("t=" + format_compact(f * 100) + "%");
  if (!validate) headers.push_back("repair ms");
  Table table(headers);

  std::map<std::string, std::map<double, std::vector<double>>> ratio;
  std::map<std::string, std::vector<double>> latency;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          for (double f : fractions) {
            FaultPlan plan =
                FaultPlan::single_failure(victim, f * nominal.makespan());
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
            ratio[algo][f].push_back(m.degradation_ratio);
            latency[algo].push_back(m.repair_millis);
          }
        }
      }
    }
  }

  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : fractions)
      row.push_back(format_fixed(mean(ratio[algo][f]), 3));
    if (!validate) row.push_back(format_fixed(mean(latency[algo]), 3));
    table.add_row(row);
  }
  emit(table, cfg);

  std::cout << "\nCheckpoint-interval sweep: rack0 (processors 0.."
            << procs / 2 - 1 << ") dies in a correlated burst at 30% of the "
            << "nominal makespan, processor " << procs / 2
            << " throttles to half speed; checkpoint interval as a fraction "
            << "of the mean task work (off = no checkpointing). Cells: "
            << "mean work lost | mean repaired/nominal makespan.\n\n";

  std::vector<std::string> ck_headers{"algorithm", "off"};
  for (double f : ckpt_fractions)
    ck_headers.push_back("i=" + format_compact(f * 100) + "%");
  Table ck_table(ck_headers);

  // ckpt column key: 0.0 = off.
  std::vector<double> columns{0.0};
  columns.insert(columns.end(), ckpt_fractions.begin(), ckpt_fractions.end());
  std::map<std::string, std::map<double, std::vector<double>>> lost, degr;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        const Cost mean_comp =
            g.total_comp() / static_cast<Cost>(g.num_tasks());
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          FaultPlan episode;
          episode.seed = seed;
          FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
          for (ProcId p = 0; p < procs; ++p)
            (p < procs / 2 ? rack0 : rack1).members.push_back(p);
          episode.domains = {rack0, rack1};
          episode.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
          episode.slowdowns.push_back({static_cast<ProcId>(procs / 2),
                                       0.25 * span, 0.5});

          for (double f : columns) {
            FaultPlan plan = episode;
            if (f > 0.0) plan.checkpoint = {f * mean_comp, 0.0};
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult repair = repair_schedule(g, nominal, partial, plan);
            if (validate)
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
            RobustnessMetrics m =
                robustness_metrics(nominal, partial, repair, plan);
            lost[algo][f].push_back(m.work_lost);
            degr[algo][f].push_back(m.degradation_ratio);
          }
        }
      }
    }
  }

  double total_baseline = 0.0, total_tightest = 0.0;
  const double tightest =
      *std::min_element(ckpt_fractions.begin(), ckpt_fractions.end());
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (double f : columns)
      row.push_back(format_fixed(mean(lost[algo][f]), 1) + " | " +
                    format_fixed(mean(degr[algo][f]), 3));
    ck_table.add_row(row);
    total_baseline += mean(lost[algo][0.0]);
    total_tightest += mean(lost[algo][tightest]);
    // With zero write overhead a checkpointed run can never lose more than
    // the uncheckpointed one; enforce that invariant per cell.
    if (validate)
      for (double f : ckpt_fractions)
        FLB_REQUIRE(mean(lost[algo][f]) <= mean(lost[algo][0.0]) + 1e-9,
                    algo + ": checkpointing at interval fraction " +
                        format_compact(f) +
                        " lost more work than the no-checkpoint baseline");
  }
  emit(ck_table, cfg);
  if (validate && total_baseline > 0.0)
    FLB_REQUIRE(total_tightest < total_baseline,
                "the tightest checkpoint interval did not reduce total work "
                "lost strictly below the no-checkpoint baseline");

  std::cout << "\n(work lost shrinks as the interval tightens — each killed "
               "task resumes from its last durable checkpoint — while the "
               "degradation ratio reflects the repair re-balancing the "
               "remainder onto the surviving, partly throttled rack)\n";

  // --- Sweep 3: checkpoint write overhead and the break-even interval ----
  std::cout << "\nCheckpoint write-overhead sweep (FLB): the same rack0 "
            << "burst episode, but every durable checkpoint write costs "
            << format_compact(ckpt_overhead * 100)
            << "% of the mean task work in wall time. Cells: mean "
            << "repaired/nominal makespan per workload; break-even is the "
            << "tightest interval still no worse than running without "
            << "checkpoints.\n\n";

  std::vector<std::string> ov_headers{"workload", "off"};
  for (double f : ckpt_fractions)
    ov_headers.push_back("i=" + format_compact(f * 100) + "%");
  ov_headers.push_back("break-even");
  Table ov_table(ov_headers);

  std::vector<std::string> cr_headers{"workload"};
  for (double f : ckpt_fractions)
    cr_headers.push_back("i=" + format_compact(f * 100) + "% u|c");
  cr_headers.push_back("writes u|c");
  Table cr_table(cr_headers);
  const double tightest_interval =
      *std::min_element(ckpt_fractions.begin(), ckpt_fractions.end());

  for (const std::string& workload : cfg.workloads) {
    std::map<double, std::vector<double>> ov_degr, cr_degr, wr_uni, wr_crit;
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        const Cost mean_comp =
            g.total_comp() / static_cast<Cost>(g.num_tasks());
        const Cost median_bl = median_bottom_level(g);
        auto sched = make_scheduler("FLB", seed);
        Schedule nominal = sched->run(g, procs);
        const Cost span = nominal.makespan();

        FaultPlan episode;
        episode.seed = seed;
        FailureDomain rack0{"rack0", {}}, rack1{"rack1", {}};
        for (ProcId p = 0; p < procs; ++p)
          (p < procs / 2 ? rack0 : rack1).members.push_back(p);
        episode.domains = {rack0, rack1};
        episode.bursts.push_back({"rack0", 0.3 * span, 0.05 * span});
        episode.slowdowns.push_back({static_cast<ProcId>(procs / 2),
                                     0.25 * span, 0.5});

        for (double f : columns) {
          FaultPlan plan = episode;
          if (f > 0.0)
            plan.checkpoint = {f * mean_comp, ckpt_overhead * mean_comp};
          SimOptions opts;
          opts.faults = &plan;
          SimResult partial = simulate(g, nominal, opts);
          RepairResult repair = repair_schedule(g, nominal, partial, plan);
          if (validate)
            FLB_REQUIRE(
                is_valid_schedule(g, repair.schedule, repair.durations),
                "FLB produced an infeasible repaired schedule on " +
                    g.name());
          RobustnessMetrics m = robustness_metrics(nominal, partial, repair);
          ov_degr[f].push_back(m.degradation_ratio);
          if (f <= 0.0) continue;
          wr_uni[f].push_back(
              static_cast<double>(partial.checkpoints_taken));

          // The criticality-aware variant of the same policy: identical
          // interval and write cost, but only the half of the tasks with
          // the longest downstream chains checkpoint at all.
          FaultPlan crit = plan;
          crit.checkpoint.min_downstream = median_bl;
          SimOptions crit_opts;
          crit_opts.faults = &crit;
          SimResult crit_partial = simulate(g, nominal, crit_opts);
          RepairResult crit_repair =
              repair_schedule(g, nominal, crit_partial, crit);
          if (validate) {
            FLB_REQUIRE(is_valid_schedule(g, crit_repair.schedule,
                                          crit_repair.durations),
                        "FLB produced an infeasible repaired schedule "
                        "under the criticality checkpoint policy on " +
                            g.name());
            FLB_REQUIRE(
                crit_partial.checkpoints_taken <= partial.checkpoints_taken,
                "the criticality policy wrote more checkpoints than the "
                "uniform one on " + g.name());
          }
          RobustnessMetrics cm =
              robustness_metrics(nominal, crit_partial, crit_repair);
          cr_degr[f].push_back(cm.degradation_ratio);
          wr_crit[f].push_back(
              static_cast<double>(crit_partial.checkpoints_taken));
        }
      }
    }
    std::vector<std::string> cr_row{workload};
    for (double f : ckpt_fractions)
      cr_row.push_back(format_fixed(mean(ov_degr[f]), 3) + " | " +
                       format_fixed(mean(cr_degr[f]), 3));
    cr_row.push_back(format_fixed(mean(wr_uni[tightest_interval]), 0) +
                     " | " +
                     format_fixed(mean(wr_crit[tightest_interval]), 0));
    cr_table.add_row(cr_row);
    // Break-even: checkpointing pays for its writes down to this interval.
    const double off_ratio = mean(ov_degr[0.0]);
    double break_even = 0.0;
    for (double f : ckpt_fractions)
      if (mean(ov_degr[f]) <= off_ratio + 1e-9)
        break_even = break_even == 0.0 ? f : std::min(break_even, f);
    std::vector<std::string> row{workload};
    for (double f : columns) row.push_back(format_fixed(mean(ov_degr[f]), 3));
    row.push_back(break_even > 0.0
                      ? "i=" + format_compact(break_even * 100) + "%"
                      : "none");
    ov_table.add_row(row);
  }
  emit(ov_table, cfg);

  std::cout << "\n(with free writes tighter is always better; with paid "
               "writes the curve turns — below the break-even interval the "
               "re-execution's checkpoint traffic outweighs the work "
               "saved)\n";

  std::cout << "\nCriticality-aware checkpoint placement (FLB, same paid "
            << "writes): uniform policy vs min_downstream at the median "
            << "bottom level — only the half of the tasks with the longest "
            << "downstream chains checkpoint. Cells: mean repaired/nominal "
            << "makespan, uniform | criticality; the last column counts "
            << "mean durable writes at the tightest interval.\n\n";
  emit(cr_table, cfg);

  std::cout << "\n(the selective policy spends its write budget where a "
               "loss would stall the longest chains; tasks with little "
               "downstream cost are cheap to re-execute unprotected, so "
               "the resilience gap stays small while the write count "
               "drops)\n";

  // --- Sweep 4: recovery give-back under the clique and a routed mesh ----
  const Topology mesh = mesh_for(procs);
  std::cout << "\nRecovery give-back sweep: processor " << victim
            << " is killed at 10% of the nominal makespan and rejoins, "
            << "rebooted with cold caches, at 35%. Cells: no-give-back "
            << "ratio | give-back ratio | mean work given back, under the "
            << "clique and a routed 2-D mesh of diameter " << mesh.diameter()
            << ".\n\n";

  Table rec_table(
      {"algorithm", "clique ngb|gb|back", "mesh ngb|gb|back"});
  std::map<std::string, std::map<int, std::vector<double>>> rec_ngb, rec_gb,
      rec_back;
  bool strict_improvement[2] = {false, false};
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        TaskGraph g = make_graph(workload, ccr, seed);
        for (const std::string& algo : scheduler_names()) {
          auto sched = make_scheduler(algo, seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          FaultPlan plan;
          plan.seed = seed;
          plan.failures.push_back({victim, 0.1 * span});
          plan.rejoins.push_back({victim, 0.35 * span});
          SimOptions opts;
          opts.faults = &plan;
          SimResult partial = simulate(g, nominal, opts);

          const Topology* const topologies[] = {nullptr, &mesh};
          for (int ti = 0; ti < 2; ++ti) {
            RepairOptions gb_opts;
            gb_opts.topology = topologies[ti];
            RepairOptions ngb_opts = gb_opts;
            ngb_opts.give_back = false;
            RepairResult baseline =
                repair_schedule(g, nominal, partial, plan, ngb_opts);
            RepairResult repair =
                repair_schedule(g, nominal, partial, plan, gb_opts);
            if (validate) {
              FLB_REQUIRE(
                  is_valid_schedule(g, repair.schedule, repair.durations) &&
                      is_valid_schedule(g, baseline.schedule,
                                        baseline.durations),
                  algo + " produced an infeasible repaired schedule on " +
                      g.name());
              FLB_REQUIRE(repair.schedule.makespan() <=
                              baseline.schedule.makespan() + 1e-9,
                          algo + ": give-back repair was worse than the "
                                 "no-give-back baseline on " +
                              g.name());
            }
            if (repair.schedule.makespan() <
                baseline.schedule.makespan() - 1e-9)
              strict_improvement[ti] = true;
            rec_ngb[algo][ti].push_back(baseline.schedule.makespan() / span);
            rec_gb[algo][ti].push_back(repair.schedule.makespan() / span);
            rec_back[algo][ti].push_back(repair.work_given_back);
          }
        }
      }
    }
  }
  for (const std::string& algo : scheduler_names()) {
    std::vector<std::string> row{algo};
    for (int ti = 0; ti < 2; ++ti)
      row.push_back(format_fixed(mean(rec_ngb[algo][ti]), 3) + " | " +
                    format_fixed(mean(rec_gb[algo][ti]), 3) + " | " +
                    format_fixed(mean(rec_back[algo][ti]), 1));
    rec_table.add_row(row);
  }
  emit(rec_table, cfg);
  if (validate) {
    FLB_REQUIRE(strict_improvement[0],
                "give-back never strictly improved a repair under the "
                "clique");
    FLB_REQUIRE(strict_improvement[1],
                "give-back never strictly improved a repair under the "
                "routed mesh");
  }

  std::cout << "\n(the give-back ratio is never worse by construction — "
               "repair keeps the better of the two continuations — and "
               "work migrates back whenever the rejoined processor's "
               "admission instant plus cold re-fetches still beat the "
               "degraded queue)\n";

  // --- Sweep 5 (--online): oracle repair vs the event-driven controller ---
  if (args.has("online")) {
    std::cout << "\nOnline recovery sweep: the same kill/rejoin episode, "
              << "but the controller (flb::runtime) never reads the fault "
              << "plan — it observes the simulator's event stream and "
              << "re-repairs at each observation. Cells: oracle planned "
              << "ratio (one-shot repair with the full plan) | online "
              << "executed ratio | gap | mean repair invocations | mean "
              << "events observed.\n\n";

    Table on_table(
        {"algorithm", "oracle", "online", "gap", "repairs", "events"});
    std::map<std::string, std::vector<double>> on_oracle, on_online, on_reps,
        on_evts;
    std::string episode_digests;
    std::size_t episodes = 0;
    for (const std::string& workload : cfg.workloads) {
      for (double ccr : cfg.ccrs) {
        for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
          TaskGraph g = make_graph(workload, ccr, seed);
          for (const std::string& algo : scheduler_names()) {
            auto sched = make_scheduler(algo, seed);
            Schedule nominal = sched->run(g, procs);
            const Cost span = nominal.makespan();

            FaultPlan plan;
            plan.seed = seed;
            plan.failures.push_back({victim, 0.1 * span});
            plan.rejoins.push_back({victim, 0.35 * span});

            // The oracle: one repair, computed with the whole plan.
            SimOptions opts;
            opts.faults = &plan;
            SimResult partial = simulate(g, nominal, opts);
            RepairResult oracle = repair_schedule(g, nominal, partial, plan);

            runtime::RuntimeOptions ropts;
            ropts.validate = validate;
            runtime::RuntimeResult online =
                runtime::run_online_recovery(g, nominal, plan, ropts);
            if (validate) {
              FLB_REQUIRE(online.complete,
                          algo + ": online recovery left unfinished tasks "
                                 "on " + g.name());
              runtime::RuntimeResult again =
                  runtime::run_online_recovery(g, nominal, plan, ropts);
              FLB_REQUIRE(again.event_digest == online.event_digest &&
                              again.schedule_digest == online.schedule_digest,
                          algo + ": online recovery was not deterministic "
                                 "on " + g.name());
              require_audit_clean(g, plan, online, ropts,
                                  algo + ": online episode");
            }

            on_oracle[algo].push_back(oracle.schedule.makespan() / span);
            on_online[algo].push_back(online.makespan / span);
            on_reps[algo].push_back(
                static_cast<double>(online.repairs.size()));
            on_evts[algo].push_back(
                static_cast<double>(online.events_observed));
            episode_digests += hex64(online.event_digest) + " " +
                               hex64(online.schedule_digest) + "\n";
            ++episodes;
          }
        }
      }
    }
    for (const std::string& algo : scheduler_names()) {
      std::vector<std::string> row{algo};
      row.push_back(format_fixed(mean(on_oracle[algo]), 3));
      row.push_back(format_fixed(mean(on_online[algo]), 3));
      row.push_back(
          format_fixed(mean(on_online[algo]) - mean(on_oracle[algo]), 3));
      row.push_back(format_fixed(mean(on_reps[algo]), 1));
      row.push_back(format_fixed(mean(on_evts[algo]), 1));
      on_table.add_row(row);
    }
    emit(on_table, cfg);

    std::cout << "\nonline sweep digest: "
              << hex64(runtime::fnv1a_digest(episode_digests)) << " over "
              << episodes << " episodes (chains every episode's event-log "
              << "and final-schedule digests; byte-stable per seed — the "
              << "CI determinism job diffs two runs)\n";
    std::cout << "\n(the oracle column is the planned continuation of a "
                 "repair that read the full plan; the online column is "
                 "what actually executed under the controller that could "
                 "not — two repairs instead of one: react to the death, "
                 "then give back on the observed rejoin. The gap can run "
                 "negative: the oracle commits its whole plan at the "
                 "failure horizon, while the controller re-plans at the "
                 "rejoin with the executed prefix in hand, so observed "
                 "history can beat predicted history)\n";
  }
  // --- Sweep 6 (--detector): recovery under an unreliable detector --------
  if (args.has("detector")) {
    std::cout << "\nUnreliable-detector sweep (FLB): processor " << victim
              << " dies for good at 10% of the nominal span, and the "
              << "controller cannot see machine liveness at all — it runs "
              << "on seeded lossy heartbeats "
              << "(period and loss probability swept below; suspect after "
              << "2 silent periods, confirm after 4). Cells are means over "
              << "the episodes: detection latency (death to confirmation, "
              << "in heartbeat periods) | false alarms | executed/nominal "
              << "makespan for the oracle, the perfect-event controller, "
              << "the speculative detector controller and the "
              << "confirm-then-repair detector controller | speculative "
              << "waste.\n\n";

    Table det_table({"period", "loss", "latency", "f-alarms", "oracle",
                     "perfect", "spec", "confirm", "waste"});
    struct DetCell {
      std::vector<double> latency, alarms, spec, conf, waste;
    };
    std::map<std::pair<double, double>, DetCell> cells;
    std::vector<double> det_oracle, det_perfect;
    std::string det_digests;
    std::size_t det_episodes = 0;

    for (const std::string& workload : cfg.workloads) {
      for (double ccr : cfg.ccrs) {
        for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
          TaskGraph g = make_graph(workload, ccr, seed);
          auto sched = make_scheduler("FLB", seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();

          // A *permanent* kill: no rejoin, so the detection latency must
          // be paid in full before a confirm-mode controller migrates
          // anything, and every exoneration in the table is a false alarm.
          FaultPlan plan;
          plan.seed = seed;
          plan.failures.push_back({victim, 0.1 * span});

          SimOptions opts;
          opts.faults = &plan;
          SimResult partial = simulate(g, nominal, opts);
          RepairResult oracle = repair_schedule(g, nominal, partial, plan);
          det_oracle.push_back(oracle.schedule.makespan() / span);

          runtime::RuntimeOptions perfect_opts;
          perfect_opts.validate = validate;
          runtime::RuntimeResult perfect =
              runtime::run_online_recovery(g, nominal, plan, perfect_opts);
          det_perfect.push_back(perfect.makespan / span);
          if (validate)
            require_audit_clean(g, plan, perfect, perfect_opts,
                                "perfect-sensor detector baseline");

          for (double pf : hb_periods) {
            for (double loss : hb_losses) {
              FaultPlan world = plan;
              world.heartbeat.period = pf * span;
              world.heartbeat.loss_probability = loss;

              runtime::RuntimeOptions spec_opts;
              spec_opts.validate = validate;
              spec_opts.use_detector = true;
              spec_opts.speculate = true;
              runtime::RuntimeResult spec =
                  runtime::run_online_recovery(g, nominal, world, spec_opts);

              runtime::RuntimeOptions conf_opts = spec_opts;
              conf_opts.speculate = false;
              runtime::RuntimeResult conf =
                  runtime::run_online_recovery(g, nominal, world, conf_opts);

              if (validate) {
                FLB_REQUIRE(spec.complete && conf.complete,
                            "detector recovery left unfinished tasks on " +
                                g.name());
                runtime::RuntimeResult again = runtime::run_online_recovery(
                    g, nominal, world, spec_opts);
                FLB_REQUIRE(
                    again.belief_digest == spec.belief_digest &&
                        again.event_digest == spec.event_digest &&
                        again.schedule_digest == spec.schedule_digest,
                    "detector recovery was not deterministic on " + g.name());
                require_audit_clean(g, world, spec, spec_opts,
                                    "speculative detector episode");
                require_audit_clean(g, world, conf, conf_opts,
                                    "confirm-then-repair detector episode");
              }

              DetCell& cell = cells[{pf, loss}];
              cell.latency.push_back(spec.mean_detection_latency /
                                     world.heartbeat.period);
              cell.alarms.push_back(
                  static_cast<double>(spec.false_alarms));
              cell.spec.push_back(spec.makespan / span);
              cell.conf.push_back(conf.makespan / span);
              cell.waste.push_back(spec.speculative_waste / span);
              det_digests += hex64(spec.belief_digest) + " " +
                             hex64(spec.event_digest) + " " +
                             hex64(spec.schedule_digest) + " " +
                             hex64(conf.belief_digest) + " " +
                             hex64(conf.schedule_digest) + "\n";
              ++det_episodes;
            }
          }
        }
      }
    }

    for (double pf : hb_periods) {
      for (double loss : hb_losses) {
        const DetCell& cell = cells[{pf, loss}];
        det_table.add_row({"p=" + format_compact(pf * 100) + "%",
                           format_compact(loss),
                           format_fixed(mean(cell.latency), 1),
                           format_fixed(mean(cell.alarms), 1),
                           format_fixed(mean(det_oracle), 3),
                           format_fixed(mean(det_perfect), 3),
                           format_fixed(mean(cell.spec), 3),
                           format_fixed(mean(cell.conf), 3),
                           format_fixed(mean(cell.waste), 3)});
      }
    }
    emit(det_table, cfg);

    std::cout << "\ndetector sweep digest: "
              << hex64(runtime::fnv1a_digest(det_digests)) << " over "
              << det_episodes << " episodes (chains every episode's "
              << "belief-stream, event-log and final-schedule digests; the "
              << "CI detector-determinism job diffs two runs)\n";

    if (validate) {
      // (a) Noise is never free, and the noisy controller converges on the
      // perfect-event one as the false-alarm rate goes to zero.
      for (double pf : hb_periods) {
        const double clean = mean(cells[{pf, hb_losses.front()}].spec);
        const double noisy = mean(cells[{pf, hb_losses.back()}].spec);
        FLB_REQUIRE(clean <= noisy + 0.02,
                    "a lossless detector at period fraction " +
                        format_compact(pf) +
                        " was beaten by the lossiest one");
        FLB_REQUIRE(clean <= 2.0 * mean(det_perfect) + 1e-9,
                    "the lossless detector at period fraction " +
                        format_compact(pf) +
                        " exceeded twice the perfect-event makespan");
      }
      // (b) At high detection latency, hedging at suspicion strictly beats
      // waiting for the confirmation.
      const double slow = hb_periods.back();
      FLB_REQUIRE(mean(cells[{slow, hb_losses.front()}].spec) <
                      mean(cells[{slow, hb_losses.front()}].conf),
                  "speculative repair did not beat confirm-then-repair at "
                  "the slowest heartbeat period");
    }

    std::cout << "\n(speculation hedges the suspicion window: the suspect's "
                 "queue drains elsewhere while its in-flight task keeps its "
                 "placement, so a confirmed death has already been repaired "
                 "and an exonerated one kept its progress — the confirm "
                 "column pays the full detection latency before migrating "
                 "anything)\n";

    // --- Failure-rate drift: the adaptive checkpoint interval tracks it --
    std::cout << "\nAdaptive-checkpoint drift scenario (FLB, first "
              << "workload): one early kill, then a late cluster of three, "
              << "estimated over a sliding window of 30% of the nominal "
              << "span. The windowed Young/Daly estimate must tighten as "
              << "the observed failure rate drifts up. Cells: first adapted "
              << "interval | last adapted interval | confirmations.\n\n";

    Table drift_table({"seed", "first tau", "last tau", "confirms"});
    FLB_REQUIRE(procs >= 6, "--detector needs --at-procs >= 6 for the "
                            "drift scenario");
    for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
      TaskGraph g =
          make_graph(cfg.workloads.front(), cfg.ccrs.front(), seed);
      auto sched = make_scheduler("FLB", seed);
      Schedule nominal = sched->run(g, procs);
      const Cost span = nominal.makespan();
      const Cost mean_comp =
          g.total_comp() / static_cast<Cost>(g.num_tasks());

      FaultPlan world;
      world.seed = seed;
      world.checkpoint = {0.3 * mean_comp, 0.05 * mean_comp};
      world.heartbeat.period = 0.02 * span;
      world.failures.push_back({victim, 0.12 * span});
      world.failures.push_back({static_cast<ProcId>(procs - 1), 0.60 * span});
      world.failures.push_back({static_cast<ProcId>(procs - 2), 0.63 * span});
      world.failures.push_back({static_cast<ProcId>(procs - 3), 0.66 * span});

      runtime::RuntimeOptions drift_opts;
      drift_opts.validate = validate;
      drift_opts.use_detector = true;
      drift_opts.adapt_checkpoint = true;
      drift_opts.failure_rate_window = 0.3 * span;
      runtime::RuntimeResult r =
          runtime::run_online_recovery(g, nominal, world, drift_opts);

      double first_tau = 0.0, last_tau = 0.0;
      for (const runtime::RepairInvocation& inv : r.repairs)
        if (inv.failure_rate > 0.0) {
          if (first_tau == 0.0) first_tau = inv.checkpoint_interval;
          last_tau = inv.checkpoint_interval;
        }
      drift_table.add_row({std::to_string(seed), format_fixed(first_tau, 3),
                           format_fixed(last_tau, 3),
                           std::to_string(r.confirmations)});
      if (validate) {
        FLB_REQUIRE(r.complete, "drift scenario left unfinished tasks");
        FLB_REQUIRE(first_tau > 0.0 && last_tau > 0.0,
                    "the drift scenario never adapted the interval");
        // (c) The late cluster raises the windowed rate estimate, so the
        // re-derived interval must tighten.
        FLB_REQUIRE(last_tau < first_tau,
                    "the adapted interval did not tighten under the late "
                    "failure cluster");
      }
    }
    emit(drift_table, cfg);

    std::cout << "\n(tau = sqrt(2 * overhead / lambda): a quiet window "
                 "relaxes the interval, the late cluster tightens it — the "
                 "policy each repair installs for the work it re-plans)\n";
  }

  // --- Sweep 7 (--partition): partial partitions, gossip quorum, tuning ---
  if (args.has("partition")) {
    FLB_REQUIRE(procs >= 4, "--partition needs --at-procs >= 4");
    FLB_REQUIRE(victim != 0 && victim + 1 < procs,
                "--partition partitions the controller's link to --victim "
                "and kills processor P-1 in the self-tuning scenario; "
                "--victim must be in 1 .. --at-procs - 2");
    const double hb_pf = hb_periods.front();
    FLB_REQUIRE(hb_pf * 16.0 < 1.0,
                "--partition needs the first --hb-period fraction below "
                "1/16 so the partition windows fit inside the nominal span");

    std::cout << "\nPartial-partition sweep (FLB): the controller's link to "
              << "processor " << victim << " goes dark while the processor "
              << "keeps computing — the network lies to observer 0 alone. "
              << "A short cut (3 heartbeat periods) makes the "
              << "single-observer detector manufacture a false alarm; the "
              << "gossip aggregator (quorum 2) polls the other observers, "
              << "who still hear the victim directly. A long cut (to 50% "
              << "of the span, on a tighter 4-processor machine where the "
              << "victim is a quarter of the capacity) then compares the "
              << "two repair disciplines on the same episode: "
              << "confirm-then-repair treats the silence as a death and "
              << "re-executes (kill), quorum detection masks the victim "
              << "from new placements only and reconciles on heal. Cells: "
              << "false alarms 1-obs | quorum, kill ratio, heal ratio, "
              << "mean repairs that masked an unreachable processor.\n\n";

    Table pt_table({"workload", "f-alarms 1-obs|quorum", "kill", "heal",
                    "masked repairs"});
    std::string pt_digests;
    std::size_t pt_episodes = 0;
    for (const std::string& workload : cfg.workloads) {
      std::vector<double> fa_single, fa_quorum, kill_ratio, heal_ratio,
          masked;
      for (double ccr : cfg.ccrs) {
        for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
          TaskGraph g = make_graph(workload, ccr, seed);
          auto sched = make_scheduler("FLB", seed);
          Schedule nominal = sched->run(g, procs);
          const Cost span = nominal.makespan();
          const Cost period = hb_pf * span;

          // The short cut: the victim's last audible heartbeat is beat 10,
          // beats 11 and 12 die on the partitioned link, beat 13 arrives —
          // a 3-period silence that crosses the suspect threshold (2) but
          // exonerates before the confirm threshold (4). Nobody is at
          // fault and nothing is lost; only observer 0's view lies.
          FaultPlan blip;
          blip.seed = seed;
          blip.heartbeat.period = period;
          blip.partitions.push_back(
              {0, victim, "", "", 10.25 * period, 12.25 * period});

          runtime::RuntimeOptions single_opts;
          single_opts.validate = validate;
          single_opts.use_detector = true;
          single_opts.speculate = true;
          runtime::RuntimeResult single =
              runtime::run_online_recovery(g, nominal, blip, single_opts);

          runtime::RuntimeOptions quorum_opts = single_opts;
          quorum_opts.use_gossip = true;
          quorum_opts.quorum = 2;
          runtime::RuntimeResult quorum =
              runtime::run_online_recovery(g, nominal, blip, quorum_opts);

          if (validate) {
            FLB_REQUIRE(single.complete && quorum.complete,
                        "partition blip left unfinished tasks on " +
                            g.name());
            FLB_REQUIRE(single.false_alarms >= 1,
                        "the partitioned link never manufactured a false "
                        "alarm for the single-observer detector on " +
                            g.name());
            FLB_REQUIRE(quorum.false_alarms == 0,
                        "the quorum detector raised a cluster-wide false "
                        "alarm from one partitioned link on " + g.name());
            require_audit_clean(g, blip, single, single_opts,
                                "single-observer blip episode");
            require_audit_clean(g, blip, quorum, quorum_opts,
                                "quorum blip episode");
          }
          fa_single.push_back(static_cast<double>(single.false_alarms));
          fa_quorum.push_back(static_cast<double>(quorum.false_alarms));
          for (const runtime::RuntimeResult* r : {&single, &quorum})
            pt_digests += hex64(r->belief_digest) + " " +
                          hex64(r->event_digest) + " " +
                          hex64(r->schedule_digest) + "\n";

          // The long cut: same lying link, but the silence outlasts the
          // confirm threshold (4 periods) and the link stays dark until
          // 50% of the span — and this time a *real* kill lands on
          // another processor while the cut is open, so both controllers
          // must re-plan mid-partition. Victim and casualty fall silent
          // after the same last beat (10), so both disciplines react at
          // the same detector instants and any re-planning gain is
          // shared. The single-observer controller cannot tell the two
          // silences apart: it buries both — re-executing the healthy
          // victim's queue on the survivors and re-admitting the victim
          // with (hypothesized) cold caches when it is heard from again.
          // The quorum controller knows only the casualty died: the
          // victim is merely masked from the kill repair's new placements
          // (its installed queue keeps producing behind the cut, messages
          // crossing it reroute), and the heal triggers one
          // reconciliation re-balance that re-admits it warm. The
          // comparison runs on the communication-light episode only (the
          // sweep's first ccr): reconciliation's edge is keeping a
          // healthy processor's capacity, so it shows where capacity
          // binds — in a comm-dominated schedule on an over-provisioned
          // machine, abandoning the processor behind the rerouting cut is
          // genuinely the better discipline, and asserting dominance
          // there would be asserting a falsehood.
          if (ccr == cfg.ccrs.front()) {
            FaultPlan cut;
            cut.seed = seed;
            cut.heartbeat.period = period;
            cut.partitions.push_back(
                {0, victim, "", "", 10.25 * period, 0.5 * span});
            cut.failures.push_back(
                {static_cast<ProcId>(procs - 1), 10.75 * period});

            runtime::RuntimeOptions kill_opts;
            kill_opts.validate = validate;
            kill_opts.use_detector = true;
            kill_opts.speculate = false;
            runtime::RuntimeResult kill =
                runtime::run_online_recovery(g, nominal, cut, kill_opts);

            // Confirm-then-repair on both arms: the only discipline
            // difference left is what the controller believes about the
            // victim — dead (kill) or merely unreachable (heal).
            runtime::RuntimeOptions heal_opts = quorum_opts;
            heal_opts.speculate = false;
            runtime::RuntimeResult heal =
                runtime::run_online_recovery(g, nominal, cut, heal_opts);

            if (validate) {
              FLB_REQUIRE(kill.complete && heal.complete,
                          "partition cut left unfinished tasks on " +
                              g.name());
              FLB_REQUIRE(heal.makespan <= kill.makespan + 1e-9,
                          "partition-heal reconciliation was worse than "
                          "kill-and-reexecute on " + g.name());
              runtime::RuntimeResult again =
                  runtime::run_online_recovery(g, nominal, cut, heal_opts);
              FLB_REQUIRE(again.belief_digest == heal.belief_digest &&
                              again.event_digest == heal.event_digest &&
                              again.schedule_digest == heal.schedule_digest,
                          "partition-aware recovery was not deterministic "
                          "on " + g.name());
              require_audit_clean(g, cut, kill, kill_opts,
                                  "kill-discipline cut episode");
              require_audit_clean(g, cut, heal, heal_opts,
                                  "heal-discipline cut episode");
            }

            kill_ratio.push_back(kill.makespan / span);
            heal_ratio.push_back(heal.makespan / span);
            double masked_here = 0.0;
            for (const runtime::RepairInvocation& inv : heal.repairs)
              if (inv.unreachable > 0) masked_here += 1.0;
            masked.push_back(masked_here);
            for (const runtime::RuntimeResult* r : {&kill, &heal})
              pt_digests += hex64(r->belief_digest) + " " +
                            hex64(r->event_digest) + " " +
                            hex64(r->schedule_digest) + "\n";
          }
          ++pt_episodes;
        }
      }
      pt_table.add_row({workload,
                        format_fixed(mean(fa_single), 1) + " | " +
                            format_fixed(mean(fa_quorum), 1),
                        format_fixed(mean(kill_ratio), 3),
                        format_fixed(mean(heal_ratio), 3),
                        format_fixed(mean(masked), 1)});
    }
    emit(pt_table, cfg);

    std::cout << "\n(the quorum column stays at zero by construction: a "
                 "suspicion needs two observers with a live path to the "
                 "subject, and only observer 0 sits behind the cut. The "
                 "heal column keeps the victim's in-flight work and its "
                 "finished outputs; the kill column re-executes both and "
                 "re-fetches cold inputs when the 'dead' processor is "
                 "heard from again)\n";

    // --- Self-tuning scenario: an exoneration burst raises the suspect
    // threshold, a real kill still confirms, and quiet decays it back. ---
    std::cout << "\nSelf-tuning detector scenario (FLB, first workload): "
              << "repeated short cuts of the controller's link to "
              << "processor " << victim << " manufacture an exoneration "
              << "burst — silences of 3, 4 and 5 heartbeat periods, each "
              << "outlasting the tuned suspect threshold of its day — so "
              << "every false alarm raises the threshold x1.5 (capped "
              << "below the confirm threshold of 8). A fourth 5-period cut "
              << "is absorbed by the raised threshold; a real kill of "
              << "processor " << procs - 1 << " at 75% still confirms, and "
              << "the quiet window after the burst decays the threshold "
              << "back. Cells: the threshold (in periods) after every "
              << "trace step.\n\n";

    Table st_table({"seed", "thresholds", "peak", "final", "f-alarms",
                    "suppressed", "confirms"});
    for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
      TaskGraph g =
          make_graph(cfg.workloads.front(), cfg.ccrs.front(), seed);
      auto sched = make_scheduler("FLB", seed);
      Schedule nominal = sched->run(g, procs);
      const Cost span = nominal.makespan();
      const Cost period = hb_pf * span;

      FaultPlan world;
      world.seed = seed;
      world.heartbeat.period = period;
      world.heartbeat.confirm_after = 8.0;  // headroom for the raises
      world.partitions.push_back(
          {0, victim, "", "", 10.25 * period, 12.25 * period});
      world.partitions.push_back(
          {0, victim, "", "", 15.25 * period, 18.25 * period});
      world.partitions.push_back(
          {0, victim, "", "", 20.25 * period, 24.25 * period});
      world.partitions.push_back(
          {0, victim, "", "", 27.25 * period, 31.25 * period});
      world.failures.push_back(
          {static_cast<ProcId>(procs - 1), 0.75 * span});

      runtime::RuntimeOptions tune_opts;
      tune_opts.validate = validate;
      tune_opts.use_detector = true;
      tune_opts.speculate = true;
      tune_opts.self_tune = true;
      tune_opts.tune_window = 0.1 * span;
      runtime::RuntimeResult r =
          runtime::run_online_recovery(g, nominal, world, tune_opts);

      std::string steps;
      double peak = world.heartbeat.suspect_after;
      for (const auto& entry : r.suspect_trace) {
        if (!steps.empty()) steps += " > ";
        steps += format_fixed(entry.second, 2);
        peak = std::max(peak, entry.second);
      }
      st_table.add_row(
          {std::to_string(seed), steps.empty() ? "-" : steps,
           format_fixed(peak, 2),
           format_fixed(r.suspect_trace.empty()
                            ? world.heartbeat.suspect_after
                            : r.suspect_trace.back().second,
                        2),
           std::to_string(r.false_alarms),
           std::to_string(r.suppressed_alarms),
           std::to_string(r.confirmations)});
      pt_digests += hex64(r.belief_digest) + " " + hex64(r.event_digest) +
                    " " + hex64(r.schedule_digest) + "\n";
      ++pt_episodes;

      if (validate) {
        FLB_REQUIRE(r.complete,
                    "self-tuning scenario left unfinished tasks");
        FLB_REQUIRE(r.false_alarms >= 3,
                    "the exoneration burst did not produce three false "
                    "alarms");
        FLB_REQUIRE(r.suppressed_alarms >= 1,
                    "the raised threshold never absorbed the fourth cut's "
                    "suspicion");
        FLB_REQUIRE(r.confirmations >= 1,
                    "the real kill was never confirmed under the tuned "
                    "threshold");
        FLB_REQUIRE(r.suspect_trace.size() >= 4,
                    "the suspect-threshold trace is too short to show the "
                    "burst and the decay");
        FLB_REQUIRE(
            r.suspect_trace[0].second > world.heartbeat.suspect_after &&
                r.suspect_trace[1].second > r.suspect_trace[0].second &&
                r.suspect_trace[2].second > r.suspect_trace[1].second,
            "the self-tuned suspect threshold did not strictly increase "
            "across the exoneration burst");
        FLB_REQUIRE(r.suspect_trace.back().second < peak - 1e-12,
                    "the self-tuned suspect threshold did not decay after "
                    "the burst");
      }
    }
    emit(st_table, cfg);

    std::cout << "\npartition sweep digest: "
              << hex64(runtime::fnv1a_digest(pt_digests)) << " over "
              << pt_episodes << " episodes (chains every episode's "
              << "belief-stream, event-log and final-schedule digests; "
              << "the CI partition-determinism job diffs two runs)\n";

    std::cout << "\n(each false alarm multiplies the suspect threshold; a "
                 "silence the raised threshold would outlast is consumed "
                 "as passive knowledge instead of a speculative repair, "
                 "and once no alarm lands within the tune window the "
                 "threshold steps back down — the detector pays latency "
                 "only while the network is actually lying)\n";
  }
  return 0;
}
