// Duplication ablation: the paper's introduction motivates restricting
// attention to non-duplicating heuristics — "Duplicating tasks results in
// better scheduling performance but significantly increases scheduling
// cost." This bench quantifies both halves of that sentence: the DSH-style
// duplication scheduler (DUP) against the paper's algorithms, reporting
// schedule length (NSL vs MCP), duplication volume, and scheduling time.

#include <map>

#include "bench_common.hpp"
#include "flb/algos/duplication.hpp"

int main(int argc, char** argv) {
  using namespace flb;
  using namespace flb::bench;
  Config cfg = parse_config(argc, argv);
  CliArgs args(argc, argv);
  const auto procs = static_cast<ProcId>(args.get_int("at-procs", 8));

  std::cout << "Duplication ablation at P = " << procs << " (V ~ "
            << cfg.tasks << ", " << cfg.seeds << " seeds)\n\n";

  Table table({"workload", "CCR", "MCP NSL", "FLB NSL", "DUP NSL",
               "DUP instances/V", "FLB [ms]", "DUP [ms]"});

  std::map<std::string, std::vector<double>> overall;
  for (const std::string& workload : cfg.workloads) {
    for (double ccr : cfg.ccrs) {
      std::vector<double> nsl_flb, nsl_dup, dup_ratio, t_flb, t_dup;
      for (std::size_t seed = 1; seed <= cfg.seeds; ++seed) {
        WorkloadParams params;
        params.ccr = ccr;
        params.seed = seed;
        TaskGraph g = make_workload(workload, cfg.tasks, params);

        auto mcp = make_scheduler("MCP", seed);
        Cost mcp_len = run_once(*mcp, g, procs).makespan;

        auto flb = make_scheduler("FLB", seed);
        RunResult rf = run_once(*flb, g, procs);
        nsl_flb.push_back(rf.makespan / mcp_len);
        t_flb.push_back(rf.millis);

        DupScheduler dup;
        Stopwatch sw;
        DupSchedule ds = dup.run(g, procs);
        double ms = sw.millis();
        FLB_REQUIRE(is_valid_dup_schedule(g, ds),
                    "DUP produced an infeasible schedule on " + g.name());
        nsl_dup.push_back(ds.makespan() / mcp_len);
        dup_ratio.push_back(static_cast<double>(ds.num_instances()) /
                            static_cast<double>(g.num_tasks()));
        t_dup.push_back(ms);
      }
      table.add_row({workload, format_fixed(ccr, 1), "1.000",
                     format_fixed(mean(nsl_flb), 3),
                     format_fixed(mean(nsl_dup), 3),
                     format_fixed(mean(dup_ratio), 3),
                     format_fixed(mean(t_flb), 2),
                     format_fixed(mean(t_dup), 2)});
      overall["flb"].push_back(mean(nsl_flb));
      overall["dup"].push_back(mean(nsl_dup));
      overall["tf"].push_back(mean(t_flb));
      overall["td"].push_back(mean(t_dup));
    }
  }
  emit(table, cfg);

  std::cout << "\nshape checks (paper Section 1):\n";
  std::cout << "  duplication schedules better on average: "
            << (mean(overall["dup"]) < mean(overall["flb"]) ? "yes" : "NO")
            << " (DUP " << format_fixed(mean(overall["dup"]), 3) << " vs FLB "
            << format_fixed(mean(overall["flb"]), 3) << ")\n";
  std::cout << "  ...at significantly higher scheduling cost: "
            << format_fixed(mean(overall["td"]) / mean(overall["tf"]), 1)
            << "x FLB's running time\n";
  return 0;
}
