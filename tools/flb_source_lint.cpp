// flb_source_lint — source-level determinism linter over src/.
//
// The schedule linter and the runtime auditor check *artifacts* (schedules,
// event logs); this tool checks the *code* for the idioms that would break
// the bit-identical-output guarantee before any artifact exists. It walks a
// source tree (default: the directory given as argv[1]) and enforces, over
// every .cpp/.hpp file, the project invariants that code review keeps
// re-litigating:
//
//   unordered-iteration   no range-for over a std::unordered_{map,set}:
//                         bucket order is implementation-defined, so any
//                         iteration that feeds a digest, a log or an
//                         emitted artifact is nondeterministic. Unordered
//                         containers are fine for lookup and dedup.
//   nondeterministic-clock no rand()/srand()/time()/clock()/system_clock
//                         in the deterministic libraries. The serving
//                         layer and util/stopwatch.hpp are the sanctioned
//                         wall-clock users (latency accounting only).
//   sort-total-order      a std::sort/std::stable_sort with a lambda
//                         comparator in core/, sched/ or analysis/ must
//                         compare through a total-order key (std::tie, a
//                         tuple key, key_of/.key()): a partial key makes
//                         tied elements land in unspecified order and the
//                         schedule digest flap across STL implementations.
//   raw-new               no raw `new` in the library: steady-state paths
//                         allocate through util/arena.hpp (pinned by
//                         flb_alloc_test), everything else uses containers
//                         or std::make_unique.
//   doxygen-marker        a line must not *start* with `///<` — that
//                         marker documents the declaration to its left, so
//                         a line-leading one attaches to nothing; the
//                         continuation of a trailing comment is `///<` on
//                         the first line and aligned `///<` only behind
//                         code, otherwise plain `///`.
//
// Comment and string contents are stripped before matching (the doxygen
// rule, which inspects comments themselves, runs on the raw line). Exit
// code: 0 clean, 1 findings, 2 usage error. --list-rules prints the
// catalogue.

#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Strip // and /* */ comments plus string/char literal *contents* from a
/// whole file, preserving line structure so findings keep their line
/// numbers. Literal delimiters stay so that syntax like "](" in a string
/// cannot fake a lambda.
std::string strip(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += c;
        } else if (c == '\'') {
          state = State::kChar;
          out += c;
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
          out += c;
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;  // unterminated (macro trick); keep line structure
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += c;
        } else if (c == '\n') {
          out += c;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool contains(const std::string& path, const std::string& piece) {
  return path.find(piece) != std::string::npos;
}

void lint_file(const std::filesystem::path& path,
               std::vector<Finding>& findings) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  const std::string generic = path.generic_string();
  const std::vector<std::string> raw_lines = split_lines(raw);
  const std::vector<std::string> code_lines = split_lines(strip(raw));

  auto emit = [&](std::size_t line, const char* rule,
                  const std::string& message) {
    findings.push_back({generic, line + 1, rule, message});
  };

  // doxygen-marker: on raw lines (it inspects comments).
  static const std::regex leading_trailer(R"(^\s*///<)");
  for (std::size_t i = 0; i < raw_lines.size(); ++i)
    if (std::regex_search(raw_lines[i], leading_trailer))
      emit(i, "doxygen-marker",
           "line-leading `///<` attaches to no declaration; use `///` for "
           "a continuation line (or move the comment above the entity)");

  // nondeterministic-clock.
  const bool clock_allowed =
      contains(generic, "/serve/") || contains(generic, "stopwatch");
  static const std::regex clock_use(
      R"(\b(srand|rand|time|clock)\s*\(|std::chrono::system_clock)");
  if (!clock_allowed)
    for (std::size_t i = 0; i < code_lines.size(); ++i)
      if (std::regex_search(code_lines[i], clock_use))
        emit(i, "nondeterministic-clock",
             "wall-clock / PRNG call in a deterministic library (only the "
             "serve layer and util/stopwatch.hpp may read real time; "
             "seeded splitmix/xoshiro utilities cover randomness)");

  // unordered-iteration: collect unordered container variable names, then
  // flag range-fors over them.
  static const std::regex unordered_decl(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;({=])");
  std::set<std::string> unordered_names;
  for (const std::string& line : code_lines) {
    std::smatch m;
    std::string rest = line;
    while (std::regex_search(rest, m, unordered_decl)) {
      unordered_names.insert(m[1].str());
      rest = m.suffix().str();
    }
  }
  if (!unordered_names.empty()) {
    static const std::regex range_for(R"(\bfor\s*\(.*:\s*(.*)\))");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(code_lines[i], m, range_for)) continue;
      const std::string range = m[1].str();
      for (const std::string& name : unordered_names) {
        const std::regex word(R"(\b)" + name + R"(\b)");
        if (std::regex_search(range, word))
          emit(i, "unordered-iteration",
               "range-for over unordered container `" + name +
                   "`: bucket order is implementation-defined, so "
                   "anything derived from this loop (digests, logs, "
                   "emitted artifacts) is nondeterministic");
      }
    }
  }

  // sort-total-order: core/, sched/ and analysis/ only.
  const bool sort_scope = contains(generic, "/core/") ||
                          contains(generic, "/sched/") ||
                          contains(generic, "/analysis/");
  if (sort_scope) {
    static const std::regex sort_call(R"(std::(?:stable_)?sort\s*\()");
    static const std::regex lambda(R"(\[[^\]]*\]\s*\()");
    static const std::regex total_key(R"(std::tie|tuple|key_of|\.key\(\))");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      if (!std::regex_search(code_lines[i], sort_call)) continue;
      // The sort statement may span lines: accumulate to the terminating
      // ';' (bounded lookahead keeps a malformed file from hanging us).
      std::string stmt;
      for (std::size_t j = i; j < code_lines.size() && j < i + 12; ++j) {
        stmt += code_lines[j];
        stmt += '\n';
        if (code_lines[j].find(';') != std::string::npos) break;
      }
      if (!std::regex_search(stmt, lambda)) continue;  // default operator<
      if (std::regex_search(stmt, total_key)) continue;
      emit(i, "sort-total-order",
           "std::sort with a lambda comparator that breaks no ties: "
           "compare through a total-order key (std::tie(primary, id), a "
           "tuple key, or the heap's key_of) so tied elements cannot land "
           "in unspecified order");
    }
  }

  // raw-new.
  static const std::regex raw_new(R"((^|[^\w:])new\b)");
  for (std::size_t i = 0; i < code_lines.size(); ++i) {
    const std::string& line = code_lines[i];
    if (line.find('#') != std::string::npos) continue;  // #include <new>
    if (line.find("operator new") != std::string::npos) continue;
    if (std::regex_search(line, raw_new))
      emit(i, "raw-new",
           "raw `new` in the library: steady-state paths allocate through "
           "util/arena.hpp; elsewhere use containers or std::make_unique");
  }
}

void print_rules() {
  std::cout
      << "unordered-iteration [error] no range-for over unordered "
         "containers (bucket order is implementation-defined)\n"
      << "nondeterministic-clock [error] no rand()/time()/clock()/"
         "system_clock outside the serve layer and util/stopwatch.hpp\n"
      << "sort-total-order [error] lambda sort comparators in core/sched/"
         "analysis must compare through a total-order key\n"
      << "raw-new [error] no raw `new` in the library (arena or "
         "make_unique)\n"
      << "doxygen-marker [error] no line-leading `///<` continuation "
         "markers\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = "src";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: flb_source_lint [SRC_DIR] [--list-rules]\n";
      return 0;
    }
    root = arg;
  }
  if (!std::filesystem::is_directory(root)) {
    std::cerr << "flb_source_lint: not a directory: " << root << "\n";
    return 2;
  }

  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) lint_file(file, findings);

  for (const Finding& f : findings)
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  std::cout << files.size() << " file(s) scanned, " << findings.size()
            << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}
