#include "flb/analysis/lint.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "flb/sched/metrics.hpp"
#include "flb/sched/validator.hpp"
#include "flb/util/table.hpp"

namespace flb::analysis {

namespace {

// JSON-safe number formatting: plain decimal with enough precision to
// round-trip a double (same convention as sched/export.cpp).
void number(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Mutable state the diagnostics of one lint run accumulate into.
class Sink {
 public:
  explicit Sink(LintReport& report) : report_(report) {}

  Diagnostic& emit(const char* rule, Severity severity) {
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    report_.diagnostics.push_back(std::move(d));
    return report_.diagnostics.back();
  }

 private:
  LintReport& report_;
};

const char* feasibility_rule(Violation::Kind kind) {
  switch (kind) {
    case Violation::Kind::kUnscheduledTask: return "unscheduled-task";
    case Violation::Kind::kNonFiniteTime: return "non-finite-time";
    case Violation::Kind::kWrongDuration: return "wrong-duration";
    case Violation::Kind::kNegativeStart: return "negative-start";
    case Violation::Kind::kProcessorOverlap: return "processor-overlap";
    case Violation::Kind::kPrecedence: return "precedence";
    case Violation::Kind::kLinkBusyViolation: return "link-busy";
  }
  return "feasibility";
}

// --- Feasibility tier ------------------------------------------------------

void emit_violations(const std::vector<Violation>& violations,
                     const Schedule& s, Sink& sink) {
  for (const Violation& v : violations) {
    Diagnostic& d = sink.emit(feasibility_rule(v.kind), Severity::kError);
    d.task = v.task;
    if (v.task != kInvalidTask && v.task < s.num_tasks() &&
        s.is_scheduled(v.task))
      d.proc = s.proc(v.task);
    d.message = v.detail;
    d.hint = "the schedule is not executable on the paper's machine model; "
             "re-derive it or fix the producing scheduler";
  }
}

void feasibility_rules(const TaskGraph& g, const Schedule& s,
                       const LintOptions& opt, Sink& sink) {
  emit_violations(validate_schedule(g, s, opt.tolerance), s, sink);
}

// Durations-aware variant for continuation schedules, where FT - ST may
// legitimately differ from comp(t).
void feasibility_rules(const TaskGraph& g, const Schedule& s,
                       const std::vector<Cost>& durations,
                       const LintOptions& opt, Sink& sink) {
  emit_violations(validate_schedule(g, s, durations, opt.tolerance), s, sink);
}

// partitioned-link: a remote message scheduled across a link that the fault
// plan partitions at its send instant. The schedule claims point-to-point
// bandwidth that does not exist at that moment; the executing machine would
// reroute, delay or drop the transfer instead.
void partition_rules(const TaskGraph& g, const Schedule& s,
                     const LintOptions& opt, Sink& sink) {
  if (opt.faults == nullptr || opt.faults->partitions.empty()) return;
  const std::vector<LinkOutage> outages = resolve_partitions(*opt.faults);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_scheduled(t)) continue;
    const ProcId from = s.proc(t);
    const Cost send = s.finish(t);
    for (const Adj& out : g.successors(t)) {
      if (!s.is_scheduled(out.node)) continue;
      const ProcId to = s.proc(out.node);
      if (to == from) continue;
      if (!link_partitioned(outages, from, to, send)) continue;
      Diagnostic& d = sink.emit("partitioned-link", Severity::kError);
      d.task = out.node;
      d.proc = to;
      d.actual = send;
      d.message = "message t" + std::to_string(t) + " -> t" +
                  std::to_string(out.node) + " is sent over p" +
                  std::to_string(from) + " ~ p" + std::to_string(to) +
                  " at " + format_compact(send) +
                  ", while the plan partitions that link";
      d.hint = "place producer and consumer on the same side of the "
               "partition, or delay the send past the heal instant";
    }
  }
}

// --- Quality tier ----------------------------------------------------------

// Earliest instant every predecessor output of t is usable on p, through
// the platform model's (cold-aware) arrival pricing. Returns kUndefinedTime
// when a predecessor is unscheduled (nothing to say then).
Cost data_ready(const TaskGraph& g, const Schedule& s,
                const platform::CostModel& model, TaskId t, ProcId p) {
  Cost ready = 0.0;
  for (const Adj& in : g.predecessors(t)) {
    if (!s.is_scheduled(in.node)) return kUndefinedTime;
    ready = std::max(ready,
                     model.arrival(s.proc(in.node), p, in.comm,
                                   s.finish(in.node)));
  }
  return ready;
}

void quality_rules(const TaskGraph& g, const Schedule& s,
                   const platform::CostModel& model, const LintOptions& opt,
                   Sink& sink) {
  // idle-gap: a processor sits idle in front of a task whose inputs were
  // already usable there — a list scheduler respecting the ETF criterion
  // never leaves such a gap.
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    Cost prev = model.admission(p);
    for (TaskId t : s.tasks_on(p)) {
      const Cost start = s.start(t);
      if (start > prev + opt.tolerance) {
        const Cost ready = data_ready(g, s, model, t, p);
        const Cost earliest = ready == kUndefinedTime
                                  ? kUndefinedTime
                                  : std::max(ready, prev);
        if (earliest != kUndefinedTime &&
            start > earliest + opt.tolerance) {
          Diagnostic& d = sink.emit("idle-gap", Severity::kWarn);
          d.task = t;
          d.proc = p;
          d.expected = earliest;
          d.actual = start;
          d.message = "p" + std::to_string(p) + " idles before t" +
                      std::to_string(t) + " although its inputs are usable "
                      "at " + format_compact(earliest);
          d.hint = "an earlier dispatch or gap insertion would reclaim " +
                   format_compact(start - earliest) + " idle time";
        }
      }
      prev = std::max(prev, s.finish(t));
    }
  }

  // remote-placement: every input of t lives on one processor q, yet t was
  // placed elsewhere and paid communication although q had a free slot that
  // would have started t no later, with every message local (zero comm).
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (!s.is_scheduled(t) || g.in_degree(t) == 0) continue;
    const ProcId q = s.proc(g.predecessors(t)[0].node);
    bool all_on_q = true;
    Cost local_ready = model.admission(q);
    for (const Adj& in : g.predecessors(t)) {
      if (!s.is_scheduled(in.node) || s.proc(in.node) != q) {
        all_on_q = false;
        break;
      }
      local_ready = std::max(local_ready, s.finish(in.node));
    }
    if (!all_on_q || s.proc(t) == q || !model.alive(q)) continue;
    const Cost duration = s.finish(t) - s.start(t);
    const Cost slot = s.earliest_gap(q, local_ready, duration);
    if (slot <= s.start(t) + opt.tolerance) {
      Diagnostic& d = sink.emit("remote-placement", Severity::kWarn);
      d.task = t;
      d.proc = s.proc(t);
      d.expected = slot;
      d.actual = s.start(t);
      d.message = "t" + std::to_string(t) + " runs on p" +
                  std::to_string(s.proc(t)) + " paying communication, but "
                  "p" + std::to_string(q) + " holds every input and had a "
                  "zero-comm slot at " + format_compact(slot);
      d.hint = "a local placement dominates: same or earlier start, no "
               "network traffic";
    }
  }

  // makespan-lower-bound: informational distance from the coarse bound
  // max(T_seq / P, critical path) — large gaps are not errors, but they
  // locate schedules worth a second look.
  if (s.complete()) {
    const Cost bound = makespan_lower_bound(g, s.num_procs());
    Diagnostic& d = sink.emit("makespan-lower-bound", Severity::kInfo);
    d.expected = bound;
    d.actual = s.makespan();
    d.message = "makespan " + format_compact(s.makespan()) +
                " vs lower bound " + format_compact(bound);
    d.hint = "informational only";
  }
}

// --- Theorem tier ----------------------------------------------------------

/// Step-by-step replay of an FLB execution trace. Re-derives LMT, EP, EMT
/// and PRT from scratch with the same arithmetic as the engine (but none of
/// its code or data structures) and checks each row against the paper's
/// selection invariants.
class TraceReplay {
 public:
  TraceReplay(const TaskGraph& g, const Schedule& s,
              const std::vector<FlbTraceRow>& rows,
              const platform::CostModel& model, const LintOptions& opt,
              Sink& sink)
      : g_(g),
        s_(s),
        rows_(rows),
        model_(model),
        opt_(opt),
        sink_(sink),
        num_procs_(s.num_procs()),
        placed_(g.num_tasks(), false),
        proc_(g.num_tasks(), kInvalidProc),
        finish_(g.num_tasks(), kUndefinedTime),
        pending_(g.num_tasks(), 0),
        prt_(num_procs_, 0.0) {}

  void run() {
    if (!structural_pass()) return;
    for (TaskId t = 0; t < g_.num_tasks(); ++t)
      pending_[t] = g_.in_degree(t);
    for (std::size_t i = 0; i < rows_.size(); ++i) replay_row(i);
  }

 private:
  // trace-schedule-consistency, part 1: the rows form a bijection with the
  // schedule's placements and agree with them bit-for-bit. Returns false
  // when the rows are too broken to replay (bad ids, duplicates).
  bool structural_pass() {
    bool replayable = true;
    if (rows_.size() != g_.num_tasks()) {
      Diagnostic& d = consistency(kNoStep);
      d.expected = static_cast<Cost>(g_.num_tasks());
      d.actual = static_cast<Cost>(rows_.size());
      d.message = "trace has " + std::to_string(rows_.size()) +
                  " rows for " + std::to_string(g_.num_tasks()) + " tasks";
    }
    std::vector<bool> seen(g_.num_tasks(), false);
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const FlbTraceRow& row = rows_[i];
      if (row.task >= g_.num_tasks() || row.proc >= num_procs_) {
        Diagnostic& d = consistency(i);
        d.message = "row names an out-of-range task or processor";
        replayable = false;
        continue;
      }
      if (seen[row.task]) {
        Diagnostic& d = consistency(i);
        d.task = row.task;
        d.message = "t" + std::to_string(row.task) +
                    " is scheduled by more than one trace row";
        replayable = false;
        continue;
      }
      seen[row.task] = true;
      if (!s_.is_scheduled(row.task)) {
        Diagnostic& d = consistency(i);
        d.task = row.task;
        d.message = "t" + std::to_string(row.task) +
                    " appears in the trace but not in the schedule";
        continue;
      }
      const Placement& pl = s_.placement(row.task);
      // Bit-for-bit: the trace claims to be the run that produced the
      // schedule, so even the last ulp must agree.
      if (pl.proc != row.proc || pl.start != row.start ||
          pl.finish != row.finish) {
        Diagnostic& d = consistency(i);
        d.task = row.task;
        d.proc = row.proc;
        d.expected = pl.start;
        d.actual = row.start;
        d.message = "row (p" + std::to_string(row.proc) + ", [" +
                    format_compact(row.start) + " - " +
                    format_compact(row.finish) + "]) disagrees with the "
                    "schedule's placement (p" + std::to_string(pl.proc) +
                    ", [" + format_compact(pl.start) + " - " +
                    format_compact(pl.finish) + "])";
      }
    }
    for (TaskId t = 0; t < g_.num_tasks(); ++t) {
      if (seen[t] || !s_.is_scheduled(t)) continue;
      Diagnostic& d = consistency(kNoStep);
      d.task = t;
      d.message = "t" + std::to_string(t) +
                  " is scheduled but never appears in the trace";
    }
    return replayable;
  }

  Diagnostic& consistency(std::size_t step) {
    Diagnostic& d = sink_.emit("trace-schedule-consistency", Severity::kError);
    d.step = step;
    d.hint = "the trace must reproduce the final schedule bit-for-bit and "
             "in a precedence-respecting order; re-capture it with "
             "trace_flb on the same run";
    return d;
  }

  // Effective processor ready time as the engine sees it: never before the
  // platform's admission instant.
  [[nodiscard]] Cost eff_prt(ProcId p) const {
    return std::max(prt_[p], model_.admission(p));
  }

  // Priced arrival of predecessor edge `in` at processor p, from the
  // replayed placements.
  [[nodiscard]] Cost arrival_at(const Adj& in, ProcId p) const {
    return model_.arrival(proc_[in.node], p, in.comm, finish_[in.node]);
  }

  // Exact earliest start of ready task t on p (paper Section 2: EST).
  [[nodiscard]] Cost est(TaskId t, ProcId p) const {
    Cost v = eff_prt(p);
    for (const Adj& in : g_.predecessors(t))
      v = std::max(v, arrival_at(in, p));
    return v;
  }

  void replay_row(std::size_t i) {
    const FlbTraceRow& row = rows_[i];
    const bool ready = pending_[row.task] == 0 && !placed_[row.task];
    if (!ready) {
      Diagnostic& d = consistency(i);
      d.task = row.task;
      d.message = "t" + std::to_string(row.task) +
                  " is scheduled before one of its predecessors — the row "
                  "order is not a valid execution order";
    } else {
      check_prt_monotone(i);
      check_ep_classification(i);
      check_etf_conformance(i);
    }
    place(row);
  }

  // prt-monotone: FLB is a pure list scheduler — every placement appends
  // to its processor's timeline, so per-processor ready times only grow.
  void check_prt_monotone(std::size_t i) {
    const FlbTraceRow& row = rows_[i];
    const Cost ready = eff_prt(row.proc);
    if (row.start + opt_.tolerance < ready) {
      Diagnostic& d = sink_.emit("prt-monotone", Severity::kError);
      d.step = i;
      d.task = row.task;
      d.proc = row.proc;
      d.expected = ready;
      d.actual = row.start;
      d.message = "t" + std::to_string(row.task) + " starts at " +
                  format_compact(row.start) + " although p" +
                  std::to_string(row.proc) + " is busy until " +
                  format_compact(ready);
      d.hint = "FLB appends to processor timelines; a start before PRT "
               "means the trace rows are reordered or the engine gained an "
               "insertion path it must not have";
    }
  }

  // ep-classification (appendix, Theorem 2 and Corollary 2): a ready task
  // is EP-type iff LMT(t) >= PRT(EP(t)); EP-type tasks start at
  // max(EMT, PRT) on their enabling processor, non-EP tasks at
  // max(LMT, PRT) on the processor that becomes idle first.
  void check_ep_classification(std::size_t i) {
    const FlbTraceRow& row = rows_[i];
    const TaskId t = row.task;

    // LMT and the enabling processor, exactly as the engine derives them:
    // full communication for every predecessor, first strict maximum wins.
    Cost lmt = 0.0;
    ProcId ep = kInvalidProc;
    for (const Adj& in : g_.predecessors(t)) {
      const Cost arrival = finish_[in.node] + model_.message_cost(in.comm);
      if (arrival > lmt || ep == kInvalidProc) {
        lmt = arrival;
        ep = proc_[in.node];
      }
    }

    const bool expect_ep =
        ep != kInvalidProc && model_.alive(ep) && lmt >= eff_prt(ep);
    if (expect_ep != row.ep_type) {
      Diagnostic& d = sink_.emit("ep-classification", Severity::kError);
      d.step = i;
      d.task = t;
      d.proc = ep;
      d.expected = lmt;
      d.actual = ep == kInvalidProc ? kUndefinedTime : eff_prt(ep);
      d.message =
          "t" + std::to_string(t) + " is traced as " +
          (row.ep_type ? "EP-type" : "non-EP") + " but LMT " +
          format_compact(lmt) +
          (expect_ep ? " >= " : " < ") +
          (ep == kInvalidProc ? std::string("(no enabling processor)")
                              : "PRT(p" + std::to_string(ep) + ") = " +
                                    format_compact(eff_prt(ep)));
      d.hint = "EP-type iff LMT(t) >= PRT(EP(t)) (appendix Theorem 2); "
               "check the demotion sweep in UpdateTaskLists";
      return;
    }

    if (expect_ep) {
      if (row.proc != ep) {
        Diagnostic& d = sink_.emit("ep-classification", Severity::kError);
        d.step = i;
        d.task = t;
        d.proc = row.proc;
        d.expected = static_cast<Cost>(ep);
        d.actual = static_cast<Cost>(row.proc);
        d.message = "EP-type t" + std::to_string(t) + " placed on p" +
                    std::to_string(row.proc) +
                    " instead of its enabling processor p" +
                    std::to_string(ep);
        d.hint = "an EP-type task starts earliest on its enabling "
                 "processor (appendix Theorem 2)";
        return;
      }
      Cost emt = 0.0;
      for (const Adj& in : g_.predecessors(t))
        emt = std::max(emt, arrival_at(in, ep));
      const Cost expected = std::max(emt, eff_prt(ep));
      if (std::abs(row.start - expected) > opt_.tolerance) {
        Diagnostic& d = sink_.emit("ep-classification", Severity::kError);
        d.step = i;
        d.task = t;
        d.proc = ep;
        d.expected = expected;
        d.actual = row.start;
        d.message = "EP-type t" + std::to_string(t) +
                    " must start at max(EMT, PRT) = " +
                    format_compact(expected) + " on p" + std::to_string(ep) +
                    ", traced start is " + format_compact(row.start);
        d.hint = "EST(t, EP(t)) = max(EMT(t, EP(t)), PRT(EP(t))) "
                 "(paper Section 4)";
      }
      return;
    }

    // Non-EP: the destination must be a first-idle processor (minimum
    // effective PRT among the alive ones; ties are free) and the start
    // max(LMT, PRT) there (Corollary 2).
    Cost min_prt = kInfiniteTime;
    for (ProcId p = 0; p < num_procs_; ++p)
      if (model_.alive(p)) min_prt = std::min(min_prt, eff_prt(p));
    if (eff_prt(row.proc) > min_prt + opt_.tolerance) {
      Diagnostic& d = sink_.emit("ep-classification", Severity::kError);
      d.step = i;
      d.task = t;
      d.proc = row.proc;
      d.expected = min_prt;
      d.actual = eff_prt(row.proc);
      d.message = "non-EP t" + std::to_string(t) + " placed on p" +
                  std::to_string(row.proc) + " (ready " +
                  format_compact(eff_prt(row.proc)) +
                  ") instead of a first-idle processor (ready " +
                  format_compact(min_prt) + ")";
      d.hint = "a non-EP task starts earliest on the processor that "
               "becomes idle first (appendix Corollary 2)";
      return;
    }
    const Cost expected = std::max(lmt, eff_prt(row.proc));
    if (std::abs(row.start - expected) > opt_.tolerance) {
      Diagnostic& d = sink_.emit("ep-classification", Severity::kError);
      d.step = i;
      d.task = t;
      d.proc = row.proc;
      d.expected = expected;
      d.actual = row.start;
      d.message = "non-EP t" + std::to_string(t) +
                  " must start at max(LMT, PRT) = " +
                  format_compact(expected) + ", traced start is " +
                  format_compact(row.start);
      d.hint = "EST of a non-EP task is max(LMT(t), PRT(p)) "
               "(appendix Corollary 2)";
    }
  }

  // etf-conformance (Section 3's criterion, which Theorem 3 proves FLB
  // preserves): at every step, no ready task could start strictly earlier
  // anywhere than the scheduled task actually starts.
  void check_etf_conformance(std::size_t i) {
    const FlbTraceRow& row = rows_[i];
    for (TaskId c = 0; c < g_.num_tasks(); ++c) {
      if (placed_[c] || pending_[c] != 0) continue;
      Cost best = kInfiniteTime;
      ProcId where = kInvalidProc;
      for (ProcId p = 0; p < num_procs_; ++p) {
        if (!model_.alive(p)) continue;
        const Cost v = est(c, p);
        if (v < best) {
          best = v;
          where = p;
        }
      }
      if (best + opt_.tolerance < row.start) {
        Diagnostic& d = sink_.emit("etf-conformance", Severity::kError);
        d.step = i;
        d.task = c;
        d.proc = where;
        d.expected = best;
        d.actual = row.start;
        d.message = "ready task t" + std::to_string(c) +
                    " could start at " + format_compact(best) + " on p" +
                    std::to_string(where) + ", earlier than the scheduled "
                    "t" + std::to_string(row.task) + "'s start " +
                    format_compact(row.start);
        d.hint = "FLB must schedule the ready task with the globally "
                 "minimal EST (ETF criterion, Section 3 / Theorem 3)";
      }
    }
  }

  void place(const FlbTraceRow& row) {
    if (placed_[row.task]) return;
    placed_[row.task] = true;
    proc_[row.task] = row.proc;
    finish_[row.task] = row.finish;
    prt_[row.proc] = std::max(prt_[row.proc], row.finish);
    for (const Adj& out : g_.successors(row.task))
      if (pending_[out.node] > 0) --pending_[out.node];
  }

  const TaskGraph& g_;
  const Schedule& s_;
  const std::vector<FlbTraceRow>& rows_;
  const platform::CostModel& model_;
  const LintOptions& opt_;
  Sink& sink_;
  ProcId num_procs_;
  std::vector<bool> placed_;
  std::vector<ProcId> proc_;
  std::vector<Cost> finish_;
  std::vector<std::size_t> pending_;
  std::vector<Cost> prt_;
};

}  // namespace

std::size_t LintReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == s) ++n;
  return n;
}

Severity LintReport::max_severity() const {
  Severity max = Severity::kInfo;
  for (const Diagnostic& d : diagnostics)
    if (static_cast<int>(d.severity) > static_cast<int>(max))
      max = d.severity;
  return max;
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> rules = {
      // Feasibility tier (validator-backed).
      {"unscheduled-task", Severity::kError, "every task is scheduled"},
      {"non-finite-time", Severity::kError, "ST/FT are finite"},
      {"wrong-duration", Severity::kError, "FT = ST + comp"},
      {"negative-start", Severity::kError, "ST >= 0"},
      {"processor-overlap", Severity::kError, "one task per processor at "
                                              "a time"},
      {"precedence", Severity::kError, "data arrives before a task starts"},
      {"link-busy", Severity::kError, "one transfer per link at a time"},
      {"partitioned-link", Severity::kError,
       "no message is sent across a link the fault plan partitions at its "
       "send instant"},
      // Theorem tier (trace-backed).
      {"etf-conformance", Severity::kError,
       "no ready task could start earlier than the scheduled one"},
      {"ep-classification", Severity::kError,
       "EP-type iff LMT >= PRT(EP); placement per the appendix theorems"},
      {"prt-monotone", Severity::kError,
       "placements append; processor ready times never decrease"},
      {"trace-schedule-consistency", Severity::kError,
       "the trace reproduces the schedule bit-for-bit in execution order"},
      // Quality tier.
      {"idle-gap", Severity::kWarn,
       "a processor idles while a task's inputs are already usable"},
      {"remote-placement", Severity::kWarn,
       "communication paid although a dominating zero-comm slot existed"},
      {"makespan-lower-bound", Severity::kInfo,
       "distance of the makespan from the coarse lower bound"},
  };
  return rules;
}

LintReport lint_schedule(const TaskGraph& g, const Schedule& s,
                         const platform::CostModel& model,
                         const LintOptions& options) {
  LintReport report;
  Sink sink(report);
  if (options.feasibility) {
    feasibility_rules(g, s, options, sink);
    partition_rules(g, s, options, sink);
  }
  if (options.quality) quality_rules(g, s, model, options, sink);
  return report;
}

LintReport lint_schedule(const TaskGraph& g, const Schedule& s,
                         const std::vector<Cost>& durations,
                         const platform::CostModel& model,
                         const LintOptions& options) {
  LintReport report;
  Sink sink(report);
  if (options.feasibility) {
    feasibility_rules(g, s, durations, options, sink);
    partition_rules(g, s, options, sink);
  }
  if (options.quality) quality_rules(g, s, model, options, sink);
  return report;
}

LintReport lint_flb(const TaskGraph& g, const Schedule& s,
                    const std::vector<FlbTraceRow>& rows,
                    const platform::CostModel& model,
                    const LintOptions& options) {
  LintReport report;
  Sink sink(report);
  if (options.feasibility) {
    feasibility_rules(g, s, options, sink);
    partition_rules(g, s, options, sink);
  }
  if (options.theorems) {
    TraceReplay replay(g, s, rows, model, options, sink);
    replay.run();
  }
  if (options.quality) quality_rules(g, s, model, options, sink);
  return report;
}

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "unknown";
}

void write_report(std::ostream& os, const LintReport& report) {
  for (const Diagnostic& d : report.diagnostics) {
    os << to_string(d.severity) << "[" << d.rule << "]";
    if (d.step != kNoStep) os << " step " << d.step;
    if (d.task != kInvalidTask) os << " t" << d.task;
    if (d.proc != kInvalidProc) os << " p" << d.proc;
    os << ": " << d.message;
    if (d.expected != kUndefinedTime || d.actual != kUndefinedTime)
      os << " (expected " << format_compact(d.expected) << ", actual "
         << format_compact(d.actual) << ")";
    os << "\n";
    if (!d.hint.empty()) os << "    hint: " << d.hint << "\n";
  }
  os << report.diagnostics.size() << " diagnostic(s): " << report.errors()
     << " error(s), " << report.warnings() << " warning(s), "
     << report.count(Severity::kInfo) << " info\n";
}

void write_report_json(std::ostream& os, const LintReport& report) {
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) os << ",";
    first = false;
    os << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
       << to_string(d.severity) << "\"";
    if (d.step != kNoStep) os << ",\"step\":" << d.step;
    if (d.task != kInvalidTask) os << ",\"task\":" << d.task;
    if (d.proc != kInvalidProc) os << ",\"proc\":" << d.proc;
    if (d.expected != kUndefinedTime) {
      os << ",\"expected\":";
      number(os, d.expected);
    }
    if (d.actual != kUndefinedTime) {
      os << ",\"actual\":";
      number(os, d.actual);
    }
    os << ",\"message\":\"" << json_escape(d.message) << "\",\"hint\":\""
       << json_escape(d.hint) << "\"}";
  }
  os << "],\"counts\":{\"error\":" << report.errors()
     << ",\"warn\":" << report.warnings()
     << ",\"info\":" << report.count(Severity::kInfo)
     << "},\"max_severity\":\"" << to_string(report.max_severity())
     << "\"}\n";
}

}  // namespace flb::analysis
