#include "flb/analysis/audit.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/graph/properties.hpp"
#include "flb/runtime/failure_detector.hpp"
#include "flb/sched/export.hpp"
#include "flb/util/table.hpp"

namespace flb::analysis {

namespace {

using runtime::BeliefEvent;
using runtime::BeliefKind;
using runtime::FailureDetector;
using runtime::RepairInvocation;
using runtime::RuntimeResult;

// Stable rule ids (documented in docs/analysis.md).
constexpr const char* kConfig = "audit-config";
constexpr const char* kEventOrder = "audit-event-order";
constexpr const char* kLivenessPairing = "audit-liveness-pairing";
constexpr const char* kPartitionPairing = "audit-partition-pairing";
constexpr const char* kPartitionDrop = "audit-partition-drop";
constexpr const char* kBeliefCausality = "audit-belief-causality";
constexpr const char* kQuorumSoundness = "audit-quorum-soundness";
constexpr const char* kReservationOverlap = "audit-reservation-overlap";
constexpr const char* kCheckpointProvenance = "audit-checkpoint-provenance";
constexpr const char* kRepairProvenance = "audit-repair-provenance";
constexpr const char* kResultConsistency = "audit-result-consistency";
constexpr const char* kSummary = "audit-summary";

/// Mutable state the diagnostics of one audit run accumulate into (same
/// shape as the schedule linter's sink).
class Sink {
 public:
  explicit Sink(LintReport& report) : report_(report) {}

  Diagnostic& emit(const char* rule, Severity severity) {
    Diagnostic d;
    d.rule = rule;
    d.severity = severity;
    report_.diagnostics.push_back(std::move(d));
    return report_.diagnostics.back();
  }

 private:
  LintReport& report_;
};

bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

bool machine_level(SimEventKind k) {
  switch (k) {
    case SimEventKind::kFailure:
    case SimEventKind::kRejoin:
    case SimEventKind::kSlowdownBegin:
    case SimEventKind::kSlowdownEnd:
    case SimEventKind::kLinkPartitioned:
    case SimEventKind::kLinkHealed:
      return true;
    case SimEventKind::kTaskKilled:
    case SimEventKind::kMessageDropped:
      return false;
  }
  return false;
}

const char* kind_name(SimEventKind k) {
  switch (k) {
    case SimEventKind::kFailure: return "failure";
    case SimEventKind::kRejoin: return "rejoin";
    case SimEventKind::kSlowdownBegin: return "slowdown-begin";
    case SimEventKind::kSlowdownEnd: return "slowdown-end";
    case SimEventKind::kTaskKilled: return "task-killed";
    case SimEventKind::kMessageDropped: return "message-dropped";
    case SimEventKind::kLinkPartitioned: return "link-partitioned";
    case SimEventKind::kLinkHealed: return "link-healed";
  }
  return "unknown";
}

/// Per-processor dead windows [death, rejoin) from the resolved plan, the
/// last one possibly extending to infinity — the same canonical view the
/// failure detector keeps.
std::vector<std::vector<std::pair<Cost, Cost>>> down_windows(
    const ResolvedFaults& resolved, ProcId procs) {
  std::vector<std::vector<Cost>> deaths(procs);
  std::vector<std::vector<Cost>> boots(procs);
  for (const ProcFailure& f : resolved.failures)
    deaths[f.proc].push_back(f.time);
  for (const ProcRejoin& r : resolved.rejoins) boots[r.proc].push_back(r.time);
  std::vector<std::vector<std::pair<Cost, Cost>>> windows(procs);
  for (ProcId p = 0; p < procs; ++p) {
    std::sort(deaths[p].begin(), deaths[p].end());
    std::sort(boots[p].begin(), boots[p].end());
    for (std::size_t i = 0; i < deaths[p].size(); ++i)
      windows[p].push_back({deaths[p][i], i < boots[p].size()
                                              ? boots[p][i]
                                              : kInfiniteTime});
  }
  return windows;
}

bool alive_at(const std::vector<std::vector<std::pair<Cost, Cost>>>& windows,
              ProcId p, Cost t) {
  for (const auto& w : windows[p])
    if (t >= w.first && t < w.second) return false;
  return true;
}

// --- audit-event-order ------------------------------------------------------

void event_order_rule(const TaskGraph& g, const RuntimeResult& result,
                      Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  const TaskId n = g.num_tasks();
  const std::vector<SimEvent>& events = result.events;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SimEvent& ev = events[i];
    auto bad = [&](const std::string& what) {
      Diagnostic& d = sink.emit(kEventOrder, Severity::kError);
      d.step = i;
      d.message = "event " + std::to_string(i) + " (" +
                  kind_name(ev.kind) + "): " + what;
      d.hint = "the event log must be canonical: finite non-negative "
               "timestamps, ids in range, link endpoints proc < proc2, "
               "sorted by SimEvent::key() with no duplicate keys";
    };
    if (!std::isfinite(ev.time) || ev.time < 0.0) {
      bad("timestamp " + format_compact(ev.time) +
          " is not finite and non-negative");
      continue;
    }
    const int kind = static_cast<int>(ev.kind);
    if (kind < 0 || kind > static_cast<int>(SimEventKind::kLinkHealed)) {
      bad("unknown event kind " + std::to_string(kind));
      continue;
    }
    switch (ev.kind) {
      case SimEventKind::kFailure:
      case SimEventKind::kRejoin:
      case SimEventKind::kSlowdownBegin:
      case SimEventKind::kSlowdownEnd:
        if (ev.proc >= procs)
          bad("processor p" + std::to_string(ev.proc) + " is out of range");
        if (ev.task != kInvalidTask || ev.task2 != kInvalidTask)
          bad("machine-level event names a task");
        break;
      case SimEventKind::kTaskKilled:
        if (ev.proc >= procs)
          bad("processor p" + std::to_string(ev.proc) + " is out of range");
        if (ev.task >= n) bad("killed task is out of range");
        break;
      case SimEventKind::kMessageDropped:
        if (ev.proc >= procs)
          bad("processor p" + std::to_string(ev.proc) + " is out of range");
        if (ev.task >= n || ev.task2 >= n)
          bad("dropped message names an out-of-range task");
        break;
      case SimEventKind::kLinkPartitioned:
      case SimEventKind::kLinkHealed:
        if (ev.proc >= procs || ev.proc2 >= procs || ev.proc >= ev.proc2)
          bad("link endpoints are not canonical (proc < proc2, in range)");
        if (ev.task != kInvalidTask || ev.task2 != kInvalidTask)
          bad("link event names a task");
        break;
    }
    if (i == 0) continue;
    const SimEvent& prev = events[i - 1];
    if (ev.key() < prev.key()) {
      Diagnostic& d = sink.emit(kEventOrder, Severity::kError);
      d.step = i;
      d.expected = prev.time;
      d.actual = ev.time;
      d.message = "event " + std::to_string(i) + " (" + kind_name(ev.kind) +
                  " at " + format_compact(ev.time) +
                  ") sorts before its predecessor (" + kind_name(prev.kind) +
                  " at " + format_compact(prev.time) + ")";
      d.hint = "the simulator sorts its log by SimEvent::key(); an unsorted "
               "log breaks digest stability and every consumer that replays "
               "it in order";
    } else if (ev.key() == prev.key()) {
      Diagnostic& d = sink.emit(kEventOrder, Severity::kError);
      d.step = i;
      d.message = "event " + std::to_string(i) + " duplicates the key of "
                  "its predecessor (" + kind_name(ev.kind) + " at " +
                  format_compact(ev.time) + ")";
      d.hint = "SimEvent::key() is an identity: the same observation must "
               "not be logged twice";
    }
  }
}

// --- audit-liveness-pairing -------------------------------------------------

void liveness_pairing_rule(const ResolvedFaults& resolved,
                           const RuntimeResult& result, Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  std::multiset<std::pair<ProcId, Cost>> want_failures;
  std::multiset<std::pair<ProcId, Cost>> want_rejoins;
  for (const ProcFailure& f : resolved.failures)
    want_failures.insert({f.proc, f.time});
  for (const ProcRejoin& r : resolved.rejoins)
    want_rejoins.insert({r.proc, r.time});

  // Per-processor (time, is_rejoin) sequences, sorted — the pairing checks
  // are deliberately order-insensitive so a merely unsorted log fires only
  // audit-event-order.
  std::vector<std::vector<std::pair<Cost, int>>> seq(procs);
  for (const SimEvent& ev : result.events) {
    const bool fail = ev.kind == SimEventKind::kFailure;
    const bool boot = ev.kind == SimEventKind::kRejoin;
    if (!fail && !boot) continue;
    if (ev.proc >= procs) continue;  // audit-event-order owns range errors
    auto& want = fail ? want_failures : want_rejoins;
    const auto it = want.find({ev.proc, ev.time});
    if (it != want.end()) {
      want.erase(it);
    } else {
      Diagnostic& d = sink.emit(kLivenessPairing, Severity::kError);
      d.proc = ev.proc;
      d.actual = ev.time;
      d.message = std::string(fail ? "failure" : "rejoin") + " of p" +
                  std::to_string(ev.proc) + " at " +
                  format_compact(ev.time) +
                  " has no counterpart in the resolved fault plan";
      d.hint = "every kFailure/kRejoin event must correspond to exactly one "
               "resolved kill/rejoin window (resolve_faults)";
    }
    seq[ev.proc].push_back({ev.time, boot ? 1 : 0});
  }
  for (const auto& [proc, time] : want_failures) {
    Diagnostic& d = sink.emit(kLivenessPairing, Severity::kError);
    d.proc = proc;
    d.expected = time;
    d.message = "resolved failure of p" + std::to_string(proc) + " at " +
                format_compact(time) + " is missing from the event log";
    d.hint = "machine-level events are emitted unconditionally from the "
             "resolved plan; a missing one means the log was truncated or "
             "tampered with";
  }
  for (const auto& [proc, time] : want_rejoins) {
    Diagnostic& d = sink.emit(kLivenessPairing, Severity::kError);
    d.proc = proc;
    d.expected = time;
    d.message = "resolved rejoin of p" + std::to_string(proc) + " at " +
                format_compact(time) + " is missing from the event log";
    d.hint = "machine-level events are emitted unconditionally from the "
             "resolved plan; a missing one means the log was truncated or "
             "tampered with";
  }
  for (ProcId p = 0; p < procs; ++p) {
    std::sort(seq[p].begin(), seq[p].end());
    int expect = 0;  // 0 = failure next, 1 = rejoin next
    Cost prev = -kInfiniteTime;
    for (const auto& [time, is_rejoin] : seq[p]) {
      if (is_rejoin != expect) {
        Diagnostic& d = sink.emit(kLivenessPairing, Severity::kError);
        d.proc = p;
        d.actual = time;
        d.message = std::string(is_rejoin != 0 ? "rejoin" : "failure") +
                    " of p" + std::to_string(p) + " at " +
                    format_compact(time) +
                    (is_rejoin != 0 ? " without a preceding failure"
                                    : " while already observed dead");
        d.hint = "kill/rejoin events of one processor must strictly "
                 "alternate, starting with a failure";
        continue;  // keep the expected phase: one orphan, one diagnostic
      }
      if (time <= prev) {
        Diagnostic& d = sink.emit(kLivenessPairing, Severity::kError);
        d.proc = p;
        d.actual = time;
        d.message = "kill/rejoin events of p" + std::to_string(p) +
                    " do not strictly increase in time";
        d.hint = "kill/rejoin windows of one processor are disjoint by "
                 "construction (FaultPlan::validate)";
      }
      prev = time;
      expect = 1 - expect;
    }
  }
}

// --- audit-partition-pairing ------------------------------------------------

void partition_pairing_rule(const std::vector<LinkOutage>& outages,
                            const RuntimeResult& result, Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  using Link = std::pair<ProcId, ProcId>;
  std::multiset<std::tuple<ProcId, ProcId, Cost>> want_cuts;
  std::multiset<std::tuple<ProcId, ProcId, Cost>> want_heals;
  for (const LinkOutage& w : outages) {
    want_cuts.insert({w.a, w.b, w.time});
    if (w.until != kInfiniteTime) want_heals.insert({w.a, w.b, w.until});
  }
  std::map<Link, std::vector<std::pair<Cost, int>>> seq;
  for (const SimEvent& ev : result.events) {
    const bool cut = ev.kind == SimEventKind::kLinkPartitioned;
    const bool heal = ev.kind == SimEventKind::kLinkHealed;
    if (!cut && !heal) continue;
    if (ev.proc >= procs || ev.proc2 >= procs || ev.proc >= ev.proc2)
      continue;  // audit-event-order owns canonical-form errors
    auto& want = cut ? want_cuts : want_heals;
    const auto it = want.find({ev.proc, ev.proc2, ev.time});
    if (it != want.end()) {
      want.erase(it);
    } else {
      Diagnostic& d = sink.emit(kPartitionPairing, Severity::kError);
      d.proc = ev.proc;
      d.actual = ev.time;
      d.message = std::string(cut ? "link-partitioned" : "link-healed") +
                  " p" + std::to_string(ev.proc) + "~p" +
                  std::to_string(ev.proc2) + " at " +
                  format_compact(ev.time) +
                  " has no counterpart in the resolved outage windows";
      d.hint = "every link event must correspond to exactly one canonical "
               "outage window (resolve_partitions)";
    }
    seq[{ev.proc, ev.proc2}].push_back({ev.time, heal ? 1 : 0});
  }
  for (const auto& [a, b, time] : want_cuts) {
    Diagnostic& d = sink.emit(kPartitionPairing, Severity::kError);
    d.proc = a;
    d.expected = time;
    d.message = "resolved partition of p" + std::to_string(a) + "~p" +
                std::to_string(b) + " at " + format_compact(time) +
                " is missing from the event log";
    d.hint = "link events are emitted unconditionally from the resolved "
             "outage windows";
  }
  for (const auto& [a, b, time] : want_heals) {
    Diagnostic& d = sink.emit(kPartitionPairing, Severity::kError);
    d.proc = a;
    d.expected = time;
    d.message = "resolved heal of p" + std::to_string(a) + "~p" +
                std::to_string(b) + " at " + format_compact(time) +
                " is missing from the event log";
    d.hint = "link events are emitted unconditionally from the resolved "
             "outage windows";
  }
  for (auto& [link, entries] : seq) {
    std::sort(entries.begin(), entries.end());
    int expect = 0;  // 0 = cut next, 1 = heal next
    Cost prev = -kInfiniteTime;
    for (const auto& [time, is_heal] : entries) {
      if (is_heal != expect) {
        Diagnostic& d = sink.emit(kPartitionPairing, Severity::kError);
        d.proc = link.first;
        d.actual = time;
        d.message = std::string(is_heal != 0 ? "heal" : "cut") + " of p" +
                    std::to_string(link.first) + "~p" +
                    std::to_string(link.second) + " at " +
                    format_compact(time) +
                    (is_heal != 0 ? " without a preceding cut"
                                  : " while the link is already cut");
        d.hint = "cut/heal events of one link must strictly alternate, "
                 "starting with a cut (windows are merged and disjoint)";
        continue;
      }
      if (time <= prev) {
        Diagnostic& d = sink.emit(kPartitionPairing, Severity::kError);
        d.proc = link.first;
        d.actual = time;
        d.message = "cut/heal events of p" + std::to_string(link.first) +
                    "~p" + std::to_string(link.second) +
                    " do not strictly increase in time";
        d.hint = "canonical outage windows of one link are disjoint and "
                 "sorted";
      }
      prev = time;
      expect = 1 - expect;
    }
  }
}

// --- audit-partition-drop ---------------------------------------------------

void partition_drop_rule(const TaskGraph& g, const FaultPlan& world,
                         const std::vector<LinkOutage>& outages,
                         const RuntimeResult& result,
                         const AuditOptions& opt, Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  const TaskId n = g.num_tasks();
  std::vector<std::size_t> edge_offset(n + 1, 0);
  for (TaskId t = 0; t < n; ++t)
    edge_offset[t + 1] = edge_offset[t] + g.out_degree(t);

  std::size_t drops = 0;
  std::size_t partition_drops = 0;
  std::multiset<std::pair<TaskId, TaskId>> logged_pairs;
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const SimEvent& ev = result.events[i];
    if (ev.kind != SimEventKind::kMessageDropped) continue;
    if (ev.task >= n || ev.task2 >= n || ev.proc >= procs)
      continue;  // audit-event-order owns range errors
    ++drops;
    logged_pairs.insert({ev.task, ev.task2});
    auto bad = [&](const std::string& what, const std::string& hint) {
      Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
      d.task = ev.task;
      d.proc = ev.proc;
      d.step = i;
      d.message = "dropped message t" + std::to_string(ev.task) + " -> t" +
                  std::to_string(ev.task2) + " at " +
                  format_compact(ev.time) + ": " + what;
      d.hint = hint;
    };
    const auto succs = g.successors(ev.task);
    std::size_t pos = succs.size();
    for (std::size_t k = 0; k < succs.size(); ++k)
      if (succs[k].node == ev.task2) {
        pos = k;
        break;
      }
    if (pos == succs.size()) {
      bad("the graph has no such edge",
          "a drop event must name an existing (producer, consumer) edge");
      continue;
    }
    if (!result.schedule.is_scheduled(ev.task) ||
        !result.schedule.is_scheduled(ev.task2)) {
      bad("producer or consumer is not scheduled",
          "the final continuation must place both endpoints of a dropped "
          "message");
      continue;
    }
    const ProcId from = result.schedule.proc(ev.task);
    const ProcId to = result.schedule.proc(ev.task2);
    if (from != ev.proc) {
      bad("the event names p" + std::to_string(ev.proc) +
              " but the final schedule runs the producer on p" +
              std::to_string(from),
          "a drop is observed by the producer's processor");
      continue;
    }
    if (from == to) {
      bad("producer and consumer are colocated — a local edge sends no "
          "message",
          "only remote edges resolve message fates");
      continue;
    }
    const Cost finish = ev.task < result.execution.finish.size()
                            ? result.execution.finish[ev.task]
                            : kUndefinedTime;
    if (finish == kUndefinedTime || !std::isfinite(finish)) {
      bad("the producer never finished in the final execution",
          "a message is only emitted — and can only be dropped — at its "
          "producer's completion");
      continue;
    }
    const MessageOutcome fate =
        resolve_message(world, edge_offset[ev.task] + pos);
    if (fate.dropped) {
      const Cost expected = finish + fate.retry_delay;
      if (!near(ev.time, expected, opt.tolerance)) {
        Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
        d.task = ev.task;
        d.proc = ev.proc;
        d.step = i;
        d.expected = expected;
        d.actual = ev.time;
        d.message = "retry-exhausted drop t" + std::to_string(ev.task) +
                    " -> t" + std::to_string(ev.task2) +
                    " is logged at " + format_compact(ev.time) +
                    " but the exhausted timeouts expire at " +
                    format_compact(expected);
        d.hint = "the sender observes a retry-exhausted loss once all "
                 "timeouts have expired: producer finish + retry_delay";
      }
      continue;
    }
    // Not a retry exhaustion: the only legitimate cause left is a full
    // partition with no detour and no future heal at the send instant.
    const Cost send_start = finish + fate.retry_delay;
    ++partition_drops;
    if (!link_partitioned(outages, from, to, send_start)) {
      bad("the direct link p" + std::to_string(from) + "~p" +
              std::to_string(to) + " is up at the send instant " +
              format_compact(send_start),
          "a partition drop requires the direct link to be cut when the "
          "message is sent");
      continue;
    }
    if (reroute_hops(outages, procs, from, to, send_start) != 0) {
      bad("a live detour connects the endpoints at the send instant",
          "the simulator reroutes over live paths; only fully disconnected "
          "endpoints drop");
      continue;
    }
    Cost heal = kInfiniteTime;
    for (const LinkOutage& w : outages)
      if (w.until != kInfiniteTime && w.until > send_start && w.until < heal &&
          reroute_hops(outages, procs, from, to, w.until) > 0)
        heal = w.until;
    if (heal != kInfiniteTime) {
      bad("a heal at " + format_compact(heal) + " restores a path — the "
          "message should have been held back, not dropped",
          "the simulator holds a disconnected message to the earliest heal "
          "that restores a path");
      continue;
    }
    if (!near(ev.time, send_start, opt.tolerance)) {
      Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
      d.task = ev.task;
      d.proc = ev.proc;
      d.step = i;
      d.expected = send_start;
      d.actual = ev.time;
      d.message = "partition drop t" + std::to_string(ev.task) + " -> t" +
                  std::to_string(ev.task2) + " is logged at " +
                  format_compact(ev.time) + " but the send instant is " +
                  format_compact(send_start);
      d.hint = "a partition drop is observed at the send instant itself";
    }
  }

  const SimResult& ex = result.execution;
  if (drops != ex.dropped_messages) {
    Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
    d.expected = static_cast<Cost>(ex.dropped_messages);
    d.actual = static_cast<Cost>(drops);
    d.message = "the log records " + std::to_string(drops) +
                " dropped messages but the execution counted " +
                std::to_string(ex.dropped_messages);
    d.hint = "every permanent loss emits exactly one kMessageDropped event";
  }
  if (partition_drops != ex.partition_dropped) {
    Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
    d.expected = static_cast<Cost>(ex.partition_dropped);
    d.actual = static_cast<Cost>(partition_drops);
    d.message = "the log implies " + std::to_string(partition_drops) +
                " partition drops but the execution counted " +
                std::to_string(ex.partition_dropped);
    d.hint = "a drop whose message fate is not `dropped` can only be a "
             "partition drop";
  }
  std::multiset<std::pair<TaskId, TaskId>> executed_pairs(
      ex.dropped_edges.begin(), ex.dropped_edges.end());
  if (logged_pairs != executed_pairs) {
    Diagnostic& d = sink.emit(kPartitionDrop, Severity::kError);
    d.message = "the (producer, consumer) pairs of the drop events disagree "
                "with SimResult::dropped_edges";
    d.hint = "dropped_edges and the kMessageDropped events describe the "
             "same losses and must match as multisets";
  }
}

// --- audit-belief-causality -------------------------------------------------

void belief_causality_rule(const FaultPlan& world, const FailureDetector& det,
                           const RuntimeResult& result,
                           const AuditOptions& opt, Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  const std::vector<BeliefEvent>& beliefs = result.beliefs;
  std::vector<int> level(procs, 0);
  Cost prev = -kInfiniteTime;
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    const BeliefEvent& b = beliefs[i];
    auto bad = [&](const std::string& what, const std::string& hint) {
      Diagnostic& d = sink.emit(kBeliefCausality, Severity::kError);
      d.proc = b.proc;
      d.step = i;
      d.message = "belief " + std::to_string(i) + " (p" +
                  std::to_string(b.proc) + " at " + format_compact(b.time) +
                  "): " + what;
      d.hint = hint;
    };
    if (!std::isfinite(b.time) || b.time < 0.0) {
      bad("timestamp is not finite and non-negative",
          "belief timestamps are arrival/threshold instants, always finite");
      continue;
    }
    if (b.proc >= procs) {
      bad("subject processor is out of range",
          "beliefs name processors of the audited machine");
      continue;
    }
    if (b.time < prev) {
      Diagnostic& d = sink.emit(kBeliefCausality, Severity::kError);
      d.proc = b.proc;
      d.step = i;
      d.expected = prev;
      d.actual = b.time;
      d.message = "belief " + std::to_string(i) + " at " +
                  format_compact(b.time) +
                  " precedes an earlier consumed belief at " +
                  format_compact(prev);
      d.hint = "the controller consumes the prefix-stable belief stream in "
               "time order; a regression means the stream was reordered";
    }
    prev = std::max(prev, b.time);
    switch (b.kind) {
      case BeliefKind::kSuspected:
        if (level[b.proc] != 0)
          bad("suspected while already suspected or confirmed",
              "a suspicion opens from the trusted state only; suspect -> "
              "confirm -> exonerate is the legal order");
        level[b.proc] = 1;
        break;
      case BeliefKind::kConfirmedDead:
        if (level[b.proc] != 1)
          bad("confirmed dead without an open suspicion",
              "a confirmation must escalate an existing suspicion — the "
              "accrual score crosses suspect_after before confirm_after");
        level[b.proc] = 2;
        break;
      case BeliefKind::kExonerated:
        if (level[b.proc] == 0)
          bad("exonerated while not suspected",
              "an exoneration closes an open suspicion or confirmation");
        level[b.proc] = 0;
        break;
    }
  }

  if (beliefs.empty()) return;
  const Cost horizon = prev;
  if (!opt.use_gossip) {
    // The consumed stream must be exactly a prefix of the re-derived
    // observer-0 stream (prefix stability is what makes incremental
    // consumption sound). The gossip aggregate is instead audited by
    // audit-quorum-soundness, observer by observer.
    const std::vector<BeliefEvent> stream = det.beliefs(horizon);
    for (std::size_t i = 0; i < beliefs.size(); ++i) {
      const BeliefEvent& b = beliefs[i];
      if (i >= stream.size() || stream[i].key() != b.key() ||
          !near(stream[i].last_heard, b.last_heard, opt.tolerance) ||
          !near(stream[i].score, b.score, opt.tolerance)) {
        Diagnostic& d = sink.emit(kBeliefCausality, Severity::kError);
        d.proc = b.proc;
        d.step = i;
        d.actual = b.time;
        d.message = "consumed belief " + std::to_string(i) + " (p" +
                    std::to_string(b.proc) + " at " +
                    format_compact(b.time) +
                    ") is not the corresponding event of the re-derived "
                    "detector stream";
        d.hint = "FailureDetector::beliefs is a pure function of (plan, "
                 "procs); the consumed stream must be one of its prefixes";
        break;  // one desynchronization, one diagnostic
      }
    }
    // Exoneration audibility: re-derive the arrival process from the raw
    // heartbeat config — every exoneration must coincide with a beat that
    // actually arrived.
    const Cost period = world.heartbeat.period;
    for (std::size_t i = 0; i < beliefs.size(); ++i) {
      const BeliefEvent& b = beliefs[i];
      if (b.kind != BeliefKind::kExonerated) continue;
      const auto kmax = static_cast<std::uint64_t>(b.time / period) + 2;
      bool audible = false;
      for (std::uint64_t k = 1; k <= kmax && !audible; ++k)
        audible = near(det.arrival(b.proc, k), b.time, opt.tolerance);
      if (!audible) {
        Diagnostic& d = sink.emit(kBeliefCausality, Severity::kError);
        d.proc = b.proc;
        d.step = i;
        d.actual = b.time;
        d.message = "exoneration of p" + std::to_string(b.proc) + " at " +
                    format_compact(b.time) +
                    " coincides with no audible heartbeat arrival";
        d.hint = "only an arriving heartbeat can exonerate a suspect; lost "
                 "and partition-cut beats are inaudible";
      }
    }
  }
}

// --- audit-quorum-soundness -------------------------------------------------

void quorum_soundness_rule(
    const FailureDetector& det,
    const std::vector<std::vector<std::pair<Cost, Cost>>>& down,
    const std::vector<LinkOutage>& outages, const RuntimeResult& result,
    const AuditOptions& opt, Sink& sink) {
  const ProcId procs = result.schedule.num_procs();
  const std::vector<BeliefEvent>& beliefs = result.beliefs;
  Cost horizon = 0.0;
  for (const BeliefEvent& b : beliefs)
    if (std::isfinite(b.time)) horizon = std::max(horizon, b.time);
  // Per-observer streams, re-derived once; prefix-stable, so the level an
  // observer holds at any t <= horizon is a scan of its stream.
  std::vector<std::vector<BeliefEvent>> views(procs);
  for (ProcId o = 0; o < procs; ++o) views[o] = det.beliefs(o, horizon);

  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    const BeliefEvent& b = beliefs[i];
    if (b.proc >= procs || !std::isfinite(b.time)) continue;
    const bool confirm = b.kind == BeliefKind::kConfirmedDead;
    if (b.kind != BeliefKind::kSuspected && !confirm) continue;
    const int need = confirm ? 2 : 1;
    ProcId concurring = 0;
    for (ProcId o = 0; o < procs; ++o) {
      if (o == b.proc) continue;
      if (!alive_at(down, o, b.time)) continue;
      if (link_partitioned(outages, o, b.proc, b.time)) continue;
      int level = 0;
      for (const BeliefEvent& v : views[o]) {
        if (v.time > b.time) break;
        if (v.proc != b.proc) continue;
        level = v.kind == BeliefKind::kExonerated     ? 0
                : v.kind == BeliefKind::kSuspected    ? 1
                                                      : 2;
      }
      if (level >= need) ++concurring;
    }
    if (concurring < opt.quorum) {
      Diagnostic& d = sink.emit(kQuorumSoundness, Severity::kError);
      d.proc = b.proc;
      d.step = i;
      d.expected = static_cast<Cost>(opt.quorum);
      d.actual = static_cast<Cost>(concurring);
      d.message = std::string(confirm ? "confirmation" : "suspicion") +
                  " of p" + std::to_string(b.proc) + " at " +
                  format_compact(b.time) + " is backed by only " +
                  std::to_string(concurring) +
                  " eligible concurring observer(s)";
      d.hint = "a cluster-wide belief requires >= quorum observers that are "
               "alive with an uncut direct link to the subject and whose "
               "own re-derived streams concur";
    }
  }
}

// --- audit-reservation-overlap ----------------------------------------------

void reservation_overlap_rule(
    const std::vector<platform::LinkOccupancy>& occupancies,
    const AuditOptions& opt, Sink& sink) {
  std::map<std::size_t, std::vector<std::pair<Cost, Cost>>> per_link;
  for (std::size_t i = 0; i < occupancies.size(); ++i) {
    const platform::LinkOccupancy& r = occupancies[i];
    if (!std::isfinite(r.begin) || !std::isfinite(r.end) || r.begin < 0.0 ||
        r.end < r.begin) {
      Diagnostic& d = sink.emit(kReservationOverlap, Severity::kError);
      d.step = i;
      d.message = "reservation " + std::to_string(i) + " on link " +
                  std::to_string(r.link) + " is malformed ([" +
                  format_compact(r.begin) + ", " + format_compact(r.end) +
                  "))";
      d.hint = "a LinkOccupancy interval must be finite with 0 <= begin <= "
               "end";
      continue;
    }
    per_link[r.link].push_back({r.begin, r.end});
  }
  for (auto& [link, intervals] : per_link) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      if (intervals[i].first < intervals[i - 1].second - opt.tolerance) {
        Diagnostic& d = sink.emit(kReservationOverlap, Severity::kError);
        d.expected = intervals[i - 1].second;
        d.actual = intervals[i].first;
        d.message = "link " + std::to_string(link) + " reservations [" +
                    format_compact(intervals[i - 1].first) + ", " +
                    format_compact(intervals[i - 1].second) + ") and [" +
                    format_compact(intervals[i].first) + ", " +
                    format_compact(intervals[i].second) + ") overlap";
        d.hint = "link-busy pricing reserves each link exclusively; "
                 "overlapping reservations mean a transfer was priced over "
                 "bandwidth already committed";
      }
    }
  }
}

// --- audit-checkpoint-provenance --------------------------------------------

void checkpoint_provenance_rule(const TaskGraph& g, const FaultPlan& world,
                                const RuntimeResult& result,
                                const AuditOptions& opt, Sink& sink) {
  const TaskId n = g.num_tasks();
  const std::vector<Cost> bl = bottom_levels(g);
  // Last kill event per task — SimResult::checkpointed keeps the last
  // claim, so that is the one that must agree.
  std::vector<std::size_t> last_kill(n, static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < result.events.size(); ++i) {
    const SimEvent& ev = result.events[i];
    if (ev.kind != SimEventKind::kTaskKilled || ev.task >= n) continue;
    last_kill[ev.task] = i;
    auto bad = [&](const std::string& what, const std::string& hint) {
      Diagnostic& d = sink.emit(kCheckpointProvenance, Severity::kError);
      d.task = ev.task;
      d.proc = ev.proc;
      d.step = i;
      d.actual = ev.value;
      d.message = "kill of t" + std::to_string(ev.task) + " at " +
                  format_compact(ev.time) + " claims " +
                  format_compact(ev.value) + " checkpointed work: " + what;
      d.hint = hint;
    };
    if (!std::isfinite(ev.value) || ev.value < 0.0) {
      bad("the claim is not finite and non-negative",
          "durably checkpointed work is a non-negative amount of "
          "computation");
      continue;
    }
    Cost bound = g.comp(ev.task) * runtime_factor(world, ev.task);
    if (ev.task < result.durations.size() &&
        result.durations[ev.task] != kUndefinedTime &&
        std::isfinite(result.durations[ev.task]))
      bound = std::max(bound, result.durations[ev.task]);
    if (ev.value > bound + opt.tolerance) {
      Diagnostic& d = sink.emit(kCheckpointProvenance, Severity::kError);
      d.task = ev.task;
      d.proc = ev.proc;
      d.step = i;
      d.expected = bound;
      d.actual = ev.value;
      d.message = "kill of t" + std::to_string(ev.task) + " claims " +
                  format_compact(ev.value) +
                  " checkpointed work but the task never ran more than " +
                  format_compact(bound);
      d.hint = "resumed work must not exceed the work the task ever "
               "performed — an inflated claim would resurrect computation "
               "that never happened";
    }
    if (ev.value > opt.tolerance && !world.checkpoint.enabled())
      bad("the plan checkpoints nothing",
          "with checkpointing disabled a killed task restarts from zero");
    else if (ev.value > opt.tolerance && !world.checkpoint.covers(bl[ev.task]))
      bad("the criticality threshold does not cover this task",
          "CheckpointPolicy::min_downstream gates durable writes by bottom "
          "level; an uncovered task can save nothing");
  }
  for (TaskId t = 0; t < n; ++t) {
    const Cost recorded = t < result.execution.checkpointed.size()
                              ? result.execution.checkpointed[t]
                              : 0.0;
    if (last_kill[t] == static_cast<std::size_t>(-1)) {
      if (recorded > opt.tolerance) {
        Diagnostic& d = sink.emit(kCheckpointProvenance, Severity::kError);
        d.task = t;
        d.actual = recorded;
        d.message = "t" + std::to_string(t) + " records " +
                    format_compact(recorded) +
                    " checkpointed work but the log has no kill event for "
                    "it";
        d.hint = "SimResult::checkpointed is written only when a kill is "
                 "observed";
      }
      continue;
    }
    const SimEvent& ev = result.events[last_kill[t]];
    if (!near(ev.value, recorded, opt.tolerance)) {
      Diagnostic& d = sink.emit(kCheckpointProvenance, Severity::kError);
      d.task = t;
      d.step = last_kill[t];
      d.expected = recorded;
      d.actual = ev.value;
      d.message = "the last kill of t" + std::to_string(t) + " claims " +
                  format_compact(ev.value) +
                  " checkpointed work but the execution recorded " +
                  format_compact(recorded);
      d.hint = "the final kill event and SimResult::checkpointed describe "
               "the same durable state";
    }
  }
}

// --- audit-repair-provenance ------------------------------------------------

void repair_provenance_rule(const RuntimeResult& result,
                            const AuditOptions& opt, Sink& sink) {
  std::set<std::tuple<Cost, int, ProcId, TaskId, TaskId, ProcId>> log_keys;
  for (const SimEvent& ev : result.events) log_keys.insert(ev.key());
  Cost prev_horizon = -kInfiniteTime;
  for (std::size_t i = 0; i < result.repairs.size(); ++i) {
    const RepairInvocation& inv = result.repairs[i];
    auto bad = [&](const std::string& what, const std::string& hint) {
      Diagnostic& d = sink.emit(kRepairProvenance, Severity::kError);
      d.step = i;
      d.message = "repair " + std::to_string(i) + " (observed at " +
                  format_compact(inv.observed_at) + "): " + what;
      d.hint = hint;
    };
    const std::size_t batched = inv.batch.size() + inv.batch_beliefs.size();
    if (batched == 0) {
      bad("traces to an empty observation batch",
          "the controller reacts only to observations; a repair with no "
          "batch has no cause");
      continue;
    }
    if (inv.events != batched)
      bad("claims " + std::to_string(inv.events) + " coalesced events but "
              "its batch holds " + std::to_string(batched),
          "RepairInvocation::events counts exactly the batched "
          "observations");
    Cost earliest = kInfiniteTime;
    Cost latest = -kInfiniteTime;
    for (const SimEvent& ev : inv.batch) {
      earliest = std::min(earliest, ev.time);
      latest = std::max(latest, ev.time);
      if (machine_level(ev.kind) && log_keys.count(ev.key()) == 0)
        bad("batched " + std::string(kind_name(ev.kind)) + " at " +
                format_compact(ev.time) +
                " does not appear in the final event log",
            "machine-level events are schedule-independent: one the "
            "controller consumed must exist in every execution's log");
    }
    for (const BeliefEvent& b : inv.batch_beliefs) {
      earliest = std::min(earliest, b.time);
      latest = std::max(latest, b.time);
    }
    if (!near(earliest, inv.observed_at, opt.tolerance))
      bad("its earliest batched observation is at " +
              format_compact(earliest) + ", not the claimed " +
              format_compact(inv.observed_at),
          "observed_at is the timestamp of the batch's first new "
          "observation");
    if (latest > inv.observed_at + opt.debounce + opt.tolerance)
      bad("a batched observation at " + format_compact(latest) +
              " lies beyond the debounce window ending at " +
              format_compact(inv.observed_at + opt.debounce),
          "a batch spans [observed_at, observed_at + debounce]");
    if (inv.horizon + opt.tolerance < inv.observed_at + opt.debounce)
      bad("its horizon " + format_compact(inv.horizon) +
              " does not cover the debounce window",
          "the repair horizon is at least the end of the window the "
          "controller waited out");
    if (inv.horizon < prev_horizon - opt.tolerance)
      bad("its horizon " + format_compact(inv.horizon) +
              " regresses below the previous reaction's " +
              format_compact(prev_horizon),
          "observation horizons only grow (HorizonFaultView::advance is "
          "monotone)");
    prev_horizon = std::max(prev_horizon, inv.horizon);
    if (!opt.use_detector && !inv.batch_beliefs.empty())
      bad("batched beliefs without detector mode",
          "only the detector loop consumes beliefs");
    if (inv.deferred && inv.schedule_digest != 0)
      bad("is deferred but carries a schedule digest",
          "a deferred reaction installs nothing");
  }
}

// --- audit-result-consistency -----------------------------------------------

void result_consistency_rule(const FaultPlan& world,
                             const RuntimeResult& result,
                             const AuditOptions& opt, Sink& sink) {
  auto bad = [&](const std::string& what, const std::string& hint,
                 Cost expected, Cost actual) {
    Diagnostic& d = sink.emit(kResultConsistency, Severity::kError);
    d.expected = expected;
    d.actual = actual;
    d.message = what;
    d.hint = hint;
  };
  const std::uint64_t event_digest =
      runtime::fnv1a_digest(runtime::event_log_text(result.events));
  if (event_digest != result.event_digest)
    bad("the recomputed event-log digest disagrees with the recorded one",
        "RuntimeResult::event_digest is FNV-1a over event_log_text(events)",
        kUndefinedTime, kUndefinedTime);
  const std::uint64_t schedule_digest =
      runtime::fnv1a_digest(to_schedule_text(result.schedule));
  if (schedule_digest != result.schedule_digest)
    bad("the recomputed schedule digest disagrees with the recorded one",
        "RuntimeResult::schedule_digest is FNV-1a over the final schedule "
        "text",
        kUndefinedTime, kUndefinedTime);
  const bool detector_ok = opt.use_detector && world.heartbeat.enabled();
  if (detector_ok) {
    const std::uint64_t belief_digest =
        runtime::fnv1a_digest(runtime::belief_log_text(result.beliefs));
    if (belief_digest != result.belief_digest)
      bad("the recomputed belief digest disagrees with the recorded one",
          "RuntimeResult::belief_digest is FNV-1a over "
          "belief_log_text(beliefs)",
          kUndefinedTime, kUndefinedTime);
  } else if (!opt.use_detector &&
             (!result.beliefs.empty() || result.belief_digest != 0)) {
    bad("a non-detector episode carries consumed beliefs",
        "without use_detector the belief stream stays empty and its digest "
        "0",
        0.0, static_cast<Cost>(result.beliefs.size()));
  }

  Cost makespan = 0.0;
  for (const Cost f : result.execution.finish)
    if (f != kUndefinedTime && std::isfinite(f))
      makespan = std::max(makespan, f);
  if (!near(result.execution.makespan, makespan, opt.tolerance))
    bad("the execution's makespan is not the latest completed finish",
        "SimResult::makespan is max finish over completed tasks", makespan,
        result.execution.makespan);
  if (!near(result.makespan, result.execution.makespan, opt.tolerance))
    bad("the result's makespan disagrees with its execution",
        "RuntimeResult::makespan restates the final execution's makespan",
        result.execution.makespan, result.makespan);

  std::vector<TaskId> unfinished;
  for (TaskId t = 0; t < result.execution.finish.size(); ++t)
    if (result.execution.finish[t] == kUndefinedTime)
      unfinished.push_back(static_cast<TaskId>(t));
  if (unfinished != result.execution.unfinished)
    bad("SimResult::unfinished disagrees with the finish array",
        "a task is unfinished iff its finish is undefined",
        static_cast<Cost>(unfinished.size()),
        static_cast<Cost>(result.execution.unfinished.size()));
  if (result.complete != result.execution.complete())
    bad("the completeness flag disagrees with the execution",
        "RuntimeResult::complete restates SimResult::complete()",
        result.execution.complete() ? 1.0 : 0.0, result.complete ? 1.0 : 0.0);
}

}  // namespace

const std::vector<RuleInfo>& audit_rule_catalogue() {
  static const std::vector<RuleInfo> rules = {
      {kConfig, Severity::kError,
       "the audit options describe an episode the plan can produce"},
      {kEventOrder, Severity::kError,
       "the event log is canonical: sorted by key, unique, finite, in range"},
      {kLivenessPairing, Severity::kError,
       "kill/rejoin events match the resolved plan and alternate per "
       "processor"},
      {kPartitionPairing, Severity::kError,
       "cut/heal events match the resolved outage windows and alternate per "
       "link"},
      {kPartitionDrop, Severity::kError,
       "every dropped message re-resolves to an exhausted retry budget or a "
       "genuine no-detour partition cut"},
      {kBeliefCausality, Severity::kError,
       "consumed beliefs are ordered, per-processor legal, a prefix of the "
       "re-derived stream, and exonerations are audible"},
      {kQuorumSoundness, Severity::kError,
       "every cluster-wide suspicion is backed by >= quorum eligible "
       "concurring observers"},
      {kReservationOverlap, Severity::kError,
       "per-link reservations are well-formed and pairwise disjoint"},
      {kCheckpointProvenance, Severity::kError,
       "no kill claims more durably checkpointed work than the task ran or "
       "than the policy covers"},
      {kRepairProvenance, Severity::kError,
       "every repair traces to a debounced batch inside its window, with "
       "monotone horizons"},
      {kResultConsistency, Severity::kError,
       "digests, makespan and completeness restate the audited record"},
      {kSummary, Severity::kInfo, "episode summary"},
  };
  return rules;
}

LintReport audit_runtime(const TaskGraph& g, const FaultPlan& world,
                         const runtime::RuntimeResult& result,
                         const AuditOptions& options) {
  LintReport report;
  Sink sink(report);
  const ProcId procs = result.schedule.num_procs();
  const TaskId n = g.num_tasks();

  if (result.schedule.num_tasks() != n || procs == 0) {
    Diagnostic& d = sink.emit(kConfig, Severity::kError);
    d.message = "the result's schedule does not describe the audited graph "
                "(task count or processor count mismatch)";
    d.hint = "audit the RuntimeResult against the graph and plan of the "
             "same episode";
    return report;
  }
  if (!std::isfinite(options.debounce) || options.debounce < 0.0) {
    Diagnostic& d = sink.emit(kConfig, Severity::kError);
    d.actual = options.debounce;
    d.message = "the debounce window must be finite and non-negative";
    d.hint = "pass the RuntimeOptions::debounce the episode actually used";
    return report;
  }
  if (options.use_gossip && !options.use_detector) {
    Diagnostic& d = sink.emit(kConfig, Severity::kError);
    d.message = "gossip mode implies detector mode";
    d.hint = "use_gossip refines how beliefs are aggregated; without "
             "use_detector there is no belief stream to aggregate";
  }
  const bool detector_ok = options.use_detector && world.heartbeat.enabled();
  if (options.use_detector && !world.heartbeat.enabled()) {
    Diagnostic& d = sink.emit(kConfig, Severity::kError);
    d.message = "detector mode requires the plan's heartbeat section";
    d.hint = "an episode cannot have consumed beliefs from a plan that "
             "emits no heartbeats (heartbeat.period > 0)";
  }
  if (options.use_gossip && options.quorum < 1) {
    Diagnostic& d = sink.emit(kConfig, Severity::kError);
    d.actual = static_cast<Cost>(options.quorum);
    d.message = "the gossip quorum must be >= 1";
    d.hint = "FailureDetector::quorum_beliefs requires a positive quorum";
  }

  const ResolvedFaults resolved = resolve_faults(world);
  const std::vector<LinkOutage> outages = resolve_partitions(world);

  event_order_rule(g, result, sink);
  liveness_pairing_rule(resolved, result, sink);
  partition_pairing_rule(outages, result, sink);
  partition_drop_rule(g, world, outages, result, options, sink);
  checkpoint_provenance_rule(g, world, result, options, sink);
  repair_provenance_rule(result, options, sink);
  if (options.occupancies != nullptr)
    reservation_overlap_rule(*options.occupancies, options, sink);
  if (detector_ok) {
    const FailureDetector det(world, procs);
    belief_causality_rule(world, det, result, options, sink);
    if (options.use_gossip && options.quorum >= 1)
      quorum_soundness_rule(det, down_windows(resolved, procs), outages,
                            result, options, sink);
  }
  result_consistency_rule(world, result, options, sink);

  Diagnostic& d = sink.emit(kSummary, Severity::kInfo);
  d.message = std::to_string(result.events.size()) + " events, " +
              std::to_string(result.beliefs.size()) + " beliefs, " +
              std::to_string(result.repairs.size()) +
              " repairs; makespan " + format_compact(result.makespan) +
              (result.complete ? ", complete" : ", INCOMPLETE");
  d.hint = "summary only — the audited record, not a finding";
  return report;
}

}  // namespace flb::analysis
