#include "flb/graph/dot.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "flb/sched/schedule.hpp"
#include "flb/util/error.hpp"
#include "flb/util/table.hpp"

namespace flb {

namespace {

const char* kProcColors[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                             "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};

void write_header(std::ostream& os, const TaskGraph& g) {
  os << "digraph \"" << (g.name().empty() ? "taskgraph" : g.name())
     << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
}

void write_edges(std::ostream& os, const TaskGraph& g) {
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    for (const Adj& a : g.successors(t))
      os << "  t" << t << " -> t" << a.node << " [label=\""
         << format_compact(a.comm) << "\"];\n";
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& g) {
  write_header(os, g);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    os << "  t" << t << " [label=\"t" << t << "\\n"
       << format_compact(g.comp(t)) << "\"];\n";
  write_edges(os, g);
  os << "}\n";
}

void write_dot(std::ostream& os, const TaskGraph& g, const Schedule& s) {
  write_header(os, g);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    os << "  t" << t << " [label=\"t" << t << "\\n"
       << format_compact(g.comp(t)) << "\"";
    if (s.is_scheduled(t)) {
      ProcId p = s.proc(t);
      os << ", proc=" << p << ", style=filled, fillcolor=\""
         << kProcColors[p % (sizeof kProcColors / sizeof *kProcColors)]
         << "\"";
    }
    os << "];\n";
  }
  write_edges(os, g);
  os << "}\n";
}

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  write_dot(os, g);
  return os.str();
}

namespace {

// --- DOT reader ------------------------------------------------------------

/// Token stream over the DOT subset: punctuation ({ } [ ] = ; ,), the edge
/// arrow, quoted strings (escapes kept raw, so a label's "\n" survives as
/// the two characters backslash + n) and bare identifier/number words.
class DotLexer {
 public:
  explicit DotLexer(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    text_ = buf.str();
  }

  struct Token {
    enum class Kind { kPunct, kArrow, kWord, kString, kEnd };
    Kind kind = Kind::kEnd;
    std::string value;
  };

  Token next() {
    skip_blank_and_comments();
    if (pos_ >= text_.size()) return {};
    const char c = text_[pos_];
    if (c == '{' || c == '}' || c == '[' || c == ']' || c == '=' ||
        c == ';' || c == ',') {
      ++pos_;
      return {Token::Kind::kPunct, std::string(1, c)};
    }
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return {Token::Kind::kArrow, "->"};
    }
    if (c == '"') return quoted();
    return word();
  }

 private:
  void skip_blank_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '*') {
        std::size_t end = text_.find("*/", pos_ + 2);
        FLB_REQUIRE(end != std::string::npos,
                    "read_dot: unterminated /* comment");
        pos_ = end + 2;
      } else {
        return;
      }
    }
  }

  Token quoted() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        // Keep the escape verbatim except for \" and \\ so labels keep
        // their literal "\n" separator.
        const char esc = text_[pos_ + 1];
        if (esc == '"' || esc == '\\') {
          out += esc;
          pos_ += 2;
          continue;
        }
        out += text_[pos_];
        ++pos_;
        continue;
      }
      out += text_[pos_];
      ++pos_;
    }
    FLB_REQUIRE(pos_ < text_.size(), "read_dot: unterminated string literal");
    ++pos_;  // closing quote
    return {Token::Kind::kString, std::move(out)};
  }

  Token word() {
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      const bool word_char =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
          (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '+' ||
          (c == '-' && !(pos_ + 1 < text_.size() && text_[pos_ + 1] == '>'));
      if (!word_char) break;
      out += c;
      ++pos_;
    }
    FLB_REQUIRE(!out.empty(), "read_dot: unexpected character '" +
                                  std::string(1, text_[pos_]) + "'");
    return {Token::Kind::kWord, std::move(out)};
  }

  std::string text_;
  std::size_t pos_ = 0;
};

using DotToken = DotLexer::Token;

double parse_cost(const std::string& text, const char* what) {
  FLB_REQUIRE(!text.empty(), std::string("read_dot: empty ") + what);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  FLB_REQUIRE(end == text.c_str() + text.size(),
              std::string("read_dot: malformed ") + what + " '" + text + "'");
  FLB_REQUIRE(std::isfinite(v) && v >= 0.0,
              std::string("read_dot: ") + what +
                  " must be finite and non-negative, got '" + text + "'");
  return v;
}

/// "t<digits>" -> id. Anything else is rejected.
TaskId parse_node_id(const std::string& word) {
  FLB_REQUIRE(word.size() >= 2 && word[0] == 't',
              "read_dot: node ids must have the form t<number>, got '" +
                  word + "'");
  std::uint64_t id = 0;
  for (std::size_t i = 1; i < word.size(); ++i) {
    const char c = word[i];
    FLB_REQUIRE(c >= '0' && c <= '9',
                "read_dot: node ids must have the form t<number>, got '" +
                    word + "'");
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
    FLB_REQUIRE(id <= 0xffffffffull, "read_dot: node id out of range in '" +
                                         word + "'");
  }
  return static_cast<TaskId>(id);
}

struct DotAttrs {
  bool has_label = false;
  std::string label;
  bool has_cost = false;  // explicit comp= / comm= attribute
  double cost = 0.0;
};

}  // namespace

TaskGraph read_dot(std::istream& is) {
  DotLexer lexer(is);
  DotToken tok = lexer.next();

  // Header: [strict] digraph [name] {
  if (tok.kind == DotToken::Kind::kWord && tok.value == "strict")
    tok = lexer.next();
  FLB_REQUIRE(tok.kind == DotToken::Kind::kWord && tok.value == "digraph",
              "read_dot: input must start with 'digraph'");
  tok = lexer.next();
  std::string name;
  if (tok.kind == DotToken::Kind::kWord ||
      tok.kind == DotToken::Kind::kString) {
    name = tok.value;
    tok = lexer.next();
  }
  FLB_REQUIRE(tok.kind == DotToken::Kind::kPunct && tok.value == "{",
              "read_dot: expected '{' after digraph header");

  // One attribute block: [key=value, key=value ...]. Unknown keys are
  // ignored; label / comp / comm feed the weights.
  auto read_attrs = [&](const char* cost_key) -> DotAttrs {
    DotAttrs attrs;
    DotToken t = lexer.next();
    while (!(t.kind == DotToken::Kind::kPunct && t.value == "]")) {
      FLB_REQUIRE(t.kind == DotToken::Kind::kWord ||
                      t.kind == DotToken::Kind::kString,
                  "read_dot: expected attribute name inside [...]");
      const std::string key = t.value;
      t = lexer.next();
      FLB_REQUIRE(t.kind == DotToken::Kind::kPunct && t.value == "=",
                  "read_dot: expected '=' after attribute '" + key + "'");
      t = lexer.next();
      FLB_REQUIRE(t.kind == DotToken::Kind::kWord ||
                      t.kind == DotToken::Kind::kString,
                  "read_dot: expected a value for attribute '" + key + "'");
      if (key == "label") {
        attrs.has_label = true;
        attrs.label = t.value;
      } else if (key == cost_key) {
        attrs.has_cost = true;
        attrs.cost = parse_cost(t.value, cost_key);
      }
      t = lexer.next();
      if (t.kind == DotToken::Kind::kPunct &&
          (t.value == "," || t.value == ";"))
        t = lexer.next();
    }
    return attrs;
  };

  std::map<TaskId, double> nodes;
  std::vector<Edge> edges;

  tok = lexer.next();
  while (!(tok.kind == DotToken::Kind::kPunct && tok.value == "}")) {
    FLB_REQUIRE(tok.kind != DotToken::Kind::kEnd,
                "read_dot: missing closing '}'");
    if (tok.kind == DotToken::Kind::kPunct && tok.value == ";") {
      tok = lexer.next();
      continue;
    }
    FLB_REQUIRE(tok.kind == DotToken::Kind::kWord ||
                    tok.kind == DotToken::Kind::kString,
                "read_dot: expected a statement");
    const std::string head = tok.value;
    tok = lexer.next();

    // Defaults (node [...]; edge [...]; graph [...]) and bare graph
    // attributes (rankdir=TB) carry no task data — skip them.
    if (head == "node" || head == "edge" || head == "graph") {
      FLB_REQUIRE(tok.kind == DotToken::Kind::kPunct && tok.value == "[",
                  "read_dot: expected '[' after '" + head + "'");
      (void)read_attrs("");
      tok = lexer.next();
      continue;
    }
    if (tok.kind == DotToken::Kind::kPunct && tok.value == "=") {
      tok = lexer.next();
      FLB_REQUIRE(tok.kind == DotToken::Kind::kWord ||
                      tok.kind == DotToken::Kind::kString,
                  "read_dot: expected a value after '" + head + " ='");
      tok = lexer.next();
      continue;
    }

    const TaskId from = parse_node_id(head);
    if (tok.kind == DotToken::Kind::kArrow) {
      tok = lexer.next();
      FLB_REQUIRE(tok.kind == DotToken::Kind::kWord,
                  "read_dot: expected a node id after '->'");
      const TaskId to = parse_node_id(tok.value);
      double comm = 0.0;
      tok = lexer.next();
      if (tok.kind == DotToken::Kind::kPunct && tok.value == "[") {
        const DotAttrs attrs = read_attrs("comm");
        if (attrs.has_cost)
          comm = attrs.cost;
        else if (attrs.has_label)
          comm = parse_cost(attrs.label, "edge label");
        tok = lexer.next();
      }
      edges.push_back({from, to, comm});
      continue;
    }

    // Node statement. The computation cost comes from comp= or from the
    // label's second line ("t3\n2.5" with a literal backslash-n).
    FLB_REQUIRE(tok.kind == DotToken::Kind::kPunct && tok.value == "[",
                "read_dot: node t" + std::to_string(from) +
                    " needs an attribute list with its computation cost");
    const DotAttrs attrs = read_attrs("comp");
    double comp = 0.0;
    if (attrs.has_cost) {
      comp = attrs.cost;
    } else {
      FLB_REQUIRE(attrs.has_label, "read_dot: node t" + std::to_string(from) +
                                       " has neither comp= nor a label");
      const std::size_t sep = attrs.label.find("\\n");
      FLB_REQUIRE(sep != std::string::npos,
                  "read_dot: node label '" + attrs.label +
                      "' lacks the \\n cost separator");
      comp = parse_cost(attrs.label.substr(sep + 2), "node label cost");
    }
    FLB_REQUIRE(nodes.emplace(from, comp).second,
                "read_dot: node t" + std::to_string(from) +
                    " declared twice");
    tok = lexer.next();
  }

  FLB_REQUIRE(!nodes.empty(), "read_dot: graph declares no tasks");
  // Dense ids 0..V-1: the map is ordered, so it suffices to check the span.
  const auto last = std::prev(nodes.end());
  FLB_REQUIRE(last->first == nodes.size() - 1,
              "read_dot: node ids must be dense 0..V-1, got " +
                  std::to_string(nodes.size()) + " nodes with max id t" +
                  std::to_string(last->first));

  TaskGraphBuilder b;
  b.set_name(name.empty() || name == "taskgraph" ? "" : name);
  for (const auto& [id, comp] : nodes) {
    (void)id;
    b.add_task(comp);
  }
  for (const Edge& e : edges) {
    FLB_REQUIRE(e.from < nodes.size() && e.to < nodes.size(),
                "read_dot: edge references undeclared node");
    b.add_edge(e.from, e.to, e.comm);
  }
  return std::move(b).build();
}

TaskGraph dot_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_dot(is);
}

}  // namespace flb
