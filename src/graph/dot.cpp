#include "flb/graph/dot.hpp"

#include <ostream>
#include <sstream>

#include "flb/sched/schedule.hpp"
#include "flb/util/table.hpp"

namespace flb {

namespace {

const char* kProcColors[] = {"#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
                             "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};

void write_header(std::ostream& os, const TaskGraph& g) {
  os << "digraph \"" << (g.name().empty() ? "taskgraph" : g.name())
     << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=circle];\n";
}

void write_edges(std::ostream& os, const TaskGraph& g) {
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    for (const Adj& a : g.successors(t))
      os << "  t" << t << " -> t" << a.node << " [label=\""
         << format_compact(a.comm) << "\"];\n";
}

}  // namespace

void write_dot(std::ostream& os, const TaskGraph& g) {
  write_header(os, g);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    os << "  t" << t << " [label=\"t" << t << "\\n"
       << format_compact(g.comp(t)) << "\"];\n";
  write_edges(os, g);
  os << "}\n";
}

void write_dot(std::ostream& os, const TaskGraph& g, const Schedule& s) {
  write_header(os, g);
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    os << "  t" << t << " [label=\"t" << t << "\\n"
       << format_compact(g.comp(t)) << "\"";
    if (s.is_scheduled(t)) {
      ProcId p = s.proc(t);
      os << ", proc=" << p << ", style=filled, fillcolor=\""
         << kProcColors[p % (sizeof kProcColors / sizeof *kProcColors)]
         << "\"";
    }
    os << "];\n";
  }
  write_edges(os, g);
  os << "}\n";
}

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  write_dot(os, g);
  return os.str();
}

}  // namespace flb
