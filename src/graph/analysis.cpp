#include "flb/graph/analysis.hpp"

#include <algorithm>

#include "flb/graph/properties.hpp"
#include "flb/graph/width.hpp"
#include "flb/util/error.hpp"

namespace flb {

std::vector<Edge> transitive_edges(const TaskGraph& g) {
  std::vector<Edge> out;
  if (g.num_tasks() == 0) return out;
  Reachability direct(g);
  // Edge (u, v) is transitive iff some other successor w of u reaches v.
  for (TaskId u = 0; u < g.num_tasks(); ++u) {
    for (const Adj& a : g.successors(u)) {
      bool redundant = false;
      for (const Adj& b : g.successors(u)) {
        if (b.node == a.node) continue;
        if (direct.reaches(b.node, a.node)) {
          redundant = true;
          break;
        }
      }
      if (redundant) out.push_back({u, a.node, a.comm});
    }
  }
  return out;
}

TaskGraph strip_transitive_edges(const TaskGraph& g) {
  std::vector<Edge> redundant = transitive_edges(g);
  auto is_redundant = [&](TaskId from, TaskId to) {
    for (const Edge& e : redundant)
      if (e.from == from && e.to == to) return true;
    return false;
  };
  TaskGraphBuilder b;
  b.set_name(g.name());
  for (TaskId t = 0; t < g.num_tasks(); ++t) b.add_task(g.comp(t));
  for (const Edge& e : g.edges())
    if (!is_redundant(e.from, e.to)) b.add_edge(e.from, e.to, e.comm);
  return std::move(b).build();
}

Cost granularity(const TaskGraph& g) {
  if (g.num_edges() == 0) return kInfiniteTime;
  // Largest incident communication per task.
  std::vector<Cost> max_comm(g.num_tasks(), 0.0);
  for (const Edge& e : g.edges()) {
    max_comm[e.from] = std::max(max_comm[e.from], e.comm);
    max_comm[e.to] = std::max(max_comm[e.to], e.comm);
  }
  Cost grain = kInfiniteTime;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    if (max_comm[t] <= 0.0) continue;  // no communicating edges
    grain = std::min(grain, g.comp(t) / max_comm[t]);
  }
  return grain;
}

GraphStats graph_stats(const TaskGraph& g) {
  GraphStats s;
  s.num_tasks = g.num_tasks();
  s.num_edges = g.num_edges();
  if (g.num_tasks() == 0) return s;

  s.min_comp = kInfiniteTime;
  for (TaskId t = 0; t < g.num_tasks(); ++t) {
    s.max_in_degree = std::max(s.max_in_degree, g.in_degree(t));
    s.max_out_degree = std::max(s.max_out_degree, g.out_degree(t));
    s.min_comp = std::min(s.min_comp, g.comp(t));
    s.max_comp = std::max(s.max_comp, g.comp(t));
    if (g.is_entry(t)) ++s.entry_tasks;
    if (g.is_exit(t)) ++s.exit_tasks;
  }
  s.avg_degree = static_cast<double>(s.num_edges) /
                 static_cast<double>(s.num_tasks);
  if (s.num_edges > 0) {
    s.min_comm = kInfiniteTime;
    for (const Edge& e : g.edges()) {
      s.min_comm = std::min(s.min_comm, e.comm);
      s.max_comm = std::max(s.max_comm, e.comm);
    }
  }
  s.ccr = g.ccr();
  s.granularity = granularity(g);
  s.depth = level_decomposition(g).size();
  return s;
}

}  // namespace flb
