#include "flb/graph/properties.hpp"

#include <algorithm>

#include "flb/util/error.hpp"

namespace flb {

std::vector<TaskId> topological_order(const TaskGraph& g) {
  const TaskId n = g.num_tasks();
  std::vector<std::size_t> indeg(n);
  std::vector<TaskId> order;
  order.reserve(n);
  for (TaskId t = 0; t < n; ++t) {
    indeg[t] = g.in_degree(t);
    if (indeg[t] == 0) order.push_back(t);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const Adj& a : g.successors(order[i]))
      if (--indeg[a.node] == 0) order.push_back(a.node);
  }
  FLB_ASSERT(order.size() == n);
  return order;
}

void topological_order_into(const TaskGraph& g, std::span<TaskId> order,
                            std::span<std::uint32_t> indeg) {
  const TaskId n = g.num_tasks();
  FLB_ASSERT(order.size() == n && indeg.size() == n);
  std::size_t filled = 0;
  for (TaskId t = 0; t < n; ++t) {
    indeg[t] = static_cast<std::uint32_t>(g.in_degree(t));
    if (indeg[t] == 0) order[filled++] = t;
  }
  for (std::size_t i = 0; i < filled; ++i) {
    for (const Adj& a : g.successors(order[i]))
      if (--indeg[a.node] == 0) order[filled++] = a.node;
  }
  FLB_ASSERT(filled == n);
}

void bottom_levels_into(const TaskGraph& g, std::span<Cost> bl,
                        std::span<TaskId> order,
                        std::span<std::uint32_t> indeg) {
  const TaskId n = g.num_tasks();
  FLB_ASSERT(bl.size() == n);
  topological_order_into(g, order, indeg);
  // Same arithmetic as bottom_levels_impl(with_comm=true), so results are
  // bit-identical to the vector flavour.
  for (std::size_t i = n; i-- > 0;) {
    TaskId t = order[i];
    Cost best = 0.0;
    for (const Adj& a : g.successors(t))
      best = std::max(best, bl[a.node] + a.comm);
    bl[t] = g.comp(t) + best;
  }
}

namespace {

// Shared implementation for the two bottom-level flavours.
std::vector<Cost> bottom_levels_impl(const TaskGraph& g, bool with_comm) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> bl(g.num_tasks(), 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TaskId t = *it;
    Cost best = 0.0;
    for (const Adj& a : g.successors(t)) {
      Cost via = bl[a.node] + (with_comm ? a.comm : 0.0);
      best = std::max(best, via);
    }
    bl[t] = g.comp(t) + best;
  }
  return bl;
}

}  // namespace

std::vector<Cost> bottom_levels(const TaskGraph& g) {
  return bottom_levels_impl(g, /*with_comm=*/true);
}

std::vector<Cost> computation_bottom_levels(const TaskGraph& g) {
  return bottom_levels_impl(g, /*with_comm=*/false);
}

std::vector<Cost> top_levels(const TaskGraph& g) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<Cost> tl(g.num_tasks(), 0.0);
  for (TaskId t : order) {
    Cost best = 0.0;
    for (const Adj& a : g.predecessors(t))
      best = std::max(best, tl[a.node] + g.comp(a.node) + a.comm);
    tl[t] = best;
  }
  return tl;
}

Cost critical_path(const TaskGraph& g) {
  std::vector<Cost> bl = bottom_levels(g);
  Cost cp = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (g.is_entry(t)) cp = std::max(cp, bl[t]);
  return cp;
}

Cost computation_critical_path(const TaskGraph& g) {
  std::vector<Cost> bl = computation_bottom_levels(g);
  Cost cp = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (g.is_entry(t)) cp = std::max(cp, bl[t]);
  return cp;
}

std::vector<Cost> alap_times(const TaskGraph& g) {
  std::vector<Cost> bl = bottom_levels(g);
  Cost cp = 0.0;
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    if (g.is_entry(t)) cp = std::max(cp, bl[t]);
  std::vector<Cost> alap(g.num_tasks());
  for (TaskId t = 0; t < g.num_tasks(); ++t) alap[t] = cp - bl[t];
  return alap;
}

std::vector<std::size_t> depth_levels(const TaskGraph& g) {
  std::vector<TaskId> order = topological_order(g);
  std::vector<std::size_t> depth(g.num_tasks(), 0);
  for (TaskId t : order) {
    for (const Adj& a : g.predecessors(t))
      depth[t] = std::max(depth[t], depth[a.node] + 1);
  }
  return depth;
}

std::vector<std::vector<TaskId>> level_decomposition(const TaskGraph& g) {
  std::vector<std::size_t> depth = depth_levels(g);
  std::size_t max_depth = 0;
  for (std::size_t d : depth) max_depth = std::max(max_depth, d);
  std::vector<std::vector<TaskId>> levels(g.num_tasks() == 0 ? 0
                                                             : max_depth + 1);
  for (TaskId t = 0; t < g.num_tasks(); ++t) levels[depth[t]].push_back(t);
  return levels;
}

std::size_t max_level_width(const TaskGraph& g) {
  std::size_t best = 0;
  for (const auto& level : level_decomposition(g))
    best = std::max(best, level.size());
  return best;
}

}  // namespace flb
