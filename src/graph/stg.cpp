#include "flb/graph/stg.hpp"

#include <cmath>
#include <istream>
#include <sstream>
#include <vector>

#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

namespace {

bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

TaskGraph read_stg(std::istream& is, const WorkloadParams& params) {
  std::string line;
  FLB_REQUIRE(next_line(is, line), "read_stg: empty input");
  std::size_t n = 0;
  {
    std::istringstream ls(line);
    FLB_REQUIRE(static_cast<bool>(ls >> n) && n > 0,
                "read_stg: first line must be the positive task count");
  }
  const std::size_t total = n + 2;  // dummy source and sink included

  struct Row {
    double cost;
    std::vector<std::size_t> preds;
  };
  std::vector<Row> rows(total);
  double total_cost = 0.0;

  for (std::size_t i = 0; i < total; ++i) {
    FLB_REQUIRE(next_line(is, line),
                "read_stg: truncated input, expected " +
                    std::to_string(total) + " task lines");
    std::istringstream ls(line);
    std::size_t id = 0, npred = 0;
    double cost = 0.0;
    FLB_REQUIRE(static_cast<bool>(ls >> id >> cost >> npred),
                "read_stg: malformed task line '" + line + "'");
    FLB_REQUIRE(id == i, "read_stg: task ids must be 0.." +
                             std::to_string(total - 1) + " in order, got " +
                             std::to_string(id));
    FLB_REQUIRE(std::isfinite(cost), "read_stg: non-finite processing time "
                                     "on task line '" + line + "'");
    FLB_REQUIRE(cost >= 0.0, "read_stg: negative processing time");
    rows[i].cost = cost;
    total_cost += cost;
    rows[i].preds.resize(npred);
    for (std::size_t k = 0; k < npred; ++k) {
      FLB_REQUIRE(static_cast<bool>(ls >> rows[i].preds[k]),
                  "read_stg: task " + std::to_string(id) + " lists " +
                      std::to_string(npred) + " predecessors but fewer given");
      FLB_REQUIRE(rows[i].preds[k] < i,
                  "read_stg: predecessor id must precede the task (STG files "
                  "are topologically ordered)");
    }
  }

  // Communication costs: mean = ccr * average computation cost, so the
  // resulting graph's CCR matches params.ccr in expectation.
  double avg_cost = total_cost / static_cast<double>(total);
  Rng rng(params.seed);
  auto comm = [&]() -> Cost {
    Cost mean = params.ccr * avg_cost;
    return params.random_weights ? draw_weight(rng, mean) : mean;
  };

  TaskGraphBuilder b;
  b.set_name("STG(n=" + std::to_string(n) + ")");
  for (std::size_t i = 0; i < total; ++i) b.add_task(rows[i].cost);
  for (std::size_t i = 0; i < total; ++i)
    for (std::size_t pred : rows[i].preds)
      b.add_edge(static_cast<TaskId>(pred), static_cast<TaskId>(i), comm());
  return std::move(b).build();
}

TaskGraph stg_from_text(const std::string& text,
                        const WorkloadParams& params) {
  std::istringstream is(text);
  return read_stg(is, params);
}

}  // namespace flb
