#include "flb/graph/serialize.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "flb/util/error.hpp"

namespace flb {

void write_text(std::ostream& os, const TaskGraph& g) {
  os << "flb-taskgraph 1\n";
  if (!g.name().empty()) os << "name " << g.name() << "\n";
  os << "tasks " << g.num_tasks() << "\n";
  os << "edges " << g.num_edges() << "\n";
  os.precision(17);
  for (TaskId t = 0; t < g.num_tasks(); ++t)
    os << "t " << t << " " << g.comp(t) << "\n";
  for (const Edge& e : g.edges())
    os << "e " << e.from << " " << e.to << " " << e.comm << "\n";
}

namespace {

// Next non-comment, non-blank line; false at EOF.
bool next_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    std::size_t i = line.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (line[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

TaskGraph read_text(std::istream& is) {
  std::string line;
  FLB_REQUIRE(next_line(is, line), "read_text: empty input");
  {
    std::istringstream ls(line);
    std::string magic;
    int version = 0;
    ls >> magic >> version;
    FLB_REQUIRE(magic == "flb-taskgraph" && version == 1,
                "read_text: bad magic line '" + line + "'");
  }

  std::string name;
  std::size_t num_tasks = 0, num_edges = 0;
  bool have_tasks = false, have_edges = false;

  // Header section: name / tasks / edges in any order, until counts known.
  while (!(have_tasks && have_edges)) {
    FLB_REQUIRE(next_line(is, line), "read_text: truncated header");
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      std::getline(ls, name);
      std::size_t i = name.find_first_not_of(" \t");
      name = i == std::string::npos ? "" : name.substr(i);
    } else if (key == "tasks") {
      FLB_REQUIRE(static_cast<bool>(ls >> num_tasks),
                  "read_text: malformed tasks line");
      have_tasks = true;
    } else if (key == "edges") {
      FLB_REQUIRE(static_cast<bool>(ls >> num_edges),
                  "read_text: malformed edges line");
      have_edges = true;
    } else {
      FLB_REQUIRE(false, "read_text: unexpected header line '" + line + "'");
    }
  }

  TaskGraphBuilder b;
  b.reserve(num_tasks, num_edges);
  b.set_name(name);

  for (std::size_t i = 0; i < num_tasks; ++i) {
    FLB_REQUIRE(next_line(is, line), "read_text: truncated task list");
    std::istringstream ls(line);
    std::string key;
    std::size_t id;
    double comp;
    FLB_REQUIRE(static_cast<bool>(ls >> key >> id >> comp) && key == "t",
                "read_text: malformed task line '" + line + "'");
    FLB_REQUIRE(id == i, "read_text: task ids must be 0..V-1 in order");
    FLB_REQUIRE(std::isfinite(comp),
                "read_text: non-finite computation cost on line '" + line +
                    "'");
    b.add_task(comp);
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    FLB_REQUIRE(next_line(is, line), "read_text: truncated edge list");
    std::istringstream ls(line);
    std::string key;
    std::size_t from, to;
    double comm;
    FLB_REQUIRE(static_cast<bool>(ls >> key >> from >> to >> comm) &&
                    key == "e",
                "read_text: malformed edge line '" + line + "'");
    FLB_REQUIRE(from < num_tasks && to < num_tasks,
                "read_text: edge endpoint out of range");
    FLB_REQUIRE(std::isfinite(comm),
                "read_text: non-finite communication cost on line '" + line +
                    "'");
    b.add_edge(static_cast<TaskId>(from), static_cast<TaskId>(to), comm);
  }
  return std::move(b).build();
}

std::string to_text(const TaskGraph& g) {
  std::ostringstream os;
  write_text(os, g);
  return os.str();
}

TaskGraph from_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

}  // namespace flb
