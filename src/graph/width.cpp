#include "flb/graph/width.hpp"

#include <algorithm>
#include <bit>
#include <queue>

#include "flb/graph/properties.hpp"
#include "flb/util/error.hpp"

namespace flb {

Reachability::Reachability(const TaskGraph& g)
    : n_(g.num_tasks()), words_((n_ + 63) / 64) {
  rows_.assign(static_cast<std::size_t>(n_) * words_, 0);
  // Reverse topological order: a task's row is the union of each successor's
  // row plus the successor itself.
  std::vector<TaskId> order = topological_order(g);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TaskId t = *it;
    std::uint64_t* row = rows_.data() + static_cast<std::size_t>(t) * words_;
    for (const Adj& a : g.successors(t)) {
      const std::uint64_t* srow =
          rows_.data() + static_cast<std::size_t>(a.node) * words_;
      for (std::size_t w = 0; w < words_; ++w) row[w] |= srow[w];
      row[a.node / 64] |= (1ull << (a.node % 64));
    }
  }
}

namespace {

/// Hopcroft–Karp over the bipartite split graph implied by a Reachability
/// matrix: left vertex u connects to right vertex v iff v is reachable
/// from u. Returns the maximum matching size.
class HopcroftKarp {
 public:
  explicit HopcroftKarp(const Reachability& r)
      : r_(r),
        n_(r.num_tasks()),
        match_l_(n_, kInvalidTask),
        match_r_(n_, kInvalidTask),
        dist_(n_) {}

  std::size_t run() {
    std::size_t matching = 0;
    while (bfs()) {
      for (TaskId u = 0; u < n_; ++u)
        if (match_l_[u] == kInvalidTask && dfs(u)) ++matching;
    }
    return matching;
  }

 private:
  static constexpr std::size_t kInf = static_cast<std::size_t>(-1);

  bool bfs() {
    std::queue<TaskId> q;
    for (TaskId u = 0; u < n_; ++u) {
      if (match_l_[u] == kInvalidTask) {
        dist_[u] = 0;
        q.push(u);
      } else {
        dist_[u] = kInf;
      }
    }
    bool found = false;
    while (!q.empty()) {
      TaskId u = q.front();
      q.pop();
      for (TaskId v = 0; v < n_; ++v) {
        if (!r_.reaches(u, v)) continue;
        TaskId w = match_r_[v];
        if (w == kInvalidTask) {
          found = true;
        } else if (dist_[w] == kInf) {
          dist_[w] = dist_[u] + 1;
          q.push(w);
        }
      }
    }
    return found;
  }

  bool dfs(TaskId u) {
    for (TaskId v = 0; v < n_; ++v) {
      if (!r_.reaches(u, v)) continue;
      TaskId w = match_r_[v];
      if (w == kInvalidTask || (dist_[w] == dist_[u] + 1 && dfs(w))) {
        match_l_[u] = v;
        match_r_[v] = u;
        return true;
      }
    }
    dist_[u] = kInf;
    return false;
  }

  const Reachability& r_;
  TaskId n_;
  std::vector<TaskId> match_l_, match_r_;
  std::vector<std::size_t> dist_;
};

}  // namespace

std::size_t exact_width(const TaskGraph& g) {
  if (g.num_tasks() == 0) return 0;
  Reachability r(g);
  HopcroftKarp hk(r);
  std::size_t matching = hk.run();
  // Dilworth: max antichain = V - min chain cover's saved merges = V - M.
  return g.num_tasks() - matching;
}

std::size_t brute_force_width(const TaskGraph& g) {
  const TaskId n = g.num_tasks();
  FLB_REQUIRE(n <= 20, "brute_force_width: too many tasks (max 20)");
  if (n == 0) return 0;
  Reachability r(g);
  std::size_t best = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    bool antichain = true;
    for (TaskId a = 0; a < n && antichain; ++a) {
      if (!(mask & (1u << a))) continue;
      for (TaskId b = static_cast<TaskId>(a + 1); b < n && antichain; ++b) {
        if (!(mask & (1u << b))) continue;
        if (r.comparable(a, b)) antichain = false;
      }
    }
    if (antichain)
      best = std::max(best,
                      static_cast<std::size_t>(std::popcount(mask)));
  }
  return best;
}

}  // namespace flb
