#include "flb/graph/task_graph.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "flb/util/error.hpp"

namespace flb {

std::vector<TaskId> TaskGraph::entry_tasks() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < num_tasks(); ++t)
    if (is_entry(t)) out.push_back(t);
  return out;
}

std::vector<TaskId> TaskGraph::exit_tasks() const {
  std::vector<TaskId> out;
  for (TaskId t = 0; t < num_tasks(); ++t)
    if (is_exit(t)) out.push_back(t);
  return out;
}

std::vector<Edge> TaskGraph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (TaskId t = 0; t < num_tasks(); ++t)
    for (const Adj& a : successors(t)) out.push_back({t, a.node, a.comm});
  return out;
}

Cost TaskGraph::ccr() const {
  if (num_edges() == 0 || num_tasks() == 0 || total_comp_ == 0.0) return 0.0;
  Cost avg_comm = total_comm_ / static_cast<Cost>(num_edges());
  Cost avg_comp = total_comp_ / static_cast<Cost>(num_tasks());
  return avg_comm / avg_comp;
}

void TaskGraphBuilder::reserve(std::size_t n, std::size_t m) {
  comp_.reserve(n);
  edges_.reserve(m);
}

TaskId TaskGraphBuilder::add_task(Cost comp) {
  FLB_REQUIRE(std::isfinite(comp), "add_task: computation cost must be finite");
  FLB_REQUIRE(comp >= 0.0, "add_task: computation cost must be non-negative");
  comp_.push_back(comp);
  return static_cast<TaskId>(comp_.size() - 1);
}

TaskId TaskGraphBuilder::add_tasks(std::size_t count, Cost comp) {
  FLB_REQUIRE(count > 0, "add_tasks: count must be positive");
  FLB_REQUIRE(std::isfinite(comp), "add_tasks: computation cost must be finite");
  FLB_REQUIRE(comp >= 0.0, "add_tasks: computation cost must be non-negative");
  TaskId first = static_cast<TaskId>(comp_.size());
  comp_.insert(comp_.end(), count, comp);
  return first;
}

void TaskGraphBuilder::add_edge(TaskId from, TaskId to, Cost comm) {
  FLB_REQUIRE(from < comp_.size(), "add_edge: source task id out of range");
  FLB_REQUIRE(to < comp_.size(), "add_edge: target task id out of range");
  FLB_REQUIRE(from != to, "add_edge: self-loops are not allowed");
  FLB_REQUIRE(std::isfinite(comm), "add_edge: communication cost must be finite");
  FLB_REQUIRE(comm >= 0.0, "add_edge: communication cost must be non-negative");
  edges_.push_back({from, to, comm});
}

TaskGraph TaskGraphBuilder::build() && {
  const std::size_t n = comp_.size();
  const std::size_t m = edges_.size();

  // Detect duplicate edges by sorting a copy of (from, to).
  {
    std::vector<Edge> sorted = edges_;
    std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
      return a.from != b.from ? a.from < b.from : a.to < b.to;
    });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      FLB_REQUIRE(sorted[i - 1].from != sorted[i].from ||
                      sorted[i - 1].to != sorted[i].to,
                  "build: duplicate edge " + std::to_string(sorted[i].from) +
                      " -> " + std::to_string(sorted[i].to));
    }
  }

  TaskGraph g;
  g.comp_ = std::move(comp_);
  g.name_ = std::move(name_);
  for (Cost c : g.comp_) g.total_comp_ += c;

  // Build CSR in both directions with counting sort over edge endpoints.
  g.succ_off_.assign(n + 1, 0);
  g.pred_off_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++g.succ_off_[e.from + 1];
    ++g.pred_off_[e.to + 1];
    g.total_comm_ += e.comm;
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.succ_off_[i + 1] += g.succ_off_[i];
    g.pred_off_[i + 1] += g.pred_off_[i];
  }
  g.succ_.resize(m);
  g.pred_.resize(m);
  std::vector<std::size_t> scur(g.succ_off_.begin(), g.succ_off_.end() - 1);
  std::vector<std::size_t> pcur(g.pred_off_.begin(), g.pred_off_.end() - 1);
  for (const Edge& e : edges_) {
    g.succ_[scur[e.from]++] = {e.to, e.comm};
    g.pred_[pcur[e.to]++] = {e.from, e.comm};
  }

  // Acyclicity check via Kahn's algorithm.
  std::vector<std::size_t> indeg(n);
  for (TaskId t = 0; t < n; ++t) indeg[t] = g.in_degree(static_cast<TaskId>(t));
  std::vector<TaskId> queue;
  queue.reserve(n);
  for (TaskId t = 0; t < n; ++t)
    if (indeg[t] == 0) queue.push_back(t);
  std::size_t seen = 0;
  while (seen < queue.size()) {
    TaskId t = queue[seen++];
    for (const Adj& a : g.successors(t))
      if (--indeg[a.node] == 0) queue.push_back(a.node);
  }
  FLB_REQUIRE(seen == n, "build: the task graph contains a cycle");

  return g;
}

}  // namespace flb
