#include "flb/core/flb.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "flb/core/scratch.hpp"
#include "flb/graph/properties.hpp"
#include "flb/platform/cost_model.hpp"
#include "flb/util/error.hpp"
#include "flb/util/rng.hpp"

namespace flb {

namespace {

using core::ProcKey;
using core::TaskKey;

/// The per-run scheduling engine. Implements the paper's four procedures —
/// ScheduleTask, UpdateTaskLists, UpdateProcLists, UpdateReadyTasks — on top
/// of addressable heaps. The per-processor EP task lists live in two
/// DaryHeapForest instances (a task is enabled by at most one processor at a
/// time), so setup is O(V + P) and the whole run matches the paper's
/// O(V(log W + log P) + E) bound operation-for-operation.
///
/// All working state — the SoA ready-task arrays and the five heaps — lives
/// in a caller-owned core::Scratch whose arena is reset (not reallocated)
/// between runs, and the output Schedule is written in place. On the fresh
/// clique path this makes a whole run allocation-free at steady state
/// (tests/flb_alloc_test.cpp asserts it); heap keys embed the task id as the
/// final tie-break, so schedules are bit-identical to the pre-scratch engine
/// (the golden digests in tests/platform_test.cpp pin this).
class Engine {
 public:
  /// Schedule the unplaced tasks of `sched` (empty for a fresh run, a kept
  /// prefix when resuming) using `scratch` for all working state. `alive`
  /// may be empty (= all alive, the fresh-run fast path).
  Engine(const TaskGraph& g, Schedule& sched, core::Scratch& scratch,
         std::vector<bool> alive, Cost release, const FlbOptions& opts,
         const FlbResumeContext* degraded = nullptr)
      : g_(g),
        s_(prepared(scratch, g.num_tasks(), sched.num_procs())),
        num_procs_(sched.num_procs()),
        sched_(sched),
        model_(make_model(num_procs_, std::move(alive), release, degraded,
                          scratch.arena())) {
    // Routed or cold-cache pricing makes EST destination-dependent beyond
    // the clique model, so candidate selection switches to exact pricing.
    exact_mode_ = model_.exact_pricing();
    link_busy_ = model_.mode() == platform::CommMode::kLinkBusy;
    init_tie_priorities(opts);
    init_lists();
  }

  /// The platform model priced against (occupancy log, link accounting).
  [[nodiscard]] const platform::CostModel& model() const { return model_; }

  void run(const FlbObserver* observer, FlbStats* stats) {
    const TaskId remaining = g_.num_tasks() - sched_.num_scheduled();
    for (TaskId step = 0; step < remaining; ++step) {
      schedule_one(observer);
    }
    FLB_ASSERT(sched_.complete());
    stats_.iterations = remaining;
    if (stats) *stats = stats_;
  }

 private:
  // Re-dimension the scratch before any other member needs it (the cost
  // model borrows its arena, so this must run first in the init order).
  static core::Scratch& prepared(core::Scratch& s, TaskId num_tasks,
                                 ProcId num_procs) {
    s.prepare(num_tasks, num_procs);
    return s;
  }

  void init_tie_priorities(const FlbOptions& opts) {
    switch (opts.tie_break) {
      case FlbTieBreak::kBottomLevel:
        bottom_levels_into(g_, s_.tie, s_.topo_order, s_.degree);
        break;
      case FlbTieBreak::kTaskId:
        std::fill(s_.tie.begin(), s_.tie.end(), 0.0);
        break;
      case FlbTieBreak::kRandom: {
        Rng rng(opts.seed);
        for (Cost& v : s_.tie) v = rng.next_double();
        break;
      }
    }
  }

  TaskKey task_key(Cost primary, TaskId t) const {
    return {primary, -s_.tie[t], t};
  }

  // Build the platform cost model the whole run prices against: the
  // paper's clique on a fresh run, routed hop counts or store-and-forward
  // link reservations when the resume context carries a topology, plus the
  // context's availability windows and degraded execution parameters. The
  // topology-backed models carve their route caches out of the scratch
  // arena (the borrowed-scratch path), so they share the engine's
  // reset-between-runs allocation discipline.
  static platform::CostModel make_model(ProcId procs, std::vector<bool> alive,
                                        Cost release,
                                        const FlbResumeContext* ctx,
                                        Arena& arena) {
    const Topology* topo = ctx != nullptr ? ctx->topology : nullptr;
    platform::CostModel m =
        topo == nullptr
            ? platform::CostModel::clique(procs)
            : (ctx->link_busy ? platform::CostModel::link_busy(*topo, &arena)
                              : platform::CostModel::routed(*topo, &arena));
    platform::Availability a;
    a.release = release;
    a.alive = std::move(alive);
    if (ctx != nullptr) {
      a.proc_release = ctx->proc_release;
      a.cold_before = ctx->cold_before;
      m.set_speeds(ctx->speeds);
      m.set_work(ctx->work);
      m.set_extra_time(ctx->extra_time);
    }
    m.set_availability(std::move(a));
    return m;
  }

  // Processor ready time as seen by the engine: never before the release
  // instant (the failure time when resuming; 0 on a fresh run), nor before
  // the processor's own admission instant (its rejoin time after a reboot).
  Cost prt(ProcId p) const {
    return std::max(sched_.proc_ready_time(p), model_.admission(p));
  }

  // Priced availability of predecessor edge `in` when its consumer runs on
  // p — the platform model's cold-aware arrival: a warm local output is
  // free, a local output that predates p's reboot is re-fetched, remote
  // data pays the mode's network price (flat on the clique, hop-scaled
  // when routed, reservation-aware under link-busy).
  Cost arrival_at(const Adj& in, ProcId p) const {
    return model_.arrival(sched_.proc(in.node), p, in.comm,
                          sched_.finish(in.node));
  }

  // Exact earliest start of t on p under the engine's pricing model.
  Cost exact_est(TaskId t, ProcId p) const {
    Cost est = prt(p);
    for (const Adj& in : g_.predecessors(t))
      est = std::max(est, arrival_at(in, p));
    return est;
  }

  // Wall-time cost of running t on p: the platform model's exec pricing —
  // (possibly overridden) work scaled by p's speed, plus any additive
  // extra. Degenerates to comp(t) on a fresh run.
  Cost duration(TaskId t, ProcId p) const {
    return model_.exec(g_, t, p, 0.0);
  }

  void init_lists() {
    for (TaskId t = 0; t < g_.num_tasks(); ++t) {
      if (sched_.is_scheduled(t)) continue;  // prefix placement, kept as-is
      std::uint32_t pending = 0;
      for (const Adj& in : g_.predecessors(t))
        if (!sched_.is_scheduled(in.node)) ++pending;
      s_.unscheduled_preds[t] = pending;
      if (pending == 0) classify_ready(t);
    }
    stats_.max_ready = std::max(stats_.max_ready, ready_count_);
    for (ProcId p = 0; p < num_procs_; ++p)
      if (model_.alive(p)) s_.all_procs.push(p, {prt(p), p});
  }

  // The paper's ScheduleTask followed by the three update procedures.
  void schedule_one(const FlbObserver* observer) {
    // Candidate (a): EP-type task with min EST on its enabling processor.
    const bool have_ep = !s_.active_procs.empty();
    ProcId p1 = kInvalidProc;
    TaskId t1 = kInvalidTask;
    Cost est1 = kInfiniteTime;
    if (have_ep) {
      p1 = static_cast<ProcId>(s_.active_procs.top());
      est1 = s_.active_procs.top_key().first;
      t1 = static_cast<TaskId>(s_.emt_ep_heap.top(p1));
      // Link reservations committed since t1 was classified may have
      // pushed its true arrival past the cached key, so under link-busy
      // pricing the candidate is re-priced against the current link state.
      if (link_busy_) est1 = exact_est(t1, p1);
    }

    // Candidate (b): non-EP task with min LMT on the earliest-idle
    // processor. By Corollary 2, EST = max(LMT, PRT) — exact on the clique.
    // Under routed or cold-cache pricing that corollary no longer holds
    // (EST depends on where each message travels from), so exact mode scans
    // every alive processor for the true minimum EST of the head task.
    const bool have_non_ep = !s_.non_ep.empty();
    ProcId p2 = kInvalidProc;
    TaskId t2 = kInvalidTask;
    Cost est2 = kInfiniteTime;
    if (have_non_ep) {
      t2 = static_cast<TaskId>(s_.non_ep.top());
      if (exact_mode_) {
        for (ProcId p = 0; p < num_procs_; ++p) {
          if (!model_.alive(p)) continue;
          const Cost est = exact_est(t2, p);
          if (est < est2) {
            est2 = est;
            p2 = p;
          }
        }
      } else {
        p2 = static_cast<ProcId>(s_.all_procs.top());
        est2 = std::max(s_.lmt[t2], prt(p2));
      }
    }

    FLB_ASSERT(have_ep || have_non_ep);

    // Strict '<': on a tie the non-EP pair is preferred because its
    // communication already overlaps earlier computation (paper Sec. 4.1).
    const bool choose_ep = have_ep && (!have_non_ep || est1 < est2);
    const TaskId t = choose_ep ? t1 : t2;
    const ProcId p = choose_ep ? p1 : p2;
    const Cost est = choose_ep ? est1 : est2;

    if (observer) notify(*observer, t, p, est, choose_ep);

    Cost start = est;
    if (link_busy_) {
      // Claim the chosen task's incoming routes so later transfers queue
      // behind them. Both candidates were just priced against the same
      // link state with identical arithmetic, so start == est.
      start = prt(p);
      for (const Adj& in : g_.predecessors(t))
        start = std::max(start,
                         model_.commit_arrival(sched_.proc(in.node), p,
                                               in.comm,
                                               sched_.finish(in.node)));
    }
    sched_.assign(t, p, start, start + duration(t, p));
    --ready_count_;
    if (choose_ep) {
      ++stats_.ep_selections;
      s_.active_procs.erase(p);  // re-inserted by update_proc_lists if needed
      s_.emt_ep_heap.erase(t);
      s_.lmt_ep_heap.erase(t);
    } else {
      ++stats_.non_ep_selections;
      s_.non_ep.erase(t);
    }

    update_task_lists(p);
    update_proc_lists(p);
    update_ready_tasks(t);
    stats_.max_ready = std::max(stats_.max_ready, ready_count_);
  }

  // PRT(p) just grew: EP tasks enabled by p whose LMT fell below PRT(p) no
  // longer satisfy the EP condition and move to the non-EP list. Tested in
  // ascending LMT order, so the scan stops at the first survivor.
  void update_task_lists(ProcId p) {
    const Cost ready = prt(p);
    while (!s_.lmt_ep_heap.empty(p)) {
      TaskId t = static_cast<TaskId>(s_.lmt_ep_heap.top(p));
      if (s_.lmt[t] >= ready) break;
      s_.lmt_ep_heap.pop(p);
      s_.emt_ep_heap.erase(t);
      s_.non_ep.push(t, task_key(s_.lmt[t], t));
      ++stats_.ep_demotions;
    }
  }

  // Refresh p's priorities: in the global processor list (keyed by PRT) and
  // in the active processor list (keyed by the min EST of the EP tasks p
  // enables — max(EMT of the head task, PRT), computed in O(1)).
  void update_proc_lists(ProcId p) {
    s_.all_procs.push_or_update(p, {prt(p), p});
    if (s_.emt_ep_heap.empty(p)) {
      if (s_.active_procs.contains(p)) s_.active_procs.erase(p);
    } else {
      refresh_active_priority(p);
    }
  }

  void refresh_active_priority(ProcId p) {
    TaskId head = static_cast<TaskId>(s_.emt_ep_heap.top(p));
    Cost est = std::max(s_.emt_ep[head], prt(p));
    s_.active_procs.push_or_update(p, {est, p});
  }

  // Successors of the just-scheduled task that became ready are classified
  // EP / non-EP and enqueued. LMT, EP and EMT(·, EP) are computed here by
  // one predecessor scan per task — O(E) in total over the whole run.
  void update_ready_tasks(TaskId scheduled) {
    for (const Adj& out : g_.successors(scheduled)) {
      TaskId t = out.node;
      FLB_ASSERT(s_.unscheduled_preds[t] > 0);
      if (--s_.unscheduled_preds[t] != 0) continue;
      classify_ready(t);
    }
  }

  // Classify one newly ready task as EP / non-EP and enqueue it. Entry
  // tasks have no enabling processor (LMT = 0, always non-EP); a task whose
  // enabling processor is dead (resume after a failure) is likewise filed
  // non-EP keyed by LMT — starting at LMT is feasible on every processor
  // because LMT already pays full communication for all predecessors.
  void classify_ready(TaskId t) {
    Cost lmt = 0.0;
    ProcId ep = kInvalidProc;
    for (const Adj& in : g_.predecessors(t)) {
      Cost arrival = sched_.finish(in.node) + model_.message_cost(in.comm);
      if (arrival > lmt || ep == kInvalidProc) {
        lmt = arrival;
        ep = sched_.proc(in.node);
      }
    }
    ++ready_count_;
    if (ep == kInvalidProc || !model_.alive(ep)) {
      s_.lmt[t] = lmt;
      s_.emt_ep[t] = lmt;
      s_.ep[t] = kInvalidProc;
      non_ep_push(t, lmt);
      return;
    }
    // EMT on the enabling processor, priced through the platform model's
    // cold-aware arrival. Local predecessor outputs arrive at their finish
    // time and still participate in the max, matching the paper's worked
    // example (Table 1); this never changes EST = max(EMT, PRT) — a warm
    // local predecessor's FT is always <= PRT — but it fixes the EMT list
    // order the paper uses. In exact mode the same call prices routed hop
    // counts, link reservations and cold-cache re-fetches (every
    // predecessor is placed by now, so this is the task's exact ready
    // instant on ep under the current link state).
    Cost emt = 0.0;
    for (const Adj& in : g_.predecessors(t))
      emt = std::max(emt, arrival_at(in, ep));
    s_.lmt[t] = lmt;
    s_.emt_ep[t] = emt;
    s_.ep[t] = ep;

    if (lmt < prt(ep)) {
      non_ep_push(t, lmt);
    } else {
      s_.emt_ep_heap.push(ep, t, task_key(emt, t));
      s_.lmt_ep_heap.push(ep, t, task_key(lmt, t));
      refresh_active_priority(ep);
      ++stats_.tasks_classified_ep;
    }
  }

  void non_ep_push(TaskId t, Cost lmt) {
    s_.non_ep.push(t, task_key(lmt, t));
  }

  // Build the observer snapshot (only on instrumented runs).
  void notify(const FlbObserver& observer, TaskId t, ProcId p, Cost est,
              bool ep_type) {
    FlbStep step;
    step.task = t;
    step.proc = p;
    step.est = est;
    step.ep_type = ep_type;
    step.ep_lists.resize(num_procs_);
    for (ProcId q = 0; q < num_procs_; ++q) {
      for (std::size_t id : s_.emt_ep_heap.items(q))
        step.ep_lists[q].push_back(static_cast<TaskId>(id));
      std::sort(step.ep_lists[q].begin(), step.ep_lists[q].end(),
                [&](TaskId a, TaskId b) {
                  return s_.emt_ep_heap.key_of(a) < s_.emt_ep_heap.key_of(b);
                });
      step.ready_tasks.insert(step.ready_tasks.end(),
                              step.ep_lists[q].begin(),
                              step.ep_lists[q].end());
    }
    for (std::size_t id : s_.non_ep.items())
      step.non_ep_list.push_back(static_cast<TaskId>(id));
    std::sort(step.non_ep_list.begin(), step.non_ep_list.end(),
              [&](TaskId a, TaskId b) {
                return s_.non_ep.key_of(a) < s_.non_ep.key_of(b);
              });
    step.ready_tasks.insert(step.ready_tasks.end(), step.non_ep_list.begin(),
                            step.non_ep_list.end());
    std::sort(step.ready_tasks.begin(), step.ready_tasks.end());
    observer(sched_, step);
  }

  const TaskGraph& g_;
  core::Scratch& s_;           // all working state, arena-backed
  ProcId num_procs_;
  Schedule& sched_;            // written in place
  platform::CostModel model_;  // the machine: comm, exec, availability
  bool exact_mode_ = false;
  bool link_busy_ = false;
  FlbStats stats_;
  std::size_t ready_count_ = 0;
};

}  // namespace

Schedule FlbScheduler::run(const TaskGraph& g, ProcId num_procs) {
  return run_instrumented(g, num_procs, nullptr, nullptr);
}

void FlbScheduler::run_into(const TaskGraph& g, ProcId num_procs,
                            Schedule& out) {
  FLB_REQUIRE(num_procs >= 1, "FLB: at least one processor required");
  out.reset(num_procs, g.num_tasks());
  // The empty alive mask means "everything alive" without allocating a
  // vector<bool> — with a warmed scratch and a capacity-retaining `out`,
  // this whole call performs zero heap allocations at steady state.
  Engine engine(g, out, scratch_, {}, 0.0, options_);
  engine.run(nullptr, nullptr);
}

Schedule FlbScheduler::run_instrumented(const TaskGraph& g, ProcId num_procs,
                                        const FlbObserver* observer,
                                        FlbStats* stats) {
  FLB_REQUIRE(num_procs >= 1, "FLB: at least one processor required");
  Schedule out(num_procs, g.num_tasks());
  Engine engine(g, out, scratch_, {}, 0.0, options_);
  engine.run(observer, stats);
  return out;
}

Schedule FlbScheduler::resume(const TaskGraph& g, const Schedule& prefix,
                              const std::vector<bool>& alive,
                              Cost release_time) {
  FLB_REQUIRE(prefix.num_tasks() == g.num_tasks(),
              "FLB resume: prefix was sized for a different graph");
  FLB_REQUIRE(alive.size() == prefix.num_procs(),
              "FLB resume: alive mask must cover every processor");
  FLB_REQUIRE(std::find(alive.begin(), alive.end(), true) != alive.end(),
              "FLB resume: at least one surviving processor required");
  FLB_REQUIRE(release_time >= 0.0,
              "FLB resume: release time must be non-negative");
  Schedule out = prefix;
  Engine engine(g, out, scratch_, alive, release_time, options_);
  engine.run(nullptr, nullptr);
  return out;
}

Schedule FlbScheduler::resume(const TaskGraph& g, const Schedule& prefix,
                              const FlbResumeContext& ctx) {
  FLB_REQUIRE(prefix.num_tasks() == g.num_tasks(),
              "FLB resume: prefix was sized for a different graph");
  FLB_REQUIRE(ctx.alive.size() == prefix.num_procs(),
              "FLB resume: alive mask must cover every processor");
  FLB_REQUIRE(
      std::find(ctx.alive.begin(), ctx.alive.end(), true) != ctx.alive.end(),
      "FLB resume: at least one surviving processor required");
  FLB_REQUIRE(ctx.release >= 0.0,
              "FLB resume: release time must be non-negative");
  FLB_REQUIRE(ctx.speeds.empty() || ctx.speeds.size() == prefix.num_procs(),
              "FLB resume: speeds must cover every processor");
  for (std::size_t p = 0; p < ctx.speeds.size(); ++p)
    FLB_REQUIRE(ctx.speeds[p] > 0.0 && ctx.speeds[p] <= 1.0,
                "FLB resume: speed factors must be in (0, 1]");
  FLB_REQUIRE(ctx.work.empty() || ctx.work.size() == g.num_tasks(),
              "FLB resume: work override must cover every task");
  FLB_REQUIRE(ctx.extra_time.empty() ||
                  ctx.extra_time.size() == g.num_tasks(),
              "FLB resume: extra time must cover every task");
  FLB_REQUIRE(ctx.proc_release.empty() ||
                  ctx.proc_release.size() == prefix.num_procs(),
              "FLB resume: per-processor release must cover every processor");
  for (Cost r : ctx.proc_release)
    FLB_REQUIRE(std::isfinite(r) && r >= 0.0,
                "FLB resume: per-processor release times must be finite "
                "and non-negative");
  FLB_REQUIRE(ctx.cold_before.empty() ||
                  ctx.cold_before.size() == prefix.num_procs(),
              "FLB resume: cold-cache horizon must cover every processor");
  for (Cost c : ctx.cold_before)
    FLB_REQUIRE(std::isfinite(c) && c >= 0.0,
                "FLB resume: cold-cache horizons must be finite and "
                "non-negative");
  FLB_REQUIRE(ctx.topology == nullptr ||
                  ctx.topology->num_nodes() == prefix.num_procs(),
              "FLB resume: topology node count must match the processor "
              "count");
  FLB_REQUIRE(!ctx.link_busy || ctx.topology != nullptr,
              "FLB resume: link-busy pricing requires a topology");
  Schedule out = prefix;
  Engine engine(g, out, scratch_, ctx.alive, ctx.release, options_, &ctx);
  engine.run(nullptr, nullptr);
  if (ctx.occupancy_log != nullptr)
    *ctx.occupancy_log = engine.model().occupancies();
  return out;
}

}  // namespace flb
