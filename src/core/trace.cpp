#include "flb/core/trace.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "flb/graph/properties.hpp"
#include "flb/sched/tentative.hpp"
#include "flb/util/table.hpp"

namespace flb {

namespace {

// EMT with the worked-example convention: local predecessors contribute
// their finish time (communication zeroed), remote ones FT + comm.
Cost trace_emt(const TaskGraph& g, const Schedule& s, TaskId t, ProcId p) {
  Cost emt = 0.0;
  for (const Adj& a : g.predecessors(t)) {
    Cost c = s.proc(a.node) == p ? 0.0 : a.comm;
    emt = std::max(emt, s.finish(a.node) + c);
  }
  return emt;
}

}  // namespace

std::vector<FlbTraceRow> trace_flb(const TaskGraph& g, ProcId num_procs,
                                   FlbOptions options) {
  std::vector<FlbTraceRow> rows;
  std::vector<Cost> bl = bottom_levels(g);

  FlbObserver observer = [&](const Schedule& s, const FlbStep& step) {
    FlbTraceRow row;
    row.ep_cells.resize(num_procs);
    for (ProcId p = 0; p < num_procs; ++p) {
      for (TaskId t : step.ep_lists[p]) {
        std::ostringstream cell;
        cell << "t" << t << "[" << format_compact(trace_emt(g, s, t, p))
             << "; " << format_compact(bl[t]) << "/"
             << format_compact(last_message_time(g, s, t)) << "]";
        row.ep_cells[p].push_back(cell.str());
      }
    }
    for (TaskId t : step.non_ep_list) {
      std::ostringstream cell;
      cell << "t" << t << "[" << format_compact(last_message_time(g, s, t))
           << "]";
      row.non_ep_cells.push_back(cell.str());
    }
    row.task = step.task;
    row.proc = step.proc;
    row.start = step.est;
    row.finish = step.est + g.comp(step.task);
    row.ep_type = step.ep_type;
    std::ostringstream decision;
    decision << "t" << step.task << " -> p" << step.proc << ", ["
             << format_compact(row.start) << " - "
             << format_compact(row.finish) << "]";
    row.decision = decision.str();
    rows.push_back(std::move(row));
  };

  FlbScheduler scheduler(options);
  (void)scheduler.run_instrumented(g, num_procs, &observer, nullptr);
  return rows;
}

void write_trace(std::ostream& os, const std::vector<FlbTraceRow>& rows,
                 ProcId num_procs) {
  std::vector<std::string> headers;
  for (ProcId p = 0; p < num_procs; ++p)
    headers.push_back("EP tasks on p" + std::to_string(p));
  headers.emplace_back("non-EP tasks");
  headers.emplace_back("scheduling");
  Table table(std::move(headers));

  auto join = [](const std::vector<std::string>& cells) {
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) out += "  ";
      out += cells[i];
    }
    return out.empty() ? "-" : out;
  };

  for (const FlbTraceRow& row : rows) {
    std::vector<std::string> cells;
    for (ProcId p = 0; p < num_procs; ++p) cells.push_back(join(row.ep_cells[p]));
    cells.push_back(join(row.non_ep_cells));
    cells.push_back(row.decision);
    table.add_row(std::move(cells));
  }
  table.print(os);
}

}  // namespace flb
