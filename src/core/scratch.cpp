#include "flb/core/scratch.hpp"

namespace flb::core {

void Scratch::prepare(TaskId num_tasks, ProcId num_procs) {
  arena_.reset();
  tasks_ = num_tasks;
  procs_ = num_procs;

  const std::size_t v = num_tasks;
  const std::size_t p = num_procs;

  tie = arena_.alloc<Cost>(v);
  lmt = arena_.alloc<Cost>(v);
  emt_ep = arena_.alloc<Cost>(v);
  ep = arena_.alloc<ProcId>(v);
  unscheduled_preds = arena_.alloc<std::uint32_t>(v);
  topo_order = arena_.alloc<TaskId>(v);
  degree = arena_.alloc<std::uint32_t>(v);

  non_ep.bind(arena_, v);
  emt_ep_heap.reset(arena_, v, p);
  lmt_ep_heap.reset(arena_, v, p);
  active_procs.bind(arena_, p);
  all_procs.bind(arena_, p);
}

}  // namespace flb::core
