#include "flb/platform/cost_model.hpp"

#include <utility>

#include "flb/util/error.hpp"

namespace flb::platform {

Availability Availability::recovery(Cost release,
                                    const std::vector<bool>& admitted,
                                    const std::vector<Cost>& available_from) {
  FLB_REQUIRE(admitted.size() == available_from.size(),
              "Availability::recovery: admitted/available_from size mismatch");
  const std::size_t procs = admitted.size();
  Availability a;
  a.release = release;
  a.alive = admitted;
  a.proc_release.assign(procs, release);
  a.cold_before.assign(procs, 0.0);
  for (std::size_t p = 0; p < procs; ++p)
    if (admitted[p] && available_from[p] > 0.0 &&
        available_from[p] != kInfiniteTime) {
      a.proc_release[p] = std::max(release, available_from[p]);
      a.cold_before[p] = available_from[p];
    }
  return a;
}

CostModel::CostModel(CommMode mode, ProcId procs, const Topology* topo,
                     Arena* scratch)
    : mode_(mode), procs_(procs), topo_(topo) {
  if (mode_ == CommMode::kLinkBusy) {
    link_free_.assign(topo_->num_links(), 0.0);
    link_busy_.assign(topo_->num_links(), 0.0);
  }
  if (topo_ != nullptr) build_route_cache(scratch);
}

CostModel CostModel::clique(ProcId num_procs) {
  FLB_REQUIRE(num_procs >= 1, "CostModel: at least one processor required");
  return CostModel(CommMode::kClique, num_procs, nullptr, nullptr);
}

CostModel CostModel::routed(const Topology& topology, Arena* scratch) {
  return CostModel(CommMode::kRoutedHops, topology.num_nodes(), &topology,
                   scratch);
}

CostModel CostModel::link_busy(const Topology& topology, Arena* scratch) {
  return CostModel(CommMode::kLinkBusy, topology.num_nodes(), &topology,
                   scratch);
}

void CostModel::build_route_cache(Arena* scratch) {
  const std::size_t pairs = std::size_t{procs_} * procs_;
  std::shared_ptr<RouteCacheStorage> owned;
  if (scratch == nullptr) owned = std::make_shared<RouteCacheStorage>();

  if (mode_ == CommMode::kRoutedHops) {
    // comm() multiplies by the hop count on every remote query; caching the
    // already-cast Cost keeps the arithmetic identical to calling
    // topo_->hops() while removing the per-query indirection.
    std::span<Cost> hop;
    if (scratch != nullptr) {
      hop = scratch->alloc<Cost>(pairs);
    } else {
      owned->hop_cost.resize(pairs);
      hop = owned->hop_cost;
    }
    for (ProcId src = 0; src < procs_; ++src)
      for (ProcId dst = 0; dst < procs_; ++dst)
        hop[std::size_t{src} * procs_ + dst] =
            static_cast<Cost>(topo_->hops(src, dst));
    hop_cost_ = hop;
  }

  if (mode_ == CommMode::kLinkBusy) {
    // Probe/commit walk a route per query; the CSR cache flattens every
    // route once so the hot path never materializes a vector.
    std::span<std::size_t> offsets;
    if (scratch != nullptr) {
      offsets = scratch->alloc<std::size_t>(pairs + 1);
    } else {
      owned->offsets.resize(pairs + 1);
      offsets = owned->offsets;
    }
    offsets[0] = 0;
    for (std::size_t pair = 0; pair < pairs; ++pair) {
      const ProcId src = static_cast<ProcId>(pair / procs_);
      const ProcId dst = static_cast<ProcId>(pair % procs_);
      offsets[pair + 1] = offsets[pair] + topo_->hops(src, dst);
    }
    std::span<std::size_t> links;
    if (scratch != nullptr) {
      links = scratch->alloc<std::size_t>(offsets[pairs]);
    } else {
      owned->links.resize(offsets[pairs]);
      links = owned->links;
    }
    for (ProcId src = 0; src < procs_; ++src)
      for (ProcId dst = 0; dst < procs_; ++dst) {
        const std::size_t pair = std::size_t{src} * procs_ + dst;
        topo_->route_into(src, dst,
                          links.subspan(offsets[pair],
                                        offsets[pair + 1] - offsets[pair]));
      }
    route_offsets_ = offsets;
    route_links_ = links;
  }

  cache_owner_ = std::move(owned);
}

void CostModel::set_availability(Availability a) {
  FLB_REQUIRE(a.alive.empty() || a.alive.size() == procs_,
              "CostModel: alive mask must cover every processor");
  FLB_REQUIRE(a.proc_release.empty() || a.proc_release.size() == procs_,
              "CostModel: per-processor release must cover every processor");
  FLB_REQUIRE(a.cold_before.empty() || a.cold_before.size() == procs_,
              "CostModel: cold-cache horizon must cover every processor");
  avail_ = std::move(a);
}

void CostModel::set_speeds(std::vector<double> speeds) {
  FLB_REQUIRE(speeds.empty() || speeds.size() == procs_,
              "CostModel: speeds must cover every processor");
  double inv_sum = 0.0;
  for (double s : speeds) {
    FLB_REQUIRE(s > 0.0, "CostModel: speeds must be positive");
    inv_sum += 1.0 / s;
  }
  speeds_ = std::move(speeds);
  mean_inverse_speed_ =
      speeds_.empty() ? 1.0 : inv_sum / static_cast<double>(speeds_.size());
}

void CostModel::set_speed_profiles(std::vector<SpeedProfile> profiles) {
  FLB_REQUIRE(profiles.empty() || profiles.size() == procs_,
              "CostModel: speed profiles must cover every processor");
  profiles_ = std::move(profiles);
}

void CostModel::set_work(std::vector<Cost> work) { work_ = std::move(work); }

void CostModel::set_extra_time(std::vector<Cost> extra) {
  extra_ = std::move(extra);
}

void CostModel::set_latency_factor(Cost factor) {
  FLB_REQUIRE(factor >= 0.0,
              "CostModel: latency factor must be non-negative");
  latency_ = factor;
}

Cost CostModel::probe_route(ProcId src, ProcId dst, Cost bytes,
                            Cost depart) const {
  const Cost hop_time = message_cost(bytes);
  Cost clock = depart;
  for (std::size_t link : route_span(src, dst)) {
    const Cost begin = std::max(clock, link_free_[link]);
    clock = begin + hop_time;
  }
  return clock;
}

Cost CostModel::commit(ProcId src, ProcId dst, Cost bytes, Cost depart) {
  if (src == dst || mode_ != CommMode::kLinkBusy)
    return comm(src, dst, bytes, depart);
  // Store-and-forward over the deterministic route: each hop takes the
  // full (scaled) message time; links serialize in commit order. Identical
  // arithmetic to the probe, so a probe followed immediately by a commit
  // returns the same instant.
  const Cost hop_time = message_cost(bytes);
  Cost clock = depart;
  for (std::size_t link : route_span(src, dst)) {
    const Cost begin = std::max(clock, link_free_[link]);
    link_free_[link] = begin + hop_time;
    link_busy_[link] += hop_time;
    occupancies_.push_back({link, begin, begin + hop_time});
    clock = begin + hop_time;
    ++total_hops_;
  }
  return clock;
}

void CostModel::reset_links() {
  std::fill(link_free_.begin(), link_free_.end(), 0.0);
  std::fill(link_busy_.begin(), link_busy_.end(), 0.0);
  occupancies_.clear();
  total_hops_ = 0;
}

Cost CostModel::max_link_busy() const {
  Cost m = 0.0;
  for (Cost b : link_busy_) m = std::max(m, b);
  return m;
}

Cost CostModel::total_link_busy() const {
  Cost m = 0.0;
  for (Cost b : link_busy_) m += b;
  return m;
}

}  // namespace flb::platform
