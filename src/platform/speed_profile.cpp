#include "flb/platform/speed_profile.hpp"

#include <algorithm>

namespace flb::platform {

void SpeedProfile::finalize() {
  std::vector<Cost> bounds;
  for (const Fault& f : faults_) {
    bounds.push_back(f.time);
    if (f.until != kInfiniteTime) bounds.push_back(f.until);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  double prev = 1.0;
  for (Cost b : bounds) {
    double speed = 1.0;
    for (const Fault& f : faults_)
      if (f.time <= b && b < f.until) speed *= f.factor;
    if (speed != prev) {
      segments_.push_back({b, speed});
      prev = speed;
    }
  }
}

SpeedProfile::Trace SpeedProfile::run(Cost start, Cost work,
                                      const CheckpointPolicy& ckpt,
                                      Cost kill) const {
  Trace tr;
  tr.end = std::min(start, kill);
  if (start >= kill) return tr;  // never began computing
  if (segments_.empty() && !ckpt.enabled()) {
    Cost finish = start + work;
    if (finish <= kill) {
      tr.end = finish;
      tr.done = work;
      tr.finished = true;
    } else {
      tr.end = kill;
      tr.done = kill - start;
    }
    return tr;
  }

  Cost tau = start;
  double speed = 1.0;
  std::size_t next_seg = 0;
  while (next_seg < segments_.size() && segments_[next_seg].first <= tau)
    speed = segments_[next_seg++].second;
  Cost next_mark = ckpt.enabled() ? ckpt.interval : kInfiniteTime;

  while (true) {
    const Cost target = std::min(work, next_mark);
    const Cost seg_end = next_seg < segments_.size()
                             ? segments_[next_seg].first
                             : kInfiniteTime;
    const Cost reach = tau + (target - tr.done) / speed;
    if (reach <= seg_end) {
      if (reach > kill) {  // killed mid-computation
        tr.done += speed * (kill - tau);
        tr.end = kill;
        return tr;
      }
      tau = reach;
      tr.done = target;
      if (tr.done >= work) {  // complete (no write at the final instant)
        tr.end = tau;
        tr.finished = true;
        return tr;
      }
      // Durable checkpoint write at this mark.
      if (ckpt.overhead > 0.0) {
        if (tau + ckpt.overhead > kill) {  // write interrupted: discarded
          tr.end = kill;
          return tr;
        }
        tau += ckpt.overhead;
        tr.overhead += ckpt.overhead;
      }
      tr.saved = next_mark;
      ++tr.checkpoints;
      next_mark += ckpt.interval;
      if (tau >= kill) {  // killed right after the write became durable
        tr.end = kill;
        return tr;
      }
    } else {  // the speed changes before the next milestone
      if (seg_end >= kill) {
        tr.done += speed * (kill - tau);
        tr.end = kill;
        return tr;
      }
      tr.done += speed * (seg_end - tau);
      tau = seg_end;
      while (next_seg < segments_.size() && segments_[next_seg].first <= tau)
        speed = segments_[next_seg++].second;
    }
  }
}

}  // namespace flb::platform
