#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/util/types.hpp"

/// \file serve.hpp
/// Scheduling as a service: run FLB over many independent task graphs on a
/// fixed-size worker pool.
///
/// The serving regime (Tchiboukdjian–Gast–Trystram's framing: once request
/// volume scales, scheduling *overhead* dominates schedule quality) needs
/// two things from the engine: per-run state that is reused rather than
/// reallocated, and workers that never share it. Both come from the core
/// layer's arena-backed scratch:
///
///  * every worker owns one FlbScheduler (and therefore one core::Scratch
///    and one reusable Schedule buffer) — no sharing, no locks on the
///    scheduling hot path, zero steady-state heap allocation per request;
///  * `schedule_batch()` fans N graphs over the pool via a single atomic
///    work index and writes results into distinct pre-sized slots, so the
///    output is in input order and byte-identical to a sequential run at
///    any thread count (tests/serve_test.cpp pins the digests);
///  * `ScheduleService` adds the streaming shape: a bounded FIFO queue
///    whose submit() blocks while the queue is full (backpressure — the
///    producer is throttled to the pool's throughput instead of growing an
///    unbounded backlog), with per-request latency accounting.
///
/// Determinism note: FLB is deterministic per graph, and requests are
/// independent, so the only ordering freedom in this layer is which worker
/// runs which request — the results themselves cannot differ. Digest
/// equality across thread counts is the cheap end-to-end check of exactly
/// that property.

namespace flb::serve {

/// FNV-1a digest of a schedule's placements: for every task, the processor
/// and the exact bit patterns of start and finish. Byte-identical to the
/// golden-digest arithmetic in tests/platform_test.cpp, so serving-layer
/// digests are directly comparable to the pinned pre-refactor goldens.
std::uint64_t schedule_digest(const Schedule& s);

/// One scheduling request: a task graph (not owned — it must outlive the
/// call) and the processor count to schedule it onto.
struct ScheduleRequest {
  const TaskGraph* graph = nullptr;
  ProcId num_procs = 1;
};

/// What the service hands back per request. The Schedule itself is only
/// materialized when asked for (keep_schedules): at serving volume the
/// caller usually wants the digest/makespan/latency triple, and dropping
/// the copy keeps the worker loop allocation-free.
struct ScheduleResult {
  std::uint64_t digest = 0;        ///< schedule_digest of the schedule
  Cost makespan = 0.0;             ///< schedule length
  double latency_ms = 0.0;         ///< submit-to-completion wall time
  double run_ms = 0.0;             ///< scheduling time alone (no queueing)
  std::optional<Schedule> schedule;  ///< set iff keep_schedules
};

/// Options for schedule_batch().
struct BatchOptions {
  std::size_t num_threads = 1;   ///< worker pool size (>= 1)
  FlbOptions flb;                ///< forwarded to every worker's scheduler
  bool keep_schedules = false;   ///< copy each Schedule into its result
};

/// Schedule every request and return the results in input order. Workers
/// claim requests via an atomic index and write into distinct slots, so the
/// result vector is byte-identical for any num_threads (1 == sequential).
std::vector<ScheduleResult> schedule_batch(
    const std::vector<ScheduleRequest>& requests,
    const BatchOptions& opts = {});

/// Aggregate counters of a ScheduleService.
struct ServiceStats {
  std::size_t submitted = 0;           ///< requests accepted by submit()
  std::size_t completed = 0;           ///< requests fully processed
  std::size_t backpressure_waits = 0;  ///< submits that blocked on a full queue
};

/// A long-lived scheduling service: fixed worker pool, bounded request
/// queue with blocking backpressure, per-request latency accounting.
/// Thread-compatible: one producer thread submits, workers consume; the
/// accessors (result/stats) are safe after drain()/close() or for request
/// ids the caller knows are completed.
class ScheduleService {
 public:
  struct Options {
    std::size_t num_threads = 1;     ///< worker pool size (>= 1)
    std::size_t queue_capacity = 64; ///< max queued (unstarted) requests
    FlbOptions flb;                  ///< forwarded to every worker
    bool keep_schedules = false;     ///< retain each Schedule in its result
  };

  explicit ScheduleService(Options opts);
  ~ScheduleService();  ///< close() if still open

  ScheduleService(const ScheduleService&) = delete;
  ScheduleService& operator=(const ScheduleService&) = delete;

  /// Enqueue one request and return its id (dense, starting at 0). Blocks
  /// while the queue is at capacity — backpressure — and counts the wait.
  /// The graph is not owned and must stay alive until the request
  /// completes. Must not be called after close().
  std::size_t submit(const TaskGraph& g, ProcId num_procs);

  /// Block until every submitted request has completed.
  void drain();

  /// Drain, stop the workers and join them. Idempotent; submit() is
  /// invalid afterwards.
  void close();

  /// Result of a completed request (valid after drain()/close(), or for a
  /// request id the caller otherwise knows has completed).
  [[nodiscard]] const ScheduleResult& result(std::size_t id) const;

  /// Number of requests submitted so far.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] ServiceStats stats() const;

 private:
  struct Pending {
    const TaskGraph* graph;
    ProcId num_procs;
    std::size_t id;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable queue_space_;  ///< signalled when the queue shrinks
  std::condition_variable queue_work_;   ///< signalled when work arrives
  std::condition_variable all_done_;     ///< signalled when completed catches up
  std::deque<Pending> queue_;
  std::deque<ScheduleResult> results_;   ///< deque: stable slots across growth
  ServiceStats stats_;
  bool closing_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace flb::serve
