#pragma once

#include "flb/sched/scheduler.hpp"

/// \file etf.hpp
/// ETF — Earliest Task First (Hwang, Chow, Anger & Lee, SIAM J. Computing
/// 1989). At every iteration the ready task that can start the earliest is
/// scheduled on the processor achieving that start time, found by
/// tentatively scheduling every ready task on every processor —
/// O(W(E+V)P) overall. FLB provably selects a pair with the same (minimal)
/// start time at O(V(log W + log P) + E) total cost; the two differ only in
/// tie-breaking (paper Sections 4 and 6.2).
///
/// Tie-breaking here follows the paper's characterization of ETF: among
/// equally early (task, processor) pairs the task with the larger *static*
/// priority — the bottom level — wins; remaining ties resolve to the
/// smaller task id, then the smaller processor id.

namespace flb {

class EtfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ETF"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
