#pragma once

#include "flb/sched/scheduler.hpp"

/// \file etf.hpp
/// ETF — Earliest Task First (Hwang, Chow, Anger & Lee, SIAM J. Computing
/// 1989). At every iteration the ready task that can start the earliest is
/// scheduled on the processor achieving that start time, found by
/// tentatively scheduling every ready task on every processor —
/// O(W(E+V)P) overall. FLB provably selects a pair with the same (minimal)
/// start time at O(V(log W + log P) + E) total cost; the two differ only in
/// tie-breaking (paper Sections 4 and 6.2).
///
/// Tie-breaking here follows the paper's characterization of ETF: among
/// equally early (task, processor) pairs the task with the larger *static*
/// priority — the bottom level — wins; remaining ties resolve to the
/// smaller task id, then the smaller processor id.

namespace flb {

namespace platform {
class CostModel;  // platform/cost_model.hpp
}  // namespace platform

class EtfScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ETF"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;

  /// ETF priced through the platform cost model: admission windows, dead
  /// processors, speeds, and the model's communication mode (clique /
  /// routed hops / link-busy reservations, which are committed for every
  /// placement). On a plain clique model this selects exactly the same
  /// schedule as run() — the regression guard in platform_test relies on
  /// it. The model is mutated (link reservations) under link-busy pricing.
  [[nodiscard]] Schedule run_on(const TaskGraph& g, platform::CostModel& model);
};

}  // namespace flb
