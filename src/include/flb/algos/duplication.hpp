#pragma once

#include <span>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sched/validator.hpp"

/// \file duplication.hpp
/// Task-duplication scheduling. The paper's introduction contrasts the
/// non-duplicating heuristics it studies (MCP, ETF, DLS, FCP, FLB) with
/// duplication-based ones (DSH, BTDH, CPFD): "Duplicating tasks results in
/// better scheduling performance but significantly increases scheduling
/// cost." This module makes that trade-off measurable in the ablation
/// benches. The heuristic implemented here follows DSH's idea (Kruatrachue
/// & Lewis 1988): place each task on its best processor and greedily copy
/// the *critical parent* — the predecessor whose message dictates the
/// task's start — into the processor's idle time whenever the copy lets
/// the task start earlier.

namespace flb {

/// A schedule in which a task may execute on several processors (each
/// execution is an *instance*). Per-processor timelines stay sorted and
/// overlap-free, exactly as in Schedule.
class DupSchedule {
 public:
  DupSchedule(ProcId num_procs, TaskId num_tasks);

  /// Add an instance of t on p over [start, finish). Throws on overlap,
  /// negative times or inverted intervals. A task may gain any number of
  /// instances, at most one per processor.
  void place(TaskId t, ProcId p, Cost start, Cost finish);

  /// All instances of t (possibly empty), in placement order.
  [[nodiscard]] std::span<const Placement> instances(TaskId t) const {
    return instances_[t];
  }

  /// True iff t has at least one instance.
  [[nodiscard]] bool has_instance(TaskId t) const {
    return !instances_[t].empty();
  }

  /// The instance of t on p, or nullptr if none.
  [[nodiscard]] const Placement* instance_on(TaskId t, ProcId p) const;

  /// Earliest finish over t's instances. t must have an instance.
  [[nodiscard]] Cost earliest_finish(TaskId t) const;

  /// Tasks on processor p in execution order (tasks may repeat across
  /// processors, never within one).
  [[nodiscard]] std::span<const TaskId> tasks_on(ProcId p) const {
    return timelines_[p];
  }

  /// Start/finish of the instance of `t` on `p` (must exist).
  [[nodiscard]] const Placement& placement_on(TaskId t, ProcId p) const;

  /// Earliest start >= `earliest` fitting `duration` on p (idle gaps
  /// included), as Schedule::earliest_gap.
  [[nodiscard]] Cost earliest_gap(ProcId p, Cost earliest,
                                  Cost duration) const;

  /// Earliest moment t's data can be complete on p: for every predecessor,
  /// the best arrival over its instances (same-processor instances are
  /// free, remote ones pay the edge cost). Every predecessor must have an
  /// instance. Entry tasks yield 0.
  [[nodiscard]] Cost data_ready(const TaskGraph& g, TaskId t, ProcId p) const;

  [[nodiscard]] ProcId num_procs() const {
    return static_cast<ProcId>(timelines_.size());
  }
  [[nodiscard]] TaskId num_tasks() const {
    return static_cast<TaskId>(instances_.size());
  }

  /// Number of instances in total (>= num_tasks for a complete schedule;
  /// the excess is the duplication volume).
  [[nodiscard]] std::size_t num_instances() const { return num_instances_; }

  /// Makespan: the latest finish over all instances.
  [[nodiscard]] Cost makespan() const;

 private:
  std::vector<std::vector<Placement>> instances_;  // per task
  std::vector<std::vector<TaskId>> timelines_;     // per proc, start order
  std::vector<std::vector<Placement>> slots_;      // parallel to timelines_
  std::size_t num_instances_ = 0;
};

/// Feasibility check for duplication schedules: every task has at least
/// one instance; instances have the right duration and never overlap on a
/// processor; every instance starts no earlier than the best possible
/// arrival from each predecessor (over that predecessor's instances).
std::vector<Violation> validate_dup_schedule(const TaskGraph& g,
                                             const DupSchedule& s,
                                             double tolerance = 1e-9);

/// True iff validate_dup_schedule reports nothing.
bool is_valid_dup_schedule(const TaskGraph& g, const DupSchedule& s,
                           double tolerance = 1e-9);

/// DSH-style duplication scheduler. Tasks are taken in descending
/// bottom-level order (ready tasks only); each is evaluated on every
/// processor with greedy critical-parent duplication (one level deep — a
/// duplicate is fed by existing instances only) and committed where it
/// starts earliest. Complexity roughly O(V P (d + log V)) with d the
/// maximum in-degree, i.e. well above every non-duplicating algorithm in
/// this library — the cost side of the paper's trade-off.
class DupScheduler {
 public:
  /// Schedule g on num_procs processors with duplication.
  [[nodiscard]] DupSchedule run(const TaskGraph& g, ProcId num_procs);

  [[nodiscard]] std::string name() const { return "DUP"; }
};

}  // namespace flb
