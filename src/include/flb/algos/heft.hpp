#pragma once

#include <vector>

#include "flb/sched/hetero.hpp"
#include "flb/sched/schedule.hpp"

/// \file heft.hpp
/// HEFT and CPOP (Topcuoglu, Hariri & Wu, IEEE TPDS 2002) on the related-
/// machines extension of the paper's model — the best-known successors of
/// the list-scheduling line the paper belongs to, included as the
/// "where this research went next" extension.
///
/// * **HEFT** (Heterogeneous Earliest Finish Time): tasks in descending
///   *upward rank* — mean execution time plus the heaviest
///   (comm + rank) path to an exit — each placed on the processor that
///   finishes it earliest, idle gaps included. O(V log V + (E+V)P + V·k)
///   with k the average tasks per processor (insertion search).
/// * **CPOP** (Critical Path On a Processor): priorities are upward +
///   downward rank; every task on the (rank-defined) critical path is
///   pinned to the single processor executing the whole path fastest;
///   the rest go to their earliest-finish processor.
///
/// With a uniform machine both reduce to communication-aware homogeneous
/// list schedulers (HEFT ~ a bottom-level-priority MCP-I), which the tests
/// exploit for cross-checking.

namespace flb {

/// HEFT's upward ranks: rank_u(t) = w(t) + max over succ (comm + rank_u),
/// with w(t) the mean execution time over processors.
std::vector<Cost> upward_ranks(const TaskGraph& g,
                               const HeteroMachine& machine);

/// Upward ranks priced through the platform cost model: w(t) is the mean
/// execution time of the (possibly overridden) work, message weights go
/// through the model's latency factor. Identical to the HeteroMachine
/// overload for a clique model with the same speeds.
std::vector<Cost> upward_ranks(const TaskGraph& g,
                               const platform::CostModel& model);

/// CPOP's downward ranks: rank_d(t) = max over preds (rank_d + w + comm).
std::vector<Cost> downward_ranks(const TaskGraph& g,
                                 const HeteroMachine& machine);

/// Schedule g on the heterogeneous machine with HEFT.
Schedule heft(const TaskGraph& g, const HeteroMachine& machine);

/// HEFT priced through the platform cost model: availability windows and
/// dead processors restrict placement, communication follows the model's
/// mode (clique / routed hops / link-busy, committing reservations per
/// placement), and execution uses the model's speeds and work overrides.
/// On a clique model with the machine's speeds this selects exactly the
/// same schedule as the HeteroMachine overload. The model is mutated
/// (link reservations) under link-busy pricing.
Schedule heft(const TaskGraph& g, platform::CostModel& model);

/// Schedule g on the heterogeneous machine with CPOP.
Schedule cpop(const TaskGraph& g, const HeteroMachine& machine);

}  // namespace flb
