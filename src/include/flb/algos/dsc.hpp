#pragma once

#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/util/types.hpp"

/// \file dsc.hpp
/// DSC — Dominant Sequence Clustering (Yang & Gerasoulis, IEEE TPDS 1994),
/// the clustering step of the DSC-LLB multi-step method (paper
/// Section 3.3). DSC schedules the DAG on an *unbounded* number of virtual
/// processors (clusters) to minimize communication:
///
///  * task priorities are tlevel + blevel, where blevel is static and
///    tlevel is computed incrementally as tasks are scheduled;
///  * tasks are examined in priority order among the free (ready) tasks;
///  * the destination is either the cluster the task's last message arrives
///    from, or a fresh cluster — whichever lets the task start earlier
///    (zeroing the communication of every predecessor already in the
///    receiving cluster), exactly the acceptance rule the FLB paper's
///    Section 3.3 describes;
///  * each cluster executes its tasks back-to-back in assignment order.
///
/// Complexity O((E + V) log V) — independent of P, which is why DSC-LLB's
/// running time stays flat across Fig. 2's processor sweep.

namespace flb {

/// Identifier of a cluster produced by DSC.
using ClusterId = std::uint32_t;

/// Result of the clustering step.
struct Clustering {
  /// cluster_of[t] — the cluster of task t; clusters are dense 0..C-1.
  std::vector<ClusterId> cluster_of;
  /// Number of clusters C.
  ClusterId num_clusters = 0;
  /// DSC's own (unbounded-processor) start times, one per task.
  std::vector<Cost> start;
  /// DSC's own finish times, one per task.
  std::vector<Cost> finish;
  /// Tasks per cluster in DSC's execution order.
  std::vector<std::vector<TaskId>> members;

  /// DSC's unbounded-processor schedule length.
  [[nodiscard]] Cost schedule_length() const;
};

/// Run DSC on g. The returned clustering is feasible for its own virtual
/// schedule: tasks of one cluster run back-to-back and every message
/// arrives before its consumer starts.
Clustering dsc_cluster(const TaskGraph& g);

}  // namespace flb
