#pragma once

#include "flb/sched/scheduler.hpp"

/// \file ish.hpp
/// ISH — Insertion Scheduling Heuristic (Kruatrachue & Lewis 1988, the
/// non-duplicating companion of DSH). Static-level list scheduling like
/// HLFET, but each task may start inside an idle gap of its processor
/// (communication delays carve such holes). The cheapest insertion-based
/// algorithm in the library; contrast with MCP-I, which pairs insertion
/// with ALAP priorities. O(V log W + (E+V)P + gap search).

namespace flb {

class IshScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ISH"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
