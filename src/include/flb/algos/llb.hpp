#pragma once

#include "flb/algos/dsc.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sched/scheduler.hpp"

/// \file llb.hpp
/// LLB — List-based Load Balancing (Rădulescu, van Gemund & Lin,
/// IPPS/SPDP 1999): the second step of DSC-LLB. LLB maps the clusters
/// produced by DSC onto the P physical processors and orders the tasks,
/// treating each cluster as an indivisible unit (once any task of a cluster
/// is placed on a processor, the whole cluster is *mapped* there).
///
/// Following the paper's Section 3.3: at each iteration the destination is
/// the processor becoming idle the earliest; the two candidate tasks are
/// (a) the highest-priority ready task already mapped to that processor and
/// (b) the highest-priority ready unmapped task — and the one that starts
/// the earliest is scheduled (ties prefer the mapped candidate, keeping
/// clusters together). Priorities are bottom levels computed with
/// intra-cluster communication zeroed — after clustering those messages are
/// free by construction. (The paper's text reads "least bottom level"; we
/// read this as "least latest-possible-start", i.e. the conventional
/// largest-bottom-level-first rule that MCP's description also uses,
/// since scheduling least-critical tasks first is clearly not intended.)
///
/// When the earliest-idle processor has no ready mapped task and no
/// unmapped task exists, the earliest-idle processor that *does* have a
/// ready mapped task is used instead (the paper leaves this case implicit).
///
/// Complexity O(C log C + V log W + E), C = number of clusters.

namespace flb {

/// Map a clustering onto num_procs processors and order the tasks.
Schedule llb_map(const TaskGraph& g, const Clustering& clustering,
                 ProcId num_procs);

/// The complete DSC-LLB multi-step scheduler (paper Section 3.3): DSC
/// clustering followed by LLB cluster mapping.
class DscLlbScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DSC-LLB"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
