#pragma once

#include <vector>

#include "flb/algos/dsc.hpp"
#include "flb/sched/schedule.hpp"

/// \file mapping.hpp
/// Cluster-mapping steps for multi-step scheduling (paper Sections 1/3.3).
/// A multi-step method first clusters for an unbounded machine (DSC,
/// Sarkar) and then maps clusters onto the P physical processors. LLB
/// (llb.hpp) is the mapping FLB's authors proposed; this header provides
/// the simpler classical alternatives LLB was shown to outperform, so the
/// multi-step comparison the paper cites ([8]) can be reproduced:
///
///  * wrap mapping      — cluster i goes to processor i mod P (the
///                        round-robin "wrap" rule);
///  * work mapping      — clusters sorted by total computation, heaviest
///                        first, each to the currently least-loaded
///                        processor (LPT-style load balancing on cluster
///                        weights, communication-blind).
///
/// Both then order tasks by list scheduling with bottom-level priorities
/// under the fixed task->processor assignment.

namespace flb {

/// List-schedule g under a FIXED task->processor assignment: repeatedly
/// take the ready task with the largest bottom level (comm-inclusive,
/// ties toward smaller id) and start it as early as its assigned
/// processor and messages allow. The assignment must map every task to a
/// processor < num_procs. Exposed for reuse and testing.
Schedule schedule_with_fixed_assignment(const TaskGraph& g,
                                        const std::vector<ProcId>& proc_of,
                                        ProcId num_procs);

/// Round-robin cluster mapping: cluster c -> processor c mod P.
Schedule wrap_map(const TaskGraph& g, const Clustering& clustering,
                  ProcId num_procs);

/// Load-balancing cluster mapping: clusters descending by total
/// computation, each to the least-loaded processor so far.
Schedule work_map(const TaskGraph& g, const Clustering& clustering,
                  ProcId num_procs);

}  // namespace flb
