#pragma once

#include "flb/algos/dsc.hpp"
#include "flb/graph/task_graph.hpp"

/// \file sarkar.hpp
/// Sarkar's edge-zeroing clustering (V. Sarkar, "Partitioning and
/// Scheduling Parallel Programs for Execution on Multiprocessors", 1989 —
/// the paper's reference [9] and, with DSC, the classic first step of
/// multi-step scheduling).
///
/// Algorithm: start from singleton clusters; examine edges in descending
/// communication-cost order; merge the two endpoint clusters iff doing so
/// does not increase the unbounded-processor schedule length. The schedule
/// length of a tentative clustering is evaluated by list scheduling with
/// computation-and-communication bottom-level priorities, each cluster
/// acting as one processor and intra-cluster messages costing zero —
/// O(V log W + E) per evaluation, O(E (V log W + E)) in total, far above
/// DSC's O((E+V) log V); the multi-step bench shows both the cost gap and
/// the quality comparison.

namespace flb {

/// Run Sarkar's clustering on g. The returned Clustering carries the final
/// evaluation's start/finish times (its unbounded-processor schedule).
Clustering sarkar_cluster(const TaskGraph& g);

}  // namespace flb
