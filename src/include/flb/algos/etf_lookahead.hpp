#pragma once

#include "flb/sched/scheduler.hpp"

/// \file etf_lookahead.hpp
/// ETF-LA — ETF with a one-step lookahead tie-break. This library's own
/// ablation variant (clearly *not* from the paper): it probes the paper's
/// Section 6.2 explanation of why earliest-start scheduling loses on LU —
/// "FLB, like ETF, does not consider future communication and computation
/// when taking a scheduling decision".
///
/// Selection: exactly ETF's criterion — the global minimum EST over all
/// (ready task, processor) pairs. What changes is the tie-break: every
/// pair achieving that minimum is scored by the estimated start of the
/// task's *critical child* (the successor with the heaviest
/// comm + bottom-level), evaluated optimistically on the candidate
/// processor and on the earliest-idle processor; the smallest projected
/// child start wins. Remaining ties fall back to ETF's static bottom
/// level. Earliest-start packing is therefore preserved; only the choice
/// among equally early pairs — precisely where ETF, FLB and this variant
/// differ — gains one step of future awareness.
///
/// Empirical outcome (bench_ablation_lookahead): on the join-heavy
/// workloads ETF-LA lands almost exactly on FLB's quality, not ETF's —
/// evidence that the LU gap between the two is governed by the tie-break
/// cascade itself (static priorities happen to win there) rather than by
/// the absence of lookahead per se. Complexity is ETF's class with an
/// extra in-degree factor; this is a quality probe, not a fast scheduler.

namespace flb {

class EtfLookaheadScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ETF-LA"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
