#pragma once

#include "flb/sched/scheduler.hpp"

/// \file fcp.hpp
/// FCP — Fast Critical Path (Rădulescu & van Gemund, ICS 1999). The direct
/// predecessor of FLB: a list scheduler with *static* task selection and
/// the two-processor placement rule. At each iteration the ready task with
/// the highest static priority (bottom level) is selected, and only two
/// processors are considered for it — its enabling processor and the
/// processor becoming idle the earliest. The ICS'99 paper proves one of
/// these two always attains the task's minimum start time (the property
/// FLB strengthens to *task* selection as well; see Theorem 3), giving
/// complexity O(V(log W + log P) + E) == O(V log P + E) since the ready
/// heap is the only W-sized structure.
///
/// The difference from FLB (and the reason Fig. 4 shows them apart): FCP
/// commits to the statically most critical ready task even when another
/// ready task could start earlier; FLB always schedules the earliest
/// starting one.

namespace flb {

class FcpScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "FCP"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
