#pragma once

#include "flb/sched/scheduler.hpp"

/// \file hlfet.hpp
/// HLFET — Highest Level First with Estimated Times (Adam, Chandy & Dickson
/// 1974), the archetypal static list scheduler and the simplest credible
/// baseline in this library. Ready tasks are ordered by static level (the
/// computation-only bottom level, larger first); the selected task goes to
/// the processor on which it starts the earliest. O(V log W + (E+V)P).
///
/// HLFET predates communication-aware priorities: its level ignores edge
/// costs entirely, which is exactly the weakness MCP (communication-aware
/// ALAP) and the earliest-start family (ETF/FCP/FLB) address. Included as
/// the historical control for the benchmark ablations.

namespace flb {

class HlfetScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "HLFET"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;
};

}  // namespace flb
