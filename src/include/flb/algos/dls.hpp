#pragma once

#include "flb/sched/scheduler.hpp"

/// \file dls.hpp
/// DLS — Dynamic Level Scheduling (Sih & Lee, IEEE TPDS 1993), one of the
/// non-duplicating one-step algorithms the paper's introduction compares
/// against. At each iteration DLS picks the (ready task, processor) pair
/// with the largest *dynamic level*
///
///     DL(t, p) = SL(t) - max(EMT(t, p), PRT(p))
///
/// where SL is the static level (the computation-only bottom level). Unlike
/// ETF, which greedily minimizes the start time alone, DLS trades start
/// time against the task's remaining critical work. Like ETF it examines
/// every ready task on every processor: O(W(E+V)P) — the cost class FLB
/// eliminates.
///
/// Ties break toward the smaller task id, then the smaller processor id.

namespace flb {

namespace platform {
class CostModel;  // platform/cost_model.hpp
}  // namespace platform

class DlsScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "DLS"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;

  /// DLS priced through the platform cost model (see EtfScheduler::run_on
  /// for the conventions). Selects the same schedule as run() on a plain
  /// clique model.
  [[nodiscard]] Schedule run_on(const TaskGraph& g, platform::CostModel& model);
};

}  // namespace flb
