#pragma once

#include <cstdint>

#include "flb/sched/scheduler.hpp"

/// \file mcp.hpp
/// MCP — Modified Critical Path (Wu & Gajski, IEEE TPDS 1990). A list
/// scheduler whose task priorities are the *latest possible start times*
/// (ALAP): the critical path length minus the task's bottom level; smaller
/// ALAP means higher priority. Tasks are taken in priority order and placed
/// on the processor where they start the earliest.
///
/// This is the paper's lower-cost MCP variant: ties between equal ALAP
/// values are broken randomly (instead of by descendant-priority
/// comparison), reducing the complexity to O(V log V + (E+V)P). The random
/// tie-break keys are drawn once per run from the construction seed, so a
/// given (seed, graph, P) is fully deterministic.
///
/// Tasks are consumed through a ready list ordered by (ALAP, random key):
/// whenever every task has positive computation cost this coincides with a
/// straight sweep of the priority-sorted task list, because then ALAP
/// strictly increases along every edge; the ready list additionally keeps
/// the schedule feasible for degenerate zero-cost tasks.

namespace flb {

class McpScheduler final : public Scheduler {
 public:
  /// `insertion` selects the processor-assignment rule: false (default)
  /// places each task at the end of the chosen processor's timeline (the
  /// rule this paper's Section 3.1 describes); true additionally considers
  /// idle gaps between already-scheduled tasks (the original Wu & Gajski
  /// formulation — better schedules, higher cost). The insertion variant
  /// registers as "MCP-I".
  explicit McpScheduler(std::uint64_t seed = 1, bool insertion = false)
      : seed_(seed), insertion_(insertion) {}

  [[nodiscard]] std::string name() const override {
    return insertion_ ? "MCP-I" : "MCP";
  }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;

 private:
  std::uint64_t seed_;
  bool insertion_;
};

}  // namespace flb
