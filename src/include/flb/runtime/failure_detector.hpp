#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/sim/faults.hpp"
#include "flb/util/types.hpp"

/// \file failure_detector.hpp
/// Unreliable, heartbeat-based failure detection.
///
/// The perfect-event controller (recovery_runtime.hpp) still trusts the
/// simulator as a sensor: every SimEvent::kFailure is ground truth,
/// delivered the instant it happens. A real distributed-memory machine has
/// no such sensor — remote liveness is inferred from heartbeats that are
/// late, lossy and sometimes wrong. This module models that inference as a
/// deterministic φ-accrual-style monitor:
///
///  * Every processor emits a heartbeat at k·period (k = 1, 2, ...) while
///    it is alive per the resolved fault plan. Emission timing is
///    machine-level, so the belief stream is independent of whatever
///    schedule is executing — re-simulating a repaired continuation never
///    changes what the detector saw.
///  * Each emission is independently lost with `loss_probability`, or
///    arrives `delay_factor · period` late with `delay_probability`, drawn
///    from the plan seed per (observer, processor, beat index) with the
///    same splitmix decorrelation the message-fault machinery uses —
///    heartbeat paths are lossy *independently per observer*, so one noisy
///    path does not silence a processor for the whole cluster. A heartbeat
///    emitted just before a death may still arrive after it — the monitor
///    can be *fresher than the truth*.
///  * Detection is **per-observer**: each processor o forms its own belief
///    stream from the heartbeats *it* can hear. Heartbeats are direct
///    point-to-point probes (the SWIM model), so a beat from p reaches o
///    only while the direct link o ~ p is unpartitioned at the arrival
///    instant — an observer behind a partial partition (FaultPlan::
///    partitions) goes deaf to the far side and wrongly suspects it.
///    quorum_beliefs() merges the observer views into a cluster-wide
///    indirect-suspicion stream: a processor is suspected (confirmed)
///    cluster-wide only while at least `quorum` observers that are alive
///    and have a live direct link to it concur, so a single lossy or
///    partitioned path can no longer manufacture a cluster-wide false
///    alarm on its own.
///  * The suspicion score of a processor at time t is
///    φ(t) = (t − last_arrival) / period — silence measured in expected
///    beats, the first-order φ-accrual statistic. Crossing `suspect_after`
///    emits kSuspected; crossing `confirm_after` emits kConfirmedDead; any
///    later arrival emits kExonerated and resets the score. A rebooted
///    processor resumes beating, so a rejoin surfaces as an exoneration.
///
/// False positives (a lossy streak suspends a live processor) and false
/// negatives (a death whose rejoin lands inside the suspicion window) are
/// both possible by construction. The stream is a pure function of
/// (plan, num_procs): beliefs(until₁) is a prefix of beliefs(until₂) for
/// until₁ ≤ until₂, which is what lets the controller consume it
/// incrementally across re-simulations.

namespace flb::runtime {

/// What the detector came to believe about a processor.
enum class BeliefKind : int {
  kSuspected = 0,      ///< silent past the suspect threshold
  kConfirmedDead = 1,  ///< silent past the confirm threshold
  kExonerated = 2,     ///< a heartbeat arrived from a suspect
};

/// One entry of the belief stream.
struct BeliefEvent {
  Cost time = 0.0;
  BeliefKind kind = BeliefKind::kSuspected;
  ProcId proc = kInvalidProc;
  /// Arrival instant of the last heartbeat the monitor had seen when this
  /// belief formed (the silence started here).
  Cost last_heard = 0.0;
  /// Accrual score φ at emission: periods of silence for suspicions and
  /// confirmations, 0 for exonerations.
  double score = 0.0;

  /// Deterministic sort/dedup key.
  [[nodiscard]] auto key() const {
    return std::tuple<Cost, int, ProcId>(time, static_cast<int>(kind), proc);
  }
};

/// One belief as the stable log line belief_log_text joins ("suspect p3 @
/// 12.5 last-heard 9 score 2.33" and friends) — the unit of the belief
/// digest, so the format is part of the determinism contract.
[[nodiscard]] std::string to_string(const BeliefEvent& belief);

/// One line per belief (to_string joined with newlines) — the text the
/// belief digest is computed over.
[[nodiscard]] std::string belief_log_text(
    const std::vector<BeliefEvent>& beliefs);

/// The deterministic heartbeat monitor. Construction resolves the plan's
/// faults once (validate(num_procs) is called); beliefs() then replays the
/// per-processor arrival process against the accrual thresholds.
class FailureDetector {
 public:
  /// Requires world.heartbeat.enabled(); throws flb::Error otherwise.
  FailureDetector(const FaultPlan& world, ProcId num_procs);

  /// Observer 0's belief stream up to and including `until`, sorted by
  /// (time, kind, proc). Pure and prefix-stable in `until`. This is the
  /// single-observer view the controller consumes without gossip — one
  /// partitioned or lossy path to observer 0 can fool it.
  [[nodiscard]] std::vector<BeliefEvent> beliefs(Cost until) const;

  /// Observer `o`'s belief stream: what processor o came to believe about
  /// every processor from the heartbeats it could hear. Observer 0 uses
  /// the legacy per-(proc, beat) loss/delay stream, so beliefs(0, until)
  /// == beliefs(until) byte for byte; other observers draw their path
  /// fates from a per-observer stream. Pure and prefix-stable in `until`.
  [[nodiscard]] std::vector<BeliefEvent> beliefs(ProcId o, Cost until) const;

  /// The deterministic gossip/indirect-suspicion aggregate: processor p is
  /// suspected (confirmed dead) cluster-wide only while at least `quorum`
  /// observers that are alive and have an unpartitioned direct link to p
  /// concur in suspecting (confirming) it; dropping below the quorum
  /// exonerates cluster-wide. `last_heard` of an aggregate event is the
  /// freshest evidence among the concurring observers, `score` the number
  /// of observers that concurred. With quorum larger than the concurring
  /// eligible observers a cluster-wide suspicion never forms (a fully
  /// partitioned minority cannot condemn anyone). Requires quorum >= 1.
  /// Pure and prefix-stable in `until`.
  [[nodiscard]] std::vector<BeliefEvent> quorum_beliefs(ProcId quorum,
                                                        Cost until) const;

  /// Arrival time at observer 0 of processor `p`'s k-th heartbeat
  /// (k >= 1): kInfiniteTime when the beat was lost, never emitted (the
  /// processor was dead at k·period), or cut off by a partition at the
  /// arrival instant. Exposed so tests can search seeds for specific
  /// arrival patterns (e.g. suspicion flaps).
  [[nodiscard]] Cost arrival(ProcId p, std::uint64_t k) const;

  /// Arrival time at observer `o` of processor `p`'s k-th heartbeat. An
  /// observer always hears itself while alive; a beat crossing a
  /// partitioned direct link at its arrival instant is lost for that
  /// observer only.
  [[nodiscard]] Cost arrival(ProcId o, ProcId p, std::uint64_t k) const;

  [[nodiscard]] const HeartbeatConfig& config() const { return hb_; }

 private:
  HeartbeatConfig hb_;
  std::uint64_t seed_ = 0;
  ProcId num_procs_ = 0;
  /// Per-processor dead intervals [death, rejoin) (last one may extend to
  /// infinity), from the resolved plan.
  std::vector<std::vector<std::pair<Cost, Cost>>> down_;
  /// Canonical per-link partition windows, from the resolved plan.
  std::vector<LinkOutage> outages_;

  [[nodiscard]] bool alive_at(ProcId p, Cost t) const;
  /// Observer o's accrual replay for subject p alone, appended to `out`.
  void subject_beliefs(ProcId o, ProcId p, Cost until,
                       std::vector<BeliefEvent>& out) const;
};

}  // namespace flb::runtime
