#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "flb/runtime/failure_detector.hpp"
#include "flb/sched/repair.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sim/faults.hpp"
#include "flb/sim/machine_sim.hpp"

/// \file recovery_runtime.hpp
/// Online, event-driven recovery: closed-loop repair with no fault oracle.
///
/// repair_schedule() (sched/repair.hpp) consumes the *entire* FaultPlan up
/// front — an oracle no real distributed-memory machine has. This module
/// closes the loop the way a real runtime would: the fault-injecting
/// simulator executes the current schedule and emits an observable event
/// stream (SimOptions::event_log); the controller reacts to each observed
/// event by repairing at a horizon truncated to observed history, installs
/// the continuation, and resumes execution — re-repairing on every
/// subsequent event, including opportunistic give-back when a rejoin is
/// observed.
///
/// **The no-future-knowledge guarantee.** All fault information reaches the
/// controller through HorizonFaultView, which is built exclusively from
/// SimEvents whose timestamps lie at or before the current observation
/// horizon. The view's plan() contains only observed failures, rejoins and
/// slowdowns; an active slowdown whose end has not been observed is treated
/// as permanent (until = kInfiniteTime), and a killed processor is treated
/// as dead until its rejoin is observed — give-back therefore emerges
/// naturally at the rejoin event instead of being scheduled in advance.
/// The scalar configuration (seed, checkpoint policy, message-fault model,
/// runtime spread) is copied from the world plan: those describe the
/// machine's *configuration*, which a runtime legitimately knows, not the
/// timing of future faults. The partial execution handed to each repair is
/// likewise horizon-sliced: a task still in flight at the horizon is
/// re-planned, because its eventual finish is not yet observable. A test
/// poisons every plan entry beyond the horizon and asserts bit-identical
/// repairs.
///
/// **Policy knobs** (RuntimeOptions) make the controller robust rather
/// than naive:
///  * *Debounce*: events within `debounce` of the batch's first unobserved
///    event are coalesced into one repair, so a correlated-domain cascade
///    triggers one repair, not one per strike — no repair storms. The
///    repair horizon is the end of the debounce window (the controller
///    waited that long to see the burst settle).
///  * *Bounded retry with exponential backoff*: when a processor that just
///    received migrated work fails again mid-recovery, the next repair's
///    release is pushed back by backoff_base * 2^(attempt-1); after
///    `max_retries` such re-strikes the controller stops trusting the
///    optimizing engine and degrades permanently to the greedy fallback.
///  * *Graceful degradation*: whenever fewer than `degrade_below`
///    processors are observed alive, the repair uses the greedy
///    topological min-EST fallback instead of the resumed FLB engine.
///
/// Every continuation emitted inside the loop is checked with the
/// durations-aware validator and the linter's feasibility tier before it
/// is installed. The whole loop is a pure function of (graph, schedule,
/// world plan, options): two runs produce bit-identical event logs,
/// repairs and final schedules — the digests in RuntimeResult exist to
/// diff exactly that.

namespace flb::runtime {

/// Everything the controller may know about faults at a given observation
/// horizon: a FaultPlan reconstructed purely from observed SimEvents plus
/// the machine's scalar configuration. The view can only grow — advance()
/// raises the horizon, observe() adds events at or before it.
class HorizonFaultView {
 public:
  /// Copies only the configuration scalars of `world` (seed, checkpoint,
  /// message model, runtime spread); no failure, rejoin, slowdown, domain
  /// or burst entry is taken. `num_procs` sizes the liveness tracking.
  HorizonFaultView(const FaultPlan& world, ProcId num_procs);

  /// Raise the observation horizon (monotone; lowering throws).
  void advance(Cost horizon);

  /// Fold one observed event into the view. Throws if the event lies
  /// beyond the horizon — that would be future knowledge. Machine-level
  /// events extend the plan (an observed slowdown stays active until its
  /// end event is observed; an observed failure keeps the processor dead
  /// until its rejoin is observed); execution-level events (task kills,
  /// message drops) only mark the key as seen — the horizon-sliced
  /// SimResult carries their payload. Re-observing a key is a no-op.
  void observe(const SimEvent& event);

  /// True iff `event` has already been observed. A kMessageDropped event is
  /// considered observed once *any* drop of its (producer, consumer) pair
  /// has been — re-simulating a continuation shifts the producer's finish
  /// and with it the drop's timestamp, but a deterministic message fate
  /// makes it the same loss; keying drops by edge keeps the observation
  /// space finite and the controller loop convergent.
  [[nodiscard]] bool observed(const SimEvent& event) const;

  [[nodiscard]] Cost horizon() const { return horizon_; }

  /// The observed-history fault plan: passes FaultPlan::validate and feeds
  /// repair_schedule directly.
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Processors not currently observed dead (failure seen, rejoin not).
  [[nodiscard]] ProcId observed_alive() const;

  /// True iff `p` is currently observed dead (failure seen, rejoin not).
  [[nodiscard]] bool observed_dead(ProcId p) const { return dead_[p] != 0; }

  /// Number of distinct events observed so far.
  [[nodiscard]] std::size_t observed_events() const { return seen_.size(); }

 private:
  FaultPlan plan_;
  ProcId num_procs_;
  Cost horizon_ = 0.0;
  std::vector<char> dead_;
  std::set<std::tuple<Cost, int, ProcId, TaskId, TaskId, ProcId>> seen_;
  std::set<std::pair<TaskId, TaskId>> dropped_;
};

/// Policy knobs of the online controller.
struct RuntimeOptions {
  /// Coalescing window: a repair batch spans [t0, t0 + debounce] where t0
  /// is the earliest unobserved event; the repair horizon is the window's
  /// end. 0 still coalesces events at the same instant.
  Cost debounce = 0.0;
  /// Bounded retry: how often a repair-target processor may fail again
  /// mid-recovery before the controller degrades to greedy for good.
  std::size_t max_retries = 3;
  /// First backoff delay added to the release when a repair target fails
  /// again; doubles per further attempt (backoff_base * 2^(attempt-1)).
  Cost backoff_base = 1.0;
  /// Degrade to the greedy fallback when observed-alive drops below this.
  ProcId degrade_below = 2;
  /// Options forwarded to the resumed FLB engine inside repair_schedule.
  FlbOptions flb;
  /// Check every continuation with the durations-aware validator and the
  /// linter's feasibility tier before installing it (throws on failure).
  bool validate = true;
  /// Network model and latency scaling of the simulated executions.
  SimNetwork network = SimNetwork::kContentionFree;
  Cost latency_factor = 1.0;

  /// Unreliable-detector mode (requires world.heartbeat.enabled()): the
  /// controller no longer sees the simulator's raw liveness events —
  /// kFailure and kRejoin become invisible, and remote liveness is inferred
  /// from the FailureDetector's belief stream instead, false positives and
  /// all. Slowdowns, permanent message drops and task-kill telemetry stay
  /// directly observable (local throttling counters, sender timeouts, and
  /// durable-store lease expiry respectively — none of them require knowing
  /// whether a *remote processor* is alive).
  bool use_detector = false;
  /// With use_detector: react to kSuspected by launching a speculative
  /// continuation — the suspect's unfinished queue re-executes elsewhere
  /// while its first in-flight task stays pinned in place
  /// (RepairOptions::suspects). kConfirmedDead promotes the speculation
  /// (the next repair simply drops the pin); kExonerated cancels it and
  /// reconciles first-completion-wins, with the duplicate work priced into
  /// RuntimeResult::speculative_waste. False waits for kConfirmedDead
  /// before migrating anything — the confirm-then-repair baseline.
  bool speculate = true;
  /// With use_detector: re-derive the checkpoint interval each reaction
  /// from the Young/Daly first-order optimum sqrt(2·overhead/λ̂), where λ̂
  /// is a windowed per-processor MLE over confirmed kills. The adapted
  /// interval applies to the tasks each repair re-plans (via
  /// SimOptions::checkpoint_interval), still gated by min_downstream.
  /// Requires world.checkpoint.enabled() to have any effect.
  bool adapt_checkpoint = false;
  /// Lookback window of the failure-rate estimator (time units); the MLE
  /// counts confirmed kills within [horizon - window, horizon]. Infinite =
  /// the whole observed history.
  Cost failure_rate_window = kInfiniteTime;

  /// With use_detector: replace the single-observer belief stream by the
  /// gossip/indirect-suspicion aggregate (FailureDetector::quorum_beliefs)
  /// — a processor is believed dead cluster-wide only while at least
  /// `quorum` observers with a live direct link to it concur. The
  /// controller additionally tracks its own (observer-0) view: a processor
  /// it suspects locally while the cluster still trusts it is *unreachable,
  /// not dead* — excluded from new placements via
  /// RepairOptions::unreachable, its in-flight work pinned in place, and
  /// reconciled (give-back of its queue) when the local exoneration
  /// signals the partition healed. Off = the legacy observer-0 loop,
  /// digest-identical to PR 7.
  bool use_gossip = false;
  /// Concurring-observer threshold of the gossip aggregate (>= 1).
  ProcId quorum = 2;

  /// With use_detector: self-tune the effective suspect threshold from the
  /// observed false-alarm rate. The controller keeps a multiplier `scale`
  /// (>= 1) on heartbeat.suspect_after: every exoneration of a suspect (a
  /// false alarm) raises it multiplicatively by `tune_raise`, capped
  /// strictly below the confirm threshold; once no false alarm has been
  /// seen for `tune_window`, it decays back toward 1 one division per
  /// reaction. A raw suspicion whose subject is exonerated before
  /// last_heard + scale * suspect_after * period is *suppressed* — the
  /// raised threshold would have outlasted the silence — and never
  /// triggers a reaction. RuntimeResult::suspect_trace records the
  /// trajectory.
  bool self_tune = false;
  /// Multiplicative raise per false alarm (and decay divisor); > 1.
  double tune_raise = 1.5;
  /// Quiet time after which the raised threshold starts decaying.
  Cost tune_window = kInfiniteTime;
};

/// One reaction of the controller to a batch of observed events.
struct RepairInvocation {
  Cost observed_at = 0.0;   ///< timestamp of the batch's first new event
  Cost horizon = 0.0;       ///< release horizon the repair ran at
  std::size_t events = 0;   ///< events coalesced into this invocation
  RepairStrategy used = RepairStrategy::kFlbResume;
  ProcId survivors = 0;        ///< processors observed alive at the repair
  std::size_t migrated = 0;    ///< tasks (re)placed by the repair
  std::size_t reexecuted = 0;  ///< finished tasks rolled back (dropped data)
  Cost makespan = 0.0;         ///< the continuation's planned makespan
  /// > 0 when this repair was pushed back by the bounded-retry backoff
  /// (the value is the attempt number).
  std::size_t retry_attempt = 0;
  /// True when every processor was observed dead: no repair is possible,
  /// the controller waits for the next event (a rejoin) instead.
  bool deferred = false;
  /// FNV-1a digest of the continuation's schedule text (0 when deferred) —
  /// the unit of the determinism and poisoned-future comparisons.
  std::uint64_t schedule_digest = 0;
  /// Detector mode: processors suspected but unconfirmed at this reaction.
  ProcId suspects = 0;
  /// Detector mode: this reaction launched a speculative continuation (a
  /// new suspicion entered the batch and speculation is enabled).
  bool speculative = false;
  /// Detector mode: a confirmation promoted an active speculation — the
  /// suspect's pin is dropped and its work migrates for good.
  bool promoted = false;
  /// Detector mode: an exoneration cancelled an active speculation; the
  /// duplicate work it burned is in RuntimeResult::speculative_waste.
  bool cancelled = false;
  /// Adaptive checkpointing: interval installed for the tasks this repair
  /// re-planned (0 = the plan's own interval, i.e. no estimate yet).
  Cost checkpoint_interval = 0.0;
  /// The windowed failure-rate MLE behind it (per processor per time unit).
  double failure_rate = 0.0;
  /// Processors excluded from new placements as unreachable-but-alive at
  /// this reaction (partition-aware repair; 0 outside gossip mode and the
  /// perfect-event loop's observed partitions).
  ProcId unreachable = 0;
  /// Self-tuning: the suspect-threshold multiplier in effect at this
  /// reaction (1 when self-tuning is off).
  double suspect_scale = 1.0;
  /// Provenance: the simulator events this reaction coalesced (the
  /// debounced batch). Machine-level entries also appear in the final
  /// event log; execution-level entries (kills, drops) come from the
  /// intermediate continuation that observed them and may not.
  std::vector<SimEvent> batch;
  /// Provenance: the belief events this reaction coalesced (detector
  /// mode; empty otherwise). `events` counts both vectors together.
  std::vector<BeliefEvent> batch_beliefs;
};

/// Outcome of one online recovery episode.
struct RuntimeResult {
  explicit RuntimeResult(Schedule s) : schedule(std::move(s)) {}

  Schedule schedule;            ///< final installed continuation
  /// Expected wall duration per task of the final continuation (the last
  /// repair's durations); empty when no repair was ever needed. Doubles as
  /// SimOptions::work_override for replays.
  std::vector<Cost> durations;
  SimResult execution;          ///< final simulated execution (world plan)
  std::vector<SimEvent> events; ///< full event log of the final execution
  std::vector<RepairInvocation> repairs;  ///< one entry per reaction
  std::size_t events_observed = 0;  ///< distinct events the view consumed
  bool degraded = false;  ///< the greedy fallback was engaged at least once
  Cost makespan = 0.0;    ///< executed makespan of the final continuation
  bool complete = false;  ///< every task ran to completion
  std::uint64_t event_digest = 0;     ///< FNV-1a over the rendered event log
  std::uint64_t schedule_digest = 0;  ///< FNV-1a over the final schedule text
  /// Detector mode: every belief the controller consumed, in consumption
  /// order (empty without use_detector).
  std::vector<BeliefEvent> beliefs;
  /// FNV-1a over belief_log_text(beliefs) — the belief-stream determinism
  /// digest (0 without use_detector).
  std::uint64_t belief_digest = 0;
  /// Suspicions exonerated before confirmation — the detector cried wolf.
  std::size_t false_alarms = 0;
  /// kConfirmedDead beliefs consumed (includes wrong confirmations later
  /// exonerated).
  std::size_t confirmations = 0;
  /// Wall time + communication the cancelled speculations burned on
  /// duplicate placements that had already started when their suspect was
  /// exonerated (priced through platform::CostModel; first-completion-wins
  /// keeps whatever finished, this is the bill for the rest).
  Cost speculative_waste = 0.0;
  /// Duplicate placements counted into speculative_waste.
  std::size_t speculative_tasks = 0;
  /// Mean (first confirmation − true death time) over real deaths the
  /// detector confirmed; 0 when none. Reporting only — computed against
  /// the resolved world after the episode, never used for control.
  Cost mean_detection_latency = 0.0;
  /// Self-tuning trajectory: (time, effective suspect threshold in periods)
  /// at every change — each false alarm raises it, each quiet-window decay
  /// lowers it (empty without RuntimeOptions::self_tune).
  std::vector<std::pair<Cost, double>> suspect_trace;
  /// Raw suspicions the self-tuned threshold suppressed before they could
  /// trigger a reaction (0 without self_tune).
  std::size_t suppressed_alarms = 0;
};

/// Run one closed-loop online recovery episode: execute `nominal` for `g`
/// under the (hidden) `world` plan, repairing at each observed event per
/// `options`. Deterministic: same inputs, bit-identical result. Throws
/// flb::Error on malformed input or — with options.validate — on any
/// continuation that fails the validator or the lint feasibility tier.
RuntimeResult run_online_recovery(const TaskGraph& g, const Schedule& nominal,
                                  const FaultPlan& world,
                                  const RuntimeOptions& options = {});

/// Render an event log as one line per event (to_string(SimEvent) joined
/// with newlines) — the text the event digest is computed over.
std::string event_log_text(const std::vector<SimEvent>& events);

/// FNV-1a 64-bit digest of a string (schedule text, event log text).
std::uint64_t fnv1a_digest(const std::string& text);

}  // namespace flb::runtime
