#pragma once

#include <cstdint>
#include <span>
#include <tuple>
#include <utility>

#include "flb/util/arena.hpp"
#include "flb/util/dary_heap.hpp"
#include "flb/util/types.hpp"

/// \file scratch.hpp
/// Reusable, arena-backed scratch state for the FLB scheduling engine —
/// the "scheduling as a service" refactor's core layer.
///
/// One FLB run needs O(V + P) working state: the SoA ready-task arrays
/// (tie priority, LMT, EMT, enabling processor, unscheduled-predecessor
/// counts), five indexed heaps, and two temporaries for the bottom-level
/// sweep. Before this refactor the engine rebuilt all of it with fresh
/// `std::vector`s on every `schedule()` call, so per-run allocation — not
/// the O(log W + log P) step — dominated wall time at serving volume
/// (visible as FLB losing to MCP in bench_complexity_scaling despite the
/// better asymptotics).
///
/// A Scratch owns one monotonic Arena and re-carves every structure out of
/// it in prepare(), called at the top of each run. The arena is reset —
/// not reallocated — between runs, so any run no larger than the largest
/// one seen performs **zero heap allocations** on the scheduling path
/// (pinned by tests/flb_alloc_test.cpp). A Scratch is single-threaded by
/// design: the concurrent batch driver (flb::serve) gives each worker its
/// own.
///
/// Contents are engine-private: the fields are public so the engine in
/// core/flb.cpp can use them directly, but their values are meaningless
/// outside a run. Treat Scratch as an opaque reusable buffer.

namespace flb::core {

/// Task-list key: (primary time, negated tie priority, task id). Sorted
/// ascending, so smaller time first, then larger tie priority (the paper
/// breaks ties toward the larger bottom level), then smaller id for full
/// determinism.
using TaskKey = std::tuple<Cost, Cost, TaskId>;

/// Processor-list key: (time, processor id).
using ProcKey = std::pair<Cost, ProcId>;

class Scratch {
 public:
  Scratch() = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch(Scratch&&) noexcept = default;
  Scratch& operator=(Scratch&&) noexcept = default;

  /// Re-dimension every structure for a (num_tasks, num_procs) run:
  /// rewind the arena and re-carve all spans and heap bindings. O(V + P);
  /// allocation-free once the arena has grown to cover the largest run
  /// seen.
  void prepare(TaskId num_tasks, ProcId num_procs);

  [[nodiscard]] TaskId num_tasks() const { return tasks_; }
  [[nodiscard]] ProcId num_procs() const { return procs_; }

  /// The backing arena — also borrowed by per-run platform::CostModel
  /// pricing caches (routed hop costs, link-busy route tables), so the
  /// whole run draws from one reset-between-runs pool.
  [[nodiscard]] Arena& arena() { return arena_; }

  // -- SoA ready-task state (parallel arrays indexed by task id) ----------
  std::span<Cost> tie;        ///< tie-break priority (bottom level et al.)
  std::span<Cost> lmt;        ///< last message arrival time
  std::span<Cost> emt_ep;     ///< EMT on the enabling processor
  std::span<ProcId> ep;       ///< enabling processor (kInvalidProc = none)
  std::span<std::uint32_t> unscheduled_preds;  ///< pending predecessor count

  // -- Temporaries for the tie-priority sweep -----------------------------
  std::span<TaskId> topo_order;     ///< topological order workspace
  std::span<std::uint32_t> degree;  ///< in-degree workspace

  // -- The paper's task and processor lists as indexed d-ary heaps --------
  DaryIndexedHeap<TaskKey> non_ep;          ///< non-EP ready tasks, by LMT
  DaryHeapForest<TaskKey> emt_ep_heap;      ///< per-proc EP tasks, by EMT
  DaryHeapForest<TaskKey> lmt_ep_heap;      ///< per-proc EP tasks, by LMT
  DaryIndexedHeap<ProcKey> active_procs;    ///< procs with EP tasks, by EST
  DaryIndexedHeap<ProcKey> all_procs;       ///< alive procs, by PRT

 private:
  Arena arena_;
  TaskId tasks_ = 0;
  ProcId procs_ = 0;
};

}  // namespace flb::core
