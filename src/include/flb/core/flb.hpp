#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "flb/core/scratch.hpp"
#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"
#include "flb/sched/scheduler.hpp"

/// \file flb.hpp
/// FLB — Fast Load Balancing (Rădulescu & van Gemund, ICPP'99), the paper's
/// contribution. A one-step list scheduler that, at every iteration,
/// schedules the ready task that can start the earliest (ETF's criterion)
/// but finds that task/processor pair in O(log W + log P) rather than
/// O(W P), for a total complexity of O(V (log W + log P) + E).
///
/// The key structure (paper Section 4): a ready task t is *EP-type* iff
/// LMT(t) >= PRT(EP(t)) — it starts earliest on its enabling processor —
/// and *non-EP-type* otherwise, in which case it starts earliest on the
/// processor that becomes idle first (Corollary 2). Theorem 3 shows the
/// globally earliest-starting pair is always one of just two candidates:
///
///   (a) the EP-type task with minimum EST(t, EP(t)) on its enabling
///       processor — found via a per-processor heap of enabled EP tasks
///       keyed by EMT and a heap of *active* processors keyed by min EST;
///   (b) the non-EP-type task with minimum LMT on the processor that
///       becomes idle the earliest — found via a global non-EP task heap
///       keyed by LMT and a global processor heap keyed by PRT.
///
/// On an EST tie the non-EP pair is preferred (its communication is already
/// overlapped with earlier computation). Ties inside every task list break
/// toward the larger bottom level (longest path to an exit), then task id.

namespace flb {

class Topology;  // sim/topology.hpp — routed pricing for resume()

namespace platform {
struct LinkOccupancy;  // platform/cost_model.hpp — link-busy commit log
}  // namespace platform

/// Tie-breaking rule used inside FLB's task lists when two tasks share the
/// same primary key (EMT or LMT). The paper uses the bottom level; the
/// alternatives exist for the tie-break ablation study (bench_ablation_tiebreak).
enum class FlbTieBreak {
  kBottomLevel,  ///< larger bottom level first (the paper's rule)
  kTaskId,       ///< smaller task id first (FIFO-like, deterministic)
  kRandom,       ///< random priority drawn per task from the seed
};

/// Options for FlbScheduler.
struct FlbOptions {
  FlbTieBreak tie_break = FlbTieBreak::kBottomLevel;
  std::uint64_t seed = 1;  ///< used only by FlbTieBreak::kRandom
};

/// Counters describing one FLB run; used by tests and the complexity bench.
struct FlbStats {
  std::size_t iterations = 0;          ///< scheduling steps (== V)
  std::size_t ep_selections = 0;       ///< steps that chose the EP pair
  std::size_t non_ep_selections = 0;   ///< steps that chose the non-EP pair
  std::size_t ep_demotions = 0;        ///< EP tasks re-classified as non-EP
  std::size_t tasks_classified_ep = 0; ///< ready tasks first classified EP
  std::size_t max_ready = 0;           ///< peak ready-set size (<= width W)
};

/// Everything an observer sees about one scheduling decision, captured
/// *before* the task is placed. Drives the Table 1 execution trace and the
/// Theorem 3 oracle tests. Snapshots are only materialized when an observer
/// is attached; observer-free runs pay nothing.
struct FlbStep {
  TaskId task = kInvalidTask;   ///< the task being scheduled
  ProcId proc = kInvalidProc;   ///< its processor
  Cost est = 0.0;               ///< its start time
  bool ep_type = false;         ///< whether the chosen pair was the EP pair
  std::vector<TaskId> ready_tasks;              ///< the full ready set
  std::vector<std::vector<TaskId>> ep_lists;    ///< per-proc EP tasks, EMT order
  std::vector<TaskId> non_ep_list;              ///< non-EP tasks, LMT order
};

/// Observer invoked once per iteration with the partial schedule as it was
/// before the step's assignment.
using FlbObserver = std::function<void(const Schedule&, const FlbStep&)>;

/// Everything FlbScheduler::resume needs to know about the degraded machine
/// it is continuing on. The plain alive/release resume is the special case
/// with unit speeds and untouched work. The context describes an *observed*
/// machine state, not a prediction: the online controller
/// (runtime/recovery_runtime.hpp) rebuilds one from the event stream at
/// every repair, so a resume never encodes faults that have not happened
/// yet.
struct FlbResumeContext {
  /// Which processors may receive new tasks; must have num_procs entries,
  /// at least one true.
  std::vector<bool> alive;
  /// No new task starts before this instant (the failure / repair horizon).
  Cost release = 0.0;
  /// Per-processor speed factors in (0, 1] (empty = all 1.0). A task placed
  /// on p takes work / speeds[p] wall time — the related-machines model of
  /// sched/hetero — so EST-minimizing selection naturally drains work away
  /// from throttled processors whose ready times balloon.
  std::vector<double> speeds;
  /// Per-task work override (empty = use the graph's costs). Entries other
  /// than kUndefinedTime replace comp(t) — used to resume checkpointed
  /// tasks with only their unprotected remainder.
  std::vector<Cost> work;
  /// Per-task additive wall time (empty = none) — e.g. expected checkpoint
  /// overhead of the re-executed remainder. Added to the duration after
  /// speed scaling.
  std::vector<Cost> extra_time;
  /// Per-processor earliest admission instant (empty = all `release`). A
  /// processor that rejoins after a reboot becomes usable only from its
  /// rejoin time: its effective ready time is clamped to
  /// max(release, proc_release[p]). Entries must be finite and >= 0.
  std::vector<Cost> proc_release;
  /// Per-processor cold-cache horizon (empty = none): data produced on p at
  /// or before this instant was lost with its memory at the reboot, so a
  /// task placed on p re-fetches such a predecessor output at
  /// cold_before[p] + comm instead of reading it locally for free. 0 means
  /// the processor never rebooted. Entries must be finite and >= 0.
  std::vector<Cost> cold_before;
  /// Optional routed interconnect (not owned; must outlive the resume
  /// call). When set, remote communication is priced as comm * hops(from,
  /// to) — the store-and-forward route length of sim/topology — instead of
  /// the paper's clique, and the engine switches to exact EST pricing: EMT
  /// is computed with routed costs at classification, and the non-EP
  /// candidate's destination is chosen by scanning every alive processor
  /// for the true minimum EST (O(P * indeg) per step, acceptable on the
  /// repair path). Routed prices are >= clique prices, so the continuation
  /// stays clean under the clique validator. Must have num_procs nodes.
  const Topology* topology = nullptr;
  /// Price communication with the store-and-forward link-busy variant of
  /// the platform cost model instead of flat hop counts (requires
  /// `topology`). Every scheduling step re-prices both candidates against
  /// the current link reservations and then *commits* the chosen task's
  /// incoming transfers, so a congested route steers placement — the
  /// contended link makes a nearer processor look farther than a free
  /// multi-hop detour. Cached list keys are classification-time prices;
  /// the fresh candidate re-pricing keeps the selection consistent and
  /// every placement feasible.
  bool link_busy = false;
  /// When set (with link_busy), receives the commit log of the resumed
  /// run: one LinkOccupancy per reserved hop, auditable with
  /// validate_link_occupancies. Not owned; overwritten by resume().
  std::vector<platform::LinkOccupancy>* occupancy_log = nullptr;
};

/// The FLB scheduler. Carries a reusable, arena-backed core::Scratch that
/// is reset — not reallocated — between runs, so repeated scheduling
/// through one FlbScheduler instance is allocation-free at steady state
/// (the batch-serving layer in flb::serve gives each worker thread its
/// own instance). A single instance is not thread-safe across concurrent
/// run calls for exactly this reason.
class FlbScheduler final : public Scheduler {
 public:
  explicit FlbScheduler(FlbOptions options = {}) : options_(options) {}

  // Copies share only the options: each copy warms up its own scratch.
  FlbScheduler(const FlbScheduler& other) : options_(other.options_) {}
  FlbScheduler& operator=(const FlbScheduler& other) {
    options_ = other.options_;
    return *this;
  }
  FlbScheduler(FlbScheduler&&) noexcept = default;
  FlbScheduler& operator=(FlbScheduler&&) noexcept = default;

  [[nodiscard]] std::string name() const override { return "FLB"; }

  [[nodiscard]] Schedule run(const TaskGraph& g, ProcId num_procs) override;

  /// As run(), but writing into `out` (re-dimensioned with capacity kept)
  /// instead of returning a new Schedule. With a warmed scratch and a
  /// capacity-retaining `out`, this is the zero-allocation serving path:
  /// no heap traffic for any request no larger than the largest one seen.
  void run_into(const TaskGraph& g, ProcId num_procs, Schedule& out);

  /// As run(), but invokes `observer` each iteration and fills `stats`
  /// (either may be null).
  [[nodiscard]] Schedule run_instrumented(const TaskGraph& g,
                                          ProcId num_procs,
                                          const FlbObserver* observer,
                                          FlbStats* stats);

  /// The incremental FLB step, exposed for online schedule repair: continue
  /// from a partial schedule. Every task already placed in `prefix` is kept
  /// verbatim (it models the executed past, so its times may come from an
  /// observed run rather than this scheduler); the remaining tasks are
  /// placed by the same two-candidate rule as run(), restricted to
  /// processors with alive[p] == true and starting no earlier than
  /// `release_time`. A ready task whose enabling processor is dead is
  /// classified non-EP — it pays full communication wherever it lands,
  /// which keeps every placement feasible. `alive` must have
  /// prefix.num_procs() entries, at least one of them true.
  [[nodiscard]] Schedule resume(const TaskGraph& g, const Schedule& prefix,
                                const std::vector<bool>& alive,
                                Cost release_time = 0.0);

  /// As resume() above, but on a degraded machine: per-processor speeds,
  /// per-task work overrides and additive wall time (see FlbResumeContext).
  /// The EP/non-EP two-candidate selection is unchanged — a task's EST does
  /// not depend on its own duration — only finish times stretch, which is
  /// exactly how the related-machines EST/PRT coupling re-balances load
  /// away from slow processors.
  [[nodiscard]] Schedule resume(const TaskGraph& g, const Schedule& prefix,
                                const FlbResumeContext& ctx);

 private:
  FlbOptions options_;
  core::Scratch scratch_;  ///< reusable per-run state; see core/scratch.hpp
};

}  // namespace flb
