#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flb/core/flb.hpp"
#include "flb/graph/task_graph.hpp"

/// \file trace.hpp
/// Execution tracing of FLB in the format of the paper's Table 1: one row
/// per scheduling iteration listing, for each processor, the EP-type tasks
/// it enables as "t[EMT; BL/LMT]" in list order, the non-EP tasks as
/// "t[LMT]", and the decision "t -> p, [ST - FT]".

namespace flb {

/// One iteration of the trace (the paper's Table 1 has one such row per
/// scheduling step).
struct FlbTraceRow {
  /// EP-type task cells per processor, in EMT list order, each formatted
  /// "t<id>[<EMT>; <BL>/<LMT>]".
  std::vector<std::vector<std::string>> ep_cells;
  /// Non-EP task cells in LMT list order, each formatted "t<id>[<LMT>]".
  std::vector<std::string> non_ep_cells;
  /// "t<id> -> p<id>, [<ST> - <FT>]".
  std::string decision;

  // Raw decision fields for programmatic checks.
  TaskId task = kInvalidTask;
  ProcId proc = kInvalidProc;
  Cost start = 0.0;
  Cost finish = 0.0;
  bool ep_type = false;
};

/// Run FLB on `g` with `num_procs` processors, capturing one trace row per
/// iteration. The scheduling outcome is identical to FlbScheduler::run.
std::vector<FlbTraceRow> trace_flb(const TaskGraph& g, ProcId num_procs,
                                   FlbOptions options = {});

/// Render rows as an aligned table with one column per processor's EP list,
/// one for the non-EP list and one for the decision — the shape of Table 1.
void write_trace(std::ostream& os, const std::vector<FlbTraceRow>& rows,
                 ProcId num_procs);

}  // namespace flb
