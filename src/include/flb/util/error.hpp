#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error reporting helpers. The library throws flb::Error for user-facing
/// precondition violations (malformed graphs, bad parameters) and uses
/// FLB_ASSERT for internal invariants that indicate a library bug.

namespace flb {

/// Exception type thrown on precondition violations in the public API.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
[[noreturn]] void assert_fail(const char* file, int line, const char* expr);
}  // namespace detail

}  // namespace flb

/// Throw flb::Error with source location if `cond` does not hold.
/// Used to validate user input; always enabled.
#define FLB_REQUIRE(cond, msg)                                   \
  do {                                                           \
    if (!(cond)) ::flb::detail::throw_error(__FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check; indicates a bug in flb itself when it fires.
/// Always enabled: the algorithms here are cheap relative to the checks.
#define FLB_ASSERT(expr)                                         \
  do {                                                           \
    if (!(expr)) ::flb::detail::assert_fail(__FILE__, __LINE__, #expr); \
  } while (0)
