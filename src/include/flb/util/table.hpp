#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Plain-text and CSV table rendering used by the benchmark harness to print
/// paper-style result tables (one table per figure).

namespace flb {

/// A rectangular table of strings with a header row. Column widths are
/// computed on render; numeric cells should be pre-formatted by the caller
/// (see format_fixed below).
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Number of columns.
  [[nodiscard]] std::size_t cols() const { return headers_.size(); }

  /// Render as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Render as CSV (RFC-4180-style quoting for cells containing , " or \n).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed `digits` decimals (no locale surprises).
std::string format_fixed(double v, int digits);

/// Format a double as a compact "best effort" string (trailing-zero trimmed).
std::string format_compact(double v);

}  // namespace flb
