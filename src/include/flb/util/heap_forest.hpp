#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "flb/util/error.hpp"

/// \file heap_forest.hpp
/// A family of addressable binary min-heaps over one shared id space.
///
/// FLB keeps two sorted task lists per processor (the EP-type tasks each
/// processor enables, by EMT and by LMT), but any task belongs to at most
/// one processor's list at a time. A forest exploits that: position, key
/// and heap-membership are stored once per id — O(V + P) memory and O(V+P)
/// initialization — while each of the P heaps is just a dynamically grown
/// array of ids. Using P independent IndexedMinHeap instances instead
/// would cost O(V * P) setup per scheduling run, which dominates FLB's
/// O(V(log W + log P) + E) scheduling loop at large P (visible as spurious
/// cost growth in the Fig. 2 reproduction).

namespace flb {

/// `num_heaps` addressable min-heaps over ids in [0, num_items). Each id is
/// in at most one heap at a time. All mutating operations are O(log n) in
/// the size of the affected heap.
template <typename Key>
class IndexedHeapForest {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  IndexedHeapForest() = default;

  IndexedHeapForest(std::size_t num_items, std::size_t num_heaps) {
    reset(num_items, num_heaps);
  }

  /// Drop everything and re-dimension.
  void reset(std::size_t num_items, std::size_t num_heaps) {
    heaps_.assign(num_heaps, {});
    pos_.assign(num_items, npos);
    heap_of_.assign(num_items, npos);
    keys_.resize(num_items);
  }

  /// Number of ids the forest is dimensioned for.
  [[nodiscard]] std::size_t num_items() const { return pos_.size(); }

  /// Number of heaps.
  [[nodiscard]] std::size_t num_heaps() const { return heaps_.size(); }

  /// True iff heap `h` has no items.
  [[nodiscard]] bool empty(std::size_t h) const { return heaps_[h].empty(); }

  /// Number of items in heap `h`.
  [[nodiscard]] std::size_t size(std::size_t h) const {
    return heaps_[h].size();
  }

  /// True iff `id` is in some heap.
  [[nodiscard]] bool contains(std::size_t id) const {
    return id < heap_of_.size() && heap_of_[id] != npos;
  }

  /// The heap currently holding `id`; npos if absent.
  [[nodiscard]] std::size_t heap_of(std::size_t id) const {
    return heap_of_[id];
  }

  /// Key of a contained item.
  [[nodiscard]] const Key& key_of(std::size_t id) const {
    FLB_ASSERT(contains(id));
    return keys_[id];
  }

  /// Minimum-key id of non-empty heap `h`.
  [[nodiscard]] std::size_t top(std::size_t h) const {
    FLB_ASSERT(!heaps_[h].empty());
    return heaps_[h].front();
  }

  /// Key of the minimum-key item of non-empty heap `h`.
  [[nodiscard]] const Key& top_key(std::size_t h) const {
    return keys_[top(h)];
  }

  /// Ids in heap `h` in internal array order (NOT sorted). Observer hook.
  [[nodiscard]] const std::vector<std::size_t>& items(std::size_t h) const {
    return heaps_[h];
  }

  /// Insert `id` (must not be in any heap) into heap `h`.
  void push(std::size_t h, std::size_t id, Key key) {
    FLB_ASSERT(h < heaps_.size());
    FLB_ASSERT(id < pos_.size());
    FLB_ASSERT(heap_of_[id] == npos);
    keys_[id] = std::move(key);
    heap_of_[id] = h;
    pos_[id] = heaps_[h].size();
    heaps_[h].push_back(id);
    sift_up(h, heaps_[h].size() - 1);
  }

  /// Remove and return the minimum of heap `h`.
  std::size_t pop(std::size_t h) {
    std::size_t id = top(h);
    erase(id);
    return id;
  }

  /// Remove `id` from whichever heap holds it.
  void erase(std::size_t id) {
    FLB_ASSERT(contains(id));
    std::size_t h = heap_of_[id];
    auto& heap = heaps_[h];
    std::size_t hole = pos_[id];
    pos_[id] = npos;
    heap_of_[id] = npos;
    std::size_t last = heap.size() - 1;
    if (hole != last) {
      std::size_t moved = heap[last];
      heap[hole] = moved;
      pos_[moved] = hole;
      heap.pop_back();
      if (!sift_up(h, hole)) sift_down(h, hole);
    } else {
      heap.pop_back();
    }
  }

  /// Re-key `id` within its current heap.
  void update(std::size_t id, Key key) {
    FLB_ASSERT(contains(id));
    keys_[id] = std::move(key);
    std::size_t h = heap_of_[id];
    std::size_t i = pos_[id];
    if (!sift_up(h, i)) sift_down(h, i);
  }

  /// Move `id` to heap `h` with a new key (erase + push).
  void move(std::size_t id, std::size_t h, Key key) {
    erase(id);
    push(h, id, std::move(key));
  }

  /// O(total) structural check for tests.
  [[nodiscard]] bool validate() const {
    std::size_t present = 0;
    for (std::size_t h = 0; h < heaps_.size(); ++h) {
      const auto& heap = heaps_[h];
      for (std::size_t i = 0; i < heap.size(); ++i) {
        std::size_t id = heap[i];
        if (heap_of_[id] != h || pos_[id] != i) return false;
        std::size_t l = 2 * i + 1, r = 2 * i + 2;
        if (l < heap.size() && keys_[heap[l]] < keys_[id]) return false;
        if (r < heap.size() && keys_[heap[r]] < keys_[id]) return false;
      }
      present += heap.size();
    }
    std::size_t tracked = 0;
    for (std::size_t p : pos_)
      if (p != npos) ++tracked;
    return tracked == present;
  }

 private:
  bool sift_up(std::size_t h, std::size_t i) {
    auto& heap = heaps_[h];
    bool moved = false;
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!(keys_[heap[i]] < keys_[heap[parent]])) break;
      swap_at(h, i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t h, std::size_t i) {
    auto& heap = heaps_[h];
    const std::size_t n = heap.size();
    for (;;) {
      std::size_t l = 2 * i + 1, r = 2 * i + 2, smallest = i;
      if (l < n && keys_[heap[l]] < keys_[heap[smallest]]) smallest = l;
      if (r < n && keys_[heap[r]] < keys_[heap[smallest]]) smallest = r;
      if (smallest == i) break;
      swap_at(h, i, smallest);
      i = smallest;
    }
  }

  void swap_at(std::size_t h, std::size_t a, std::size_t b) {
    auto& heap = heaps_[h];
    std::swap(heap[a], heap[b]);
    pos_[heap[a]] = a;
    pos_[heap[b]] = b;
  }

  std::vector<std::vector<std::size_t>> heaps_;
  std::vector<std::size_t> pos_;      // id -> position in its heap
  std::vector<std::size_t> heap_of_;  // id -> heap index, npos if absent
  std::vector<Key> keys_;             // id -> key (valid while present)
};

}  // namespace flb
