#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "flb/util/error.hpp"

/// \file indexed_heap.hpp
/// An addressable binary min-heap over dense integer item ids.
///
/// This is the workhorse behind every "sorted list" in the FLB paper's
/// pseudocode: Enqueue / Dequeue / RemoveItem / BalanceList map onto
/// push / pop / erase / update. All operations on a heap of n items run in
/// O(log n); `contains`, `key_of` and `top` are O(1).
///
/// Items are identified by ids in [0, capacity). The heap stores each id at
/// most once and tracks positions so that arbitrary items can be removed or
/// re-keyed — the capability plain std::priority_queue lacks and the reason
/// FLB attains its O(V(log W + log P) + E) bound.

namespace flb {

/// Addressable binary min-heap keyed by `Key` (any strict-weak-ordered type;
/// flb uses tuples of (time, tie-break, id) so ordering is always total).
template <typename Key>
class IndexedMinHeap {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  IndexedMinHeap() = default;

  /// Create a heap able to hold ids in [0, capacity).
  explicit IndexedMinHeap(std::size_t capacity) { reset(capacity); }

  /// Drop all contents and re-dimension for ids in [0, capacity).
  void reset(std::size_t capacity) {
    heap_.clear();
    heap_.reserve(capacity);
    pos_.assign(capacity, npos);
    keys_.resize(capacity);
  }

  /// Number of items currently in the heap.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// True iff the heap holds no items.
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }

  /// Maximum id (exclusive) this heap was dimensioned for.
  [[nodiscard]] std::size_t capacity() const noexcept { return pos_.size(); }

  /// True iff `id` is currently in the heap.
  [[nodiscard]] bool contains(std::size_t id) const {
    return id < pos_.size() && pos_[id] != npos;
  }

  /// Key of an item that is in the heap.
  [[nodiscard]] const Key& key_of(std::size_t id) const {
    FLB_ASSERT(contains(id));
    return keys_[id];
  }

  /// Id of the minimum-key item. Heap must be non-empty.
  [[nodiscard]] std::size_t top() const {
    FLB_ASSERT(!heap_.empty());
    return heap_.front();
  }

  /// Key of the minimum-key item. Heap must be non-empty.
  [[nodiscard]] const Key& top_key() const { return keys_[top()]; }

  /// Insert `id` with `key`. `id` must not already be present.
  void push(std::size_t id, Key key) {
    FLB_ASSERT(id < pos_.size());
    FLB_ASSERT(pos_[id] == npos);
    keys_[id] = std::move(key);
    pos_[id] = heap_.size();
    heap_.push_back(id);
    sift_up(heap_.size() - 1);
  }

  /// Remove and return the minimum-key item.
  std::size_t pop() {
    std::size_t id = top();
    erase(id);
    return id;
  }

  /// Remove an arbitrary item that is currently in the heap.
  void erase(std::size_t id) {
    FLB_ASSERT(contains(id));
    std::size_t hole = pos_[id];
    pos_[id] = npos;
    std::size_t last = heap_.size() - 1;
    if (hole != last) {
      std::size_t moved = heap_[last];
      heap_[hole] = moved;
      pos_[moved] = hole;
      heap_.pop_back();
      // The moved item may need to travel either direction.
      if (!sift_up(hole)) sift_down(hole);
    } else {
      heap_.pop_back();
    }
  }

  /// Change the key of an item in the heap (the paper's BalanceList).
  void update(std::size_t id, Key key) {
    FLB_ASSERT(contains(id));
    keys_[id] = std::move(key);
    std::size_t i = pos_[id];
    if (!sift_up(i)) sift_down(i);
  }

  /// Insert if absent, otherwise re-key. Convenience for callers that do not
  /// track membership themselves.
  void push_or_update(std::size_t id, Key key) {
    if (contains(id)) {
      update(id, std::move(key));
    } else {
      push(id, std::move(key));
    }
  }

  /// All item ids currently in the heap, in internal (array) order — NOT
  /// sorted by key. Used by observers that snapshot list contents.
  [[nodiscard]] const std::vector<std::size_t>& items() const {
    return heap_;
  }

  /// Remove everything while keeping the capacity.
  void clear() {
    for (std::size_t id : heap_) pos_[id] = npos;
    heap_.clear();
  }

  /// Validate the heap property and the position index; O(n). Test hook.
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (pos_[heap_[i]] != i) return false;
      std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < heap_.size() && keys_[heap_[l]] < keys_[heap_[i]]) return false;
      if (r < heap_.size() && keys_[heap_[r]] < keys_[heap_[i]]) return false;
    }
    std::size_t present = 0;
    for (std::size_t p : pos_)
      if (p != npos) ++present;
    return present == heap_.size();
  }

 private:
  // Returns true if the item actually moved up.
  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      std::size_t parent = (i - 1) / 2;
      if (!(keys_[heap_[i]] < keys_[heap_[parent]])) break;
      swap_at(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t l = 2 * i + 1, r = 2 * i + 2, smallest = i;
      if (l < n && keys_[heap_[l]] < keys_[heap_[smallest]]) smallest = l;
      if (r < n && keys_[heap_[r]] < keys_[heap_[smallest]]) smallest = r;
      if (smallest == i) break;
      swap_at(i, smallest);
      i = smallest;
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::vector<std::size_t> heap_;  // heap array of ids
  std::vector<std::size_t> pos_;   // id -> position in heap_, npos if absent
  std::vector<Key> keys_;          // id -> key (valid only while present)
};

}  // namespace flb
