#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

#include "flb/util/error.hpp"

/// \file arena.hpp
/// A chunked monotonic arena: the allocation discipline behind FLB's
/// scheduling-as-a-service hot path.
///
/// One scheduling run needs a dozen flat arrays — SoA task state, heap
/// storage, pricing caches — whose sizes are all known up front (O(V + P)).
/// Allocating them with `new`/`std::vector` on every `schedule()` call is
/// what made per-run overhead dominate FLB's O(log P + log W) step cost at
/// serving volume. The arena replaces all of that with one bump pointer:
///
///  * `alloc<T>(n)` carves an aligned, uninitialized span out of the
///    current block in O(1). Blocks are never reused mid-run, so spans
///    stay valid until the next reset().
///  * When a block runs out, a new block (geometrically larger) is
///    appended. Existing blocks — and therefore existing spans — are NOT
///    moved or invalidated; growth is the only operation that touches the
///    system allocator.
///  * `reset()` rewinds every block in O(#blocks) without freeing, so a
///    steady-state run (any request no larger than the largest one seen)
///    performs zero heap allocations. The allocation-count regression test
///    (tests/flb_alloc_test.cpp) pins this.
///
/// Only trivially destructible element types are allowed: the arena never
/// runs destructors — reset() simply forgets the contents.

namespace flb {

class Arena {
 public:
  /// An arena whose first block (allocated lazily on first use) holds at
  /// least `initial_bytes`.
  explicit Arena(std::size_t initial_bytes = 1u << 16)
      : initial_bytes_(initial_bytes < kMinBlock ? kMinBlock
                                                 : initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Rewind every block, invalidating all spans handed out since the last
  /// reset. Keeps the memory: subsequent allocations reuse the blocks in
  /// order, so a same-sized allocation sequence touches the system
  /// allocator zero times.
  void reset() noexcept {
    current_ = 0;
    offset_ = 0;
  }

  /// An aligned, uninitialized span of `n` elements of T. O(1) unless a
  /// new block must be grown. Spans remain valid until reset().
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    void* p = raw_alloc(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// As alloc(), with every element set to `fill`.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t n, const T& fill) {
    std::span<T> s = alloc<T>(n);
    for (T& v : s) v = fill;
    return s;
  }

  /// Total bytes held across all blocks (the high-water footprint).
  [[nodiscard]] std::size_t bytes_reserved() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out since the last reset (alignment padding included).
  [[nodiscard]] std::size_t bytes_used() const noexcept {
    std::size_t total = offset_;
    for (std::size_t i = 0; i < current_; ++i) total += blocks_[i].size;
    return total;
  }

  /// Number of blocks grown so far. Stable block count across runs is the
  /// cheap proxy for "no growth happened".
  [[nodiscard]] std::size_t blocks() const noexcept { return blocks_.size(); }

 private:
  static constexpr std::size_t kMinBlock = 1u << 12;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    FLB_ASSERT(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (current_ < blocks_.size()) {
        Block& b = blocks_[current_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          offset_ = aligned + bytes;
          return b.data.get() + aligned;
        }
        // This block is exhausted; move on (its tail stays unused until
        // the next reset, which is fine for a monotonic allocator).
        ++current_;
        offset_ = 0;
        continue;
      }
      grow(bytes + align);
    }
  }

  void grow(std::size_t at_least) {
    std::size_t size = blocks_.empty() ? initial_bytes_
                                       : blocks_.back().size * 2;
    if (size < at_least) size = at_least;
    blocks_.push_back({std::make_unique<std::byte[]>(size), size});
    current_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::size_t initial_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block currently bump-allocated from
  std::size_t offset_ = 0;   // bytes used within blocks_[current_]
};

}  // namespace flb
