#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "flb/util/arena.hpp"
#include "flb/util/error.hpp"

/// \file dary_heap.hpp
/// Arena-backed indexed d-ary min-heaps — the allocation-free rebuild of
/// indexed_heap.hpp / heap_forest.hpp for the scheduling-as-a-service hot
/// path.
///
/// Two differences from the binary originals:
///
///  * **Storage is borrowed, not owned.** bind()/reset() carve the heap
///    array, the position index and the key table out of a caller-supplied
///    Arena, so re-dimensioning between runs is a bump-pointer rewind
///    instead of three `std::vector` reallocations. The forest's per-heap
///    id arrays are the one exception (their individual sizes are not
///    known up front); they are capacity-retaining vectors owned by the
///    forest, which makes them allocation-free at steady state.
///  * **Arity is 4 by default.** A d-ary layout trades a slightly deeper
///    compare fan-in on sift-down for a tree ~half as tall, which wins on
///    real hardware because sift-up (the push/update direction FLB leans
///    on) touches half the cache lines.
///
/// Selection order is identical to the binary heaps for any totally
/// ordered key — flb keys embed the id as the final tie-break, so every
/// top() is unique and schedules stay bit-identical regardless of heap
/// shape. The golden-digest tests in tests/platform_test.cpp pin this.

namespace flb {

/// Addressable d-ary min-heap over dense ids in [0, capacity), with all
/// storage borrowed from an Arena at bind() time.
template <typename Key, std::size_t Arity = 4>
class DaryIndexedHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  DaryIndexedHeap() = default;

  /// Re-dimension for ids in [0, capacity), borrowing storage from
  /// `arena`. Previous contents are dropped. O(capacity) to clear the
  /// position index; no heap allocation (the arena bump-allocates).
  void bind(Arena& arena, std::size_t capacity) {
    heap_ = arena.alloc<std::size_t>(capacity);
    pos_ = arena.alloc<std::size_t>(capacity, npos);
    keys_ = arena.alloc<Key>(capacity);
    size_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return pos_.size(); }

  [[nodiscard]] bool contains(std::size_t id) const {
    return id < pos_.size() && pos_[id] != npos;
  }

  [[nodiscard]] const Key& key_of(std::size_t id) const {
    FLB_ASSERT(contains(id));
    return keys_[id];
  }

  [[nodiscard]] std::size_t top() const {
    FLB_ASSERT(size_ != 0);
    return heap_[0];
  }

  [[nodiscard]] const Key& top_key() const { return keys_[top()]; }

  void push(std::size_t id, Key key) {
    FLB_ASSERT(id < pos_.size());
    FLB_ASSERT(pos_[id] == npos);
    keys_[id] = std::move(key);
    pos_[id] = size_;
    heap_[size_] = id;
    sift_up(size_++);
  }

  std::size_t pop() {
    std::size_t id = top();
    erase(id);
    return id;
  }

  void erase(std::size_t id) {
    FLB_ASSERT(contains(id));
    std::size_t hole = pos_[id];
    pos_[id] = npos;
    std::size_t last = --size_;
    if (hole != last) {
      std::size_t moved = heap_[last];
      heap_[hole] = moved;
      pos_[moved] = hole;
      if (!sift_up(hole)) sift_down(hole);
    }
  }

  void update(std::size_t id, Key key) {
    FLB_ASSERT(contains(id));
    keys_[id] = std::move(key);
    std::size_t i = pos_[id];
    if (!sift_up(i)) sift_down(i);
  }

  void push_or_update(std::size_t id, Key key) {
    if (contains(id)) {
      update(id, std::move(key));
    } else {
      push(id, std::move(key));
    }
  }

  /// Ids currently in the heap, in internal array order (NOT key-sorted).
  [[nodiscard]] std::span<const std::size_t> items() const {
    return heap_.first(size_);
  }

  /// Remove everything while keeping the binding. O(size).
  void clear() {
    for (std::size_t i = 0; i < size_; ++i) pos_[heap_[i]] = npos;
    size_ = 0;
  }

  /// Validate the heap property and the position index; O(n). Test hook.
  [[nodiscard]] bool validate() const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (pos_[heap_[i]] != i) return false;
      for (std::size_t c = Arity * i + 1;
           c <= Arity * i + Arity && c < size_; ++c)
        if (keys_[heap_[c]] < keys_[heap_[i]]) return false;
    }
    std::size_t present = 0;
    for (std::size_t p : pos_)
      if (p != npos) ++present;
    return present == size_;
  }

 private:
  bool sift_up(std::size_t i) {
    bool moved = false;
    while (i > 0) {
      std::size_t parent = (i - 1) / Arity;
      if (!(keys_[heap_[i]] < keys_[heap_[parent]])) break;
      swap_at(i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t i) {
    for (;;) {
      std::size_t smallest = i;
      const std::size_t first = Arity * i + 1;
      const std::size_t last =
          first + Arity < size_ ? first + Arity : size_;
      for (std::size_t c = first; c < last; ++c)
        if (keys_[heap_[c]] < keys_[heap_[smallest]]) smallest = c;
      if (smallest == i) break;
      swap_at(i, smallest);
      i = smallest;
    }
  }

  void swap_at(std::size_t a, std::size_t b) {
    std::swap(heap_[a], heap_[b]);
    pos_[heap_[a]] = a;
    pos_[heap_[b]] = b;
  }

  std::span<std::size_t> heap_;  // arena-backed array of ids
  std::span<std::size_t> pos_;   // id -> position, npos if absent
  std::span<Key> keys_;          // id -> key (valid while present)
  std::size_t size_ = 0;
};

/// A family of addressable d-ary min-heaps over one shared id space (each
/// id in at most one heap at a time), with the shared per-id state —
/// position, owning heap, key — borrowed from an Arena. The per-heap id
/// arrays are owned, capacity-retaining vectors: their individual maxima
/// are workload-dependent, so they warm up over the first runs and then
/// never allocate again.
template <typename Key, std::size_t Arity = 4>
class DaryHeapForest {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  DaryHeapForest() = default;

  /// Re-dimension for `num_items` ids across `num_heaps` heaps. Shared
  /// per-id arrays come from `arena`; per-heap arrays are cleared but
  /// keep their capacity (and the pool only grows — a later smaller run
  /// reuses the larger pool).
  void reset(Arena& arena, std::size_t num_items, std::size_t num_heaps) {
    pos_ = arena.alloc<std::size_t>(num_items);
    heap_of_ = arena.alloc<std::size_t>(num_items, npos);
    keys_ = arena.alloc<Key>(num_items);
    if (heaps_.size() < num_heaps) heaps_.resize(num_heaps);
    num_heaps_ = num_heaps;
    for (std::size_t h = 0; h < num_heaps_; ++h) heaps_[h].clear();
  }

  [[nodiscard]] std::size_t num_items() const { return pos_.size(); }
  [[nodiscard]] std::size_t num_heaps() const { return num_heaps_; }

  [[nodiscard]] bool empty(std::size_t h) const { return heaps_[h].empty(); }
  [[nodiscard]] std::size_t size(std::size_t h) const {
    return heaps_[h].size();
  }

  [[nodiscard]] bool contains(std::size_t id) const {
    return id < heap_of_.size() && heap_of_[id] != npos;
  }

  [[nodiscard]] std::size_t heap_of(std::size_t id) const {
    return heap_of_[id];
  }

  [[nodiscard]] const Key& key_of(std::size_t id) const {
    FLB_ASSERT(contains(id));
    return keys_[id];
  }

  [[nodiscard]] std::size_t top(std::size_t h) const {
    FLB_ASSERT(!heaps_[h].empty());
    return heaps_[h].front();
  }

  [[nodiscard]] const Key& top_key(std::size_t h) const {
    return keys_[top(h)];
  }

  /// Ids in heap `h` in internal array order (NOT sorted). Observer hook.
  [[nodiscard]] const std::vector<std::size_t>& items(std::size_t h) const {
    return heaps_[h];
  }

  void push(std::size_t h, std::size_t id, Key key) {
    FLB_ASSERT(h < num_heaps_);
    FLB_ASSERT(id < pos_.size());
    FLB_ASSERT(heap_of_[id] == npos);
    keys_[id] = std::move(key);
    heap_of_[id] = h;
    pos_[id] = heaps_[h].size();
    heaps_[h].push_back(id);
    sift_up(h, heaps_[h].size() - 1);
  }

  std::size_t pop(std::size_t h) {
    std::size_t id = top(h);
    erase(id);
    return id;
  }

  void erase(std::size_t id) {
    FLB_ASSERT(contains(id));
    std::size_t h = heap_of_[id];
    auto& heap = heaps_[h];
    std::size_t hole = pos_[id];
    pos_[id] = npos;
    heap_of_[id] = npos;
    std::size_t last = heap.size() - 1;
    if (hole != last) {
      std::size_t moved = heap[last];
      heap[hole] = moved;
      pos_[moved] = hole;
      heap.pop_back();
      if (!sift_up(h, hole)) sift_down(h, hole);
    } else {
      heap.pop_back();
    }
  }

  void update(std::size_t id, Key key) {
    FLB_ASSERT(contains(id));
    keys_[id] = std::move(key);
    std::size_t h = heap_of_[id];
    std::size_t i = pos_[id];
    if (!sift_up(h, i)) sift_down(h, i);
  }

  /// Move `id` to heap `h` with a new key (erase + push).
  void move(std::size_t id, std::size_t h, Key key) {
    erase(id);
    push(h, id, std::move(key));
  }

  /// O(total) structural check for tests.
  [[nodiscard]] bool validate() const {
    std::size_t present = 0;
    for (std::size_t h = 0; h < num_heaps_; ++h) {
      const auto& heap = heaps_[h];
      for (std::size_t i = 0; i < heap.size(); ++i) {
        std::size_t id = heap[i];
        if (heap_of_[id] != h || pos_[id] != i) return false;
        for (std::size_t c = Arity * i + 1;
             c <= Arity * i + Arity && c < heap.size(); ++c)
          if (keys_[heap[c]] < keys_[id]) return false;
      }
      present += heap.size();
    }
    std::size_t tracked = 0;
    for (std::size_t p : pos_)
      if (p != npos) ++tracked;
    return tracked == present;
  }

 private:
  bool sift_up(std::size_t h, std::size_t i) {
    auto& heap = heaps_[h];
    bool moved = false;
    while (i > 0) {
      std::size_t parent = (i - 1) / Arity;
      if (!(keys_[heap[i]] < keys_[heap[parent]])) break;
      swap_at(h, i, parent);
      i = parent;
      moved = true;
    }
    return moved;
  }

  void sift_down(std::size_t h, std::size_t i) {
    auto& heap = heaps_[h];
    const std::size_t n = heap.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t first = Arity * i + 1;
      const std::size_t last = first + Arity < n ? first + Arity : n;
      for (std::size_t c = first; c < last; ++c)
        if (keys_[heap[c]] < keys_[heap[smallest]]) smallest = c;
      if (smallest == i) break;
      swap_at(h, i, smallest);
      i = smallest;
    }
  }

  void swap_at(std::size_t h, std::size_t a, std::size_t b) {
    auto& heap = heaps_[h];
    std::swap(heap[a], heap[b]);
    pos_[heap[a]] = a;
    pos_[heap[b]] = b;
  }

  std::vector<std::vector<std::size_t>> heaps_;  // capacity-retaining pool
  std::size_t num_heaps_ = 0;
  std::span<std::size_t> pos_;      // id -> position in its heap
  std::span<std::size_t> heap_of_;  // id -> heap index, npos if absent
  std::span<Key> keys_;             // id -> key (valid while present)
};

}  // namespace flb
