#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file cli.hpp
/// Minimal command-line option parsing for the bench and example binaries.
/// Supports `--name value` and `--name=value` forms plus bare positionals.

namespace flb {

/// Parsed command-line arguments with typed, defaulted accessors.
class CliArgs {
 public:
  /// Parse argv. Throws flb::Error on an option missing its value.
  CliArgs(int argc, const char* const* argv);

  /// True iff `--name` was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// String value of `--name`, or `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Integer value of `--name`, or `fallback` when absent. Throws on a
  /// non-numeric value.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Double value of `--name`, or `fallback` when absent.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Comma-separated list of integers for `--name`, or `fallback` when
  /// absent (e.g. "--procs 2,4,8").
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name, std::vector<std::int64_t> fallback) const;

  /// Comma-separated list of doubles for `--name`.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, std::vector<double> fallback) const;

  /// Positional (non-option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace flb
