#pragma once

#include <chrono>

/// \file stopwatch.hpp
/// Wall-clock timing for the scheduling-cost experiments (paper Fig. 2).

namespace flb {

/// Simple monotonic stopwatch. Started on construction or by restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Reset the start point to now.
  void restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction/restart.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds since construction/restart.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flb
