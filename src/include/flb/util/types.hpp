#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

/// \file types.hpp
/// Fundamental identifier and cost types shared by every flb subsystem.

namespace flb {

/// Dense identifier of a task (a node of the task graph).
using TaskId = std::uint32_t;

/// Dense identifier of a processor in the machine model.
using ProcId = std::uint32_t;

/// Computation / communication cost and absolute time. Costs in the paper's
/// model are arbitrary non-negative reals; schedule times are derived sums.
using Cost = double;

/// Sentinel for "no task" (e.g. an unscheduled slot or absent predecessor).
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// Sentinel for "no processor" (e.g. the enabling processor of an entry task).
inline constexpr ProcId kInvalidProc = std::numeric_limits<ProcId>::max();

/// Sentinel time used for "not yet computed / undefined" schedule fields.
inline constexpr Cost kUndefinedTime = -1.0;

/// Positive infinity, used as the identity for min-reductions over times.
inline constexpr Cost kInfiniteTime = std::numeric_limits<Cost>::infinity();

}  // namespace flb
