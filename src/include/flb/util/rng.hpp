#pragma once

#include <cstdint>
#include <vector>

#include "flb/util/types.hpp"

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// The paper's experiments draw task and edge weights "i.i.d., uniform
/// distribution" per (problem, CCR, seed) triple, five seeds each. All
/// randomness in flb flows through Rng so that every experiment is exactly
/// reproducible from its seed; we do not use std::mt19937 because its
/// sequence is not guaranteed identical across standard library vendors for
/// the distribution adaptors, whereas this generator is fully specified here.

namespace flb {

/// xoshiro256** generator with splitmix64 seeding. Fast, high quality, and
/// bit-for-bit reproducible everywhere.
class Rng {
 public:
  /// Seed the generator. Equal seeds yield equal sequences.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize from a seed.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-graph streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

/// Draw a weight with the paper's distribution: uniform on [0, 2*mean], so
/// the expectation is `mean`. Mean must be non-negative.
Cost draw_weight(Rng& rng, Cost mean);

}  // namespace flb
