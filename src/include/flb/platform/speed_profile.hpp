#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "flb/sim/faults.hpp"
#include "flb/util/types.hpp"

/// \file speed_profile.hpp
/// Segment-based execution speed of one processor — the platform layer's
/// model of *when work gets done* on a machine whose speed varies over
/// time (slowdown faults with recovery, thermal throttling, co-tenancy).
///
/// A profile is built from (time, factor, until) slowdown intervals; the
/// speed at any instant is the product of the factors of every interval
/// active then. finalize() materialises piecewise-constant (boundary,
/// speed) segments, recomputing each product from scratch so a fully
/// recovered processor returns to exactly 1.0 — multiplying by 1/factor on
/// recovery would drift for non-power-of-two factors. run() integrates a
/// task's work through the profile, pausing at checkpoint marks,
/// optionally cut short by a fail-stop kill.
///
/// This is the former machine-simulator-private ProcProfile, promoted to
/// the platform module so the simulator, the cost model and any future
/// consumer price execution through one implementation.

namespace flb::platform {

class SpeedProfile {
 public:
  /// Record one slowdown: speed multiplied by `factor` on [time, until).
  void add(Cost time, double factor, Cost until = kInfiniteTime) {
    faults_.push_back({time, factor, until});
  }

  /// Materialise the (boundary, speed) segments. Call once, after add()s.
  void finalize();

  /// True when no slowdown ever applies (speed is identically 1.0).
  [[nodiscard]] bool trivial() const { return segments_.empty(); }

  /// What one integrated execution did.
  struct Trace {
    Cost end = 0.0;      ///< finish time, or the kill instant when killed
    Cost done = 0.0;     ///< work units completed by `end`
    Cost saved = 0.0;    ///< work protected by durable checkpoints
    std::size_t checkpoints = 0;  ///< durable checkpoint writes
    Cost overhead = 0.0;          ///< wall time spent on those writes
    bool finished = false;
  };

  /// Execute `work` units starting at `start`, stopping at `kill`. A
  /// checkpoint whose write has not completed by `kill` is not durable.
  [[nodiscard]] Trace run(Cost start, Cost work, const CheckpointPolicy& ckpt,
                          Cost kill = kInfiniteTime) const;

 private:
  struct Fault {
    Cost time;
    double factor;
    Cost until;
  };
  std::vector<Fault> faults_;
  std::vector<std::pair<Cost, double>> segments_;  // (boundary, new speed)
};

}  // namespace flb::platform
