#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/platform/speed_profile.hpp"
#include "flb/sim/topology.hpp"
#include "flb/util/arena.hpp"
#include "flb/util/types.hpp"

/// \file cost_model.hpp
/// The unified platform cost model: one pricing engine for every placement
/// decision in this library.
///
/// Before this module, the machine model lived in four divergent copies —
/// the FLB engine's exact EMT/EST pricing (`core/flb.cpp`), the repair
/// path's greedy continuation (`sched/repair.cpp`), the machine simulator's
/// message and re-fetch costs (`sim/machine_sim.cpp`), and the related-
/// machines speeds (`sched/hetero.cpp`). CostModel owns all of it behind
/// one interface:
///
///  * **Communication** — `comm(src, dst, bytes, depart)` in three modes:
///    - kClique: the paper's contention-free clique (Section 2); O(1) per
///      query, which preserves FLB's O(V(log W + log P) + E) bound;
///    - kRoutedHops: `bytes * latency * hops(src, dst)` over a Topology's
///      deterministic shortest routes — distance-aware, contention-free;
///    - kLinkBusy: store-and-forward over the route against per-link
///      reservations — each hop begins when both the message and the link
///      are free. `comm()` *probes* without reserving; `commit()` walks the
///      same route, claims the links, and logs a LinkOccupancy per hop so
///      schedules can be audited against link exclusivity
///      (validate_link_occupancies).
///  * **Execution** — `exec(g, t, p, start)`: per-task work overrides
///    (checkpoint-resumed remainders), related-machines speed factors,
///    per-task additive wall time (checkpoint writes), or full segment-
///    based SpeedProfile integration when the speed varies over time.
///  * **Availability** — kill/rejoin windows (`alive`), admission instants
///    (global release + per-processor rejoin times) and cold-cache
///    horizons, folded into `arrival()`: warm local data is free, local
///    data predating a reboot is re-fetched at `cold + message cost`, and
///    remote data pays the mode's network price.
///
/// Arithmetic is kept operation-for-operation identical to the former
/// private copies (e.g. `work / speed` even for unit speeds, `bytes * 1.0`
/// latency scaling), so clique-mode FLB schedules are bit-identical to the
/// pre-refactor engine — guarded by tests/platform_test.cpp.

namespace flb::platform {

/// How remote communication is priced.
enum class CommMode {
  kClique,      ///< the paper's model: flat cost, contention-free, O(1)
  kRoutedHops,  ///< cost * shortest-route hop count (contention-free)
  kLinkBusy,    ///< store-and-forward against per-link reservations
};

/// One reserved hop of a committed link-busy transfer: link `link` carries
/// a message on [begin, end). The commit log of a pricing run; feeds
/// validate_link_occupancies.
struct LinkOccupancy {
  std::size_t link = 0;
  Cost begin = 0.0;
  Cost end = 0.0;
};

/// When each processor may run work, and at what cache state. The empty
/// vectors are the common fast case: everything alive from `release`, no
/// reboots.
struct Availability {
  /// No newly placed task starts before this instant.
  Cost release = 0.0;
  /// Which processors may receive work (empty = all of them).
  std::vector<bool> alive;
  /// Per-processor admission instant, combined with `release` by max
  /// (empty = all `release`). A rejoined processor becomes usable at its
  /// rejoin time.
  std::vector<Cost> proc_release;
  /// Per-processor cold-cache horizon (empty = none): data produced on p
  /// at or before this instant was lost with its memory at the reboot and
  /// must be re-fetched. 0 = never rebooted.
  std::vector<Cost> cold_before;

  [[nodiscard]] bool is_alive(ProcId p) const {
    return alive.empty() || alive[p];
  }
  [[nodiscard]] Cost admission(ProcId p) const {
    return proc_release.empty() ? release
                                : std::max(release, proc_release[p]);
  }
  [[nodiscard]] Cost cold_horizon(ProcId p) const {
    return cold_before.empty() ? 0.0 : cold_before[p];
  }
  [[nodiscard]] bool any_cold() const {
    for (Cost c : cold_before)
      if (c > 0.0) return true;
    return false;
  }

  /// The repair path's recovery rule: admit the processors in `admitted`;
  /// those that were killed and rejoined (0 < available_from < inf) are
  /// admitted from max(release, rejoin) with a cold cache up to the rejoin
  /// instant; never-killed processors are admitted from `release` warm.
  static Availability recovery(Cost release,
                               const std::vector<bool>& admitted,
                               const std::vector<Cost>& available_from);
};

/// The platform model every scheduler, repair and simulator prices against.
/// Construct via the factories; configure availability/execution as needed.
/// The clique factory never touches a Topology, so clique queries stay O(1)
/// with no indirection — FLB's complexity bound depends on it.
class CostModel {
 public:
  /// P fully connected processors, contention-free — the paper's machine.
  static CostModel clique(ProcId num_procs);
  /// Hop-count pricing over `topology` (not owned; must outlive the model).
  /// Per-pair hop costs are cached at construction so comm() never chases
  /// back into the Topology (BM_CommRouted was 2x the clique price at P=32
  /// before this cache). With `scratch` set, the cache is carved out of
  /// that arena instead of the heap — the borrowed-scratch path used by the
  /// FLB engine so per-run model construction allocates nothing; the model
  /// (and any copy of it) must then not outlive the arena's next reset().
  /// Without `scratch` the cache is heap-owned and shared across copies.
  static CostModel routed(const Topology& topology, Arena* scratch = nullptr);
  /// Store-and-forward link reservations over `topology` (not owned). The
  /// per-pair link routes are cached in CSR form at construction, so
  /// probing and committing walk a flat span instead of materializing a
  /// route vector per query. `scratch` as in routed().
  static CostModel link_busy(const Topology& topology,
                             Arena* scratch = nullptr);

  [[nodiscard]] ProcId num_procs() const { return procs_; }
  [[nodiscard]] CommMode mode() const { return mode_; }
  [[nodiscard]] const Topology* topology() const { return topo_; }

  // -- Availability -------------------------------------------------------

  /// Install the availability windows (sizes validated against num_procs).
  void set_availability(Availability a);
  [[nodiscard]] const Availability& availability() const { return avail_; }
  [[nodiscard]] bool alive(ProcId p) const { return avail_.is_alive(p); }
  [[nodiscard]] Cost admission(ProcId p) const { return avail_.admission(p); }
  [[nodiscard]] Cost cold_horizon(ProcId p) const {
    return avail_.cold_horizon(p);
  }

  /// True when EST pricing is destination-dependent beyond the clique
  /// corollary (routed/link-busy modes or any cold cache) — consumers use
  /// this to switch from Corollary 2 shortcuts to exact pricing.
  [[nodiscard]] bool exact_pricing() const {
    return mode_ != CommMode::kClique || avail_.any_cold();
  }

  // -- Execution ----------------------------------------------------------

  /// Related-machines speed factors, all > 0 (empty = unit speeds).
  void set_speeds(std::vector<double> speeds);
  /// Segment-based speed profiles; takes precedence over set_speeds for
  /// exec pricing (empty = static speeds).
  void set_speed_profiles(std::vector<SpeedProfile> profiles);
  /// Per-task work override (empty = graph costs; kUndefinedTime entries
  /// fall back to the graph) — checkpoint-resumed remainders.
  void set_work(std::vector<Cost> work);
  /// Per-task additive wall time after speed scaling (empty = none).
  void set_extra_time(std::vector<Cost> extra);

  [[nodiscard]] double speed(ProcId p) const {
    return speeds_.empty() ? 1.0 : speeds_[p];
  }

  /// Effective work of task t: the override when set, else comp(t).
  [[nodiscard]] Cost work_of(const TaskGraph& g, TaskId t) const {
    Cost work = g.comp(t);
    if (!work_.empty() && work_[t] != kUndefinedTime) work = work_[t];
    return work;
  }

  /// Wall time of `work` units on p starting at `start`: integrated
  /// through p's speed profile when one is set, else work / speed(p).
  [[nodiscard]] Cost exec_work(Cost work, ProcId p, Cost start = 0.0) const {
    if (!profiles_.empty() && !profiles_[p].trivial())
      return profiles_[p].run(start, work, CheckpointPolicy{}).end - start;
    if (!speeds_.empty()) return work / speeds_[p];
    return work;
  }

  /// Wall time of task t on p starting at `start`: effective work through
  /// exec_work, plus the task's additive extra time.
  [[nodiscard]] Cost exec(const TaskGraph& g, TaskId t, ProcId p,
                          Cost start) const {
    Cost d = exec_work(work_of(g, t), p, start);
    if (!extra_.empty()) d += extra_[t];
    return d;
  }

  /// Mean wall time of `work` over all processors (HEFT's rank weights).
  [[nodiscard]] Cost mean_exec_work(Cost work) const {
    return work * mean_inverse_speed_;
  }

  // -- Communication ------------------------------------------------------

  /// Scales every message cost (what-if latency sweeps); default 1.0.
  void set_latency_factor(Cost factor);
  [[nodiscard]] Cost latency_factor() const { return latency_; }

  /// Single-transfer price of a message of nominal cost `bytes`.
  [[nodiscard]] Cost message_cost(Cost bytes) const {
    return bytes * latency_;
  }

  /// The instant data departing `src` at `depart` becomes usable on `dst`.
  /// Same-processor transfers are free in every mode. Link-busy probes the
  /// current reservations without claiming them — call commit() for the
  /// chosen placement.
  [[nodiscard]] Cost comm(ProcId src, ProcId dst, Cost bytes,
                          Cost depart) const {
    if (src == dst) return depart;
    if (mode_ == CommMode::kClique) return depart + message_cost(bytes);
    if (mode_ == CommMode::kRoutedHops)
      return depart + message_cost(bytes) *
                          hop_cost_[std::size_t{src} * procs_ + dst];
    return probe_route(src, dst, bytes, depart);
  }

  /// Cold-cache-aware arrival of a predecessor output produced on `src`
  /// (finishing at `finish`) at a consumer on `dst`: warm local data is
  /// free; local data predating dst's reboot is re-fetched at
  /// cold_horizon + message cost (a fresh flat transfer); remote data pays
  /// comm().
  [[nodiscard]] Cost arrival(ProcId src, ProcId dst, Cost bytes,
                             Cost finish) const {
    if (src == dst) {
      const Cost cold = avail_.cold_horizon(dst);
      if (cold > 0.0 && finish <= cold) return cold + message_cost(bytes);
      return finish;
    }
    return comm(src, dst, bytes, finish);
  }

  /// As comm(), but in link-busy mode the route's links are reserved: each
  /// hop is logged as a LinkOccupancy and extends that link's free time.
  /// In clique/routed modes this is exactly comm() (nothing to reserve).
  Cost commit(ProcId src, ProcId dst, Cost bytes, Cost depart);

  /// As arrival(), with the remote case committed instead of probed.
  Cost commit_arrival(ProcId src, ProcId dst, Cost bytes, Cost finish) {
    if (src == dst) return arrival(src, dst, bytes, finish);
    return commit(src, dst, bytes, finish);
  }

  /// Drop all link reservations and the occupancy log (re-pricing runs).
  void reset_links();

  /// The commit log: one entry per reserved hop, in commit order.
  [[nodiscard]] const std::vector<LinkOccupancy>& occupancies() const {
    return occupancies_;
  }
  [[nodiscard]] std::size_t total_hops() const { return total_hops_; }
  [[nodiscard]] Cost max_link_busy() const;
  [[nodiscard]] Cost total_link_busy() const;

 private:
  CostModel(CommMode mode, ProcId procs, const Topology* topo, Arena* scratch);

  /// Fill the per-pair pricing caches from topo_: hop costs for routed
  /// mode, CSR link routes for link-busy. Storage comes from `scratch` when
  /// given (the borrowed-scratch path — zero heap allocation), else from a
  /// heap block shared across copies of this model.
  void build_route_cache(Arena* scratch);

  [[nodiscard]] Cost probe_route(ProcId src, ProcId dst, Cost bytes,
                                 Cost depart) const;

  /// The cached route of (src, dst) as a flat span of dense link indices.
  [[nodiscard]] std::span<const std::size_t> route_span(ProcId src,
                                                        ProcId dst) const {
    const std::size_t pair = std::size_t{src} * procs_ + dst;
    return route_links_.subspan(route_offsets_[pair],
                                route_offsets_[pair + 1] -
                                    route_offsets_[pair]);
  }

  /// Heap backing for the pricing caches (null when arena-backed). Copies
  /// of a model share it, so the spans below stay valid across copies.
  struct RouteCacheStorage {
    std::vector<Cost> hop_cost;
    std::vector<std::size_t> offsets;
    std::vector<std::size_t> links;
  };

  CommMode mode_;
  ProcId procs_;
  const Topology* topo_;  // null in clique mode

  std::shared_ptr<const RouteCacheStorage> cache_owner_;
  std::span<const Cost> hop_cost_;             // routed: [src * P + dst]
  std::span<const std::size_t> route_offsets_; // link-busy: CSR offsets
  std::span<const std::size_t> route_links_;   // link-busy: CSR payload

  Availability avail_;

  std::vector<double> speeds_;        // empty = unit speeds
  double mean_inverse_speed_ = 1.0;
  std::vector<SpeedProfile> profiles_;  // empty = static speeds
  std::vector<Cost> work_;   // empty = graph costs
  std::vector<Cost> extra_;  // empty = none
  Cost latency_ = 1.0;

  std::vector<Cost> link_free_;  // link-busy: per-link next free instant
  std::vector<Cost> link_busy_;  // link-busy: per-link total transfer time
  std::vector<LinkOccupancy> occupancies_;
  std::size_t total_hops_ = 0;
};

}  // namespace flb::platform
