#pragma once

#include "flb/graph/task_graph.hpp"

/// \file paper_example.hpp
/// The 8-task example graph of the paper's Fig. 1, used by Section 5's
/// execution trace (Table 1).

namespace flb {

/// The Fig. 1 task graph. Node weights: comp(t0)=2, comp(t1)=2, comp(t2)=2,
/// comp(t3)=3, comp(t4)=3, comp(t5)=3, comp(t6)=2, comp(t7)=2. Edges (with
/// communication costs) reconstructed from the printed figure together with
/// the bottom-level and message-arrival values of Table 1, which pin every
/// weight uniquely:
///
///   t0->t1 (1)  t0->t2 (4)  t0->t3 (1)
///   t1->t4 (2)  t3->t5 (1)  t1->t5 (1)  t2->t6 (1)
///   t4->t7 (1)  t5->t7 (3)  t6->t7 (2)
///
/// Scheduling this graph on two processors with FLB reproduces Table 1
/// row for row (see tests/flb_trace_test.cpp).
TaskGraph paper_example_graph();

}  // namespace flb
