#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"

/// \file workloads.hpp
/// Task-graph generators for the paper's experiments and the test suite.
///
/// The paper evaluates on LU decomposition, a Laplace equation solver and a
/// stencil algorithm (Section 6), each sized to about V = 2000 tasks, with
/// CCR in {0.2, 5.0} and execution times / communication delays drawn
/// i.i.d. from a uniform distribution; the Fig. 3 discussion additionally
/// references an FFT workload. This module generates those graphs plus a
/// set of synthetic families (random layered DAGs, trees, fork-join,
/// diamond, chain, independent tasks) used for unit, property and ablation
/// testing.
///
/// Weight model: computation costs are uniform on [0, 2] (mean 1) and
/// communication costs uniform on [0, 2*CCR] (mean CCR), so the expected
/// communication-to-computation ratio equals the requested CCR. With
/// `random_weights = false`, costs are deterministic (comp = 1,
/// comm = CCR) — useful for closed-form structural tests.

namespace flb {

/// Weight parameters common to every generator.
struct WorkloadParams {
  Cost ccr = 1.0;              ///< target communication-to-computation ratio
  std::uint64_t seed = 1;      ///< RNG seed for the weight draws
  bool random_weights = true;  ///< false => comp = 1 and comm = ccr exactly
};

// --- The paper's application workloads ------------------------------------

/// LU decomposition of an n x n matrix (column-oriented, no pivot search
/// parallelism): for each elimination step k there is one pivot task and
/// n-1-k column-update tasks; update (k, j) depends on pivot k and on
/// update (k-1, j), pivot k on update (k-1, k).
/// V = n(n+1)/2 - 1. Requires n >= 2.
TaskGraph lu_graph(std::size_t n, const WorkloadParams& params = {});

/// Jacobi-style Laplace equation solver on an m x m grid over `iters`
/// sweeps, Hypertool-style: point (it, i, j) depends on the previous
/// sweep's four direct neighbours (two or three at boundaries/corners) and
/// on the previous sweep's convergence-check task, which joins all m*m
/// points of its sweep. These per-sweep gather/scatter joins are why the
/// paper groups Laplace with LU as join-heavy ("there are a large number
/// of join operations", Section 6.2). The final check is the single exit.
/// V = (m * m + 1) * iters. Requires m >= 2, iters >= 1.
TaskGraph laplace_graph(std::size_t m, std::size_t iters,
                        const WorkloadParams& params = {});

/// One-dimensional 3-point stencil: cell (s, i) depends on cells
/// (s-1, i-1), (s-1, i), (s-1, i+1). V = width * steps.
/// Requires width >= 1, steps >= 1.
TaskGraph stencil_graph(std::size_t width, std::size_t steps,
                        const WorkloadParams& params = {});

/// FFT butterfly: `points` inputs (a power of two) through log2(points)
/// butterfly stages; task (s, i) depends on (s-1, i) and
/// (s-1, i XOR 2^(s-1)). V = points * (log2(points) + 1).
TaskGraph fft_graph(std::size_t points, const WorkloadParams& params = {});

/// Tiled right-looking Cholesky factorization on a T x T tile grid, the
/// canonical irregular dense-linear-algebra DAG: POTRF(k) factors the
/// diagonal tile (joining all prior SYRK updates to it), TRSM(i,k) solves
/// panel tiles (joining POTRF(k) and prior GEMM updates), SYRK(i,k) and
/// GEMM(i,j,k) apply trailing updates. V = T + T(T-1) + sum_k C(T-1-k, 2)
/// ~ T^3/6. Requires tiles >= 1.
TaskGraph cholesky_graph(std::size_t tiles, const WorkloadParams& params = {});

/// Gaussian elimination with partial pivoting on an n x n matrix: per step
/// a pivot-selection task fans out to all row updates of the step, and the
/// next pivot selection joins on *all* of them (pivot search scans every
/// updated row). V = n(n+1)/2 - 1, same count as lu_graph but markedly
/// fork-join heavier. Requires n >= 2.
TaskGraph gauss_graph(std::size_t n, const WorkloadParams& params = {});

// --- Synthetic families for tests and ablations ----------------------------

/// Random layered DAG: `layers` layers of `width` tasks; each task draws
/// each possible edge from the previous layer with probability
/// `edge_prob`, and every task is guaranteed at least one parent in the
/// previous layer (so depth is exactly `layers`).
TaskGraph random_layered_graph(std::size_t layers, std::size_t width,
                               double edge_prob,
                               const WorkloadParams& params = {});

/// Random DAG over `tasks` nodes: each pair (i, j), i < j, is an edge with
/// probability `edge_prob` (ids form a topological order). Unstructured
/// fuzzing workload.
TaskGraph random_dag(std::size_t tasks, double edge_prob,
                     const WorkloadParams& params = {});

/// Random series-parallel DAG grown by recursive composition: starting
/// from a single edge, repeatedly replace a uniformly chosen edge by
/// either a series split (u -> new -> v) or a parallel branch (a second
/// u -> new -> v path), until about `target_tasks` tasks exist. Series-
/// parallel graphs are the classic structured counterpoint to the layered
/// random family (nested fork-joins at every scale, no cross edges).
TaskGraph series_parallel_graph(std::size_t target_tasks,
                                double parallel_prob = 0.5,
                                const WorkloadParams& params = {});

/// Complete out-tree (fork): `depth` levels with branching `fanout`.
TaskGraph out_tree_graph(std::size_t depth, std::size_t fanout,
                         const WorkloadParams& params = {});

/// Complete in-tree (join): mirror of out_tree_graph.
TaskGraph in_tree_graph(std::size_t depth, std::size_t fanout,
                        const WorkloadParams& params = {});

/// Fork-join chain: `stages` repetitions of 1 -> `width` -> 1.
TaskGraph fork_join_graph(std::size_t stages, std::size_t width,
                          const WorkloadParams& params = {});

/// Diamond lattice of side `side` (the classic wavefront mesh): task
/// (i, j) depends on (i-1, j) and (i, j-1). V = side * side.
TaskGraph diamond_graph(std::size_t side, const WorkloadParams& params = {});

/// Simple chain of `length` tasks.
TaskGraph chain_graph(std::size_t length, const WorkloadParams& params = {});

/// `count` independent tasks (no edges).
TaskGraph independent_graph(std::size_t count,
                            const WorkloadParams& params = {});

// --- Weight perturbation (robustness studies) -------------------------------

/// A copy of g whose computation and communication costs are multiplied by
/// independent uniform factors in [1 - spread, 1 + spread] (spread in
/// [0, 1)). Structure and task ids are untouched. Used to study how
/// schedules computed from nominal weights behave when the actual runtime
/// costs differ (bench_robustness): re-execute the nominal schedule's
/// dispatch order on the perturbed graph via flb::simulate.
TaskGraph perturb_weights(const TaskGraph& g, double spread,
                          std::uint64_t seed);

// --- Factory used by the benchmark harness ---------------------------------

/// Names accepted by make_workload: "LU", "Laplace", "Stencil", "FFT",
/// "Gauss", "Random".
std::vector<std::string> workload_names();

/// Build the named workload sized to approximately `target_tasks` tasks
/// (the paper's V ~ 2000), choosing the structural parameters internally.
/// Throws flb::Error for unknown names.
TaskGraph make_workload(const std::string& name, std::size_t target_tasks,
                        const WorkloadParams& params = {});

}  // namespace flb
