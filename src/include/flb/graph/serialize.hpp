#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"

/// \file serialize.hpp
/// Plain-text serialization of task graphs so that generated workloads can
/// be saved, diffed and re-loaded (e.g. to pin a specific random instance in
/// a regression test or exchange graphs with other tools).
///
/// Format (line-oriented, '#' comments allowed):
///
///     flb-taskgraph 1
///     name <optional name up to end of line>
///     tasks <V>
///     edges <E>
///     t <id> <comp>          (V lines, ids 0..V-1 in order)
///     e <from> <to> <comm>   (E lines)

namespace flb {

/// Write g in the text format above.
void write_text(std::ostream& os, const TaskGraph& g);

/// Parse a graph from the text format. Throws flb::Error on malformed
/// input (bad magic, counts not matching, invalid ids, cycles...).
TaskGraph read_text(std::istream& is);

/// Convenience: serialize to a string.
std::string to_text(const TaskGraph& g);

/// Convenience: parse from a string.
TaskGraph from_text(const std::string& text);

}  // namespace flb
