#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"

/// \file dot.hpp
/// Graphviz DOT export of task graphs, optionally annotated with a schedule
/// (processor assignment as node colour class), and a reader for the
/// well-defined subset this library emits.

namespace flb {

class Schedule;  // sched/schedule.hpp

/// Write g in Graphviz DOT format. Node labels show "t<id> (comp)"; edge
/// labels show the communication cost.
void write_dot(std::ostream& os, const TaskGraph& g);

/// As above, additionally grouping tasks by assigned processor: each node
/// gets a `proc=<p>` attribute and one of a rotating fill colours per
/// processor.
void write_dot(std::ostream& os, const TaskGraph& g, const Schedule& s);

/// Convenience: DOT text as a string.
std::string to_dot(const TaskGraph& g);

/// Parse a task graph from the DOT subset write_dot produces (and from
/// hand-written files of the same shape):
///
///     digraph "name" { ... }
///     t3 [label="t3\n2.5"];          node: comp from the label's second
///                                    line, or from a comp=<num> attribute
///     t0 -> t3 [label="1.5"];        edge: comm from the numeric label,
///                                    or from a comm=<num> attribute
///                                    (0 when the edge has no label)
///
/// Node ids must be t<number> and dense (0..V-1, any order). Unknown
/// attributes (proc, style, fillcolor, rankdir...), `node`/`edge`/`graph`
/// default statements, semicolons/commas and //, /* */ and # comments are
/// tolerated and ignored. Throws flb::Error on anything else — malformed
/// tokens, missing costs, non-finite or negative weights, unknown node
/// references, duplicate edges, cycles. This reader is fuzzed
/// (fuzz/fuzz_dot.cpp) and replayed over tests/corpus/dot in plain ctest.
TaskGraph read_dot(std::istream& is);

/// Convenience: parse DOT from a string.
TaskGraph dot_from_text(const std::string& text);

}  // namespace flb
