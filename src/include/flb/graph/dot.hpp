#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"

/// \file dot.hpp
/// Graphviz DOT export of task graphs, optionally annotated with a schedule
/// (processor assignment as node colour class).

namespace flb {

class Schedule;  // sched/schedule.hpp

/// Write g in Graphviz DOT format. Node labels show "t<id> (comp)"; edge
/// labels show the communication cost.
void write_dot(std::ostream& os, const TaskGraph& g);

/// As above, additionally grouping tasks by assigned processor: each node
/// gets a `proc=<p>` attribute and one of a rotating fill colours per
/// processor.
void write_dot(std::ostream& os, const TaskGraph& g, const Schedule& s);

/// Convenience: DOT text as a string.
std::string to_dot(const TaskGraph& g);

}  // namespace flb
