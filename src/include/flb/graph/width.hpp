#pragma once

#include <cstdint>
#include <vector>

#include "flb/graph/task_graph.hpp"

/// \file width.hpp
/// Task-graph width W: the maximum number of tasks that are pairwise not
/// connected by a path (the maximum antichain of the reachability poset).
/// W bounds the size of the ready set at any moment (paper Section 2) and
/// appears in both FLB's and ETF's complexity bounds.
///
/// Exact computation uses Dilworth's theorem: the maximum antichain equals
/// V minus the maximum matching of the bipartite "split" graph of the
/// transitive closure (a minimum chain cover). We compute the closure with
/// word-packed bitsets in topological order and run Hopcroft–Karp over it.
/// This is an analysis/diagnostics routine — O(V^2/64 * E) closure plus
/// O(E* sqrt(V)) matching — and is never on a scheduler's hot path.

namespace flb {

/// Word-packed reachability matrix: row t holds the set of tasks reachable
/// from t by a non-empty path.
class Reachability {
 public:
  /// Build the transitive closure of g.
  explicit Reachability(const TaskGraph& g);

  /// True iff `to` is reachable from `from` by a non-empty path.
  [[nodiscard]] bool reaches(TaskId from, TaskId to) const {
    return (rows_[from * words_ + to / 64] >> (to % 64)) & 1u;
  }

  /// True iff a and b are comparable (a path exists in either direction).
  [[nodiscard]] bool comparable(TaskId a, TaskId b) const {
    return reaches(a, b) || reaches(b, a);
  }

  /// Number of tasks.
  [[nodiscard]] TaskId num_tasks() const { return n_; }

 private:
  friend std::size_t exact_width(const TaskGraph&);

  TaskId n_ = 0;
  std::size_t words_ = 0;
  std::vector<std::uint64_t> rows_;
};

/// Exact task graph width (maximum antichain) via Dilworth / Hopcroft–Karp.
std::size_t exact_width(const TaskGraph& g);

/// Exact width by brute force over all subsets; for cross-checking
/// exact_width in tests. Requires num_tasks() <= 20.
std::size_t brute_force_width(const TaskGraph& g);

}  // namespace flb
