#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/util/types.hpp"

/// \file properties.hpp
/// Static DAG properties used by the schedulers and the experiments:
/// topological orders, top/bottom levels, critical path, ALAP (latest
/// possible start) times and level decomposition.
///
/// Conventions (matching the paper and the DSC/MCP literature):
///  * bottom level BL(t) includes comp(t) and all edge costs on the longest
///    downward path: BL(t) = comp(t) + max over successors s of
///    (comm(t,s) + BL(s)); BL(exit) = comp(exit).
///  * top level TL(t) excludes comp(t): TL(t) = max over predecessors p of
///    (TL(p) + comp(p) + comm(p,t)); TL(entry) = 0.
///  * critical path CP = max_t (TL(t) + BL(t)) — the sequential length of
///    the heaviest path including communication.
///  * ALAP(t) = CP - BL(t) — the latest possible start time, MCP's priority.

namespace flb {

/// A topological order of the tasks (Kahn; stable: among simultaneously
/// ready tasks, smaller ids first). Size equals num_tasks().
std::vector<TaskId> topological_order(const TaskGraph& g);

/// Allocation-free topological_order() writing into caller storage: `order`
/// and `indeg` must both have size num_tasks(). Same order as the vector
/// flavour. `indeg` is scratch, clobbered.
void topological_order_into(const TaskGraph& g, std::span<TaskId> order,
                            std::span<std::uint32_t> indeg);

/// Bottom levels (computation + communication), indexed by task id.
std::vector<Cost> bottom_levels(const TaskGraph& g);

/// Allocation-free bottom_levels() writing into caller storage: `bl`,
/// `order` and `indeg` must all have size num_tasks(). Identical arithmetic
/// (and therefore bit-identical results) to the vector flavour. `order` and
/// `indeg` are scratch, clobbered.
void bottom_levels_into(const TaskGraph& g, std::span<Cost> bl,
                        std::span<TaskId> order,
                        std::span<std::uint32_t> indeg);

/// Bottom levels counting only computation costs (edges cost zero). Used by
/// DSC-LLB's LLB step, which orders within clusters where communication has
/// already been zeroed.
std::vector<Cost> computation_bottom_levels(const TaskGraph& g);

/// Top levels (computation + communication), indexed by task id.
std::vector<Cost> top_levels(const TaskGraph& g);

/// Critical path length including communication costs.
Cost critical_path(const TaskGraph& g);

/// Critical path length counting computation only (a schedule-length lower
/// bound valid for any processor count, since same-processor communication
/// is free).
Cost computation_critical_path(const TaskGraph& g);

/// ALAP latest-possible-start times: ALAP(t) = CP - BL(t).
std::vector<Cost> alap_times(const TaskGraph& g);

/// Precedence depth of each task: entry tasks are level 0; otherwise
/// 1 + max level over predecessors.
std::vector<std::size_t> depth_levels(const TaskGraph& g);

/// Tasks grouped by precedence depth: result[d] lists the tasks at depth d.
std::vector<std::vector<TaskId>> level_decomposition(const TaskGraph& g);

/// The largest number of tasks at any single precedence depth. This is a
/// cheap lower bound on the task graph width W (any level is an antichain).
std::size_t max_level_width(const TaskGraph& g);

}  // namespace flb
