#pragma once

#include <span>
#include <string>
#include <vector>

#include "flb/util/types.hpp"

/// \file task_graph.hpp
/// The task-graph model of Section 2 of the paper: a weighted DAG
/// G = (V, E) where node weights are computation costs and edge weights are
/// communication costs.

namespace flb {

/// One adjacency entry: a neighbouring task and the communication cost of
/// the connecting edge.
struct Adj {
  TaskId node;  ///< The neighbour (successor or predecessor).
  Cost comm;    ///< Communication cost of the edge.
};

/// An edge in (from, to, comm) form, used for construction and export.
struct Edge {
  TaskId from;
  TaskId to;
  Cost comm;
};

class TaskGraphBuilder;

/// Immutable weighted DAG. Construct through TaskGraphBuilder, which
/// validates shape (no self-loops, no duplicate edges, acyclic) and builds
/// CSR adjacency in both directions so that successor and predecessor scans
/// are contiguous — every scheduler here is adjacency-scan bound.
class TaskGraph {
 public:
  TaskGraph() = default;

  /// Number of tasks V.
  [[nodiscard]] TaskId num_tasks() const {
    return static_cast<TaskId>(comp_.size());
  }

  /// Number of edges E.
  [[nodiscard]] std::size_t num_edges() const { return succ_.size(); }

  /// Computation cost of task t.
  [[nodiscard]] Cost comp(TaskId t) const { return comp_[t]; }

  /// Successors of t with edge communication costs.
  [[nodiscard]] std::span<const Adj> successors(TaskId t) const {
    return {succ_.data() + succ_off_[t], succ_off_[t + 1] - succ_off_[t]};
  }

  /// Predecessors of t with edge communication costs.
  [[nodiscard]] std::span<const Adj> predecessors(TaskId t) const {
    return {pred_.data() + pred_off_[t], pred_off_[t + 1] - pred_off_[t]};
  }

  /// In-degree of t.
  [[nodiscard]] std::size_t in_degree(TaskId t) const {
    return pred_off_[t + 1] - pred_off_[t];
  }

  /// Out-degree of t.
  [[nodiscard]] std::size_t out_degree(TaskId t) const {
    return succ_off_[t + 1] - succ_off_[t];
  }

  /// True iff t has no predecessors (an entry task).
  [[nodiscard]] bool is_entry(TaskId t) const { return in_degree(t) == 0; }

  /// True iff t has no successors (an exit task).
  [[nodiscard]] bool is_exit(TaskId t) const { return out_degree(t) == 0; }

  /// All entry tasks, ascending by id.
  [[nodiscard]] std::vector<TaskId> entry_tasks() const;

  /// All exit tasks, ascending by id.
  [[nodiscard]] std::vector<TaskId> exit_tasks() const;

  /// All edges in (from, to, comm) form, grouped by source task.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Sum of all computation costs (the sequential execution time T_seq).
  [[nodiscard]] Cost total_comp() const { return total_comp_; }

  /// Sum of all communication costs.
  [[nodiscard]] Cost total_comm() const { return total_comm_; }

  /// Communication-to-computation ratio: average edge weight over average
  /// node weight (paper Section 2). Zero for edgeless or zero-comp graphs.
  [[nodiscard]] Cost ccr() const;

  /// Optional human-readable name (set by generators, e.g. "LU(n=62)").
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class TaskGraphBuilder;

  std::vector<Cost> comp_;
  std::vector<std::size_t> succ_off_, pred_off_;
  std::vector<Adj> succ_, pred_;
  Cost total_comp_ = 0.0;
  Cost total_comm_ = 0.0;
  std::string name_;
};

/// Incremental builder for TaskGraph. Usage:
///
///     TaskGraphBuilder b;
///     TaskId a = b.add_task(2.0);
///     TaskId c = b.add_task(3.0);
///     b.add_edge(a, c, 1.0);
///     TaskGraph g = std::move(b).build();
///
/// build() throws flb::Error on self-loops, duplicate edges, out-of-range
/// ids, negative weights, or cycles.
class TaskGraphBuilder {
 public:
  TaskGraphBuilder() = default;

  /// Pre-reserve for n tasks and m edges (optional).
  void reserve(std::size_t n, std::size_t m);

  /// Add a task with computation cost `comp` (>= 0); returns its id.
  TaskId add_task(Cost comp);

  /// Add `count` tasks all with cost `comp`; returns the first id.
  TaskId add_tasks(std::size_t count, Cost comp);

  /// Add a dependence edge with communication cost `comm` (>= 0).
  void add_edge(TaskId from, TaskId to, Cost comm);

  /// Number of tasks added so far.
  [[nodiscard]] TaskId num_tasks() const {
    return static_cast<TaskId>(comp_.size());
  }

  /// Number of edges added so far.
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  /// Set the graph's display name.
  void set_name(std::string name) { name_ = std::move(name); }

  /// Validate and produce the immutable graph. The builder is consumed.
  [[nodiscard]] TaskGraph build() &&;

 private:
  std::vector<Cost> comp_;
  std::vector<Edge> edges_;
  std::string name_;
};

}  // namespace flb
