#pragma once

#include <iosfwd>
#include <string>

#include "flb/graph/task_graph.hpp"
#include "flb/workloads/workloads.hpp"

/// \file stg.hpp
/// Reader for the Standard Task Graph Set (STG) format (Kasahara
/// Laboratory), the de-facto exchange format for scheduling benchmarks:
///
///     <n>                                  number of real tasks
///     <id> <processing-time> <#preds> <pred...>     n + 2 lines
///                                          (ids 0..n+1; 0 and n+1 are the
///                                          zero-cost dummy source/sink)
///
/// Lines whose first non-blank character is '#' are comments. STG carries
/// no communication costs, so edge weights are synthesized from a
/// WorkloadParams: uniform with mean ccr * (average task cost), or exactly
/// that value when random_weights is false — giving the requested CCR in
/// expectation. Dummy source/sink tasks are kept (they are zero-cost and
/// harmless to every scheduler here).

namespace flb {

/// Parse an STG stream. Throws flb::Error on malformed input (bad counts,
/// unknown predecessor ids, cycles).
TaskGraph read_stg(std::istream& is, const WorkloadParams& params = {});

/// Convenience: parse STG from a string.
TaskGraph stg_from_text(const std::string& text,
                        const WorkloadParams& params = {});

}  // namespace flb
