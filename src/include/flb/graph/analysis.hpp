#pragma once

#include <cstddef>
#include <vector>

#include "flb/graph/task_graph.hpp"

/// \file analysis.hpp
/// Structural analysis of task graphs beyond levels and width: transitive
/// (redundant-precedence) edges, granularity, and summary statistics used
/// by the workload gallery and the test suite.

namespace flb {

/// Edges (from, to, comm) whose precedence constraint is implied by a
/// longer path from `from` to `to`. NOTE: such an edge is only *fully*
/// redundant for scheduling if its communication never matters (e.g. zero
/// cost): with non-zero cost the edge still delays the consumer when the
/// endpoints land on different processors. This is an analysis routine, not
/// a legal graph rewrite in general. O(V E / 64) via reachability bitsets.
std::vector<Edge> transitive_edges(const TaskGraph& g);

/// A copy of g with all transitive edges removed. Use only when the
/// removed edges are pure precedence (see transitive_edges). Node costs,
/// ids and the graph name are preserved.
TaskGraph strip_transitive_edges(const TaskGraph& g);

/// Granularity of the graph: min over tasks of comp(t) divided by the
/// largest communication cost on any edge incident to t (Gerasoulis &
/// Yang's definition; a graph with granularity >= 1 is coarse-grained).
/// Returns +infinity for graphs without edges.
Cost granularity(const TaskGraph& g);

/// Degree and weight summary for reporting.
struct GraphStats {
  std::size_t num_tasks = 0;
  std::size_t num_edges = 0;
  std::size_t max_in_degree = 0;
  std::size_t max_out_degree = 0;
  double avg_degree = 0.0;       ///< E / V
  Cost min_comp = 0.0;
  Cost max_comp = 0.0;
  Cost min_comm = 0.0;           ///< 0 for edgeless graphs
  Cost max_comm = 0.0;
  Cost ccr = 0.0;
  Cost granularity = 0.0;
  std::size_t entry_tasks = 0;
  std::size_t exit_tasks = 0;
  std::size_t depth = 0;         ///< number of precedence levels
};

/// Compute all of the above in one pass (plus one level decomposition).
GraphStats graph_stats(const TaskGraph& g);

}  // namespace flb
