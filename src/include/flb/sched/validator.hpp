#pragma once

#include <string>
#include <vector>

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

namespace flb {
class Topology;  // sim/topology.hpp
namespace platform {
struct LinkOccupancy;  // platform/cost_model.hpp
}  // namespace platform
}  // namespace flb

/// \file validator.hpp
/// Independent feasibility checking of schedules. Every scheduler in this
/// library is tested against this validator; it recomputes all constraints
/// from scratch and shares no code with any scheduler.

namespace flb {

/// One detected constraint violation.
struct Violation {
  enum class Kind {
    kUnscheduledTask,    ///< a task was never assigned
    kNonFiniteTime,      ///< ST(t) or FT(t) is NaN or infinite
    kWrongDuration,      ///< FT(t) != ST(t) + comp(t)
    kNegativeStart,      ///< ST(t) < 0
    kProcessorOverlap,   ///< two tasks overlap on one processor
    kPrecedence,         ///< t starts before a predecessor's data arrives
    kLinkBusyViolation,  ///< two transfers occupy one link at once
  };
  Kind kind;
  TaskId task;         ///< offending task (the later one for overlaps)
  std::string detail;  ///< human-readable description
};

/// Check `s` against `g`. Returns all violations found (empty == feasible).
/// Constraints (paper Section 2):
///  * every task is scheduled exactly once with finite ST and FT and
///    FT = ST + comp;
///  * tasks on one processor do not overlap in time;
///  * a task starts no earlier than FT(pred) for same-processor
///    predecessors and FT(pred) + comm for remote ones.
/// Comparisons use a small absolute tolerance to absorb floating-point
/// accumulation.
std::vector<Violation> validate_schedule(const TaskGraph& g,
                                         const Schedule& s,
                                         double tolerance = 1e-9);

/// As above, but with an explicit expected duration per task instead of the
/// homogeneous FT = ST + comp rule. Used for continuation schedules built
/// after a degraded-mode episode, where a task's wall time may legitimately
/// differ from comp(t): slowdown-stretched executions, checkpoint-resumed
/// remainders, checkpoint-write pauses, perturbed runtimes. An entry of
/// kUndefinedTime skips the duration check for that task; every other
/// constraint (exclusivity, precedence, finiteness) is enforced unchanged.
/// `durations` must have one entry per task.
std::vector<Violation> validate_schedule(const TaskGraph& g,
                                         const Schedule& s,
                                         const std::vector<Cost>& durations,
                                         double tolerance = 1e-9);

/// True iff validate_schedule finds no violations.
bool is_valid_schedule(const TaskGraph& g, const Schedule& s,
                       double tolerance = 1e-9);

/// True iff the durations-aware validate_schedule reports nothing.
bool is_valid_schedule(const TaskGraph& g, const Schedule& s,
                       const std::vector<Cost>& durations,
                       double tolerance = 1e-9);

/// Audit a link-busy commit log (platform::CostModel::occupancies,
/// FlbResumeContext::occupancy_log, RepairResult::link_occupancies)
/// against the store-and-forward exclusivity rule: a link carries at most
/// one transfer at any instant. Reports one kLinkBusyViolation per pair of
/// occupancies sharing positive measure on a link, plus findings for
/// occupancies naming a link the topology does not have, with non-finite
/// endpoints, or ending before they begin. Link findings carry
/// Violation::task == kInvalidTask. Independent of every producer: it
/// re-sorts and sweeps the raw intervals.
std::vector<Violation> validate_link_occupancies(
    const Topology& topology,
    const std::vector<platform::LinkOccupancy>& occupancies,
    double tolerance = 1e-9);

/// Render one violation for diagnostics.
std::string to_string(const Violation& v);

}  // namespace flb
