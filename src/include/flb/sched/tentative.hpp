#pragma once

#include "flb/graph/task_graph.hpp"
#include "flb/sched/schedule.hpp"

/// \file tentative.hpp
/// Tentative-scheduling quantities from Section 2 of the paper, computed
/// against a partial schedule. These are the shared vocabulary of every
/// list scheduler here:
///
///   LMT(t)    last message arrival time  = max over preds (FT + comm)
///   EP(t)     enabling processor         = processor of the argmax above
///   EMT(t,p)  effective message arrival  = max over preds NOT on p
///   EST(t,p)  estimated start time       = max(EMT(t,p), PRT(p))
///
/// All functions require every predecessor of t to be scheduled (t ready).
/// Each costs O(in-degree(t)); the reference schedulers (ETF, MCP, FCP) call
/// them directly, while FLB maintains the same quantities incrementally.

namespace flb {

/// Last message arrival time of ready task t. Zero for entry tasks.
Cost last_message_time(const TaskGraph& g, const Schedule& s, TaskId t);

/// Enabling processor of ready task t: the processor the latest-arriving
/// message is sent from. kInvalidProc for entry tasks. Ties between equally
/// late messages resolve to the predecessor occurring first in the graph's
/// adjacency (deterministic).
ProcId enabling_proc(const TaskGraph& g, const Schedule& s, TaskId t);

/// Effective message arrival time of ready task t on processor p: messages
/// from predecessors already on p are free. Zero for entry tasks.
Cost effective_message_time(const TaskGraph& g, const Schedule& s, TaskId t,
                            ProcId p);

/// Estimated start time of ready task t on processor p:
/// max(EMT(t,p), PRT(p)).
Cost est_start(const TaskGraph& g, const Schedule& s, TaskId t, ProcId p);

/// True iff every predecessor of t is scheduled.
bool is_ready(const TaskGraph& g, const Schedule& s, TaskId t);

/// Minimum EST over all processors, scanning every processor exhaustively.
/// Returns the (processor, est) pair; lower-numbered processors win ties.
/// O(in-degree + P); the brute-force oracle against which FLB's two-pair
/// selection rule (Theorem 3) is verified.
std::pair<ProcId, Cost> best_proc_exhaustive(const TaskGraph& g,
                                             const Schedule& s, TaskId t);

}  // namespace flb
